// Golden-output and bounded-memory tests for the streaming result writer
// (src/sparql/result_writer.h) — the single serializer behind both the
// in-process FormatResults API and the HTTP endpoint's chunked bodies.
#include "sparql/result_writer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/result_writer.h"
#include "rdf/dictionary.h"
#include "sparql/ast.h"

namespace sparqluo {
namespace {

/// Collects every flushed piece (and can abort after a fixed count).
struct CollectingSink {
  std::vector<std::string> pieces;
  size_t accept_limit = SIZE_MAX;

  StreamingResultWriter::Sink AsSink() {
    return [this](std::string_view piece) {
      if (pieces.size() >= accept_limit) return false;
      pieces.emplace_back(piece);
      return true;
    };
  }

  std::string Joined() const {
    std::string all;
    for (const std::string& p : pieces) all += p;
    return all;
  }
};

class ResultWriterTest : public ::testing::Test {
 protected:
  ResultWriterTest() {
    x_ = vars_.Intern("x");
    y_ = vars_.Intern("y");
    iri_ = dict_.Encode(Term::Iri("http://example.org/s"));
    escapes_ = dict_.Encode(
        Term::Literal("he said \"hi\"\n\tback\\slash\x01"));
    lang_ = dict_.Encode(Term::LangLiteral("bonjour", "fr"));
    typed_ = dict_.Encode(Term::TypedLiteral(
        "42", "http://www.w3.org/2001/XMLSchema#integer"));
    blank_ = dict_.Encode(Term::Blank("b0"));
    utf8_ = dict_.Encode(Term::Literal("h\xC3\xA9llo"));
  }

  /// The three-row fixture: escaping, lang/typed literals, a blank node,
  /// an unbound cell and pass-through UTF-8.
  BindingSet Rows() {
    BindingSet rows({x_, y_});
    rows.AppendRow({iri_, escapes_});
    rows.AppendRow({lang_, kUnboundTerm});
    rows.AppendRow({typed_, blank_});
    rows.AppendRow({utf8_, iri_});
    return rows;
  }

  std::string Render(WireFormat format, const BindingSet& rows) {
    CollectingSink sink;
    StreamingResultWriter writer(format, sink.AsSink());
    EXPECT_TRUE(writer.WriteAll(rows, vars_, dict_));
    return sink.Joined();
  }

  VarTable vars_;
  VarId x_, y_;
  Dictionary dict_;
  TermId iri_, escapes_, lang_, typed_, blank_, utf8_;
};

TEST_F(ResultWriterTest, JsonGolden) {
  std::string expected =
      "{\"head\":{\"vars\":[\"x\",\"y\"]},\"results\":{\"bindings\":["
      "{\"x\":{\"type\":\"uri\",\"value\":\"http://example.org/s\"},"
      "\"y\":{\"type\":\"literal\",\"value\":"
      "\"he said \\\"hi\\\"\\n\\tback\\\\slash\\u0001\"}},"
      "{\"x\":{\"type\":\"literal\",\"value\":\"bonjour\","
      "\"xml:lang\":\"fr\"}},"
      "{\"x\":{\"type\":\"literal\",\"value\":\"42\",\"datatype\":"
      "\"http://www.w3.org/2001/XMLSchema#integer\"},"
      "\"y\":{\"type\":\"bnode\",\"value\":\"b0\"}},"
      "{\"x\":{\"type\":\"literal\",\"value\":\"h\xC3\xA9llo\"},"
      "\"y\":{\"type\":\"uri\",\"value\":\"http://example.org/s\"}}"
      "]}}";
  EXPECT_EQ(Render(WireFormat::kJson, Rows()), expected);
}

TEST_F(ResultWriterTest, TsvGolden) {
  std::string expected =
      "?x\t?y\n"
      "<http://example.org/s>\t\"he said \\\"hi\\\"\\n\\tback\\\\slash\x01\"\n"
      "\"bonjour\"@fr\t\n"
      "\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>\t_:b0\n"
      "\"h\xC3\xA9llo\"\t<http://example.org/s>\n";
  EXPECT_EQ(Render(WireFormat::kTsv, Rows()), expected);
}

TEST_F(ResultWriterTest, EmptyResultSet) {
  BindingSet empty({x_});
  EXPECT_EQ(Render(WireFormat::kJson, empty),
            "{\"head\":{\"vars\":[\"x\"]},\"results\":{\"bindings\":[]}}");
  EXPECT_EQ(Render(WireFormat::kTsv, empty), "?x\n");
}

TEST_F(ResultWriterTest, ZeroWidthMappings) {
  // ASK-style / fully-bound BGP results: mappings with no columns.
  BindingSet rows;
  rows.AppendEmptyMappings(2);
  EXPECT_EQ(Render(WireFormat::kJson, rows),
            "{\"head\":{\"vars\":[]},\"results\":{\"bindings\":[{},{}]}}");
  EXPECT_EQ(Render(WireFormat::kTsv, rows), "\n\n\n");
}

TEST_F(ResultWriterTest, AskBoolean) {
  for (bool value : {true, false}) {
    CollectingSink sink;
    StreamingResultWriter writer(WireFormat::kJson, sink.AsSink());
    EXPECT_TRUE(writer.WriteBoolean(value));
    EXPECT_EQ(sink.Joined(), value ? "{\"head\":{},\"boolean\":true}"
                                   : "{\"head\":{},\"boolean\":false}");
  }
  CollectingSink sink;
  StreamingResultWriter writer(WireFormat::kTsv, sink.AsSink());
  EXPECT_TRUE(writer.WriteBoolean(true));
  EXPECT_EQ(sink.Joined(), "true\n");
}

TEST_F(ResultWriterTest, EngineWritersAreBitIdenticalToStreaming) {
  // WriteJson/WriteTsv delegate to the streaming writer, so the in-process
  // formats and the over-the-wire bodies cannot drift apart.
  BindingSet rows = Rows();
  EXPECT_EQ(FormatResults(rows, vars_, dict_, ResultFormat::kJson),
            Render(WireFormat::kJson, rows));
  EXPECT_EQ(FormatResults(rows, vars_, dict_, ResultFormat::kTsv),
            Render(WireFormat::kTsv, rows));
}

TEST_F(ResultWriterTest, SinkAbortStopsSerialization) {
  CollectingSink sink;
  sink.accept_limit = 1;
  StreamingResultWriter writer(WireFormat::kJson, sink.AsSink(),
                               /*flush_bytes=*/16);
  BindingSet rows = Rows();
  EXPECT_FALSE(writer.WriteAll(rows, vars_, dict_));
  EXPECT_FALSE(writer.ok());
  EXPECT_EQ(sink.pieces.size(), 1u);
  // Everything after the abort is a cheap no-op.
  EXPECT_FALSE(writer.WriteRow(nullptr, 0, dict_));
  EXPECT_FALSE(writer.Finish());
  EXPECT_EQ(sink.pieces.size(), 1u);
}

TEST_F(ResultWriterTest, MillionRowsBoundedMemory) {
  // The streaming guarantee: serializing 1M rows never buffers more than
  // ~one flush unit + one row, regardless of total output size.
  constexpr size_t kRows = 1'000'000;
  constexpr size_t kFlushBytes = 4 * 1024;
  size_t total_bytes = 0, pieces = 0;
  StreamingResultWriter writer(
      WireFormat::kJson,
      [&](std::string_view piece) {
        total_bytes += piece.size();
        ++pieces;
        return true;
      },
      kFlushBytes);
  ASSERT_TRUE(writer.BeginSelect({x_, y_}, vars_));
  TermId row[2] = {iri_, lang_};
  for (size_t i = 0; i < kRows; ++i) ASSERT_TRUE(writer.WriteRow(row, 2, dict_));
  ASSERT_TRUE(writer.Finish());
  EXPECT_EQ(writer.rows_written(), kRows);
  EXPECT_EQ(writer.bytes_emitted(), total_bytes);
  EXPECT_GT(total_bytes, kRows * 50);  // ~100 bytes per row of JSON
  EXPECT_GT(pieces, total_bytes / (2 * kFlushBytes));
  // High-water mark stays O(flush unit + one row), nowhere near the body.
  EXPECT_LT(writer.max_buffered(), kFlushBytes + 1024);
}

}  // namespace
}  // namespace sparqluo
