// Morsel-driven intra-query parallelism: bit-identical results, abort
// behavior, the ExecutorPool primitive, and the deterministic ParallelJoin.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

#include "algebra/operators.h"
#include "engine/database.h"
#include "server/query_service.h"
#include "util/executor_pool.h"
#include "workload/lubm_generator.h"
#include "workload/paper_queries.h"

namespace sparqluo {
namespace {

constexpr size_t kRowLimit = 2000000;

/// Exact (bitwise) equality: same schema, same rows in the same order.
/// Stronger than BagEquals on purpose — parallel evaluation must not
/// perturb results at all relative to the sequential path.
bool BitIdentical(const BindingSet& a, const BindingSet& b) {
  if (a.schema() != b.schema() || a.size() != b.size()) return false;
  for (size_t r = 0; r < a.size(); ++r)
    for (size_t c = 0; c < a.width(); ++c)
      if (a.At(r, c) != b.At(r, c)) return false;
  return true;
}

// --- ExecutorPool unit tests --------------------------------------------

TEST(ExecutorPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ExecutorPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), 0, [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ExecutorPoolTest, ParallelForRunsSequentiallyWithOneWorker) {
  ExecutorPool pool(2);
  std::vector<size_t> order;
  pool.ParallelFor(16, 1, [&](size_t i) { order.push_back(i); });
  std::vector<size_t> expected(16);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);  // max_workers=1: caller runs all, in order
}

TEST(ExecutorPoolTest, ParallelForPropagatesFirstException) {
  ExecutorPool pool(2);
  struct Boom {};
  EXPECT_THROW(pool.ParallelFor(64, 0,
                                [&](size_t i) {
                                  if (i % 7 == 0) throw Boom{};
                                }),
               Boom);
}

TEST(ExecutorPoolTest, ParallelForMakesProgressOnSaturatedPool) {
  // Block every pool worker; ParallelFor must still complete because the
  // calling thread drains the morsel counter itself.
  ExecutorPool pool(2);
  std::atomic<bool> release{false};
  for (int i = 0; i < 2; ++i)
    pool.Submit([&] {
      while (!release.load()) std::this_thread::yield();
    });
  std::atomic<int> done{0};
  pool.ParallelFor(32, 0, [&](size_t) { ++done; });
  EXPECT_EQ(done.load(), 32);
  release.store(true);
}

TEST(ExecutorPoolTest, SubmitAfterShutdownRunsInline) {
  ExecutorPool pool(1);
  pool.Shutdown();
  bool ran = false;
  pool.Submit([&] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(ExecutorPoolTest, MorselCountMath) {
  ParallelSpec spec;
  spec.morsel_size = 100;
  EXPECT_EQ(spec.MorselCount(0), 0u);
  EXPECT_EQ(spec.MorselCount(1), 1u);
  EXPECT_EQ(spec.MorselCount(100), 1u);
  EXPECT_EQ(spec.MorselCount(101), 2u);
  EXPECT_EQ(spec.MorselCount(1000), 10u);
}

// --- ParallelJoin determinism -------------------------------------------

class ParallelJoinTest : public ::testing::Test {
 protected:
  void SetUp() override { pool_ = std::make_unique<ExecutorPool>(3); }

  ParallelSpec Spec(size_t morsel_size) {
    ParallelSpec spec;
    spec.pool = pool_.get();
    spec.parallelism = 4;
    spec.morsel_size = morsel_size;
    return spec;
  }

  std::unique_ptr<ExecutorPool> pool_;
};

TEST_F(ParallelJoinTest, MatchesJoinOnSharedVariable) {
  BindingSet a({1, 2}), b({2, 3});
  for (TermId i = 1; i <= 200; ++i) a.AppendRow({i, i % 10});
  for (TermId i = 1; i <= 150; ++i) b.AppendRow({i % 10, i});
  uint64_t morsels = 0;
  BindingSet par = ParallelJoin(a, b, nullptr, Spec(16), &morsels);
  EXPECT_TRUE(BitIdentical(par, Join(a, b)));
  EXPECT_GT(morsels, 1u);
}

TEST_F(ParallelJoinTest, MatchesJoinOnCrossProduct) {
  BindingSet a({1}), b({2});
  for (TermId i = 1; i <= 40; ++i) a.AppendRow({i});
  for (TermId i = 1; i <= 30; ++i) b.AppendRow({i});
  BindingSet par = ParallelJoin(a, b, nullptr, Spec(8), nullptr);
  EXPECT_TRUE(BitIdentical(par, Join(a, b)));
}

TEST_F(ParallelJoinTest, MatchesJoinWithUnboundBuildRows) {
  // Unbound join-key cells on the build side force the single-shard
  // fallback (partial rows are emitted after bucket matches); the result
  // must still be bit-identical to the sequential join.
  BindingSet a({1, 2}), b({2, 3});
  for (TermId i = 1; i <= 30; ++i)
    a.AppendRow({i, i % 3 == 0 ? kUnboundTerm : i % 5});
  for (TermId i = 1; i <= 90; ++i) b.AppendRow({i % 5, i});
  BindingSet par = ParallelJoin(a, b, nullptr, Spec(8), nullptr);
  EXPECT_TRUE(BitIdentical(par, Join(a, b)));
}

TEST_F(ParallelJoinTest, MatchesJoinOnMultiVariableKey) {
  BindingSet a({1, 2, 3}), b({2, 3, 4});
  for (TermId i = 1; i <= 120; ++i) a.AppendRow({i, i % 4, i % 6});
  for (TermId i = 1; i <= 80; ++i) b.AppendRow({i % 4, i % 6, i});
  BindingSet par = ParallelJoin(a, b, nullptr, Spec(16), nullptr);
  EXPECT_TRUE(BitIdentical(par, Join(a, b)));
}

// --- Engine-level morsel execution --------------------------------------

class ParallelEngineTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  void SetUp() override {
    LubmConfig cfg;
    cfg.universities = 2;
    GenerateLubm(cfg, &db_);
    db_.Finalize(GetParam());
    pool_ = std::make_unique<ExecutorPool>(7);
  }

  ExecOptions Sequential() {
    ExecOptions o = ExecOptions::Full();
    o.max_intermediate_rows = kRowLimit;
    return o;
  }

  /// Full mode with the given parallelism and a small morsel size, so even
  /// the modest test dataset splits into many morsels.
  ExecOptions Parallel(size_t parallelism, size_t morsel_size = 64) {
    ExecOptions o = Sequential();
    o.parallel.parallelism = parallelism;
    o.parallel.morsel_size = morsel_size;
    o.parallel.pool = pool_.get();
    return o;
  }

  Database db_;
  std::unique_ptr<ExecutorPool> pool_;
};

INSTANTIATE_TEST_SUITE_P(Engines, ParallelEngineTest,
                         ::testing::Values(EngineKind::kWco,
                                           EngineKind::kHashJoin),
                         [](const auto& info) {
                           return info.param == EngineKind::kWco ? "Wco"
                                                                 : "HashJoin";
                         });

// Morsel execution is bit-identical to sequential execution on the whole
// paper workload, across parallelism degrees.
TEST_P(ParallelEngineTest, BitIdenticalToSequentialOnPaperWorkload) {
  const auto& workload = LubmPaperQueries();
  uint64_t total_morsels = 0;
  for (const PaperQuery& q : workload) {
    auto seq = db_.Query(q.sparql, Sequential());
    for (size_t parallelism : {size_t{1}, size_t{2}, size_t{8}}) {
      ExecMetrics metrics;
      auto par = db_.Query(q.sparql, Parallel(parallelism), &metrics);
      ASSERT_EQ(par.ok(), seq.ok()) << q.id << " @ parallelism " << parallelism;
      if (!seq.ok()) continue;
      EXPECT_TRUE(BitIdentical(*par, *seq))
          << q.id << " diverges at parallelism " << parallelism;
      if (parallelism > 1) {
        total_morsels += metrics.bgp.morsels;
      } else {
        EXPECT_EQ(metrics.bgp.morsels, 0u);  // parallelism 1 stays sequential
      }
    }
  }
  // A query whose seed fan-out fits one morsel legitimately completes
  // sequentially, but across the whole workload the morsel path must fire.
  EXPECT_GT(total_morsels, 0u);
}

// parallelism = 0 means "all pool workers + 1" and stays bit-identical.
TEST_P(ParallelEngineTest, AutoParallelismMatchesSequential) {
  const PaperQuery* q = FindQuery(LubmPaperQueries(), "q1.1");
  ASSERT_NE(q, nullptr);
  auto seq = db_.Query(q->sparql, Sequential());
  ASSERT_TRUE(seq.ok());
  auto par = db_.Query(q->sparql, Parallel(0));
  ASSERT_TRUE(par.ok());
  EXPECT_TRUE(BitIdentical(*par, *seq));
}

// A deadline expiring mid-evaluation aborts the parallel path cleanly with
// the same reason the sequential path reports.
TEST_P(ParallelEngineTest, DeadlineAbortsParallelEvaluation) {
  CancelToken token =
      CancelToken::WithTimeout(std::chrono::milliseconds(1));
  ExecOptions o = Parallel(8);
  o.cancel = &token;
  ExecMetrics metrics;
  auto r = db_.Query("SELECT * WHERE { ?a ?p ?b . ?c ?q ?d . }", o, &metrics);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(metrics.aborted);
  EXPECT_EQ(metrics.abort_reason, AbortReason::kDeadline);
}

// Explicit cancellation propagates out of morsel workers.
TEST_P(ParallelEngineTest, CancellationAbortsParallelEvaluation) {
  CancelToken token;
  token.RequestCancel();
  ExecOptions o = Parallel(4);
  o.cancel = &token;
  ExecMetrics metrics;
  auto r = db_.Query(LubmPaperQueries()[0].sparql, o, &metrics);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(metrics.aborted);
  EXPECT_EQ(metrics.abort_reason, AbortReason::kCancelled);
}

// --- Service-level pool sharing -----------------------------------------

TEST_P(ParallelEngineTest, ServiceIntraQueryParallelismMatchesSequential) {
  const auto& workload = LubmPaperQueries();
  ExecOptions exec = Sequential();

  std::vector<BindingSet> expected;
  std::vector<bool> expected_ok;
  for (const PaperQuery& q : workload) {
    auto r = db_.Query(q.sparql, exec);
    expected_ok.push_back(r.ok());
    expected.push_back(r.ok() ? std::move(*r) : BindingSet());
  }

  QueryService::Options sopts;
  sopts.num_threads = 4;
  sopts.intra_query_parallelism = 4;
  QueryService service(db_, sopts);

  std::vector<QueryRequest> batch;
  for (const PaperQuery& q : workload) {
    QueryRequest req;
    req.text = q.sparql;
    req.options = exec;
    req.options.parallel.morsel_size = 64;  // force morsels on the test dataset
    batch.push_back(std::move(req));
  }
  std::vector<QueryResponse> responses = service.RunBatch(std::move(batch));

  ASSERT_EQ(responses.size(), workload.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    ASSERT_EQ(responses[i].status.ok(), expected_ok[i])
        << workload[i].id << ": " << responses[i].status.ToString();
    if (responses[i].status.ok()) {
      EXPECT_TRUE(BitIdentical(responses[i].rows, expected[i]))
          << workload[i].id << " diverges under service-side parallelism";
    }
  }
  // Morsel activity is aggregated into the service stats.
  EXPECT_GT(service.Stats().bgp.morsels, 0u);

  // A request can opt out of the service-wide parallelism and force
  // sequential evaluation.
  QueryRequest seq_req;
  seq_req.text = workload[0].sparql;
  seq_req.options = exec;
  seq_req.inherit_parallelism = false;
  QueryResponse seq_resp = service.Submit(std::move(seq_req)).get();
  ASSERT_TRUE(seq_resp.status.ok()) << seq_resp.status.ToString();
  EXPECT_EQ(seq_resp.metrics.bgp.morsels, 0u);
  if (expected_ok[0])
    EXPECT_TRUE(BitIdentical(seq_resp.rows, expected[0]));
}

TEST_P(ParallelEngineTest, TwoServicesShareOneExecutorPool) {
  auto shared = std::make_shared<ExecutorPool>(3);
  QueryService::Options sopts;
  sopts.pool = shared;
  sopts.intra_query_parallelism = 2;
  QueryService s1(db_, sopts);
  QueryService s2(db_, sopts);
  EXPECT_EQ(s1.pool().get(), shared.get());
  EXPECT_EQ(s2.pool().get(), shared.get());
  EXPECT_EQ(s1.num_threads(), 3u);

  const std::string q = LubmPaperQueries()[0].sparql;
  QueryRequest r1{q, ExecOptions::Full(), {}, nullptr};
  QueryRequest r2{q, ExecOptions::Full(), {}, nullptr};
  QueryResponse a = s1.Submit(std::move(r1)).get();
  QueryResponse b = s2.Submit(std::move(r2)).get();
  ASSERT_TRUE(a.status.ok()) << a.status.ToString();
  ASSERT_TRUE(b.status.ok()) << b.status.ToString();
  EXPECT_TRUE(BitIdentical(a.rows, b.rows));

  s1.Shutdown();  // must not stop the shared pool...
  QueryResponse c = s2.Submit(QueryRequest{q, ExecOptions::Full(), {},
                                           nullptr})
                        .get();
  EXPECT_TRUE(c.status.ok()) << "...which still serves the other service";
}

}  // namespace
}  // namespace sparqluo
