// Reference SPARQL evaluator for differential testing.
//
// A deliberately naive interpreter over the parsed AST: solution mappings
// are std::map<VarId, TermId>, every operator is a nested loop, property
// paths are textbook BFS over a triple list, aggregation is a single
// sequential pass. No indexes, no morsels, no BE-trees — so a bug in the
// engine's clever machinery (CSR scans, worst-case-optimal joins, morsel
// parallelism, plan transformation) cannot also hide here.
//
// Semantics mirror the engine's documented dialect (docs/sparql_surface.md):
// elements of a group combine left-to-right, FILTER errors drop rows,
// aggregates range over bound values, `*` includes zero-length paths, and
// CONSTRUCT deduplicates after applying solution modifiers.
//
// Caveat on floating-point sums: the engine accumulates SUM/AVG per
// 1024-row morsel and merges partials in morsel order; the reference
// accumulates in its own row order. The two agree exactly only when every
// numeric input is integer-valued (sums exact in double) — which is what
// the differential generator emits. Decimal-lexical inputs are covered by
// the hand-written conformance fixtures instead.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "algebra/binding_set.h"
#include "rdf/dictionary.h"
#include "rdf/term.h"
#include "sparql/ast.h"
#include "store/update.h"

namespace sparqluo {
namespace testing {

/// One solution row in canonical form: the sorted "?name=<N-Triples term>"
/// pairs of its bound variables. CONSTRUCT rows are a single
/// "<s> <p> <o> ." statement. Engines guarantee bag equality, not row
/// order, for unordered queries — callers sort the outer vector before
/// comparing.
using CanonicalRow = std::vector<std::string>;

struct RefOutput {
  bool ask = false;        ///< Query was an ASK.
  bool ask_value = false;  ///< ASK verdict (rows is empty then).
  std::vector<CanonicalRow> rows;
};

/// Evaluates `query` naively over `triples`. `dict` must be the SAME
/// dictionary the engine under test reads: DISTINCT-aggregate folding and
/// MIN/MAX tie-breaks depend on shared term ids, and aggregate results /
/// absent zero-length path endpoints intern new terms into it.
RefOutput ReferenceEvaluate(const Query& query,
                            const std::vector<Triple>& triples,
                            Dictionary* dict);

/// Renders engine output rows into the same canonical form (hidden
/// '.'-prefixed variables skipped; CONSTRUCT's three columns rendered as
/// one statement).
std::vector<CanonicalRow> CanonicalizeEngineRows(const BindingSet& rows,
                                                 const Query& query,
                                                 const Dictionary& dict);

/// Sorted canonical rows — the form differential tests compare.
std::vector<CanonicalRow> SortedCanonical(std::vector<CanonicalRow> rows);

/// Applies a parsed update script naively: data commands apply their
/// ground triples, pattern commands evaluate WHERE with ReferenceEvaluate
/// machinery against the evolving state, expand all delete templates
/// before all insert templates, and skip unbound or ill-formed
/// instantiations. Returns the expected final statement set, one
/// "<s> <p> <o> ." line per triple.
std::set<std::string> ReferenceUpdate(
    const std::vector<UpdateCommand>& commands,
    const std::vector<Triple>& initial, Dictionary* dict);

/// The store's current triples as canonical statements (for comparing an
/// engine commit against ReferenceUpdate).
template <typename TripleRange>
std::set<std::string> StatementSet(const TripleRange& triples,
                                   const Dictionary& dict) {
  std::set<std::string> out;
  for (const Triple& t : triples) {
    out.insert(dict.Decode(t.s).ToString() + " " + dict.Decode(t.p).ToString() +
               " " + dict.Decode(t.o).ToString() + " .");
  }
  return out;
}

}  // namespace testing
}  // namespace sparqluo
