INSERT DATA { <http://ex.org/g> <http://ex.org/knows> <http://ex.org/a> . <http://ex.org/g> <http://ex.org/type> <http://ex.org/C2> }

DELETE { ?s <http://ex.org/knows> ?o } INSERT { ?o <http://ex.org/knownBy> ?s } WHERE { ?s <http://ex.org/knows> ?o . ?s <http://ex.org/type> <http://ex.org/C1> }

DELETE { ?s <http://ex.org/age> ?v } WHERE { ?s <http://ex.org/type> <http://ex.org/C2> . ?s <http://ex.org/age> ?v }
