// Property-based tests: random graphs x random SPARQL-UO queries, checking
// the core invariants of DESIGN.md §6:
//   1. base == TT == CP == full == binary-tree oracle (as bags)
//   2. Theorems 1 and 2 hold on random patterns
//   3. merge/inject preserve BE-tree validity and evaluation results
//   4. serializer round-trip preserves plan structure
#include <gtest/gtest.h>

#include <sstream>

#include "algebra/operators.h"
#include "baseline/binary_tree_eval.h"
#include "betree/builder.h"
#include "betree/serializer.h"
#include "engine/database.h"
#include "optimizer/transformations.h"
#include "sparql/parser.h"
#include "util/random.h"

namespace sparqluo {
namespace {

/// Generates a small random graph over `n_nodes` nodes and `n_preds`
/// predicates, with skewed attribute coverage.
void RandomGraph(Random* rng, size_t n_nodes, size_t n_preds, size_t n_edges,
                 Database* db) {
  auto node = [](uint64_t i) {
    return Term::Iri("http://g/n" + std::to_string(i));
  };
  auto pred = [](uint64_t i) {
    return Term::Iri("http://g/p" + std::to_string(i));
  };
  for (size_t e = 0; e < n_edges; ++e) {
    db->AddTriple(node(rng->Uniform(n_nodes)), pred(rng->Uniform(n_preds)),
                  node(rng->Uniform(n_nodes)));
  }
  // Some literal attributes.
  for (size_t i = 0; i < n_nodes; ++i) {
    if (rng->Bernoulli(0.5))
      db->AddTriple(node(i), pred(n_preds), Term::Literal("v" + std::to_string(i % 5)));
  }
}

/// Generates a random SPARQL-UO group graph pattern over variables
/// ?v0..?v5 and predicates p0..pN. Depth-bounded.
std::string RandomPattern(Random* rng, size_t n_preds, int depth) {
  auto var = [&]() { return "?v" + std::to_string(rng->Uniform(6)); };
  auto pred = [&]() {
    return "<http://g/p" + std::to_string(rng->Uniform(n_preds + 1)) + ">";
  };
  auto triple = [&]() { return var() + " " + pred() + " " + var() + " . "; };

  std::string out = "{ ";
  size_t n_elems = rng->Range(1, 3);
  for (size_t i = 0; i < n_elems; ++i) {
    double roll = rng->NextDouble();
    if (depth <= 0 || roll < 0.55) {
      out += triple();
    } else if (roll < 0.75) {
      out += RandomPattern(rng, n_preds, depth - 1) + " UNION " +
             RandomPattern(rng, n_preds, depth - 1) + " ";
    } else if (roll < 0.95) {
      out += "OPTIONAL " + RandomPattern(rng, n_preds, depth - 1) + " ";
    } else {
      out += RandomPattern(rng, n_preds, depth - 1) + " ";
    }
  }
  out += "}";
  return out;
}

class PropertyTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest, ::testing::Range(0, 12));

TEST_P(PropertyTest, AllApproachesMatchOracleOnRandomQueries) {
  Random rng(1000 + static_cast<uint64_t>(GetParam()));
  Database db;
  RandomGraph(&rng, 30, 3, 90, &db);
  db.Finalize(GetParam() % 2 == 0 ? EngineKind::kWco : EngineKind::kHashJoin);
  BinaryTreeEvaluator oracle(db.store(), db.dict());

  for (int trial = 0; trial < 8; ++trial) {
    std::string body = RandomPattern(&rng, 3, 2);
    std::string text = "SELECT * WHERE " + body;
    auto q = db.Parse(text);
    ASSERT_TRUE(q.ok()) << text;
    auto expected = oracle.Execute(*q);
    ASSERT_TRUE(expected.ok());
    // Cap pathological cross products for test time.
    if (expected->size() > 200000) continue;
    for (const ExecOptions& opts :
         {ExecOptions::Base(), ExecOptions::TT(), ExecOptions::CP(),
          ExecOptions::Full()}) {
      auto got = db.Query(text, opts);
      ASSERT_TRUE(got.ok()) << text << " under " << opts.Name();
      EXPECT_TRUE(BagEquals(*expected, *got))
          << "query: " << text << "\napproach: " << opts.Name()
          << "\nexpected " << expected->size() << " rows, got " << got->size();
    }
  }
}

TEST_P(PropertyTest, Theorem1OnRandomData) {
  // [[P1 AND (P2 UNION P3)]] == [[(P1 AND P2) UNION (P1 AND P3)]]
  Random rng(2000 + static_cast<uint64_t>(GetParam()));
  Database db;
  RandomGraph(&rng, 25, 3, 70, &db);
  db.Finalize(EngineKind::kWco);
  BinaryTreeEvaluator oracle(db.store(), db.dict());

  for (int trial = 0; trial < 5; ++trial) {
    auto tp = [&]() {
      return "?v" + std::to_string(rng.Uniform(4)) + " <http://g/p" +
             std::to_string(rng.Uniform(3)) + "> ?v" +
             std::to_string(rng.Uniform(4)) + " . ";
    };
    std::string p1 = tp(), p2 = tp(), p3 = tp();
    auto lhs = db.Parse("SELECT * WHERE { " + p1 + " { " + p2 + " } UNION { " +
                        p3 + " } }");
    auto rhs = db.Parse("SELECT * WHERE { { " + p1 + p2 + " } UNION { " + p1 +
                        p3 + " } }");
    ASSERT_TRUE(lhs.ok() && rhs.ok());
    auto r1 = oracle.Execute(*lhs);
    auto r2 = oracle.Execute(*rhs);
    ASSERT_TRUE(r1.ok() && r2.ok());
    EXPECT_TRUE(BagEquals(*r1, *r2)) << p1 << "|" << p2 << "|" << p3;
  }
}

TEST_P(PropertyTest, Theorem2OnRandomData) {
  // [[P1 OPTIONAL P2]] == [[P1 OPTIONAL (P1 AND P2)]]
  Random rng(3000 + static_cast<uint64_t>(GetParam()));
  Database db;
  RandomGraph(&rng, 25, 3, 70, &db);
  db.Finalize(EngineKind::kWco);
  BinaryTreeEvaluator oracle(db.store(), db.dict());

  for (int trial = 0; trial < 5; ++trial) {
    auto tp = [&]() {
      return "?v" + std::to_string(rng.Uniform(4)) + " <http://g/p" +
             std::to_string(rng.Uniform(3)) + "> ?v" +
             std::to_string(rng.Uniform(4)) + " . ";
    };
    std::string p1 = tp(), p2 = tp();
    auto lhs =
        db.Parse("SELECT * WHERE { " + p1 + " OPTIONAL { " + p2 + " } }");
    auto rhs = db.Parse("SELECT * WHERE { " + p1 + " OPTIONAL { " + p1 + p2 +
                        " } }");
    ASSERT_TRUE(lhs.ok() && rhs.ok());
    auto r1 = oracle.Execute(*lhs);
    auto r2 = oracle.Execute(*rhs);
    ASSERT_TRUE(r1.ok() && r2.ok());
    EXPECT_TRUE(BagEquals(*r1, *r2)) << p1 << "|" << p2;
  }
}

TEST_P(PropertyTest, RandomTransformationsPreserveValidityAndResults) {
  Random rng(4000 + static_cast<uint64_t>(GetParam()));
  Database db;
  RandomGraph(&rng, 30, 3, 90, &db);
  db.Finalize(EngineKind::kWco);
  Executor exec(db.engine(), db.dict(), db.store());

  for (int trial = 0; trial < 6; ++trial) {
    std::string text = "SELECT * WHERE " + RandomPattern(&rng, 3, 2);
    auto q = db.Parse(text);
    ASSERT_TRUE(q.ok());
    BeTree tree = BuildBeTree(*q);
    ASSERT_TRUE(tree.Validate().ok());
    BindingSet before = exec.EvaluateTree(tree, ExecOptions{});
    if (before.size() > 200000) continue;

    // Apply every applicable transformation at the root level, randomly.
    BeNode* root = tree.root.get();
    for (size_t i = 0; i < root->children.size(); ++i) {
      for (size_t j = 0; j < root->children.size(); ++j) {
        if (rng.Bernoulli(0.5) && CanMerge(*root, i, j)) {
          ApplyMerge(root, i, j);
          i = SIZE_MAX;  // restart outer loop: indices shifted
          break;
        }
        if (rng.Bernoulli(0.5) && CanInject(*root, i, j)) {
          ApplyInject(root, i, j);
        }
      }
      if (i == SIZE_MAX) continue;
    }
    ASSERT_TRUE(tree.Validate().ok()) << text;
    BindingSet after = exec.EvaluateTree(tree, ExecOptions{});
    EXPECT_TRUE(BagEquals(before, after)) << text;
  }
}

TEST_P(PropertyTest, SerializerRoundTripOnRandomPlans) {
  Random rng(5000 + static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 10; ++trial) {
    std::string text = "SELECT * WHERE " + RandomPattern(&rng, 3, 2);
    auto q = ParseQuery(text);
    ASSERT_TRUE(q.ok()) << text;
    BeTree t1 = BuildBeTree(*q);
    std::string serialized = SerializeToQuery(t1, q->vars);
    auto q2 = ParseQuery(serialized);
    ASSERT_TRUE(q2.ok()) << serialized;
    BeTree t2 = BuildBeTree(*q2);
    EXPECT_EQ(DebugString(t1, q->vars), DebugString(t2, q2->vars))
        << "original: " << text << "\nserialized: " << serialized;
  }
}

TEST_P(PropertyTest, CandidatePruningInvariantUnderThresholds) {
  // Any threshold setting must leave results unchanged.
  Random rng(6000 + static_cast<uint64_t>(GetParam()));
  Database db;
  RandomGraph(&rng, 30, 3, 90, &db);
  db.Finalize(EngineKind::kWco);

  std::string text = "SELECT * WHERE " + RandomPattern(&rng, 3, 2);
  auto base = db.Query(text, ExecOptions::Base());
  ASSERT_TRUE(base.ok()) << text;
  for (double frac : {0.0, 0.001, 0.05, 0.5, 1.0}) {
    ExecOptions opts = ExecOptions::CP();
    opts.fixed_threshold_fraction = frac;
    auto got = db.Query(text, opts);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(BagEquals(*base, *got)) << text << " frac=" << frac;
  }
}

}  // namespace
}  // namespace sparqluo
