// Tests for the well-designedness analyzer, and its consistency with the
// transformation safety guards.
#include <gtest/gtest.h>

#include "optimizer/well_designed.h"
#include "sparql/parser.h"
#include "workload/paper_queries.h"

namespace sparqluo {
namespace {

bool WellDesigned(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return IsWellDesigned(*q);
}

TEST(WellDesignedTest, PlainBgpIsWellDesigned) {
  EXPECT_TRUE(WellDesigned("SELECT * WHERE { ?x <http://a> ?y . }"));
}

TEST(WellDesignedTest, CoveredOptionalIsWellDesigned) {
  // ?x occurs in the OPTIONAL and outside, but it is bound on the left.
  EXPECT_TRUE(WellDesigned(
      "SELECT * WHERE { ?x <http://a> ?y . OPTIONAL { ?x <http://b> ?z . } }"));
}

TEST(WellDesignedTest, UncoveredSharedVariableViolates) {
  // ?z occurs in the OPTIONAL and in a pattern AFTER it, without being
  // bound on the OPTIONAL's left: the classic non-well-designed shape.
  EXPECT_FALSE(WellDesigned(
      "SELECT * WHERE { ?x <http://a> ?y . OPTIONAL { ?y <http://b> ?z . } "
      "?z <http://c> ?w . }"));
}

TEST(WellDesignedTest, LeadingOptionalSharingVariableViolates) {
  EXPECT_FALSE(WellDesigned(
      "SELECT * WHERE { OPTIONAL { ?x <http://b> ?z . } ?x <http://a> ?y . }"));
}

TEST(WellDesignedTest, LeadingOptionalWithFreshVariablesIsFine) {
  EXPECT_TRUE(WellDesigned(
      "SELECT * WHERE { OPTIONAL { ?p <http://b> ?q . } ?x <http://a> ?y . }"));
}

TEST(WellDesignedTest, NestedOptionalChainIsWellDesigned) {
  EXPECT_TRUE(WellDesigned(
      "SELECT * WHERE { ?x <http://a> ?y . OPTIONAL { ?y <http://b> ?z . "
      "OPTIONAL { ?z <http://c> ?w . } } }"));
}

TEST(WellDesignedTest, SiblingOptionalsSharingFreshVariableViolate) {
  // ?z occurs in two sibling OPTIONALs without a certain binding: the
  // second OPTIONAL's ?z is constrained by the first's, violating the
  // condition.
  EXPECT_FALSE(WellDesigned(
      "SELECT * WHERE { ?x <http://a> ?y . "
      "OPTIONAL { ?x <http://b> ?z . } OPTIONAL { ?x <http://c> ?z . } }"));
}

TEST(WellDesignedTest, UnionBranchesAreIndependent) {
  // The same variable in two UNION branches is fine: branches are
  // alternatives, not conjunctive context.
  EXPECT_TRUE(WellDesigned(
      "SELECT * WHERE { { ?x <http://a> ?y . OPTIONAL { ?x <http://b> ?z . } } "
      "UNION { ?x <http://c> ?y . OPTIONAL { ?x <http://d> ?z . } } }"));
}

TEST(WellDesignedTest, ViolationReportsVariableAndDepth) {
  auto q = ParseQuery(
      "SELECT * WHERE { ?x <http://a> ?y . OPTIONAL { ?y <http://b> ?z . } "
      "?z <http://c> ?w . }");
  ASSERT_TRUE(q.ok());
  auto violations = FindWellDesignedViolations(q->where);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(q->vars.Name(violations[0].variable), "z");
  EXPECT_EQ(violations[0].depth, 0u);
}

TEST(WellDesignedTest, PaperBenchmarkQueriesAreWellDesigned) {
  // The paper's workloads are well-designed except for documented shapes;
  // verify the analyzer accepts the Group 2 (LBR) queries, which WDPT-based
  // systems require to be well-designed.
  for (const PaperQuery& pq : LubmPaperQueries()) {
    if (pq.id.rfind("q2.", 0) != 0) continue;
    auto q = ParseQuery(pq.sparql);
    ASSERT_TRUE(q.ok()) << pq.id;
    EXPECT_TRUE(IsWellDesigned(*q)) << pq.id;
  }
  for (const PaperQuery& pq : DbpediaPaperQueries()) {
    if (pq.id.rfind("q2.", 0) != 0) continue;
    auto q = ParseQuery(pq.sparql);
    ASSERT_TRUE(q.ok()) << pq.id;
    EXPECT_TRUE(IsWellDesigned(*q)) << pq.id;
  }
}

}  // namespace
}  // namespace sparqluo
