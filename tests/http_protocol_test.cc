// SPARQL Protocol conformance tests for the HTTP endpoint
// (src/server/sparql_endpoint.h): content negotiation, GET/POST parity,
// percent-decoding, the status-code contract (including the
// kOverloaded -> 503 / deadline -> 408 regression), and bit-identical
// results between the in-process QueryService API and over-the-wire
// bodies for the full LUBM paper workload at parallelism 1 and 8.
//
// The client side is tests/http_client.h — an independent blocking-socket
// implementation, so both ends of the protocol are exercised by code that
// shares nothing with src/http.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/result_writer.h"
#include "http_client.h"
#include "server/query_service.h"
#include "server/sparql_endpoint.h"
#include "workload/lubm_generator.h"
#include "workload/paper_queries.h"

namespace sparqluo {
namespace {

using testhttp::Fetch;
using testhttp::Response;
using testhttp::SparqlGet;
using testhttp::TestHttpClient;
using testhttp::UrlEncode;

constexpr char kSimpleQuery[] = "SELECT ?x WHERE { ?x ?p ?o } LIMIT 5";

/// Service + endpoint bundle over the suite-shared database.
struct Endpoint {
  explicit Endpoint(Database& db, QueryService::Options sopts = {},
                    SparqlEndpoint::Options eopts = {})
      : service(db, FillDefaults(sopts)),
        endpoint(service, db.dict(), eopts) {
    Status s = endpoint.Start();
    EXPECT_TRUE(s.ok()) << s.ToString();
  }

  static QueryService::Options FillDefaults(QueryService::Options o) {
    if (o.num_threads == 0) o.num_threads = 4;
    return o;
  }

  uint16_t port() const { return endpoint.port(); }

  QueryService service;
  SparqlEndpoint endpoint;
};

class HttpProtocolTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    LubmConfig cfg;
    cfg.universities = 1;
    GenerateLubm(cfg, db_);
    db_->Finalize(EngineKind::kWco);
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static Database* db_;
};

Database* HttpProtocolTest::db_ = nullptr;

// --- Routes and basic responses -----------------------------------------

TEST_F(HttpProtocolTest, HealthzMetricsAndUnknownRoute) {
  Endpoint ep(*db_);
  Response health = Fetch(ep.port(),
                          "GET /healthz HTTP/1.1\r\nHost: t\r\n"
                          "Connection: close\r\n\r\n");
  ASSERT_TRUE(health.ok);
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  Response metrics = Fetch(ep.port(),
                           "GET /metrics HTTP/1.1\r\nHost: t\r\n"
                           "Connection: close\r\n\r\n");
  ASSERT_TRUE(metrics.ok);
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("sparqluo_http_requests_total"),
            std::string::npos);
  const std::string* ct = metrics.FindHeader("Content-Type");
  ASSERT_NE(ct, nullptr);
  EXPECT_NE(ct->find("text/plain"), std::string::npos);

  Response missing = Fetch(ep.port(),
                           "GET /nope HTTP/1.1\r\nHost: t\r\n"
                           "Connection: close\r\n\r\n");
  ASSERT_TRUE(missing.ok);
  EXPECT_EQ(missing.status, 404);

  Response wrong_method = Fetch(ep.port(),
                                "POST /healthz HTTP/1.1\r\nHost: t\r\n"
                                "Content-Length: 0\r\n"
                                "Connection: close\r\n\r\n");
  ASSERT_TRUE(wrong_method.ok);
  EXPECT_EQ(wrong_method.status, 405);
  ASSERT_NE(wrong_method.FindHeader("Allow"), nullptr);
  EXPECT_EQ(*wrong_method.FindHeader("Allow"), "GET");
}

TEST_F(HttpProtocolTest, GetQueryStreamsJsonChunked) {
  Endpoint ep(*db_);
  Response r = Fetch(ep.port(), SparqlGet(kSimpleQuery));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  const std::string* ct = r.FindHeader("Content-Type");
  ASSERT_NE(ct, nullptr);
  EXPECT_EQ(*ct, "application/sparql-results+json");
  const std::string* te = r.FindHeader("Transfer-Encoding");
  ASSERT_NE(te, nullptr);
  EXPECT_EQ(*te, "chunked");
  EXPECT_NE(r.body.find("\"bindings\""), std::string::npos);
  EXPECT_NE(r.body.find("\"vars\":[\"x\"]"), std::string::npos);
}

// --- GET/POST parity ----------------------------------------------------

TEST_F(HttpProtocolTest, GetAndPostVariantsAreBitIdentical) {
  Endpoint ep(*db_);
  Response via_get = Fetch(ep.port(), SparqlGet(kSimpleQuery));

  std::string form = "query=" + UrlEncode(kSimpleQuery);
  Response via_form =
      Fetch(ep.port(),
            "POST /sparql HTTP/1.1\r\nHost: t\r\n"
            "Content-Type: application/x-www-form-urlencoded\r\n"
            "Content-Length: " + std::to_string(form.size()) + "\r\n"
            "Connection: close\r\n\r\n" + form);

  std::string raw(kSimpleQuery);
  Response via_raw =
      Fetch(ep.port(),
            "POST /sparql HTTP/1.1\r\nHost: t\r\n"
            "Content-Type: application/sparql-query\r\n"
            "Content-Length: " + std::to_string(raw.size()) + "\r\n"
            "Connection: close\r\n\r\n" + raw);

  ASSERT_TRUE(via_get.ok);
  ASSERT_TRUE(via_form.ok);
  ASSERT_TRUE(via_raw.ok);
  EXPECT_EQ(via_get.status, 200);
  EXPECT_EQ(via_form.status, 200);
  EXPECT_EQ(via_raw.status, 200);
  EXPECT_EQ(via_get.body, via_form.body);
  EXPECT_EQ(via_get.body, via_raw.body);
}

// --- Content negotiation ------------------------------------------------

TEST_F(HttpProtocolTest, ContentNegotiation) {
  Endpoint ep(*db_);
  struct Case {
    const char* accept;
    int status;
    const char* content_type;  // null: don't check
  };
  const Case cases[] = {
      {"", 200, "application/sparql-results+json"},  // absent header
      {"application/sparql-results+json", 200,
       "application/sparql-results+json"},
      {"application/json", 200, "application/sparql-results+json"},
      {"text/tab-separated-values", 200, "text/tab-separated-values"},
      {"text/*", 200, "text/tab-separated-values"},
      {"*/*", 200, "application/sparql-results+json"},
      // q-values override specificity order.
      {"application/sparql-results+json;q=0.1, "
       "text/tab-separated-values;q=0.9",
       200, "text/tab-separated-values"},
      // Specific match beats a wildcard at equal q.
      {"*/*;q=0.5, text/tab-separated-values;q=0.5", 200,
       "text/tab-separated-values"},
      {"image/png", 406, nullptr},
      {"application/sparql-results+json;q=0, text/html", 406, nullptr},
  };
  for (const Case& c : cases) {
    Response r = Fetch(ep.port(), SparqlGet(kSimpleQuery, c.accept));
    ASSERT_TRUE(r.ok) << "Accept: " << c.accept;
    EXPECT_EQ(r.status, c.status) << "Accept: " << c.accept;
    if (c.content_type != nullptr) {
      const std::string* ct = r.FindHeader("Content-Type");
      ASSERT_NE(ct, nullptr) << "Accept: " << c.accept;
      EXPECT_EQ(*ct, c.content_type) << "Accept: " << c.accept;
    }
  }
}

// --- Percent-decoding ---------------------------------------------------

TEST_F(HttpProtocolTest, PercentDecodingPlusAndUtf8) {
  Endpoint ep(*db_);
  // Spaces ride as '+', the UTF-8 literal as %C3%A9, the newline as %0A:
  // a parse on the server side proves every decoding step survived.
  std::string query =
      "SELECT ?x\nWHERE { ?x ?p \"h\xC3\xA9llo\" }";
  std::string encoded = UrlEncode(query);
  EXPECT_NE(encoded.find('+'), std::string::npos);
  EXPECT_NE(encoded.find("%C3%A9"), std::string::npos);
  EXPECT_NE(encoded.find("%0A"), std::string::npos);
  Response r = Fetch(ep.port(), SparqlGet(query));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  // No such literal in LUBM: a well-formed empty result set.
  EXPECT_NE(r.body.find("\"bindings\":[]"), std::string::npos);

  // A malformed escape in the query string is a client error.
  Response bad = Fetch(ep.port(),
                       "GET /sparql?query=%GG HTTP/1.1\r\nHost: t\r\n"
                       "Connection: close\r\n\r\n");
  ASSERT_TRUE(bad.ok);
  EXPECT_EQ(bad.status, 400);
}

// --- Status-code contract -----------------------------------------------

TEST_F(HttpProtocolTest, ClientErrorStatusCodes) {
  Endpoint ep(*db_);
  // Missing query parameter.
  Response r = Fetch(ep.port(),
                     "GET /sparql HTTP/1.1\r\nHost: t\r\n"
                     "Connection: close\r\n\r\n");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 400);

  // Query syntax error.
  r = Fetch(ep.port(), SparqlGet("SELECT * WHERE { ?x ?p }"));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 400);

  // Malformed timeout parameter.
  r = Fetch(ep.port(), SparqlGet(kSimpleQuery, "", "timeout=abc"));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 400);

  // Unsupported method on /sparql.
  r = Fetch(ep.port(),
            "DELETE /sparql HTTP/1.1\r\nHost: t\r\n"
            "Connection: close\r\n\r\n");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 405);
  ASSERT_NE(r.FindHeader("Allow"), nullptr);
  EXPECT_EQ(*r.FindHeader("Allow"), "GET, POST");

  // Unsupported POST media type.
  r = Fetch(ep.port(),
            "POST /sparql HTTP/1.1\r\nHost: t\r\n"
            "Content-Type: text/plain\r\nContent-Length: 3\r\n"
            "Connection: close\r\n\r\nfoo");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 415);

  // /update accepts POST only.
  r = Fetch(ep.port(),
            "GET /update HTTP/1.1\r\nHost: t\r\n"
            "Connection: close\r\n\r\n");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 405);
  ASSERT_NE(r.FindHeader("Allow"), nullptr);
  EXPECT_EQ(*r.FindHeader("Allow"), "POST");
}

// Admission rejection (kOverloaded) maps to 503 + Retry-After — never 500.
// Regression test for the status introduced alongside this endpoint: a
// shut-down (or full-queue) service rejects inline with kOverloaded.
TEST_F(HttpProtocolTest, OverloadedMapsTo503WithRetryAfter) {
  Endpoint ep(*db_);
  ep.service.Shutdown();
  Response r = Fetch(ep.port(), SparqlGet(kSimpleQuery));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 503);
  const std::string* retry = r.FindHeader("Retry-After");
  ASSERT_NE(retry, nullptr);
  EXPECT_EQ(*retry, "1");
}

// A deadline abort of an admitted query is the client's 408, not a 500
// and not the overload 503.
TEST_F(HttpProtocolTest, DeadlineAbortMapsTo408) {
  Endpoint ep(*db_);
  // Cross product over the whole store: cannot finish within 1 ms; the
  // morsel checkpoints convert the deadline into a clean abort.
  Response r = Fetch(
      ep.port(),
      SparqlGet("SELECT * WHERE { ?a ?p ?b . ?c ?q ?d . }", "", "timeout=1"),
      /*timeout_ms=*/30000);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 408);
}

// Regression: a huge-but-well-formed timeout used to be fed verbatim into
// steady_clock deadline arithmetic; the overflow put the deadline in the
// past and a trivially-cheap query came back as a spurious instant 408.
// Any all-digit timeout must clamp to the server's ceiling and succeed.
TEST_F(HttpProtocolTest, HugeTimeoutClampsInsteadOfInstant408) {
  Endpoint ep(*db_);
  // 12 digits: accepted by the old length check, overflowed the deadline.
  Response r =
      Fetch(ep.port(), SparqlGet(kSimpleQuery, "", "timeout=999999999999"));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200) << r.body;

  // 19 digits (> int64 max milliseconds): clamped, not rejected.
  r = Fetch(ep.port(),
            SparqlGet(kSimpleQuery, "", "timeout=9999999999999999999"));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200) << r.body;

  // 40 digits: still well-formed, still clamped.
  std::string forty(40, '9');
  r = Fetch(ep.port(), SparqlGet(kSimpleQuery, "", "timeout=" + forty));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200) << r.body;

  // Non-digit values stay rejected.
  r = Fetch(ep.port(), SparqlGet(kSimpleQuery, "", "timeout=1e9"));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 400);
}

// A repeat of an identical query is served from the result cache with a
// byte-identical body, in both negotiated formats.
TEST_F(HttpProtocolTest, ResultCacheRepeatBodiesAreIdentical) {
  Endpoint ep(*db_);
  for (const char* accept :
       {"application/sparql-results+json", "text/tab-separated-values"}) {
    Response cold = Fetch(ep.port(), SparqlGet(kSimpleQuery, accept));
    ASSERT_TRUE(cold.ok);
    ASSERT_EQ(cold.status, 200);
    Response warm = Fetch(ep.port(), SparqlGet(kSimpleQuery, accept));
    ASSERT_TRUE(warm.ok);
    ASSERT_EQ(warm.status, 200);
    EXPECT_EQ(warm.body, cold.body) << accept;
  }
  EXPECT_GT(ep.service.ResultCacheStats().hits, 0u);

  // The new cache/dedup metric families render on /metrics.
  Response metrics = Fetch(ep.port(),
                           "GET /metrics HTTP/1.1\r\nHost: t\r\n"
                           "Connection: close\r\n\r\n");
  ASSERT_TRUE(metrics.ok);
  for (const char* family :
       {"sparqluo_result_cache_hits_total", "sparqluo_result_cache_misses_total",
        "sparqluo_result_cache_bytes", "sparqluo_dedup_followers_total",
        "sparqluo_dedup_served_total", "sparqluo_pinned_requests"}) {
    EXPECT_NE(metrics.body.find(family), std::string::npos)
        << family << " missing from /metrics";
  }
}

// --- Updates ------------------------------------------------------------

TEST_F(HttpProtocolTest, UpdateRoundTripAndReadOnly) {
  // A private database: this test commits to it.
  Database db;
  LubmConfig cfg;
  cfg.universities = 1;
  cfg.density = 0.05;
  GenerateLubm(cfg, &db);
  db.Finalize(EngineKind::kWco);
  Endpoint ep(db);

  std::string update =
      "INSERT DATA { <http://ex.org/s> <http://ex.org/p> <http://ex.org/o> }";
  std::string form = "update=" + UrlEncode(update);
  Response r =
      Fetch(ep.port(),
            "POST /update HTTP/1.1\r\nHost: t\r\n"
            "Content-Type: application/x-www-form-urlencoded\r\n"
            "Content-Length: " + std::to_string(form.size()) + "\r\n"
            "Connection: close\r\n\r\n" + form);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "ok\n");

  // The committed triple is visible to a follow-up query.
  Response check = Fetch(
      ep.port(),
      SparqlGet("SELECT ?o WHERE { <http://ex.org/s> <http://ex.org/p> ?o }"));
  ASSERT_TRUE(check.ok);
  EXPECT_EQ(check.status, 200);
  EXPECT_NE(check.body.find("http://ex.org/o"), std::string::npos);

  // The raw media type works too.
  std::string update2 =
      "INSERT DATA { <http://ex.org/s2> <http://ex.org/p> <http://ex.org/o> }";
  r = Fetch(ep.port(),
            "POST /update HTTP/1.1\r\nHost: t\r\n"
            "Content-Type: application/sparql-update\r\n"
            "Content-Length: " + std::to_string(update2.size()) + "\r\n"
            "Connection: close\r\n\r\n" + update2);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);

  // An update against a read-only service is the caller's 403.
  const Database& ro = db;
  QueryService ro_service(ro, Endpoint::FillDefaults({}));
  SparqlEndpoint ro_endpoint(ro_service, db.dict(), {});
  ASSERT_TRUE(ro_endpoint.Start().ok());
  r = Fetch(ro_endpoint.port(),
            "POST /update HTTP/1.1\r\nHost: t\r\n"
            "Content-Type: application/sparql-update\r\n"
            "Content-Length: " + std::to_string(update.size()) + "\r\n"
            "Connection: close\r\n\r\n" + update);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 403);
}

// --- Keep-alive and chunked request bodies ------------------------------

TEST_F(HttpProtocolTest, KeepAliveServesSequentialRequests) {
  Endpoint ep(*db_);
  TestHttpClient client(ep.port());
  ASSERT_TRUE(client.connected());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.SendRaw("GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"));
    Response r = client.ReadResponse();
    ASSERT_TRUE(r.ok) << "request " << i;
    EXPECT_EQ(r.status, 200);
    EXPECT_EQ(r.body, "ok\n");
  }
}

TEST_F(HttpProtocolTest, ChunkedRequestBody) {
  Endpoint ep(*db_);
  std::string q(kSimpleQuery);
  std::string req =
      "POST /sparql HTTP/1.1\r\nHost: t\r\n"
      "Content-Type: application/sparql-query\r\n"
      "Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n";
  // Two chunks with a split size line, plus a trailer-free terminator.
  char size_line[16];
  size_t half = q.size() / 2;
  std::snprintf(size_line, sizeof(size_line), "%zx\r\n", half);
  req += size_line;
  req += q.substr(0, half) + "\r\n";
  std::snprintf(size_line, sizeof(size_line), "%zx\r\n", q.size() - half);
  req += size_line;
  req += q.substr(half) + "\r\n0\r\n\r\n";
  Response r = Fetch(ep.port(), req);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"bindings\""), std::string::npos);
}

// --- Bit-identity over the wire: the full paper workload ----------------

// Over-the-wire bodies must match in-process FormatResults output byte for
// byte, for every LUBM paper query, in both formats, at intra-query
// parallelism 1 and 8 (the parallel evaluation already guarantees
// bit-identical BindingSets; this extends the guarantee through the
// serializer and the HTTP path).
TEST_F(HttpProtocolTest, PaperWorkloadBitIdenticalOverTheWire) {
  for (size_t parallelism : {size_t{1}, size_t{8}}) {
    QueryService::Options sopts;
    sopts.num_threads = 8;
    sopts.intra_query_parallelism = parallelism;
    Endpoint ep(*db_, sopts);
    SCOPED_TRACE("parallelism=" + std::to_string(parallelism));

    for (const PaperQuery& pq : LubmPaperQueries()) {
      SCOPED_TRACE(pq.id);
      // In-process reference through the same service.
      QueryResponse ref =
          ep.service.Submit(QueryRequest{.text = pq.sparql}).get();
      ASSERT_TRUE(ref.status.ok()) << ref.status.ToString();
      ASSERT_NE(ref.plan, nullptr);
      std::string expect_json = FormatResults(
          ref.rows, ref.plan->query.vars, db_->dict(), ResultFormat::kJson);
      std::string expect_tsv = FormatResults(
          ref.rows, ref.plan->query.vars, db_->dict(), ResultFormat::kTsv);

      Response json = Fetch(
          ep.port(), SparqlGet(pq.sparql, "application/sparql-results+json"),
          /*timeout_ms=*/60000);
      ASSERT_TRUE(json.ok);
      ASSERT_EQ(json.status, 200);
      EXPECT_EQ(json.body, expect_json);

      Response tsv = Fetch(ep.port(),
                           SparqlGet(pq.sparql, "text/tab-separated-values"),
                           /*timeout_ms=*/60000);
      ASSERT_TRUE(tsv.ok);
      ASSERT_EQ(tsv.status, 200);
      EXPECT_EQ(tsv.body, expect_tsv);
    }
  }
}

}  // namespace
}  // namespace sparqluo
