// Tests for the observability layer (src/obs/): histogram accuracy bounds,
// registry interning + Prometheus rendering, concurrent recording, and
// span-tree invariants on real traced queries.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/query_service.h"
#include "util/random.h"
#include "workload/lubm_generator.h"
#include "workload/paper_queries.h"

namespace sparqluo {
namespace {

// ---------------------------------------------------------------------------
// Histogram

/// Exact percentile of a sorted sample vector, nearest-rank style matching
/// Histogram::Quantile's rank definition.
double ExactQuantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  size_t rank = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

TEST(HistogramTest, CountAndSum) {
  Histogram h;
  h.Observe(1.0);
  h.Observe(2.5);
  h.Observe(100.0);
  EXPECT_EQ(h.Count(), 3u);
  // Sum is stored at 2^-10 resolution; 1.0 + 2.5 + 100.0 is exactly
  // representable there.
  EXPECT_DOUBLE_EQ(h.Sum(), 103.5);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.Count(), 0u);
}

// The core accuracy contract: for any quantile, the histogram answer is
// within one bucket width of the exact sample percentile. Exercised over
// several orders of magnitude (sub-millisecond to multi-second latencies in
// ms units) with a deterministic generator.
TEST(HistogramTest, QuantileWithinOneBucketOfExact) {
  Random rng(42);
  Histogram h;
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform over [0.01, 10000): decade picked uniformly, mantissa
    // uniform within it.
    double decade = static_cast<double>(rng.Uniform(6));  // 0..5
    double mantissa =
        1.0 + 9.0 * static_cast<double>(rng.Uniform(1u << 20)) /
                  static_cast<double>(1u << 20);
    double v = 0.01 * mantissa * std::pow(10.0, decade);
    samples.push_back(v);
    h.Observe(v);
  }
  std::sort(samples.begin(), samples.end());
  ASSERT_EQ(h.Count(), samples.size());

  for (double q : {0.0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0}) {
    double exact = ExactQuantile(samples, q);
    double approx = h.Quantile(q);
    double width = Histogram::BucketWidth(exact);
    EXPECT_GE(approx, exact - width) << "q=" << q;
    EXPECT_LE(approx, exact + width) << "q=" << q;
  }
}

// Regression for the old ServiceStats design, which kept at most 2^18 raw
// latency samples and silently stopped updating percentiles after that. The
// histogram must keep moving arbitrarily far past that cap.
TEST(HistogramTest, PercentilesKeepMovingPastOldSampleCap) {
  constexpr size_t kOldCap = size_t{1} << 18;
  Histogram h;
  // Fill well past the old cap with 1.0 ms observations...
  for (size_t i = 0; i < kOldCap + 1000; ++i) h.Observe(1.0);
  double p50_before = h.Quantile(0.5);
  EXPECT_NEAR(p50_before, 1.0, Histogram::BucketWidth(1.0));
  // ...then shift the distribution. A capped sample vector would ignore all
  // of this; the histogram's median must follow the new regime.
  for (size_t i = 0; i < 3 * (kOldCap + 1000); ++i) h.Observe(100.0);
  double p50_after = h.Quantile(0.5);
  EXPECT_NEAR(p50_after, 100.0, Histogram::BucketWidth(100.0));
  EXPECT_EQ(h.Count(), 4 * (kOldCap + 1000));
}

TEST(HistogramTest, ConcurrentObserversLoseNothing) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Observe(1.0 + (i % 64));
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (const auto& b : h.NonEmptyBuckets()) bucket_total += b.count;
  EXPECT_EQ(bucket_total, h.Count());
}

TEST(HistogramTest, NonEmptyBucketsAreSortedAndCover) {
  Histogram h;
  h.Observe(0.5);
  h.Observe(7.0);
  h.Observe(7.1);
  h.Observe(5000.0);
  auto buckets = h.NonEmptyBuckets();
  ASSERT_GE(buckets.size(), 3u);
  uint64_t total = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    total += buckets[i].count;
    if (i > 0) {
      EXPECT_GT(buckets[i].upper_bound, buckets[i - 1].upper_bound);
    }
  }
  EXPECT_EQ(total, 4u);
}

// ---------------------------------------------------------------------------
// MetricRegistry

TEST(MetricRegistryTest, InterningReturnsStableHandles) {
  MetricRegistry reg;
  Counter* a = reg.GetCounter("test_total", "help", "k=\"1\"");
  Counter* b = reg.GetCounter("test_total", "ignored-on-reuse", "k=\"1\"");
  Counter* c = reg.GetCounter("test_total", "help", "k=\"2\"");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  a->Increment(3);
  EXPECT_EQ(b->value(), 3u);
  EXPECT_EQ(c->value(), 0u);
}

TEST(MetricRegistryTest, ConcurrentIncrementsThroughRegistry) {
  MetricRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&reg] {
      // Re-resolving the handle every iteration also hammers the registry
      // mutex from all threads — interning must stay consistent.
      for (int i = 0; i < kPerThread; ++i)
        reg.GetCounter("concurrent_total")->Increment();
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.GetCounter("concurrent_total")->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricRegistryTest, PrometheusRenderIsWellFormed) {
  MetricRegistry reg;
  reg.GetCounter("req_total", "Requests served.")->Increment(5);
  reg.GetGauge("depth", "Queue depth.", "shard=\"0\"")->Set(-2);
  Histogram* h = reg.GetHistogram("lat_ms", "Latency.");
  h->Observe(1.0);
  h->Observe(2.0);
  h->Observe(512.0);

  std::string text = reg.RenderPrometheus();
  EXPECT_NE(text.find("# HELP req_total Requests served."), std::string::npos);
  EXPECT_NE(text.find("# TYPE req_total counter"), std::string::npos);
  EXPECT_NE(text.find("req_total 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge"), std::string::npos);
  EXPECT_NE(text.find("depth{shard=\"0\"} -2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_count 3"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 3"), std::string::npos);

  // Bucket counts must be cumulative and non-decreasing per series.
  std::istringstream in(text);
  std::string line;
  uint64_t prev = 0;
  bool saw_bucket = false;
  while (std::getline(in, line)) {
    if (line.rfind("lat_ms_bucket{", 0) != 0) continue;
    saw_bucket = true;
    uint64_t v = std::stoull(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(v, prev) << line;
    prev = v;
  }
  EXPECT_TRUE(saw_bucket);
  EXPECT_EQ(prev, 3u);  // +Inf bucket equals _count.
}

// ---------------------------------------------------------------------------
// TraceContext

TEST(TraceContextTest, NullContextScopedSpanIsNoOp) {
  ScopedSpan s(nullptr, "anything");
  EXPECT_EQ(s.id(), TraceContext::kNoSpan);
  s.Attr("ignored", "x");  // Must not crash.
}

TEST(TraceContextTest, SpanCapDropsAndCounts) {
  TraceContext ctx(/*max_spans=*/4);
  for (int i = 0; i < 10; ++i) {
    auto id = ctx.StartSpan("s");
    ctx.EndSpan(id);
  }
  EXPECT_EQ(ctx.size(), 4u);
  EXPECT_EQ(ctx.dropped(), 6u);
  // Operations on a dropped id are harmless no-ops.
  ctx.AddAttr(TraceContext::kNoSpan, "k", "v");
  ctx.EndSpan(TraceContext::kNoSpan);
}

TEST(TraceContextTest, RenderersProduceOutput) {
  TraceContext ctx;
  auto root = ctx.StartSpan("query");
  auto child = ctx.StartSpan("parse", root);
  ctx.AddAttr(child, "chars", "17");
  ctx.EndSpan(child);
  ctx.EndSpan(root);

  std::string tree = ctx.RenderTree();
  EXPECT_NE(tree.find("query"), std::string::npos);
  EXPECT_NE(tree.find("parse"), std::string::npos);

  std::string json;
  size_t n = ctx.AppendChromeTraceEvents(/*pid=*/1, /*ts_offset_us=*/0, &json);
  EXPECT_EQ(n, 2u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"parse\""), std::string::npos);
}

/// Checks the structural invariants of a recorded trace: exactly one root,
/// every parent index valid and started before (and closed no earlier than)
/// each of its children, every span closed.
void CheckSpanTree(const std::vector<TraceSpan>& spans) {
  ASSERT_FALSE(spans.empty());
  size_t roots = 0;
  for (size_t i = 0; i < spans.size(); ++i) {
    const TraceSpan& s = spans[i];
    ASSERT_GE(s.dur_us, 0) << "span '" << s.name << "' left open";
    if (s.parent == TraceContext::kNoSpan) {
      ++roots;
      continue;
    }
    ASSERT_LT(s.parent, spans.size()) << "span '" << s.name << "'";
    const TraceSpan& p = spans[s.parent];
    // Parent must enclose the child (start before, end no earlier).
    EXPECT_LE(p.start_us, s.start_us)
        << "'" << p.name << "' starts after child '" << s.name << "'";
    EXPECT_GE(p.start_us + p.dur_us, s.start_us + s.dur_us)
        << "'" << p.name << "' ends before child '" << s.name << "'";
  }
  EXPECT_EQ(roots, 1u);
}

class TracedQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LubmConfig cfg;
    cfg.universities = 1;
    GenerateLubm(cfg, &db_);
    db_.Finalize(EngineKind::kWco);
  }
  Database db_;
};

// A real query through the service with trace_queries on: the span tree is
// well-formed and covers the whole lifecycle.
TEST_F(TracedQueryTest, ServiceTraceCoversLifecycle) {
  QueryService::Options sopts;
  sopts.num_threads = 2;
  sopts.trace_queries = true;
  QueryService service(db_, sopts);

  const auto& workload = LubmPaperQueries();
  std::vector<QueryRequest> batch;
  for (const PaperQuery& q : workload)
    batch.push_back(QueryRequest{q.sparql, ExecOptions::Full(), {}, nullptr});
  auto responses = service.RunBatch(std::move(batch));

  for (const QueryResponse& r : responses) {
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    ASSERT_NE(r.trace, nullptr);
    auto spans = r.trace->Snapshot();
    CheckSpanTree(spans);

    std::map<std::string, int> names;
    for (const TraceSpan& s : spans) ++names[s.name];
    EXPECT_EQ(names["query"], 1);
    EXPECT_EQ(names["queue_wait"], 1);
    EXPECT_EQ(names["eval"], 1);
    EXPECT_EQ(names["serialize"], 1);
    EXPECT_GE(names["bgp"], 1);
    if (!r.plan_cache_hit) {
      EXPECT_EQ(names["parse"], 1);
      EXPECT_EQ(names["plan"], 1);
      EXPECT_EQ(names["transform"], 1);
    }
    EXPECT_EQ(spans[0].name, "query");
  }
}

// Parallel evaluation records per-morsel spans from pool worker threads,
// parented under a bgp span, without corrupting the tree.
TEST_F(TracedQueryTest, ParallelQueryRecordsMorselSpans) {
  QueryService::Options sopts;
  sopts.num_threads = 4;
  sopts.trace_queries = true;
  sopts.intra_query_parallelism = 4;
  QueryService service(db_, sopts);

  // Q2-style triangle query: enough work to split into several morsels.
  const auto& workload = LubmPaperQueries();
  std::vector<QueryRequest> batch;
  batch.push_back(
      QueryRequest{workload[1].sparql, ExecOptions::Full(), {}, nullptr});
  auto responses = service.RunBatch(std::move(batch));
  ASSERT_EQ(responses.size(), 1u);
  ASSERT_TRUE(responses[0].status.ok());
  ASSERT_NE(responses[0].trace, nullptr);

  auto spans = responses[0].trace->Snapshot();
  CheckSpanTree(spans);
  size_t morsels = 0;
  std::set<uint32_t> tids;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].name != "morsel") continue;
    ++morsels;
    tids.insert(spans[i].tid);
    ASSERT_NE(spans[i].parent, TraceContext::kNoSpan);
    EXPECT_EQ(spans[spans[i].parent].name, "bgp");
  }
  EXPECT_GE(morsels, 1u);
}

// Per-request opt-in without trace_queries: caller-owned context is used and
// echoed back; untraced requests in the same service get no trace.
TEST_F(TracedQueryTest, PerRequestTraceOptIn) {
  QueryService::Options sopts;
  sopts.num_threads = 2;
  QueryService service(db_, sopts);

  const auto& workload = LubmPaperQueries();
  auto ctx = std::make_shared<TraceContext>();
  std::vector<QueryRequest> batch;
  QueryRequest traced{workload[0].sparql, ExecOptions::Full(), {}, nullptr};
  traced.trace = ctx;
  batch.push_back(std::move(traced));
  batch.push_back(
      QueryRequest{workload[0].sparql, ExecOptions::Full(), {}, nullptr});
  auto responses = service.RunBatch(std::move(batch));

  ASSERT_TRUE(responses[0].status.ok());
  EXPECT_EQ(responses[0].trace.get(), ctx.get());
  EXPECT_GT(ctx->size(), 0u);
  ASSERT_TRUE(responses[1].status.ok());
  EXPECT_EQ(responses[1].trace, nullptr);
}

}  // namespace
}  // namespace sparqluo
