#include <gtest/gtest.h>

#include "algebra/operators.h"
#include "baseline/binary_tree_eval.h"
#include "betree/builder.h"
#include "engine/database.h"
#include "optimizer/cost_model.h"
#include "optimizer/transformations.h"
#include "optimizer/transformer.h"
#include "sparql/parser.h"
#include "workload/dbpedia_generator.h"

namespace sparqluo {
namespace {

/// A presidents-style fixture matching the paper's running example: a small
/// selective population (presidents) inside a large one (persons), where
/// every entity carries owl:sameAs / foaf:name / rdfs:label attributes
/// (the full-overlap regime of Figure 7, where pushing a low-selectivity
/// BGP into a UNION cannot shrink the branch results).
class OptimizerTest : public ::testing::Test {
 protected:
  static void Populate(Database* db) {
    auto iri = [](const std::string& s) {
      return Term::Iri("http://ex.org/" + s);
    };
    Term wikilink = iri("wikiPageWikiLink");
    Term potus = iri("President_of_the_United_States");
    Term same = iri("sameAs");
    Term foaf_name = iri("foaf_name");
    Term label = iri("label");
    for (int i = 0; i < 2000; ++i) {
      Term person = iri("person" + std::to_string(i));
      if (i < 10) db->AddTriple(person, wikilink, potus);
      db->AddTriple(person, same, iri("external" + std::to_string(i)));
      db->AddTriple(person, foaf_name,
                    Term::Literal("name" + std::to_string(i)));
      db->AddTriple(person, label, Term::Literal("label" + std::to_string(i)));
    }
  }

  void SetUp() override {
    Populate(&db_);
    db_.Finalize(EngineKind::kWco);
  }

  BeTree Build(const std::string& body, Query* out_q) {
    auto q = ParseQuery("SELECT * WHERE " + body);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    *out_q = std::move(*q);
    return BuildBeTree(*out_q);
  }

  Database db_;
};

constexpr const char* kOptionalQuery =
    "{ ?x <http://ex.org/wikiPageWikiLink> "
    "<http://ex.org/President_of_the_United_States> . "
    "OPTIONAL { ?x <http://ex.org/sameAs> ?same . } }";

constexpr const char* kUnionQuery =
    "{ ?x <http://ex.org/wikiPageWikiLink> "
    "<http://ex.org/President_of_the_United_States> . "
    "{ ?x <http://ex.org/foaf_name> ?name . } UNION "
    "{ ?x <http://ex.org/label> ?name . } }";

// ----------------------------------------------------- Transformations ---

TEST_F(OptimizerTest, CanInjectPreconditions) {
  Query q;
  BeTree t = Build(kOptionalQuery, &q);
  ASSERT_EQ(t.root->children.size(), 2u);
  EXPECT_TRUE(CanInject(*t.root, 0, 1));
  EXPECT_FALSE(CanInject(*t.root, 1, 0));  // OPTIONAL must be to the right
  EXPECT_FALSE(CanInject(*t.root, 0, 0));
}

TEST_F(OptimizerTest, ApplyInjectCopiesBgpIntoOptional) {
  Query q;
  BeTree t = Build(kOptionalQuery, &q);
  ApplyInject(t.root.get(), 0, 1);
  ASSERT_TRUE(t.Validate().ok());
  // The original BGP node remains.
  EXPECT_TRUE(t.root->children[0]->is_bgp());
  EXPECT_EQ(t.root->children[0]->bgp.size(), 1u);
  // The OPTIONAL-right group now holds the coalesced 2-pattern BGP.
  const BeNode& right = *t.root->children[1]->children[0];
  ASSERT_EQ(right.children.size(), 1u);
  EXPECT_EQ(right.children[0]->bgp.size(), 2u);
}

TEST_F(OptimizerTest, InjectPreservesSemantics) {
  Query q;
  BeTree original = Build(kOptionalQuery, &q);
  BeTree injected = original.Clone();
  ApplyInject(injected.root.get(), 0, 1);

  Executor exec(db_.engine(), db_.dict(), db_.store());
  ExecOptions opts;  // no transform, no pruning: evaluate as-is
  BindingSet r1 = exec.EvaluateTree(original, opts);
  BindingSet r2 = exec.EvaluateTree(injected, opts);
  EXPECT_TRUE(BagEquals(r1, r2));
  EXPECT_EQ(r1.size(), 10u);  // every president, each with one sameAs
}

TEST_F(OptimizerTest, CanMergePreconditions) {
  Query q;
  BeTree t = Build(kUnionQuery, &q);
  ASSERT_EQ(t.root->children.size(), 2u);
  EXPECT_TRUE(t.root->children[1]->is_union());
  EXPECT_TRUE(CanMerge(*t.root, 0, 1));
  EXPECT_FALSE(CanMerge(*t.root, 1, 0));
}

TEST_F(OptimizerTest, ApplyMergeRemovesBgpAndDistributes) {
  Query q;
  BeTree t = Build(kUnionQuery, &q);
  ApplyMerge(t.root.get(), 0, 1);
  ASSERT_TRUE(t.Validate().ok());
  // Only the UNION node remains at the top level.
  ASSERT_EQ(t.root->children.size(), 1u);
  ASSERT_TRUE(t.root->children[0]->is_union());
  for (const auto& branch : t.root->children[0]->children) {
    ASSERT_EQ(branch->children.size(), 1u);
    EXPECT_EQ(branch->children[0]->bgp.size(), 2u);  // coalesced
  }
}

TEST_F(OptimizerTest, MergePreservesSemantics) {
  Query q;
  BeTree original = Build(kUnionQuery, &q);
  BeTree merged = original.Clone();
  ApplyMerge(merged.root.get(), 0, 1);

  Executor exec(db_.engine(), db_.dict(), db_.store());
  ExecOptions opts;
  BindingSet r1 = exec.EvaluateTree(original, opts);
  BindingSet r2 = exec.EvaluateTree(merged, opts);
  EXPECT_TRUE(BagEquals(r1, r2));
}

TEST_F(OptimizerTest, MergeRequiresCoalescableBranch) {
  Query q;
  BeTree t = Build(
      "{ ?x <http://ex.org/wikiPageWikiLink> "
      "<http://ex.org/President_of_the_United_States> . "
      "{ ?a <http://ex.org/foaf_name> ?n . } UNION "
      "{ ?b <http://ex.org/label> ?n . } }",
      &q);
  // Branch BGPs bind ?a / ?b, not ?x: not coalescable.
  EXPECT_FALSE(CanMerge(*t.root, 0, 1));
}

TEST_F(OptimizerTest, CoalesceGroupBgpsMergesComponents) {
  auto group = std::make_unique<BeNode>(BeNode::Type::kGroup);
  VarTable vars;
  auto mk = [&](const std::string& body) {
    auto g = ParseGroupGraphPattern("{" + body + "}", &vars);
    EXPECT_TRUE(g.ok());
    auto node = std::make_unique<BeNode>(BeNode::Type::kBgp);
    for (const auto& e : g->elements) node->bgp.triples.push_back(e.triple);
    return node;
  };
  group->children.push_back(mk("?x <http://p/a> ?y ."));
  group->children.push_back(mk("?z <http://p/b> ?w ."));
  group->children.push_back(mk("?y <http://p/c> ?z ."));
  CoalesceGroupBgps(group.get());
  // The third BGP bridges the first two: all collapse into one.
  ASSERT_EQ(group->children.size(), 1u);
  EXPECT_EQ(group->children[0]->bgp.size(), 3u);
}

// --------------------------------------------------------- Cost model ----

TEST_F(OptimizerTest, ResultSizeEstimates) {
  Query q;
  BeTree t = Build(kUnionQuery, &q);
  CostModel cost(db_.engine());
  // The anchor BGP has exactly 10 matches (exact count for single pattern).
  EXPECT_DOUBLE_EQ(cost.EstimateResultSize(*t.root->children[0]), 10.0);
  // UNION size = sum of branch sizes = 2000 + 2000.
  double u = cost.EstimateResultSize(*t.root->children[1]);
  EXPECT_NEAR(u, 4000.0, 1.0);
  // Group = product.
  double g = cost.EstimateResultSize(*t.root);
  EXPECT_NEAR(g, 10.0 * 4000.0, 50.0);
}

TEST_F(OptimizerTest, EmptyBgpNodeSizeIsOne) {
  BeNode node(BeNode::Type::kBgp);
  CostModel cost(db_.engine());
  EXPECT_DOUBLE_EQ(cost.EstimateResultSize(node), 1.0);
  EXPECT_DOUBLE_EQ(cost.BgpCost(node.bgp), 0.0);
}

TEST_F(OptimizerTest, FavorableInjectHasNegativeDelta) {
  // Figure 6: selective BGP + large OPTIONAL: inject should pay off.
  Query q;
  BeTree t = Build(kOptionalQuery, &q);
  CostModel cost(db_.engine());
  double delta = DecideInjectDelta(*t.root, 0, 1, cost);
  EXPECT_LT(delta, 0.0);
}

TEST_F(OptimizerTest, UnfavorableMergeHasNonNegativeDelta) {
  // Figure 7: low-selectivity BGP + UNION whose branch joins do not shrink.
  // Under the binary-join host (Jena), merging forces a second full scan of
  // the merged BGP per branch plus two hash joins: not worth it.
  Database db2;
  Populate(&db2);
  db2.Finalize(EngineKind::kHashJoin);
  Query q;
  BeTree t = Build(
      "{ ?x <http://ex.org/sameAs> ?same . "
      "{ ?x <http://ex.org/foaf_name> ?name . } UNION "
      "{ ?x <http://ex.org/label> ?name . } }",
      &q);
  CostModel cost(db2.engine());
  double delta = DecideMergeDelta(*t.root, 0, 1, cost);
  EXPECT_GE(delta, 0.0);
}

TEST_F(OptimizerTest, FavorableMergeHasNegativeDelta) {
  Query q;
  BeTree t = Build(kUnionQuery, &q);
  CostModel cost(db_.engine());
  EXPECT_LT(DecideMergeDelta(*t.root, 0, 1, cost), 0.0);
}

// ---------------------------------------------- Multi-level transform ----

TEST_F(OptimizerTest, MultiLevelTransformAppliesFavorableOnly) {
  Query q;
  BeTree t = Build(kUnionQuery, &q);
  CostModel cost(db_.engine());
  TransformStats stats;
  MultiLevelTransform(&t, cost, TransformOptions{}, &stats);
  EXPECT_EQ(stats.merges, 1u);
  ASSERT_TRUE(t.Validate().ok());

  Database db2;
  Populate(&db2);
  db2.Finalize(EngineKind::kHashJoin);
  CostModel cost2(db2.engine());
  Query q2;
  BeTree t2 = Build(
      "{ ?x <http://ex.org/sameAs> ?same . "
      "{ ?x <http://ex.org/foaf_name> ?name . } UNION "
      "{ ?x <http://ex.org/label> ?name . } }",
      &q2);
  TransformStats stats2;
  MultiLevelTransform(&t2, cost2, TransformOptions{}, &stats2);
  EXPECT_EQ(stats2.merges, 0u);
}

TEST_F(OptimizerTest, TransformedTreePreservesSemantics) {
  const char* queries[] = {kOptionalQuery, kUnionQuery,
                           "{ ?x <http://ex.org/wikiPageWikiLink> "
                           "<http://ex.org/President_of_the_United_States> . "
                           "OPTIONAL { ?x <http://ex.org/sameAs> ?s . "
                           "OPTIONAL { ?x <http://ex.org/foaf_name> ?n . } } }"};
  CostModel cost(db_.engine());
  Executor exec(db_.engine(), db_.dict(), db_.store());
  for (const char* body : queries) {
    Query q;
    BeTree t = Build(body, &q);
    BindingSet before = exec.EvaluateTree(t, ExecOptions{});
    TransformStats stats;
    MultiLevelTransform(&t, cost, TransformOptions{}, &stats);
    ASSERT_TRUE(t.Validate().ok());
    BindingSet after = exec.EvaluateTree(t, ExecOptions{});
    EXPECT_TRUE(BagEquals(before, after)) << body;
  }
}

TEST_F(OptimizerTest, CpEquivalentLevelSkipped) {
  Query q;
  BeTree t = Build(kOptionalQuery, &q);
  CostModel cost(db_.engine());
  TransformOptions opts;
  opts.skip_cp_equivalent_levels = true;
  TransformStats stats;
  MultiLevelTransform(&t, cost, opts, &stats);
  EXPECT_EQ(stats.injects, 0u);
  EXPECT_GE(stats.levels_skipped_cp, 1u);
}

// ------------------------------------------------- Theorems 1 and 2 ------

TEST_F(OptimizerTest, Theorem1MergeEquivalenceOnData) {
  // [[P1 AND (P2 UNION P3)]] == [[(P1 AND P2) UNION (P1 AND P3)]]
  BinaryTreeEvaluator oracle(db_.store(), db_.dict());
  auto lhs = ParseQuery(
      "SELECT * WHERE { ?x <http://ex.org/wikiPageWikiLink> "
      "<http://ex.org/President_of_the_United_States> . "
      "{ ?x <http://ex.org/foaf_name> ?n . } UNION "
      "{ ?x <http://ex.org/label> ?n . } }");
  auto rhs = ParseQuery(
      "SELECT * WHERE { { ?x <http://ex.org/wikiPageWikiLink> "
      "<http://ex.org/President_of_the_United_States> . "
      "?x <http://ex.org/foaf_name> ?n . } UNION "
      "{ ?x <http://ex.org/wikiPageWikiLink> "
      "<http://ex.org/President_of_the_United_States> . "
      "?x <http://ex.org/label> ?n . } }");
  ASSERT_TRUE(lhs.ok() && rhs.ok());
  auto r1 = oracle.Execute(*lhs);
  auto r2 = oracle.Execute(*rhs);
  ASSERT_TRUE(r1.ok() && r2.ok());
  // Same variable ids in both queries (same intern order: x, n).
  EXPECT_TRUE(BagEquals(*r1, *r2));
}

TEST_F(OptimizerTest, Theorem2InjectEquivalenceOnData) {
  // [[P1 OPTIONAL P2]] == [[P1 OPTIONAL (P1 AND P2)]]
  BinaryTreeEvaluator oracle(db_.store(), db_.dict());
  auto lhs = ParseQuery(
      "SELECT * WHERE { ?x <http://ex.org/wikiPageWikiLink> "
      "<http://ex.org/President_of_the_United_States> . "
      "OPTIONAL { ?x <http://ex.org/sameAs> ?s . } }");
  auto rhs = ParseQuery(
      "SELECT * WHERE { ?x <http://ex.org/wikiPageWikiLink> "
      "<http://ex.org/President_of_the_United_States> . "
      "OPTIONAL { ?x <http://ex.org/wikiPageWikiLink> "
      "<http://ex.org/President_of_the_United_States> . "
      "?x <http://ex.org/sameAs> ?s . } }");
  ASSERT_TRUE(lhs.ok() && rhs.ok());
  auto r1 = oracle.Execute(*lhs);
  auto r2 = oracle.Execute(*rhs);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_TRUE(BagEquals(*r1, *r2));
}

}  // namespace
}  // namespace sparqluo
