#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>

#include "engine/database.h"
#include "server/plan_cache.h"
#include "server/query_service.h"
#include "workload/lubm_generator.h"
#include "workload/paper_queries.h"

namespace sparqluo {
namespace {

constexpr size_t kRowLimit = 2000000;

/// Exact (bitwise) equality: same schema, same rows in the same order.
/// Stronger than BagEquals on purpose — the service must not perturb
/// evaluation at all relative to the sequential path.
bool BitIdentical(const BindingSet& a, const BindingSet& b) {
  if (a.schema() != b.schema() || a.size() != b.size()) return false;
  for (size_t r = 0; r < a.size(); ++r)
    for (size_t c = 0; c < a.width(); ++c)
      if (a.At(r, c) != b.At(r, c)) return false;
  return true;
}

class QueryServiceTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  void SetUp() override {
    LubmConfig cfg;
    cfg.universities = 2;
    GenerateLubm(cfg, &db_);
    db_.Finalize(GetParam());
  }

  ExecOptions GuardedFull() {
    ExecOptions o = ExecOptions::Full();
    o.max_intermediate_rows = kRowLimit;
    return o;
  }

  Database db_;
};

INSTANTIATE_TEST_SUITE_P(Engines, QueryServiceTest,
                         ::testing::Values(EngineKind::kWco,
                                           EngineKind::kHashJoin),
                         [](const auto& info) {
                           return info.param == EngineKind::kWco ? "Wco"
                                                                 : "HashJoin";
                         });

// (a) N-threaded execution of the paper query workload returns bit-identical
// BindingSets to sequential execution.
TEST_P(QueryServiceTest, ConcurrentMatchesSequentialOnPaperWorkload) {
  const auto& workload = LubmPaperQueries();
  ExecOptions exec = GuardedFull();

  // Sequential reference, straight through the executor.
  std::vector<BindingSet> expected;
  std::vector<bool> expected_ok;
  for (const PaperQuery& q : workload) {
    auto r = db_.Query(q.sparql, exec);
    expected_ok.push_back(r.ok());
    expected.push_back(r.ok() ? std::move(*r) : BindingSet());
  }

  QueryService::Options sopts;
  sopts.num_threads = 8;
  sopts.max_queue = 1024;
  QueryService service(db_, sopts);

  constexpr size_t kRepeats = 3;
  std::vector<QueryRequest> batch;
  for (size_t rep = 0; rep < kRepeats; ++rep)
    for (const PaperQuery& q : workload)
      batch.push_back(QueryRequest{q.sparql, exec, {}, nullptr});
  std::vector<QueryResponse> responses = service.RunBatch(std::move(batch));

  ASSERT_EQ(responses.size(), workload.size() * kRepeats);
  for (size_t i = 0; i < responses.size(); ++i) {
    size_t qi = i % workload.size();
    const QueryResponse& r = responses[i];
    ASSERT_EQ(r.status.ok(), expected_ok[qi])
        << workload[qi].id << ": " << r.status.ToString();
    if (r.status.ok()) {
      EXPECT_TRUE(BitIdentical(r.rows, expected[qi]))
          << workload[qi].id << " diverges from sequential execution";
    }
  }
  EXPECT_EQ(service.num_threads(), 8u);
  ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.submitted, workload.size() * kRepeats);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_GT(stats.latency_samples, 0u);
}

// (b) Deadline expiry yields a clean ResourceExhausted-style abort.
TEST_P(QueryServiceTest, DeadlineExpiryAbortsCleanly) {
  QueryService::Options sopts;
  sopts.num_threads = 2;
  QueryService service(db_, sopts);

  // Cross product over the whole store: far too large to finish in 1 ms.
  QueryRequest req;
  req.text = "SELECT * WHERE { ?a ?p ?b . ?c ?q ?d . }";
  req.options = ExecOptions::Full();
  req.deadline = std::chrono::milliseconds(1);
  QueryResponse r = service.Submit(std::move(req)).get();

  ASSERT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(r.metrics.aborted);
  EXPECT_EQ(r.metrics.abort_reason, AbortReason::kDeadline);
  ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.aborted_deadline, 1u);
}

// Explicit cancellation through an externally-owned token.
TEST_P(QueryServiceTest, ExplicitCancellationAborts) {
  QueryService::Options sopts;
  sopts.num_threads = 1;
  QueryService service(db_, sopts);

  auto token = std::make_shared<CancelToken>();
  token->RequestCancel();  // pre-cancelled: aborts at the first checkpoint
  QueryRequest req;
  req.text = "SELECT * WHERE { ?a ?p ?b . ?c ?q ?d . }";
  req.options = ExecOptions::Full();
  req.cancel = token;
  QueryResponse r = service.Submit(std::move(req)).get();

  ASSERT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(r.metrics.abort_reason, AbortReason::kCancelled);
}

// (c) Plan-cache hits skip transformation and return correct results.
TEST_P(QueryServiceTest, PlanCacheHitSkipsTransformAndMatches) {
  QueryService::Options sopts;
  sopts.num_threads = 1;  // serialize so hit/miss order is deterministic
  // This test exercises the plan-cache layer; without this the repeat is
  // served from the result cache and never consults the plan cache.
  sopts.enable_result_cache = false;
  QueryService service(db_, sopts);

  const std::string q = LubmPaperQueries()[0].sparql;
  QueryResponse first =
      service.Submit(QueryRequest{q, GuardedFull(), {}, nullptr}).get();
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_FALSE(first.plan_cache_hit);

  // Same text with different whitespace still hits thanks to normalization.
  std::string reformatted = "\n \t " + q + "   \n";
  QueryResponse second =
      service.Submit(QueryRequest{reformatted, GuardedFull(), {}, nullptr})
          .get();
  ASSERT_TRUE(second.status.ok()) << second.status.ToString();
  EXPECT_TRUE(second.plan_cache_hit);
  EXPECT_EQ(second.metrics.transform_ms, 0.0);   // transform skipped entirely
  // Hits still report the cached plan's transform decisions.
  EXPECT_EQ(second.metrics.transform.merges, first.metrics.transform.merges);
  EXPECT_TRUE(BitIdentical(first.rows, second.rows));

  PlanCache::Stats cache = service.CacheStats();
  EXPECT_EQ(cache.hits, 1u);
  EXPECT_EQ(cache.misses, 1u);
  EXPECT_EQ(cache.entries, 1u);
}

// Admission control: a full queue rejects with kOverloaded — a status
// distinct from the kResourceExhausted an admitted query earns by blowing
// a deadline/row guard, so front-ends can map "retry later" (503) apart
// from "your query died" (408).
TEST_P(QueryServiceTest, AdmissionControlRejectsWhenQueueFull) {
  QueryService::Options sopts;
  sopts.num_threads = 1;
  sopts.max_queue = 2;
  QueryService service(db_, sopts);

  // Block the single worker on a long-running cross product we can cancel.
  // The 10 s deadline is only an anti-hang backstop; cancellation below is
  // what releases the worker.
  auto token = std::make_shared<CancelToken>();
  QueryRequest blocker;
  blocker.text = "SELECT * WHERE { ?a ?p ?b . ?c ?q ?d . }";
  blocker.options = ExecOptions::Full();
  blocker.deadline = std::chrono::seconds(10);
  blocker.cancel = token;
  std::future<QueryResponse> blocked = service.Submit(std::move(blocker));
  // The worker has dequeued the blocker once its plan-cache miss lands.
  for (int spin = 0; service.CacheStats().misses == 0 && spin < 5000; ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_GE(service.CacheStats().misses, 1u) << "worker never started";

  const std::string fast = LubmPaperQueries()[0].sparql;
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 10; ++i)
    futures.push_back(
        service.Submit(QueryRequest{fast, GuardedFull(), {}, nullptr}));

  token->RequestCancel();  // release the worker
  size_t rejected = 0, finished_ok = 0;
  for (auto& f : futures) {
    QueryResponse r = f.get();
    if (r.status.code() == StatusCode::kOverloaded) {
      EXPECT_FALSE(r.metrics.aborted);  // never ran at all
      ++rejected;
    } else if (r.status.ok()) {
      ++finished_ok;
    }
  }
  QueryResponse br = blocked.get();
  EXPECT_TRUE(br.metrics.aborted);
  // The admitted-then-cancelled blocker keeps the in-flight abort code.
  EXPECT_EQ(br.status.code(), StatusCode::kResourceExhausted);
  // Queue depth 2 with a busy worker: at least 8 of the 10 must bounce, and
  // everything admitted must finish.
  EXPECT_GE(rejected, 8u);
  EXPECT_EQ(finished_ok + rejected, 10u);
  EXPECT_GE(service.Stats().rejected, 8u);
}

// Shutdown rejects new submissions but resolves them (no hangs).
TEST_P(QueryServiceTest, SubmitAfterShutdownResolves) {
  QueryService::Options sopts;
  sopts.num_threads = 2;
  QueryService service(db_, sopts);
  service.Shutdown();
  QueryResponse r =
      service
          .Submit(QueryRequest{LubmPaperQueries()[0].sparql, GuardedFull(),
                               {}, nullptr})
          .get();
  EXPECT_FALSE(r.status.ok());
}

// The completion hook fires before the future resolves — on the worker
// for processed requests, inline for rejected ones — and successful
// responses carry the executed plan (VarTable + query form) so push-style
// consumers can serialize rows without re-parsing.
TEST_P(QueryServiceTest, CompletionHookAndPlanOnResponse) {
  QueryService service(db_, {.num_threads = 2});
  std::promise<QueryResponse> hooked;
  QueryRequest req;
  req.text = "SELECT ?x WHERE { ?x ?p ?o } LIMIT 3";
  req.on_complete = [&](const QueryResponse& r) { hooked.set_value(r); };
  QueryResponse via_future = service.Submit(std::move(req)).get();
  QueryResponse via_hook = hooked.get_future().get();
  ASSERT_TRUE(via_future.status.ok()) << via_future.status.ToString();
  ASSERT_NE(via_future.plan, nullptr);
  EXPECT_EQ(via_future.plan->query.form, QueryForm::kSelect);
  EXPECT_EQ(via_hook.rows.size(), via_future.rows.size());

  // Rejection path: the hook still runs, with the kOverloaded status.
  service.Shutdown();
  bool rejected_hook = false;
  QueryRequest after;
  after.text = "ASK { ?s ?p ?o }";
  after.on_complete = [&](const QueryResponse& r) {
    rejected_hook = true;
    EXPECT_EQ(r.status.code(), StatusCode::kOverloaded);
    EXPECT_EQ(r.plan, nullptr);
  };
  service.Submit(std::move(after)).get();
  EXPECT_TRUE(rejected_hook);
}

// Parse errors surface through the future, not as crashes.
TEST_P(QueryServiceTest, ParseErrorPropagatesThroughFuture) {
  QueryService service(db_, {});
  QueryResponse r =
      service.Submit(QueryRequest{"SELECT * WHERE { ?x ?p }",
                                  ExecOptions::Full(), {}, nullptr})
          .get();
  ASSERT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kParseError);
}

// --- PlanCache unit tests (no service involved) -------------------------

TEST(PlanCacheTest, NormalizationCollapsesWhitespaceOutsideLiterals) {
  EXPECT_EQ(PlanCache::NormalizeQuery("SELECT  *\nWHERE {\t?x ?p ?o }"),
            "SELECT * WHERE { ?x ?p ?o }");
  // Whitespace inside string literals is preserved.
  EXPECT_EQ(PlanCache::NormalizeQuery("FILTER(?n = \"a  b\")"),
            "FILTER(?n = \"a  b\")");
  // Leading/trailing whitespace is dropped.
  EXPECT_EQ(PlanCache::NormalizeQuery("  ASK { }  "), "ASK { }");
}

TEST(PlanCacheTest, NormalizationStripsCommentsLikeTheLexer) {
  // Queries that differ only in where a '#' comment line ends must NOT
  // share a key: "# note\nLIMIT 1" has an active LIMIT, "# note LIMIT 1"
  // does not.
  std::string active = "SELECT ?s WHERE { ?s ?p ?o } # note\nLIMIT 1";
  std::string commented = "SELECT ?s WHERE { ?s ?p ?o } # note LIMIT 1";
  EXPECT_EQ(PlanCache::NormalizeQuery(active),
            "SELECT ?s WHERE { ?s ?p ?o } LIMIT 1");
  EXPECT_EQ(PlanCache::NormalizeQuery(commented),
            "SELECT ?s WHERE { ?s ?p ?o }");
  EXPECT_NE(PlanCache::NormalizeQuery(active),
            PlanCache::NormalizeQuery(commented));
  // '#' inside an IRI ref is part of the IRI, not a comment.
  EXPECT_EQ(PlanCache::NormalizeQuery("ASK { ?s a <http://x.org/ns#A> }"),
            "ASK { ?s a <http://x.org/ns#A> }");
  // '#' inside a string literal is literal text.
  EXPECT_EQ(PlanCache::NormalizeQuery("FILTER(?n = \"#tag\")"),
            "FILTER(?n = \"#tag\")");
}

TEST(PlanCacheTest, KeySeparatesOptimizationModes) {
  const std::string q = "SELECT * WHERE { ?x ?p ?o }";
  EXPECT_NE(PlanCache::MakeKey(q, ExecOptions::Base()),
            PlanCache::MakeKey(q, ExecOptions::TT()));
  EXPECT_NE(PlanCache::MakeKey(q, ExecOptions::TT()),
            PlanCache::MakeKey(q, ExecOptions::Full()));
  // Execution-only knobs do not split the cache.
  ExecOptions a = ExecOptions::Full(), b = ExecOptions::Full();
  b.max_intermediate_rows = 123;
  EXPECT_EQ(PlanCache::MakeKey(q, a), PlanCache::MakeKey(q, b));
}

TEST(PlanCacheTest, LruEvictsLeastRecentlyUsed) {
  PlanCache cache(/*capacity=*/2, /*shards=*/1);
  auto plan = std::make_shared<const CachedPlan>();
  cache.Put("a", plan);
  cache.Put("b", plan);
  EXPECT_NE(cache.Get("a"), nullptr);  // touch a; b is now LRU
  cache.Put("c", plan);                // evicts b
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  PlanCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(PlanCacheTest, EvictUnreachableIsVersionScoped) {
  PlanCache cache(/*capacity=*/8, /*shards=*/2);
  auto plan = std::make_shared<const CachedPlan>();
  cache.Put("q1@v0", plan, /*version=*/0);
  cache.Put("q2@v0", plan, /*version=*/0);
  cache.Put("q1@v1", plan, /*version=*/1);
  cache.Put("q1@v2", plan, /*version=*/2);

  // Current v2 with a reader pinned to v1: only the v0 entries go.
  cache.EvictUnreachable(2, {1});
  EXPECT_EQ(cache.Get("q1@v0"), nullptr);
  EXPECT_EQ(cache.Get("q2@v0"), nullptr);
  EXPECT_NE(cache.Get("q1@v1"), nullptr);
  EXPECT_NE(cache.Get("q1@v2"), nullptr);
  EXPECT_EQ(cache.GetStats().evictions, 2u);
  EXPECT_EQ(cache.GetStats().entries, 2u);

  // The v1 pin released: the v1 entry is unreachable at the next commit.
  cache.EvictUnreachable(2, {});
  EXPECT_EQ(cache.Get("q1@v1"), nullptr);
  EXPECT_NE(cache.Get("q1@v2"), nullptr);
}

TEST(PlanCacheTest, EvictUnreachableReclaimsIntermediateVersions) {
  // One long-running reader pinned to v0 while commits advance to v4:
  // entries for the intermediate versions v1..v3 are reachable by no
  // reader (new snapshots are v4, only v0 is pinned) and must go, while
  // the pinned v0 entry and the current v4 entry both survive.
  PlanCache cache(/*capacity=*/8, /*shards=*/1);
  auto plan = std::make_shared<const CachedPlan>();
  for (uint64_t v = 0; v <= 4; ++v)
    cache.Put("q@v" + std::to_string(v), plan, v);
  cache.EvictUnreachable(4, {0});
  EXPECT_NE(cache.Get("q@v0"), nullptr);
  EXPECT_EQ(cache.Get("q@v1"), nullptr);
  EXPECT_EQ(cache.Get("q@v2"), nullptr);
  EXPECT_EQ(cache.Get("q@v3"), nullptr);
  EXPECT_NE(cache.Get("q@v4"), nullptr);
  EXPECT_EQ(cache.GetStats().evictions, 3u);
}

TEST(PlanCacheTest, EvictUnreachableAtVersionZeroKeepsEverything) {
  PlanCache cache(/*capacity=*/4, /*shards=*/1);
  auto plan = std::make_shared<const CachedPlan>();
  cache.Put("a", plan, /*version=*/0);
  cache.Put("b", plan, /*version=*/3);
  cache.EvictUnreachable(0, {});
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_NE(cache.Get("b"), nullptr);
  EXPECT_EQ(cache.GetStats().evictions, 0u);
}

// Service-level version-scoped eviction: a commit with no in-flight
// readers drops exactly the entries keyed under now-unreachable versions
// (counted as evictions — the old whole-cache Clear() counted nothing),
// and plans built after the commit are cached and hittable as usual.
TEST(QueryServiceUpdateCacheTest, CommitEvictsOnlyUnreachableVersions) {
  Database db;
  Term p = Term::Iri("http://ex.org/p");
  for (int i = 0; i < 4; ++i) {
    db.AddTriple(Term::Iri("http://ex.org/s" + std::to_string(i)), p,
                 Term::Iri("http://ex.org/o" + std::to_string(i)));
  }
  db.Finalize(EngineKind::kWco);

  QueryService::Options options;
  options.num_threads = 2;
  // Plan-cache-layer test: keep repeats off the result-cache fast path.
  options.enable_result_cache = false;
  QueryService service(db, options);
  const std::string q = "SELECT ?s WHERE { ?s <http://ex.org/p> ?o }";

  // Prime the cache under version 0.
  auto r0 = service.Submit({.text = q}).get();
  ASSERT_TRUE(r0.status.ok());
  EXPECT_EQ(r0.version, 0u);
  EXPECT_EQ(service.CacheStats().entries, 1u);

  // Commit version 1 through the service. With no readers pinned to v0,
  // the eviction floor is the commit version and the v0 entry goes.
  UpdateRequest update;
  update.text =
      "INSERT DATA { <http://ex.org/s9> <http://ex.org/p> "
      "<http://ex.org/o9> }";
  auto committed = service.SubmitUpdate(std::move(update)).get();
  ASSERT_TRUE(committed.status.ok()) << committed.status.ToString();
  EXPECT_EQ(committed.commit.version, 1u);
  PlanCache::Stats after = service.CacheStats();
  EXPECT_EQ(after.entries, 0u);
  EXPECT_EQ(after.evictions, 1u);  // version-scoped, not a blanket Clear()

  // Replan under v1 (miss), then hit on the repeat.
  auto r1 = service.Submit({.text = q}).get();
  ASSERT_TRUE(r1.status.ok());
  EXPECT_EQ(r1.version, 1u);
  EXPECT_FALSE(r1.plan_cache_hit);
  auto r2 = service.Submit({.text = q}).get();
  ASSERT_TRUE(r2.status.ok());
  EXPECT_TRUE(r2.plan_cache_hit);
}

// Regression: the old ServiceStats kept at most 2^18 raw latency samples and
// its percentiles froze once the cap filled. The histogram-backed stats must
// keep tracking the live distribution long past that point.
TEST(ServiceStatsTest, PercentilesKeepMovingPastOldSampleCap) {
  constexpr size_t kOldCap = size_t{1} << 18;
  ServiceStats stats;
  ExecMetrics m;
  Status ok;
  for (size_t i = 0; i < kOldCap + 500; ++i)
    stats.RecordFinished(ok, m, /*latency_ms=*/1.0, /*cache_hit=*/true,
                         /*rows=*/0);
  ServiceStatsSnapshot before = stats.Snapshot();
  EXPECT_GT(before.latency_samples, kOldCap);  // never capped
  EXPECT_NEAR(before.p50_ms, 1.0, 0.1);

  // Everything after the old cap would have been dropped by the vector
  // design; here it must drag both the median and the tail up.
  for (size_t i = 0; i < 4 * kOldCap; ++i)
    stats.RecordFinished(ok, m, /*latency_ms=*/50.0, /*cache_hit=*/true,
                         /*rows=*/0);
  ServiceStatsSnapshot after = stats.Snapshot();
  EXPECT_EQ(after.latency_samples, kOldCap + 500 + 4 * kOldCap);
  EXPECT_NEAR(after.p50_ms, 50.0, 2.0);
  EXPECT_NEAR(after.p999_ms, 50.0, 2.0);
  EXPECT_GT(after.p50_ms, before.p50_ms);
}

// enable_metrics = false (the bench overhead baseline) still keeps the plain
// counters but records no latency samples.
TEST(ServiceStatsTest, DisabledMetricsSkipHistogram) {
  ServiceStats stats(/*enable_metrics=*/false);
  EXPECT_FALSE(stats.metrics_enabled());
  ExecMetrics m;
  stats.RecordFinished(Status(), m, 5.0, false, 3);
  ServiceStatsSnapshot snap = stats.Snapshot();
  EXPECT_EQ(snap.completed, 1u);
  EXPECT_EQ(snap.rows_returned, 3u);
  EXPECT_EQ(snap.latency_samples, 0u);
  EXPECT_EQ(snap.p50_ms, 0.0);
}

// A ~0 threshold makes every query slow: the counter matches the workload
// and sampling (every Nth) only limits the log, never the count.
TEST(SlowQueryTest, ThresholdCountsEveryFinishedQuery) {
  Database db;
  Term p = Term::Iri("http://ex.org/p");
  db.AddTriple(Term::Iri("http://ex.org/s"), p, Term::Iri("http://ex.org/o"));
  db.Finalize(EngineKind::kWco);

  QueryService::Options options;
  options.num_threads = 2;
  options.slow_query_ms = 1e-9;
  options.slow_query_sample = 100;  // Log almost nothing; count everything.
  QueryService service(db, options);

  const std::string q = "SELECT ?s WHERE { ?s <http://ex.org/p> ?o }";
  std::vector<QueryRequest> batch;
  for (int i = 0; i < 7; ++i) batch.push_back({.text = q});
  auto responses = service.RunBatch(std::move(batch));
  for (const auto& r : responses) ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(service.Stats().slow_queries, 7u);
}

TEST(SlowQueryTest, ZeroThresholdDisablesCounting) {
  Database db;
  Term p = Term::Iri("http://ex.org/p");
  db.AddTriple(Term::Iri("http://ex.org/s"), p, Term::Iri("http://ex.org/o"));
  db.Finalize(EngineKind::kWco);

  QueryService service(db, {.num_threads = 2});
  auto r = service.Submit({.text = "SELECT ?s WHERE { ?s ?p ?o }"}).get();
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(service.Stats().slow_queries, 0u);
}

}  // namespace
}  // namespace sparqluo
