// Kill-at-every-crash-point recovery suite.
//
// For each CrashPoint (src/util/fault_fs.h) the parent re-execs this
// binary as a child running a fixed, deterministic workload with the
// fault armed; the child dies mid-operation via _exit (no flushing, no
// destructors — the userspace stand-in for SIGKILL). The parent then
// recovers from whatever the child left on disk and asserts the
// durability contract:
//
//   * every acknowledged commit is present, bit-identically — same
//     dictionary ids, same CSR pair arrays — as a reference database
//     that never crashed, and answers queries identically on both
//     engines;
//   * at most one unacknowledged-but-fully-logged commit may surface
//     (the record hit the log; the crash beat the acknowledgment);
//   * a commit whose append never started is never visible.
//
// The child acknowledges each commit by appending a line to an ack file
// and fsyncing it, so the parent knows exactly what was promised.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/snapshot.h"
#include "store/wal.h"
#include "util/fault_fs.h"

namespace sparqluo {
namespace {

constexpr char kSpecEnv[] = "SPARQLUO_CRASH_SPEC";
constexpr int kCrashExit = 86;  // fault_fs.cc's kCrashExitCode.

/// The deterministic workload both the child and the reference replayer
/// run: batch i commits as version i.
UpdateBatch WorkloadBatch(int i) {
  UpdateBatch b;
  b.Insert(Term::Iri("http://ex/s" + std::to_string(i)),
           Term::Iri("http://ex/p"),
           Term::Literal("value " + std::to_string(i)));
  b.Insert(Term::Iri("http://ex/s" + std::to_string(i)),
           Term::Iri("http://ex/q"),
           Term::TypedLiteral(std::to_string(i),
                              "http://www.w3.org/2001/XMLSchema#integer"));
  return b;
}

void SeedDatabase(Database* db) {
  db->AddTriple(Term::Iri("http://ex/base"), Term::Iri("http://ex/p"),
                Term::Literal("seed"));
}

bool IsCheckpointPoint(CrashPoint p) {
  return p == CrashPoint::kCheckpointAfterTmpWrite ||
         p == CrashPoint::kCheckpointAfterRename ||
         p == CrashPoint::kCheckpointAfterMarker ||
         p == CrashPoint::kCheckpointAfterRetire;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

// --- Child side ----------------------------------------------------------

/// Runs the workload with the armed crash point and never returns
/// normally if the fault fires. Selected only by the parent via
/// --gtest_filter; skipped in a regular test run.
TEST(CrashChild, Run) {
  const char* spec = std::getenv(kSpecEnv);
  if (spec == nullptr) GTEST_SKIP() << "parent-driven child only";
  // Spec: "<point>:<nth>:<dir>".
  int point_int = 0, nth = 0;
  std::string dir;
  {
    std::istringstream in(spec);
    std::string field;
    ASSERT_TRUE(std::getline(in, field, ':'));
    point_int = std::stoi(field);
    ASSERT_TRUE(std::getline(in, field, ':'));
    nth = std::stoi(field);
    ASSERT_TRUE(std::getline(in, dir));
  }
  const CrashPoint point = static_cast<CrashPoint>(point_int);

  static FaultInjectionFileOps fault;  // Outlives the database's Wal.
  fault.CrashAt(point, nth);

  Database db;
  SeedDatabase(&db);
  db.Finalize(EngineKind::kWco);
  Wal::Options wopts;
  wopts.ops = &fault;
  ASSERT_TRUE(db.OpenWal(dir + "/wal", wopts).ok());

  int ack_fd = ::open((dir + "/acks").c_str(),
                      O_WRONLY | O_CREAT | O_APPEND, 0644);
  ASSERT_GE(ack_fd, 0);
  auto ack = [&](uint64_t version) {
    std::string line = std::to_string(version) + "\n";
    ASSERT_EQ(::write(ack_fd, line.data(), line.size()),
              static_cast<ssize_t>(line.size()));
    ASSERT_EQ(::fsync(ack_fd), 0);
  };

  const int commits = IsCheckpointPoint(point) ? 3 : 4;
  for (int i = 1; i <= commits; ++i) {
    auto stats = db.Apply(WorkloadBatch(i));
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    ack(stats->version);
  }
  if (IsCheckpointPoint(point)) {
    // The crash fires inside the snapshot publish / WAL checkpoint path.
    Status s = SaveSnapshot(db, dir + "/snap", SnapshotFormat::kV2, &fault);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
  // Reaching here means the armed point never fired — the parent treats
  // the zero exit as a test-harness bug.
}

// --- Parent side ---------------------------------------------------------

uint64_t MaxAckedVersion(const std::string& dir) {
  std::ifstream in(dir + "/acks");
  uint64_t max_acked = 0, v = 0;
  while (in >> v) max_acked = std::max(max_acked, v);
  return max_acked;
}

/// Recovers from the child's debris: snapshot if one was published, the
/// seed otherwise, plus WAL replay.
void RecoverDatabase(const std::string& dir, EngineKind kind, Database* db,
                     WalRecoveryInfo* info) {
  if (FileExists(dir + "/snap")) {
    ASSERT_TRUE(LoadSnapshot(dir + "/snap", db).ok());
  } else {
    SeedDatabase(db);
  }
  db->Finalize(kind);
  auto recovered = db->OpenWal(dir + "/wal", {});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  *info = *recovered;
}

void ExpectBitIdenticalStores(const Database& a, const Database& b) {
  ASSERT_EQ(a.dict().size(), b.dict().size());
  for (TermId id = 0; id < a.dict().size(); ++id)
    ASSERT_EQ(a.dict().Decode(id), b.dict().Decode(id)) << "term id " << id;
  ASSERT_EQ(a.store().size(), b.store().size());
  for (Perm perm : {Perm::kSpo, Perm::kPos, Perm::kOsp}) {
    std::vector<std::pair<TermId, std::vector<IdPair>>> ga, gb;
    a.store().ForEachGroup(perm, [&](TermId f, std::span<const IdPair> prs) {
      ga.emplace_back(f, std::vector<IdPair>(prs.begin(), prs.end()));
    });
    b.store().ForEachGroup(perm, [&](TermId f, std::span<const IdPair> prs) {
      gb.emplace_back(f, std::vector<IdPair>(prs.begin(), prs.end()));
    });
    ASSERT_EQ(ga, gb) << "CSR divergence, perm " << static_cast<int>(perm);
  }
}

/// Query-level equivalence on one engine: same rows in the same order.
void ExpectSameAnswers(const Database& a, const Database& b) {
  for (const char* q :
       {"SELECT ?s ?p ?o WHERE { ?s ?p ?o }",
        "SELECT ?s ?v WHERE { ?s <http://ex/p> ?o . ?s <http://ex/q> ?v }"}) {
    auto ra = a.Query(q);
    auto rb = b.Query(q);
    ASSERT_TRUE(ra.ok() && rb.ok()) << q;
    ASSERT_EQ(ra->size(), rb->size()) << q;
    for (size_t r = 0; r < ra->size(); ++r)
      for (size_t c = 0; c < ra->width(); ++c)
        ASSERT_EQ(ra->At(r, c), rb->At(r, c)) << q;
  }
}

void RunCrashPoint(CrashPoint point, int nth) {
  SCOPED_TRACE(std::string("crash point ") + CrashPointName(point));
  std::string dir = ::testing::TempDir() + "crash." +
                    std::to_string(static_cast<int>(point)) + "." +
                    std::to_string(::getpid());
  ASSERT_EQ(std::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str()), 0);

  // Re-exec ourselves as the crash child. system() is fine here: the
  // command and paths are test-controlled. /proc/self/exe must resolve
  // in this process, not inside the `sh -c` the command runs under.
  char self[4096];
  ssize_t self_len = ::readlink("/proc/self/exe", self, sizeof(self) - 1);
  ASSERT_GT(self_len, 0);
  self[self_len] = '\0';
  std::string cmd = std::string(kSpecEnv) + "=" +
                    std::to_string(static_cast<int>(point)) + ":" +
                    std::to_string(nth) + ":" + dir + " " + self +
                    " --gtest_filter=CrashChild.Run >/dev/null 2>&1";
  int rc = std::system(cmd.c_str());
  ASSERT_TRUE(WIFEXITED(rc));
  ASSERT_EQ(WEXITSTATUS(rc), kCrashExit)
      << "child was supposed to die at the armed crash point";

  const uint64_t max_acked = MaxAckedVersion(dir);
  Database recovered;
  WalRecoveryInfo info;
  RecoverDatabase(dir, EngineKind::kWco, &recovered, &info);

  // Every ack is honored; at most the one in-flight commit may surface.
  ASSERT_GE(recovered.version(), max_acked);
  ASSERT_LE(recovered.version(), max_acked + 1);

  // Bit-identical to a database that committed the same prefix and never
  // crashed.
  Database reference;
  SeedDatabase(&reference);
  reference.Finalize(EngineKind::kWco);
  for (uint64_t i = 1; i <= recovered.version(); ++i)
    ASSERT_TRUE(reference.Apply(WorkloadBatch(static_cast<int>(i))).ok());
  ExpectBitIdenticalStores(reference, recovered);
  ExpectSameAnswers(reference, recovered);

  // A commit whose append never started must not be visible.
  auto beyond = recovered.Query(
      "SELECT ?o WHERE { <http://ex/s" +
      std::to_string(recovered.version() + 1) + "> ?p ?o }");
  ASSERT_TRUE(beyond.ok());
  EXPECT_TRUE(beyond->empty());

  // The recovered state is engine-independent: the second engine over the
  // same debris answers identically to its own never-crashed reference.
  Database recovered_hj;
  WalRecoveryInfo info_hj;
  RecoverDatabase(dir, EngineKind::kHashJoin, &recovered_hj, &info_hj);
  Database reference_hj;
  SeedDatabase(&reference_hj);
  reference_hj.Finalize(EngineKind::kHashJoin);
  for (uint64_t i = 1; i <= recovered_hj.version(); ++i)
    ASSERT_TRUE(reference_hj.Apply(WorkloadBatch(static_cast<int>(i))).ok());
  ASSERT_EQ(recovered_hj.version(), recovered.version());
  ExpectSameAnswers(reference_hj, recovered_hj);

  ASSERT_EQ(std::system(("rm -rf " + dir).c_str()), 0);
}

// The workload appends four times; nth=3 arms the fault for the fourth
// append, so versions 1-3 are acknowledged before the crash.
TEST(CrashRecoveryTest, KilledBeforeAppend) {
  RunCrashPoint(CrashPoint::kWalBeforeAppend, /*nth=*/3);
}

TEST(CrashRecoveryTest, KilledAfterAppendBeforeFsync) {
  RunCrashPoint(CrashPoint::kWalAfterAppend, /*nth=*/3);
}

TEST(CrashRecoveryTest, KilledAfterFsyncBeforeAck) {
  RunCrashPoint(CrashPoint::kWalAfterFsync, /*nth=*/3);
}

TEST(CrashRecoveryTest, KilledFirstEverAppend) {
  RunCrashPoint(CrashPoint::kWalBeforeAppend, /*nth=*/0);
}

TEST(CrashRecoveryTest, KilledAfterCheckpointTmpWrite) {
  RunCrashPoint(CrashPoint::kCheckpointAfterTmpWrite, /*nth=*/0);
}

TEST(CrashRecoveryTest, KilledAfterCheckpointRename) {
  RunCrashPoint(CrashPoint::kCheckpointAfterRename, /*nth=*/0);
}

TEST(CrashRecoveryTest, KilledAfterCheckpointMarker) {
  RunCrashPoint(CrashPoint::kCheckpointAfterMarker, /*nth=*/0);
}

TEST(CrashRecoveryTest, KilledAfterCheckpointRetire) {
  RunCrashPoint(CrashPoint::kCheckpointAfterRetire, /*nth=*/0);
}

}  // namespace
}  // namespace sparqluo
