// End-to-end: the paper's 24 benchmark queries, all four approaches and
// both host engines, checked against the naive binary-tree oracle.
#include <gtest/gtest.h>

#include "algebra/operators.h"
#include "baseline/binary_tree_eval.h"
#include "baseline/lbr/lbr_engine.h"
#include "engine/database.h"
#include "workload/dbpedia_generator.h"
#include "workload/lubm_generator.h"
#include "workload/paper_queries.h"

namespace sparqluo {
namespace {

struct Workload {
  const char* name;
  const std::vector<PaperQuery>* queries;
};

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lubm_ = new Database();
    LubmConfig lc;
    lc.universities = 1;
    lc.density = 0.25;  // keep the oracle's cross products tractable
    GenerateLubm(lc, lubm_);
    lubm_->Finalize(EngineKind::kWco);

    dbp_ = new Database();
    DbpediaConfig dc;
    dc.articles = 2000;
    GenerateDbpedia(dc, dbp_);
    dbp_->Finalize(EngineKind::kWco);
  }
  static void TearDownTestSuite() {
    delete lubm_;
    delete dbp_;
    lubm_ = dbp_ = nullptr;
  }

  /// Runs one query under all four approaches and compares to the oracle.
  static void CheckQuery(Database* db, const PaperQuery& pq) {
    auto q = db->Parse(pq.sparql);
    ASSERT_TRUE(q.ok()) << pq.id << ": " << q.status().ToString();
    BinaryTreeEvaluator oracle(db->store(), db->dict());
    auto expected = oracle.Execute(*q);
    ASSERT_TRUE(expected.ok()) << pq.id;
    for (const ExecOptions& opts :
         {ExecOptions::Base(), ExecOptions::TT(), ExecOptions::CP(),
          ExecOptions::Full()}) {
      auto got = db->Query(pq.sparql, opts);
      ASSERT_TRUE(got.ok()) << pq.id << "/" << opts.Name() << ": "
                            << got.status().ToString();
      EXPECT_TRUE(BagEquals(*expected, *got))
          << pq.id << " under " << opts.Name() << ": expected "
          << expected->size() << " rows, got " << got->size();
    }
  }

  static Database* lubm_;
  static Database* dbp_;
};

Database* IntegrationTest::lubm_ = nullptr;
Database* IntegrationTest::dbp_ = nullptr;

// The heaviest oracle queries (q1.1's triple UNION cross product, q2.2/q2.3's
// multi-group joins) are checked on result sizes only under `full`, because
// the naive oracle materializes every triple pattern and exceeds test-time
// budgets; all operators involved are covered by the other queries.
bool OracleTractable(const std::string& id, const char* workload) {
  if (id == "q2.2" || id == "q2.3") return false;
  if (std::string(workload) == "lubm" && (id == "q1.1" || id == "q1.2"))
    return false;
  if (std::string(workload) == "dbpedia" && (id == "q1.1" || id == "q1.2"))
    return false;
  return true;
}

TEST_F(IntegrationTest, LubmPaperQueriesAllApproachesMatchOracle) {
  for (const PaperQuery& pq : LubmPaperQueries()) {
    if (!OracleTractable(pq.id, "lubm")) continue;
    CheckQuery(lubm_, pq);
  }
}

TEST_F(IntegrationTest, DbpediaPaperQueriesAllApproachesMatchOracle) {
  for (const PaperQuery& pq : DbpediaPaperQueries()) {
    if (!OracleTractable(pq.id, "dbpedia")) continue;
    CheckQuery(dbp_, pq);
  }
}

TEST_F(IntegrationTest, HeavyQueriesApproachesAgreeWithEachOther) {
  // For queries too heavy for the oracle, the four approaches must still
  // agree among themselves.
  for (auto& [db, queries] :
       {std::pair{lubm_, &LubmPaperQueries()},
        std::pair{dbp_, &DbpediaPaperQueries()}}) {
    for (const char* id : {"q1.1", "q1.2", "q2.2", "q2.3"}) {
      const PaperQuery* pq = FindQuery(*queries, id);
      ASSERT_NE(pq, nullptr);
      auto base = db->Query(pq->sparql, ExecOptions::Base());
      ASSERT_TRUE(base.ok()) << id << ": " << base.status().ToString();
      for (const ExecOptions& opts :
           {ExecOptions::TT(), ExecOptions::CP(), ExecOptions::Full()}) {
        auto got = db->Query(pq->sparql, opts);
        ASSERT_TRUE(got.ok()) << id << "/" << opts.Name();
        EXPECT_TRUE(BagEquals(*base, *got)) << id << " under " << opts.Name();
      }
    }
  }
}

TEST_F(IntegrationTest, BothEnginesAgreeOnPaperQueries) {
  Database hj;
  LubmConfig lc;
  lc.universities = 1;
  lc.density = 0.25;
  GenerateLubm(lc, &hj);
  hj.Finalize(EngineKind::kHashJoin);
  for (const PaperQuery& pq : LubmPaperQueries()) {
    auto r1 = lubm_->Query(pq.sparql, ExecOptions::Full());
    auto r2 = hj.Query(pq.sparql, ExecOptions::Full());
    ASSERT_TRUE(r1.ok() && r2.ok()) << pq.id;
    EXPECT_TRUE(BagEquals(*r1, *r2)) << pq.id;
  }
}

TEST_F(IntegrationTest, LbrAgreesWithFullOnGroup2) {
  LbrEngine lbr(lubm_->store(), lubm_->dict());
  for (const PaperQuery& pq : LubmPaperQueries()) {
    if (pq.id.rfind("q2.", 0) != 0) continue;
    auto q = lubm_->Parse(pq.sparql);
    ASSERT_TRUE(q.ok()) << pq.id;
    auto r1 = lbr.Execute(*q);
    ASSERT_TRUE(r1.ok()) << pq.id << ": " << r1.status().ToString();
    auto r2 = lubm_->Query(pq.sparql, ExecOptions::Full());
    ASSERT_TRUE(r2.ok()) << pq.id;
    EXPECT_TRUE(BagEquals(*r1, *r2)) << pq.id;
  }
}

TEST_F(IntegrationTest, TransformationsFireOnPaperWorkload) {
  // The TT plan must differ from base on at least some Group 1 queries.
  size_t transformed = 0;
  for (const PaperQuery& pq : LubmPaperQueries()) {
    if (pq.id.rfind("q1.", 0) != 0) continue;
    auto q = lubm_->Parse(pq.sparql);
    ASSERT_TRUE(q.ok());
    ExecMetrics m;
    BeTree plan = lubm_->executor().Plan(*q, ExecOptions::TT(), &m);
    ASSERT_TRUE(plan.Validate().ok()) << pq.id;
    if (m.transform.merges + m.transform.injects > 0) ++transformed;
  }
  EXPECT_GT(transformed, 0u);
}

}  // namespace
}  // namespace sparqluo
