// Torture tests for the HTTP server (src/http/http_server.h): every-prefix
// truncation, split-at-every-byte feeds, pipelined keep-alive, oversize
// request lines/headers/bodies, slow-loris idle timeouts, write-stall
// timeouts, and abrupt mid-response disconnects. Every scenario ends by
// proving the server still serves a clean request — the invariant under
// torture is "no wedged connections, no wedged workers".
#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "engine/database.h"
#include "http_client.h"
#include "server/query_service.h"
#include "server/sparql_endpoint.h"
#include "workload/lubm_generator.h"

namespace sparqluo {
namespace {

using testhttp::Fetch;
using testhttp::Response;
using testhttp::SparqlGet;
using testhttp::TestHttpClient;

constexpr char kHealthz[] =
    "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";

class HttpTortureTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    LubmConfig cfg;
    cfg.universities = 1;
    GenerateLubm(cfg, db_);
    db_->Finalize(EngineKind::kWco);

    QueryService::Options sopts;
    sopts.num_threads = 4;
    service_ = new QueryService(*db_, sopts);
    SparqlEndpoint::Options eopts;
    endpoint_ = new SparqlEndpoint(*service_, db_->dict(), eopts);
    Status s = endpoint_->Start();
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
  static void TearDownTestSuite() {
    delete endpoint_;
    endpoint_ = nullptr;
    delete service_;
    service_ = nullptr;
    delete db_;
    db_ = nullptr;
  }

  static uint16_t port() { return endpoint_->port(); }

  /// The liveness invariant checked after every torture scenario.
  static void ExpectHealthy() {
    Response r = Fetch(port(), kHealthz);
    ASSERT_TRUE(r.ok) << "server no longer serves requests";
    EXPECT_EQ(r.status, 200);
  }

  static Database* db_;
  static QueryService* service_;
  static SparqlEndpoint* endpoint_;
};

Database* HttpTortureTest::db_ = nullptr;
QueryService* HttpTortureTest::service_ = nullptr;
SparqlEndpoint* HttpTortureTest::endpoint_ = nullptr;

// --- Truncation and fragmentation ---------------------------------------

// A request cut off after any prefix must never produce a 200 — the
// server either answers with an error or closes quietly, and stays up.
TEST_F(HttpTortureTest, EveryPrefixTruncation) {
  const std::string request(kHealthz);
  for (size_t cut = 0; cut < request.size(); ++cut) {
    TestHttpClient client(port());
    ASSERT_TRUE(client.connected()) << "cut=" << cut;
    ASSERT_TRUE(client.SendRaw(std::string_view(request).substr(0, cut)));
    client.ShutdownWrite();
    std::string answer = client.ReadAll(2000);
    EXPECT_EQ(answer.find("HTTP/1.1 200"), std::string::npos)
        << "truncated request at byte " << cut << " got a 200";
  }
  ExpectHealthy();
}

// The same bytes split across two writes at every boundary must parse
// identically to a single write.
TEST_F(HttpTortureTest, SplitAtEveryByteHealthz) {
  const std::string request(kHealthz);
  for (size_t cut = 1; cut < request.size(); ++cut) {
    TestHttpClient client(port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.SendRaw(std::string_view(request).substr(0, cut)));
    ASSERT_TRUE(client.SendRaw(std::string_view(request).substr(cut)));
    Response r = client.ReadResponse();
    ASSERT_TRUE(r.ok) << "split at byte " << cut;
    EXPECT_EQ(r.status, 200) << "split at byte " << cut;
    EXPECT_EQ(r.body, "ok\n");
  }
}

// Splitting a real query request (request line, percent-escapes, headers,
// everywhere) never changes the result.
TEST_F(HttpTortureTest, SplitAtEveryByteSparqlQuery) {
  const std::string request =
      SparqlGet("SELECT ?x WHERE { ?x ?p ?o } LIMIT 1");
  Response whole = Fetch(port(), request);
  ASSERT_TRUE(whole.ok);
  ASSERT_EQ(whole.status, 200);
  for (size_t cut = 1; cut < request.size(); ++cut) {
    TestHttpClient client(port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.SendRaw(std::string_view(request).substr(0, cut)));
    ASSERT_TRUE(client.SendRaw(std::string_view(request).substr(cut)));
    Response r = client.ReadResponse();
    ASSERT_TRUE(r.ok) << "split at byte " << cut;
    ASSERT_EQ(r.status, 200) << "split at byte " << cut;
    EXPECT_EQ(r.body, whole.body) << "split at byte " << cut;
  }
}

// --- Pipelining ---------------------------------------------------------

// Several requests in one TCP segment, answered strictly in order on one
// connection (reads are paused while a request is being handled, so
// responses can never interleave).
TEST_F(HttpTortureTest, PipelinedKeepAlive) {
  std::string batch;
  constexpr int kRequests = 5;
  for (int i = 0; i < kRequests; ++i)
    batch += "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
  batch += SparqlGet("SELECT ?x WHERE { ?x ?p ?o } LIMIT 2");

  TestHttpClient client(port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendRaw(batch));
  for (int i = 0; i < kRequests; ++i) {
    Response r = client.ReadResponse();
    ASSERT_TRUE(r.ok) << "pipelined response " << i;
    EXPECT_EQ(r.status, 200);
    EXPECT_EQ(r.body, "ok\n");
  }
  Response query = client.ReadResponse();
  ASSERT_TRUE(query.ok);
  EXPECT_EQ(query.status, 200);
  EXPECT_NE(query.body.find("\"bindings\""), std::string::npos);
}

// --- Size limits --------------------------------------------------------

TEST_F(HttpTortureTest, OversizeRequestLineIs414) {
  std::string request = "GET /" + std::string(9000, 'a') +
                        " HTTP/1.1\r\nHost: t\r\n\r\n";
  Response r = Fetch(port(), request);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 414);
  ExpectHealthy();
}

TEST_F(HttpTortureTest, OversizeHeadersAre431) {
  std::string request = "GET /healthz HTTP/1.1\r\nHost: t\r\n";
  for (int i = 0; i < 10; ++i)
    request += "X-Pad-" + std::to_string(i) + ": " + std::string(7000, 'x') +
               "\r\n";
  request += "\r\n";
  Response r = Fetch(port(), request);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 431);
  ExpectHealthy();
}

// A Content-Length beyond the body cap is rejected from the headers alone
// — the server never waits for (or buffers) the body.
TEST_F(HttpTortureTest, OversizeBodyIs413WithoutReadingIt) {
  TestHttpClient client(port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendRaw(
      "POST /sparql HTTP/1.1\r\nHost: t\r\n"
      "Content-Type: application/sparql-query\r\n"
      "Content-Length: 17825792\r\n\r\n"));  // 17 MB declared, none sent
  Response r = client.ReadResponse(5000);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 413);
  ExpectHealthy();
}

TEST_F(HttpTortureTest, ChunkedBodyOverflowIs413) {
  TestHttpClient client(port());
  ASSERT_TRUE(client.connected());
  // One declared 17 MB chunk; the size line alone trips the cap.
  ASSERT_TRUE(client.SendRaw(
      "POST /sparql HTTP/1.1\r\nHost: t\r\n"
      "Content-Type: application/sparql-query\r\n"
      "Transfer-Encoding: chunked\r\n\r\n1100000\r\n"));
  Response r = client.ReadResponse(5000);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 413);
  ExpectHealthy();
}

// --- Malformed and unsupported requests ---------------------------------

TEST_F(HttpTortureTest, ProtocolErrors) {
  struct Case {
    const char* raw;
    int status;
  };
  const Case cases[] = {
      {"\x01\x02garbage\r\n\r\n", 400},
      {"GET /healthz\r\n\r\n", 400},                    // no version
      {"GET  /healthz HTTP/1.1\r\n\r\n", 400},          // double space
      {"PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n", 505},        // h2 preface
      {"GET /healthz HTTP/9.9\r\n\r\n", 505},
      {"GET /healthz HTTP/1.1\r\nBad Name: x\r\n\r\n", 400},  // space in name
      {"GET /healthz HTTP/1.1\r\nHost: t\r\n folded\r\n\r\n", 400},  // obs-fold
      {"POST /sparql HTTP/1.1\r\nHost: t\r\n"
       "Transfer-Encoding: gzip\r\n\r\n",
       501},
      {"POST /sparql HTTP/1.1\r\nHost: t\r\n"
       "Transfer-Encoding: chunked\r\nContent-Length: 10\r\n\r\n",
       400},  // smuggling: TE + CL
      {"POST /sparql HTTP/1.1\r\nHost: t\r\n"
       "Content-Length: 5\r\nContent-Length: 6\r\n\r\n",
       400},  // conflicting CL
      {"POST /sparql HTTP/1.1\r\nHost: t\r\nContent-Length: -1\r\n\r\n", 400},
  };
  for (const Case& c : cases) {
    Response r = Fetch(port(), c.raw);
    ASSERT_TRUE(r.ok) << c.raw;
    EXPECT_EQ(r.status, c.status) << c.raw;
    // Parse errors are terminal for the connection.
    const std::string* conn = r.FindHeader("Connection");
    ASSERT_NE(conn, nullptr) << c.raw;
    EXPECT_EQ(*conn, "close") << c.raw;
  }
  ExpectHealthy();
}

// --- Timeouts -----------------------------------------------------------

// Slow-loris: a client that dribbles (or stops sending) a request must be
// evicted by the idle timeout, not hold a connection forever.
TEST_F(HttpTortureTest, SlowLorisIsEvictedByIdleTimeout) {
  QueryService::Options sopts;
  sopts.num_threads = 2;
  QueryService service(*db_, sopts);
  SparqlEndpoint::Options eopts;
  eopts.http.idle_timeout = std::chrono::milliseconds(100);
  SparqlEndpoint endpoint(service, db_->dict(), eopts);
  ASSERT_TRUE(endpoint.Start().ok());

  // Sends a partial request, then goes quiet.
  TestHttpClient dribbler(endpoint.port());
  ASSERT_TRUE(dribbler.connected());
  ASSERT_TRUE(dribbler.SendRaw("GET /healthz HTTP/1.1\r\nHos"));
  EXPECT_TRUE(dribbler.WaitForClose(3000))
      << "slow-loris connection survived the idle timeout";

  // Sends nothing at all.
  TestHttpClient silent(endpoint.port());
  ASSERT_TRUE(silent.connected());
  EXPECT_TRUE(silent.WaitForClose(3000))
      << "silent connection survived the idle timeout";

  // A live connection with completed requests is unaffected mid-response.
  Response r = Fetch(endpoint.port(), kHealthz);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
}

// A client that requests a huge result and then stops reading must be cut
// off by the write-stall timeout, releasing the worker mid-stream.
TEST_F(HttpTortureTest, WriteStallTimeoutReleasesWorker) {
  QueryService::Options sopts;
  sopts.num_threads = 2;
  QueryService service(*db_, sopts);
  SparqlEndpoint::Options eopts;
  eopts.http.write_stall_timeout = std::chrono::milliseconds(200);
  SparqlEndpoint endpoint(service, db_->dict(), eopts);
  ASSERT_TRUE(endpoint.Start().ok());

  TestHttpClient client(endpoint.port());
  ASSERT_TRUE(client.connected());
  // The whole store as JSON: far larger than socket buffers + the 4 MB
  // output queue high-water mark, so the producer must block on the queue.
  ASSERT_TRUE(client.SendRaw(SparqlGet("SELECT ?s ?p ?o WHERE { ?s ?p ?o }")));
  // Read nothing. The server must give up on us and close.
  EXPECT_TRUE(client.WaitForClose(10000))
      << "stalled connection survived the write-stall timeout";

  // The worker that was streaming is free again: new queries finish.
  Response r = Fetch(endpoint.port(),
                     SparqlGet("SELECT ?x WHERE { ?x ?p ?o } LIMIT 1"));
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
}

// --- Abrupt disconnects -------------------------------------------------

// Clients that vanish mid-response (after reading part of a large body)
// must abort serialization server-side without wedging anything. Repeated
// to shake out races between the close and in-flight writes.
TEST_F(HttpTortureTest, AbruptDisconnectMidResponse) {
  for (int round = 0; round < 5; ++round) {
    TestHttpClient client(port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(
        client.SendRaw(SparqlGet("SELECT ?s ?p ?o WHERE { ?s ?p ?o }")));
    // Read a little of the response, then vanish without a FIN handshake.
    // The first-byte wait is generous: sanitized builds run the full-store
    // query an order of magnitude slower.
    std::string some = client.ReadSome(30000);
    EXPECT_FALSE(some.empty()) << "no response bytes before disconnect";
    client.Close();
    ExpectHealthy();
  }
}

// Disconnecting exactly between pipelined requests is routine, not a race.
TEST_F(HttpTortureTest, DisconnectBetweenPipelinedRequests) {
  for (int round = 0; round < 10; ++round) {
    TestHttpClient client(port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.SendRaw(
        "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
        "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"));
    Response first = client.ReadResponse();
    ASSERT_TRUE(first.ok);
    EXPECT_EQ(first.status, 200);
    client.Close();  // the second pipelined request may be mid-dispatch
  }
  ExpectHealthy();
}

}  // namespace
}  // namespace sparqluo
