// Write-ahead log unit suite (src/store/wal.h).
//
// Covers the log in isolation and attached to a database:
//   1. append/recover round-trips preserve versions, op kinds, op order
//      and term bytes, across segment rotation;
//   2. torn tails (partial header, length past EOF, CRC damage) in the
//      last segment truncate cleanly; the same damage in an earlier
//      segment — or a corrupt checkpoint marker — fails loudly;
//   3. checkpointing records the snapshot version durably and retires
//      covered segments;
//   4. injected write/fsync failures (EIO, ENOSPC, short writes) refuse
//      the commit with kUnavailable, never publish, keep the store
//      serving reads — HTTP updates answer 503 while queries answer
//      200 — and a retry after the fault clears succeeds;
//   5. a database recovered through snapshot + replay is bit-identical
//      (dictionary ids and all three CSR permutations) to one that
//      never crashed.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/snapshot.h"
#include "http_client.h"
#include "server/query_service.h"
#include "server/sparql_endpoint.h"
#include "store/wal.h"
#include "util/fault_fs.h"

namespace sparqluo {
namespace {

using testhttp::Fetch;
using testhttp::Response;
using testhttp::UrlEncode;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + name + "." +
                    std::to_string(::getpid());
  std::string cmd = "rm -rf " + dir;
  EXPECT_EQ(std::system(cmd.c_str()), 0);
  return dir;
}

UpdateBatch InsertBatch(int i) {
  UpdateBatch b;
  b.Insert(Term::Iri("http://ex/s" + std::to_string(i)),
           Term::Iri("http://ex/p"),
           Term::Literal("value " + std::to_string(i)));
  b.Insert(Term::Iri("http://ex/s" + std::to_string(i)),
           Term::Iri("http://ex/q"),
           Term::TypedLiteral(std::to_string(i),
                              "http://www.w3.org/2001/XMLSchema#integer"));
  return b;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Dictionary + all three CSR permutations must match exactly: same term
/// ids decoding to the same bytes, same directories, same pair arrays.
void ExpectBitIdenticalStores(const Database& a, const Database& b) {
  ASSERT_EQ(a.dict().size(), b.dict().size());
  for (TermId id = 0; id < a.dict().size(); ++id)
    ASSERT_EQ(a.dict().Decode(id), b.dict().Decode(id)) << "term id " << id;
  ASSERT_EQ(a.store().size(), b.store().size());
  for (Perm perm : {Perm::kSpo, Perm::kPos, Perm::kOsp}) {
    std::vector<std::pair<TermId, std::vector<IdPair>>> ga, gb;
    a.store().ForEachGroup(perm, [&](TermId f, std::span<const IdPair> prs) {
      ga.emplace_back(f, std::vector<IdPair>(prs.begin(), prs.end()));
    });
    b.store().ForEachGroup(perm, [&](TermId f, std::span<const IdPair> prs) {
      gb.emplace_back(f, std::vector<IdPair>(prs.begin(), prs.end()));
    });
    ASSERT_EQ(ga, gb) << "CSR divergence, perm " << static_cast<int>(perm);
  }
}

// --- Policy parsing ------------------------------------------------------

TEST(FsyncPolicyTest, Parses) {
  int ms = 0;
  auto p = ParseFsyncPolicy("always", &ms);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, FsyncPolicy::kAlways);
  p = ParseFsyncPolicy("off", &ms);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, FsyncPolicy::kOff);
  p = ParseFsyncPolicy("25", &ms);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, FsyncPolicy::kInterval);
  EXPECT_EQ(ms, 25);
  EXPECT_FALSE(ParseFsyncPolicy("0", &ms).ok());
  EXPECT_FALSE(ParseFsyncPolicy("-5", &ms).ok());
  EXPECT_FALSE(ParseFsyncPolicy("sometimes", &ms).ok());
  EXPECT_FALSE(ParseFsyncPolicy("", &ms).ok());
}

// --- Round trips ---------------------------------------------------------

TEST(WalTest, AppendRecoverRoundTrip) {
  std::string dir = FreshDir("wal_roundtrip");
  std::vector<UpdateBatch> batches;
  for (int i = 1; i <= 5; ++i) batches.push_back(InsertBatch(i));
  batches[3].Delete(Term::Iri("http://ex/s1"), Term::Iri("http://ex/p"),
                    Term::Literal("value 1"));
  {
    auto wal = Wal::Open(dir, {});
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    for (int i = 0; i < 5; ++i)
      ASSERT_TRUE((*wal)->Append(static_cast<uint64_t>(i + 1),
                                 batches[static_cast<size_t>(i)].ops)
                      .ok());
    ASSERT_TRUE((*wal)->Close().ok());
  }
  auto wal = Wal::Open(dir, {});
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  WalRecoveryInfo info;
  auto records = (*wal)->Recover(0, &info);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 5u);
  EXPECT_EQ(info.segments_scanned, 1u);
  EXPECT_FALSE(info.torn_tail_truncated);
  for (size_t i = 0; i < records->size(); ++i) {
    const WalRecord& rec = (*records)[i];
    EXPECT_EQ(rec.version, i + 1);
    const std::vector<UpdateOp>& want = batches[i].ops;
    ASSERT_EQ(rec.batch.ops.size(), want.size());
    for (size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(rec.batch.ops[j].kind, want[j].kind);
      EXPECT_EQ(rec.batch.ops[j].triple.s, want[j].triple.s);
      EXPECT_EQ(rec.batch.ops[j].triple.p, want[j].triple.p);
      EXPECT_EQ(rec.batch.ops[j].triple.o, want[j].triple.o);
    }
  }
  // from_version filters already-checkpointed records.
  auto tail = (*wal)->Recover(3, &info);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail->size(), 2u);
  EXPECT_EQ((*tail)[0].version, 4u);
}

TEST(WalTest, RotationSpansSegments) {
  std::string dir = FreshDir("wal_rotation");
  Wal::Options opts;
  opts.segment_bytes = 128;  // Force a rotation every record or two.
  {
    auto wal = Wal::Open(dir, opts);
    ASSERT_TRUE(wal.ok());
    for (int i = 1; i <= 8; ++i)
      ASSERT_TRUE(
          (*wal)->Append(static_cast<uint64_t>(i), InsertBatch(i).ops).ok());
    ASSERT_TRUE((*wal)->Close().ok());
  }
  auto wal = Wal::Open(dir, opts);
  ASSERT_TRUE(wal.ok());
  WalRecoveryInfo info;
  auto records = (*wal)->Recover(0, &info);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 8u);
  EXPECT_GT(info.segments_scanned, 1u);
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ((*records)[i].version, i + 1);
  // Appending after recovery continues the newest segment.
  ASSERT_TRUE((*wal)->Append(9, InsertBatch(9).ops).ok());
  ASSERT_TRUE((*wal)->Close().ok());
  auto again = Wal::Open(dir, opts);
  ASSERT_TRUE(again.ok());
  auto all = (*again)->Recover(0, &info);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 9u);
}

// --- Torn tails and corruption -------------------------------------------

std::string SoleSegmentPath(const std::string& dir) {
  FaultInjectionFileOps ops;
  auto names = ops.ListDir(dir);
  EXPECT_TRUE(names.ok());
  std::string found;
  for (const std::string& n : *names)
    if (n.rfind("wal-", 0) == 0) {
      EXPECT_TRUE(found.empty()) << "more than one segment";
      found = dir + "/" + n;
    }
  EXPECT_FALSE(found.empty());
  return found;
}

void FillThreeRecords(const std::string& dir) {
  auto wal = Wal::Open(dir, {});
  ASSERT_TRUE(wal.ok());
  for (int i = 1; i <= 3; ++i)
    ASSERT_TRUE(
        (*wal)->Append(static_cast<uint64_t>(i), InsertBatch(i).ops).ok());
  ASSERT_TRUE((*wal)->Close().ok());
}

TEST(WalTest, TornTailPartialRecordTruncated) {
  std::string dir = FreshDir("wal_torn_partial");
  FillThreeRecords(dir);
  std::string seg = SoleSegmentPath(dir);
  std::string bytes = ReadFileBytes(seg);
  // Chop mid-way through the last record: a crash mid-append.
  WriteFileBytes(seg, bytes.substr(0, bytes.size() - 7));

  auto wal = Wal::Open(dir, {});
  ASSERT_TRUE(wal.ok());
  WalRecoveryInfo info;
  auto records = (*wal)->Recover(0, &info);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_EQ(records->size(), 2u);
  EXPECT_TRUE(info.torn_tail_truncated);
  EXPECT_GT(info.truncated_bytes, 0u);
  // The torn bytes are gone from disk and appends continue cleanly.
  ASSERT_TRUE((*wal)->Append(3, InsertBatch(3).ops).ok());
  ASSERT_TRUE((*wal)->Close().ok());
  auto again = Wal::Open(dir, {});
  ASSERT_TRUE(again.ok());
  auto all = (*again)->Recover(0, &info);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);
  EXPECT_FALSE(info.torn_tail_truncated);
}

TEST(WalTest, TornTailCrcDamageTruncated) {
  std::string dir = FreshDir("wal_torn_crc");
  FillThreeRecords(dir);
  std::string seg = SoleSegmentPath(dir);
  std::string bytes = ReadFileBytes(seg);
  bytes[bytes.size() - 3] ^= 0x40;  // Flip a bit inside the last payload.
  WriteFileBytes(seg, bytes);

  auto wal = Wal::Open(dir, {});
  ASSERT_TRUE(wal.ok());
  WalRecoveryInfo info;
  auto records = (*wal)->Recover(0, &info);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_EQ(records->size(), 2u);
  EXPECT_TRUE(info.torn_tail_truncated);
}

TEST(WalTest, CorruptionInEarlierSegmentFailsRecovery) {
  std::string dir = FreshDir("wal_earlier_corrupt");
  Wal::Options opts;
  opts.segment_bytes = 128;
  {
    auto wal = Wal::Open(dir, opts);
    ASSERT_TRUE(wal.ok());
    for (int i = 1; i <= 6; ++i)
      ASSERT_TRUE(
          (*wal)->Append(static_cast<uint64_t>(i), InsertBatch(i).ops).ok());
    ASSERT_TRUE((*wal)->Close().ok());
  }
  // Damage the FIRST segment's tail — not the last segment, so the torn
  // tail heuristic must not excuse it.
  FaultInjectionFileOps raw;
  auto names = raw.ListDir(dir);
  ASSERT_TRUE(names.ok());
  std::vector<std::string> segs;
  for (const std::string& n : *names)
    if (n.rfind("wal-", 0) == 0) segs.push_back(n);
  std::sort(segs.begin(), segs.end());
  ASSERT_GE(segs.size(), 2u);
  std::string first = dir + "/" + segs.front();
  std::string bytes = ReadFileBytes(first);
  bytes.resize(bytes.size() - 5);
  WriteFileBytes(first, bytes);

  auto wal = Wal::Open(dir, opts);
  ASSERT_TRUE(wal.ok());
  WalRecoveryInfo info;
  auto records = (*wal)->Recover(0, &info);
  ASSERT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kParseError);
}

TEST(WalTest, CorruptCheckpointMarkerFailsOpen) {
  std::string dir = FreshDir("wal_bad_marker");
  {
    auto wal = Wal::Open(dir, {});
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(1, InsertBatch(1).ops).ok());
    ASSERT_TRUE((*wal)->Checkpoint(1, 2).ok());
    ASSERT_TRUE((*wal)->Close().ok());
  }
  std::string marker = dir + "/checkpoint";
  std::string bytes = ReadFileBytes(marker);
  bytes[10] ^= 0x01;
  WriteFileBytes(marker, bytes);
  auto wal = Wal::Open(dir, {});
  ASSERT_FALSE(wal.ok());
  EXPECT_EQ(wal.status().code(), StatusCode::kParseError);
}

// --- Checkpointing -------------------------------------------------------

TEST(WalTest, CheckpointRetiresCoveredSegments) {
  std::string dir = FreshDir("wal_checkpoint");
  auto wal = Wal::Open(dir, {});
  ASSERT_TRUE(wal.ok());
  for (int i = 1; i <= 4; ++i)
    ASSERT_TRUE(
        (*wal)->Append(static_cast<uint64_t>(i), InsertBatch(i).ops).ok());
  ASSERT_TRUE((*wal)->Checkpoint(4, 42).ok());
  EXPECT_EQ((*wal)->checkpoint_version(), 4u);
  EXPECT_EQ((*wal)->checkpoint_store_size(), 42u);
  // Everything at or below v4 is snapshot-covered: nothing left to replay.
  WalRecoveryInfo info;
  {
    auto verify = Wal::Open(dir, {});
    ASSERT_TRUE(verify.ok());
    EXPECT_EQ((*verify)->checkpoint_version(), 4u);
    auto records = (*verify)->Recover((*verify)->checkpoint_version(), &info);
    ASSERT_TRUE(records.ok()) << records.status().ToString();
    EXPECT_TRUE(records->empty());
  }
  // Records appended after the checkpoint land in the fresh segment and
  // survive the next recovery.
  ASSERT_TRUE((*wal)->Append(5, InsertBatch(5).ops).ok());
  ASSERT_TRUE((*wal)->Close().ok());
  auto again = Wal::Open(dir, {});
  ASSERT_TRUE(again.ok());
  auto records = (*again)->Recover((*again)->checkpoint_version(), &info);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].version, 5u);
}

// --- Fault injection: commits refuse, reads keep serving -----------------

TEST(WalFaultTest, FsyncFailureRefusesCommitAndRetrySucceeds) {
  std::string dir = FreshDir("wal_fault_fsync");
  FaultInjectionFileOps fault;
  Database db;
  db.AddTriple(Term::Iri("http://ex/base"), Term::Iri("http://ex/p"),
               Term::Literal("seed"));
  db.Finalize(EngineKind::kWco);
  Wal::Options wopts;
  wopts.ops = &fault;
  ASSERT_TRUE(db.OpenWal(dir, wopts).ok());
  ASSERT_TRUE(db.Apply(InsertBatch(1)).ok());

  fault.FailFsync(/*nth=*/0, EIO, /*sticky=*/true);
  auto failed = db.Apply(InsertBatch(2));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  // Nothing published: still at v1, and reads keep answering.
  EXPECT_EQ(db.version(), 1u);
  auto rows = db.Query("SELECT ?o WHERE { <http://ex/s1> <http://ex/p> ?o }");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);

  // The staged batch survives the refusal; once the device recovers the
  // very same commit goes through.
  fault.Disarm();
  auto retried = db.Commit();
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(retried->version, 2u);
  rows = db.Query("SELECT ?o WHERE { <http://ex/s2> <http://ex/p> ?o }");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST(WalFaultTest, WriteFailureRollsBackAndEnospcIsClean) {
  std::string dir = FreshDir("wal_fault_write");
  FaultInjectionFileOps fault;
  Database db;
  db.Finalize(EngineKind::kWco);
  Wal::Options wopts;
  wopts.ops = &fault;
  ASSERT_TRUE(db.OpenWal(dir, wopts).ok());
  ASSERT_TRUE(db.Apply(InsertBatch(1)).ok());

  // A short write followed by sticky ENOSPC: WriteAll makes partial
  // progress then fails, and the append must truncate the tail back.
  fault.ShortWrite(/*nth=*/0);
  fault.FailWrite(/*nth=*/0, ENOSPC, /*sticky=*/true);
  auto failed = db.Apply(InsertBatch(2));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(db.version(), 1u);

  fault.Disarm();
  auto retried = db.Commit();
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(retried->version, 2u);
  // The rolled-back partial record must not confuse recovery.
  Database recovered;
  recovered.Finalize(EngineKind::kWco);
  auto info = recovered.OpenWal(dir, {});
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->records_replayed, 2u);
  EXPECT_FALSE(info->torn_tail_truncated);
  ExpectBitIdenticalStores(db, recovered);
}

TEST(WalFaultTest, HttpUpdatesAnswer503WhileQueriesKeepServing) {
  std::string dir = FreshDir("wal_fault_http");
  FaultInjectionFileOps fault;
  Database db;
  db.AddTriple(Term::Iri("http://ex/base"), Term::Iri("http://ex/p"),
               Term::Literal("seed"));
  db.Finalize(EngineKind::kWco);
  Wal::Options wopts;
  wopts.ops = &fault;
  ASSERT_TRUE(db.OpenWal(dir, wopts).ok());

  QueryService::Options sopts;
  sopts.num_threads = 2;
  QueryService service(db, sopts);
  SparqlEndpoint endpoint(service, db.dict(), {});
  ASSERT_TRUE(endpoint.Start().ok());

  fault.FailFsync(/*nth=*/0, EIO, /*sticky=*/true);
  std::string form =
      "update=" +
      UrlEncode("INSERT DATA { <http://ex/a> <http://ex/p> <http://ex/b> }");
  Response update = Fetch(
      endpoint.port(),
      "POST /update HTTP/1.1\r\nHost: t\r\n"
      "Content-Type: application/x-www-form-urlencoded\r\n"
      "Content-Length: " + std::to_string(form.size()) +
      "\r\nConnection: close\r\n\r\n" + form);
  ASSERT_TRUE(update.ok);
  EXPECT_EQ(update.status, 503);

  Response query = Fetch(
      endpoint.port(),
      "GET /sparql?query=" +
          UrlEncode("SELECT ?o WHERE { <http://ex/base> <http://ex/p> ?o }") +
          " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
  ASSERT_TRUE(query.ok);
  EXPECT_EQ(query.status, 200);

  fault.Disarm();
  Response retry = Fetch(
      endpoint.port(),
      "POST /update HTTP/1.1\r\nHost: t\r\n"
      "Content-Type: application/x-www-form-urlencoded\r\n"
      "Content-Length: " + std::to_string(form.size()) +
      "\r\nConnection: close\r\n\r\n" + form);
  ASSERT_TRUE(retry.ok);
  EXPECT_EQ(retry.status, 200) << retry.body;
  endpoint.Stop();
  service.Shutdown();
}

// --- Snapshot + WAL: checkpointed recovery is bit-identical --------------

TEST(WalTest, SnapshotCheckpointAndReplayBitIdentical) {
  std::string dir = FreshDir("wal_ckpt_replay");
  std::string snap = ::testing::TempDir() + "wal_ckpt_replay.snap";
  std::remove(snap.c_str());

  Database reference;
  reference.AddTriple(Term::Iri("http://ex/base"), Term::Iri("http://ex/p"),
                      Term::Literal("seed"));
  reference.Finalize(EngineKind::kWco);

  {
    Database db;
    db.AddTriple(Term::Iri("http://ex/base"), Term::Iri("http://ex/p"),
                 Term::Literal("seed"));
    db.Finalize(EngineKind::kWco);
    ASSERT_TRUE(db.OpenWal(dir, {}).ok());
    for (int i = 1; i <= 3; ++i) ASSERT_TRUE(db.Apply(InsertBatch(i)).ok());
    // Checkpoint at v3, then two more commits that only the log holds.
    ASSERT_TRUE(SaveSnapshot(db, snap, SnapshotFormat::kV2).ok());
    ASSERT_EQ(db.wal()->checkpoint_version(), 3u);
    for (int i = 4; i <= 5; ++i) ASSERT_TRUE(db.Apply(InsertBatch(i)).ok());
  }
  for (int i = 1; i <= 5; ++i) ASSERT_TRUE(reference.Apply(InsertBatch(i)).ok());

  Database recovered;
  ASSERT_TRUE(LoadSnapshot(snap, &recovered).ok());
  recovered.Finalize(EngineKind::kWco);
  auto info = recovered.OpenWal(dir, {});
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->checkpoint_version, 3u);
  EXPECT_EQ(info->records_replayed, 2u);
  EXPECT_EQ(recovered.version(), 5u);
  ExpectBitIdenticalStores(reference, recovered);
}

// --- Snapshot durability faults ------------------------------------------

TEST(SnapshotFaultTest, SaveFailuresLeavePriorSnapshotIntact) {
  std::string path = ::testing::TempDir() + "snapshot_fault.snap";
  std::remove(path.c_str());
  Database db;
  db.AddTriple(Term::Iri("http://ex/s"), Term::Iri("http://ex/p"),
               Term::Literal("v1"));
  db.Finalize(EngineKind::kWco);
  ASSERT_TRUE(SaveSnapshot(db, path, SnapshotFormat::kV2).ok());
  std::string good = ReadFileBytes(path);

  // File-fsync failure: the temporary must not replace the good file.
  FaultInjectionFileOps fault;
  fault.FailFsync(/*nth=*/0, EIO, /*sticky=*/true);
  Status s = SaveSnapshot(db, path, SnapshotFormat::kV2, &fault);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(ReadFileBytes(path), good);

  // Write failure mid-stream: same guarantee.
  fault.Disarm();
  fault.FailWrite(/*nth=*/0, ENOSPC, /*sticky=*/true);
  s = SaveSnapshot(db, path, SnapshotFormat::kV2, &fault);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(ReadFileBytes(path), good);

  // And once the device behaves, saving over the survivor works.
  fault.Disarm();
  ASSERT_TRUE(SaveSnapshot(db, path, SnapshotFormat::kV2, &fault).ok());
  EXPECT_GT(fault.fsyncs(), 0);
  EXPECT_GT(fault.dir_syncs(), 0);
  EXPECT_EQ(ReadFileBytes(path), good);
}

}  // namespace
}  // namespace sparqluo
