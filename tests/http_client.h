// Minimal blocking HTTP/1.1 test client used by the protocol conformance
// and torture suites (and bench_http). Deliberately independent of
// src/http so the tests exercise the server through a second, trivially
// auditable implementation: raw sockets, poll-based timeouts, and its own
// response parsing (Content-Length, chunked, and close-delimited bodies).
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sparqluo {
namespace testhttp {

struct Response {
  bool ok = false;  ///< A complete response was read and parsed.
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  const std::string* FindHeader(std::string_view name) const {
    for (const auto& [key, value] : headers) {
      if (key.size() != name.size()) continue;
      bool match = true;
      for (size_t i = 0; i < key.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(key[i])) !=
            std::tolower(static_cast<unsigned char>(name[i]))) {
          match = false;
          break;
        }
      }
      if (match) return &value;
    }
    return nullptr;
  }
};

class TestHttpClient {
 public:
  explicit TestHttpClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return;
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  ~TestHttpClient() { Close(); }
  TestHttpClient(const TestHttpClient&) = delete;
  TestHttpClient& operator=(const TestHttpClient&) = delete;

  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  /// Half-closes the write side (the server sees EOF after our bytes).
  void ShutdownWrite() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
  }

  bool SendRaw(std::string_view bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                         MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads every byte until EOF or timeout; returns what arrived.
  std::string ReadAll(int timeout_ms = 5000) {
    std::string out;
    char buf[16 * 1024];
    for (;;) {
      int n = PollRead(timeout_ms);
      if (n <= 0) break;
      ssize_t got = ::recv(fd_, buf, sizeof(buf), 0);
      if (got <= 0) break;
      out.append(buf, static_cast<size_t>(got));
    }
    return out;
  }

  /// Reads a single chunk (at most 16 KB) once data is available, waiting
  /// up to timeout_ms for the first byte. Empty on timeout or EOF.
  std::string ReadSome(int timeout_ms = 5000) {
    char buf[16 * 1024];
    if (PollRead(timeout_ms) <= 0) return {};
    ssize_t got = ::recv(fd_, buf, sizeof(buf), 0);
    if (got <= 0) return {};
    return std::string(buf, static_cast<size_t>(got));
  }

  /// True when the server has closed the connection (EOF observed within
  /// the timeout).
  bool WaitForClose(int timeout_ms) {
    char buf[1024];
    for (;;) {
      int n = PollRead(timeout_ms);
      if (n <= 0) return false;  // timed out: still open
      ssize_t got = ::recv(fd_, buf, sizeof(buf), 0);
      if (got == 0) return true;
      if (got < 0) return errno != EINTR;
    }
  }

  /// Reads and parses one full response (headers + framed body).
  Response ReadResponse(int timeout_ms = 10000) {
    Response response;
    // Headers.
    size_t header_end;
    while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      if (!FillBuffer(timeout_ms)) return response;
    }
    std::string head = buffer_.substr(0, header_end);
    buffer_.erase(0, header_end + 4);
    size_t line_end = head.find("\r\n");
    std::string status_line =
        head.substr(0, line_end == std::string::npos ? head.size() : line_end);
    if (status_line.size() < 12 || status_line.compare(0, 5, "HTTP/") != 0)
      return response;
    response.status = std::atoi(status_line.c_str() + 9);
    size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
    while (pos < head.size()) {
      size_t eol = head.find("\r\n", pos);
      if (eol == std::string::npos) eol = head.size();
      std::string line = head.substr(pos, eol - pos);
      pos = eol + 2;
      size_t colon = line.find(':');
      if (colon == std::string::npos) continue;
      std::string name = line.substr(0, colon);
      size_t vstart = colon + 1;
      while (vstart < line.size() && line[vstart] == ' ') ++vstart;
      response.headers.emplace_back(name, line.substr(vstart));
    }
    // Body framing.
    const std::string* te = response.FindHeader("Transfer-Encoding");
    const std::string* cl = response.FindHeader("Content-Length");
    if (te != nullptr && te->find("chunked") != std::string::npos) {
      if (!ReadChunkedBody(&response.body, timeout_ms)) return response;
    } else if (cl != nullptr) {
      size_t want = static_cast<size_t>(std::atoll(cl->c_str()));
      while (buffer_.size() < want) {
        if (!FillBuffer(timeout_ms)) return response;
      }
      response.body = buffer_.substr(0, want);
      buffer_.erase(0, want);
    } else {
      // Close-delimited: everything until EOF.
      while (FillBuffer(timeout_ms)) {
      }
      response.body = std::move(buffer_);
      buffer_.clear();
    }
    response.ok = true;
    return response;
  }

  /// Sends a raw request and reads one response.
  Response Request(std::string_view raw, int timeout_ms = 10000) {
    if (!SendRaw(raw)) return {};
    return ReadResponse(timeout_ms);
  }

 private:
  int PollRead(int timeout_ms) {
    pollfd pfd{fd_, POLLIN, 0};
    for (;;) {
      int n = ::poll(&pfd, 1, timeout_ms);
      if (n < 0 && errno == EINTR) continue;
      return n;
    }
  }

  /// Appends the next chunk of socket data to buffer_; false on EOF/timeout.
  bool FillBuffer(int timeout_ms) {
    if (PollRead(timeout_ms) <= 0) return false;
    char buf[16 * 1024];
    ssize_t got = ::recv(fd_, buf, sizeof(buf), 0);
    if (got <= 0) return false;
    buffer_.append(buf, static_cast<size_t>(got));
    return true;
  }

  bool ReadChunkedBody(std::string* body, int timeout_ms) {
    for (;;) {
      size_t eol;
      while ((eol = buffer_.find("\r\n")) == std::string::npos) {
        if (!FillBuffer(timeout_ms)) return false;
      }
      size_t size = std::strtoull(buffer_.c_str(), nullptr, 16);
      buffer_.erase(0, eol + 2);
      if (size == 0) {
        while (buffer_.find("\r\n") == std::string::npos) {
          if (!FillBuffer(timeout_ms)) return false;
        }
        buffer_.erase(0, buffer_.find("\r\n") + 2);
        return true;
      }
      while (buffer_.size() < size + 2) {
        if (!FillBuffer(timeout_ms)) return false;
      }
      body->append(buffer_, 0, size);
      buffer_.erase(0, size + 2);  // chunk data + trailing CRLF
    }
  }

  int fd_ = -1;
  std::string buffer_;
};

/// Percent-encodes for a URL query parameter value.
inline std::string UrlEncode(std::string_view s) {
  static const char* hex = "0123456789ABCDEF";
  std::string out;
  for (unsigned char c : s) {
    if (std::isalnum(c) || c == '-' || c == '_' || c == '.' || c == '~') {
      out.push_back(static_cast<char>(c));
    } else if (c == ' ') {
      out.push_back('+');
    } else {
      out.push_back('%');
      out.push_back(hex[c >> 4]);
      out.push_back(hex[c & 0xf]);
    }
  }
  return out;
}

/// One-shot convenience: connect, send, read one response.
inline Response Fetch(uint16_t port, std::string_view raw_request,
                      int timeout_ms = 10000) {
  TestHttpClient client(port);
  if (!client.connected()) return {};
  return client.Request(raw_request, timeout_ms);
}

/// Builds a GET /sparql request for a query (with optional Accept header).
inline std::string SparqlGet(std::string_view query,
                             std::string_view accept = "",
                             std::string_view extra_params = "") {
  std::string req = "GET /sparql?query=" + UrlEncode(query);
  if (!extra_params.empty()) req += "&" + std::string(extra_params);
  req += " HTTP/1.1\r\nHost: test\r\n";
  if (!accept.empty()) req += "Accept: " + std::string(accept) + "\r\n";
  req += "Connection: close\r\n\r\n";
  return req;
}

}  // namespace testhttp
}  // namespace sparqluo
