#include <gtest/gtest.h>

#include "algebra/operators.h"
#include "baseline/binary_tree_eval.h"
#include "engine/database.h"

namespace sparqluo {
namespace {

/// Presidents-of-the-US fixture (the paper's Figure 1 example data, scaled).
class ExecutorTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  void SetUp() override {
    auto iri = [](const std::string& s) {
      return Term::Iri("http://dbpedia.org/" + s);
    };
    Term wikilink = iri("ontology/wikiPageWikiLink");
    Term potus = iri("resource/President_of_the_United_States");
    Term same = Term::Iri("http://www.w3.org/2002/07/owl#sameAs");
    Term foaf_name = Term::Iri("http://xmlns.com/foaf/0.1/name");
    Term label = Term::Iri("http://www.w3.org/2000/01/rdf-schema#label");
    // 500 persons; 8 presidents; names split between foaf:name and
    // rdfs:label; sameAs for a third.
    for (int i = 0; i < 500; ++i) {
      Term person = iri("resource/person" + std::to_string(i));
      if (i < 8) db_.AddTriple(person, wikilink, potus);
      if (i % 2 == 0)
        db_.AddTriple(person, foaf_name, Term::Literal("N" + std::to_string(i)));
      if (i % 2 == 1)
        db_.AddTriple(person, label, Term::Literal("N" + std::to_string(i)));
      if (i % 3 == 0)
        db_.AddTriple(person, same, iri("resource/ext" + std::to_string(i)));
    }
    db_.Finalize(GetParam());
  }

  BindingSet Run(const std::string& text, const ExecOptions& opts,
                 ExecMetrics* metrics = nullptr) {
    auto r = db_.Query(Prefixes() + text, opts, metrics);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(*r) : BindingSet();
  }

  static std::string Prefixes() {
    return "PREFIX dbo: <http://dbpedia.org/ontology/>\n"
           "PREFIX dbr: <http://dbpedia.org/resource/>\n"
           "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
           "PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>\n"
           "PREFIX owl: <http://www.w3.org/2002/07/owl#>\n";
  }

  /// Oracle comparison: every approach must agree with the naive
  /// binary-tree evaluation.
  void CheckAllApproachesAgree(const std::string& text) {
    auto q = db_.Parse(Prefixes() + text);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    BinaryTreeEvaluator oracle(db_.store(), db_.dict());
    auto expected = oracle.Execute(*q);
    ASSERT_TRUE(expected.ok());
    for (const ExecOptions& opts :
         {ExecOptions::Base(), ExecOptions::TT(), ExecOptions::CP(),
          ExecOptions::Full()}) {
      auto got = db_.Query(Prefixes() + text, opts);
      ASSERT_TRUE(got.ok()) << opts.Name() << ": " << got.status().ToString();
      EXPECT_TRUE(BagEquals(*expected, *got))
          << opts.Name() << " diverges from the oracle on: " << text;
    }
  }

  Database db_;
};

INSTANTIATE_TEST_SUITE_P(Engines, ExecutorTest,
                         ::testing::Values(EngineKind::kWco,
                                           EngineKind::kHashJoin),
                         [](const auto& info) {
                           return info.param == EngineKind::kWco ? "Wco"
                                                                 : "HashJoin";
                         });

TEST_P(ExecutorTest, Figure1UnionQuery) {
  // Names of presidents, via foaf:name or rdfs:label (Figure 1(a)).
  BindingSet r = Run(
      "SELECT ?x ?name WHERE { ?x dbo:wikiPageWikiLink "
      "dbr:President_of_the_United_States . "
      "{ ?x foaf:name ?name } UNION { ?x rdfs:label ?name } }",
      ExecOptions::Full());
  EXPECT_EQ(r.size(), 8u);  // every president has exactly one name variant
}

TEST_P(ExecutorTest, Figure1OptionalQuery) {
  // Presidents with optional sameAs (Figure 1(b)).
  BindingSet r = Run(
      "SELECT ?x ?same WHERE { ?x dbo:wikiPageWikiLink "
      "dbr:President_of_the_United_States . "
      "OPTIONAL { ?x owl:sameAs ?same } }",
      ExecOptions::Full());
  EXPECT_EQ(r.size(), 8u);  // all retained; some with bound ?same
  // Presidents 0, 3, 6 have sameAs (i % 3 == 0).
  size_t bound = 0;
  VarId same_var = 1;  // ?same is the second projected variable
  for (size_t i = 0; i < r.size(); ++i)
    if (r.At(i, r.ColumnOf(same_var)) != kUnboundTerm) ++bound;
  EXPECT_EQ(bound, 3u);
}

TEST_P(ExecutorTest, AllApproachesAgreeOnUnionQuery) {
  CheckAllApproachesAgree(
      "SELECT * WHERE { ?x dbo:wikiPageWikiLink "
      "dbr:President_of_the_United_States . "
      "{ ?x foaf:name ?n } UNION { ?x rdfs:label ?n } }");
}

TEST_P(ExecutorTest, AllApproachesAgreeOnOptionalQuery) {
  CheckAllApproachesAgree(
      "SELECT * WHERE { ?x dbo:wikiPageWikiLink "
      "dbr:President_of_the_United_States . "
      "OPTIONAL { ?x owl:sameAs ?s } }");
}

TEST_P(ExecutorTest, AllApproachesAgreeOnNestedOptionals) {
  CheckAllApproachesAgree(
      "SELECT * WHERE { ?x dbo:wikiPageWikiLink "
      "dbr:President_of_the_United_States . "
      "OPTIONAL { ?x owl:sameAs ?s . OPTIONAL { ?x foaf:name ?n } } }");
}

TEST_P(ExecutorTest, AllApproachesAgreeOnUnionOfOptionals) {
  CheckAllApproachesAgree(
      "SELECT * WHERE { ?x dbo:wikiPageWikiLink "
      "dbr:President_of_the_United_States . "
      "{ ?x foaf:name ?n . OPTIONAL { ?x owl:sameAs ?s } } UNION "
      "{ ?x rdfs:label ?n . OPTIONAL { ?x owl:sameAs ?s } } }");
}

TEST_P(ExecutorTest, AllApproachesAgreeOnOptionalContainingUnion) {
  CheckAllApproachesAgree(
      "SELECT * WHERE { ?x dbo:wikiPageWikiLink "
      "dbr:President_of_the_United_States . "
      "OPTIONAL { { ?x owl:sameAs ?s } UNION { ?s owl:sameAs ?x } } }");
}

TEST_P(ExecutorTest, OptionalFirstElementInGroup) {
  // An OPTIONAL with nothing to its left: the left side is the unit bag.
  CheckAllApproachesAgree(
      "SELECT * WHERE { OPTIONAL { ?x owl:sameAs ?s } }");
}

TEST_P(ExecutorTest, EmptyAnchorYieldsEmpty) {
  BindingSet r = Run(
      "SELECT * WHERE { ?x dbo:wikiPageWikiLink dbr:No_Such_Entity . "
      "OPTIONAL { ?x owl:sameAs ?s } }",
      ExecOptions::Full());
  EXPECT_TRUE(r.empty());
}

TEST_P(ExecutorTest, ProjectionAndDistinct) {
  BindingSet all = Run(
      "SELECT ?x WHERE { ?x dbo:wikiPageWikiLink "
      "dbr:President_of_the_United_States . "
      "{ ?x foaf:name ?n } UNION { ?x rdfs:label ?n } }",
      ExecOptions::Full());
  EXPECT_EQ(all.size(), 8u);
  EXPECT_EQ(all.width(), 1u);
  BindingSet distinct = Run(
      "SELECT DISTINCT ?x WHERE { ?x dbo:wikiPageWikiLink "
      "dbr:President_of_the_United_States . "
      "{ ?x foaf:name ?n } UNION { ?x rdfs:label ?n } }",
      ExecOptions::Full());
  EXPECT_EQ(distinct.size(), 8u);
}

TEST_P(ExecutorTest, MetricsArePopulated) {
  ExecMetrics m;
  Run("SELECT * WHERE { ?x dbo:wikiPageWikiLink "
      "dbr:President_of_the_United_States . "
      "OPTIONAL { ?x owl:sameAs ?s } }",
      ExecOptions::Full(), &m);
  EXPECT_GT(m.join_space, 0.0);
  EXPECT_EQ(m.result_rows, 8u);
  EXPECT_GE(m.exec_ms, 0.0);
}

TEST_P(ExecutorTest, JoinSpaceShrinksWithOptimizations) {
  const std::string q =
      "SELECT * WHERE { ?x dbo:wikiPageWikiLink "
      "dbr:President_of_the_United_States . "
      "OPTIONAL { ?x owl:sameAs ?s } }";
  ExecMetrics base, full;
  Run(q, ExecOptions::Base(), &base);
  Run(q, ExecOptions::Full(), &full);
  EXPECT_LE(full.join_space, base.join_space);
  // The OPTIONAL side scans ~166 sameAs triples for base but only the
  // presidents' for full: join space must shrink strictly.
  EXPECT_LT(full.join_space, base.join_space);
}

TEST_P(ExecutorTest, CandidatePruningPrunesWork) {
  const std::string q =
      "SELECT * WHERE { ?x dbo:wikiPageWikiLink "
      "dbr:President_of_the_United_States . "
      "OPTIONAL { ?x owl:sameAs ?s } }";
  ExecMetrics base, cp;
  Run(q, ExecOptions::Base(), &base);
  // The store is tiny, so the paper's 1% fixed threshold would reject the
  // 8-row candidate bag; widen it to match the benchmark-scale ratio.
  ExecOptions cp_opts = ExecOptions::CP();
  cp_opts.fixed_threshold_fraction = 0.05;
  Run(q, cp_opts, &cp);
  EXPECT_LT(cp.bgp.rows_materialized, base.bgp.rows_materialized);
  EXPECT_GT(cp.bgp.candidates_pruned, 0u);
}

TEST_P(ExecutorTest, FixedThresholdDisablesPruningWhenTooLarge) {
  // With a threshold of 0 the candidate bag can never be "small enough".
  ExecOptions opts = ExecOptions::CP();
  opts.fixed_threshold_fraction = 0.0;
  ExecMetrics m;
  Run("SELECT * WHERE { ?x dbo:wikiPageWikiLink "
      "dbr:President_of_the_United_States . "
      "OPTIONAL { ?x owl:sameAs ?s } }",
      opts, &m);
  EXPECT_EQ(m.bgp.candidates_pruned, 0u);
}

TEST_P(ExecutorTest, PlanExposesTransformedTree) {
  auto q = db_.Parse(Prefixes() +
                     "SELECT * WHERE { ?x dbo:wikiPageWikiLink "
                     "dbr:President_of_the_United_States . "
                     "{ ?x foaf:name ?n } UNION { ?x rdfs:label ?n } }");
  ASSERT_TRUE(q.ok());
  ExecMetrics m;
  BeTree plan = db_.executor().Plan(*q, ExecOptions::TT(), &m);
  ASSERT_TRUE(plan.Validate().ok());
  // The merge fires: the selective anchor is distributed into the UNION.
  EXPECT_EQ(m.transform.merges, 1u);
  ASSERT_EQ(plan.root->children.size(), 1u);
  EXPECT_TRUE(plan.root->children[0]->is_union());
}

TEST_P(ExecutorTest, FilterInsideQuery) {
  BindingSet r = Run(
      "SELECT * WHERE { ?x dbo:wikiPageWikiLink "
      "dbr:President_of_the_United_States . ?x foaf:name ?n . "
      "FILTER(?n = \"N0\") }",
      ExecOptions::Full());
  EXPECT_EQ(r.size(), 1u);
}

TEST_P(ExecutorTest, QueryOnUnfinalizedDatabaseFails) {
  Database fresh;
  auto r = fresh.Query("SELECT * WHERE { ?x ?p ?o . }");
  EXPECT_FALSE(r.ok());
}

TEST_P(ExecutorTest, ParseErrorPropagates) {
  auto r = db_.Query("SELECT * WHERE { ?x ?p }");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

}  // namespace
}  // namespace sparqluo
