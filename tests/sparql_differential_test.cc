// Differential oracle harness: random queries and updates for each of the
// four SPARQL 1.1 feature families (aggregates, property paths, CONSTRUCT,
// pattern updates) are run through BOTH BGP engines, at parallelism 1 and
// 8, and checked against the naive reference evaluator
// (tests/reference_eval.h). Three properties per case:
//
//   1. engine(seq) == engine(parallel), bit-identical (schema, ids, order)
//   2. wco engine == hashjoin engine as sorted canonical row bags
//   3. engine == reference evaluator as sorted canonical row bags
//
// Every case is seeded and replayable: the seed derives from
// SPARQLUO_DIFF_SEED (default below) and each failure message carries the
// iteration's seed and generated text, so a divergence reproduces with
//   SPARQLUO_DIFF_SEED=<seed> ./sparql_differential_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "engine/database.h"
#include "reference_eval.h"
#include "store/update.h"
#include "util/executor_pool.h"

namespace sparqluo {
namespace testing {
namespace {

constexpr uint64_t kDefaultSeed = 0x5eed5eedULL;
constexpr int kItersPerFeature = 1000;

uint64_t BaseSeed() {
  const char* env = std::getenv("SPARQLUO_DIFF_SEED");
  if (env != nullptr && *env != '\0')
    return std::strtoull(env, nullptr, 0);
  return kDefaultSeed;
}

std::string Ex(const std::string& local) { return "http://ex.org/" + local; }
std::string Iri(const std::string& local) { return "<" + Ex(local) + ">"; }

/// Deterministic random dataset. Distinct numeric values use one datatype
/// and canonical lexicals, and string literals are purely alphabetic, so
/// CompareTermsForOrdering never ties on distinct terms (MIN/MAX champion
/// selection would otherwise depend on engine row order).
struct RandomData {
  std::vector<std::string> nt_lines;
  size_t entities;

  explicit RandomData(std::mt19937_64& rng, size_t n_entities = 36)
      : entities(n_entities) {
    auto pick = [&](size_t n) { return rng() % n; };
    auto ent = [&](size_t i) { return Iri("e" + std::to_string(i)); };
    for (size_t i = 0; i < entities; ++i) {
      // type: ~80% of entities, 4 classes
      if (pick(10) < 8) {
        nt_lines.push_back(ent(i) + " " + Iri("type") + " " +
                           Iri("Class" + std::to_string(pick(4))) + " .");
      }
      // age: ~70%, integer-typed, values 0..24
      if (pick(10) < 7) {
        nt_lines.push_back(
            ent(i) + " " + Iri("age") + " \"" + std::to_string(pick(25)) +
            "\"^^<http://www.w3.org/2001/XMLSchema#integer> .");
      }
      // name: ~60%, alphabetic plain literal unique per entity
      if (pick(10) < 6) {
        std::string name = "n";
        for (size_t c = 0, v = i; c < 3; ++c, v /= 26)
          name.push_back(static_cast<char>('a' + v % 26));
        nt_lines.push_back(ent(i) + " " + Iri("name") + " \"" + name +
                           "\" .");
      }
    }
    // knows: ~2.5 edges per entity (cycles and self-loops possible)
    for (size_t k = 0; k < entities * 5 / 2; ++k)
      nt_lines.push_back(ent(pick(entities)) + " " + Iri("knows") + " " +
                         ent(pick(entities)) + " .");
    // likes: ~1 edge per entity
    for (size_t k = 0; k < entities; ++k)
      nt_lines.push_back(ent(pick(entities)) + " " + Iri("likes") + " " +
                         ent(pick(entities)) + " .");
  }

  std::string AsNTriples() const {
    std::string out;
    for (const std::string& l : nt_lines) out += l + "\n";
    return out;
  }
};

/// One engine under test: a finalized database plus a worker pool for the
/// parallel run.
struct EngineFixture {
  Database db;
  std::unique_ptr<ExecutorPool> pool;

  EngineFixture(const RandomData& data, EngineKind kind) {
    Status st = db.LoadNTriplesString(data.AsNTriples());
    EXPECT_TRUE(st.ok()) << st.ToString();
    pool = std::make_unique<ExecutorPool>(7);
    db.Finalize(kind, pool.get());
  }

  /// Runs `q` sequentially and at parallelism 8 (tiny morsels so the small
  /// dataset still fans out), asserts bit-identity, returns the rows.
  BindingSet Run(const Query& q, const std::string& label) {
    ExecOptions seq = ExecOptions::Full();
    auto r1 = db.executor().Execute(q, seq);
    EXPECT_TRUE(r1.ok()) << label << ": " << r1.status().ToString();
    ExecOptions par = ExecOptions::Full();
    par.parallel.pool = pool.get();
    par.parallel.parallelism = 8;
    par.parallel.morsel_size = 16;
    auto r2 = db.executor().Execute(q, par);
    EXPECT_TRUE(r2.ok()) << label << ": " << r2.status().ToString();
    if (r1.ok() && r2.ok()) {
      bool same = r1->schema() == r2->schema() && r1->size() == r2->size();
      for (size_t r = 0; same && r < r1->size(); ++r)
        for (size_t c = 0; c < r1->width(); ++c)
          if (r1->At(r, c) != r2->At(r, c)) same = false;
      EXPECT_TRUE(same) << label << ": parallel output diverged from "
                        << "sequential (rows " << r1->size() << " vs "
                        << r2->size() << ")";
    }
    return r1.ok() ? std::move(*r1) : BindingSet();
  }
};

/// Runs one generated query through both engines and the reference
/// evaluator, comparing sorted canonical rows.
void CheckQuery(EngineFixture& wco, EngineFixture& hash,
                const std::string& text, const std::string& label) {
  SCOPED_TRACE(label + "\n" + text);
  auto parsed = wco.db.Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  BindingSet wco_rows = wco.Run(*parsed, label + "/wco");
  BindingSet hash_rows = hash.Run(*parsed, label + "/hashjoin");

  std::vector<Triple> triples;
  for (const Triple& t : wco.db.store().triples()) triples.push_back(t);
  RefOutput ref = ReferenceEvaluate(*parsed, triples, &wco.db.dict());

  if (parsed->form == QueryForm::kAsk) {
    EXPECT_EQ(ref.ask_value, !wco_rows.empty()) << "wco ASK diverged";
    EXPECT_EQ(ref.ask_value, !hash_rows.empty()) << "hashjoin ASK diverged";
    return;
  }
  auto expect = SortedCanonical(std::move(ref.rows));
  auto got_wco =
      SortedCanonical(CanonicalizeEngineRows(wco_rows, *parsed, wco.db.dict()));
  auto got_hash = SortedCanonical(
      CanonicalizeEngineRows(hash_rows, *parsed, hash.db.dict()));
  EXPECT_EQ(expect, got_wco) << "wco diverged from reference";
  EXPECT_EQ(expect, got_hash) << "hashjoin diverged from reference";
}

// ---------------------------------------------------------------------
// Per-feature random query generators.
// ---------------------------------------------------------------------

std::string GenAggregateQuery(std::mt19937_64& rng) {
  auto pick = [&](size_t n) { return rng() % n; };
  static const char* kFuncs[] = {"COUNT", "SUM", "MIN", "MAX", "AVG"};
  // WHERE: type + (maybe optional) age/name bindings.
  std::string where = "?s " + Iri("type") + " ?t . ";
  size_t shape = pick(4);
  if (shape == 0) {
    where += "?s " + Iri("age") + " ?v";
  } else if (shape == 1) {
    where += "OPTIONAL { ?s " + Iri("age") + " ?v }";
  } else if (shape == 2) {
    where += "?s " + Iri("name") + " ?v";
  } else {
    where += "OPTIONAL { ?s " + Iri("name") + " ?v }";
  }
  bool grouped = pick(3) != 0;
  size_t n_aggs = 1 + pick(2);
  std::string select = grouped ? "?t " : "";
  for (size_t i = 0; i < n_aggs; ++i) {
    std::string out = "?a" + std::to_string(i);
    size_t f = pick(6);
    if (f == 5) {
      select += "(COUNT(*) AS " + out + ") ";
    } else {
      std::string arg = pick(4) == 0 ? "DISTINCT ?v" : "?v";
      if (f == 0 && pick(3) == 0) arg = pick(2) == 0 ? "?s" : "DISTINCT ?s";
      select += "(" + std::string(kFuncs[f]) + "(" + arg + ") AS " + out + ") ";
    }
  }
  std::string q = "SELECT " + select + "WHERE { " + where + " }";
  if (grouped) q += " GROUP BY ?t";
  return q;
}

std::string GenPathExpr(std::mt19937_64& rng, int depth) {
  auto pick = [&](size_t n) { return rng() % n; };
  const std::string links[] = {Iri("knows"), Iri("likes")};
  if (depth <= 0) return links[pick(2)];
  switch (pick(4)) {
    case 0: return links[pick(2)];
    case 1:  // sequence
      return GenPathExpr(rng, depth - 1) + "/" + GenPathExpr(rng, depth - 1);
    case 2:  // alternative (parenthesized so closures apply cleanly)
      return "(" + GenPathExpr(rng, depth - 1) + "|" +
             GenPathExpr(rng, depth - 1) + ")";
    default:  // nested closure
      return "(" + GenPathExpr(rng, depth - 1) + ")" +
             (pick(2) == 0 ? "*" : "+");
  }
}

std::string GenPathQuery(std::mt19937_64& rng, size_t entities) {
  auto pick = [&](size_t n) { return rng() % n; };
  std::string path = "(" + GenPathExpr(rng, pick(3) == 0 ? 1 : 0) + ")" +
                     (pick(2) == 0 ? "*" : "+");
  // Endpoints: absent entities (e900..) exercise the interning edge cases.
  auto endpoint = [&]() {
    size_t r = pick(10);
    if (r < 8) return Iri("e" + std::to_string(pick(entities)));
    return Iri("e9" + std::to_string(pick(10)));
  };
  size_t shape = pick(10);
  if (shape < 2) {  // both constant
    return "ASK { " + endpoint() + " " + path + " " + endpoint() + " }";
  }
  if (shape < 5) {  // constant subject
    return "SELECT ?x WHERE { " + endpoint() + " " + path + " ?x }";
  }
  if (shape < 8) {  // constant object
    return "SELECT ?x WHERE { ?x " + path + " " + endpoint() + " }";
  }
  if (shape == 8) {  // same variable both ends (cycle membership)
    return "SELECT ?x WHERE { ?x " + path + " ?x }";
  }
  // both variables, joined with a type pattern
  return "SELECT ?x ?y ?t WHERE { ?x " + path + " ?y . ?y " + Iri("type") +
         " ?t }";
}

std::string GenConstructQuery(std::mt19937_64& rng) {
  auto pick = [&](size_t n) { return rng() % n; };
  std::string where = "?s " + Iri("type") + " ?t . ";
  bool with_opt = pick(2) == 0;
  if (with_opt) {
    where += "OPTIONAL { ?s " + Iri("age") + " ?v }";
  } else {
    where += "?s " + Iri("knows") + " ?o";
  }
  std::string tmpl;
  size_t n_templates = 1 + pick(2);
  for (size_t i = 0; i < n_templates; ++i) {
    if (i > 0) tmpl += " . ";
    switch (pick(4)) {
      case 0:
        tmpl += "?s " + Iri("sameClassAs") + " ?t";
        break;
      case 1:  // ?v may be unbound (OPTIONAL) or absent -> dropped
        tmpl += "?s " + Iri("copiedAge") + " ?v";
        break;
      case 2:  // ill-formed when ?v is a literal: subject must not be one
        tmpl += "?v " + Iri("of") + " ?s";
        break;
      default:
        tmpl += "?s " + Iri("tagged") + " \"x\"";
        break;
    }
  }
  return "CONSTRUCT { " + tmpl + " } WHERE { " + where + " }";
}

std::string GenPatternUpdate(std::mt19937_64& rng, size_t entities) {
  auto pick = [&](size_t n) { return rng() % n; };
  auto ent = [&]() { return Iri("e" + std::to_string(pick(entities))); };
  std::string where;
  switch (pick(4)) {
    case 0: where = "?s " + Iri("knows") + " ?o"; break;
    case 1: where = "?s " + Iri("knows") + " " + ent(); break;
    case 2: where = "?s " + Iri("type") + " ?t . ?s " + Iri("likes") + " ?o";
            break;
    default:  // frequently matches nothing
      where = "?s " + Iri("missing" + std::to_string(pick(5))) + " ?o";
      break;
  }
  std::string del, ins;
  size_t shape = pick(3);
  if (shape != 1)
    del = "?s " + (pick(2) == 0 ? Iri("knows") + " ?o"
                                : Iri("mark") + " \"m\"");
  if (shape != 0)
    ins = "?s " + Iri(pick(2) == 0 ? "mark" : "knows2") + " " +
          (pick(2) == 0 ? "?o" : "\"m\"");
  std::string text;
  if (!del.empty()) text += "DELETE { " + del + " } ";
  if (!ins.empty()) text += "INSERT { " + ins + " } ";
  text += "WHERE { " + where + " }";
  return text;
}

// ---------------------------------------------------------------------
// The four differential suites.
// ---------------------------------------------------------------------

class DifferentialTest : public ::testing::Test {
 protected:
  void RunQueryFeature(const std::string& feature,
                       std::string (*gen)(std::mt19937_64&)) {
    std::mt19937_64 rng(BaseSeed());
    RandomData data(rng);
    EngineFixture wco(data, EngineKind::kWco);
    EngineFixture hash(data, EngineKind::kHashJoin);
    for (int i = 0; i < kItersPerFeature; ++i) {
      std::string label = feature + " iter " + std::to_string(i) + " (seed " +
                          std::to_string(BaseSeed()) + ")";
      CheckQuery(wco, hash, gen(rng), label);
      if (HasFatalFailure()) return;
    }
  }
};

TEST_F(DifferentialTest, Aggregates) {
  RunQueryFeature("aggregates", GenAggregateQuery);
}

TEST_F(DifferentialTest, PropertyPaths) {
  std::mt19937_64 rng(BaseSeed() ^ 0x9a7f5);
  RandomData data(rng);
  EngineFixture wco(data, EngineKind::kWco);
  EngineFixture hash(data, EngineKind::kHashJoin);
  for (int i = 0; i < kItersPerFeature; ++i) {
    std::string label = "paths iter " + std::to_string(i) + " (seed " +
                        std::to_string(BaseSeed()) + ")";
    CheckQuery(wco, hash, GenPathQuery(rng, data.entities), label);
    if (HasFatalFailure()) return;
  }
}

TEST_F(DifferentialTest, Construct) {
  RunQueryFeature("construct", GenConstructQuery);
}

TEST_F(DifferentialTest, PatternUpdates) {
  std::mt19937_64 rng(BaseSeed() ^ 0x0dd5);
  RandomData data(rng);
  EngineFixture wco(data, EngineKind::kWco);
  EngineFixture hash(data, EngineKind::kHashJoin);

  // Reference state evolves alongside both engines; after every commit all
  // three must hold the same statement set.
  std::vector<Triple> initial;
  for (const Triple& t : wco.db.store().triples()) initial.push_back(t);
  std::set<std::string> ref_state = StatementSet(initial, wco.db.dict());

  for (int i = 0; i < kItersPerFeature; ++i) {
    std::string text = GenPatternUpdate(rng, data.entities);
    SCOPED_TRACE("updates iter " + std::to_string(i) + " (seed " +
                 std::to_string(BaseSeed()) + ")\n" + text);
    auto commands = ParseUpdateScript(text);
    ASSERT_TRUE(commands.ok()) << commands.status().ToString();

    // Reference applies to its own evolving state (initial = current).
    std::vector<Triple> current;
    for (const Triple& t : wco.db.store().triples()) current.push_back(t);
    ref_state = ReferenceUpdate(*commands, current, &wco.db.dict());

    auto c1 = wco.db.Update(text);
    ASSERT_TRUE(c1.ok()) << c1.status().ToString();
    auto c2 = hash.db.Update(text);
    ASSERT_TRUE(c2.ok()) << c2.status().ToString();

    std::set<std::string> wco_state =
        StatementSet(wco.db.store().triples(), wco.db.dict());
    std::set<std::string> hash_state =
        StatementSet(hash.db.store().triples(), hash.db.dict());
    ASSERT_EQ(ref_state, wco_state) << "wco commit diverged from reference";
    ASSERT_EQ(ref_state, hash_state)
        << "hashjoin commit diverged from reference";
  }
}

}  // namespace
}  // namespace testing
}  // namespace sparqluo
