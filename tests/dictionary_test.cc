// Dictionary append-safety tests: duplicate interning across base/delta,
// id stability across commits and chunk growth, lookups of terms that
// were inserted and later deleted, and concurrent encode/lookup/decode
// (exercised under TSan in the CI sanitizer job).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "rdf/dictionary.h"
#include "store/update.h"

namespace sparqluo {
namespace {

Term IriN(size_t i) { return Term::Iri("http://ex.org/t" + std::to_string(i)); }

TEST(DictionaryTest, EncodeAssignsDenseStableIds) {
  Dictionary dict;
  EXPECT_EQ(dict.Encode(Term::Iri("http://a")), 0u);
  EXPECT_EQ(dict.Encode(Term::Literal("lit")), 1u);
  EXPECT_EQ(dict.Encode(Term::Iri("http://a")), 0u);  // duplicate
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.literal_count(), 1u);
  EXPECT_EQ(dict.Lookup(Term::Iri("http://a")), 0u);
  EXPECT_EQ(dict.Lookup(Term::Iri("http://absent")), kInvalidTermId);
}

// A term and a literal with the same lexical form are distinct entries,
// as are literals differing only in language tag or datatype.
TEST(DictionaryTest, CanonicalKeysSeparateKinds) {
  Dictionary dict;
  TermId iri = dict.Encode(Term::Iri("x"));
  TermId lit = dict.Encode(Term::Literal("x"));
  TermId lang = dict.Encode(Term::LangLiteral("x", "en"));
  TermId typed = dict.Encode(Term::TypedLiteral("x", "http://dt"));
  TermId blank = dict.Encode(Term::Blank("x"));
  EXPECT_EQ(dict.size(), 5u);
  EXPECT_NE(iri, lit);
  EXPECT_NE(lit, lang);
  EXPECT_NE(lang, typed);
  EXPECT_NE(typed, blank);
  EXPECT_EQ(dict.Decode(lang).qualifier, "en");
}

// Decode references stay valid across chunk growth: the chunked storage
// never moves a published term (unlike the previous vector-backed
// implementation, where growth invalidated every outstanding reference).
TEST(DictionaryTest, ReferencesSurviveChunkGrowth) {
  Dictionary dict;
  TermId first = dict.Encode(IriN(0));
  const Term* first_ptr = &dict.Decode(first);
  // Push well past the first chunk (4096 terms) and across the second.
  constexpr size_t kTerms = 20000;
  for (size_t i = 1; i < kTerms; ++i) dict.Encode(IriN(i));
  EXPECT_EQ(dict.size(), kTerms);
  EXPECT_EQ(first_ptr, &dict.Decode(first));
  EXPECT_EQ(first_ptr->lexical, "http://ex.org/t0");
  // Every id decodes to its own term, across all chunks.
  for (size_t i = 0; i < kTerms; i += 997)
    EXPECT_EQ(dict.Decode(static_cast<TermId>(i)).lexical,
              "http://ex.org/t" + std::to_string(i));
}

// Duplicate interning across base and delta: terms already interned at
// load time resolve to the same ids when they reappear in update batches,
// so no dictionary growth happens for known vocabulary.
TEST(DictionaryTest, DuplicateInterningAcrossBaseAndDelta) {
  Database db;
  Term s = Term::Iri("http://ex.org/s");
  Term p = Term::Iri("http://ex.org/p");
  Term o1 = Term::Iri("http://ex.org/o1");
  Term o2 = Term::Iri("http://ex.org/o2");
  db.AddTriple(s, p, o1);
  db.Finalize();

  size_t base_terms = db.dict().size();
  TermId s_id = db.dict().Lookup(s);
  ASSERT_NE(s_id, kInvalidTermId);

  UpdateBatch batch;
  batch.Insert(s, p, o1);  // entirely known vocabulary (and a dup triple)
  batch.Insert(s, p, o2);  // one new term
  ASSERT_TRUE(db.Apply(batch).ok());

  EXPECT_EQ(db.dict().size(), base_terms + 1);
  EXPECT_EQ(db.dict().Lookup(s), s_id);  // id stability after commit
  EXPECT_EQ(db.dict().Lookup(o2), static_cast<TermId>(base_terms));
}

// Terms inserted by an update and then deleted stay interned and
// lookup-able: ids are never reused, pinned versions keep decoding, and
// re-inserting the triple maps to the same ids.
TEST(DictionaryTest, LookupOfInsertedThenDeletedTerms) {
  Database db;
  db.AddTriple(Term::Iri("http://ex.org/s"), Term::Iri("http://ex.org/p"),
               Term::Iri("http://ex.org/o"));
  db.Finalize();

  Term ghost = Term::Iri("http://ex.org/ghost");
  UpdateBatch ins;
  ins.Insert(ghost, Term::Iri("http://ex.org/p"), Term::Literal("v"));
  ASSERT_TRUE(db.Apply(ins).ok());
  TermId ghost_id = db.dict().Lookup(ghost);
  ASSERT_NE(ghost_id, kInvalidTermId);

  UpdateBatch del;
  del.Delete(ghost, Term::Iri("http://ex.org/p"), Term::Literal("v"));
  ASSERT_TRUE(db.Apply(del).ok());

  EXPECT_EQ(db.dict().Lookup(ghost), ghost_id);
  EXPECT_EQ(db.dict().Decode(ghost_id).lexical, "http://ex.org/ghost");
  EXPECT_EQ(db.store().triples().size(), 1u);

  UpdateBatch re;
  re.Insert(ghost, Term::Iri("http://ex.org/p"), Term::Literal("v"));
  ASSERT_TRUE(db.Apply(re).ok());
  EXPECT_EQ(db.dict().Lookup(ghost), ghost_id);
}

// Append-safety: one writer encodes fresh terms while readers decode and
// look up everything published so far. Run under TSan in CI; asserts here
// catch logical races (torn sizes, unpublished terms).
TEST(DictionaryTest, ConcurrentEncodeLookupDecode) {
  Dictionary dict;
  constexpr size_t kSeed = 512;
  constexpr size_t kTotal = 12000;  // crosses the first chunk boundary
  for (size_t i = 0; i < kSeed; ++i) dict.Encode(IriN(i));

  std::atomic<bool> done{false};
  std::atomic<size_t> errors{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        size_t published = dict.size();
        if (published == 0) continue;
        // Every published id must decode to a fully-formed term.
        for (size_t i = 0; i < published; i += 611) {
          const Term& term = dict.Decode(static_cast<TermId>(i));
          if (term.lexical != "http://ex.org/t" + std::to_string(i)) ++errors;
        }
        if (dict.Lookup(IriN(published - 1)) == kInvalidTermId) ++errors;
      }
    });
  }
  for (size_t i = kSeed; i < kTotal; ++i) {
    TermId id = dict.Encode(IriN(i));
    if (id != i) ++errors;
  }
  done = true;
  for (auto& t : readers) t.join();
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(dict.size(), kTotal);
}

}  // namespace
}  // namespace sparqluo
