#include <gtest/gtest.h>

#include "algebra/binding_set.h"
#include "algebra/operators.h"

namespace sparqluo {
namespace {

BindingSet Make(std::vector<VarId> schema,
                std::vector<std::vector<TermId>> rows) {
  BindingSet b(std::move(schema));
  for (const auto& r : rows) b.AppendRow(r);
  return b;
}

constexpr TermId U = kUnboundTerm;

// ---------------------------------------------------------- BindingSet ---

TEST(BindingSetTest, UnitHasOneEmptyMapping) {
  BindingSet u = BindingSet::Unit();
  EXPECT_EQ(u.size(), 1u);
  EXPECT_EQ(u.width(), 0u);
  EXPECT_FALSE(u.empty());
}

TEST(BindingSetTest, AppendAndAccess) {
  BindingSet b = Make({0, 1}, {{10, 20}, {11, 21}});
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.At(1, 0), 11u);
  EXPECT_EQ(b.Value(0, 1), 20u);
  EXPECT_EQ(b.Value(0, 99), U);  // unknown variable
}

TEST(BindingSetTest, ProjectKeepsDuplicates) {
  BindingSet b = Make({0, 1}, {{10, 20}, {10, 21}});
  BindingSet p = b.Project({0});
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(p.At(0, 0), 10u);
  EXPECT_EQ(p.At(1, 0), 10u);
}

TEST(BindingSetTest, ProjectMissingVarIsUnbound) {
  BindingSet b = Make({0}, {{10}});
  BindingSet p = b.Project({0, 7});
  EXPECT_EQ(p.At(0, 1), U);
}

TEST(BindingSetTest, Distinct) {
  BindingSet b = Make({0}, {{1}, {1}, {2}});
  EXPECT_EQ(b.Distinct().size(), 2u);
}

TEST(BindingSetTest, BagEqualsIgnoresColumnOrderAndRowOrder) {
  BindingSet a = Make({0, 1}, {{1, 2}, {3, 4}});
  BindingSet b = Make({1, 0}, {{4, 3}, {2, 1}});
  EXPECT_TRUE(BagEquals(a, b));
}

TEST(BindingSetTest, BagEqualsDetectsMultiplicity) {
  BindingSet a = Make({0}, {{1}, {1}});
  BindingSet b = Make({0}, {{1}});
  EXPECT_FALSE(BagEquals(a, b));
}

TEST(BindingSetTest, BagEqualsAcrossSchemas) {
  // A column that is entirely unbound equals an absent column.
  BindingSet a = Make({0, 1}, {{1, U}});
  BindingSet b = Make({0}, {{1}});
  EXPECT_TRUE(BagEquals(a, b));
  BindingSet c = Make({0, 1}, {{1, 5}});
  EXPECT_FALSE(BagEquals(c, b));
}

// ---------------------------------------------------------------- Join ---

TEST(JoinTest, BasicEquiJoin) {
  BindingSet a = Make({0}, {{1}, {2}});
  BindingSet b = Make({0, 1}, {{1, 10}, {1, 11}, {3, 12}});
  BindingSet j = Join(a, b);
  EXPECT_TRUE(BagEquals(j, Make({0, 1}, {{1, 10}, {1, 11}})));
}

TEST(JoinTest, CrossProductWhenDisjoint) {
  BindingSet a = Make({0}, {{1}, {2}});
  BindingSet b = Make({1}, {{10}});
  BindingSet j = Join(a, b);
  EXPECT_TRUE(BagEquals(j, Make({0, 1}, {{1, 10}, {2, 10}})));
}

TEST(JoinTest, PreservesDuplicates) {
  BindingSet a = Make({0}, {{1}, {1}});
  BindingSet b = Make({0}, {{1}, {1}});
  EXPECT_EQ(Join(a, b).size(), 4u);
}

TEST(JoinTest, UnitIsIdentity) {
  BindingSet a = Make({0, 1}, {{1, 2}, {3, 4}});
  EXPECT_TRUE(BagEquals(Join(BindingSet::Unit(), a), a));
  EXPECT_TRUE(BagEquals(Join(a, BindingSet::Unit()), a));
}

TEST(JoinTest, EmptyAnnihilates) {
  BindingSet a = Make({0}, {{1}});
  BindingSet empty(std::vector<VarId>{0});
  EXPECT_TRUE(Join(a, empty).empty());
  EXPECT_TRUE(Join(empty, a).empty());
}

TEST(JoinTest, UnboundIsCompatibleWithAnything) {
  // µ1 with unbound v0 is compatible with any v0 value in µ2; the join
  // takes µ2's binding.
  BindingSet a = Make({0, 1}, {{U, 7}});
  BindingSet b = Make({0}, {{1}, {2}});
  BindingSet j = Join(a, b);
  EXPECT_TRUE(BagEquals(j, Make({0, 1}, {{1, 7}, {2, 7}})));
}

TEST(JoinTest, MixedBoundAndUnboundRows) {
  BindingSet a = Make({0}, {{1}, {U}});
  BindingSet b = Make({0}, {{1}, {2}});
  // Row {1} joins {1}; row {U} joins both.
  BindingSet j = Join(a, b);
  EXPECT_TRUE(BagEquals(j, Make({0}, {{1}, {1}, {2}})));
}

// ------------------------------------------------------------ UnionBag ---

TEST(UnionBagTest, PadsMissingColumns) {
  BindingSet a = Make({0}, {{1}});
  BindingSet b = Make({1}, {{2}});
  BindingSet u = UnionBag(a, b);
  EXPECT_TRUE(BagEquals(u, Make({0, 1}, {{1, U}, {U, 2}})));
}

TEST(UnionBagTest, KeepsDuplicatesAcrossSides) {
  BindingSet a = Make({0}, {{1}});
  BindingSet b = Make({0}, {{1}});
  EXPECT_EQ(UnionBag(a, b).size(), 2u);
}

// --------------------------------------------------------------- Minus ---

TEST(MinusTest, RemovesCompatible) {
  BindingSet a = Make({0}, {{1}, {2}});
  BindingSet b = Make({0}, {{1}});
  EXPECT_TRUE(BagEquals(Minus(a, b), Make({0}, {{2}})));
}

TEST(MinusTest, DisjointDomainsRemoveEverything) {
  // With no shared variables every µ2 is compatible with every µ1.
  BindingSet a = Make({0}, {{1}});
  BindingSet b = Make({1}, {{9}});
  EXPECT_TRUE(Minus(a, b).empty());
}

TEST(MinusTest, EmptyRightKeepsAll) {
  BindingSet a = Make({0}, {{1}, {2}});
  BindingSet b(std::vector<VarId>{0});
  EXPECT_TRUE(BagEquals(Minus(a, b), a));
}

// ------------------------------------------------------- LeftOuterJoin ---

TEST(LeftOuterJoinTest, Definition7Identity) {
  // LeftOuterJoin == Join ∪_bag Minus for assorted inputs.
  std::vector<std::pair<BindingSet, BindingSet>> cases;
  cases.emplace_back(Make({0}, {{1}, {2}}), Make({0, 1}, {{1, 10}}));
  cases.emplace_back(Make({0}, {{1}, {1}}), Make({0, 1}, {{1, 10}, {1, 11}}));
  cases.emplace_back(Make({0}, {{1}}), Make({1}, {{5}}));
  cases.emplace_back(Make({0}, {{1}}), BindingSet(std::vector<VarId>{0, 1}));
  for (auto& [a, b] : cases) {
    BindingSet direct = LeftOuterJoin(a, b);
    BindingSet composed = UnionBag(Join(a, b), Minus(a, b));
    EXPECT_TRUE(BagEquals(direct, composed));
  }
}

TEST(LeftOuterJoinTest, UnmatchedRowsPadded) {
  BindingSet a = Make({0}, {{1}, {2}});
  BindingSet b = Make({0, 1}, {{1, 10}});
  BindingSet lj = LeftOuterJoin(a, b);
  EXPECT_TRUE(BagEquals(lj, Make({0, 1}, {{1, 10}, {2, U}})));
}

TEST(LeftOuterJoinTest, EmptyRightKeepsLeft) {
  BindingSet a = Make({0}, {{1}, {2}});
  BindingSet b(std::vector<VarId>{0, 1});
  BindingSet lj = LeftOuterJoin(a, b);
  EXPECT_TRUE(BagEquals(lj, Make({0, 1}, {{1, U}, {2, U}})));
}

TEST(LeftOuterJoinTest, EmptyLeftIsEmpty) {
  BindingSet a(std::vector<VarId>{0});
  BindingSet b = Make({0}, {{1}});
  EXPECT_TRUE(LeftOuterJoin(a, b).empty());
}

// -------------------------------------------------------------- Filter ---

class FilterTest : public ::testing::Test {
 protected:
  FilterTest() {
    n5_ = dict_.Encode(Term::Literal("5"));
    n9_ = dict_.Encode(Term::Literal("9"));
    abc_ = dict_.Encode(Term::Literal("abc"));
  }
  Dictionary dict_;
  TermId n5_, n9_, abc_;
};

TEST_F(FilterTest, EqualityOnIds) {
  BindingSet b = Make({0}, {{n5_}, {n9_}});
  FilterExpr f;
  f.op = FilterExpr::Op::kEq;
  f.lhs = PatternSlot::Var(0);
  f.rhs = PatternSlot::Const(Term::Literal("5"));
  BindingSet out = ApplyFilter(b, f, dict_);
  EXPECT_TRUE(BagEquals(out, Make({0}, {{n5_}})));
}

TEST_F(FilterTest, NumericComparison) {
  BindingSet b = Make({0}, {{n5_}, {n9_}});
  FilterExpr f;
  f.op = FilterExpr::Op::kLt;
  f.lhs = PatternSlot::Var(0);
  f.rhs = PatternSlot::Const(Term::Literal("7"));
  BindingSet out = ApplyFilter(b, f, dict_);
  EXPECT_TRUE(BagEquals(out, Make({0}, {{n5_}})));
}

TEST_F(FilterTest, BoundFilter) {
  BindingSet b = Make({0, 1}, {{n5_, n9_}, {n5_, U}});
  FilterExpr f;
  f.op = FilterExpr::Op::kBound;
  f.lhs = PatternSlot::Var(1);
  EXPECT_EQ(ApplyFilter(b, f, dict_).size(), 1u);
}

TEST_F(FilterTest, ErrorsDropRows) {
  // Comparison over an unbound variable errors -> the row is dropped.
  BindingSet b = Make({0}, {{U}});
  FilterExpr f;
  f.op = FilterExpr::Op::kLt;
  f.lhs = PatternSlot::Var(0);
  f.rhs = PatternSlot::Const(Term::Literal("7"));
  EXPECT_TRUE(ApplyFilter(b, f, dict_).empty());
}

TEST_F(FilterTest, BooleanConnectives) {
  BindingSet b = Make({0}, {{n5_}, {n9_}, {abc_}});
  FilterExpr lt7, eq_abc, f;
  lt7.op = FilterExpr::Op::kLt;
  lt7.lhs = PatternSlot::Var(0);
  lt7.rhs = PatternSlot::Const(Term::Literal("7"));
  eq_abc.op = FilterExpr::Op::kEq;
  eq_abc.lhs = PatternSlot::Var(0);
  eq_abc.rhs = PatternSlot::Const(Term::Literal("abc"));
  f.op = FilterExpr::Op::kOr;
  f.children = {lt7, eq_abc};
  // "5" passes lt7; "abc" passes eq_abc; "9" passes neither.
  EXPECT_EQ(ApplyFilter(b, f, dict_).size(), 2u);

  FilterExpr g;
  g.op = FilterExpr::Op::kNot;
  g.children = {eq_abc};
  EXPECT_EQ(ApplyFilter(b, g, dict_).size(), 2u);  // "5", "9"
}

}  // namespace
}  // namespace sparqluo
