#include <gtest/gtest.h>

#include "util/logging.h"
#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace sparqluo {
namespace {

uint64_t benchmark_sink_ = 0;

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllConstructorsSetCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(RandomTest, Deterministic) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformInRange) {
  Random r(1);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = r.Range(5, 10);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 10u);
  }
}

TEST(RandomTest, ZipfSkewsLow) {
  Random r(2);
  size_t low = 0;
  const size_t n = 1000;
  for (size_t i = 0; i < n; ++i)
    if (r.Zipf(100) < 10) ++low;
  // Zipf should put far more than 10% of the mass on the lowest decile.
  EXPECT_GT(low, n / 4);
}

TEST(RandomTest, BernoulliRoughlyCalibrated) {
  Random r(3);
  size_t hits = 0;
  for (size_t i = 0; i < 10000; ++i)
    if (r.Bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / 10000.0, 0.3, 0.05);
}

TEST(StringUtilTest, Split) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(TrimString("  x \t\n"), "x");
  EXPECT_EQ(TrimString(""), "");
  EXPECT_EQ(TrimString("   "), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("he", "hello"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
  EXPECT_FALSE(EndsWith("lo", "hello"));
}

TEST(StringUtilTest, EscapeRoundTrip) {
  std::string raw = "line1\nline2\t\"quoted\"\\slash";
  EXPECT_EQ(UnescapeLiteral(EscapeLiteral(raw)), raw);
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(TimerTest, MeasuresSomething) {
  Timer t;
  uint64_t x = 0;
  for (int i = 0; i < 100000; ++i) x += static_cast<uint64_t>(i);
  benchmark_sink_ = x;
  EXPECT_GE(t.ElapsedMicros(), 0);
}

TEST(LoggingTest, ParseLogLevel) {
  EXPECT_EQ(ParseLogLevel("debug", LogLevel::kOff), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("INFO", LogLevel::kOff), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("Warn", LogLevel::kOff), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("warning", LogLevel::kOff), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("error", LogLevel::kOff), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("off", LogLevel::kWarn), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("none", LogLevel::kWarn), LogLevel::kOff);
  // Unknown names fall back.
  EXPECT_EQ(ParseLogLevel("verbose", LogLevel::kInfo), LogLevel::kInfo);
}

TEST(LoggingTest, SetAndGetLevel) {
  LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(saved);
}

// Line format: ISO-8601 UTC timestamp, level name, thread id, message.
TEST(LoggingTest, LineFormatHasTimestampLevelAndThreadId) {
  LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  SPARQLUO_LOG(kWarn) << "format check " << 42;
  std::string line = ::testing::internal::GetCapturedStderr();
  SetLogLevel(saved);

  // 2026-08-07T12:34:56.789Z WARN [tid <id>] format check 42
  ASSERT_GE(line.size(), 25u) << line;
  EXPECT_EQ(line[4], '-');
  EXPECT_EQ(line[7], '-');
  EXPECT_EQ(line[10], 'T');
  EXPECT_EQ(line[13], ':');
  EXPECT_EQ(line[16], ':');
  EXPECT_EQ(line[19], '.');
  EXPECT_EQ(line[23], 'Z');
  EXPECT_NE(line.find(" WARN [tid "), std::string::npos) << line;
  EXPECT_NE(line.find("] format check 42\n"), std::string::npos) << line;
}

TEST(LoggingTest, BelowThresholdEmitsNothing) {
  LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  SPARQLUO_LOG(kInfo) << "suppressed";
  std::string out = ::testing::internal::GetCapturedStderr();
  SetLogLevel(saved);
  EXPECT_TRUE(out.empty()) << out;
}

}  // namespace
}  // namespace sparqluo
