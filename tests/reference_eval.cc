#include "reference_eval.h"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <map>
#include <set>

#include "engine/aggregate.h"  // FormatDecimal: shared formatting only

namespace sparqluo {
namespace testing {
namespace {

constexpr const char* kXsdInteger = "http://www.w3.org/2001/XMLSchema#integer";
constexpr const char* kXsdDecimal = "http://www.w3.org/2001/XMLSchema#decimal";
constexpr const char* kXsdDouble = "http://www.w3.org/2001/XMLSchema#double";
constexpr const char* kXsdFloat = "http://www.w3.org/2001/XMLSchema#float";

/// A solution mapping: bound variables only (absent = unbound).
using RefBinding = std::map<VarId, TermId>;
using RefRows = std::vector<RefBinding>;

TermId ValueOf(const RefBinding& row, VarId v) {
  auto it = row.find(v);
  return it == row.end() ? kUnboundTerm : it->second;
}

/// µ1 ~ µ2: agreement on every variable bound in both.
bool Compatible(const RefBinding& a, const RefBinding& b) {
  for (const auto& [v, id] : a) {
    auto it = b.find(v);
    if (it != b.end() && it->second != id) return false;
  }
  return true;
}

RefBinding Merge(const RefBinding& a, const RefBinding& b) {
  RefBinding out = a;
  out.insert(b.begin(), b.end());  // a's bindings win (they agree anyway)
  return out;
}

RefRows JoinSets(const RefRows& a, const RefRows& b) {
  RefRows out;
  for (const RefBinding& x : a)
    for (const RefBinding& y : b)
      if (Compatible(x, y)) out.push_back(Merge(x, y));
  return out;
}

RefRows LeftJoinSets(const RefRows& a, const RefRows& b) {
  RefRows out;
  for (const RefBinding& x : a) {
    bool matched = false;
    for (const RefBinding& y : b) {
      if (Compatible(x, y)) {
        matched = true;
        out.push_back(Merge(x, y));
      }
    }
    if (!matched) out.push_back(x);
  }
  return out;
}

/// Evaluation context: the triple list and the (shared, mutable)
/// dictionary.
struct Ctx {
  const std::vector<Triple>& triples;
  Dictionary* dict;
};

RefRows EvalTriple(const TriplePattern& t, const Ctx& ctx) {
  // Constants absent from the dictionary can never match.
  auto slot_id = [&](const PatternSlot& s, TermId* out) {
    if (s.is_var) return true;
    *out = ctx.dict->Lookup(s.term);
    return *out != kInvalidTermId;
  };
  TermId cs = kInvalidTermId, cp = kInvalidTermId, co = kInvalidTermId;
  if (!slot_id(t.s, &cs) || !slot_id(t.p, &cp) || !slot_id(t.o, &co))
    return {};
  RefRows out;
  for (const Triple& tr : ctx.triples) {
    if (!t.s.is_var && tr.s != cs) continue;
    if (!t.p.is_var && tr.p != cp) continue;
    if (!t.o.is_var && tr.o != co) continue;
    RefBinding row;
    bool ok = true;
    auto bind = [&](const PatternSlot& s, TermId val) {
      if (!s.is_var) return;
      auto [it, inserted] = row.emplace(s.var, val);
      if (!inserted && it->second != val) ok = false;  // repeated var
    };
    bind(t.s, tr.s);
    bind(t.p, tr.p);
    bind(t.o, tr.o);
    if (ok) out.push_back(std::move(row));
  }
  return out;
}

// ---------------------------------------------------------------------
// Property paths: textbook BFS over the triple list.
// ---------------------------------------------------------------------

void Closure(TermId start, const PathExpr& closure, bool forward,
             const Ctx& ctx, std::set<TermId>* out);

/// One application of `e` from `x`, emitting successors into `out`.
void Step(TermId x, const PathExpr& e, bool forward, const Ctx& ctx,
          std::set<TermId>* out) {
  switch (e.kind) {
    case PathExpr::Kind::kLink: {
      TermId pid = ctx.dict->Lookup(e.iri);
      if (pid == kInvalidTermId) return;
      for (const Triple& t : ctx.triples) {
        if (t.p != pid) continue;
        if (forward && t.s == x) out->insert(t.o);
        if (!forward && t.o == x) out->insert(t.s);
      }
      return;
    }
    case PathExpr::Kind::kSeq: {
      std::set<TermId> frontier = {x};
      size_t n = e.children.size();
      for (size_t i = 0; i < n; ++i) {
        const PathExpr& child =
            forward ? e.children[i] : e.children[n - 1 - i];
        std::set<TermId> next;
        for (TermId y : frontier) Step(y, child, forward, ctx, &next);
        frontier = std::move(next);
      }
      out->insert(frontier.begin(), frontier.end());
      return;
    }
    case PathExpr::Kind::kAlt:
      for (const PathExpr& child : e.children)
        Step(x, child, forward, ctx, out);
      return;
    case PathExpr::Kind::kStar:
    case PathExpr::Kind::kPlus:
      Closure(x, e, forward, ctx, out);
      return;
  }
}

void Closure(TermId start, const PathExpr& closure, bool forward,
             const Ctx& ctx, std::set<TermId>* out) {
  const PathExpr& inner = closure.children[0];
  std::set<TermId> frontier;
  if (closure.kind == PathExpr::Kind::kStar) {
    frontier.insert(start);
  } else {
    Step(start, inner, forward, ctx, &frontier);
  }
  std::set<TermId> seen = frontier;
  out->insert(frontier.begin(), frontier.end());
  while (!frontier.empty()) {
    std::set<TermId> next;
    for (TermId y : frontier) Step(y, inner, forward, ctx, &next);
    frontier.clear();
    for (TermId y : next) {
      if (seen.insert(y).second) {
        frontier.insert(y);
        out->insert(y);
      }
    }
  }
}

RefRows EvalPath(const PathPattern& p, const Ctx& ctx) {
  const bool is_star = p.path.kind == PathExpr::Kind::kStar;
  RefRows out;
  if (!p.subject.is_var && !p.object.is_var) {
    // Both endpoints constant: one empty mapping on reachability. A
    // zero-length `*` between equal terms matches even when the term is
    // absent from the data.
    if (is_star && p.subject.term == p.object.term) {
      out.emplace_back();
      return out;
    }
    TermId s = ctx.dict->Lookup(p.subject.term);
    TermId o = ctx.dict->Lookup(p.object.term);
    if (s == kInvalidTermId || o == kInvalidTermId) return out;
    std::set<TermId> ends;
    Closure(s, p.path, /*forward=*/true, ctx, &ends);
    if (ends.count(o) > 0) out.emplace_back();
    return out;
  }
  if (p.subject.is_var != p.object.is_var) {
    // One constant endpoint: BFS from it (forward from a constant subject,
    // backward from a constant object). `*` interns an absent endpoint so
    // the zero-length binding still surfaces; `+` needs it present.
    const bool forward = !p.subject.is_var;
    const PatternSlot& konst = forward ? p.subject : p.object;
    VarId var = forward ? p.object.var : p.subject.var;
    TermId start = is_star ? ctx.dict->Encode(konst.term)
                           : ctx.dict->Lookup(konst.term);
    if (start == kInvalidTermId) return out;
    std::set<TermId> ends;
    Closure(start, p.path, forward, ctx, &ends);
    for (TermId e : ends) out.push_back({{var, e}});
    return out;
  }
  // Both ends variables: closure from every graph node (every subject or
  // object in the data).
  std::set<TermId> nodes;
  for (const Triple& t : ctx.triples) {
    nodes.insert(t.s);
    nodes.insert(t.o);
  }
  const bool same_var = p.subject.var == p.object.var;
  for (TermId n : nodes) {
    std::set<TermId> ends;
    Closure(n, p.path, /*forward=*/true, ctx, &ends);
    for (TermId e : ends) {
      if (same_var) {
        if (e == n) out.push_back({{p.subject.var, n}});
      } else {
        out.push_back({{p.subject.var, n}, {p.object.var, e}});
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// FILTER: the engine's three-valued semantics (algebra/operators.cc) over
// map bindings. Errors (unbound operands) drop the row.
// ---------------------------------------------------------------------

enum class Ternary { kTrue, kFalse, kError };

Ternary EvalFilter(const FilterExpr& f, const RefBinding& row,
                   const Ctx& ctx) {
  using Op = FilterExpr::Op;
  auto resolve = [&](const PatternSlot& slot) {
    if (slot.is_var) return ValueOf(row, slot.var);
    return ctx.dict->Lookup(slot.term);
  };
  switch (f.op) {
    case Op::kAnd: {
      Ternary l = EvalFilter(f.children[0], row, ctx);
      Ternary r = EvalFilter(f.children[1], row, ctx);
      if (l == Ternary::kFalse || r == Ternary::kFalse) return Ternary::kFalse;
      if (l == Ternary::kError || r == Ternary::kError) return Ternary::kError;
      return Ternary::kTrue;
    }
    case Op::kOr: {
      Ternary l = EvalFilter(f.children[0], row, ctx);
      Ternary r = EvalFilter(f.children[1], row, ctx);
      if (l == Ternary::kTrue || r == Ternary::kTrue) return Ternary::kTrue;
      if (l == Ternary::kError || r == Ternary::kError) return Ternary::kError;
      return Ternary::kFalse;
    }
    case Op::kNot: {
      Ternary t = EvalFilter(f.children[0], row, ctx);
      if (t == Ternary::kError) return t;
      return t == Ternary::kTrue ? Ternary::kFalse : Ternary::kTrue;
    }
    case Op::kBound:
      if (!f.lhs.is_var) return Ternary::kError;
      return ValueOf(row, f.lhs.var) != kUnboundTerm ? Ternary::kTrue
                                                     : Ternary::kFalse;
    default: {
      TermId lv = resolve(f.lhs);
      TermId rv = resolve(f.rhs);
      bool l_unbound = f.lhs.is_var && lv == kUnboundTerm;
      bool r_unbound = f.rhs.is_var && rv == kUnboundTerm;
      if (l_unbound || r_unbound) return Ternary::kError;
      if (f.op == Op::kEq || f.op == Op::kNeq) {
        bool eq;
        if (lv != kUnboundTerm && rv != kUnboundTerm) {
          eq = lv == rv;
        } else {
          Term lt = f.lhs.is_var ? ctx.dict->Decode(lv) : f.lhs.term;
          Term rt = f.rhs.is_var ? ctx.dict->Decode(rv) : f.rhs.term;
          eq = lt == rt;
        }
        return (eq == (f.op == Op::kEq)) ? Ternary::kTrue : Ternary::kFalse;
      }
      Term lt =
          f.lhs.is_var || lv != kUnboundTerm ? ctx.dict->Decode(lv) : f.lhs.term;
      Term rt =
          f.rhs.is_var || rv != kUnboundTerm ? ctx.dict->Decode(rv) : f.rhs.term;
      int c = CompareTermsForOrdering(lt, rt);
      bool result = false;
      switch (f.op) {
        case Op::kLt: result = c < 0; break;
        case Op::kGt: result = c > 0; break;
        case Op::kLe: result = c <= 0; break;
        case Op::kGe: result = c >= 0; break;
        default: return Ternary::kError;
      }
      return result ? Ternary::kTrue : Ternary::kFalse;
    }
  }
}

/// Group elements combine left-to-right, the engine's documented rule.
RefRows EvalGroup(const GroupGraphPattern& g, const Ctx& ctx) {
  RefRows acc;
  acc.emplace_back();  // the unit bag: one empty mapping
  for (const PatternElement& e : g.elements) {
    switch (e.kind) {
      case PatternElement::Kind::kTriple:
        acc = JoinSets(acc, EvalTriple(e.triple, ctx));
        break;
      case PatternElement::Kind::kGroup:
        acc = JoinSets(acc, EvalGroup(e.groups[0], ctx));
        break;
      case PatternElement::Kind::kUnion: {
        RefRows u;
        for (const GroupGraphPattern& branch : e.groups) {
          RefRows b = EvalGroup(branch, ctx);
          u.insert(u.end(), b.begin(), b.end());
        }
        acc = JoinSets(acc, u);
        break;
      }
      case PatternElement::Kind::kOptional:
        acc = LeftJoinSets(acc, EvalGroup(e.groups[0], ctx));
        break;
      case PatternElement::Kind::kFilter: {
        RefRows kept;
        for (const RefBinding& row : acc)
          if (EvalFilter(e.filter, row, ctx) == Ternary::kTrue)
            kept.push_back(row);
        acc = std::move(kept);
        break;
      }
      case PatternElement::Kind::kPath:
        acc = JoinSets(acc, EvalPath(e.path, ctx));
        break;
    }
  }
  return acc;
}

// ---------------------------------------------------------------------
// Aggregation: one sequential pass mirroring the engine dialect
// (docs/sparql_surface.md). Exact agreement on floating sums needs
// integer-valued inputs — see the header caveat.
// ---------------------------------------------------------------------

bool NumericValue(const Term& t, bool* is_int, double* value) {
  if (!t.is_literal() || t.qualifier_is_lang) return false;
  if (t.qualifier != kXsdInteger && t.qualifier != kXsdDecimal &&
      t.qualifier != kXsdDouble && t.qualifier != kXsdFloat)
    return false;
  const char* begin = t.lexical.c_str();
  char* end = nullptr;
  double v = std::strtod(begin, &end);
  if (end == begin || *end != '\0') return false;
  *is_int = t.qualifier == kXsdInteger;
  *value = v;
  return true;
}

struct RefAccum {
  uint64_t count = 0;
  bool all_int = true;
  bool numeric_ok = true;
  bool any = false;
  long long isum = 0;
  double dsum = 0.0;
  TermId best = kUnboundTerm;
  std::set<TermId> dset;
};

void AccumulateNumeric(RefAccum* a, const Term& t) {
  bool is_int = false;
  double v = 0.0;
  if (!NumericValue(t, &is_int, &v)) {
    a->numeric_ok = false;
    return;
  }
  a->any = true;
  ++a->count;
  a->all_int = a->all_int && is_int;
  if (is_int) a->isum += std::strtoll(t.lexical.c_str(), nullptr, 10);
  a->dsum += v;
}

void Update(RefAccum* a, const AggregateSpec& s, TermId val, const Ctx& ctx) {
  if (s.func == AggFunc::kCount && s.count_star) {
    ++a->count;
    return;
  }
  if (val == kUnboundTerm) return;
  switch (s.func) {
    case AggFunc::kCount:
      if (s.distinct)
        a->dset.insert(val);
      else
        ++a->count;
      return;
    case AggFunc::kSum:
    case AggFunc::kAvg:
      if (s.distinct)
        a->dset.insert(val);
      else
        AccumulateNumeric(a, ctx.dict->Decode(val));
      return;
    case AggFunc::kMin:
    case AggFunc::kMax: {
      if (a->best == kUnboundTerm) {
        a->best = val;
        return;
      }
      int c = CompareTermsForOrdering(ctx.dict->Decode(val),
                                      ctx.dict->Decode(a->best));
      if ((s.func == AggFunc::kMin && c < 0) ||
          (s.func == AggFunc::kMax && c > 0))
        a->best = val;
      return;
    }
  }
}

TermId FinalizeAccum(const RefAccum& frozen, const AggregateSpec& s,
                     const Ctx& ctx) {
  RefAccum a = frozen;
  if (s.distinct && (s.func == AggFunc::kSum || s.func == AggFunc::kAvg)) {
    for (TermId id : a.dset) AccumulateNumeric(&a, ctx.dict->Decode(id));
  }
  switch (s.func) {
    case AggFunc::kCount: {
      uint64_t n = s.distinct ? a.dset.size() : a.count;
      return ctx.dict->Encode(
          Term::TypedLiteral(std::to_string(n), kXsdInteger));
    }
    case AggFunc::kSum:
      if (!a.numeric_ok) return kUnboundTerm;
      if (!a.any)
        return ctx.dict->Encode(Term::TypedLiteral("0", kXsdInteger));
      if (a.all_int)
        return ctx.dict->Encode(
            Term::TypedLiteral(std::to_string(a.isum), kXsdInteger));
      return ctx.dict->Encode(
          Term::TypedLiteral(FormatDecimal(a.dsum), kXsdDecimal));
    case AggFunc::kAvg:
      if (!a.numeric_ok) return kUnboundTerm;
      if (!a.any)
        return ctx.dict->Encode(Term::TypedLiteral("0", kXsdInteger));
      return ctx.dict->Encode(Term::TypedLiteral(
          FormatDecimal(a.dsum / static_cast<double>(a.count)), kXsdDecimal));
    case AggFunc::kMin:
    case AggFunc::kMax:
      return a.best;
  }
  return kUnboundTerm;
}

RefRows Aggregate(const RefRows& rows, const Query& q, const Ctx& ctx) {
  std::map<std::vector<TermId>, std::vector<RefAccum>> groups;
  for (const RefBinding& row : rows) {
    std::vector<TermId> key;
    key.reserve(q.group_by.size());
    for (VarId v : q.group_by) key.push_back(ValueOf(row, v));
    auto [it, inserted] =
        groups.try_emplace(key, q.aggregates.size(), RefAccum());
    for (size_t i = 0; i < q.aggregates.size(); ++i) {
      const AggregateSpec& s = q.aggregates[i];
      TermId val = s.count_star ? kUnboundTerm : ValueOf(row, s.input);
      Update(&it->second[i], s, val, ctx);
    }
  }
  // No GROUP BY: the whole (possibly empty) input is one group.
  if (q.group_by.empty() && groups.empty())
    groups.try_emplace({}, q.aggregates.size(), RefAccum());
  RefRows out;
  for (const auto& [key, accums] : groups) {
    RefBinding row;
    for (size_t j = 0; j < q.group_by.size(); ++j)
      if (key[j] != kUnboundTerm) row[q.group_by[j]] = key[j];
    for (size_t i = 0; i < q.aggregates.size(); ++i) {
      TermId val = FinalizeAccum(accums[i], q.aggregates[i], ctx);
      if (val != kUnboundTerm) row[q.aggregates[i].output] = val;
    }
    out.push_back(std::move(row));
  }
  return out;
}

/// Mirrors Executor::OrderRows: stable sort, unbound sorts before bound,
/// CompareTermsForOrdering between bound terms.
void OrderRef(RefRows* rows, const std::vector<OrderKey>& keys,
              const Ctx& ctx) {
  std::stable_sort(rows->begin(), rows->end(),
                   [&](const RefBinding& x, const RefBinding& y) {
                     for (const OrderKey& k : keys) {
                       TermId vx = ValueOf(x, k.var);
                       TermId vy = ValueOf(y, k.var);
                       if (vx == vy) continue;
                       int c;
                       if (vx == kUnboundTerm) {
                         c = -1;
                       } else if (vy == kUnboundTerm) {
                         c = 1;
                       } else {
                         c = CompareTermsForOrdering(ctx.dict->Decode(vx),
                                                     ctx.dict->Decode(vy));
                       }
                       if (c == 0) continue;
                       return k.ascending ? c < 0 : c > 0;
                     }
                     return false;
                   });
}

void SliceRef(RefRows* rows, size_t offset, size_t limit) {
  if (offset >= rows->size()) {
    rows->clear();
    return;
  }
  rows->erase(rows->begin(), rows->begin() + static_cast<ptrdiff_t>(offset));
  if (limit != SIZE_MAX && rows->size() > limit)
    rows->resize(limit);
}

std::string Statement(const Term& s, const Term& p, const Term& o) {
  return s.ToString() + " " + p.ToString() + " " + o.ToString() + " .";
}

/// CONSTRUCT instantiation: per row, per template, skipping unbound
/// variables and ill-formed triples (literal subject, non-IRI predicate);
/// first-occurrence deduplication.
std::vector<std::string> Instantiate(const RefRows& rows, const Query& q,
                                     const Ctx& ctx) {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const RefBinding& row : rows) {
    for (const TriplePattern& t : q.construct_template) {
      auto resolve = [&](const PatternSlot& slot, Term* term) {
        if (!slot.is_var) {
          *term = slot.term;
          return true;
        }
        TermId id = ValueOf(row, slot.var);
        if (id == kUnboundTerm) return false;
        *term = ctx.dict->Decode(id);
        return true;
      };
      Term s, p, o;
      if (!resolve(t.s, &s) || !resolve(t.p, &p) || !resolve(t.o, &o))
        continue;
      if (s.is_literal() || !p.is_iri()) continue;
      std::string stmt = Statement(s, p, o);
      if (seen.insert(stmt).second) out.push_back(std::move(stmt));
    }
  }
  return out;
}

}  // namespace

RefOutput ReferenceEvaluate(const Query& query,
                            const std::vector<Triple>& triples,
                            Dictionary* dict) {
  Ctx ctx{triples, dict};
  RefRows rows = EvalGroup(query.where, ctx);
  if (!query.group_by.empty() || !query.aggregates.empty())
    rows = Aggregate(rows, query, ctx);
  RefOutput out;
  if (query.form == QueryForm::kAsk) {
    out.ask = true;
    out.ask_value = !rows.empty();
    return out;
  }
  if (!query.order_by.empty()) OrderRef(&rows, query.order_by, ctx);
  if (query.form == QueryForm::kConstruct) {
    if (query.offset > 0 || query.limit != SIZE_MAX)
      SliceRef(&rows, query.offset, query.limit);
    for (std::string& stmt : Instantiate(rows, query, ctx))
      out.rows.push_back({std::move(stmt)});
    return out;
  }
  // Projection: explicit list, or all visible (non-'.'-hidden) variables.
  RefRows projected;
  projected.reserve(rows.size());
  for (const RefBinding& row : rows) {
    RefBinding p;
    if (!query.projection.empty()) {
      for (VarId v : query.projection) {
        TermId id = ValueOf(row, v);
        if (id != kUnboundTerm) p[v] = id;
      }
    } else {
      for (const auto& [v, id] : row)
        if (query.vars.Name(v)[0] != '.') p[v] = id;
    }
    projected.push_back(std::move(p));
  }
  if (query.distinct) {
    RefRows unique;
    std::set<RefBinding> seen;
    for (RefBinding& row : projected)
      if (seen.insert(row).second) unique.push_back(std::move(row));
    projected = std::move(unique);
  }
  SliceRef(&projected, query.offset, query.limit);
  for (const RefBinding& row : projected) {
    CanonicalRow c;
    for (const auto& [v, id] : row)
      c.push_back("?" + query.vars.Name(v) + "=" + dict->Decode(id).ToString());
    std::sort(c.begin(), c.end());
    out.rows.push_back(std::move(c));
  }
  return out;
}

std::vector<CanonicalRow> CanonicalizeEngineRows(const BindingSet& rows,
                                                 const Query& query,
                                                 const Dictionary& dict) {
  std::vector<CanonicalRow> out;
  out.reserve(rows.size());
  if (query.form == QueryForm::kConstruct) {
    for (size_t r = 0; r < rows.size(); ++r) {
      CanonicalRow c = {Statement(dict.Decode(rows.At(r, 0)),
                                  dict.Decode(rows.At(r, 1)),
                                  dict.Decode(rows.At(r, 2)))};
      out.push_back(std::move(c));
    }
    return out;
  }
  for (size_t r = 0; r < rows.size(); ++r) {
    CanonicalRow c;
    for (size_t col = 0; col < rows.width(); ++col) {
      TermId id = rows.At(r, col);
      if (id == kUnboundTerm) continue;
      const std::string& name = query.vars.Name(rows.schema()[col]);
      if (!name.empty() && name[0] == '.') continue;
      c.push_back("?" + name + "=" + dict.Decode(id).ToString());
    }
    std::sort(c.begin(), c.end());
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<CanonicalRow> SortedCanonical(std::vector<CanonicalRow> rows) {
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::set<std::string> ReferenceUpdate(
    const std::vector<UpdateCommand>& commands,
    const std::vector<Triple>& initial, Dictionary* dict) {
  // State as Term-level statements, with a parallel Term-triple list that
  // re-encodes per command so pattern WHERE clauses evaluate over term ids
  // from the shared dictionary.
  std::set<std::string> state = StatementSet(initial, *dict);
  std::vector<std::array<Term, 3>> terms;
  for (const Triple& t : initial)
    terms.push_back(
        {dict->Decode(t.s), dict->Decode(t.p), dict->Decode(t.o)});

  auto insert_triple = [&](const std::array<Term, 3>& t) {
    if (state.insert(Statement(t[0], t[1], t[2])).second) terms.push_back(t);
  };
  auto delete_triple = [&](const std::array<Term, 3>& t) {
    if (state.erase(Statement(t[0], t[1], t[2])) > 0) {
      std::string stmt = Statement(t[0], t[1], t[2]);
      terms.erase(std::remove_if(terms.begin(), terms.end(),
                                 [&](const std::array<Term, 3>& u) {
                                   return Statement(u[0], u[1], u[2]) == stmt;
                                 }),
                  terms.end());
    }
  };

  for (const UpdateCommand& cmd : commands) {
    if (!cmd.is_pattern) {
      for (const UpdateOp& op : cmd.data.ops) {
        std::array<Term, 3> t = {op.triple.s, op.triple.p, op.triple.o};
        if (op.kind == UpdateOp::Kind::kInsert)
          insert_triple(t);
        else
          delete_triple(t);
      }
      continue;
    }
    // Pattern command: evaluate WHERE over the current state, expand all
    // delete templates before all insert templates.
    std::vector<Triple> current;
    current.reserve(terms.size());
    for (const std::array<Term, 3>& t : terms)
      current.push_back(Triple(dict->Encode(t[0]), dict->Encode(t[1]),
                               dict->Encode(t[2])));
    Ctx ctx{current, dict};
    RefRows rows = EvalGroup(cmd.pattern.where, ctx);
    auto expand = [&](const std::vector<TriplePattern>& templates,
                      std::vector<std::array<Term, 3>>* out) {
      for (const RefBinding& row : rows) {
        for (const TriplePattern& tp : templates) {
          auto resolve = [&](const PatternSlot& slot, Term* term) {
            if (!slot.is_var) {
              *term = slot.term;
              return true;
            }
            TermId id = ValueOf(row, slot.var);
            if (id == kUnboundTerm) return false;
            *term = dict->Decode(id);
            return true;
          };
          std::array<Term, 3> t;
          if (!resolve(tp.s, &t[0]) || !resolve(tp.p, &t[1]) ||
              !resolve(tp.o, &t[2]))
            continue;
          if (t[0].is_literal() || !t[1].is_iri()) continue;
          out->push_back(std::move(t));
        }
      }
    };
    std::vector<std::array<Term, 3>> deletes, inserts;
    expand(cmd.pattern.delete_templates, &deletes);
    expand(cmd.pattern.insert_templates, &inserts);
    for (const auto& t : deletes) delete_triple(t);
    for (const auto& t : inserts) insert_triple(t);
  }
  return state;
}

}  // namespace testing
}  // namespace sparqluo
