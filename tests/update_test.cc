// Versioned update subsystem tests (src/store).
//
// The central claim under test: query results on a committed version are
// bit-identical to a store rebuilt from scratch with the same net triples
// — for both BGP engines, at parallelism 1 and 8, and with readers running
// concurrently with a writer (no torn reads, plan cache invalidated
// across versions).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "server/query_service.h"
#include "store/update.h"
#include "util/executor_pool.h"

namespace sparqluo {
namespace {

const char* kPrologue = "PREFIX ex: <http://ex.org/> ";

std::string Ex(const std::string& local) { return "http://ex.org/" + local; }

/// The query workload the versioned store is checked against: BGP joins,
/// UNION, OPTIONAL, DISTINCT and ORDER BY all exercise different parts of
/// the merged permutation indexes.
std::vector<std::string> Workload() {
  return {
      std::string(kPrologue) + "SELECT ?x ?y WHERE { ?x ex:knows ?y }",
      std::string(kPrologue) +
          "SELECT ?x ?c WHERE { { ?x ex:email ?c } UNION { ?x ex:phone ?c } }",
      std::string(kPrologue) +
          "SELECT ?x ?n ?e WHERE { ?x a ex:Person . ?x ex:name ?n "
          "OPTIONAL { ?x ex:email ?e } }",
      std::string(kPrologue) +
          "SELECT ?x ?z WHERE { ?x ex:knows ?y . ?y ex:knows ?z }",
      std::string(kPrologue) +
          "SELECT DISTINCT ?y WHERE { ?x ex:knows ?y } ORDER BY ?y",
  };
}

/// Exact (bitwise) equality: same schema, same rows in the same order.
bool BitIdentical(const BindingSet& a, const BindingSet& b) {
  if (a.schema() != b.schema() || a.size() != b.size()) return false;
  for (size_t r = 0; r < a.size(); ++r)
    for (size_t c = 0; c < a.width(); ++c)
      if (a.At(r, c) != b.At(r, c)) return false;
  return true;
}

/// Rebuilds a fresh database from scratch holding exactly the version's
/// net triples, interning terms in the same first-seen order so the two
/// databases assign identical TermIds. Term-id order decides permutation
/// index order (and therefore row order), so "bit-identical to a rebuild"
/// only makes sense with the interning order reproduced — which is also
/// what any real reload does (snapshot save/load re-encodes ids densely
/// in order).
std::unique_ptr<Database> RebuildCanonical(const DatabaseVersion& v,
                                           EngineKind kind) {
  auto db = std::make_unique<Database>();
  for (TermId id = 0; id < v.dict->size(); ++id)
    db->dict().Encode(v.dict->Decode(id));
  for (const Triple& t : v.store->triples())
    db->AddTriple(v.dict->Decode(t.s), v.dict->Decode(t.p),
                  v.dict->Decode(t.o));
  db->Finalize(kind);
  return db;
}

/// Decoded row images (schema + ordered rows) — comparable across two
/// databases with different dictionaries.
std::vector<std::string> DecodedRows(const BindingSet& rows,
                                     const Dictionary& dict) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    std::string line;
    for (size_t c = 0; c < rows.width(); ++c) {
      line += dict.ToString(rows.At(r, c));
      line += '\t';
    }
    out.push_back(std::move(line));
  }
  return out;
}

/// Mirror of the net triple set, replayed alongside the real batches so a
/// reference database can be rebuilt from scratch at any point.
class NetTriples {
 public:
  void Insert(const Term& s, const Term& p, const Term& o) {
    net_[Key(s, p, o)] = {s, p, o};
  }
  void Delete(const Term& s, const Term& p, const Term& o) {
    net_.erase(Key(s, p, o));
  }
  void Replay(const UpdateBatch& batch) {
    for (const UpdateOp& op : batch.ops) {
      if (op.kind == UpdateOp::Kind::kInsert)
        Insert(op.triple.s, op.triple.p, op.triple.o);
      else
        Delete(op.triple.s, op.triple.p, op.triple.o);
    }
  }
  size_t size() const { return net_.size(); }

  std::unique_ptr<Database> Rebuild(EngineKind kind) const {
    auto db = std::make_unique<Database>();
    for (const auto& [key, t] : net_) db->AddTriple(t.s, t.p, t.o);
    db->Finalize(kind);
    return db;
  }

 private:
  static std::string Key(const Term& s, const Term& p, const Term& o) {
    return s.CanonicalKey() + "\x1f" + p.CanonicalKey() + "\x1f" +
           o.CanonicalKey();
  }
  std::map<std::string, GroundTriple> net_;
};

/// Base graph: 20 people in a knows-ring with names, emails on the evens.
void LoadBase(Database* db, NetTriples* net) {
  Term type = Term::Iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
  Term person = Term::Iri(Ex("Person"));
  Term knows = Term::Iri(Ex("knows"));
  Term name = Term::Iri(Ex("name"));
  Term email = Term::Iri(Ex("email"));
  for (int i = 0; i < 20; ++i) {
    Term p = Term::Iri(Ex("p" + std::to_string(i)));
    db->AddTriple(p, type, person);
    net->Insert(p, type, person);
    db->AddTriple(p, name, Term::Literal("person " + std::to_string(i)));
    net->Insert(p, name, Term::Literal("person " + std::to_string(i)));
    Term next = Term::Iri(Ex("p" + std::to_string((i + 1) % 20)));
    Term hop = Term::Iri(Ex("p" + std::to_string((i + 7) % 20)));
    db->AddTriple(p, knows, next);
    net->Insert(p, knows, next);
    db->AddTriple(p, knows, hop);
    net->Insert(p, knows, hop);
    if (i % 2 == 0) {
      Term addr = Term::Literal("p" + std::to_string(i) + "@ex.org");
      db->AddTriple(p, email, addr);
      net->Insert(p, email, addr);
    }
  }
}

/// The update sequence: inserts of new entities, deletes of existing
/// triples, duplicate inserts, deletes of absent triples, and
/// insert-then-delete / delete-then-insert pairs within one batch.
std::vector<UpdateBatch> UpdateSequence() {
  Term type = Term::Iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
  Term person = Term::Iri(Ex("Person"));
  Term knows = Term::Iri(Ex("knows"));
  Term name = Term::Iri(Ex("name"));
  Term email = Term::Iri(Ex("email"));
  Term phone = Term::Iri(Ex("phone"));
  auto p = [](int i) { return Term::Iri(Ex("p" + std::to_string(i))); };

  std::vector<UpdateBatch> batches;
  {
    // New person joins the graph; one existing edge is retired.
    UpdateBatch b;
    b.Insert(p(20), type, person);
    b.Insert(p(20), name, Term::Literal("person 20"));
    b.Insert(p(20), knows, p(0));
    b.Insert(p(3), knows, p(20));
    b.Delete(p(0), knows, p(1));
    batches.push_back(std::move(b));
  }
  {
    // Contact churn: email -> phone for p4; duplicate insert of an
    // existing triple and a delete of an absent one (both net no-ops).
    UpdateBatch b;
    b.Delete(p(4), email, Term::Literal("p4@ex.org"));
    b.Insert(p(4), phone, Term::Literal("+1-555-0104"));
    b.Insert(p(2), knows, p(3));        // already present in base
    b.Delete(p(9), email, Term::Literal("nobody@ex.org"));  // absent
    batches.push_back(std::move(b));
  }
  {
    // Within-batch replay: insert-then-delete is a net no-op,
    // delete-then-insert is a net (re-)insert.
    UpdateBatch b;
    b.Insert(p(21), type, person);
    b.Delete(p(21), type, person);
    b.Delete(p(0), knows, p(7));
    b.Insert(p(0), knows, p(7));
    b.Insert(p(0), knows, p(1));  // resurrect the edge deleted in batch 1
    batches.push_back(std::move(b));
  }
  {
    // Bulk-ish growth to push the delta-merge across several index pages.
    UpdateBatch b;
    for (int i = 30; i < 80; ++i) {
      b.Insert(p(i), type, person);
      b.Insert(p(i), knows, p(i % 20));
      if (i % 3 == 0) {
        b.Insert(p(i), email,
                 Term::Literal("p" + std::to_string(i) + "@ex.org"));
      }
    }
    b.Delete(p(6), knows, p(7));
    b.Delete(p(6), knows, p(13));
    batches.push_back(std::move(b));
  }
  return batches;
}

class UpdateTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  void SetUp() override {
    LoadBase(&db_, &net_);
    db_.Finalize(GetParam());
  }

  /// Runs `query` on `db` at the given parallelism and returns the raw
  /// BindingSet (parallelism != 1 uses a dedicated pool).
  BindingSet RunRaw(Database& db, const std::string& query,
                    size_t parallelism) {
    ExecOptions opts = ExecOptions::Full();
    std::unique_ptr<ExecutorPool> pool;
    if (parallelism != 1) {
      pool = std::make_unique<ExecutorPool>(parallelism - 1);
      opts.parallel.pool = pool.get();
      opts.parallel.parallelism = parallelism;
    }
    auto r = db.Query(query, opts);
    EXPECT_TRUE(r.ok()) << query << " -> " << r.status().ToString();
    if (!r.ok()) return BindingSet();
    return std::move(*r);
  }

  /// Decoded variant of RunRaw.
  std::vector<std::string> Run(Database& db, const std::string& query,
                               size_t parallelism) {
    return DecodedRows(RunRaw(db, query, parallelism), db.dict());
  }

  Database db_;
  NetTriples net_;
};

INSTANTIATE_TEST_SUITE_P(Engines, UpdateTest,
                         ::testing::Values(EngineKind::kWco,
                                           EngineKind::kHashJoin),
                         [](const auto& info) {
                           return info.param == EngineKind::kWco ? "Wco"
                                                                 : "HashJoin";
                         });

// The acceptance criterion: after every commit in the sequence, every
// workload query on the committed version is bit-identical — same schema,
// same rows, same row order, same TermIds — to a database rebuilt from
// scratch with the same net triples (and the same interning order, see
// RebuildCanonical), at parallelism 1 and 8. A second, interning-order-
// independent rebuild checks bag-level semantic equality.
TEST_P(UpdateTest, CommittedVersionsBitIdenticalToRebuild) {
  std::vector<UpdateBatch> batches = UpdateSequence();
  uint64_t expect_version = 0;
  for (const UpdateBatch& batch : batches) {
    auto commit = db_.Apply(batch);
    ASSERT_TRUE(commit.ok()) << commit.status().ToString();
    EXPECT_EQ(commit->version, ++expect_version);
    net_.Replay(batch);

    std::shared_ptr<const DatabaseVersion> snap = db_.Snapshot();
    ASSERT_EQ(snap->store->size(), net_.size());
    auto canonical = RebuildCanonical(*snap, GetParam());
    // The merged permutation arrays must match a from-scratch Build().
    ASSERT_EQ(canonical->store().triples().size(), snap->store->size());
    for (size_t i = 0; i < snap->store->size(); ++i)
      ASSERT_EQ(canonical->store().triples()[i], snap->store->triples()[i])
          << "SPO divergence at " << i << " after version " << expect_version;

    auto independent = net_.Rebuild(GetParam());
    for (const std::string& q : Workload()) {
      for (size_t parallelism : {size_t{1}, size_t{8}}) {
        BindingSet mine = RunRaw(db_, q, parallelism);
        BindingSet ref = RunRaw(*canonical, q, parallelism);
        EXPECT_TRUE(BitIdentical(mine, ref))
            << "version " << expect_version << " parallelism " << parallelism
            << "\n" << q;
        // Same bag of solutions regardless of interning order.
        std::vector<std::string> got = DecodedRows(mine, db_.dict());
        std::vector<std::string> want =
            Run(*independent, q, parallelism);
        std::sort(got.begin(), got.end());
        std::sort(want.begin(), want.end());
        EXPECT_EQ(got, want)
            << "bag mismatch at version " << expect_version << "\n" << q;
      }
    }
  }
}

// The commit path's CSR-aware merge (TripleStore::BuildDelta) must
// reproduce the *layout* of a from-scratch Build bit for bit — every
// permutation's level-1 directory and level-2 bucket contents — not just
// the same triple bag. Query identity (above) would not catch, say, a
// merge that splits a bucket or reorders pairs within one in a way the
// current probe paths happen to tolerate.
TEST_P(UpdateTest, CommittedCsrLayoutIdenticalToRebuild) {
  uint64_t version = 0;
  for (const UpdateBatch& batch : UpdateSequence()) {
    auto commit = db_.Apply(batch);
    ASSERT_TRUE(commit.ok()) << commit.status().ToString();
    ++version;
    net_.Replay(batch);

    std::shared_ptr<const DatabaseVersion> snap = db_.Snapshot();
    auto canonical = RebuildCanonical(*snap, GetParam());
    const TripleStore& committed = *snap->store;
    const TripleStore& rebuilt = canonical->store();
    ASSERT_EQ(committed.size(), rebuilt.size());
    ASSERT_EQ(committed.IndexBytes(), rebuilt.IndexBytes());
    for (Perm perm : {Perm::kSpo, Perm::kPos, Perm::kOsp}) {
      auto cf = committed.DistinctFirsts(perm);
      auto rf = rebuilt.DistinctFirsts(perm);
      ASSERT_TRUE(std::equal(cf.begin(), cf.end(), rf.begin(), rf.end()))
          << "directory divergence, perm " << static_cast<int>(perm)
          << " version " << version;
      std::vector<std::pair<TermId, std::vector<IdPair>>> cg, rg;
      committed.ForEachGroup(perm,
                             [&](TermId f, std::span<const IdPair> prs) {
                               cg.emplace_back(
                                   f, std::vector<IdPair>(prs.begin(),
                                                          prs.end()));
                             });
      rebuilt.ForEachGroup(perm, [&](TermId f, std::span<const IdPair> prs) {
        rg.emplace_back(f, std::vector<IdPair>(prs.begin(), prs.end()));
      });
      ASSERT_EQ(cg, rg) << "bucket divergence, perm "
                        << static_cast<int>(perm) << " version " << version;
    }
  }
}

// Pool-parallel index construction — Build fanning the three CSR
// permutations over an ExecutorPool at Finalize, and BuildDelta merging
// them in parallel at every commit — must produce exactly the layout the
// sequential path does. (This is also the test that puts those code
// paths under the CI sanitizer matrix.)
TEST_P(UpdateTest, PoolParallelBuildAndCommitMatchSequential) {
  ExecutorPool pool(3);
  Database pooled;
  NetTriples ignored;
  LoadBase(&pooled, &ignored);
  pooled.Finalize(GetParam(), &pool);

  auto same_layout = [&](const TripleStore& a, const TripleStore& b) {
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.IndexBytes(), b.IndexBytes());
    for (Perm perm : {Perm::kSpo, Perm::kPos, Perm::kOsp}) {
      std::vector<std::pair<TermId, std::vector<IdPair>>> ga, gb;
      a.ForEachGroup(perm, [&](TermId f, std::span<const IdPair> prs) {
        ga.emplace_back(f, std::vector<IdPair>(prs.begin(), prs.end()));
      });
      b.ForEachGroup(perm, [&](TermId f, std::span<const IdPair> prs) {
        gb.emplace_back(f, std::vector<IdPair>(prs.begin(), prs.end()));
      });
      ASSERT_EQ(ga, gb) << "perm " << static_cast<int>(perm);
    }
  };
  same_layout(pooled.store(), db_.store());

  for (const UpdateBatch& batch : UpdateSequence()) {
    ASSERT_TRUE(pooled.Apply(batch).ok());  // pool-parallel CSR merge
    ASSERT_TRUE(db_.Apply(batch).ok());     // sequential merge
    same_layout(pooled.store(), db_.store());
  }
}

// A reader that pinned a snapshot before a commit keeps seeing the old
// version's data; the database moves on underneath it.
TEST_P(UpdateTest, PinnedSnapshotIsIsolatedFromCommits) {
  const std::string q = Workload()[0];
  auto parsed = db_.Parse(q);
  ASSERT_TRUE(parsed.ok());

  std::shared_ptr<const DatabaseVersion> pinned = db_.Snapshot();
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->id, 0u);
  auto before_r = pinned->executor->Execute(*parsed, ExecOptions::Full());
  ASSERT_TRUE(before_r.ok());
  BindingSet before = std::move(*before_r);

  auto commit = db_.Apply(UpdateSequence()[0]);
  ASSERT_TRUE(commit.ok());
  EXPECT_EQ(db_.version(), 1u);

  // The pinned executor still serves version 0, bit for bit.
  auto after_r = pinned->executor->Execute(*parsed, ExecOptions::Full());
  ASSERT_TRUE(after_r.ok());
  BindingSet after = std::move(*after_r);
  EXPECT_EQ(DecodedRows(before, db_.dict()), DecodedRows(after, db_.dict()));

  // The current version reflects the commit (the deleted edge is gone,
  // the new ones are present).
  auto current = db_.Query(q);
  ASSERT_TRUE(current.ok());
  EXPECT_NE(DecodedRows(before, db_.dict()),
            DecodedRows(*current, db_.dict()));
}

// Staged batches are invisible until Commit publishes them.
TEST_P(UpdateTest, StagedDataInvisibleUntilCommit) {
  const std::string q = Workload()[0];
  auto before = Run(db_, q, 1);
  ASSERT_TRUE(db_.Stage(UpdateSequence()[0]).ok());
  EXPECT_EQ(Run(db_, q, 1), before);
  EXPECT_EQ(db_.version(), 0u);
  auto commit = db_.Commit();
  ASSERT_TRUE(commit.ok());
  EXPECT_EQ(commit->version, 1u);
  EXPECT_NE(Run(db_, q, 1), before);
}

// Net-effect accounting: duplicates and absent deletes don't count; the
// empty commit publishes nothing.
TEST_P(UpdateTest, CommitStatsReportNetEffect) {
  UpdateBatch b;
  Term knows = Term::Iri(Ex("knows"));
  b.Insert(Term::Iri(Ex("p0")), knows, Term::Iri(Ex("p1")));   // duplicate
  b.Insert(Term::Iri(Ex("p0")), knows, Term::Iri(Ex("p9")));   // new
  b.Delete(Term::Iri(Ex("p0")), knows, Term::Iri(Ex("p2")));   // absent
  b.Delete(Term::Iri(Ex("p0")), knows, Term::Iri(Ex("p7")));   // present
  size_t before = db_.size();
  auto commit = db_.Apply(b);
  ASSERT_TRUE(commit.ok());
  EXPECT_EQ(commit->inserted, 1u);
  EXPECT_EQ(commit->deleted, 1u);
  EXPECT_EQ(commit->store_size, before);
  EXPECT_EQ(commit->version, 1u);

  auto empty = db_.Commit();
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->version, 1u);  // no delta, no new version
  EXPECT_EQ(db_.version(), 1u);
}

// SPARQL INSERT DATA / DELETE DATA text drives the same machinery.
TEST_P(UpdateTest, SparqlUpdateTextEndToEnd) {
  auto commit = db_.Update(
      "PREFIX ex: <http://ex.org/> "
      "INSERT DATA { ex:p50 a ex:Person ; ex:knows ex:p0 , ex:p1 . "
      "              ex:p50 ex:name \"person 50\"@en } ; "
      "DELETE DATA { ex:p0 ex:knows ex:p1 }");
  ASSERT_TRUE(commit.ok()) << commit.status().ToString();
  EXPECT_EQ(commit->inserted, 4u);
  EXPECT_EQ(commit->deleted, 1u);

  auto rows = db_.Query(std::string(kPrologue) +
                        "SELECT ?y WHERE { ex:p50 ex:knows ?y }");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);

  auto gone = db_.Query(std::string(kPrologue) +
                        "ASK { ex:p0 ex:knows ex:p1 }");
  ASSERT_TRUE(gone.ok());
  EXPECT_TRUE(gone->empty());
}

TEST(UpdateParserTest, ParsesTermFormsAndAbbreviations) {
  auto batch = ParseUpdate(
      "PREFIX ex: <http://ex.org/> "
      "INSERT DATA { ex:s a ex:T ; ex:p \"lit\" , \"v\"^^ex:dt , 42 , 4.5 ; "
      "              ex:q \"hi\"@en . _:b ex:p <http://ex.org/o> }");
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), 7u);
  EXPECT_EQ(batch->ops[0].triple.p.lexical,
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
  EXPECT_TRUE(batch->ops[5].triple.o.qualifier_is_lang);
  EXPECT_TRUE(batch->ops[6].triple.s.is_blank());
  for (const UpdateOp& op : batch->ops)
    EXPECT_EQ(op.kind, UpdateOp::Kind::kInsert);
}

TEST(UpdateParserTest, RejectsVariablesAndSyntaxErrors) {
  EXPECT_FALSE(ParseUpdate("INSERT DATA { ?x <http://p> <http://o> }").ok());
  EXPECT_FALSE(ParseUpdate("INSERT { <http://s> <http://p> <http://o> }").ok());
  EXPECT_FALSE(ParseUpdate("INSERT DATA { <http://s> <http://p> }").ok());
  EXPECT_FALSE(ParseUpdate("SELECT * WHERE { ?s ?p ?o }").ok());
  EXPECT_FALSE(ParseUpdate("").ok());
}

TEST(UpdateParserTest, MixedOperationsKeepOrder) {
  auto batch = ParseUpdate(
      "DELETE DATA { <http://s> <http://p> <http://o> } ; "
      "INSERT DATA { <http://s> <http://p> <http://o> } ;");
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), 2u);
  EXPECT_EQ(batch->ops[0].kind, UpdateOp::Kind::kDelete);
  EXPECT_EQ(batch->ops[1].kind, UpdateOp::Kind::kInsert);
}

// Terms introduced by an insert stay interned (same id) after the triple
// is deleted again — ids are never reused, so a later re-insert of the
// triple hits the same ids and pinned versions keep decoding.
TEST_P(UpdateTest, InsertedThenDeletedTermsStayInterned) {
  Term subj = Term::Iri(Ex("ephemeral"));
  Term knows = Term::Iri(Ex("knows"));
  Term obj = Term::Iri(Ex("p0"));

  UpdateBatch ins;
  ins.Insert(subj, knows, obj);
  ASSERT_TRUE(db_.Apply(ins).ok());
  TermId id = db_.dict().Lookup(subj);
  ASSERT_NE(id, kInvalidTermId);

  UpdateBatch del;
  del.Delete(subj, knows, obj);
  ASSERT_TRUE(db_.Apply(del).ok());
  EXPECT_EQ(db_.dict().Lookup(subj), id);
  EXPECT_EQ(db_.dict().Decode(id).lexical, Ex("ephemeral"));
  auto rows = db_.Query(std::string(kPrologue) +
                        "SELECT ?y WHERE { ex:ephemeral ex:knows ?y }");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

// ---------------------------------------------------------------------
// Service-level: concurrent readers + writer, plan cache invalidation.
// ---------------------------------------------------------------------

class UpdateServiceTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  void SetUp() override {
    LoadBase(&db_, &net_);
    db_.Finalize(GetParam());
  }
  Database db_;
  NetTriples net_;
};

INSTANTIATE_TEST_SUITE_P(Engines, UpdateServiceTest,
                         ::testing::Values(EngineKind::kWco,
                                           EngineKind::kHashJoin),
                         [](const auto& info) {
                           return info.param == EngineKind::kWco ? "Wco"
                                                                 : "HashJoin";
                         });

// Readers hammer the service while a writer commits the whole update
// sequence. Every response reports the version it executed on and must
// match that version's from-scratch rebuild exactly — a torn read (rows
// from two versions) cannot match any rebuild.
TEST_P(UpdateServiceTest, ConcurrentReadersSeeOnlyCommittedVersions) {
  const std::string q = Workload()[0];
  std::vector<UpdateBatch> batches = UpdateSequence();

  // Expected decoded rows per version, from a twin database that replays
  // the same load + batch sequence (identical interning order => identical
  // row order; see RebuildCanonical).
  std::vector<std::vector<std::string>> expected;
  {
    Database twin;
    NetTriples ignored;
    LoadBase(&twin, &ignored);
    twin.Finalize(GetParam());
    auto r = twin.Query(q);
    ASSERT_TRUE(r.ok());
    expected.push_back(DecodedRows(*r, twin.dict()));
    for (const UpdateBatch& batch : batches) {
      ASSERT_TRUE(twin.Apply(batch).ok());
      r = twin.Query(q);
      ASSERT_TRUE(r.ok());
      expected.push_back(DecodedRows(*r, twin.dict()));
    }
  }

  QueryService::Options sopts;
  sopts.num_threads = 4;
  QueryService service(db_, sopts);

  std::atomic<bool> done{false};
  std::atomic<size_t> checked{0};
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        QueryRequest req;
        req.text = q;
        QueryResponse resp = service.Submit(req).get();
        if (!resp.status.ok()) {
          ++mismatches;
          continue;
        }
        std::vector<std::string> rows = DecodedRows(resp.rows, db_.dict());
        if (resp.version >= expected.size() ||
            rows != expected[resp.version]) {
          ++mismatches;
        }
        ++checked;
      }
    });
  }

  for (size_t k = 0; k < batches.size(); ++k) {
    UpdateRequest up;
    up.batch = batches[k];
    UpdateResponse resp = service.SubmitUpdate(std::move(up)).get();
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
    EXPECT_EQ(resp.commit.version, k + 1);
    // Let readers overlap each committed version a little.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  done = true;
  for (auto& t : readers) t.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT(checked.load(), 0u);
  EXPECT_EQ(service.Stats().store_version, batches.size());

  // After the writer finishes, the service serves the final version.
  QueryRequest req;
  req.text = q;
  QueryResponse final_resp = service.Submit(req).get();
  ASSERT_TRUE(final_resp.status.ok());
  EXPECT_EQ(final_resp.version, batches.size());
  EXPECT_EQ(DecodedRows(final_resp.rows, db_.dict()), expected.back());
}

// Cached plans never serve a newer version: the second submission hits the
// cache, the post-commit submission misses (version-keyed) and reflects
// the new data.
TEST_P(UpdateServiceTest, PlanCacheInvalidatedAcrossVersions) {
  const std::string q = Workload()[0];
  QueryService::Options sopts;
  sopts.num_threads = 2;
  // Plan-cache-layer test: keep repeats off the result-cache fast path.
  sopts.enable_result_cache = false;
  QueryService service(db_, sopts);

  QueryRequest req;
  req.text = q;
  QueryResponse first = service.Submit(req).get();
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.plan_cache_hit);
  QueryResponse second = service.Submit(req).get();
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.plan_cache_hit);
  EXPECT_EQ(DecodedRows(first.rows, db_.dict()),
            DecodedRows(second.rows, db_.dict()));

  UpdateRequest up;
  up.text =
      "PREFIX ex: <http://ex.org/> "
      "INSERT DATA { ex:p90 ex:knows ex:p0 } ; "
      "DELETE DATA { ex:p0 ex:knows ex:p1 }";
  UpdateResponse committed = service.SubmitUpdate(std::move(up)).get();
  ASSERT_TRUE(committed.status.ok()) << committed.status.ToString();

  QueryResponse third = service.Submit(req).get();
  ASSERT_TRUE(third.status.ok());
  EXPECT_FALSE(third.plan_cache_hit);  // version-keyed: old plan unreachable
  EXPECT_EQ(third.version, 1u);
  EXPECT_NE(DecodedRows(third.rows, db_.dict()),
            DecodedRows(first.rows, db_.dict()));
}

// A service constructed over a const Database refuses updates.
TEST_P(UpdateServiceTest, ReadOnlyServiceRejectsUpdates) {
  const Database& ro = db_;
  QueryService::Options sopts;
  sopts.num_threads = 1;
  QueryService service(ro, sopts);
  UpdateRequest up;
  up.text = "INSERT DATA { <http://s> <http://p> <http://o> }";
  UpdateResponse resp = service.SubmitUpdate(std::move(up)).get();
  EXPECT_EQ(resp.status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.Stats().updates_failed, 1u);
  EXPECT_EQ(db_.version(), 0u);
}

// Update counters aggregate per-commit stats; parse failures count as
// failed updates.
TEST_P(UpdateServiceTest, UpdateStatsAggregate) {
  QueryService::Options sopts;
  sopts.num_threads = 2;
  QueryService service(db_, sopts);

  UpdateRequest ok;
  ok.text =
      "PREFIX ex: <http://ex.org/> INSERT DATA { ex:n1 ex:knows ex:p0 . "
      "ex:n2 ex:knows ex:p0 } ; DELETE DATA { ex:p0 ex:knows ex:p1 }";
  ASSERT_TRUE(service.SubmitUpdate(std::move(ok)).get().status.ok());
  UpdateRequest bad;
  bad.text = "INSERT DATA { broken";
  EXPECT_FALSE(service.SubmitUpdate(std::move(bad)).get().status.ok());

  ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.updates_submitted, 2u);
  EXPECT_EQ(stats.updates_committed, 1u);
  EXPECT_EQ(stats.updates_failed, 1u);
  EXPECT_EQ(stats.triples_inserted, 2u);
  EXPECT_EQ(stats.triples_deleted, 1u);
  EXPECT_EQ(stats.store_version, 1u);
}

}  // namespace
}  // namespace sparqluo
