// Edge cases of the transformation machinery: multi-OPTIONAL injects,
// multi-branch (>2-way) UNION merges, nested-level transformations, the
// well-designedness guards, and cost-model monotonicity.
#include <gtest/gtest.h>

#include "algebra/operators.h"
#include "betree/builder.h"
#include "engine/database.h"
#include "optimizer/transformations.h"
#include "optimizer/transformer.h"
#include "sparql/parser.h"

namespace sparqluo {
namespace {

class TransformerEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto iri = [](const std::string& s) {
      return Term::Iri("http://t.org/" + s);
    };
    // 8 anchored entities inside a 3000-entity population with three
    // pervasive attributes.
    for (int i = 0; i < 3000; ++i) {
      Term e = iri("e" + std::to_string(i));
      if (i < 8) db_.AddTriple(e, iri("anchor"), iri("target"));
      db_.AddTriple(e, iri("attr1"), Term::Literal("a" + std::to_string(i)));
      db_.AddTriple(e, iri("attr2"), Term::Literal("b" + std::to_string(i)));
      db_.AddTriple(e, iri("attr3"), Term::Literal("c" + std::to_string(i)));
    }
    db_.Finalize(EngineKind::kWco);
  }

  BeTree Build(const std::string& body, Query* q) {
    auto parsed = ParseQuery("SELECT * WHERE " + body);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    *q = std::move(*parsed);
    return BuildBeTree(*q);
  }

  void ExpectSemanticsPreserved(const std::string& body) {
    Query q;
    BeTree tree = Build(body, &q);
    Executor exec(db_.engine(), db_.dict(), db_.store());
    BindingSet before = exec.EvaluateTree(tree, ExecOptions{});
    CostModel cost(db_.engine());
    TransformStats stats;
    MultiLevelTransform(&tree, cost, TransformOptions{}, &stats);
    ASSERT_TRUE(tree.Validate().ok()) << body;
    BindingSet after = exec.EvaluateTree(tree, ExecOptions{});
    EXPECT_TRUE(BagEquals(before, after)) << body;
  }

  Database db_;
};

TEST_F(TransformerEdgeTest, InjectIntoMultipleOptionals) {
  // A selective BGP can be injected into EVERY sibling OPTIONAL to its
  // right (injects are mutually independent, Algorithm 2).
  Query q;
  BeTree tree = Build(
      "{ ?x <http://t.org/anchor> <http://t.org/target> . "
      "OPTIONAL { ?x <http://t.org/attr1> ?a . } "
      "OPTIONAL { ?x <http://t.org/attr2> ?b . } "
      "OPTIONAL { ?x <http://t.org/attr3> ?c . } }",
      &q);
  CostModel cost(db_.engine());
  TransformStats stats;
  SingleLevelTransform(tree.root.get(), cost, TransformOptions{}, &stats);
  EXPECT_EQ(stats.injects, 3u);
  ASSERT_TRUE(tree.Validate().ok());
  // Every OPTIONAL-right group now holds the coalesced anchor + attribute.
  for (size_t i = 1; i <= 3; ++i) {
    const BeNode& right = *tree.root->children[i]->children[0];
    ASSERT_EQ(right.children.size(), 1u);
    EXPECT_EQ(right.children[0]->bgp.size(), 2u);
  }
}

TEST_F(TransformerEdgeTest, MergeIntoThreeWayUnion) {
  Query q;
  BeTree tree = Build(
      "{ ?x <http://t.org/anchor> <http://t.org/target> . "
      "{ ?x <http://t.org/attr1> ?v . } UNION "
      "{ ?x <http://t.org/attr2> ?v . } UNION "
      "{ ?x <http://t.org/attr3> ?v . } }",
      &q);
  ASSERT_TRUE(CanMerge(*tree.root, 0, 1));
  ApplyMerge(tree.root.get(), 0, 1);
  ASSERT_TRUE(tree.Validate().ok());
  const BeNode& u = *tree.root->children[0];
  ASSERT_EQ(u.children.size(), 3u);
  for (const auto& branch : u.children)
    EXPECT_EQ(branch->children[0]->bgp.size(), 2u);
  ExpectSemanticsPreserved(
      "{ ?x <http://t.org/anchor> <http://t.org/target> . "
      "{ ?x <http://t.org/attr1> ?v . } UNION "
      "{ ?x <http://t.org/attr2> ?v . } UNION "
      "{ ?x <http://t.org/attr3> ?v . } }");
}

TEST_F(TransformerEdgeTest, NestedLevelsAreTransformedPostOrder) {
  // The favorable inject sits one level down, inside an OPTIONAL-right
  // group; Algorithm 4 must reach it.
  Query q;
  BeTree tree = Build(
      "{ ?y <http://t.org/attr1> ?w . "
      "OPTIONAL { ?x <http://t.org/anchor> <http://t.org/target> . "
      "OPTIONAL { ?x <http://t.org/attr2> ?b . } } }",
      &q);
  CostModel cost(db_.engine());
  TransformStats stats;
  MultiLevelTransform(&tree, cost, TransformOptions{}, &stats);
  EXPECT_GE(stats.injects, 1u);
  ASSERT_TRUE(tree.Validate().ok());
}

TEST_F(TransformerEdgeTest, MergeBlockedAcrossSharedVarOptional) {
  // An OPTIONAL between the BGP and the UNION shares ?x with the BGP:
  // relocating the BGP across it would change the OPTIONAL's base.
  Query q;
  BeTree tree = Build(
      "{ ?x <http://t.org/anchor> <http://t.org/target> . "
      "OPTIONAL { ?x <http://t.org/attr3> ?c . } "
      "{ ?x <http://t.org/attr1> ?v . } UNION "
      "{ ?x <http://t.org/attr2> ?v . } }",
      &q);
  EXPECT_FALSE(CanMerge(*tree.root, 0, 2));
  ExpectSemanticsPreserved(
      "{ ?x <http://t.org/anchor> <http://t.org/target> . "
      "OPTIONAL { ?x <http://t.org/attr3> ?c . } "
      "{ ?x <http://t.org/attr1> ?v . } UNION "
      "{ ?x <http://t.org/attr2> ?v . } }");
}

TEST_F(TransformerEdgeTest, InjectBlockedByLeadingOptionalInRightGroup) {
  // The OPTIONAL-right group starts with its own OPTIONAL sharing ?x:
  // inserting the BGP leftmost would re-base that inner left join.
  Query q;
  BeTree tree = Build(
      "{ ?x <http://t.org/anchor> <http://t.org/target> . "
      "OPTIONAL { OPTIONAL { ?x <http://t.org/attr2> ?b . } "
      "?x <http://t.org/attr1> ?a . } }",
      &q);
  EXPECT_FALSE(CanInject(*tree.root, 0, 1));
  ExpectSemanticsPreserved(
      "{ ?x <http://t.org/anchor> <http://t.org/target> . "
      "OPTIONAL { OPTIONAL { ?x <http://t.org/attr2> ?b . } "
      "?x <http://t.org/attr1> ?a . } }");
}

TEST_F(TransformerEdgeTest, InjectAllowedWhenOptionalVarsCovered) {
  // The inner OPTIONAL's shared variable ?x is bound by the right group's
  // certain part BEFORE the inner OPTIONAL: insertion is safe.
  Query q;
  BeTree tree = Build(
      "{ ?x <http://t.org/anchor> <http://t.org/target> . "
      "OPTIONAL { ?x <http://t.org/attr1> ?a . "
      "OPTIONAL { ?x <http://t.org/attr2> ?b . } } }",
      &q);
  EXPECT_TRUE(CanInject(*tree.root, 0, 1));
  ExpectSemanticsPreserved(
      "{ ?x <http://t.org/anchor> <http://t.org/target> . "
      "OPTIONAL { ?x <http://t.org/attr1> ?a . "
      "OPTIONAL { ?x <http://t.org/attr2> ?b . } } }");
}

TEST_F(TransformerEdgeTest, MergeWithUnionLeftOfBgp) {
  // Definition 9 does not require the UNION to be on a particular side.
  Query q;
  BeTree tree = Build(
      "{ { ?x <http://t.org/attr1> ?v . } UNION "
      "{ ?x <http://t.org/attr2> ?v . } "
      "?x <http://t.org/anchor> <http://t.org/target> . }",
      &q);
  ASSERT_EQ(tree.root->children.size(), 2u);
  EXPECT_TRUE(CanMerge(*tree.root, 1, 0));
  ApplyMerge(tree.root.get(), 1, 0);
  ASSERT_TRUE(tree.Validate().ok());
  ASSERT_EQ(tree.root->children.size(), 1u);
  ExpectSemanticsPreserved(
      "{ { ?x <http://t.org/attr1> ?v . } UNION "
      "{ ?x <http://t.org/attr2> ?v . } "
      "?x <http://t.org/anchor> <http://t.org/target> . }");
}

TEST_F(TransformerEdgeTest, EmptyAndNonBgpNodesRejected) {
  Query q;
  BeTree tree = Build(
      "{ ?x <http://t.org/anchor> <http://t.org/target> . "
      "OPTIONAL { ?x <http://t.org/attr1> ?a . } }",
      &q);
  EXPECT_FALSE(CanMerge(*tree.root, 0, 1));   // OPTIONAL is not a UNION
  EXPECT_FALSE(CanInject(*tree.root, 1, 1));  // same node
  EXPECT_FALSE(CanInject(*tree.root, 0, 5));  // out of range
}

TEST_F(TransformerEdgeTest, InjectSiteCostScalesWithLeftSize) {
  // f_OPTIONAL grows with |res(P1)|: a bigger left side makes the same
  // site costlier.
  Query q;
  BeTree tree = Build(
      "{ ?x <http://t.org/anchor> <http://t.org/target> . "
      "OPTIONAL { ?x <http://t.org/attr1> ?a . } }",
      &q);
  CostModel cost(db_.engine());
  double small = cost.InjectSiteCost(*tree.root, 1, 10.0);
  double large = cost.InjectSiteCost(*tree.root, 1, 1000.0);
  EXPECT_GT(large, small);
}

TEST_F(TransformerEdgeTest, DecideDeltaZeroWhenPreconditionsFail) {
  Query q;
  BeTree tree = Build(
      "{ ?x <http://t.org/anchor> <http://t.org/target> . "
      "{ ?unrelated <http://t.org/attr1> ?v . } UNION "
      "{ ?other <http://t.org/attr2> ?v . } }",
      &q);
  CostModel cost(db_.engine());
  EXPECT_DOUBLE_EQ(DecideMergeDelta(*tree.root, 0, 1, cost), 0.0);
  EXPECT_DOUBLE_EQ(DecideInjectDelta(*tree.root, 0, 1, cost), 0.0);
}

}  // namespace
}  // namespace sparqluo
