#include <gtest/gtest.h>

#include "algebra/operators.h"
#include "baseline/binary_tree_eval.h"
#include "baseline/lbr/gosn.h"
#include "baseline/lbr/lbr_engine.h"
#include "engine/database.h"

namespace sparqluo {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto iri = [](const std::string& s) {
      return Term::Iri("http://u.edu/" + s);
    };
    Term works_for = iri("worksFor");
    Term type = Term::Iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
    Term full_prof = iri("FullProfessor");
    Term advisor = iri("advisor");
    Term teacher_of = iri("teacherOf");
    Term takes = iri("takesCourse");
    Term dept = iri("Department0");
    // 20 professors, 5 full; students advised by professors; courses.
    for (int p = 0; p < 20; ++p) {
      Term prof = iri("prof" + std::to_string(p));
      db_.AddTriple(prof, works_for, dept);
      if (p < 5) db_.AddTriple(prof, type, full_prof);
      Term course = iri("course" + std::to_string(p));
      db_.AddTriple(prof, teacher_of, course);
      for (int s = 0; s < 6; ++s) {
        Term student = iri("student" + std::to_string(p) + "_" + std::to_string(s));
        db_.AddTriple(student, advisor, prof);
        if (s % 2 == 0) db_.AddTriple(student, takes, course);
      }
    }
    db_.Finalize(EngineKind::kWco);
  }

  static std::string Prefixes() {
    return "PREFIX u: <http://u.edu/>\n"
           "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n";
  }

  Database db_;
};

// ------------------------------------------------- BinaryTreeEvaluator ---

TEST_F(BaselineTest, BinaryTreeMatchesEngineOnBgp) {
  auto q = db_.Parse(Prefixes() +
                     "SELECT * WHERE { ?x u:worksFor u:Department0 . "
                     "?x rdf:type u:FullProfessor . }");
  ASSERT_TRUE(q.ok());
  BinaryTreeEvaluator oracle(db_.store(), db_.dict());
  auto r1 = oracle.Execute(*q);
  auto r2 = db_.Query(Prefixes() +
                          "SELECT * WHERE { ?x u:worksFor u:Department0 . "
                          "?x rdf:type u:FullProfessor . }",
                      ExecOptions::Base());
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_TRUE(BagEquals(*r1, *r2));
  EXPECT_EQ(r1->size(), 5u);
}

TEST_F(BaselineTest, BinaryTreeHandlesUnionAndOptional) {
  auto q = db_.Parse(Prefixes() +
                     "SELECT * WHERE { ?x rdf:type u:FullProfessor . "
                     "OPTIONAL { ?y u:advisor ?x . } }");
  ASSERT_TRUE(q.ok());
  BinaryTreeEvaluator oracle(db_.store(), db_.dict());
  auto r = oracle.Execute(*q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 30u);  // 5 full professors x 6 advisees
}

// --------------------------------------------------------------- GoSN ---

TEST_F(BaselineTest, GosnStructure) {
  auto q = db_.Parse(Prefixes() +
                     "SELECT * WHERE { ?x u:worksFor u:Department0 . "
                     "OPTIONAL { ?y u:advisor ?x . ?x u:teacherOf ?z . } }");
  ASSERT_TRUE(q.ok());
  auto gosn = BuildGoSN(q->where);
  ASSERT_TRUE(gosn.ok());
  EXPECT_EQ((*gosn)->patterns.size(), 1u);
  ASSERT_EQ((*gosn)->opt_children.size(), 1u);
  EXPECT_EQ((*gosn)->opt_children[0]->patterns.size(), 2u);
  EXPECT_TRUE((*gosn)->and_children.empty());
}

TEST_F(BaselineTest, GosnRejectsUnion) {
  auto q = db_.Parse(Prefixes() +
                     "SELECT * WHERE { { ?x u:worksFor u:Department0 . } UNION "
                     "{ ?x rdf:type u:FullProfessor . } }");
  ASSERT_TRUE(q.ok());
  auto gosn = BuildGoSN(q->where);
  ASSERT_FALSE(gosn.ok());
  EXPECT_EQ(gosn.status().code(), StatusCode::kUnsupported);
}

// ---------------------------------------------------------------- LBR ----

TEST_F(BaselineTest, LbrMatchesOracleOnSimpleOptional) {
  const std::string text =
      Prefixes() +
      "SELECT * WHERE { ?x u:worksFor u:Department0 . "
      "?x rdf:type u:FullProfessor . "
      "OPTIONAL { ?y u:advisor ?x . ?x u:teacherOf ?z . ?y u:takesCourse ?z . } }";
  auto q = db_.Parse(text);
  ASSERT_TRUE(q.ok());
  LbrEngine lbr(db_.store(), db_.dict());
  auto r1 = lbr.Execute(*q);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  BinaryTreeEvaluator oracle(db_.store(), db_.dict());
  auto r2 = oracle.Execute(*q);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(BagEquals(*r1, *r2));
}

TEST_F(BaselineTest, LbrMatchesOracleOnNestedGroups) {
  const std::string text =
      Prefixes() +
      "SELECT * WHERE { "
      "{ ?st u:advisor ?prof . OPTIONAL { ?st u:takesCourse ?c . } } "
      "{ ?prof u:teacherOf ?c2 . OPTIONAL { ?prof u:worksFor ?d . } } }";
  auto q = db_.Parse(text);
  ASSERT_TRUE(q.ok());
  LbrEngine lbr(db_.store(), db_.dict());
  auto r1 = lbr.Execute(*q);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  BinaryTreeEvaluator oracle(db_.store(), db_.dict());
  auto r2 = oracle.Execute(*q);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(BagEquals(*r1, *r2));
}

TEST_F(BaselineTest, LbrMatchesFullApproach) {
  const std::string text =
      Prefixes() +
      "SELECT * WHERE { ?x u:worksFor u:Department0 . "
      "?x rdf:type u:FullProfessor . "
      "OPTIONAL { ?y u:advisor ?x . ?x u:teacherOf ?z . ?y u:takesCourse ?z . } }";
  auto q = db_.Parse(text);
  ASSERT_TRUE(q.ok());
  LbrEngine lbr(db_.store(), db_.dict());
  auto r1 = lbr.Execute(*q);
  auto r2 = db_.Query(text, ExecOptions::Full());
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_TRUE(BagEquals(*r1, *r2));
}

TEST_F(BaselineTest, LbrSemijoinPassesRun) {
  const std::string text =
      Prefixes() +
      "SELECT * WHERE { ?x u:worksFor u:Department0 . "
      "OPTIONAL { ?y u:advisor ?x . } }";
  auto q = db_.Parse(text);
  ASSERT_TRUE(q.ok());
  LbrEngine lbr(db_.store(), db_.dict());
  LbrMetrics m;
  auto r = lbr.Execute(*q, &m);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(m.semijoin_passes, 2u);  // forward + backward at least
  EXPECT_GT(m.rows_scanned, 0u);
}

TEST_F(BaselineTest, LbrSlaveDoesNotPruneMaster) {
  // Professors without advisees must survive the left join even though the
  // semijoin passes prune the slave side.
  const std::string text =
      Prefixes() +
      "SELECT * WHERE { ?x rdf:type u:FullProfessor . "
      "OPTIONAL { ?y u:advisor ?x . ?y u:takesCourse ?nope . "
      "?nope u:worksFor ?x . } }";  // slave can never match
  auto q = db_.Parse(text);
  ASSERT_TRUE(q.ok());
  LbrEngine lbr(db_.store(), db_.dict());
  auto r = lbr.Execute(*q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 5u);  // all full professors retained, unbound slaves
}

TEST_F(BaselineTest, LbrRejectsUnionQueries) {
  auto q = db_.Parse(Prefixes() +
                     "SELECT * WHERE { { ?x u:worksFor ?d . } UNION "
                     "{ ?x rdf:type u:FullProfessor . } }");
  ASSERT_TRUE(q.ok());
  LbrEngine lbr(db_.store(), db_.dict());
  EXPECT_FALSE(lbr.Execute(*q).ok());
}

}  // namespace
}  // namespace sparqluo
