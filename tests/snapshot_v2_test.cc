// SPQLUO2 snapshot round-trip suite.
//
// The central claims under test:
//   1. a v2-loaded database answers queries *bit-identically* — same
//      schema, same rows, same row order, same TermIds — to the database
//      that was never snapshotted, for both engines at parallelism 1 and
//      8, in both the mmap and buffered load modes;
//   2. the two formats are mutually convertible without drift: loading a
//      v1 file and re-saving v2 reproduces the direct v2 file byte for
//      byte, and vice versa;
//   3. a commit applied on top of a mapped (borrowed-memory) load yields
//      exactly the owned CSR layout a from-scratch build produces;
//   4. the committed golden v1 fixture keeps loading and the v1 writer
//      keeps producing those exact bytes (format-drift canary).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "engine/snapshot.h"
#include "util/executor_pool.h"
#include "workload/lubm_generator.h"
#include "workload/paper_queries.h"

namespace sparqluo {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// Exact (bitwise) equality: same schema, same rows in the same order.
bool BitIdentical(const BindingSet& a, const BindingSet& b) {
  if (a.schema() != b.schema() || a.size() != b.size()) return false;
  for (size_t r = 0; r < a.size(); ++r)
    for (size_t c = 0; c < a.width(); ++c)
      if (a.At(r, c) != b.At(r, c)) return false;
  return true;
}

/// Per-permutation CSR layout equality (directories and bucket contents).
void ExpectSameCsrLayout(const TripleStore& a, const TripleStore& b) {
  ASSERT_EQ(a.size(), b.size());
  for (Perm perm : {Perm::kSpo, Perm::kPos, Perm::kOsp}) {
    auto af = a.DistinctFirsts(perm);
    auto bf = b.DistinctFirsts(perm);
    ASSERT_TRUE(std::equal(af.begin(), af.end(), bf.begin(), bf.end()))
        << "directory divergence, perm " << static_cast<int>(perm);
    std::vector<std::pair<TermId, std::vector<IdPair>>> ga, gb;
    a.ForEachGroup(perm, [&](TermId f, std::span<const IdPair> prs) {
      ga.emplace_back(f, std::vector<IdPair>(prs.begin(), prs.end()));
    });
    b.ForEachGroup(perm, [&](TermId f, std::span<const IdPair> prs) {
      gb.emplace_back(f, std::vector<IdPair>(prs.begin(), prs.end()));
    });
    ASSERT_EQ(ga, gb) << "bucket divergence, perm " << static_cast<int>(perm);
  }
}

/// The workload both engines answer over the snapshot: the paper's LUBM
/// queries, which cover UNION, OPTIONAL and multi-pattern joins.
std::vector<std::string> Workload() {
  std::vector<std::string> out;
  for (const PaperQuery& q : LubmPaperQueries()) out.push_back(q.sparql);
  return out;
}

BindingSet RunRaw(const Database& db, const std::string& query,
                  size_t parallelism) {
  ExecOptions opts = ExecOptions::Full();
  std::unique_ptr<ExecutorPool> pool;
  if (parallelism != 1) {
    pool = std::make_unique<ExecutorPool>(parallelism - 1);
    opts.parallel.pool = pool.get();
    opts.parallel.parallelism = parallelism;
  }
  auto r = db.Query(query, opts);
  EXPECT_TRUE(r.ok()) << query << " -> " << r.status().ToString();
  if (!r.ok()) return BindingSet();
  return std::move(*r);
}

class SnapshotV2Test : public ::testing::TestWithParam<EngineKind> {
 protected:
  void SetUp() override {
    std::string dir = ::testing::TempDir();
    v1_path_ = dir + "snapshot_v2_test.v1";
    v2_path_ = dir + "snapshot_v2_test.v2";
    aux_path_ = dir + "snapshot_v2_test.aux";
    LubmConfig cfg;
    cfg.universities = 1;
    cfg.density = 0.2;
    GenerateLubm(cfg, &original_);
    original_.Finalize(GetParam());
    ASSERT_TRUE(SaveSnapshot(original_, v1_path_, SnapshotFormat::kV1).ok());
    ASSERT_TRUE(SaveSnapshot(original_, v2_path_, SnapshotFormat::kV2).ok());
  }
  void TearDown() override {
    std::remove(v1_path_.c_str());
    std::remove(v2_path_.c_str());
    std::remove(aux_path_.c_str());
  }

  /// Loads the v2 file into a fresh finalized database.
  std::unique_ptr<Database> LoadV2(bool allow_mmap,
                                   SnapshotLoadInfo* info = nullptr) {
    auto db = std::make_unique<Database>();
    SnapshotLoadOptions opts;
    opts.allow_mmap = allow_mmap;
    Status st = LoadSnapshot(v2_path_, db.get(), opts, info);
    EXPECT_TRUE(st.ok()) << st.ToString();
    db->Finalize(GetParam());
    return db;
  }

  Database original_;
  std::string v1_path_, v2_path_, aux_path_;
};

INSTANTIATE_TEST_SUITE_P(Engines, SnapshotV2Test,
                         ::testing::Values(EngineKind::kWco,
                                           EngineKind::kHashJoin),
                         [](const auto& info) {
                           return info.param == EngineKind::kWco ? "Wco"
                                                                 : "HashJoin";
                         });

// Claim 1: raw TermId-level query identity against the never-snapshotted
// database, both load modes, parallelism 1 and 8. The dictionary is
// serialized in id order, so the loaded database assigns identical ids
// and rows must match bit for bit, not just as decoded bags.
TEST_P(SnapshotV2Test, MappedAndBufferedLoadsAnswerBitIdentically) {
  for (bool mmap_mode : {true, false}) {
    SnapshotLoadInfo info;
    auto restored = LoadV2(mmap_mode, &info);
    EXPECT_EQ(info.format, SnapshotFormat::kV2);
    if (!mmap_mode) {
      EXPECT_FALSE(info.mapped);
    }

    ASSERT_EQ(restored->size(), original_.size());
    ASSERT_EQ(restored->dict().size(), original_.dict().size());
    ExpectSameCsrLayout(restored->store(), original_.store());
    for (const std::string& q : Workload()) {
      for (size_t parallelism : {size_t{1}, size_t{8}}) {
        BindingSet mine = RunRaw(*restored, q, parallelism);
        BindingSet ref = RunRaw(original_, q, parallelism);
        EXPECT_TRUE(BitIdentical(mine, ref))
            << (mmap_mode ? "mmap" : "buffered") << " parallelism "
            << parallelism << "\n" << q;
      }
    }
  }
}

// The statistics section round-trips exactly: the loaded version's stats
// (adopted, never recomputed) equal a fresh Compute over the same store.
TEST_P(SnapshotV2Test, StatisticsRoundTripExactly) {
  auto restored = LoadV2(true);
  const Statistics& loaded = restored->stats();
  Statistics computed =
      Statistics::Compute(restored->store(), restored->dict());
  EXPECT_EQ(loaded.num_triples(), computed.num_triples());
  EXPECT_EQ(loaded.num_entities(), computed.num_entities());
  EXPECT_EQ(loaded.num_predicates(), computed.num_predicates());
  EXPECT_EQ(loaded.num_literals(), computed.num_literals());
  for (TermId p : restored->store().DistinctFirsts(Perm::kPos)) {
    const PredicateStats& a = loaded.ForPredicate(p);
    const PredicateStats& b = computed.ForPredicate(p);
    EXPECT_EQ(a.count, b.count) << p;
    EXPECT_EQ(a.distinct_subjects, b.distinct_subjects) << p;
    EXPECT_EQ(a.distinct_objects, b.distinct_objects) << p;
  }
}

// Claim 2a: v1 -> v2. Loading the v1 file (full rebuild) and saving v2
// must reproduce the direct v2 file byte for byte — the rebuild and the
// persisted indexes cannot drift apart silently.
TEST_P(SnapshotV2Test, V1LoadResavedAsV2IsByteIdentical) {
  Database via_v1;
  ASSERT_TRUE(LoadSnapshot(v1_path_, &via_v1).ok());
  via_v1.Finalize(GetParam());
  ASSERT_TRUE(SaveSnapshot(via_v1, aux_path_, SnapshotFormat::kV2).ok());
  EXPECT_EQ(ReadFileBytes(aux_path_), ReadFileBytes(v2_path_));
}

// Claim 2b: v2 -> v1. A mapped v2 load re-saved as v1 reproduces the
// original v1 file byte for byte (dictionary order and SPO iteration
// order both survive the round trip).
TEST_P(SnapshotV2Test, V2LoadResavedAsV1IsByteIdentical) {
  auto via_v2 = LoadV2(true);
  ASSERT_TRUE(SaveSnapshot(*via_v2, aux_path_, SnapshotFormat::kV1).ok());
  EXPECT_EQ(ReadFileBytes(aux_path_), ReadFileBytes(v1_path_));
}

// Claim 3: commits on top of a mapped load. BuildDelta reads the borrowed
// arrays and must write an owned layout identical to the one produced by
// committing onto the never-snapshotted database.
TEST_P(SnapshotV2Test, UpdateAfterMappedLoadCommitsIdentically) {
  auto restored = LoadV2(true);
  const char* update =
      "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#> "
      "INSERT DATA { "
      "<http://ex.org/newProf> ub:worksFor <http://www.Department0.University0.edu> . "
      "<http://ex.org/newProf> ub:name \"New Prof\" . "
      "<http://www.Department0.University0.edu> ub:subOrganizationOf "
      "<http://www.University0.edu> }";
  auto c1 = restored->Update(update);
  auto c2 = original_.Update(update);
  ASSERT_TRUE(c1.ok()) << c1.status().ToString();
  ASSERT_TRUE(c2.ok()) << c2.status().ToString();
  EXPECT_EQ(c1->inserted, c2->inserted);
  EXPECT_EQ(c1->store_size, c2->store_size);
  ExpectSameCsrLayout(restored->store(), original_.store());
  for (const std::string& q : Workload()) {
    BindingSet mine = RunRaw(*restored, q, 1);
    BindingSet ref = RunRaw(original_, q, 1);
    EXPECT_TRUE(BitIdentical(mine, ref)) << q;
  }

  // A delete-heavy follow-up exercises the removal path of the merge too.
  const char* removal =
      "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#> "
      "DELETE DATA { <http://ex.org/newProf> ub:name \"New Prof\" }";
  ASSERT_TRUE(restored->Update(removal).ok());
  ASSERT_TRUE(original_.Update(removal).ok());
  ExpectSameCsrLayout(restored->store(), original_.store());
}

// Re-saving a checkpoint over the very file the store is mmap'd from
// must not truncate the borrowed pages mid-serialization (the writer
// publishes via temp-file + rename): the live database keeps answering
// from the old inode, and the republished file loads cleanly.
TEST_P(SnapshotV2Test, ResaveOverMappedFileIsSafe) {
  auto restored = LoadV2(true);
  const std::string q = Workload()[0];
  const size_t rows_before = RunRaw(*restored, q, 1).size();
  ASSERT_TRUE(SaveSnapshot(*restored, v2_path_, SnapshotFormat::kV2).ok());
  EXPECT_EQ(RunRaw(*restored, q, 1).size(), rows_before);
  Database again;
  ASSERT_TRUE(LoadSnapshot(v2_path_, &again).ok());
  again.Finalize(GetParam());
  EXPECT_EQ(again.size(), restored->size());
}

// The dictionary's lazily rebuilt string index: after a bulk v2 load,
// Encode of an existing term must find it (no duplicate ids) and Lookup
// of an absent term must miss cleanly.
TEST_P(SnapshotV2Test, LazyDictionaryIndexFindsExistingTerms) {
  auto restored = LoadV2(true);
  ASSERT_GT(restored->dict().size(), 0u);
  const Term& t0 = restored->dict().Decode(0);
  EXPECT_EQ(restored->dict().Encode(t0), 0u);
  const Term& last = restored->dict().Decode(
      static_cast<TermId>(restored->dict().size() - 1));
  EXPECT_EQ(restored->dict().Lookup(last),
            static_cast<TermId>(restored->dict().size() - 1));
  EXPECT_EQ(restored->dict().Lookup(Term::Iri("http://no.such/term")),
            kInvalidTermId);
}

// ---------------------------------------------------------------------
// Golden fixture + error reporting (format drift canaries)
// ---------------------------------------------------------------------

class SnapshotGoldenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "snapshot_golden_test.bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  /// The fixture database behind tests/data/golden_v1.snapshot: one term
  /// of every kind and qualifier shape. Terms are interned explicitly
  /// up front so ids don't depend on AddTriple's argument evaluation
  /// order (which is compiler-specific).
  static Database BuildGoldenDatabase() {
    Database db;
    db.dict().Encode(Term::Iri("http://example.org/s"));
    db.dict().Encode(Term::Iri("http://example.org/p"));
    db.dict().Encode(Term::Iri("http://example.org/o"));
    db.dict().Encode(Term::Iri("http://example.org/name"));
    db.dict().Encode(Term::LangLiteral("golden", "en"));
    db.dict().Encode(Term::Iri("http://example.org/age"));
    db.dict().Encode(Term::TypedLiteral(
        "41", "http://www.w3.org/2001/XMLSchema#integer"));
    db.dict().Encode(Term::Blank("b0"));
    db.dict().Encode(Term::Literal("plain"));
    db.AddTriple(Term::Iri("http://example.org/s"),
                 Term::Iri("http://example.org/p"),
                 Term::Iri("http://example.org/o"));
    db.AddTriple(Term::Iri("http://example.org/s"),
                 Term::Iri("http://example.org/name"),
                 Term::LangLiteral("golden", "en"));
    db.AddTriple(Term::Iri("http://example.org/s"),
                 Term::Iri("http://example.org/age"),
                 Term::TypedLiteral("41", "http://www.w3.org/2001/XMLSchema#integer"));
    db.AddTriple(Term::Blank("b0"), Term::Iri("http://example.org/p"),
                 Term::Literal("plain"));
    db.Finalize();
    return db;
  }

  std::string path_;
};

// The committed golden v1 fixture still loads and answers a smoke query;
// any incompatible change to the v1 reader breaks this first.
TEST_F(SnapshotGoldenTest, CommittedV1FixtureLoads) {
  const std::string golden = std::string(SPARQLUO_TEST_DATA_DIR) +
                             "/golden_v1.snapshot";
  Database db;
  SnapshotLoadInfo info;
  ASSERT_TRUE(LoadSnapshot(golden, &db, {}, &info).ok());
  EXPECT_EQ(info.format, SnapshotFormat::kV1);
  db.Finalize();
  EXPECT_EQ(db.size(), 4u);
  auto r = db.Query(
      "SELECT ?o WHERE { <http://example.org/s> <http://example.org/name> ?o }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);
}

// The v1 *writer* still produces exactly the committed bytes; any writer
// change that would strand existing snapshot files fails here.
TEST_F(SnapshotGoldenTest, V1WriterReproducesCommittedFixtureBytes) {
  Database db = BuildGoldenDatabase();
  ASSERT_TRUE(SaveSnapshot(db, path_, SnapshotFormat::kV1).ok());
  EXPECT_EQ(ReadFileBytes(path_),
            ReadFileBytes(std::string(SPARQLUO_TEST_DATA_DIR) +
                          "/golden_v1.snapshot"))
      << "v1 writer output drifted from tests/data/golden_v1.snapshot; if "
         "the format changed on purpose, bump the magic instead";
}

// Error-reporting regression (both formats): a short file must name the
// failing section and byte offset, not just say "read error".
TEST_F(SnapshotGoldenTest, V1TruncationErrorsNameSectionAndOffset) {
  Database db = BuildGoldenDatabase();
  ASSERT_TRUE(SaveSnapshot(db, path_, SnapshotFormat::kV1).ok());
  std::string bytes = ReadFileBytes(path_);
  // Cut inside the term section (just past the first record's kind byte).
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), 17);
  out.close();
  Database fresh;
  Status st = LoadSnapshot(path_, &fresh);
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("terms"), std::string::npos) << st.ToString();
  EXPECT_NE(st.message().find("offset"), std::string::npos) << st.ToString();

  // An empty v1 header: the 'terms' count itself is missing at offset 8.
  std::ofstream out2(path_, std::ios::binary | std::ios::trunc);
  out2.write(bytes.data(), 8);
  out2.close();
  Database fresh2;
  st = LoadSnapshot(path_, &fresh2);
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("offset 8"), std::string::npos) << st.ToString();
}

TEST_F(SnapshotGoldenTest, V2TruncationErrorsNameSectionAndOffset) {
  Database db = BuildGoldenDatabase();
  ASSERT_TRUE(SaveSnapshot(db, path_, SnapshotFormat::kV2).ok());
  std::string bytes = ReadFileBytes(path_);
  // Keep the header and TOC but amputate the payloads: every section
  // lands out of bounds, and the error must say which one and where.
  ASSERT_GT(bytes.size(), 400u);  // 16-byte header + 12 x 32-byte TOC
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), 400);
  out.close();
  Database fresh;
  Status st = LoadSnapshot(path_, &fresh);
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("section"), std::string::npos) << st.ToString();
  EXPECT_NE(st.message().find("offset"), std::string::npos) << st.ToString();
}

}  // namespace
}  // namespace sparqluo
