#include <gtest/gtest.h>

#include <sstream>

#include "rdf/dictionary.h"
#include "rdf/ntriples.h"
#include "rdf/statistics.h"
#include "rdf/term.h"
#include "rdf/triple_store.h"

namespace sparqluo {
namespace {

// ---------------------------------------------------------------- Term ---

TEST(TermTest, IriToString) {
  EXPECT_EQ(Term::Iri("http://ex.org/a").ToString(), "<http://ex.org/a>");
}

TEST(TermTest, PlainLiteralToString) {
  EXPECT_EQ(Term::Literal("hello").ToString(), "\"hello\"");
}

TEST(TermTest, LangLiteralToString) {
  EXPECT_EQ(Term::LangLiteral("Bill Clinton", "en").ToString(),
            "\"Bill Clinton\"@en");
}

TEST(TermTest, TypedLiteralToString) {
  EXPECT_EQ(Term::TypedLiteral("1946-08-19",
                               "http://www.w3.org/2001/XMLSchema#date")
                .ToString(),
            "\"1946-08-19\"^^<http://www.w3.org/2001/XMLSchema#date>");
}

TEST(TermTest, BlankToString) {
  EXPECT_EQ(Term::Blank("b0").ToString(), "_:b0");
}

TEST(TermTest, LiteralEscaping) {
  Term t = Term::Literal("line\n\"q\"");
  EXPECT_EQ(t.ToString(), "\"line\\n\\\"q\\\"\"");
}

TEST(TermTest, ParseRoundTripAllKinds) {
  std::vector<Term> terms = {
      Term::Iri("http://ex.org/x"),
      Term::Literal("plain"),
      Term::LangLiteral("text", "en"),
      Term::TypedLiteral("5", "http://www.w3.org/2001/XMLSchema#integer"),
      Term::Blank("node1"),
      Term::Literal("esc\\aped \"str\"\n"),
  };
  for (const Term& t : terms) {
    auto parsed = Term::Parse(t.ToString());
    ASSERT_TRUE(parsed.ok()) << t.ToString() << ": "
                             << parsed.status().ToString();
    EXPECT_EQ(*parsed, t) << t.ToString();
  }
}

TEST(TermTest, ParseErrors) {
  EXPECT_FALSE(Term::Parse("").ok());
  EXPECT_FALSE(Term::Parse("<unterminated").ok());
  EXPECT_FALSE(Term::Parse("\"unterminated").ok());
  EXPECT_FALSE(Term::Parse("noangle").ok());
}

TEST(TermTest, CanonicalKeyDisjointAcrossKinds) {
  // Same lexical form, different kinds must not collide in the dictionary.
  EXPECT_NE(Term::Iri("x").CanonicalKey(), Term::Literal("x").CanonicalKey());
  EXPECT_NE(Term::Blank("x").CanonicalKey(), Term::Literal("x").CanonicalKey());
  EXPECT_NE(Term::LangLiteral("x", "en").CanonicalKey(),
            Term::Literal("x").CanonicalKey());
  EXPECT_NE(Term::TypedLiteral("x", "dt").CanonicalKey(),
            Term::LangLiteral("x", "dt").CanonicalKey());
}

// ---------------------------------------------------------- Dictionary ---

TEST(DictionaryTest, EncodeAssignsDenseIds) {
  Dictionary d;
  TermId a = d.Encode(Term::Iri("a"));
  TermId b = d.Encode(Term::Iri("b"));
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(d.size(), 2u);
}

TEST(DictionaryTest, EncodeIsIdempotent) {
  Dictionary d;
  TermId a1 = d.Encode(Term::Iri("a"));
  TermId a2 = d.Encode(Term::Iri("a"));
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(d.size(), 1u);
}

TEST(DictionaryTest, LookupNeverInserts) {
  Dictionary d;
  EXPECT_EQ(d.Lookup(Term::Iri("missing")), kInvalidTermId);
  EXPECT_EQ(d.size(), 0u);
}

TEST(DictionaryTest, DecodeInverse) {
  Dictionary d;
  Term t = Term::LangLiteral("hello", "en");
  TermId id = d.Encode(t);
  EXPECT_EQ(d.Decode(id), t);
}

TEST(DictionaryTest, CountsLiterals) {
  Dictionary d;
  d.Encode(Term::Iri("a"));
  d.Encode(Term::Literal("x"));
  d.Encode(Term::LangLiteral("y", "en"));
  EXPECT_EQ(d.literal_count(), 2u);
}

TEST(DictionaryTest, ToStringUnbound) {
  Dictionary d;
  EXPECT_EQ(d.ToString(kInvalidTermId), "UNBOUND");
}

// --------------------------------------------------------- TripleStore ---

class TripleStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A small graph: edges (i, p0, i+1) for i in 0..9 and (i, p1, 0).
    for (TermId i = 0; i < 10; ++i) {
      store_.Add(Triple(i, 100, i + 1));
      store_.Add(Triple(i, 101, 0));
    }
    store_.Add(Triple(5, 100, 7));  // extra fan-out from 5
    store_.Build();
  }

  size_t CountScan(const TriplePatternIds& q) {
    size_t n = 0;
    store_.Scan(q, [&](const Triple&) {
      ++n;
      return true;
    });
    return n;
  }

  TripleStore store_;
};

TEST_F(TripleStoreTest, SizeAfterBuild) { EXPECT_EQ(store_.size(), 21u); }

TEST_F(TripleStoreTest, DeduplicatesOnBuild) {
  TripleStore s;
  s.Add(Triple(1, 2, 3));
  s.Add(Triple(1, 2, 3));
  s.Build();
  EXPECT_EQ(s.size(), 1u);
}

TEST_F(TripleStoreTest, ScanFullyUnbound) {
  TriplePatternIds q;
  EXPECT_EQ(CountScan(q), 21u);
}

TEST_F(TripleStoreTest, ScanBySubject) {
  TriplePatternIds q;
  q.s = 5;
  EXPECT_EQ(CountScan(q), 3u);  // (5,100,6), (5,100,7), (5,101,0)
}

TEST_F(TripleStoreTest, ScanBySubjectPredicate) {
  TriplePatternIds q;
  q.s = 5;
  q.p = 100;
  EXPECT_EQ(CountScan(q), 2u);
}

TEST_F(TripleStoreTest, ScanByPredicate) {
  TriplePatternIds q;
  q.p = 101;
  EXPECT_EQ(CountScan(q), 10u);
}

TEST_F(TripleStoreTest, ScanByPredicateObject) {
  TriplePatternIds q;
  q.p = 101;
  q.o = 0;
  EXPECT_EQ(CountScan(q), 10u);
}

TEST_F(TripleStoreTest, ScanByObject) {
  TriplePatternIds q;
  q.o = 0;
  EXPECT_EQ(CountScan(q), 10u);
}

TEST_F(TripleStoreTest, ScanBySubjectObject) {
  TriplePatternIds q;
  q.s = 5;
  q.o = 7;
  EXPECT_EQ(CountScan(q), 1u);
}

TEST_F(TripleStoreTest, ScanFullyBound) {
  TriplePatternIds q;
  q.s = 5;
  q.p = 100;
  q.o = 7;
  EXPECT_EQ(CountScan(q), 1u);
  q.o = 9;
  EXPECT_EQ(CountScan(q), 0u);
}

TEST_F(TripleStoreTest, ScanEarlyStop) {
  TriplePatternIds q;
  size_t n = 0;
  store_.Scan(q, [&](const Triple&) {
    ++n;
    return n < 5;
  });
  EXPECT_EQ(n, 5u);
}

TEST_F(TripleStoreTest, CountMatchesScanOnAllShapes) {
  std::vector<TriplePatternIds> shapes;
  TriplePatternIds q;
  shapes.push_back(q);
  q.s = 5; shapes.push_back(q);
  q.p = 100; shapes.push_back(q);
  q.o = 6; shapes.push_back(q);
  q.p = kInvalidTermId; shapes.push_back(q);       // s, o
  q.s = kInvalidTermId; shapes.push_back(q);       // o
  q.p = 100; shapes.push_back(q);                  // p, o
  q.o = kInvalidTermId; shapes.push_back(q);       // p
  for (const auto& shape : shapes)
    EXPECT_EQ(store_.Count(shape), CountScan(shape));
}

TEST_F(TripleStoreTest, Contains) {
  EXPECT_TRUE(store_.Contains(Triple(0, 100, 1)));
  EXPECT_FALSE(store_.Contains(Triple(0, 100, 2)));
}

TEST_F(TripleStoreTest, TriplesSortedSpo) {
  // triples() materializes elements on access (the CSR layout holds no
  // flat array), so copy each one out before comparing.
  auto ts = store_.triples();
  for (size_t i = 1; i < ts.size(); ++i) {
    Triple prev = ts[i - 1], cur = ts[i];
    bool ordered = std::tie(prev.s, prev.p, prev.o) <
                   std::tie(cur.s, cur.p, cur.o);
    EXPECT_TRUE(ordered);
  }
}

TEST_F(TripleStoreTest, TripleViewIterationMatchesIndexing) {
  auto ts = store_.triples();
  size_t i = 0;
  for (const Triple& t : ts) {
    EXPECT_EQ(t, ts[i]);
    ++i;
  }
  EXPECT_EQ(i, ts.size());
}

TEST_F(TripleStoreTest, DistinctFirstsPerPermutation) {
  // Subjects 0..10 (10 gains in-degree only; subjects are 0..9 plus the
  // dedicated extra edge source 5 — distinct subjects are 0..9).
  EXPECT_EQ(store_.DistinctFirsts(Perm::kSpo).size(), 10u);
  EXPECT_EQ(store_.DistinctFirsts(Perm::kPos).size(), 2u);   // p100, p101
  EXPECT_EQ(store_.DistinctFirsts(Perm::kOsp).size(), 11u);  // objects 0..10
}

TEST_F(TripleStoreTest, ForEachGroupCoversEveryTriple) {
  for (Perm perm : {Perm::kSpo, Perm::kPos, Perm::kOsp}) {
    size_t total = 0;
    TermId last_first = 0;
    bool first_group = true;
    store_.ForEachGroup(perm, [&](TermId first, std::span<const IdPair> pairs) {
      EXPECT_FALSE(pairs.empty());
      if (!first_group) EXPECT_GT(first, last_first);
      first_group = false;
      last_first = first;
      EXPECT_TRUE(std::is_sorted(pairs.begin(), pairs.end()));
      total += pairs.size();
    });
    EXPECT_EQ(total, store_.size());
  }
}

TEST_F(TripleStoreTest, IndexBytesBelowFlatBaseline) {
  EXPECT_LT(store_.IndexBytes(), 3 * sizeof(Triple) * store_.size());
}

TEST_F(TripleStoreTest, ProbeHintedLookupsMatchCold) {
  // A sorted probe sequence through one hint must agree with cold probes.
  TripleStore::ProbeHint hint;
  for (TermId s = 0; s <= 11; ++s) {
    TriplePatternIds q;
    q.s = s;
    EXPECT_EQ(store_.Count(q, &hint), store_.Count(q)) << s;
  }
  // Descending and repeated probes exercise the leftward gallop.
  for (TermId s : {11u, 5u, 5u, 0u, 9u, 2u}) {
    TriplePatternIds q;
    q.s = s;
    EXPECT_EQ(store_.Count(q, &hint), store_.Count(q)) << s;
    EXPECT_EQ(store_.Contains(Triple(s, 100, s + 1), &hint),
              store_.Contains(Triple(s, 100, s + 1)))
        << s;
  }
}

// ---------------------------------------------------------- Statistics ---

TEST(StatisticsTest, TableTwoColumns) {
  Dictionary dict;
  TripleStore store;
  auto iri = [&](const std::string& s) { return dict.Encode(Term::Iri(s)); };
  auto lit = [&](const std::string& s) { return dict.Encode(Term::Literal(s)); };
  TermId name = iri("p/name"), knows = iri("p/knows");
  store.Add(Triple(iri("a"), name, lit("A")));
  store.Add(Triple(iri("b"), name, lit("B")));
  store.Add(Triple(iri("a"), knows, iri("b")));
  store.Add(Triple(iri("b"), knows, iri("c")));
  store.Build();
  Statistics st = Statistics::Compute(store, dict);
  EXPECT_EQ(st.num_triples(), 4u);
  EXPECT_EQ(st.num_predicates(), 2u);
  EXPECT_EQ(st.num_literals(), 2u);
  // Entities: a, b, c (predicates are not subjects/objects here).
  EXPECT_EQ(st.num_entities(), 3u);
}

TEST(StatisticsTest, PredicateFanout) {
  Dictionary dict;
  TripleStore store;
  auto iri = [&](const std::string& s) { return dict.Encode(Term::Iri(s)); };
  TermId p = iri("p");
  // One subject with 4 objects: avg_out = 4, avg_in = 1.
  for (TermId o = 0; o < 4; ++o)
    store.Add(Triple(iri("hub"), p, iri("o" + std::to_string(o))));
  store.Build();
  Statistics st = Statistics::Compute(store, dict);
  const PredicateStats& ps = st.ForPredicate(p);
  EXPECT_EQ(ps.count, 4u);
  EXPECT_DOUBLE_EQ(ps.avg_out(), 4.0);
  EXPECT_DOUBLE_EQ(ps.avg_in(), 1.0);
}

TEST(StatisticsTest, UnknownPredicateIsZero) {
  Dictionary dict;
  TripleStore store;
  store.Build();
  Statistics st = Statistics::Compute(store, dict);
  EXPECT_EQ(st.ForPredicate(12345).count, 0u);
  EXPECT_DOUBLE_EQ(st.ForPredicate(12345).avg_out(), 0.0);
}

// ------------------------------------------------------------ NTriples ---

TEST(NTriplesTest, ParseBasic) {
  Dictionary dict;
  TripleStore store;
  std::string text =
      "<http://a> <http://p> <http://b> .\n"
      "# a comment\n"
      "\n"
      "<http://a> <http://name> \"Alice\"@en .\n"
      "<http://a> <http://age> \"30\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n"
      "_:b1 <http://p> <http://a> .\n";
  ASSERT_TRUE(ParseNTriplesString(text, &dict, &store).ok());
  store.Build();
  EXPECT_EQ(store.size(), 4u);
}

TEST(NTriplesTest, ParseRejectsMalformed) {
  Dictionary dict;
  TripleStore store;
  EXPECT_FALSE(ParseNTriplesString("<a> <b>\n", &dict, &store).ok());
  EXPECT_FALSE(
      ParseNTriplesString("<a> <b> <c>\n", &dict, &store).ok());  // missing dot
}

TEST(NTriplesTest, LiteralWithEscapedQuote) {
  Dictionary dict;
  TripleStore store;
  std::string text = "<http://a> <http://p> \"say \\\"hi\\\" now\" .\n";
  ASSERT_TRUE(ParseNTriplesString(text, &dict, &store).ok());
  store.Build();
  ASSERT_EQ(store.size(), 1u);
  Term o = dict.Decode(store.triples()[0].o);
  EXPECT_EQ(o.lexical, "say \"hi\" now");
}

TEST(NTriplesTest, WriteReadRoundTrip) {
  Dictionary dict;
  TripleStore store;
  std::string text =
      "<http://a> <http://p> <http://b> .\n"
      "<http://a> <http://name> \"Alice \\\"A\\\"\"@en .\n";
  ASSERT_TRUE(ParseNTriplesString(text, &dict, &store).ok());
  store.Build();
  std::ostringstream out;
  WriteNTriples(store, dict, out);

  Dictionary dict2;
  TripleStore store2;
  ASSERT_TRUE(ParseNTriplesString(out.str(), &dict2, &store2).ok());
  store2.Build();
  EXPECT_EQ(store2.size(), store.size());
}

TEST(NTriplesTest, MissingFile) {
  Dictionary dict;
  TripleStore store;
  Status s = LoadNTriplesFile("/nonexistent/file.nt", &dict, &store);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace sparqluo
