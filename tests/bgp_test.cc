#include <gtest/gtest.h>

#include <sstream>

#include "algebra/operators.h"
#include "bgp/cardinality.h"
#include "bgp/engine.h"
#include "engine/database.h"
#include "sparql/parser.h"

namespace sparqluo {
namespace {

/// Fixture with a small social graph loaded under both engines.
class BgpEngineTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  void SetUp() override {
    // People a..e, knows edges, names, ages, one hub city.
    std::string nt;
    auto iri = [](const std::string& s) { return "<http://ex.org/" + s + ">"; };
    auto triple = [&](const std::string& s, const std::string& p,
                      const std::string& o) {
      nt += iri(s) + " " + iri(p) + " " + o + " .\n";
    };
    triple("a", "knows", iri("b"));
    triple("a", "knows", iri("c"));
    triple("b", "knows", iri("c"));
    triple("c", "knows", iri("d"));
    triple("d", "knows", iri("e"));
    triple("e", "knows", iri("a"));
    for (const char* person : {"a", "b", "c", "d", "e"}) {
      triple(person, "name", "\"" + std::string(person) + "\"");
      triple(person, "livesIn", iri("city"));
    }
    triple("a", "age", "\"30\"");
    triple("b", "age", "\"40\"");
    ASSERT_TRUE(db_.LoadNTriplesString(nt).ok());
    db_.Finalize(GetParam());
  }

  /// Parses the body of a BGP (triple patterns only) and returns it.
  Bgp ParseBgp(const std::string& body) {
    auto g = ParseGroupGraphPattern("{" + body + "}", &vars_);
    EXPECT_TRUE(g.ok()) << g.status().ToString();
    Bgp bgp;
    for (const auto& e : g->elements) {
      EXPECT_EQ(e.kind, PatternElement::Kind::kTriple);
      bgp.triples.push_back(e.triple);
    }
    return bgp;
  }

  BindingSet Eval(const std::string& body, const CandidateMap* cands = nullptr) {
    Bgp bgp = ParseBgp(body);
    return db_.engine().Evaluate(bgp, cands, nullptr);
  }

  Database db_;
  VarTable vars_;
};

INSTANTIATE_TEST_SUITE_P(Engines, BgpEngineTest,
                         ::testing::Values(EngineKind::kWco,
                                           EngineKind::kHashJoin),
                         [](const auto& info) {
                           return info.param == EngineKind::kWco ? "Wco"
                                                                 : "HashJoin";
                         });

TEST_P(BgpEngineTest, SingleTriplePattern) {
  BindingSet r = Eval("?x <http://ex.org/knows> ?y .");
  EXPECT_EQ(r.size(), 6u);
}

TEST_P(BgpEngineTest, BoundSubject) {
  BindingSet r = Eval("<http://ex.org/a> <http://ex.org/knows> ?y .");
  EXPECT_EQ(r.size(), 2u);
}

TEST_P(BgpEngineTest, BoundObject) {
  BindingSet r = Eval("?x <http://ex.org/knows> <http://ex.org/c> .");
  EXPECT_EQ(r.size(), 2u);
}

TEST_P(BgpEngineTest, TwoHopPath) {
  BindingSet r = Eval(
      "?x <http://ex.org/knows> ?y . ?y <http://ex.org/knows> ?z .");
  // Paths of length 2: a-b-c, a-c-d, b-c-d, c-d-e, d-e-a, e-a-b, e-a-c.
  EXPECT_EQ(r.size(), 7u);
}

TEST_P(BgpEngineTest, TriangleQuery) {
  BindingSet r = Eval(
      "?x <http://ex.org/knows> ?y . ?y <http://ex.org/knows> ?z . "
      "?x <http://ex.org/knows> ?z .");
  // Only a->b->c with a->c.
  EXPECT_EQ(r.size(), 1u);
  VarId x = vars_.Lookup("x");
  ASSERT_NE(x, kInvalidVarId);
  EXPECT_EQ(db_.dict().Decode(r.Value(0, x)).lexical, "http://ex.org/a");
}

TEST_P(BgpEngineTest, StarQuery) {
  BindingSet r = Eval(
      "?x <http://ex.org/name> ?n . ?x <http://ex.org/age> ?a . "
      "?x <http://ex.org/livesIn> ?c .");
  EXPECT_EQ(r.size(), 2u);  // only a and b have ages
}

TEST_P(BgpEngineTest, EmptyResultOnMissingConstant) {
  BindingSet r = Eval("?x <http://ex.org/nosuchpredicate> ?y .");
  EXPECT_TRUE(r.empty());
}

TEST_P(BgpEngineTest, GroundTripleTrue) {
  BindingSet r = Eval(
      "<http://ex.org/a> <http://ex.org/knows> <http://ex.org/b> . "
      "?x <http://ex.org/age> ?v .");
  EXPECT_EQ(r.size(), 2u);
}

TEST_P(BgpEngineTest, GroundTripleFalse) {
  BindingSet r = Eval(
      "<http://ex.org/b> <http://ex.org/knows> <http://ex.org/a> . "
      "?x <http://ex.org/age> ?v .");
  EXPECT_TRUE(r.empty());
}

TEST_P(BgpEngineTest, VariablePredicate) {
  BindingSet r = Eval("<http://ex.org/a> ?p ?o .");
  EXPECT_EQ(r.size(), 5u);  // 2 knows + name + livesIn + age
}

TEST_P(BgpEngineTest, VariablePredicateJoined) {
  BindingSet r = Eval(
      "?x <http://ex.org/age> ?a . ?x ?p <http://ex.org/city> .");
  EXPECT_EQ(r.size(), 2u);
}

TEST_P(BgpEngineTest, EmptyBgpIsUnit) {
  Bgp empty;
  BindingSet r = db_.engine().Evaluate(empty);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(r.width(), 0u);
}

TEST_P(BgpEngineTest, EnginesAgreeWithEachOther) {
  Database other;
  // Rebuild the same data under the other engine.
  std::ostringstream nt;
  WriteNTriples(db_.store(), db_.dict(), nt);
  ASSERT_TRUE(other.LoadNTriplesString(nt.str()).ok());
  other.Finalize(GetParam() == EngineKind::kWco ? EngineKind::kHashJoin
                                                : EngineKind::kWco);
  for (const char* body :
       {"?x <http://ex.org/knows> ?y .",
        "?x <http://ex.org/knows> ?y . ?y <http://ex.org/knows> ?z .",
        "?x <http://ex.org/name> ?n . ?x <http://ex.org/age> ?a ."}) {
    VarTable vars2;
    auto g1 = ParseGroupGraphPattern(std::string("{") + body + "}", &vars_);
    auto g2 = ParseGroupGraphPattern(std::string("{") + body + "}", &vars2);
    ASSERT_TRUE(g1.ok() && g2.ok());
    Bgp b1, b2;
    for (const auto& e : g1->elements) b1.triples.push_back(e.triple);
    for (const auto& e : g2->elements) b2.triples.push_back(e.triple);
    BindingSet r1 = db_.engine().Evaluate(b1);
    BindingSet r2 = other.engine().Evaluate(b2);
    EXPECT_EQ(r1.size(), r2.size()) << body;
  }
}

TEST_P(BgpEngineTest, CandidatePruningRestrictsValues) {
  VarTable vars;
  auto g = ParseGroupGraphPattern("{ ?x <http://ex.org/knows> ?y . }", &vars);
  ASSERT_TRUE(g.ok());
  Bgp bgp;
  bgp.triples.push_back(g->elements[0].triple);
  VarId x = vars.Lookup("x");

  CandidateMap cands;
  TermId a = db_.dict().Lookup(Term::Iri("http://ex.org/a"));
  ASSERT_NE(a, kInvalidTermId);
  cands.Set_(x, {a});
  BgpEvalCounters counters;
  BindingSet r = db_.engine().Evaluate(bgp, &cands, &counters);
  EXPECT_EQ(r.size(), 2u);  // a knows b, c
  for (size_t i = 0; i < r.size(); ++i) EXPECT_EQ(r.Value(i, x), a);
}

TEST_P(BgpEngineTest, CandidatePruningNeverChangesResultsOnJoin) {
  VarTable vars;
  auto g = ParseGroupGraphPattern(
      "{ ?x <http://ex.org/knows> ?y . ?y <http://ex.org/name> ?n . }", &vars);
  ASSERT_TRUE(g.ok());
  Bgp bgp;
  for (const auto& e : g->elements) bgp.triples.push_back(e.triple);

  BindingSet full = db_.engine().Evaluate(bgp);
  // A candidate set containing every subject value must be a no-op.
  CandidateMap cands;
  CandidateMap::Set all;
  VarId x = vars.Lookup("x");
  size_t col = full.ColumnOf(x);
  ASSERT_NE(col, SIZE_MAX);
  for (size_t i = 0; i < full.size(); ++i) all.insert(full.At(i, col));
  cands.Set_(x, all);
  BindingSet pruned = db_.engine().Evaluate(bgp, &cands, nullptr);
  EXPECT_TRUE(BagEquals(full, pruned));
}

TEST_P(BgpEngineTest, CostIsPositiveAndMonotonicInPatterns) {
  Bgp one = ParseBgp("?x <http://ex.org/knows> ?y .");
  Bgp two = ParseBgp(
      "?x <http://ex.org/knows> ?y . ?y <http://ex.org/knows> ?z .");
  EXPECT_GT(db_.engine().EstimateCost(one), 0.0);
  EXPECT_GE(db_.engine().EstimateCost(two), db_.engine().EstimateCost(one));
}

// ------------------------------------------------ CardinalityEstimator ---

class EstimatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string nt;
    for (int i = 0; i < 100; ++i) {
      nt += "<http://e/" + std::to_string(i) + "> <http://p/type> <http://c/T> .\n";
      nt += "<http://e/" + std::to_string(i) + "> <http://p/val> \"" +
            std::to_string(i % 10) + "\" .\n";
    }
    ASSERT_TRUE(db_.LoadNTriplesString(nt).ok());
    db_.Finalize(EngineKind::kWco);
  }
  Database db_;
  VarTable vars_;
};

TEST_F(EstimatorTest, SinglePatternIsExact) {
  auto g = ParseGroupGraphPattern("{ ?x <http://p/type> ?t . }", &vars_);
  ASSERT_TRUE(g.ok());
  const CardinalityEstimator& est = db_.engine().estimator();
  EXPECT_DOUBLE_EQ(est.EstimateTriple(g->elements[0].triple), 100.0);
}

TEST_F(EstimatorTest, MissingConstantIsZero) {
  auto g = ParseGroupGraphPattern("{ ?x <http://p/none> ?t . }", &vars_);
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(db_.engine().estimator().EstimateTriple(g->elements[0].triple),
                   0.0);
}

TEST_F(EstimatorTest, JoinEstimateInRightBallpark) {
  auto g = ParseGroupGraphPattern(
      "{ ?x <http://p/type> ?t . ?x <http://p/val> ?v . }", &vars_);
  ASSERT_TRUE(g.ok());
  Bgp bgp;
  for (const auto& e : g->elements) bgp.triples.push_back(e.triple);
  double est = db_.engine().estimator().EstimateBgp(bgp);
  // The true join size is 100; the sampling estimate should land within 2x.
  EXPECT_GE(est, 50.0);
  EXPECT_LE(est, 200.0);
}

TEST_F(EstimatorTest, GreedyOrderStartsSelective) {
  auto g = ParseGroupGraphPattern(
      "{ ?x <http://p/type> ?t . ?x <http://p/val> \"3\" . }", &vars_);
  ASSERT_TRUE(g.ok());
  Bgp bgp;
  for (const auto& e : g->elements) bgp.triples.push_back(e.triple);
  auto order = db_.engine().estimator().GreedyOrder(bgp);
  ASSERT_EQ(order.size(), 2u);
  // Pattern 1 (val="3", 10 matches) is more selective than pattern 0 (100).
  EXPECT_EQ(order[0], 1u);
}

TEST_F(EstimatorTest, EmptyBgpIsOne) {
  Bgp empty;
  EXPECT_DOUBLE_EQ(db_.engine().estimator().EstimateBgp(empty), 1.0);
}

}  // namespace
}  // namespace sparqluo
