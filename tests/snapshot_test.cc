// Binary snapshot round-trip and corruption handling.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "algebra/operators.h"
#include "engine/snapshot.h"
#include "workload/lubm_generator.h"

namespace sparqluo {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "snapshot_test.bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(SnapshotTest, RoundTripPreservesQueryResults) {
  Database original;
  LubmConfig cfg;
  cfg.universities = 1;
  cfg.density = 0.1;
  GenerateLubm(cfg, &original);
  original.Finalize(EngineKind::kWco);

  ASSERT_TRUE(SaveSnapshot(original, path_).ok());

  Database restored;
  ASSERT_TRUE(LoadSnapshot(path_, &restored).ok());
  restored.Finalize(EngineKind::kWco);

  EXPECT_EQ(restored.size(), original.size());
  EXPECT_EQ(restored.dict().size(), original.dict().size());

  const std::string q =
      "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
      "SELECT * WHERE { ?x ub:headOf ?d . OPTIONAL { ?y ub:worksFor ?d . } }";
  auto r1 = original.Query(q, ExecOptions::Full());
  auto r2 = restored.Query(q, ExecOptions::Full());
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_TRUE(BagEquals(*r1, *r2));
}

TEST_F(SnapshotTest, RoundTripPreservesTermKinds) {
  Database db;
  db.AddTriple(Term::Iri("http://a"), Term::Iri("http://p"),
               Term::LangLiteral("hello", "en"));
  db.AddTriple(Term::Iri("http://a"), Term::Iri("http://q"),
               Term::TypedLiteral("5", "http://dt"));
  db.AddTriple(Term::Blank("b0"), Term::Iri("http://p"), Term::Literal("x"));
  db.Finalize();
  ASSERT_TRUE(SaveSnapshot(db, path_).ok());

  Database restored;
  ASSERT_TRUE(LoadSnapshot(path_, &restored).ok());
  restored.Finalize();
  ASSERT_EQ(restored.dict().size(), db.dict().size());
  for (TermId id = 0; id < db.dict().size(); ++id)
    EXPECT_EQ(restored.dict().Decode(id), db.dict().Decode(id)) << id;
}

TEST_F(SnapshotTest, LoadRejectsNonEmptyDatabase) {
  Database db;
  db.AddTriple(Term::Iri("a"), Term::Iri("p"), Term::Iri("b"));
  db.Finalize();
  ASSERT_TRUE(SaveSnapshot(db, path_).ok());
  Status st = LoadSnapshot(path_, &db);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotTest, LoadRejectsMissingFile) {
  Database db;
  EXPECT_EQ(LoadSnapshot("/nonexistent/snap.bin", &db).code(),
            StatusCode::kNotFound);
}

TEST_F(SnapshotTest, LoadRejectsBadMagic) {
  std::ofstream out(path_, std::ios::binary);
  out << "NOTASNAPSHOT____________";
  out.close();
  Database db;
  EXPECT_EQ(LoadSnapshot(path_, &db).code(), StatusCode::kParseError);
}

TEST_F(SnapshotTest, LoadRejectsTruncatedFile) {
  Database db;
  db.AddTriple(Term::Iri("http://a"), Term::Iri("http://p"),
               Term::Iri("http://b"));
  db.Finalize();
  ASSERT_TRUE(SaveSnapshot(db, path_).ok());
  // Truncate to half.
  std::ifstream in(path_, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
  out.close();
  Database fresh;
  Status st = LoadSnapshot(path_, &fresh);
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  // Regression: short v1 files used to report a generic read error; the
  // message must now carry the failing section and byte offset.
  EXPECT_NE(st.message().find("section"), std::string::npos) << st.ToString();
  EXPECT_NE(st.message().find("offset"), std::string::npos) << st.ToString();
}

}  // namespace
}  // namespace sparqluo
