// Failure-injection / fuzz-style robustness: the parsers and loaders must
// reject arbitrary malformed input with a Status — never crash, hang or
// accept garbage silently.
#include <gtest/gtest.h>

#include "engine/database.h"
#include "rdf/ntriples.h"
#include "sparql/parser.h"
#include "util/random.h"

namespace sparqluo {
namespace {

/// Random printable strings.
std::string RandomJunk(Random* rng, size_t max_len) {
  size_t len = rng->Uniform(max_len);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i)
    s += static_cast<char>(32 + rng->Uniform(95));
  return s;
}

/// Mutates a valid query by deleting/duplicating/flipping characters.
std::string Mutate(Random* rng, std::string s, int edits) {
  for (int e = 0; e < edits && !s.empty(); ++e) {
    size_t pos = rng->Uniform(s.size());
    switch (rng->Uniform(3)) {
      case 0: s.erase(pos, 1); break;
      case 1: s.insert(pos, 1, s[pos]); break;
      default: s[pos] = static_cast<char>(32 + rng->Uniform(95));
    }
  }
  return s;
}

class RobustnessTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, RobustnessTest, ::testing::Range(0, 8));

TEST_P(RobustnessTest, ParserNeverCrashesOnJunk) {
  Random rng(9000 + static_cast<uint64_t>(GetParam()));
  for (int i = 0; i < 200; ++i) {
    std::string junk = RandomJunk(&rng, 120);
    auto r = ParseQuery(junk);  // outcome irrelevant; must not crash
    (void)r;
  }
}

TEST_P(RobustnessTest, ParserNeverCrashesOnMutatedQueries) {
  Random rng(9100 + static_cast<uint64_t>(GetParam()));
  const std::string valid =
      "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
      "SELECT ?x ?y WHERE { ?x ub:worksFor ?d . { ?x ub:headOf ?d . } UNION "
      "{ ?y ub:advisor ?x . } OPTIONAL { ?x ub:name ?n . } FILTER(?n = \"a\") "
      "} ORDER BY ?x LIMIT 10";
  for (int i = 0; i < 200; ++i) {
    std::string mutated = Mutate(&rng, valid, 1 + static_cast<int>(rng.Uniform(6)));
    auto r = ParseQuery(mutated);
    if (r.ok()) {
      // If a mutation still parses, executing it must also be safe.
      Database db;
      db.AddTriple(Term::Iri("http://a"), Term::Iri("http://p"),
                   Term::Iri("http://b"));
      db.Finalize();
      ExecOptions opts = ExecOptions::Full();
      opts.max_intermediate_rows = 100000;
      auto exec = db.executor().Execute(*r, opts);
      (void)exec;
    }
  }
}

TEST_P(RobustnessTest, NTriplesLoaderNeverCrashesOnJunk) {
  Random rng(9200 + static_cast<uint64_t>(GetParam()));
  for (int i = 0; i < 100; ++i) {
    std::string junk = RandomJunk(&rng, 200) + "\n" + RandomJunk(&rng, 200);
    Dictionary dict;
    TripleStore store;
    auto st = ParseNTriplesString(junk, &dict, &store);
    (void)st;
  }
}

TEST_P(RobustnessTest, NTriplesLoaderNeverCrashesOnMutatedInput) {
  Random rng(9300 + static_cast<uint64_t>(GetParam()));
  const std::string valid =
      "<http://a> <http://p> <http://b> .\n"
      "<http://a> <http://name> \"Alice \\\"A\\\"\"@en .\n"
      "_:b1 <http://p> \"30\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n";
  for (int i = 0; i < 100; ++i) {
    std::string mutated = Mutate(&rng, valid, 1 + static_cast<int>(rng.Uniform(8)));
    Dictionary dict;
    TripleStore store;
    auto st = ParseNTriplesString(mutated, &dict, &store);
    if (st.ok()) {
      store.Build();  // accepted input must produce a usable store
      EXPECT_LE(store.size(), 3u);
    }
  }
}

TEST_P(RobustnessTest, LexerRejectsControlCharacters) {
  Random rng(9400 + static_cast<uint64_t>(GetParam()));
  std::string s = "SELECT * WHERE { ?x ";
  s += static_cast<char>(1 + rng.Uniform(8));
  s += " ?y . }";
  auto r = ParseQuery(s);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace sparqluo
