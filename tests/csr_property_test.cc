// Property tests for the two-level CSR permutation indexes
// (src/rdf/triple_store.h, docs/index_layout.md).
//
// The oracle is a plain deduplicated triple vector filtered linearly per
// pattern. The CSR store must agree with it — on match sets, counts,
// iteration order, existence checks, hinted (galloping) probes, morsel
// slices and delta merges — over randomized graphs covering all eight
// bound/unbound pattern combinations, with both hitting and missing
// constants.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

#include "rdf/triple_store.h"
#include "util/random.h"

namespace sparqluo {
namespace {

struct OrderSpo {
  bool operator()(const Triple& a, const Triple& b) const {
    if (a.s != b.s) return a.s < b.s;
    if (a.p != b.p) return a.p < b.p;
    return a.o < b.o;
  }
};

/// Comparator of triples under a permutation order — the order Scan must
/// yield matches in.
bool PermLess(Perm perm, const Triple& a, const Triple& b) {
  auto key = [perm](const Triple& t) {
    switch (perm) {
      case Perm::kSpo:
        return std::array<TermId, 3>{t.s, t.p, t.o};
      case Perm::kPos:
        return std::array<TermId, 3>{t.p, t.o, t.s};
      default:
        return std::array<TermId, 3>{t.o, t.s, t.p};
    }
  };
  return key(a) < key(b);
}

bool Matches(const TriplePatternIds& q, const Triple& t) {
  return (!q.s_bound() || t.s == q.s) && (!q.p_bound() || t.p == q.p) &&
         (!q.o_bound() || t.o == q.o);
}

std::vector<Triple> OracleMatches(const std::vector<Triple>& triples,
                                  const TriplePatternIds& q) {
  std::vector<Triple> out;
  for (const Triple& t : triples)
    if (Matches(q, t)) out.push_back(t);
  return out;
}

std::vector<Triple> ScanAll(const TripleStore& store,
                            const TriplePatternIds& q,
                            TripleStore::ProbeHint* hint = nullptr) {
  std::vector<Triple> out;
  if (hint != nullptr) {
    store.Scan(q, hint, [&](const Triple& t) {
      out.push_back(t);
      return true;
    });
  } else {
    store.Scan(q, [&](const Triple& t) {
      out.push_back(t);
      return true;
    });
  }
  return out;
}

/// A random graph: `n` draws over skewed id universes (small universes
/// produce dense adjacency and many duplicates; large ones, sparse
/// single-pair buckets). Returns the deduplicated oracle.
std::vector<Triple> RandomGraph(Random* rng, size_t n, TermId subjects,
                                TermId predicates, TermId objects,
                                TripleStore* store) {
  std::vector<Triple> oracle;
  for (size_t i = 0; i < n; ++i) {
    Triple t(static_cast<TermId>(rng->Uniform(subjects)),
             static_cast<TermId>(rng->Uniform(predicates)),
             static_cast<TermId>(rng->Uniform(objects)));
    store->Add(t);
    oracle.push_back(t);
  }
  std::sort(oracle.begin(), oracle.end(), OrderSpo{});
  oracle.erase(std::unique(oracle.begin(), oracle.end()), oracle.end());
  return oracle;
}

/// One random pattern of the given bound/unbound mask. Half the probes
/// draw components from a resident triple (hits likely), half draw fresh
/// ids up to one past the universe (misses likely, including the
/// never-interned id just outside it).
TriplePatternIds RandomPattern(Random* rng, const std::vector<Triple>& oracle,
                               bool bs, bool bp, bool bo, TermId subjects,
                               TermId predicates, TermId objects) {
  TriplePatternIds q;
  if (oracle.empty() || rng->Bernoulli(0.5)) {
    if (bs) q.s = static_cast<TermId>(rng->Uniform(subjects + 1));
    if (bp) q.p = static_cast<TermId>(rng->Uniform(predicates + 1));
    if (bo) q.o = static_cast<TermId>(rng->Uniform(objects + 1));
  } else {
    const Triple& t = oracle[rng->Uniform(oracle.size())];
    if (bs) q.s = t.s;
    if (bp) q.p = t.p;
    if (bo) q.o = t.o;
  }
  return q;
}

Perm ExpectedPerm(const TriplePatternIds& q) {
  if (q.s_bound() && q.o_bound() && !q.p_bound()) return Perm::kOsp;
  if (q.s_bound()) return Perm::kSpo;
  if (q.p_bound()) return Perm::kPos;
  if (q.o_bound()) return Perm::kOsp;
  return Perm::kSpo;
}

struct GraphConfig {
  size_t n;
  TermId subjects, predicates, objects;
};

// Dense multigraph-ish, mid-size, and sparse shapes.
const GraphConfig kConfigs[] = {
    {0, 4, 2, 4},        // empty store
    {60, 5, 2, 5},       // dense: heavy duplication, fat buckets
    {500, 40, 6, 50},    // mid: mixed bucket sizes
    {900, 700, 3, 800},  // sparse: mostly single-pair buckets
};

TEST(CsrPropertyTest, MatchScanCountAgreeWithOracleOnAllShapes) {
  Random rng(0xC5A11);
  for (const GraphConfig& cfg : kConfigs) {
    TripleStore store;
    std::vector<Triple> oracle =
        RandomGraph(&rng, cfg.n, cfg.subjects, cfg.predicates, cfg.objects,
                    &store);
    store.Build();
    ASSERT_EQ(store.size(), oracle.size());

    for (int mask = 0; mask < 8; ++mask) {
      const bool bs = mask & 1, bp = mask & 2, bo = mask & 4;
      for (int probe = 0; probe < 40; ++probe) {
        TriplePatternIds q =
            RandomPattern(&rng, oracle, bs, bp, bo, cfg.subjects,
                          cfg.predicates, cfg.objects);
        std::vector<Triple> want = OracleMatches(oracle, q);
        std::vector<Triple> got = ScanAll(store, q);

        // Scan yields the oracle's matches, in the covering permutation's
        // order (which the oracle reproduces by sorting).
        Perm perm = ExpectedPerm(q);
        std::sort(want.begin(), want.end(), [perm](const Triple& a,
                                                   const Triple& b) {
          return PermLess(perm, a, b);
        });
        ASSERT_EQ(got, want) << "mask " << mask << " probe " << probe;
        EXPECT_TRUE(std::is_sorted(
            got.begin(), got.end(),
            [perm](const Triple& a, const Triple& b) {
              return PermLess(perm, a, b);
            }));

        EXPECT_EQ(store.Count(q), want.size());
        EXPECT_EQ(store.Match(q).size(), want.size());
        if (bs && bp && bo)
          EXPECT_EQ(store.Contains(Triple(q.s, q.p, q.o)), !want.empty());
      }
    }
  }
}

TEST(CsrPropertyTest, HintedProbesAgreeWithColdProbes) {
  Random rng(0xB0CA);
  for (const GraphConfig& cfg : kConfigs) {
    TripleStore store;
    std::vector<Triple> oracle =
        RandomGraph(&rng, cfg.n, cfg.subjects, cfg.predicates, cfg.objects,
                    &store);
    store.Build();

    // One hint threaded through every probe shape and order: ascending,
    // descending and random sequences must all stay exact (galloping is a
    // fast path, never an approximation).
    TripleStore::ProbeHint hint;
    for (int mask = 1; mask < 8; ++mask) {
      const bool bs = mask & 1, bp = mask & 2, bo = mask & 4;
      std::vector<TriplePatternIds> probes;
      for (int i = 0; i < 30; ++i)
        probes.push_back(RandomPattern(&rng, oracle, bs, bp, bo, cfg.subjects,
                                       cfg.predicates, cfg.objects));
      auto by_ids = [](const TriplePatternIds& a, const TriplePatternIds& b) {
        if (a.s != b.s) return a.s < b.s;
        if (a.p != b.p) return a.p < b.p;
        return a.o < b.o;
      };
      std::sort(probes.begin(), probes.end(), by_ids);
      for (const TriplePatternIds& q : probes)
        ASSERT_EQ(store.Count(q, &hint), store.Count(q));
      for (auto it = probes.rbegin(); it != probes.rend(); ++it)
        ASSERT_EQ(ScanAll(store, *it, &hint), ScanAll(store, *it));
    }
    TripleStore::ProbeHint contains_hint;
    for (int i = 0; i < 60; ++i) {
      Triple t(static_cast<TermId>(rng.Uniform(cfg.subjects + 1)),
               static_cast<TermId>(rng.Uniform(cfg.predicates + 1)),
               static_cast<TermId>(rng.Uniform(cfg.objects + 1)));
      ASSERT_EQ(store.Contains(t, &contains_hint), store.Contains(t));
    }
  }
}

TEST(CsrPropertyTest, SlicedRangesConcatenateToFullScan) {
  Random rng(0x511CE);
  TripleStore store;
  std::vector<Triple> oracle = RandomGraph(&rng, 600, 30, 5, 40, &store);
  store.Build();

  for (int mask = 0; mask < 8; ++mask) {
    const bool bs = mask & 1, bp = mask & 2, bo = mask & 4;
    for (int probe = 0; probe < 20; ++probe) {
      TriplePatternIds q = RandomPattern(&rng, oracle, bs, bp, bo, 30, 5, 40);
      TripleStore::MatchedRange range = store.Match(q);
      std::vector<Triple> full;
      TripleStore::ScanMatched(range, [&](const Triple& t) {
        full.push_back(t);
        return true;
      });
      ASSERT_EQ(full.size(), range.size());

      // Any chunking of the range must concatenate to the full scan —
      // the invariant morsel-parallel pattern scans rely on.
      for (size_t chunks : {size_t{1}, size_t{2}, size_t{3}, size_t{7}}) {
        std::vector<Triple> pieced;
        size_t per = (range.size() + chunks - 1) / chunks;
        if (per == 0) per = 1;
        for (size_t begin = 0; begin < range.size(); begin += per) {
          size_t end = std::min(begin + per, range.size());
          TripleStore::ScanMatched(range.Slice(begin, end),
                                   [&](const Triple& t) {
                                     pieced.push_back(t);
                                     return true;
                                   });
        }
        ASSERT_EQ(pieced, full) << "mask " << mask << " chunks " << chunks;
      }
    }
  }
}

TEST(CsrPropertyTest, EarlyStopAndViewIterationHold) {
  Random rng(0xE57);
  TripleStore store;
  std::vector<Triple> oracle = RandomGraph(&rng, 300, 20, 4, 25, &store);
  store.Build();

  // Early stop sees exactly the first k of the full scan.
  TriplePatternIds all;
  std::vector<Triple> full = ScanAll(store, all);
  for (size_t k : {size_t{0}, size_t{1}, size_t{7}, full.size()}) {
    std::vector<Triple> stopped;
    store.Scan(all, [&](const Triple& t) {
      if (stopped.size() == k) return false;
      stopped.push_back(t);
      return true;
    });
    ASSERT_EQ(stopped.size(), std::min(k, full.size()));
    ASSERT_TRUE(std::equal(stopped.begin(), stopped.end(), full.begin()));
  }

  // triples() (iteration and indexing) reproduces the sorted oracle.
  auto view = store.triples();
  ASSERT_EQ(view.size(), oracle.size());
  size_t i = 0;
  for (const Triple& t : view) {
    ASSERT_EQ(t, oracle[i]);
    ASSERT_EQ(view[i], oracle[i]);
    ++i;
  }
}

TEST(CsrPropertyTest, RandomDeltaMergeEqualsRebuild) {
  Random rng(0xDE17A);
  for (int round = 0; round < 6; ++round) {
    TripleStore base;
    std::vector<Triple> net =
        RandomGraph(&rng, 400, 25, 4, 30, &base);
    base.Build();

    // Random delta: inserts (some duplicating base) and deletes (some
    // absent), kept disjoint as StoreDelta guarantees.
    std::vector<Triple> added;
    TripleSet removed;
    for (int i = 0; i < 80; ++i) {
      Triple t(static_cast<TermId>(rng.Uniform(26)),
               static_cast<TermId>(rng.Uniform(5)),
               static_cast<TermId>(rng.Uniform(31)));
      if (rng.Bernoulli(0.5)) {
        if (removed.count(t) == 0) added.push_back(t);
      } else {
        bool in_added = std::find(added.begin(), added.end(), t) != added.end();
        if (!in_added) removed.insert(t);
      }
    }

    TripleStore merged;
    merged.BuildDelta(base, added, removed);

    for (const Triple& t : added)
      if (removed.count(t) == 0 &&
          std::find(net.begin(), net.end(), t) == net.end())
        net.push_back(t);
    net.erase(std::remove_if(net.begin(), net.end(),
                             [&](const Triple& t) {
                               return removed.count(t) != 0;
                             }),
              net.end());
    TripleStore rebuilt;
    for (const Triple& t : net) rebuilt.Add(t);
    rebuilt.Build();

    ASSERT_EQ(merged.size(), rebuilt.size()) << "round " << round;
    // Bit-identity across the whole CSR layout: every permutation's
    // directory and bucket contents match a from-scratch Build.
    for (Perm perm : {Perm::kSpo, Perm::kPos, Perm::kOsp}) {
      auto mf = merged.DistinctFirsts(perm);
      auto rf = rebuilt.DistinctFirsts(perm);
      ASSERT_TRUE(std::equal(mf.begin(), mf.end(), rf.begin(), rf.end()));
      std::vector<std::pair<TermId, std::vector<IdPair>>> mg, rg;
      merged.ForEachGroup(perm, [&](TermId f, std::span<const IdPair> prs) {
        mg.emplace_back(f, std::vector<IdPair>(prs.begin(), prs.end()));
      });
      rebuilt.ForEachGroup(perm, [&](TermId f, std::span<const IdPair> prs) {
        rg.emplace_back(f, std::vector<IdPair>(prs.begin(), prs.end()));
      });
      ASSERT_EQ(mg, rg) << "round " << round;
    }
  }
}

}  // namespace
}  // namespace sparqluo
