// Focused tests for candidate pruning (§6): cross-level transmission, the
// leading-OPTIONAL soundness guard, thresholds, and the OOM guard.
#include <gtest/gtest.h>

#include "algebra/operators.h"
#include "engine/database.h"

namespace sparqluo {
namespace {

/// Data mirroring the paper's q1.3 narrative: one selective anchor, then a
/// chain of low-selectivity relations reachable only through nested
/// OPTIONALs.
class PruningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto iri = [](const std::string& s) {
      return Term::Iri("http://p.org/" + s);
    };
    Term anchor_p = iri("anchorOf");
    Term rel1 = iri("rel1");
    Term rel2 = iri("rel2");
    Term root = iri("root");
    for (int i = 0; i < 1500; ++i) {
      Term a = iri("a" + std::to_string(i));
      Term b = iri("b" + std::to_string(i));
      Term c = iri("c" + std::to_string(i));
      if (i < 5) db_.AddTriple(root, anchor_p, a);
      db_.AddTriple(a, rel1, b);
      db_.AddTriple(b, rel2, c);
    }
    db_.Finalize(EngineKind::kWco);
  }

  static std::string Prefix() { return "PREFIX p: <http://p.org/>\n"; }

  Database db_;
};

TEST_F(PruningTest, CrossLevelTransmission) {
  // p:root anchors 5 ?a values; the inner OPTIONAL's BGP (rel2) can only be
  // pruned through the intermediate level (rel1): §6's "transmit the
  // pruning effect of small results across levels".
  const std::string q = Prefix() +
                        "SELECT * WHERE { p:root p:anchorOf ?a . "
                        "OPTIONAL { ?a p:rel1 ?b . "
                        "OPTIONAL { ?b p:rel2 ?c . } } }";
  ExecOptions cp = ExecOptions::CP();
  cp.fixed_threshold_fraction = 0.01;  // 45 rows: admits the 5-row bag
  ExecMetrics base_m, cp_m;
  auto base_r = db_.Query(q, ExecOptions::Base(), &base_m);
  auto cp_r = db_.Query(q, cp, &cp_m);
  ASSERT_TRUE(base_r.ok() && cp_r.ok());
  EXPECT_TRUE(BagEquals(*base_r, *cp_r));
  EXPECT_EQ(cp_r->size(), 5u);
  // base materializes all 1500 rel1 + 1500 rel2 rows; CP only ~5 + ~5.
  EXPECT_GT(base_m.bgp.rows_materialized, 2500u);
  EXPECT_LT(cp_m.bgp.rows_materialized, 100u);
}

TEST_F(PruningTest, LeadingOptionalDoesNotInheritCandidates) {
  // {B . { OPTIONAL { A } } }: pruning A by B's bindings would flip the
  // unit-bag padding decision inside the nested group. The guard must keep
  // results identical to base under every threshold.
  const std::string q = Prefix() +
                        "SELECT * WHERE { p:root p:anchorOf ?a . "
                        "{ OPTIONAL { ?x p:rel1 ?b . } } }";
  auto base_r = db_.Query(q, ExecOptions::Base());
  ASSERT_TRUE(base_r.ok());
  for (double frac : {0.001, 0.01, 1.0}) {
    ExecOptions cp = ExecOptions::CP();
    cp.fixed_threshold_fraction = frac;
    auto cp_r = db_.Query(q, cp);
    ASSERT_TRUE(cp_r.ok());
    EXPECT_TRUE(BagEquals(*base_r, *cp_r)) << "frac=" << frac;
  }
}

TEST_F(PruningTest, AdaptiveThresholdPrunesWhenEstimateIsLarge) {
  const std::string q = Prefix() +
                        "SELECT * WHERE { p:root p:anchorOf ?a . "
                        "OPTIONAL { ?a p:rel1 ?b . } }";
  ExecMetrics m;
  auto r = db_.Query(q, ExecOptions::Full(), &m);
  ASSERT_TRUE(r.ok());
  // rel1 has 1500 estimated matches >> 5 candidates: pruning engages.
  EXPECT_GT(m.bgp.candidates_pruned, 0u);
}

TEST_F(PruningTest, UnionBranchesReceiveCandidates) {
  const std::string q = Prefix() +
                        "SELECT * WHERE { p:root p:anchorOf ?a . "
                        "{ ?a p:rel1 ?b . } UNION { ?b p:rel1 ?a . } }";
  ExecOptions cp = ExecOptions::CP();
  cp.fixed_threshold_fraction = 0.01;
  ExecMetrics m;
  auto r = db_.Query(q, cp, &m);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 5u);  // only the first branch matches
  EXPECT_GT(m.bgp.candidates_pruned, 0u);
  auto base_r = db_.Query(q, ExecOptions::Base());
  ASSERT_TRUE(base_r.ok());
  EXPECT_TRUE(BagEquals(*base_r, *r));
}

TEST_F(PruningTest, RowLimitGuardAborts) {
  // A cross product over rel1 x rel2 exceeds a tiny row budget.
  const std::string q = Prefix() +
                        "SELECT * WHERE { ?a p:rel1 ?b . ?x p:rel2 ?y . }";
  ExecOptions opts = ExecOptions::Base();
  opts.max_intermediate_rows = 10000;
  ExecMetrics m;
  auto r = db_.Query(q, opts, &m);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(m.aborted);
}

TEST_F(PruningTest, RowLimitGuardDoesNotFireUnderBudget) {
  const std::string q = Prefix() +
                        "SELECT * WHERE { p:root p:anchorOf ?a . "
                        "?a p:rel1 ?b . }";
  ExecOptions opts = ExecOptions::Base();
  opts.max_intermediate_rows = 10000;
  auto r = db_.Query(q, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 5u);
}

TEST_F(PruningTest, CandidateMapBasics) {
  CandidateMap m;
  EXPECT_TRUE(m.empty());
  EXPECT_TRUE(m.Admits(3, 42));  // unconstrained variable admits anything
  m.Set_(3, {7, 8});
  EXPECT_FALSE(m.empty());
  EXPECT_TRUE(m.Has(3));
  EXPECT_TRUE(m.Admits(3, 7));
  EXPECT_FALSE(m.Admits(3, 42));
  EXPECT_EQ(m.Get(3)->size(), 2u);
  EXPECT_EQ(m.Get(4), nullptr);
}

TEST_F(PruningTest, PartiallyUnboundColumnsAreNotConstrained) {
  // If the candidate source binds ?b only in some mappings, ?b must stay
  // unconstrained (a UNION padding scenario).
  const std::string q =
      Prefix() +
      "SELECT * WHERE { "
      "{ p:root p:anchorOf ?a . } UNION { p:root p:anchorOf ?a . ?a p:rel1 ?b . } "
      "OPTIONAL { ?b p:rel2 ?c . } }";
  auto base_r = db_.Query(q, ExecOptions::Base());
  ExecOptions cp = ExecOptions::CP();
  cp.fixed_threshold_fraction = 1.0;  // always try to prune
  auto cp_r = db_.Query(q, cp);
  ASSERT_TRUE(base_r.ok() && cp_r.ok());
  EXPECT_TRUE(BagEquals(*base_r, *cp_r));
}

}  // namespace
}  // namespace sparqluo
