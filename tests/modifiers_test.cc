// Solution modifiers (ASK / ORDER BY / LIMIT / OFFSET) and result writers.
#include <gtest/gtest.h>

#include "engine/database.h"
#include "engine/result_writer.h"

namespace sparqluo {
namespace {

class ModifiersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.LoadNTriplesString(R"(
<http://e/a> <http://p/score> "30" .
<http://e/b> <http://p/score> "7" .
<http://e/c> <http://p/score> "100" .
<http://e/d> <http://p/score> "7" .
<http://e/a> <http://p/tag> "alpha"@en .
<http://e/b> <http://p/tag> "beta, \"quoted\""@en .
)")
                    .ok());
    db_.Finalize(EngineKind::kWco);
  }

  BindingSet Run(const std::string& text, Query* q = nullptr) {
    auto parsed = db_.Parse(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    if (q) *q = *parsed;
    auto r = db_.executor().Execute(*parsed, ExecOptions::Full());
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(*r) : BindingSet();
  }

  std::string Decode(const BindingSet& rows, size_t r, size_t c) {
    return db_.dict().Decode(rows.At(r, c)).lexical;
  }

  Database db_;
};

TEST_F(ModifiersTest, AskTrueAndFalse) {
  BindingSet yes = Run("ASK { ?x <http://p/score> ?s . }");
  EXPECT_EQ(yes.size(), 1u);
  EXPECT_EQ(yes.width(), 0u);
  BindingSet no = Run("ASK { ?x <http://p/nothing> ?s . }");
  EXPECT_TRUE(no.empty());
}

TEST_F(ModifiersTest, AskWithOptionalWhere) {
  BindingSet yes = Run("ASK WHERE { ?x <http://p/score> \"7\" . }");
  EXPECT_EQ(yes.size(), 1u);
}

TEST_F(ModifiersTest, OrderByNumericAscending) {
  BindingSet r =
      Run("SELECT ?x ?s WHERE { ?x <http://p/score> ?s . } ORDER BY ?s");
  ASSERT_EQ(r.size(), 4u);
  EXPECT_EQ(Decode(r, 0, 1), "7");
  EXPECT_EQ(Decode(r, 1, 1), "7");
  EXPECT_EQ(Decode(r, 2, 1), "30");
  EXPECT_EQ(Decode(r, 3, 1), "100");
}

TEST_F(ModifiersTest, OrderByDescending) {
  BindingSet r =
      Run("SELECT ?x ?s WHERE { ?x <http://p/score> ?s . } ORDER BY DESC(?s)");
  ASSERT_EQ(r.size(), 4u);
  EXPECT_EQ(Decode(r, 0, 1), "100");
  EXPECT_EQ(Decode(r, 3, 1), "7");
}

TEST_F(ModifiersTest, OrderBySecondaryKey) {
  BindingSet r = Run(
      "SELECT ?x ?s WHERE { ?x <http://p/score> ?s . } ORDER BY ?s DESC(?x)");
  ASSERT_EQ(r.size(), 4u);
  // The two score-7 rows are ordered by ?x descending: d before b.
  EXPECT_EQ(Decode(r, 0, 0), "http://e/d");
  EXPECT_EQ(Decode(r, 1, 0), "http://e/b");
}

TEST_F(ModifiersTest, OrderByUnboundSortsFirst) {
  BindingSet r = Run(
      "SELECT ?x ?t WHERE { ?x <http://p/score> ?s . "
      "OPTIONAL { ?x <http://p/tag> ?t . } } ORDER BY ?t");
  ASSERT_EQ(r.size(), 4u);
  EXPECT_EQ(r.At(0, 1), kUnboundTerm);
  EXPECT_EQ(r.At(1, 1), kUnboundTerm);
}

TEST_F(ModifiersTest, LimitAndOffset) {
  BindingSet all =
      Run("SELECT ?x WHERE { ?x <http://p/score> ?s . } ORDER BY ?s");
  BindingSet limited =
      Run("SELECT ?x WHERE { ?x <http://p/score> ?s . } ORDER BY ?s LIMIT 2");
  BindingSet offset = Run(
      "SELECT ?x WHERE { ?x <http://p/score> ?s . } ORDER BY ?s LIMIT 2 "
      "OFFSET 2");
  ASSERT_EQ(limited.size(), 2u);
  ASSERT_EQ(offset.size(), 2u);
  EXPECT_EQ(limited.At(0, 0), all.At(0, 0));
  EXPECT_EQ(offset.At(0, 0), all.At(2, 0));
}

TEST_F(ModifiersTest, OffsetPastEndIsEmpty) {
  BindingSet r =
      Run("SELECT ?x WHERE { ?x <http://p/score> ?s . } OFFSET 100");
  EXPECT_TRUE(r.empty());
}

TEST_F(ModifiersTest, ParseErrors) {
  EXPECT_FALSE(db_.Parse("SELECT * WHERE { ?x <http://p/score> ?s . } ORDER BY").ok());
  EXPECT_FALSE(db_.Parse("SELECT * WHERE { ?x <http://p/score> ?s . } LIMIT").ok());
  EXPECT_FALSE(
      db_.Parse("SELECT * WHERE { ?x <http://p/score> ?s . } LIMIT abc").ok());
}

// ------------------------------------------------------ Result writers ---

class WriterTest : public ModifiersTest {};

TEST_F(WriterTest, TsvRoundTripTerms) {
  Query q;
  BindingSet r = Run(
      "SELECT ?x ?t WHERE { ?x <http://p/tag> ?t . } ORDER BY ?x", &q);
  std::string tsv = FormatResults(r, q.vars, db_.dict(), ResultFormat::kTsv);
  EXPECT_NE(tsv.find("?x\t?t"), std::string::npos);
  EXPECT_NE(tsv.find("<http://e/a>\t\"alpha\"@en"), std::string::npos);
}

TEST_F(WriterTest, CsvEscapesQuotesAndCommas) {
  Query q;
  BindingSet r = Run(
      "SELECT ?x ?t WHERE { ?x <http://p/tag> ?t . } ORDER BY ?x", &q);
  std::string csv = FormatResults(r, q.vars, db_.dict(), ResultFormat::kCsv);
  // "beta, "quoted"" must be quoted with doubled quotes.
  EXPECT_NE(csv.find("\"beta, \"\"quoted\"\"\""), std::string::npos);
  // IRIs are bare in CSV.
  EXPECT_NE(csv.find("http://e/a,alpha"), std::string::npos);
}

TEST_F(WriterTest, CsvUnboundIsEmptyField) {
  Query q;
  BindingSet r = Run(
      "SELECT ?x ?t WHERE { ?x <http://p/score> ?s . "
      "OPTIONAL { ?x <http://p/tag> ?t . } } ORDER BY ?x",
      &q);
  std::string csv = FormatResults(r, q.vars, db_.dict(), ResultFormat::kCsv);
  // c and d have no tag: the line ends right after the comma.
  EXPECT_NE(csv.find("http://e/c,\r\n"), std::string::npos);
}

TEST_F(WriterTest, JsonShapeAndEscaping) {
  Query q;
  BindingSet r = Run(
      "SELECT ?x ?t WHERE { ?x <http://p/tag> ?t . } ORDER BY ?x", &q);
  std::string json = FormatResults(r, q.vars, db_.dict(), ResultFormat::kJson);
  EXPECT_NE(json.find("{\"head\":{\"vars\":[\"x\",\"t\"]}"), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"uri\",\"value\":\"http://e/a\""),
            std::string::npos);
  EXPECT_NE(json.find("\"xml:lang\":\"en\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
}

TEST_F(WriterTest, JsonOmitsUnbound) {
  Query q;
  BindingSet r = Run(
      "SELECT ?x ?t WHERE { ?x <http://p/score> ?s . "
      "OPTIONAL { ?x <http://p/tag> ?t . } } ORDER BY ?x",
      &q);
  std::string json = FormatResults(r, q.vars, db_.dict(), ResultFormat::kJson);
  // Rows without ?t contain only the ?x binding object.
  EXPECT_NE(json.find("{\"x\":{\"type\":\"uri\",\"value\":\"http://e/c\"}}"),
            std::string::npos);
}

TEST_F(WriterTest, TypedLiteralDatatypeInJson) {
  Database db2;
  ASSERT_TRUE(db2.LoadNTriplesString(
                   "<http://e/x> <http://p/age> "
                   "\"30\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n")
                  .ok());
  db2.Finalize();
  auto q = db2.Parse("SELECT ?a WHERE { ?x <http://p/age> ?a . }");
  ASSERT_TRUE(q.ok());
  auto r = db2.executor().Execute(*q, ExecOptions::Full());
  ASSERT_TRUE(r.ok());
  std::string json = FormatResults(*r, q->vars, db2.dict(), ResultFormat::kJson);
  EXPECT_NE(json.find("\"datatype\":\"http://www.w3.org/2001/XMLSchema#integer\""),
            std::string::npos);
}

}  // namespace
}  // namespace sparqluo
