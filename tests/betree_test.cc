#include <gtest/gtest.h>

#include "betree/be_tree.h"
#include "betree/builder.h"
#include "betree/serializer.h"
#include "sparql/parser.h"

namespace sparqluo {
namespace {

BeTree Build(const std::string& queryText, Query* out_query = nullptr) {
  auto q = ParseQuery(queryText);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  BeTree tree = BuildBeTree(*q);
  EXPECT_TRUE(tree.Validate().ok()) << tree.Validate().ToString();
  if (out_query) *out_query = std::move(*q);
  return tree;
}

TEST(BeTreeBuilderTest, SingleBgpLeaf) {
  BeTree t = Build(
      "SELECT * WHERE { ?x <http://a> ?y . ?y <http://b> ?z . }");
  ASSERT_EQ(t.root->children.size(), 1u);
  EXPECT_TRUE(t.root->children[0]->is_bgp());
  EXPECT_EQ(t.root->children[0]->bgp.size(), 2u);
  EXPECT_EQ(t.CountBgp(), 1u);
}

TEST(BeTreeBuilderTest, NonCoalescableTriplesSplit) {
  BeTree t = Build(
      "SELECT * WHERE { ?x <http://a> ?y . ?w <http://b> ?v . }");
  ASSERT_EQ(t.root->children.size(), 2u);
  EXPECT_EQ(t.CountBgp(), 2u);
}

TEST(BeTreeBuilderTest, TransitiveCoalescing) {
  // t1-t2 share ?y, t2-t3 share ?z: all three form one maximal BGP.
  BeTree t = Build(
      "SELECT * WHERE { ?x <http://a> ?y . ?y <http://b> ?z . ?z <http://c> ?w . }");
  EXPECT_EQ(t.CountBgp(), 1u);
  EXPECT_EQ(t.root->children[0]->bgp.size(), 3u);
}

TEST(BeTreeBuilderTest, NonAdjacentCoalescing) {
  // t1 and t3 coalesce across the unrelated t2; the BGP node sits at the
  // position of the leftmost constituent.
  BeTree t = Build(
      "SELECT * WHERE { ?x <http://a> ?y . ?q <http://b> ?r . ?y <http://c> ?z . }");
  ASSERT_EQ(t.root->children.size(), 2u);
  EXPECT_TRUE(t.root->children[0]->is_bgp());
  EXPECT_EQ(t.root->children[0]->bgp.size(), 2u);  // t1 + t3
  EXPECT_EQ(t.root->children[1]->bgp.size(), 1u);  // t2
}

TEST(BeTreeBuilderTest, PredicateVariablesDoNotCoalesce) {
  BeTree t = Build("SELECT * WHERE { ?x <http://a> ?y . ?s ?y ?o . }");
  // Shared var ?y is at predicate position in the second pattern.
  EXPECT_EQ(t.CountBgp(), 2u);
}

TEST(BeTreeBuilderTest, FigureTwoExampleShape) {
  // The paper's running example (Figure 2 / Figure 5): t1 and t6 coalesce
  // into one BGP; the UNION and OPTIONAL structure is preserved.
  BeTree t = Build(R"(
    PREFIX dbo: <http://dbpedia.org/ontology/>
    PREFIX dbr: <http://dbpedia.org/resource/>
    PREFIX foaf: <http://xmlns.com/foaf/0.1/>
    PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
    PREFIX owl: <http://www.w3.org/2002/07/owl#>
    PREFIX dbp: <http://dbpedia.org/property/>
    SELECT ?x ?name ?birth ?same WHERE {
      ?x dbo:wikiPageWikiLink dbr:President_of_the_United_States .
      { ?x foaf:name ?name } UNION { ?x rdfs:label ?name }
      OPTIONAL { { ?x owl:sameAs ?same } UNION { ?same owl:sameAs ?x } }
      ?x dbp:birthDate ?birth .
    })");
  // Children: BGP{t1,t6}, UNION, OPTIONAL.
  ASSERT_EQ(t.root->children.size(), 3u);
  EXPECT_TRUE(t.root->children[0]->is_bgp());
  EXPECT_EQ(t.root->children[0]->bgp.size(), 2u);
  EXPECT_TRUE(t.root->children[1]->is_union());
  EXPECT_TRUE(t.root->children[2]->is_optional());
  EXPECT_EQ(t.CountBgp(), 5u);  // t1t6, t2, t3, t4, t5
}

TEST(BeTreeBuilderTest, CountBgpAndDepthMetrics) {
  BeTree t = Build(
      "SELECT * WHERE { ?x <http://a> ?y . OPTIONAL { ?y <http://b> ?z . "
      "OPTIONAL { ?z <http://c> ?w . } } }");
  EXPECT_EQ(t.CountBgp(), 3u);
  EXPECT_EQ(t.Depth(), 3u);  // root + 2 OPTIONAL-right groups
}

TEST(BeTreeValidateTest, RejectsMalformedTrees) {
  // UNION with a single child.
  BeTree t;
  auto u = std::make_unique<BeNode>(BeNode::Type::kUnion);
  u->children.push_back(std::make_unique<BeNode>(BeNode::Type::kGroup));
  t.root->children.push_back(std::move(u));
  EXPECT_FALSE(t.Validate().ok());

  // OPTIONAL with a BGP child instead of a group.
  BeTree t2;
  auto o = std::make_unique<BeNode>(BeNode::Type::kOptional);
  o->children.push_back(std::make_unique<BeNode>(BeNode::Type::kBgp));
  t2.root->children.push_back(std::move(o));
  EXPECT_FALSE(t2.Validate().ok());

  // Root must be a group.
  BeTree t3(std::make_unique<BeNode>(BeNode::Type::kBgp));
  EXPECT_FALSE(t3.Validate().ok());
}

TEST(BeTreeCloneTest, DeepCopyIsIndependent) {
  Query q;
  BeTree t = Build(
      "SELECT * WHERE { ?x <http://a> ?y . OPTIONAL { ?y <http://b> ?z . } }",
      &q);
  BeTree copy = t.Clone();
  copy.root->children[0]->bgp.triples.clear();
  EXPECT_EQ(t.root->children[0]->bgp.size(), 1u);
  EXPECT_EQ(copy.root->children[0]->bgp.size(), 0u);
}

TEST(BeTreeCollectVariablesTest, GathersAll) {
  Query q;
  BeTree t = Build(
      "SELECT * WHERE { ?x <http://a> ?y . OPTIONAL { ?y <http://b> ?z . } }",
      &q);
  std::vector<VarId> vars;
  t.root->CollectVariables(&vars);
  EXPECT_EQ(vars.size(), 3u);
}

TEST(SerializerTest, RoundTripPreservesSemanticStructure) {
  const char* cases[] = {
      "SELECT * WHERE { ?x <http://a> ?y . }",
      "SELECT * WHERE { ?x <http://a> ?y . OPTIONAL { ?y <http://b> ?z . } }",
      "SELECT * WHERE { { ?x <http://a> ?y . } UNION { ?x <http://b> ?y . } }",
      "SELECT * WHERE { ?x <http://a> ?y . { ?y <http://b> ?z . } UNION "
      "{ ?y <http://c> ?z . } OPTIONAL { ?z <http://d> ?w . } }",
      "SELECT * WHERE { ?x <http://a> ?y . OPTIONAL { ?y <http://b> ?z . "
      "OPTIONAL { ?z <http://c> ?w . } } }",
  };
  for (const char* text : cases) {
    Query q;
    BeTree t1 = Build(text, &q);
    std::string sparql = SerializeToQuery(t1, q.vars);
    auto q2 = ParseQuery(sparql);
    ASSERT_TRUE(q2.ok()) << sparql << "\n" << q2.status().ToString();
    BeTree t2 = BuildBeTree(*q2);
    // Structure must match: compare debug renderings modulo variable names
    // (the reparse re-interns identical names, so direct compare works).
    EXPECT_EQ(DebugString(t1, q.vars), DebugString(t2, q2->vars)) << sparql;
  }
}

TEST(SerializerTest, OneToOneMappingFixpoint) {
  // Serialize -> parse -> build -> serialize must be a fixpoint.
  Query q;
  BeTree t = Build(
      "SELECT * WHERE { ?x <http://a> ?y . { ?y <http://b> ?z . } UNION "
      "{ ?y <http://c> ?z . } }",
      &q);
  std::string s1 = SerializeToQuery(t, q.vars);
  auto q2 = ParseQuery(s1);
  ASSERT_TRUE(q2.ok());
  BeTree t2 = BuildBeTree(*q2);
  std::string s2 = SerializeToQuery(t2, q2->vars);
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace sparqluo
