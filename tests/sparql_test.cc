#include <gtest/gtest.h>

#include "sparql/lexer.h"
#include "sparql/parser.h"

namespace sparqluo {
namespace {

// --------------------------------------------------------------- Lexer ---

std::vector<Token> Lex(const std::string& s) {
  auto r = Tokenize(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : std::vector<Token>{};
}

TEST(LexerTest, BasicTokens) {
  auto toks = Lex("SELECT ?x WHERE { ?x <http://p> \"v\"@en . }");
  ASSERT_GE(toks.size(), 10u);
  EXPECT_EQ(toks[0].type, TokenType::kKeyword);
  EXPECT_EQ(toks[0].text, "SELECT");
  EXPECT_EQ(toks[1].type, TokenType::kVariable);
  EXPECT_EQ(toks[1].text, "x");
  EXPECT_EQ(toks[4].type, TokenType::kVariable);
  EXPECT_EQ(toks[5].type, TokenType::kIriRef);
  EXPECT_EQ(toks[5].text, "http://p");
  EXPECT_EQ(toks[6].type, TokenType::kString);
  EXPECT_EQ(toks[7].type, TokenType::kLangTag);
  EXPECT_EQ(toks[7].text, "en");
}

TEST(LexerTest, PrefixedNames) {
  auto toks = Lex("foaf:name dbr:Category:Cell_biology :bare");
  EXPECT_EQ(toks[0].type, TokenType::kPrefixedName);
  EXPECT_EQ(toks[0].text, "foaf:name");
  EXPECT_EQ(toks[1].type, TokenType::kPrefixedName);
  EXPECT_EQ(toks[1].text, "dbr:Category:Cell_biology");
  EXPECT_EQ(toks[2].type, TokenType::kPrefixedName);
}

TEST(LexerTest, TrailingDotSplitsFromName) {
  auto toks = Lex("ub:name.");
  ASSERT_GE(toks.size(), 3u);
  EXPECT_EQ(toks[0].type, TokenType::kPrefixedName);
  EXPECT_EQ(toks[0].text, "ub:name");
  EXPECT_EQ(toks[1].type, TokenType::kDot);
}

TEST(LexerTest, AKeyword) {
  auto toks = Lex("?x a dbo:Person");
  EXPECT_EQ(toks[1].type, TokenType::kA);
}

TEST(LexerTest, Comments) {
  auto toks = Lex("?x # comment to end\n?y");
  EXPECT_EQ(toks[0].type, TokenType::kVariable);
  EXPECT_EQ(toks[1].type, TokenType::kVariable);
  EXPECT_EQ(toks[1].text, "y");
}

TEST(LexerTest, ComparisonOperators) {
  auto toks = Lex("= != < > <= >= && || !");
  EXPECT_EQ(toks[0].type, TokenType::kEq);
  EXPECT_EQ(toks[1].type, TokenType::kNeq);
  EXPECT_EQ(toks[2].type, TokenType::kLt);
  EXPECT_EQ(toks[3].type, TokenType::kGt);
  EXPECT_EQ(toks[4].type, TokenType::kLe);
  EXPECT_EQ(toks[5].type, TokenType::kGe);
  EXPECT_EQ(toks[6].type, TokenType::kAndAnd);
  EXPECT_EQ(toks[7].type, TokenType::kOrOr);
  EXPECT_EQ(toks[8].type, TokenType::kBang);
}

TEST(LexerTest, LessThanVsIri) {
  auto toks = Lex("?x < 5");
  EXPECT_EQ(toks[1].type, TokenType::kLt);
  toks = Lex("<http://x>");
  EXPECT_EQ(toks[0].type, TokenType::kIriRef);
}

TEST(LexerTest, Numbers) {
  auto toks = Lex("42 3.14 -7");
  EXPECT_EQ(toks[0].type, TokenType::kNumber);
  EXPECT_EQ(toks[0].text, "42");
  EXPECT_EQ(toks[1].text, "3.14");
  EXPECT_EQ(toks[2].text, "-7");
}

TEST(LexerTest, StringEscapes) {
  auto toks = Lex(R"("with \"inner\" quotes")");
  EXPECT_EQ(toks[0].type, TokenType::kString);
  EXPECT_EQ(toks[0].text, "with \"inner\" quotes");
}

TEST(LexerTest, EmailInLiteral) {
  auto toks = Lex("\"Student91@Dept0.Univ0.edu\"");
  EXPECT_EQ(toks[0].type, TokenType::kString);
  EXPECT_EQ(toks[0].text, "Student91@Dept0.Univ0.edu");
  // No lang tag should follow.
  EXPECT_EQ(toks[1].type, TokenType::kEof);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("?").ok());
  EXPECT_FALSE(Tokenize("notakeyword").ok());
  EXPECT_FALSE(Tokenize("&x").ok());
}

// -------------------------------------------------------------- Parser ---

Query Parse(const std::string& s) {
  auto r = ParseQuery(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(*r) : Query{};
}

TEST(ParserTest, SimpleBgp) {
  Query q = Parse("SELECT ?x WHERE { ?x <http://p> <http://o> . }");
  EXPECT_EQ(q.projection.size(), 1u);
  ASSERT_EQ(q.where.elements.size(), 1u);
  EXPECT_EQ(q.where.elements[0].kind, PatternElement::Kind::kTriple);
  const TriplePattern& t = q.where.elements[0].triple;
  EXPECT_TRUE(t.s.is_var);
  EXPECT_FALSE(t.p.is_var);
  EXPECT_EQ(t.p.term.lexical, "http://p");
}

TEST(ParserTest, SelectStarAndBareSelect) {
  Query q1 = Parse("SELECT * WHERE { ?x <http://p> ?y . }");
  EXPECT_TRUE(q1.projection.empty());
  // The paper's appendix uses bare `SELECT WHERE`.
  Query q2 = Parse("SELECT WHERE { ?x <http://p> ?y . }");
  EXPECT_TRUE(q2.projection.empty());
}

TEST(ParserTest, Distinct) {
  Query q = Parse("SELECT DISTINCT ?x WHERE { ?x <http://p> ?y . }");
  EXPECT_TRUE(q.distinct);
}

TEST(ParserTest, PrefixExpansion) {
  Query q = Parse(
      "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
      "SELECT ?x WHERE { ?x foaf:name ?n . }");
  const TriplePattern& t = q.where.elements[0].triple;
  EXPECT_EQ(t.p.term.lexical, "http://xmlns.com/foaf/0.1/name");
}

TEST(ParserTest, UndeclaredPrefixFails) {
  auto r = ParseQuery("SELECT ?x WHERE { ?x foaf:name ?n . }");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(ParserTest, MultiColonPrefixedName) {
  Query q = Parse(
      "PREFIX dbr: <http://dbpedia.org/resource/>\n"
      "SELECT ?x WHERE { ?x <http://p> dbr:Category:Cell_biology . }");
  EXPECT_EQ(q.where.elements[0].triple.o.term.lexical,
            "http://dbpedia.org/resource/Category:Cell_biology");
}

TEST(ParserTest, AExpandsToRdfType) {
  Query q = Parse(
      "PREFIX dbo: <http://dbpedia.org/ontology/>\n"
      "SELECT ?x WHERE { ?x a dbo:Person . }");
  EXPECT_EQ(q.where.elements[0].triple.p.term.lexical,
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
}

TEST(ParserTest, Union) {
  Query q = Parse(
      "SELECT ?x WHERE { { ?x <http://a> ?y . } UNION { ?x <http://b> ?y . } }");
  ASSERT_EQ(q.where.elements.size(), 1u);
  EXPECT_EQ(q.where.elements[0].kind, PatternElement::Kind::kUnion);
  EXPECT_EQ(q.where.elements[0].groups.size(), 2u);
}

TEST(ParserTest, ThreeWayUnion) {
  Query q = Parse(
      "SELECT * WHERE { { ?x <http://a> ?y . } UNION { ?x <http://b> ?y . } "
      "UNION { ?x <http://c> ?y . } }");
  EXPECT_EQ(q.where.elements[0].groups.size(), 3u);
}

TEST(ParserTest, Optional) {
  Query q = Parse(
      "SELECT * WHERE { ?x <http://a> ?y . OPTIONAL { ?x <http://b> ?z . } }");
  ASSERT_EQ(q.where.elements.size(), 2u);
  EXPECT_EQ(q.where.elements[1].kind, PatternElement::Kind::kOptional);
}

TEST(ParserTest, NestedOptionals) {
  Query q = Parse(
      "SELECT * WHERE { ?x <http://a> ?y . OPTIONAL { ?y <http://b> ?z . "
      "OPTIONAL { ?z <http://c> ?w . } } }");
  const auto& opt = q.where.elements[1];
  ASSERT_EQ(opt.groups.size(), 1u);
  EXPECT_EQ(opt.groups[0].elements[1].kind, PatternElement::Kind::kOptional);
}

TEST(ParserTest, NestedGroup) {
  Query q = Parse("SELECT * WHERE { { ?x <http://a> ?y . } ?y <http://b> ?z . }");
  EXPECT_EQ(q.where.elements[0].kind, PatternElement::Kind::kGroup);
  EXPECT_EQ(q.where.elements[1].kind, PatternElement::Kind::kTriple);
}

TEST(ParserTest, PredicateObjectLists) {
  Query q = Parse(
      "SELECT * WHERE { ?x <http://a> ?y ; <http://b> ?z , ?w . }");
  ASSERT_EQ(q.where.elements.size(), 3u);
  for (const auto& e : q.where.elements)
    EXPECT_EQ(e.kind, PatternElement::Kind::kTriple);
  // Subject shared by all three.
  EXPECT_EQ(q.where.elements[0].triple.s.var, q.where.elements[2].triple.s.var);
}

TEST(ParserTest, LiteralObjects) {
  Query q = Parse(
      "SELECT * WHERE { ?x <http://name> \"Alice\"@en . ?x <http://age> 30 . }");
  const Term& name = q.where.elements[0].triple.o.term;
  EXPECT_EQ(name.lexical, "Alice");
  EXPECT_EQ(name.qualifier, "en");
  const Term& age = q.where.elements[1].triple.o.term;
  EXPECT_EQ(age.lexical, "30");
  EXPECT_EQ(age.qualifier, "http://www.w3.org/2001/XMLSchema#integer");
}

TEST(ParserTest, Filter) {
  Query q = Parse(
      "SELECT * WHERE { ?x <http://age> ?a . FILTER(?a > 21 && BOUND(?x)) }");
  ASSERT_EQ(q.where.elements.size(), 2u);
  ASSERT_EQ(q.where.elements[1].kind, PatternElement::Kind::kFilter);
  EXPECT_EQ(q.where.elements[1].filter.op, FilterExpr::Op::kAnd);
}

TEST(ParserTest, VariableIdsStable) {
  Query q = Parse("SELECT * WHERE { ?x <http://a> ?y . ?y <http://b> ?x . }");
  const auto& t0 = q.where.elements[0].triple;
  const auto& t1 = q.where.elements[1].triple;
  EXPECT_EQ(t0.s.var, t1.o.var);
  EXPECT_EQ(t0.o.var, t1.s.var);
  EXPECT_EQ(q.vars.size(), 2u);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("SELECT * { ?x <http://p> ?y . }").ok());  // no WHERE
  EXPECT_FALSE(ParseQuery("SELECT * WHERE { ?x <http://p> }").ok());
  EXPECT_FALSE(ParseQuery("SELECT * WHERE { ?x <http://p> ?y . ").ok());
  EXPECT_FALSE(ParseQuery("SELECT * WHERE { } trailing").ok());
}

TEST(ParserTest, CoalescabilityHelpers) {
  Query q = Parse(
      "SELECT * WHERE { ?x <http://a> ?y . ?y <http://b> ?z . ?w <http://c> ?v . }");
  const auto& t0 = q.where.elements[0].triple;
  const auto& t1 = q.where.elements[1].triple;
  const auto& t2 = q.where.elements[2].triple;
  EXPECT_TRUE(Coalescable(t0, t1));   // share ?y at s/o positions
  EXPECT_FALSE(Coalescable(t0, t2));  // no shared vars
}

TEST(ParserTest, PredicateVariableNotCoalescable) {
  // Definition 3 only considers subject/object positions.
  Query q = Parse("SELECT * WHERE { ?x <http://a> ?y . ?a ?y ?b . }");
  const auto& t0 = q.where.elements[0].triple;
  const auto& t1 = q.where.elements[1].triple;
  EXPECT_FALSE(Coalescable(t0, t1));
}

TEST(ParserTest, RoundTripThroughToString) {
  const char* text =
      "SELECT * WHERE { ?x <http://a> ?y . OPTIONAL { ?y <http://b> ?z . } "
      "{ ?x <http://c> ?w . } UNION { ?x <http://d> ?w . } }";
  Query q1 = Parse(text);
  std::string printed = ToString(q1);
  Query q2 = Parse(printed);
  // Compare structure: same element kinds at top level.
  ASSERT_EQ(q1.where.elements.size(), q2.where.elements.size());
  for (size_t i = 0; i < q1.where.elements.size(); ++i)
    EXPECT_EQ(q1.where.elements[i].kind, q2.where.elements[i].kind);
}

TEST(ParserTest, AllPaperQueriesHaveValidSyntaxShape) {
  // Spot-check the trickiest constructs from the appendix.
  EXPECT_TRUE(ParseQuery(
      "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
      "SELECT WHERE {\n"
      " ?v3 ub:emailAddress \"UndergraduateStudent91@Department0.University0.edu\" .\n"
      " ?v2 ub:emailAddress ?v1 .\n"
      " OPTIONAL { ?v2 ub:teacherOf ?v4 . ?v3 ub:takesCourse ?v4 . } }")
                  .ok());
  EXPECT_TRUE(ParseQuery(
      "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
      "SELECT WHERE { { ?v2 foaf:primaryTopic ?v1 . } UNION "
      "{ ?v1 foaf:isPrimaryTopicOf ?v2 . } OPTIONAL { { ?v7 foaf:primaryTopic "
      "?v5 . } UNION { ?v5 foaf:isPrimaryTopicOf ?v7 . } } }")
                  .ok());
}

}  // namespace
}  // namespace sparqluo
