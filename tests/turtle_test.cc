// Turtle subset reader tests.
#include <gtest/gtest.h>

#include "engine/database.h"
#include "rdf/turtle.h"

namespace sparqluo {
namespace {

size_t CountTriples(const std::string& ttl, Status* status = nullptr) {
  Dictionary dict;
  TripleStore store;
  Status st = ParseTurtleString(ttl, &dict, &store);
  if (status) *status = st;
  if (!st.ok()) return 0;
  store.Build();
  return store.size();
}

TEST(TurtleTest, BasicTriples) {
  EXPECT_EQ(CountTriples("<http://a> <http://p> <http://b> .\n"
                         "<http://a> <http://q> \"v\" ."),
            2u);
}

TEST(TurtleTest, PrefixDirectives) {
  Status st;
  size_t n = CountTriples(
      "@prefix ex: <http://ex.org/> .\n"
      "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
      "ex:alice foaf:knows ex:bob .\n",
      &st);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(n, 1u);
}

TEST(TurtleTest, EmptyPrefix) {
  Status st;
  size_t n = CountTriples(
      "@prefix : <http://ex.org/> .\n"
      ": a :b .\n" /* ':' is the empty-prefix name for <http://ex.org/> */,
      &st);
  // ': a :b .' -> subject :, predicate a (rdf:type), object :b.
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(n, 1u);
}

TEST(TurtleTest, PredicateAndObjectLists) {
  Dictionary dict;
  TripleStore store;
  Status st = ParseTurtleString(
      "@prefix ex: <http://ex.org/> .\n"
      "ex:a ex:p ex:b , ex:c ;\n"
      "     ex:q \"x\"@en ;\n"
      "     a ex:Thing .\n",
      &dict, &store);
  ASSERT_TRUE(st.ok()) << st.ToString();
  store.Build();
  EXPECT_EQ(store.size(), 4u);
  // The 'a' shorthand expanded to rdf:type.
  TermId type = dict.Lookup(
      Term::Iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"));
  ASSERT_NE(type, kInvalidTermId);
  TriplePatternIds q;
  q.p = type;
  EXPECT_EQ(store.Count(q), 1u);
}

TEST(TurtleTest, TrailingSemicolonBeforeDot) {
  Status st;
  size_t n = CountTriples(
      "@prefix ex: <http://ex.org/> .\n"
      "ex:a ex:p ex:b ; .\n",
      &st);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(n, 1u);
}

TEST(TurtleTest, LiteralsNumbersAndBlanks) {
  Dictionary dict;
  TripleStore store;
  Status st = ParseTurtleString(
      "@prefix ex: <http://ex.org/> .\n"
      "_:b1 ex:age 30 .\n"
      "_:b1 ex:height 1.85 .\n"
      "_:b1 ex:name \"Anna\"@de .\n"
      "_:b1 ex:id \"x7\"^^ex:Code .\n",
      &dict, &store);
  ASSERT_TRUE(st.ok()) << st.ToString();
  store.Build();
  EXPECT_EQ(store.size(), 4u);
  EXPECT_NE(dict.Lookup(Term::TypedLiteral(
                "30", "http://www.w3.org/2001/XMLSchema#integer")),
            kInvalidTermId);
  EXPECT_NE(dict.Lookup(Term::TypedLiteral("x7", "http://ex.org/Code")),
            kInvalidTermId);
  EXPECT_NE(dict.Lookup(Term::Blank("b1")), kInvalidTermId);
}

TEST(TurtleTest, BaseResolution) {
  Dictionary dict;
  TripleStore store;
  Status st = ParseTurtleString(
      "@base <http://ex.org/> .\n"
      "<alice> <knows> <bob> .\n"
      "<http://other.org/x> <knows> <alice> .\n",
      &dict, &store);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_NE(dict.Lookup(Term::Iri("http://ex.org/alice")), kInvalidTermId);
  EXPECT_NE(dict.Lookup(Term::Iri("http://other.org/x")), kInvalidTermId);
}

TEST(TurtleTest, Comments) {
  EXPECT_EQ(CountTriples("# a comment\n"
                         "<http://a> <http://p> <http://b> . # trailing\n"),
            1u);
}

TEST(TurtleTest, Errors) {
  Status st;
  CountTriples("<http://a> <http://p> .", &st);  // missing object
  EXPECT_FALSE(st.ok());
  CountTriples("ex:a ex:p ex:b .", &st);  // undeclared prefix
  EXPECT_FALSE(st.ok());
  CountTriples("<http://a> <http://p> <http://b>", &st);  // missing dot
  EXPECT_FALSE(st.ok());
  CountTriples("\"lit\" <http://p> <http://b> .", &st);  // literal subject
  EXPECT_FALSE(st.ok());
  CountTriples("@prefix ex <http://x> .", &st);  // malformed directive
  EXPECT_FALSE(st.ok());
  CountTriples("?x <http://p> <http://b> .", &st);  // variable in data
  EXPECT_FALSE(st.ok());
}

TEST(TurtleTest, DatabaseIntegration) {
  Database db;
  ASSERT_TRUE(db.LoadTurtleString(
                    "@prefix ex: <http://ex.org/> .\n"
                    "ex:alice ex:knows ex:bob ; ex:name \"Alice\" .\n"
                    "ex:bob ex:name \"Bob\" .\n")
                  .ok());
  db.Finalize();
  auto r = db.Query(
      "PREFIX ex: <http://ex.org/>\n"
      "SELECT ?n WHERE { ex:alice ex:knows ?x . ?x ex:name ?n . }");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ(db.dict().Decode(r->At(0, 0)).lexical, "Bob");
}

}  // namespace
}  // namespace sparqluo
