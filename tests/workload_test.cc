#include <gtest/gtest.h>

#include "engine/database.h"
#include "workload/dbpedia_generator.h"
#include "workload/lubm_generator.h"
#include "workload/paper_queries.h"

namespace sparqluo {
namespace {

// ---------------------------------------------------------------- LUBM ---

class LubmTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    LubmConfig cfg;
    cfg.universities = 1;
    GenerateLubm(cfg, db_);
    db_->Finalize(EngineKind::kWco);
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* LubmTest::db_ = nullptr;

TEST_F(LubmTest, ScaleMatchesRealLubmDensity) {
  // LUBM(1) is roughly 100k triples.
  EXPECT_GT(db_->size(), 60000u);
  EXPECT_LT(db_->size(), 200000u);
}

TEST_F(LubmTest, Deterministic) {
  Database db2;
  LubmConfig cfg;
  cfg.universities = 1;
  GenerateLubm(cfg, &db2);
  db2.Finalize();
  EXPECT_EQ(db_->size(), db2.size());
}

TEST_F(LubmTest, SchemaEntitiesExist) {
  // The concrete IRIs the paper's queries reference must exist.
  EXPECT_NE(db_->dict().Lookup(Term::Iri(
                "http://www.Department0.University0.edu/UndergraduateStudent91")),
            kInvalidTermId);
  EXPECT_NE(db_->dict().Lookup(Term::Iri("http://www.Department0.University0.edu")),
            kInvalidTermId);
  EXPECT_NE(db_->dict().Lookup(Term::Literal(
                "UndergraduateStudent91@Department0.University0.edu")),
            kInvalidTermId);
}

TEST_F(LubmTest, PredicateMixMatchesSchema) {
  const Statistics& st = db_->stats();
  auto count = [&](const std::string& local) {
    TermId p = db_->dict().Lookup(Term::Iri(std::string(kUbPrefix) + local));
    return p == kInvalidTermId ? uint64_t{0} : st.ForPredicate(p).count;
  };
  EXPECT_GT(count("takesCourse"), count("teacherOf"));
  EXPECT_GT(count("memberOf"), count("worksFor"));
  EXPECT_GT(count("advisor"), 0u);
  EXPECT_GT(count("teachingAssistantOf"), 0u);
  EXPECT_GT(count("subOrganizationOf"), 0u);
  EXPECT_GT(count("publicationAuthor"), 0u);
  EXPECT_GT(count("headOf"), 0u);
}

TEST_F(LubmTest, DepartmentZeroHasManyStudents) {
  TermId member_of =
      db_->dict().Lookup(Term::Iri(std::string(kUbPrefix) + "memberOf"));
  TermId dept0 =
      db_->dict().Lookup(Term::Iri("http://www.Department0.University0.edu"));
  ASSERT_NE(member_of, kInvalidTermId);
  ASSERT_NE(dept0, kInvalidTermId);
  TriplePatternIds q;
  q.p = member_of;
  q.o = dept0;
  EXPECT_GT(db_->store().Count(q), 300u);
}

TEST_F(LubmTest, PaperQueriesParse) {
  for (const PaperQuery& pq : LubmPaperQueries()) {
    auto q = db_->Parse(pq.sparql);
    EXPECT_TRUE(q.ok()) << pq.id << ": " << q.status().ToString();
  }
}

TEST_F(LubmTest, Group1QueriesReturnResultsAtScale1) {
  // Queries anchored on University0 entities must bind at scale 1.
  for (const char* id : {"q1.1", "q1.2", "q1.3", "q1.5"}) {
    const PaperQuery* pq = FindQuery(LubmPaperQueries(), id);
    ASSERT_NE(pq, nullptr);
    auto r = db_->Query(pq->sparql, ExecOptions::Full());
    ASSERT_TRUE(r.ok()) << id << ": " << r.status().ToString();
    EXPECT_GT(r->size(), 0u) << id;
  }
}

TEST_F(LubmTest, QueryTypeLabelsConsistent) {
  for (const PaperQuery& pq : LubmPaperQueries()) {
    bool has_union = pq.sparql.find("UNION") != std::string::npos;
    bool has_optional = pq.sparql.find("OPTIONAL") != std::string::npos;
    if (pq.type == "U") EXPECT_TRUE(has_union && !has_optional) << pq.id;
    if (pq.type == "O") EXPECT_TRUE(has_optional && !has_union) << pq.id;
    if (pq.type == "UO") EXPECT_TRUE(has_union && has_optional) << pq.id;
  }
}

// ------------------------------------------------------------- DBpedia ---

class DbpediaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    DbpediaConfig cfg;
    cfg.articles = 5000;
    GenerateDbpedia(cfg, db_);
    db_->Finalize(EngineKind::kWco);
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* DbpediaTest::db_ = nullptr;

TEST_F(DbpediaTest, AnchorsExistAndAreSelective) {
  TermId wikilink = db_->dict().Lookup(
      Term::Iri("http://dbpedia.org/ontology/wikiPageWikiLink"));
  ASSERT_NE(wikilink, kInvalidTermId);
  for (const char* anchor :
       {"http://dbpedia.org/resource/Economic_system",
        "http://dbpedia.org/resource/Abdul_Rahim_Wardak",
        "http://dbpedia.org/resource/Category:Cell_biology"}) {
    TermId a = db_->dict().Lookup(Term::Iri(anchor));
    ASSERT_NE(a, kInvalidTermId) << anchor;
    TriplePatternIds q;
    q.p = wikilink;
    q.o = a;
    size_t in_links = db_->store().Count(q);
    EXPECT_GT(in_links, 0u) << anchor;
    // Selective: well under 5% of the dataset.
    EXPECT_LT(in_links, db_->size() / 20) << anchor;
  }
}

TEST_F(DbpediaTest, SkewedLinkDistribution) {
  // Hub articles (low ids under Zipf) receive far more in-links.
  TermId wikilink = db_->dict().Lookup(
      Term::Iri("http://dbpedia.org/ontology/wikiPageWikiLink"));
  auto inlinks = [&](const std::string& art) {
    TermId a = db_->dict().Lookup(Term::Iri(art));
    if (a == kInvalidTermId) return size_t{0};
    TriplePatternIds q;
    q.p = wikilink;
    q.o = a;
    return db_->store().Count(q);
  };
  size_t hub = inlinks("http://dbpedia.org/resource/Article_0");
  size_t tail = inlinks("http://dbpedia.org/resource/Article_4900");
  EXPECT_GT(hub, tail * 2);
}

TEST_F(DbpediaTest, PaperQueriesParse) {
  for (const PaperQuery& pq : DbpediaPaperQueries()) {
    auto q = db_->Parse(pq.sparql);
    EXPECT_TRUE(q.ok()) << pq.id << ": " << q.status().ToString();
  }
}

TEST_F(DbpediaTest, Group1QueriesReturnResults) {
  for (const char* id : {"q1.1", "q1.2", "q1.5"}) {
    const PaperQuery* pq = FindQuery(DbpediaPaperQueries(), id);
    ASSERT_NE(pq, nullptr);
    auto r = db_->Query(pq->sparql, ExecOptions::Full());
    ASSERT_TRUE(r.ok()) << id << ": " << r.status().ToString();
    EXPECT_GT(r->size(), 0u) << id;
  }
}

TEST_F(DbpediaTest, Group2QueriesReturnResults) {
  for (const char* id : {"q2.1", "q2.2", "q2.3", "q2.5", "q2.6"}) {
    const PaperQuery* pq = FindQuery(DbpediaPaperQueries(), id);
    ASSERT_NE(pq, nullptr);
    auto r = db_->Query(pq->sparql, ExecOptions::Full());
    ASSERT_TRUE(r.ok()) << id << ": " << r.status().ToString();
    EXPECT_GT(r->size(), 0u) << id;
  }
}

TEST_F(DbpediaTest, TypedPopulationsPresent) {
  auto has_type = [&](const std::string& cls) {
    TermId type = db_->dict().Lookup(
        Term::Iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"));
    TermId c = db_->dict().Lookup(Term::Iri("http://dbpedia.org/ontology/" + cls));
    if (type == kInvalidTermId || c == kInvalidTermId) return size_t{0};
    TriplePatternIds q;
    q.p = type;
    q.o = c;
    return db_->store().Count(q);
  };
  EXPECT_GT(has_type("PopulatedPlace"), 0u);
  EXPECT_GT(has_type("Settlement"), 0u);
  EXPECT_GT(has_type("Airport"), 0u);
  EXPECT_GT(has_type("SoccerPlayer"), 0u);
  EXPECT_GT(has_type("Person"), 0u);
}

}  // namespace
}  // namespace sparqluo
