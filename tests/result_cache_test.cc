// Result cache, in-flight dedup and cache/pin lifecycle tests
// (src/server/result_cache.h, src/server/query_service.h):
//
//   - ResultCache unit behavior: byte-budgeted LRU, oversize rejection,
//     version-scoped EvictUnreachable, zero-budget no-op,
//   - byte-identity of cached responses against cold execution across
//     engines (WCO, hash-join, adaptive), parallelism 1 and 8, and the
//     JSON/TSV wire serializations,
//   - in-flight dedup: followers share a leader's rows, a follower's
//     deadline never cancels the leader, and a failed leader makes
//     followers execute for themselves (errors are never shared or
//     cached),
//   - the pin lifecycle: entries for a version pinned by in-flight
//     requests survive commits until the last pin releases, and the
//     distinct-version pin gauge vs the total-request pin gauge,
//   - the commit-time invalidation hook runs with the plan cache
//     disabled (regression: it used to be gated on enable_plan_cache),
//   - the adaptive engine records per-BGP choices in counters and trace
//     spans.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "engine/result_writer.h"
#include "obs/metrics.h"
#include "server/plan_cache.h"
#include "server/query_service.h"
#include "server/result_cache.h"
#include "workload/lubm_generator.h"
#include "workload/paper_queries.h"

namespace sparqluo {
namespace {

/// Exact (bitwise) equality: same schema, same rows in the same order.
bool BitIdentical(const BindingSet& a, const BindingSet& b) {
  if (a.schema() != b.schema() || a.size() != b.size()) return false;
  for (size_t r = 0; r < a.size(); ++r)
    for (size_t c = 0; c < a.width(); ++c)
      if (a.At(r, c) != b.At(r, c)) return false;
  return true;
}

/// A knows-chain: its all-pairs closure ?x knows+ ?y yields ~n^2/2 rows,
/// slow enough (hundreds of ms) that followers reliably register against
/// the leader, but bounded — it completes with an OK status.
std::string ChainNTriples(int n) {
  std::string nt;
  for (int i = 0; i < n; ++i)
    nt += "<http://ex.org/n" + std::to_string(i) + "> <http://ex.org/knows> " +
          "<http://ex.org/n" + std::to_string(i + 1) + "> .\n";
  return nt;
}

const char* kClosureQuery =
    "SELECT ?x ?y WHERE { ?x <http://ex.org/knows>+ ?y }";

/// Cross product over a LUBM store: effectively unbounded, used as a
/// blocker that holds its pinned version until explicitly cancelled.
const char* kBlockerQuery = "SELECT * WHERE { ?a ?p ?b . ?c ?q ?d . }";

std::shared_ptr<const CachedResult> MakeResult(size_t rows, size_t width) {
  auto result = std::make_shared<CachedResult>();
  std::vector<VarId> schema;
  for (size_t c = 0; c < width; ++c) schema.push_back(static_cast<VarId>(c));
  result->rows = BindingSet(std::move(schema));
  std::vector<TermId> row(width, TermId{1});
  for (size_t r = 0; r < rows; ++r) result->rows.AppendRow(row);
  return result;
}

// --- ResultCache unit behavior ------------------------------------------

TEST(ResultCacheTest, HitReturnsSharedResultMissReturnsNull) {
  ResultCache cache(/*byte_budget=*/1 << 20, /*shards=*/1);
  auto result = MakeResult(10, 2);
  cache.Put("k", result, /*version=*/0);
  EXPECT_EQ(cache.Get("absent"), nullptr);
  auto hit = cache.Get("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), result.get());  // shared, not copied
  ResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(ResultCacheTest, ByteBudgetEvictsLeastRecentlyUsed) {
  auto result = MakeResult(10, 2);
  const size_t entry = ResultCache::EntryBytes("a", *result);
  // Room for two entries but not three.
  ResultCache cache(2 * entry + entry / 2, /*shards=*/1);
  cache.Put("a", result, 0);
  cache.Put("b", result, 0);
  EXPECT_NE(cache.Get("a"), nullptr);  // touch a; b is now LRU
  cache.Put("c", result, 0);           // evicts b
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  ResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.bytes, cache.byte_budget());
}

TEST(ResultCacheTest, OversizeResultIsNeverCached) {
  auto small = MakeResult(2, 2);
  auto big = MakeResult(100000, 4);
  ResultCache cache(ResultCache::EntryBytes("s", *small) * 3, /*shards=*/1);
  cache.Put("s", small, 0);
  cache.Put("big", big, 0);  // larger than the whole shard budget
  EXPECT_EQ(cache.Get("big"), nullptr);
  // The oversize insert must not have evicted the resident small entry.
  EXPECT_NE(cache.Get("s"), nullptr);
  ResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.oversize, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultCacheTest, ZeroBudgetDisablesInsertion) {
  ResultCache cache(/*byte_budget=*/0, /*shards=*/4);
  cache.Put("k", MakeResult(1, 1), 0);
  EXPECT_EQ(cache.Get("k"), nullptr);
  EXPECT_EQ(cache.GetStats().entries, 0u);
}

TEST(ResultCacheTest, EvictUnreachableIsVersionScoped) {
  ResultCache cache(/*byte_budget=*/1 << 20, /*shards=*/2);
  auto result = MakeResult(4, 1);
  cache.Put("q1@v0", result, 0);
  cache.Put("q2@v0", result, 0);
  cache.Put("q1@v1", result, 1);
  cache.Put("q1@v2", result, 2);

  // Current v2 with a reader pinned to v1: only the v0 entries go.
  cache.EvictUnreachable(2, {1});
  EXPECT_EQ(cache.Get("q1@v0"), nullptr);
  EXPECT_EQ(cache.Get("q2@v0"), nullptr);
  EXPECT_NE(cache.Get("q1@v1"), nullptr);
  EXPECT_NE(cache.Get("q1@v2"), nullptr);
  EXPECT_EQ(cache.GetStats().evictions, 2u);

  // The v1 pin released: the v1 entry is unreachable at the next sweep.
  cache.EvictUnreachable(2, {});
  EXPECT_EQ(cache.Get("q1@v1"), nullptr);
  EXPECT_NE(cache.Get("q1@v2"), nullptr);
  EXPECT_EQ(cache.GetStats().entries, 1u);
}

TEST(ResultCacheTest, ClearDropsEntriesKeepsCounters) {
  ResultCache cache(/*byte_budget=*/1 << 20, /*shards=*/2);
  cache.Put("a", MakeResult(2, 1), 0);
  ASSERT_NE(cache.Get("a"), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.Get("a"), nullptr);
  ResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.hits, 1u);  // pre-Clear counters survive
}

// --- Byte-identity of cached responses ----------------------------------

class ResultCacheServiceTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  void SetUp() override {
    LubmConfig cfg;
    cfg.universities = 1;
    GenerateLubm(cfg, &db_);
    db_.Finalize(GetParam());
  }

  Database db_;
};

INSTANTIATE_TEST_SUITE_P(Engines, ResultCacheServiceTest,
                         ::testing::Values(EngineKind::kWco,
                                           EngineKind::kHashJoin,
                                           EngineKind::kAdaptive),
                         [](const auto& info) {
                           switch (info.param) {
                             case EngineKind::kWco: return "Wco";
                             case EngineKind::kHashJoin: return "HashJoin";
                             default: return "Adaptive";
                           }
                         });

// A result-cache hit returns the exact bytes a cold execution produced:
// same BindingSet bit for bit and same JSON/TSV serializations, at
// sequential and 8-way intra-query parallelism.
TEST_P(ResultCacheServiceTest, CachedRepeatIsByteIdenticalToColdRun) {
  const auto& workload = LubmPaperQueries();
  for (size_t parallelism : {size_t{1}, size_t{8}}) {
    QueryService::Options sopts;
    sopts.num_threads = 2;
    sopts.intra_query_parallelism = parallelism;
    QueryService service(static_cast<const Database&>(db_), sopts);

    for (const PaperQuery& q : workload) {
      QueryRequest cold_req;
      cold_req.text = q.sparql;
      QueryResponse cold = service.Submit(std::move(cold_req)).get();
      if (!cold.status.ok()) continue;  // row-limit-guarded heavy queries
      EXPECT_FALSE(cold.result_cache_hit);

      QueryRequest warm_req;
      warm_req.text = q.sparql;
      QueryResponse warm = service.Submit(std::move(warm_req)).get();
      ASSERT_TRUE(warm.status.ok()) << q.id << ": " << warm.status.ToString();
      EXPECT_TRUE(warm.result_cache_hit) << q.id;
      EXPECT_TRUE(BitIdentical(warm.rows, cold.rows)) << q.id;
      ASSERT_NE(warm.plan, nullptr);
      ASSERT_NE(cold.plan, nullptr);
      // The wire bytes must match too, in both formats.
      EXPECT_EQ(FormatResults(warm.rows, warm.plan->query.vars, db_.dict(),
                              ResultFormat::kJson),
                FormatResults(cold.rows, cold.plan->query.vars, db_.dict(),
                              ResultFormat::kJson))
          << q.id;
      EXPECT_EQ(FormatResults(warm.rows, warm.plan->query.vars, db_.dict(),
                              ResultFormat::kTsv),
                FormatResults(cold.rows, cold.plan->query.vars, db_.dict(),
                              ResultFormat::kTsv))
          << q.id;
      // A result-cache hit does no engine work (metrics stay zero).
      EXPECT_EQ(warm.metrics.exec_ms, 0.0) << q.id;
      EXPECT_EQ(warm.metrics.result_rows, 0u) << q.id;
    }
    EXPECT_GT(service.ResultCacheStats().hits, 0u);
  }
}

// The adaptive engine makes a per-BGP choice, records it in the merged
// engine counters, and exposes it as the bgp span's "engine" attribute.
TEST(AdaptiveEngineServiceTest, PerBgpChoiceIsCountedAndTraced) {
  Database db;
  LubmConfig cfg;
  cfg.universities = 1;
  GenerateLubm(cfg, &db);
  db.Finalize(EngineKind::kAdaptive);

  QueryService::Options sopts;
  sopts.num_threads = 2;
  QueryService service(static_cast<const Database&>(db), sopts);

  const auto& workload = LubmPaperQueries();
  for (const PaperQuery& q : workload) {
    QueryRequest req;
    req.text = q.sparql;
    req.trace = std::make_shared<TraceContext>();
    QueryResponse r = service.Submit(std::move(req)).get();
    if (!r.status.ok()) continue;
    ASSERT_NE(r.trace, nullptr);
    for (const TraceSpan& span : r.trace->Snapshot()) {
      if (span.name != "bgp") continue;
      bool saw_engine = false;
      for (const auto& [key, value] : span.attrs) {
        if (key != "engine") continue;
        saw_engine = true;
        EXPECT_TRUE(value == "gStore-WCO" || value == "Jena-HashJoin")
            << q.id << ": adaptive bgp span reports engine=" << value;
      }
      EXPECT_TRUE(saw_engine) << q.id << ": bgp span missing engine attr";
    }
  }
  ServiceStatsSnapshot stats = service.Stats();
  EXPECT_GT(stats.bgp.wco_evals + stats.bgp.hashjoin_evals, 0u)
      << "adaptive engine recorded no per-BGP choices";
}

// --- In-flight dedup -----------------------------------------------------

class DedupTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.LoadNTriplesString(ChainNTriples(3000)).ok());
    db_.Finalize(EngineKind::kWco);
  }

  /// Spins until the service has started executing `n` cold queries
  /// (observable as plan-cache misses: recorded before execution starts).
  static void WaitForMisses(const QueryService& service, uint64_t n) {
    while (service.CacheStats().misses < n)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  Database db_;
};

// Followers submitted while an identical query is executing wait for the
// leader and share its rows: one execution, K+1 identical responses.
TEST_F(DedupTest, FollowersShareLeaderRows) {
  QueryService::Options sopts;
  sopts.num_threads = 4;
  QueryService service(static_cast<const Database&>(db_), sopts);

  QueryRequest leader_req;
  leader_req.text = kClosureQuery;
  auto leader_future = service.Submit(std::move(leader_req));
  WaitForMisses(service, 1);  // leader is past the caches and executing

  constexpr int kFollowers = 3;
  std::vector<std::future<QueryResponse>> followers;
  for (int i = 0; i < kFollowers; ++i) {
    QueryRequest req;
    req.text = kClosureQuery;
    followers.push_back(service.Submit(std::move(req)));
  }

  QueryResponse leader = leader_future.get();
  ASSERT_TRUE(leader.status.ok()) << leader.status.ToString();
  EXPECT_FALSE(leader.deduped);
  EXPECT_GT(leader.rows.size(), 1000000u);

  for (auto& f : followers) {
    QueryResponse r = f.get();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_TRUE(r.deduped) << "follower executed instead of joining leader";
    EXPECT_TRUE(BitIdentical(r.rows, leader.rows));
    // Dedup does no engine work on the follower (metrics stay zero).
    EXPECT_EQ(r.metrics.exec_ms, 0.0);
  }
  ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.dedup_followers, static_cast<uint64_t>(kFollowers));
  EXPECT_EQ(stats.deduped, static_cast<uint64_t>(kFollowers));
  // Exactly one execution: every response beyond the leader's was shared.
  EXPECT_EQ(service.CacheStats().misses, 1u);
}

// A follower's own deadline aborts only its wait: the leader keeps
// running, and the follower's abort is reported exactly like any other
// deadline abort (408 over HTTP).
TEST_F(DedupTest, FollowerDeadlineDoesNotCancelLeader) {
  Database lubm;
  LubmConfig cfg;
  cfg.universities = 1;
  GenerateLubm(cfg, &lubm);
  lubm.Finalize(EngineKind::kWco);

  QueryService::Options sopts;
  sopts.num_threads = 4;
  QueryService service(static_cast<const Database&>(lubm), sopts);

  auto token = std::make_shared<CancelToken>();
  QueryRequest leader_req;
  leader_req.text = kBlockerQuery;
  leader_req.cancel = token;
  auto leader_future = service.Submit(std::move(leader_req));
  WaitForMisses(service, 1);

  QueryRequest follower_req;
  follower_req.text = kBlockerQuery;
  follower_req.deadline = std::chrono::milliseconds(20);
  QueryResponse follower = service.Submit(std::move(follower_req)).get();
  ASSERT_FALSE(follower.status.ok());
  EXPECT_EQ(follower.status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(follower.metrics.aborted);
  EXPECT_EQ(follower.metrics.abort_reason, AbortReason::kDeadline);
  EXPECT_FALSE(follower.deduped);

  // The leader must still be running: the follower's deadline expired,
  // the leader's (absent) one did not.
  EXPECT_EQ(leader_future.wait_for(std::chrono::milliseconds(0)),
            std::future_status::timeout)
      << "follower deadline cancelled the leader";

  token->RequestCancel();
  QueryResponse leader = leader_future.get();
  ASSERT_FALSE(leader.status.ok());
  EXPECT_EQ(leader.metrics.abort_reason, AbortReason::kCancelled);
  // Nothing was cached: neither the follower's abort nor the leader's.
  EXPECT_EQ(service.ResultCacheStats().entries, 0u);
}

// A failed leader never poisons followers: they fall through and execute
// for themselves, and no error is ever cached.
TEST_F(DedupTest, FailedLeaderMakesFollowersExecuteThemselves) {
  QueryService::Options sopts;
  sopts.num_threads = 4;
  QueryService service(static_cast<const Database&>(db_), sopts);

  // Cold reference for the follower's self-executed rows.
  BindingSet expected;
  {
    auto r = db_.Query(kClosureQuery, ExecOptions::Full());
    ASSERT_TRUE(r.ok());
    expected = std::move(*r);
  }
  auto token = std::make_shared<CancelToken>();
  QueryRequest leader_req;
  leader_req.text = kClosureQuery;
  leader_req.cancel = token;
  auto leader_future = service.Submit(std::move(leader_req));
  WaitForMisses(service, 1);

  QueryRequest follower_req;
  follower_req.text = kClosureQuery;
  auto follower_future = service.Submit(std::move(follower_req));
  // Only cancel the leader once the follower is provably waiting on it.
  while (service.Stats().dedup_followers < 1)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  token->RequestCancel();

  QueryResponse leader = leader_future.get();
  ASSERT_FALSE(leader.status.ok());
  EXPECT_EQ(leader.metrics.abort_reason, AbortReason::kCancelled);

  QueryResponse follower = follower_future.get();
  ASSERT_TRUE(follower.status.ok())
      << "failed leader poisoned its follower: "
      << follower.status.ToString();
  EXPECT_FALSE(follower.deduped);
  EXPECT_TRUE(BitIdentical(follower.rows, expected));

  ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.dedup_followers, 1u);
  EXPECT_EQ(stats.deduped, 0u);
  EXPECT_EQ(stats.aborted_cancelled, 1u);
  // Two executions happened: the aborted leader (a plan-cache miss) and
  // the follower retry, which reused the plan the leader built (a hit)
  // but had to run the engines itself.
  EXPECT_EQ(service.CacheStats().misses, 1u);
  EXPECT_EQ(service.CacheStats().hits, 1u);
}

// --- Pin lifecycle and commit-time invalidation --------------------------

// Two in-flight requests pinning one version count as one distinct pinned
// version (the gauge regression) and keep that version's plan- and
// result-cache entries alive across commits until the LAST pin releases.
TEST(CachePinLifecycleTest, EntriesSurviveUntilLastPinReleases) {
  Database db;
  LubmConfig cfg;
  cfg.universities = 1;
  GenerateLubm(cfg, &db);
  db.Finalize(EngineKind::kWco);

  QueryService::Options options;
  options.num_threads = 4;
  QueryService service(db, options);
  Gauge* pinned_versions =
      MetricRegistry::Global().GetGauge("sparqluo_pinned_versions");
  Gauge* pinned_requests =
      MetricRegistry::Global().GetGauge("sparqluo_pinned_requests");

  // Prime both caches at v0 with a cheap query.
  const std::string q = "SELECT ?x WHERE { ?x ?p ?o } LIMIT 5";
  QueryRequest prime;
  prime.text = q;
  ASSERT_TRUE(service.Submit(std::move(prime)).get().status.ok());
  ASSERT_EQ(service.ResultCacheStats().entries, 1u);
  ASSERT_GE(service.CacheStats().entries, 1u);

  // Two blockers pin v0. Both executing == both pinned.
  auto t1 = std::make_shared<CancelToken>();
  auto t2 = std::make_shared<CancelToken>();
  QueryRequest b1, b2;
  b1.text = kBlockerQuery;
  b1.cancel = t1;
  // A distinct text for the second blocker so it is a leader, not a
  // dedup follower (followers do not appear in the in-flight pin set
  // any differently, but two executions make the gauge check stronger).
  b2.text = "SELECT * WHERE { ?c ?q ?d . ?a ?p ?b . }";
  b2.cancel = t2;
  auto f1 = service.Submit(std::move(b1));
  auto f2 = service.Submit(std::move(b2));
  while (service.CacheStats().misses < 3)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  // Both requests pin the same version: one distinct version, two pins.
  EXPECT_EQ(pinned_versions->value(), 1);
  EXPECT_EQ(pinned_requests->value(), 2);

  auto commit = [&service](int i) {
    UpdateRequest u;
    u.text = "INSERT DATA { <http://ex.org/c" + std::to_string(i) +
             "> <http://ex.org/p> <http://ex.org/o> }";
    return service.SubmitUpdate(std::move(u)).get();
  };

  // Commit v1: v0 is pinned by both blockers, its entries survive.
  ASSERT_TRUE(commit(1).status.ok());
  EXPECT_EQ(service.ResultCacheStats().entries, 1u);

  // First pin releases; the second still protects v0 across a commit.
  t1->RequestCancel();
  f1.get();
  ASSERT_TRUE(commit(2).status.ok());
  EXPECT_EQ(service.ResultCacheStats().entries, 1u);
  EXPECT_EQ(pinned_versions->value(), 1);
  EXPECT_EQ(pinned_requests->value(), 1);

  // Last pin releases: the next commit's sweep reclaims the v0 entries.
  t2->RequestCancel();
  f2.get();
  EXPECT_EQ(pinned_versions->value(), 0);
  EXPECT_EQ(pinned_requests->value(), 0);
  ASSERT_TRUE(commit(3).status.ok());
  EXPECT_EQ(service.ResultCacheStats().entries, 0u);
  EXPECT_EQ(service.CacheStats().entries, 0u);

  // And the repeat query now executes against the new version — never a
  // stale cached answer.
  QueryRequest again;
  again.text = q;
  QueryResponse r = service.Submit(std::move(again)).get();
  ASSERT_TRUE(r.status.ok());
  EXPECT_FALSE(r.result_cache_hit);
  EXPECT_EQ(r.version, 3u);
}

// Regression: commit-time invalidation used to be gated on
// enable_plan_cache, so a service running with the plan cache disabled
// never swept the result cache. The sweep must run unconditionally.
TEST(CachePinLifecycleTest, InvalidationRunsWithPlanCacheDisabled) {
  Database db;
  db.AddTriple(Term::Iri("http://ex.org/s"), Term::Iri("http://ex.org/p"),
               Term::Iri("http://ex.org/o"));
  db.Finalize(EngineKind::kWco);

  QueryService::Options options;
  options.num_threads = 2;
  options.enable_plan_cache = false;
  QueryService service(db, options);

  const std::string q = "SELECT ?s WHERE { ?s <http://ex.org/p> ?o }";
  QueryRequest prime;
  prime.text = q;
  QueryResponse r0 = service.Submit(std::move(prime)).get();
  ASSERT_TRUE(r0.status.ok());
  EXPECT_EQ(r0.rows.size(), 1u);
  ASSERT_EQ(service.ResultCacheStats().entries, 1u);

  UpdateRequest u;
  u.text =
      "INSERT DATA { <http://ex.org/s2> <http://ex.org/p> "
      "<http://ex.org/o2> }";
  ASSERT_TRUE(service.SubmitUpdate(std::move(u)).get().status.ok());

  ResultCache::Stats after = service.ResultCacheStats();
  EXPECT_EQ(after.entries, 0u)
      << "plan cache disabled: commit did not sweep the result cache";
  EXPECT_EQ(after.evictions, 1u);

  // The repeat re-executes at v1 and sees the inserted triple.
  QueryRequest again;
  again.text = q;
  QueryResponse r1 = service.Submit(std::move(again)).get();
  ASSERT_TRUE(r1.status.ok());
  EXPECT_FALSE(r1.result_cache_hit);
  EXPECT_EQ(r1.version, 1u);
  EXPECT_EQ(r1.rows.size(), 2u);
}

// The invalidation hook is a store commit listener: it fires even for
// commits that bypass this service entirely (Database::Apply directly).
TEST(CachePinLifecycleTest, DirectDatabaseCommitSweepsServiceCaches) {
  Database db;
  db.AddTriple(Term::Iri("http://ex.org/s"), Term::Iri("http://ex.org/p"),
               Term::Iri("http://ex.org/o"));
  db.Finalize(EngineKind::kWco);

  QueryService::Options options;
  options.num_threads = 2;
  QueryService service(db, options);

  QueryRequest prime;
  prime.text = "SELECT ?s WHERE { ?s <http://ex.org/p> ?o }";
  ASSERT_TRUE(service.Submit(std::move(prime)).get().status.ok());
  ASSERT_EQ(service.ResultCacheStats().entries, 1u);
  ASSERT_GE(service.CacheStats().entries, 1u);

  UpdateBatch batch;
  batch.Insert(Term::Iri("http://ex.org/s3"), Term::Iri("http://ex.org/p"),
               Term::Iri("http://ex.org/o3"));
  auto stats = db.Apply(batch);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  EXPECT_EQ(service.ResultCacheStats().entries, 0u)
      << "direct Database::Apply commit did not reach the service's sweep";
  EXPECT_EQ(service.CacheStats().entries, 0u);
}

// Disabled result cache: repeats re-execute, no entries ever appear, and
// dedup can be switched off independently.
TEST(CachePinLifecycleTest, DisabledResultCacheNeverServesRepeats) {
  Database db;
  db.AddTriple(Term::Iri("http://ex.org/s"), Term::Iri("http://ex.org/p"),
               Term::Iri("http://ex.org/o"));
  db.Finalize(EngineKind::kWco);

  QueryService::Options options;
  options.num_threads = 1;
  options.enable_result_cache = false;
  options.enable_dedup = false;
  QueryService service(static_cast<const Database&>(db), options);

  QueryRequest a, b;
  a.text = b.text = "SELECT ?s WHERE { ?s <http://ex.org/p> ?o }";
  QueryResponse ra = service.Submit(std::move(a)).get();
  QueryResponse rb = service.Submit(std::move(b)).get();
  ASSERT_TRUE(ra.status.ok());
  ASSERT_TRUE(rb.status.ok());
  EXPECT_FALSE(rb.result_cache_hit);
  EXPECT_TRUE(BitIdentical(ra.rows, rb.rows));
  ResultCache::Stats stats = service.ResultCacheStats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 0u);
}

}  // namespace
}  // namespace sparqluo
