// Snapshot corruption robustness.
//
// Every malformed input — truncations at every byte length, flipped
// magics, per-section CRC corruption, hostile TOC entries (overlapping,
// out-of-bounds, misaligned, duplicated), and random byte flips — must
// come back as a clean Status error (or, for flips that only touch
// unprotected padding, a clean success): never a crash, hang, huge
// allocation or sanitizer report. This test runs under the CI sanitizer
// matrix (thread | address,undefined) for exactly that reason.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "engine/snapshot.h"
#include "util/binary_io.h"
#include "util/crc32.h"
#include "util/random.h"

namespace sparqluo {
namespace {

/// In-memory little-endian field accessors for byte surgery.
uint32_t GetU32(const std::string& b, size_t off) {
  return static_cast<uint32_t>(static_cast<uint8_t>(b[off])) |
         static_cast<uint32_t>(static_cast<uint8_t>(b[off + 1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(b[off + 2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(b[off + 3])) << 24;
}
uint64_t GetU64(const std::string& b, size_t off) {
  return static_cast<uint64_t>(GetU32(b, off + 4)) << 32 | GetU32(b, off);
}
void SetU32(std::string* b, size_t off, uint32_t v) {
  (*b)[off] = static_cast<char>(v);
  (*b)[off + 1] = static_cast<char>(v >> 8);
  (*b)[off + 2] = static_cast<char>(v >> 16);
  (*b)[off + 3] = static_cast<char>(v >> 24);
}
void SetU64(std::string* b, size_t off, uint64_t v) {
  SetU32(b, off, static_cast<uint32_t>(v));
  SetU32(b, off + 4, static_cast<uint32_t>(v >> 32));
}

class SnapshotFuzzTest : public ::testing::Test {
 protected:
  static constexpr size_t kHeaderBytes = 16;
  static constexpr size_t kTocEntryBytes = 32;

  void SetUp() override {
    path_ = ::testing::TempDir() + "snapshot_fuzz_test.bin";
    Database db;
    db.AddTriple(Term::Iri("http://f.org/a"), Term::Iri("http://f.org/p"),
                 Term::Iri("http://f.org/b"));
    db.AddTriple(Term::Iri("http://f.org/b"), Term::Iri("http://f.org/p"),
                 Term::Iri("http://f.org/c"));
    db.AddTriple(Term::Iri("http://f.org/a"), Term::Iri("http://f.org/q"),
                 Term::LangLiteral("x", "en"));
    db.AddTriple(Term::Blank("n0"), Term::Iri("http://f.org/q"),
                 Term::TypedLiteral("7", "http://dt"));
    db.Finalize();
    v1_ = SaveToBytes(db, SnapshotFormat::kV1);
    v2_ = SaveToBytes(db, SnapshotFormat::kV2);
    ASSERT_GT(v1_.size(), 16u);
    ASSERT_GT(v2_.size(), kHeaderBytes + 12 * kTocEntryBytes);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string SaveToBytes(const Database& db, SnapshotFormat format) {
    EXPECT_TRUE(SaveSnapshot(db, path_, format).ok());
    std::ifstream in(path_, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  /// Writes `bytes` to disk and attempts a load into a fresh database.
  /// The contract under fuzz: this returns — it never crashes — and a
  /// non-OK status is a clean ParseError/NotFound-style Status.
  Status TryLoad(const std::string& bytes, bool allow_mmap = true,
                 bool verify_checksums = true) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();
    Database db;
    SnapshotLoadOptions opts;
    opts.allow_mmap = allow_mmap;
    opts.verify_checksums = verify_checksums;
    return LoadSnapshot(path_, &db, opts);
  }

  /// Recomputes the v2 TOC checksum after TOC surgery, so corruption
  /// planted in the entries reaches the deeper validators instead of
  /// tripping the (also tested) TOC CRC first.
  void FixTocCrc(std::string* bytes) {
    uint32_t nsec = GetU32(*bytes, 8);
    SetU32(bytes, 12,
           Crc32(bytes->data() + kHeaderBytes, nsec * kTocEntryBytes));
  }

  std::string path_;
  std::string v1_, v2_;
};

// Truncation sweep, both formats: every proper prefix must fail cleanly.
// (v2 files end with a section payload and v1 files with a triple record,
// so any byte cut always amputates something a loader needs.)
TEST_F(SnapshotFuzzTest, EveryTruncationFailsCleanly) {
  for (const std::string* file : {&v2_, &v1_}) {
    for (size_t len = 0; len < file->size(); ++len) {
      Status st = TryLoad(file->substr(0, len));
      EXPECT_FALSE(st.ok()) << "prefix of " << len << " bytes loaded";
    }
  }
}

TEST_F(SnapshotFuzzTest, FlippedMagicAndVersionAreRejected) {
  std::string bad = v2_;
  bad[0] = 'X';
  EXPECT_FALSE(TryLoad(bad).ok());

  // A future version tag must be rejected, not misparsed.
  std::string future = v2_;
  future[6] = '3';
  Status st = TryLoad(future);
  EXPECT_EQ(st.code(), StatusCode::kParseError);

  // v2 bytes wearing the v1 magic parse as (nonsense) v1 records and must
  // come back as a clean error, not a crash or giant allocation.
  std::string masquerade = v2_;
  masquerade[6] = '1';
  EXPECT_FALSE(TryLoad(masquerade).ok());

  std::string v1_masquerade = v1_;
  v1_masquerade[6] = '2';
  EXPECT_FALSE(TryLoad(v1_masquerade).ok());
}

// One flipped payload byte per section: the per-section CRC must catch
// every single one (the CRC-vs-deep-validation trust model of
// docs/snapshot_format.md depends on it).
TEST_F(SnapshotFuzzTest, EverySectionCrcCatchesAPayloadFlip) {
  uint32_t nsec = GetU32(v2_, 8);
  for (uint32_t i = 0; i < nsec; ++i) {
    size_t entry = kHeaderBytes + i * kTocEntryBytes;
    uint64_t offset = GetU64(v2_, entry + 8);
    uint64_t length = GetU64(v2_, entry + 16);
    if (length == 0) continue;
    std::string bad = v2_;
    bad[offset + length / 2] =
        static_cast<char>(bad[offset + length / 2] ^ 0x20);
    Status st = TryLoad(bad);
    EXPECT_EQ(st.code(), StatusCode::kParseError) << "section " << i;
    EXPECT_NE(st.message().find("CRC"), std::string::npos)
        << "section " << i << ": " << st.ToString();
  }
}

// The memory-safety backstop behind the CRC: a file whose checksums all
// match (crafted, or loaded with verification off) but whose level-2
// pairs reference ids past the dictionary must be rejected by the pair
// bounds scan — otherwise the first query result would hand
// Dictionary::Decode an undecodable id.
TEST_F(SnapshotFuzzTest, CrcValidOutOfRangePairIdIsRejected) {
  std::string bad = v2_;
  const size_t entry = kHeaderBytes + 5 * kTocEntryBytes;  // spo.pairs
  ASSERT_EQ(GetU32(bad, entry), 0x13u);
  const uint64_t offset = GetU64(bad, entry + 8);
  const uint64_t length = GetU64(bad, entry + 16);
  ASSERT_GE(length, 8u);
  SetU32(&bad, offset, 0xFFFFFFF0u);  // first pair's `second` component
  SetU32(&bad, entry + 24, Crc32(bad.data() + offset, length));
  FixTocCrc(&bad);
  Status st = TryLoad(bad);
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("unknown term id"), std::string::npos)
      << st.ToString();
  // Same outcome with checksum verification off — the scan, not the
  // CRC, is what guarantees decodability.
  std::string bad2 = bad;
  SetU32(&bad2, entry + 24, 0);  // wrong section CRC, ignored when off
  FixTocCrc(&bad2);              // (the TOC's own CRC is always checked)
  st = TryLoad(bad2, /*allow_mmap=*/true, /*verify_checksums=*/false);
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("unknown term id"), std::string::npos)
      << st.ToString();
}

// Sanity for the option itself: a pristine file loads with verification
// disabled.
TEST_F(SnapshotFuzzTest, ChecksumVerificationCanBeDisabled) {
  EXPECT_TRUE(TryLoad(v2_, true, /*verify_checksums=*/false).ok());
}

TEST_F(SnapshotFuzzTest, TocCrcCatchesTocFlips) {
  std::string bad = v2_;
  bad[kHeaderBytes + 9] = static_cast<char>(bad[kHeaderBytes + 9] ^ 0x01);
  Status st = TryLoad(bad);
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("table of contents"), std::string::npos)
      << st.ToString();
}

// Hostile TOC entries (with a valid TOC checksum, so the structural
// validators — not the CRC — must reject them).
TEST_F(SnapshotFuzzTest, HostileTocEntriesAreRejected) {
  const size_t e0 = kHeaderBytes;                     // first entry
  const size_t e1 = kHeaderBytes + kTocEntryBytes;    // second entry

  {  // Out of bounds: offset past EOF (8-aligned, so the bounds check —
     // not the alignment check — is what must reject it).
    std::string bad = v2_;
    SetU64(&bad, e0 + 8, (bad.size() + 15) & ~uint64_t{7});
    FixTocCrc(&bad);
    Status st = TryLoad(bad);
    EXPECT_EQ(st.code(), StatusCode::kParseError);
    EXPECT_NE(st.message().find("out-of-bounds"), std::string::npos)
        << st.ToString();
  }
  {  // Out of bounds: length overruns EOF (and u64 overflow bait).
    std::string bad = v2_;
    SetU64(&bad, e0 + 16, UINT64_MAX - 4);
    FixTocCrc(&bad);
    EXPECT_EQ(TryLoad(bad).code(), StatusCode::kParseError);
  }
  {  // Overlap: point the second section into the first one's bytes.
    std::string bad = v2_;
    SetU64(&bad, e1 + 8, GetU64(bad, e0 + 8));
    FixTocCrc(&bad);
    Status st = TryLoad(bad);
    EXPECT_EQ(st.code(), StatusCode::kParseError);
  }
  {  // Misaligned: borrowed arrays require 8-byte-aligned sections.
    std::string bad = v2_;
    SetU64(&bad, e0 + 8, GetU64(bad, e0 + 8) + 4);
    FixTocCrc(&bad);
    Status st = TryLoad(bad);
    EXPECT_EQ(st.code(), StatusCode::kParseError);
    EXPECT_NE(st.message().find("misaligned"), std::string::npos)
        << st.ToString();
  }
  {  // Duplicate section id.
    std::string bad = v2_;
    SetU32(&bad, e1, GetU32(bad, e0));
    FixTocCrc(&bad);
    Status st = TryLoad(bad);
    EXPECT_EQ(st.code(), StatusCode::kParseError);
  }
  {  // Implausible section count.
    std::string bad = v2_;
    SetU32(&bad, 8, 0xFFFFFF);
    EXPECT_EQ(TryLoad(bad).code(), StatusCode::kParseError);
  }
  {  // Zero sections.
    std::string bad = v2_;
    SetU32(&bad, 8, 0);
    EXPECT_EQ(TryLoad(bad).code(), StatusCode::kParseError);
  }
}

// Random single-bit flips over the whole file, both formats, both load
// modes. A flip in CRC-protected bytes must fail cleanly; a flip in
// padding may legally load; nothing may crash. Deterministic seed: a
// failure reproduces.
TEST_F(SnapshotFuzzTest, RandomBitFlipsNeverCrash) {
  Random rng(0xF00DF00Du);
  for (const std::string* file : {&v2_, &v1_}) {
    for (int iter = 0; iter < 400; ++iter) {
      std::string bad = *file;
      size_t pos = rng.Uniform(bad.size());
      bad[pos] = static_cast<char>(bad[pos] ^ (1u << rng.Uniform(8)));
      Status st = TryLoad(bad, /*allow_mmap=*/(iter % 2) == 0);
      (void)st;  // Any clean Status is acceptable; the assertion is
                 // "returned without crashing" under the sanitizers.
    }
  }
}

// Multi-byte random corruption bursts (more aggressive than single
// flips): still no crashes, hangs or runaway allocations.
TEST_F(SnapshotFuzzTest, RandomCorruptionBurstsNeverCrash) {
  Random rng(0xBADC0FFEu);
  for (int iter = 0; iter < 150; ++iter) {
    std::string bad = v2_;
    size_t burst = 1 + rng.Uniform(16);
    for (size_t i = 0; i < burst; ++i)
      bad[rng.Uniform(bad.size())] = static_cast<char>(rng.Uniform(256));
    (void)TryLoad(bad);
  }
}

}  // namespace
}  // namespace sparqluo
