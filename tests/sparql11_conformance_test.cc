// SPARQL 1.1 conformance fixtures: hand-written scenarios pinning the
// exact dialect semantics documented in docs/sparql_surface.md, at the
// edges the random differential suite cannot assert precisely —
// empty groups, COUNT(DISTINCT), unbound values inside aggregates,
// decimal result formatting, zero-length `*` (including over terms absent
// from the data), cyclic `+`, CONSTRUCT deduplication and modifier order,
// no-op pattern updates, and commit-equals-rebuild for pattern updates.
//
// Also home to the regression tests for the cross-cutting plumbing the
// four feature families ride on: plan-cache keys partitioned by query
// form, and cancellation mid-path-traversal releasing pinned versions.
#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "engine/database.h"
#include "obs/metrics.h"
#include "reference_eval.h"
#include "server/plan_cache.h"
#include "server/query_service.h"
#include "store/update.h"
#include "util/cancellation.h"

namespace sparqluo {
namespace testing {
namespace {

std::string DataPath(const std::string& rel) {
  return std::string(SPARQLUO_TEST_DATA_DIR) + "/sparql11/" + rel;
}

std::string I(const std::string& local) {
  return "<http://ex.org/" + local + ">";
}
std::string Int(int v) {
  return "\"" + std::to_string(v) +
         "\"^^<http://www.w3.org/2001/XMLSchema#integer>";
}
std::string Dec(const std::string& lex) {
  return "\"" + lex + "\"^^<http://www.w3.org/2001/XMLSchema#decimal>";
}

/// One canonical row from its cells (sorted, as CanonicalizeEngineRows
/// emits them).
CanonicalRow Row(std::vector<std::string> cells) {
  std::sort(cells.begin(), cells.end());
  return cells;
}

/// The social.nt fixture loaded into one engine:
///   knows: a -> b -> c -> a (3-cycle), d -> d (self-loop); e, f isolated
///   type:  a,b,f : C1   c : C2   e : C3
///   age:   a 10, b 20, c 20 (xsd:integer), e "unknown" (non-numeric)
///   f has a type but no age (unbound under OPTIONAL).
struct Fixture {
  Database db;

  explicit Fixture(EngineKind kind) {
    Status st = db.LoadNTriplesFile(DataPath("social.nt"));
    EXPECT_TRUE(st.ok()) << st.ToString();
    db.Finalize(kind);
  }

  std::vector<CanonicalRow> Run(const std::string& text) {
    auto parsed = db.Parse(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    if (!parsed.ok()) return {};
    auto rows = db.executor().Execute(*parsed, ExecOptions::Full());
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    if (!rows.ok()) return {};
    return SortedCanonical(CanonicalizeEngineRows(*rows, *parsed, db.dict()));
  }

  bool Ask(const std::string& text) {
    auto parsed = db.Parse(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    if (!parsed.ok()) return false;
    EXPECT_EQ(parsed->form, QueryForm::kAsk);
    auto rows = db.executor().Execute(*parsed, ExecOptions::Full());
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return rows.ok() && !rows->empty();
  }
};

/// Runs `text` on both BGP engines, asserts they agree, and returns the
/// sorted canonical rows.
std::vector<CanonicalRow> RunBoth(const std::string& text) {
  Fixture wco(EngineKind::kWco);
  Fixture hash(EngineKind::kHashJoin);
  auto a = wco.Run(text);
  auto b = hash.Run(text);
  EXPECT_EQ(a, b) << "engines diverged on: " << text;
  return a;
}

bool AskBoth(const std::string& text) {
  Fixture wco(EngineKind::kWco);
  Fixture hash(EngineKind::kHashJoin);
  bool a = wco.Ask(text);
  bool b = hash.Ask(text);
  EXPECT_EQ(a, b) << "engines diverged on: " << text;
  return a;
}

// ---------------------------------------------------------------------
// Aggregates
// ---------------------------------------------------------------------

TEST(AggregateConformance, CountDistinctPerGroup) {
  auto got = RunBoth(
      "SELECT ?t (COUNT(DISTINCT ?v) AS ?n) WHERE { ?s " + I("type") +
      " ?t . ?s " + I("age") + " ?v } GROUP BY ?t");
  // C1 joins ages {10, 20} (f has no age and drops out of the join);
  // C2 {20}; C3 {"unknown"} — DISTINCT counts any bound value.
  auto want = SortedCanonical({Row({"?t=" + I("C1"), "?n=" + Int(2)}),
                               Row({"?t=" + I("C2"), "?n=" + Int(1)}),
                               Row({"?t=" + I("C3"), "?n=" + Int(1)})});
  EXPECT_EQ(got, want);
}

TEST(AggregateConformance, CountStarVsCountVarOverOptional) {
  auto got = RunBoth("SELECT ?t (COUNT(*) AS ?all) (COUNT(?v) AS ?b) WHERE "
                     "{ ?s " + I("type") + " ?t OPTIONAL { ?s " + I("age") +
                     " ?v } } GROUP BY ?t");
  // COUNT(*) counts rows, COUNT(?v) skips rows where ?v is unbound:
  // C1 has members a, b, f but f carries no age.
  auto want = SortedCanonical({Row({"?t=" + I("C1"), "?all=" + Int(3),
                                    "?b=" + Int(2)}),
                               Row({"?t=" + I("C2"), "?all=" + Int(1),
                                    "?b=" + Int(1)}),
                               Row({"?t=" + I("C3"), "?all=" + Int(1),
                                    "?b=" + Int(1)})});
  EXPECT_EQ(got, want);
}

TEST(AggregateConformance, GroupByOverEmptyInputYieldsNoGroups) {
  auto got = RunBoth("SELECT ?s (COUNT(?v) AS ?n) WHERE { ?s " + I("none") +
                     " ?v } GROUP BY ?s");
  EXPECT_TRUE(got.empty());
}

TEST(AggregateConformance, ImplicitGroupOverEmptyInput) {
  // Without GROUP BY there is exactly one group even over zero rows:
  // COUNT(*) = 0 and SUM of nothing is the integer 0.
  auto got = RunBoth("SELECT (COUNT(*) AS ?n) (SUM(?v) AS ?s) WHERE { ?x " +
                     I("none") + " ?v }");
  auto want =
      std::vector<CanonicalRow>{Row({"?n=" + Int(0), "?s=" + Int(0)})};
  EXPECT_EQ(got, want);
}

TEST(AggregateConformance, MinMaxOverNoValuesAreUnbound) {
  // MIN/MAX over an empty column have no champion: the single implicit
  // group row exists but both result variables stay unbound.
  auto got = RunBoth("SELECT (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) WHERE { ?x " +
                     I("none") + " ?v }");
  auto want = std::vector<CanonicalRow>{CanonicalRow{}};
  EXPECT_EQ(got, want);
}

TEST(AggregateConformance, SumOverNonNumericIsUnbound) {
  // e's age is the plain literal "unknown": SUM/AVG poison on any
  // non-numeric input and come back unbound for the whole group.
  auto got = RunBoth("SELECT (SUM(?v) AS ?s) (AVG(?v) AS ?a) WHERE { ?x " +
                     I("age") + " ?v }");
  auto want = std::vector<CanonicalRow>{CanonicalRow{}};
  EXPECT_EQ(got, want);
}

TEST(AggregateConformance, SumStaysIntegerAvgIsDecimal) {
  auto got = RunBoth("SELECT (SUM(?v) AS ?s) (AVG(?v) AS ?a) WHERE { ?x " +
                     I("type") + " " + I("C1") + " . ?x " + I("age") +
                     " ?v }");
  // All-integer input: SUM keeps xsd:integer; AVG is always xsd:decimal,
  // formatted with %.12g (15, not 15.0).
  auto want = std::vector<CanonicalRow>{
      Row({"?s=" + Int(30), "?a=" + Dec("15")})};
  EXPECT_EQ(got, want);
}

TEST(AggregateConformance, AvgDecimalFormattingPin) {
  auto got = RunBoth("SELECT (AVG(?v) AS ?a) WHERE { ?x " + I("type") +
                     " ?t . ?x " + I("age") + " ?v . FILTER(?t != " +
                     I("C3") + ") }");
  // 50 / 3 rendered through %.12g: twelve significant digits.
  auto want =
      std::vector<CanonicalRow>{Row({"?a=" + Dec("16.6666666667")})};
  EXPECT_EQ(got, want);
}

// ---------------------------------------------------------------------
// Property paths
// ---------------------------------------------------------------------

TEST(PathConformance, ZeroLengthStarOnNodeWithoutEdges) {
  // e has no knows edges at all: knows* still yields the zero-length
  // path to itself.
  auto got = RunBoth("SELECT ?x WHERE { " + I("e") + " " + I("knows") +
                     "* ?x }");
  auto want = std::vector<CanonicalRow>{Row({"?x=" + I("e")})};
  EXPECT_EQ(got, want);
}

TEST(PathConformance, ZeroLengthStarMatchesTermAbsentFromData) {
  // `*` relates every term to itself — even one never mentioned in the
  // data. `+` requires at least one edge and fails.
  EXPECT_TRUE(AskBoth("ASK { " + I("zz") + " " + I("knows") + "* " + I("zz") +
                      " }"));
  EXPECT_FALSE(AskBoth("ASK { " + I("zz") + " " + I("knows") + "+ " + I("zz") +
                       " }"));
}

TEST(PathConformance, PlusOverCycleReachesStart) {
  // a -> b -> c -> a: one-or-more steps from a reach b, c and (around the
  // cycle) a itself.
  auto got = RunBoth("SELECT ?x WHERE { " + I("a") + " " + I("knows") +
                     "+ ?x }");
  auto want = SortedCanonical({Row({"?x=" + I("a")}), Row({"?x=" + I("b")}),
                               Row({"?x=" + I("c")})});
  EXPECT_EQ(got, want);
}

TEST(PathConformance, SameVariablePlusFindsCycleMembers) {
  // ?x knows+ ?x holds exactly for the 3-cycle members and the self-loop.
  auto got = RunBoth("SELECT ?x WHERE { ?x " + I("knows") + "+ ?x }");
  auto want = SortedCanonical({Row({"?x=" + I("a")}), Row({"?x=" + I("b")}),
                               Row({"?x=" + I("c")}), Row({"?x=" + I("d")})});
  EXPECT_EQ(got, want);
}

TEST(PathConformance, BothVariableStarRangesOverAllGraphNodes) {
  // With both endpoints unbound, `*` ranges over every node of the graph
  // (every subject or object, literals and classes included): each node
  // pairs with itself at length zero, plus the genuine closure pairs of
  // the knows cycle.
  auto got = RunBoth("SELECT ?x ?y WHERE { ?x " + I("knows") + "* ?y }");
  std::vector<std::string> nodes = {
      I("a"),  I("b"),  I("c"),  I("d"),       I("e"),      I("f"),
      I("C1"), I("C2"), I("C3"), Int(10),      Int(20),     "\"unknown\"",
      "\"eve\""};
  std::vector<CanonicalRow> want;
  for (const std::string& n : nodes) want.push_back(Row({"?x=" + n, "?y=" + n}));
  for (const char* x : {"a", "b", "c"})
    for (const char* y : {"a", "b", "c"})
      if (std::string(x) != y)
        want.push_back(Row({"?x=" + I(x), "?y=" + I(y)}));
  EXPECT_EQ(got, SortedCanonical(std::move(want)));
}

// ---------------------------------------------------------------------
// CONSTRUCT
// ---------------------------------------------------------------------

std::string Stmt(const std::string& s, const std::string& p,
                 const std::string& o) {
  return s + " " + p + " " + o + " .";
}

TEST(ConstructConformance, OutputIsDeduplicated) {
  // Three C1 members instantiate the same triple; CONSTRUCT emits it once.
  auto got = RunBoth("CONSTRUCT { " + I("x") + " " + I("has") +
                     " ?t } WHERE { ?s " + I("type") + " ?t }");
  auto want = SortedCanonical(
      {CanonicalRow{Stmt(I("x"), I("has"), I("C1"))},
       CanonicalRow{Stmt(I("x"), I("has"), I("C2"))},
       CanonicalRow{Stmt(I("x"), I("has"), I("C3"))}});
  EXPECT_EQ(got, want);
}

TEST(ConstructConformance, IllFormedTriplesAreSkipped) {
  // Every instantiation puts a literal in subject position: all skipped,
  // empty graph.
  auto got = RunBoth("CONSTRUCT { ?v " + I("of") + " ?s } WHERE { ?s " +
                     I("age") + " ?v }");
  EXPECT_TRUE(got.empty());
}

TEST(ConstructConformance, ModifiersApplyToSolutionsNotTriples) {
  // ORDER BY / LIMIT cut the solution sequence before template
  // instantiation: LIMIT 1 keeps one solution (a, the smallest age;
  // non-numeric "unknown" sorts after the integers) which still
  // instantiates both template triples.
  auto got = RunBoth("CONSTRUCT { ?s " + I("aged") + " ?v . ?s " + I("seen") +
                     " \"y\" } WHERE { ?s " + I("age") +
                     " ?v } ORDER BY ?v LIMIT 1");
  auto want = SortedCanonical(
      {CanonicalRow{Stmt(I("a"), I("aged"), Int(10))},
       CanonicalRow{Stmt(I("a"), I("seen"), "\"y\"")}});
  EXPECT_EQ(got, want);
}

// ---------------------------------------------------------------------
// Pattern updates
// ---------------------------------------------------------------------

TEST(UpdateConformance, NoMatchPatternUpdateIsNoOpCommit) {
  for (EngineKind kind : {EngineKind::kWco, EngineKind::kHashJoin}) {
    Fixture fx(kind);
    auto before = StatementSet(fx.db.store().triples(), fx.db.dict());
    uint64_t before_version = fx.db.Snapshot()->id;
    auto res = fx.db.Update("DELETE { ?s " + I("p") + " ?o } INSERT { ?s " +
                            I("q") + " \"x\" } WHERE { ?s " + I("none") +
                            " ?o }");
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_EQ(res->inserted, 0u);
    EXPECT_EQ(res->deleted, 0u);
    // An empty delta short-circuits: no new version is published (and so
    // no plan-cache invalidation churn), the store is untouched.
    EXPECT_EQ(res->version, before_version);
    EXPECT_EQ(fx.db.Snapshot()->id, before_version);
    EXPECT_EQ(StatementSet(fx.db.store().triples(), fx.db.dict()), before);
  }
}

/// Rebuilds a fresh database holding exactly the version's net triples,
/// interning terms in the same first-seen order so TermIds (and therefore
/// permutation index order and row order) coincide — the update_test
/// rebuild idiom.
std::unique_ptr<Database> RebuildCanonical(const DatabaseVersion& v,
                                           EngineKind kind) {
  auto db = std::make_unique<Database>();
  for (TermId id = 0; id < v.dict->size(); ++id)
    db->dict().Encode(v.dict->Decode(id));
  for (const Triple& t : v.store->triples())
    db->AddTriple(v.dict->Decode(t.s), v.dict->Decode(t.p),
                  v.dict->Decode(t.o));
  db->Finalize(kind);
  return db;
}

std::vector<std::string> DecodedRows(const BindingSet& rows,
                                     const Dictionary& dict) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    std::string line;
    for (size_t c = 0; c < rows.width(); ++c) {
      TermId id = rows.At(r, c);
      line += id == kUnboundTerm ? std::string("UNBOUND")
                                 : dict.Decode(id).ToString();
      line += '\t';
    }
    out.push_back(std::move(line));
  }
  return out;
}

/// The committed updates.ru fixture, block by block (blocks are separated
/// by blank lines).
std::vector<std::string> UpdateBlocks() {
  std::ifstream in(DataPath("updates.ru"));
  EXPECT_TRUE(in.good()) << "missing fixture " << DataPath("updates.ru");
  std::vector<std::string> blocks;
  std::string block, line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      if (!block.empty()) blocks.push_back(std::move(block));
      block.clear();
    } else {
      block += line + "\n";
    }
  }
  if (!block.empty()) blocks.push_back(std::move(block));
  return blocks;
}

TEST(UpdateConformance, PatternUpdateCommitMatchesRebuild) {
  // After a script of pattern updates, query results on the committed
  // version must be bit-identical (modulo dictionary renaming) to a
  // database rebuilt from scratch with the committed net triples.
  std::vector<std::string> workload = {
      "SELECT ?x ?y WHERE { ?x " + I("knownBy") + " ?y } ORDER BY ?x ?y",
      "SELECT ?t (COUNT(*) AS ?n) WHERE { ?s " + I("type") +
          " ?t } GROUP BY ?t ORDER BY ?t",
      "SELECT ?x WHERE { " + I("d") + " " + I("knows") + "+ ?x }",
      "CONSTRUCT { ?s " + I("aged") + " ?v } WHERE { ?s " + I("age") +
          " ?v }",
  };
  for (EngineKind kind : {EngineKind::kWco, EngineKind::kHashJoin}) {
    Fixture fx(kind);
    for (const std::string& block : UpdateBlocks()) {
      auto res = fx.db.Update(block);
      ASSERT_TRUE(res.ok()) << res.status().ToString() << "\n" << block;
    }
    auto snap = fx.db.Snapshot();
    auto rebuilt = RebuildCanonical(*snap, kind);
    for (const std::string& q : workload) {
      SCOPED_TRACE(q);
      auto parsed = fx.db.Parse(q);
      ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
      auto live = fx.db.executor().Execute(*parsed, ExecOptions::Full());
      auto fresh = rebuilt->executor().Execute(*parsed, ExecOptions::Full());
      ASSERT_TRUE(live.ok()) << live.status().ToString();
      ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
      EXPECT_EQ(DecodedRows(*live, fx.db.dict()),
                DecodedRows(*fresh, rebuilt->dict()));
    }
  }
}

// ---------------------------------------------------------------------
// Plan cache: query-form partitioning
// ---------------------------------------------------------------------

TEST(PlanCacheConformance, KeysPartitionByQueryForm) {
  ExecOptions o = ExecOptions::Full();
  std::string where = "WHERE { ?s " + I("type") + " ?t }";
  std::string ks = PlanCache::MakeKey("SELECT ?s ?t " + where, o, 7);
  std::string ka = PlanCache::MakeKey("ASK " + where, o, 7);
  std::string kc = PlanCache::MakeKey(
      "CONSTRUCT { ?s " + I("kind") + " ?t } " + where, o, 7);
  EXPECT_EQ(ks[0], 'S');
  EXPECT_EQ(ka[0], 'A');
  EXPECT_EQ(kc[0], 'C');
  EXPECT_NE(ks, ka);
  EXPECT_NE(ks, kc);
  EXPECT_NE(ka, kc);
  // The tag scanner must not be fooled by keywords inside literals or IRIs.
  std::string tricky = PlanCache::MakeKey(
      "SELECT ?s WHERE { ?s <http://ex.org/CONSTRUCT> \"ASK\" }", o, 7);
  EXPECT_EQ(tricky[0], 'S');
}

TEST(PlanCacheConformance, ServiceServesFormsFromDistinctEntries) {
  Fixture fx(EngineKind::kWco);
  QueryService::Options sopts;
  sopts.num_threads = 2;
  // Plan-cache-layer test: keep repeats off the result-cache fast path.
  sopts.enable_result_cache = false;
  QueryService service(static_cast<const Database&>(fx.db), sopts);
  std::string where = "WHERE { ?s " + I("type") + " ?t }";
  std::string select = "SELECT ?s ?t " + where;
  std::string construct = "CONSTRUCT { " + I("x") + " " + I("has") + " ?t } " +
                          where;

  auto run = [&](const std::string& text) {
    QueryRequest req;
    req.text = text;
    auto resp = service.Submit(std::move(req)).get();
    EXPECT_TRUE(resp.status.ok()) << resp.status.ToString();
    return resp;
  };

  auto s1 = run(select);
  auto c1 = run(construct);
  auto s2 = run(select);
  auto c2 = run(construct);
  EXPECT_FALSE(s1.plan_cache_hit);
  EXPECT_FALSE(c1.plan_cache_hit) << "CONSTRUCT must not hit the SELECT plan";
  EXPECT_TRUE(s2.plan_cache_hit);
  EXPECT_TRUE(c2.plan_cache_hit);
  // Same WHERE clause, different forms: 5 type triples project to 5
  // SELECT rows, but CONSTRUCT deduplicates down to the 3 classes.
  EXPECT_EQ(s1.rows.size(), 5u);
  EXPECT_EQ(c1.rows.size(), 3u);
  EXPECT_EQ(s2.rows.size(), 5u);
  EXPECT_EQ(c2.rows.size(), 3u);
  ASSERT_NE(c2.plan, nullptr);
  EXPECT_EQ(c2.plan->query.form, QueryForm::kConstruct);
}

// ---------------------------------------------------------------------
// Cancellation mid-path-traversal
// ---------------------------------------------------------------------

/// A knows-chain long enough that the all-pairs closure ?x knows+ ?y
/// cannot finish within a few milliseconds (O(n^2) reachable pairs).
std::string ChainNTriples(int n) {
  std::string nt;
  for (int i = 0; i < n; ++i)
    nt += "<http://ex.org/n" + std::to_string(i) + "> <http://ex.org/knows> " +
          "<http://ex.org/n" + std::to_string(i + 1) + "> .\n";
  return nt;
}

const char* kAllPairsPath =
    "SELECT ?x ?y WHERE { ?x <http://ex.org/knows>+ ?y }";

TEST(CancellationConformance, DeadlineAbortsPathTraversal) {
  Database db;
  ASSERT_TRUE(db.LoadNTriplesString(ChainNTriples(4000)).ok());
  db.Finalize(EngineKind::kWco);
  auto parsed = db.Parse(kAllPairsPath);
  ASSERT_TRUE(parsed.ok());
  CancelToken token = CancelToken::WithTimeout(std::chrono::milliseconds(2));
  ExecOptions opts = ExecOptions::Full();
  opts.cancel = &token;
  ExecMetrics metrics;
  auto rows = db.executor().Execute(*parsed, opts, &metrics);
  EXPECT_FALSE(rows.ok()) << "4000-node all-pairs closure finished in <2ms?";
  EXPECT_TRUE(metrics.aborted);
  EXPECT_EQ(metrics.abort_reason, AbortReason::kDeadline);
}

TEST(CancellationConformance, ExplicitCancelAbortsPathTraversal) {
  Database db;
  ASSERT_TRUE(db.LoadNTriplesString(ChainNTriples(64)).ok());
  db.Finalize(EngineKind::kWco);
  auto parsed = db.Parse(kAllPairsPath);
  ASSERT_TRUE(parsed.ok());
  CancelToken token;
  token.RequestCancel();
  ExecOptions opts = ExecOptions::Full();
  opts.cancel = &token;
  ExecMetrics metrics;
  auto rows = db.executor().Execute(*parsed, opts, &metrics);
  EXPECT_FALSE(rows.ok());
  EXPECT_TRUE(metrics.aborted);
  EXPECT_EQ(metrics.abort_reason, AbortReason::kCancelled);
}

TEST(CancellationConformance, AbortedPathQueryReleasesPinnedVersion) {
  Database db;
  ASSERT_TRUE(db.LoadNTriplesString(ChainNTriples(4000)).ok());
  db.Finalize(EngineKind::kWco);
  QueryService::Options sopts;
  sopts.num_threads = 2;
  sopts.default_deadline = std::chrono::milliseconds(3);
  QueryService service(static_cast<const Database&>(db), sopts);
  // The service mirrors its pinned-version count into this process-global
  // gauge (GetGauge interns by name, so this is the same instance).
  Gauge* pinned = MetricRegistry::Global().GetGauge("sparqluo_pinned_versions");
  int64_t baseline = pinned->value();

  QueryRequest req;
  req.text = kAllPairsPath;
  auto resp = service.Submit(std::move(req)).get();
  EXPECT_FALSE(resp.status.ok()) << "all-pairs closure finished in <3ms?";
  EXPECT_EQ(resp.metrics.abort_reason, AbortReason::kDeadline);
  EXPECT_EQ(pinned->value(), baseline)
      << "aborted query leaked a pinned version";

  // The service stays healthy: a cheap query on the same version succeeds.
  // Override the 3ms service default so scheduling jitter under a loaded
  // test runner cannot deadline this trivially-cheap ASK.
  QueryRequest ok_req;
  ok_req.deadline = std::chrono::milliseconds(30000);
  ok_req.text = "ASK { <http://ex.org/n0> <http://ex.org/knows> ?y }";
  auto ok_resp = service.Submit(std::move(ok_req)).get();
  EXPECT_TRUE(ok_resp.status.ok()) << ok_resp.status.ToString();
  EXPECT_EQ(pinned->value(), baseline);
}

}  // namespace
}  // namespace testing
}  // namespace sparqluo
