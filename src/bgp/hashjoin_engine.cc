#include "bgp/hashjoin_engine.h"

#include <algorithm>

#include "algebra/operators.h"

namespace sparqluo {

BindingSet HashJoinEngine::ScanPattern(const TriplePattern& t,
                                       const CandidateMap* cands,
                                       BgpEvalCounters* counters,
                                       CancelCheckpoint* chk) const {
  std::vector<VarId> schema = t.Variables();
  BindingSet out(schema);
  ResolvedPattern r = Resolve(t, dict_);
  if (r.missing_const) return out;
  TriplePatternIds q;
  q.s = r.sv == kInvalidVarId ? r.s : kInvalidTermId;
  q.p = r.pv == kInvalidVarId ? r.p : kInvalidTermId;
  q.o = r.ov == kInvalidVarId ? r.o : kInvalidTermId;
  if (counters) ++counters->index_probes;
  std::vector<TermId> row(schema.size());
  store_.Scan(q, [&](const Triple& tr) {
    if (chk != nullptr) chk->Poll();
    // Repeated-variable consistency.
    if (r.sv != kInvalidVarId && r.sv == r.ov && tr.s != tr.o) return true;
    if (r.sv != kInvalidVarId && r.sv == r.pv && tr.s != tr.p) return true;
    if (r.pv != kInvalidVarId && r.pv == r.ov && tr.p != tr.o) return true;
    for (size_t i = 0; i < schema.size(); ++i) {
      VarId v = schema[i];
      TermId val = v == r.sv ? tr.s : (v == r.pv ? tr.p : tr.o);
      if (cands != nullptr) {
        const auto* cs = cands->Get(v);
        if (cs != nullptr && cs->count(val) == 0) {
          if (counters) ++counters->candidates_pruned;
          return true;
        }
      }
      row[i] = val;
    }
    out.AppendRow(row);
    return true;
  });
  if (counters) counters->rows_materialized += out.size();
  return out;
}

BindingSet HashJoinEngine::Evaluate(const Bgp& bgp, const CandidateMap* cands,
                                    BgpEvalCounters* counters,
                                    const CancelToken* cancel) const {
  std::vector<VarId> all_vars = bgp.Variables();
  if (bgp.triples.empty()) {
    BindingSet unit(all_vars);
    unit.AppendEmptyMappings(1);
    return unit;
  }
  CancelCheckpoint chk(cancel);
  chk.Poll();
  std::vector<size_t> order = estimator_.GreedyOrder(bgp);
  BindingSet acc = ScanPattern(bgp.triples[order[0]], cands, counters, &chk);
  for (size_t k = 1; k < order.size(); ++k) {
    if (acc.empty()) break;
    chk.Poll();
    BindingSet next = ScanPattern(bgp.triples[order[k]], cands, counters, &chk);
    acc = Join(acc, next, cancel);
    if (counters) counters->rows_materialized += acc.size();
  }
  // Normalize the schema to bgp.Variables() order. All variables are bound
  // by construction (every pattern's table carries its own variables).
  if (acc.schema() != all_vars) acc = acc.Project(all_vars);
  return acc;
}

double HashJoinEngine::EstimateCost(const Bgp& bgp) const {
  if (bgp.triples.empty()) return 0.0;
  std::vector<size_t> order = estimator_.GreedyOrder(bgp);
  // Cost of the initial scan plus each binary join per Equation 9.
  double cost = estimator_.EstimateTriple(bgp.triples[order[0]]);
  Bgp prefix;
  prefix.triples.push_back(bgp.triples[order[0]]);
  double card_acc = estimator_.EstimateBgp(prefix);
  for (size_t k = 1; k < order.size(); ++k) {
    double card_next = estimator_.EstimateTriple(bgp.triples[order[k]]);
    cost += 2.0 * std::min(card_acc, card_next) + std::max(card_acc, card_next);
    prefix.triples.push_back(bgp.triples[order[k]]);
    card_acc = estimator_.EstimateBgp(prefix);
  }
  return cost;
}

}  // namespace sparqluo
