#include "bgp/hashjoin_engine.h"

#include <algorithm>

#include "algebra/operators.h"
#include "obs/trace.h"

namespace sparqluo {

namespace {

/// Emits the rows of `range` matching the resolved pattern `r` into `out`
/// (whose schema is the pattern's variables), applying repeated-variable
/// consistency and candidate-set filtering. Shared by the sequential scan
/// and by each morsel of the parallel scan — morsels over consecutive
/// slices of one matched range concatenate to the sequential scan's rows.
void ScanRangeInto(const TripleStore::MatchedRange& range,
                   const ResolvedPattern& r, const std::vector<VarId>& schema,
                   const CandidateMap* cands, BgpEvalCounters* counters,
                   CancelCheckpoint* chk, BindingSet* out) {
  std::vector<TermId> row(schema.size());
  TripleStore::ScanMatched(range, [&](const Triple& tr) {
    if (chk != nullptr) chk->Poll();
    // Repeated-variable consistency.
    if (r.sv != kInvalidVarId && r.sv == r.ov && tr.s != tr.o) return true;
    if (r.sv != kInvalidVarId && r.sv == r.pv && tr.s != tr.p) return true;
    if (r.pv != kInvalidVarId && r.pv == r.ov && tr.p != tr.o) return true;
    for (size_t i = 0; i < schema.size(); ++i) {
      VarId v = schema[i];
      TermId val = v == r.sv ? tr.s : (v == r.pv ? tr.p : tr.o);
      if (cands != nullptr) {
        const auto* cs = cands->Get(v);
        if (cs != nullptr && cs->count(val) == 0) {
          if (counters) ++counters->candidates_pruned;
          return true;
        }
      }
      row[i] = val;
    }
    out->AppendRow(row);
    return true;
  });
}

}  // namespace

BindingSet HashJoinEngine::ScanPattern(const TriplePattern& t,
                                       const CandidateMap* cands,
                                       BgpEvalCounters* counters,
                                       CancelCheckpoint* chk) const {
  std::vector<VarId> schema = t.Variables();
  BindingSet out(schema);
  ResolvedPattern r = Resolve(t, dict_);
  if (r.missing_const) return out;
  TriplePatternIds q;
  q.s = r.sv == kInvalidVarId ? r.s : kInvalidTermId;
  q.p = r.pv == kInvalidVarId ? r.p : kInvalidTermId;
  q.o = r.ov == kInvalidVarId ? r.o : kInvalidTermId;
  if (counters) ++counters->index_probes;
  ScanRangeInto(store_.Match(q), r, schema, cands, counters, chk, &out);
  if (counters) counters->rows_materialized += out.size();
  return out;
}

BindingSet HashJoinEngine::ParallelScanPattern(const TriplePattern& t,
                                               const CandidateMap* cands,
                                               BgpEvalCounters* counters,
                                               const CancelToken* cancel,
                                               const ParallelSpec& spec) const {
  std::vector<VarId> schema = t.Variables();
  BindingSet out(schema);
  ResolvedPattern r = Resolve(t, dict_);
  if (r.missing_const) return out;
  TriplePatternIds q;
  q.s = r.sv == kInvalidVarId ? r.s : kInvalidTermId;
  q.p = r.pv == kInvalidVarId ? r.p : kInvalidTermId;
  q.o = r.ov == kInvalidVarId ? r.o : kInvalidTermId;
  if (counters) ++counters->index_probes;
  TripleStore::MatchedRange range = store_.Match(q);
  size_t num_morsels = spec.MorselCount(range.size());
  if (!spec.enabled() || num_morsels <= 1) {
    CancelCheckpoint chk(cancel);
    ScanRangeInto(range, r, schema, cands, counters, &chk, &out);
    if (counters) counters->rows_materialized += out.size();
    return out;
  }

  size_t per_morsel = (range.size() + num_morsels - 1) / num_morsels;
  std::vector<BindingSet> outs(num_morsels, BindingSet(schema));
  std::vector<BgpEvalCounters> local(num_morsels);
  spec.pool->ParallelFor(num_morsels, spec.EffectiveWorkers(), [&](size_t m) {
    ScopedSpan morsel_span(spec.trace, "morsel", spec.trace_parent);
    CancelCheckpoint chk(cancel);
    size_t begin = m * per_morsel;
    size_t end = std::min(begin + per_morsel, range.size());
    ScanRangeInto(range.Slice(begin, end), r, schema, cands, &local[m], &chk,
                  &outs[m]);
    morsel_span.Attr("rows", std::to_string(outs[m].size()));
  });

  size_t total = 0;
  for (const BindingSet& o : outs) total += o.size();
  out.Reserve(total);
  for (const BindingSet& o : outs) out.Append(o);
  if (counters) {
    for (const BgpEvalCounters& c : local)
      counters->candidates_pruned += c.candidates_pruned;
    counters->morsels += num_morsels;
    counters->rows_materialized += out.size();
  }
  return out;
}

BindingSet HashJoinEngine::Evaluate(const Bgp& bgp, const CandidateMap* cands,
                                    BgpEvalCounters* counters,
                                    const CancelToken* cancel) const {
  std::vector<VarId> all_vars = bgp.Variables();
  if (bgp.triples.empty()) {
    BindingSet unit(all_vars);
    unit.AppendEmptyMappings(1);
    return unit;
  }
  CancelCheckpoint chk(cancel);
  chk.Poll();
  std::vector<size_t> order = estimator_.GreedyOrder(bgp);
  BindingSet acc = ScanPattern(bgp.triples[order[0]], cands, counters, &chk);
  for (size_t k = 1; k < order.size(); ++k) {
    if (acc.empty()) break;
    chk.Poll();
    BindingSet next = ScanPattern(bgp.triples[order[k]], cands, counters, &chk);
    acc = Join(acc, next, cancel);
    if (counters) counters->rows_materialized += acc.size();
  }
  // Normalize the schema to bgp.Variables() order. All variables are bound
  // by construction (every pattern's table carries its own variables).
  if (acc.schema() != all_vars) acc = acc.Project(all_vars);
  return acc;
}

BindingSet HashJoinEngine::ParallelEvaluate(const Bgp& bgp,
                                            const CandidateMap* cands,
                                            BgpEvalCounters* counters,
                                            const CancelToken* cancel,
                                            const ParallelSpec& spec) const {
  if (!spec.enabled()) return Evaluate(bgp, cands, counters, cancel);
  std::vector<VarId> all_vars = bgp.Variables();
  if (bgp.triples.empty()) {
    BindingSet unit(all_vars);
    unit.AppendEmptyMappings(1);
    return unit;
  }
  CancelCheckpoint chk(cancel);
  chk.Poll();
  std::vector<size_t> order = estimator_.GreedyOrder(bgp);
  BindingSet acc =
      ParallelScanPattern(bgp.triples[order[0]], cands, counters, cancel, spec);
  for (size_t k = 1; k < order.size(); ++k) {
    if (acc.empty()) break;
    chk.Poll();
    BindingSet next = ParallelScanPattern(bgp.triples[order[k]], cands,
                                          counters, cancel, spec);
    acc = ParallelJoin(acc, next, cancel, spec,
                       counters != nullptr ? &counters->morsels : nullptr);
    if (counters) counters->rows_materialized += acc.size();
  }
  if (acc.schema() != all_vars) acc = acc.Project(all_vars);
  return acc;
}

double HashJoinEngine::EstimateCost(const Bgp& bgp) const {
  if (bgp.triples.empty()) return 0.0;
  std::vector<size_t> order = estimator_.GreedyOrder(bgp);
  // Cost of the initial scan plus each binary join per Equation 9.
  double cost = estimator_.EstimateTriple(bgp.triples[order[0]]);
  Bgp prefix;
  prefix.triples.push_back(bgp.triples[order[0]]);
  double card_acc = estimator_.EstimateBgp(prefix);
  for (size_t k = 1; k < order.size(); ++k) {
    double card_next = estimator_.EstimateTriple(bgp.triples[order[k]]);
    cost += 2.0 * std::min(card_acc, card_next) + std::max(card_acc, card_next);
    prefix.triples.push_back(bgp.triples[order[k]]);
    card_acc = estimator_.EstimateBgp(prefix);
  }
  return cost;
}

}  // namespace sparqluo
