#include "bgp/cardinality.h"

#include <algorithm>

#include "util/random.h"

namespace sparqluo {

ResolvedPattern Resolve(const TriplePattern& t, const Dictionary& dict) {
  ResolvedPattern r;
  r.src = &t;
  auto fill = [&](const PatternSlot& slot, TermId* id, VarId* var) {
    if (slot.is_var) {
      *var = slot.var;
    } else {
      *id = dict.Lookup(slot.term);
      if (*id == kInvalidTermId) r.missing_const = true;
    }
  };
  fill(t.s, &r.s, &r.sv);
  fill(t.p, &r.p, &r.pv);
  fill(t.o, &r.o, &r.ov);
  return r;
}

double CardinalityEstimator::EstimateTriple(const TriplePattern& t) const {
  ResolvedPattern r = Resolve(t, dict_);
  if (r.missing_const) return 0.0;
  TriplePatternIds q;
  q.s = r.sv == kInvalidVarId ? r.s : kInvalidTermId;
  q.p = r.pv == kInvalidVarId ? r.p : kInvalidTermId;
  q.o = r.ov == kInvalidVarId ? r.o : kInvalidTermId;
  return static_cast<double>(store_.Count(q));
}

std::vector<size_t> CardinalityEstimator::GreedyOrder(const Bgp& bgp) const {
  const size_t n = bgp.triples.size();
  std::vector<double> counts(n);
  for (size_t i = 0; i < n; ++i) counts[i] = EstimateTriple(bgp.triples[i]);

  std::vector<size_t> order;
  std::vector<bool> used(n, false);
  std::vector<VarId> bound;
  auto binds_with = [&](size_t i) {
    for (VarId v : bgp.triples[i].Variables())
      if (std::find(bound.begin(), bound.end(), v) != bound.end()) return true;
    return false;
  };
  for (size_t step = 0; step < n; ++step) {
    size_t best = SIZE_MAX;
    bool best_connected = false;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      bool connected = step == 0 || binds_with(i);
      if (best == SIZE_MAX || (connected && !best_connected) ||
          (connected == best_connected && counts[i] < counts[best])) {
        best = i;
        best_connected = connected;
      }
    }
    used[best] = true;
    order.push_back(best);
    for (VarId v : bgp.triples[best].Variables())
      if (std::find(bound.begin(), bound.end(), v) == bound.end())
        bound.push_back(v);
  }
  return order;
}

double CardinalityEstimator::EstimateBgp(const Bgp& bgp) const {
  if (bgp.triples.empty()) return 1.0;
  if (bgp.triples.size() == 1) return EstimateTriple(bgp.triples[0]);

  std::vector<size_t> order = GreedyOrder(bgp);

  // Pilot evaluation: a bounded sample of partial bindings per step.
  // Each binding is a map VarId -> TermId, kept as parallel vectors.
  std::vector<VarId> schema;
  std::vector<std::vector<TermId>> sample;
  double card = 0.0;
  Random rng(0xC0FFEE ^ bgp.triples.size());
  // Sampled partial bindings are retained in scan order, so the pilot's
  // per-row probes form locally sorted key sequences — exactly what the
  // CSR level-1 galloping lookup is adaptive to.
  TripleStore::ProbeHint hint;

  for (size_t step = 0; step < order.size(); ++step) {
    const TriplePattern& t = bgp.triples[order[step]];
    ResolvedPattern r = Resolve(t, dict_);
    if (r.missing_const) return 0.0;

    // Positions of this pattern's variables in the current schema
    // (SIZE_MAX when new).
    auto col_of = [&](VarId v) -> size_t {
      for (size_t i = 0; i < schema.size(); ++i)
        if (schema[i] == v) return i;
      return SIZE_MAX;
    };
    size_t cs = r.sv == kInvalidVarId ? SIZE_MAX : col_of(r.sv);
    size_t cp = r.pv == kInvalidVarId ? SIZE_MAX : col_of(r.pv);
    size_t co = r.ov == kInvalidVarId ? SIZE_MAX : col_of(r.ov);

    std::vector<VarId> new_vars;
    auto add_new = [&](VarId v, size_t existing) {
      if (v != kInvalidVarId && existing == SIZE_MAX &&
          std::find(new_vars.begin(), new_vars.end(), v) == new_vars.end())
        new_vars.push_back(v);
    };
    add_new(r.sv, cs);
    add_new(r.pv, cp);
    add_new(r.ov, co);

    if (step == 0) {
      // Seed: scan the pattern, cap the retained sample.
      TriplePatternIds q{r.sv == kInvalidVarId ? r.s : kInvalidTermId,
                         r.pv == kInvalidVarId ? r.p : kInvalidTermId,
                         r.ov == kInvalidVarId ? r.o : kInvalidTermId};
      card = static_cast<double>(store_.Count(q, &hint));
      schema = new_vars;
      size_t seen = 0;
      store_.Scan(q, &hint, [&](const Triple& tr) {
        // Same-variable repetition (e.g. ?x p ?x) must self-agree.
        if (r.sv != kInvalidVarId && r.sv == r.ov && tr.s != tr.o) return true;
        ++seen;
        if (sample.size() < sample_size_) {
          std::vector<TermId> row;
          for (VarId v : schema) {
            if (v == r.sv) row.push_back(tr.s);
            else if (v == r.pv) row.push_back(tr.p);
            else row.push_back(tr.o);
          }
          sample.push_back(std::move(row));
        }
        return seen < sample_size_ * 8;  // bounded pilot scan
      });
      if (sample.empty()) return 0.0;
      continue;
    }

    // Extension: count matches of the pattern per sampled partial binding.
    size_t extend = 0;
    std::vector<std::vector<TermId>> next_sample;
    for (const auto& row : sample) {
      TriplePatternIds q;
      q.s = r.sv == kInvalidVarId ? r.s
                                  : (cs == SIZE_MAX ? kInvalidTermId : row[cs]);
      q.p = r.pv == kInvalidVarId ? r.p
                                  : (cp == SIZE_MAX ? kInvalidTermId : row[cp]);
      q.o = r.ov == kInvalidVarId ? r.o
                                  : (co == SIZE_MAX ? kInvalidTermId : row[co]);
      store_.Scan(q, &hint, [&](const Triple& tr) {
        if (r.sv != kInvalidVarId && r.sv == r.ov && tr.s != tr.o) return true;
        ++extend;
        if (next_sample.size() < sample_size_ &&
            rng.Bernoulli(0.5) /* thin the retained sample */) {
          std::vector<TermId> nrow = row;
          for (VarId v : new_vars) {
            if (v == r.sv) nrow.push_back(tr.s);
            else if (v == r.pv) nrow.push_back(tr.p);
            else nrow.push_back(tr.o);
          }
          next_sample.push_back(std::move(nrow));
        }
        return extend < sample_size_ * 16;
      });
    }
    if (extend == 0) return 0.0;
    card = std::max(static_cast<double>(extend) /
                        static_cast<double>(sample.size()) * card,
                    1.0);
    for (VarId v : new_vars) schema.push_back(v);
    if (next_sample.empty()) {
      // Keep at least one representative binding so later steps can extend.
      return card;
    }
    sample = std::move(next_sample);
  }
  return card;
}

}  // namespace sparqluo
