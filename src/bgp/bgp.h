// Basic graph patterns (Definition 5) and coalescability (Definitions 3-4).
#pragma once

#include <string>
#include <vector>

#include "sparql/ast.h"

namespace sparqluo {

/// A BGP: a set of triple patterns connected through coalescable chains.
struct Bgp {
  std::vector<TriplePattern> triples;

  bool empty() const { return triples.empty(); }
  size_t size() const { return triples.size(); }

  /// All variables appearing in the BGP, in first-occurrence order.
  std::vector<VarId> Variables() const;

  /// Variables at subject/object positions (the coalescability positions).
  std::vector<VarId> SubjectObjectVariables() const;

  /// Definition 4: true iff some constituent triple pattern of each side is
  /// coalescable with one of the other.
  bool CoalescableWith(const Bgp& other) const;

  /// True iff `t` is coalescable with some triple pattern in this BGP.
  bool CoalescableWith(const TriplePattern& t) const;

  /// Appends the triples of `other` (the coalescing step of merge/inject).
  /// Duplicate triple patterns are kept only once: under set-based BGP join
  /// semantics a repeated pattern is a no-op but would skew cost estimates.
  void Absorb(const Bgp& other);

  std::string ToString(const VarTable& vars) const;

  bool operator==(const Bgp& other) const { return triples == other.triples; }
};

}  // namespace sparqluo
