#include "bgp/bgp.h"

#include <algorithm>

namespace sparqluo {

std::vector<VarId> Bgp::Variables() const {
  std::vector<VarId> out;
  for (const TriplePattern& t : triples)
    for (VarId v : t.Variables())
      if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
  return out;
}

std::vector<VarId> Bgp::SubjectObjectVariables() const {
  std::vector<VarId> out;
  for (const TriplePattern& t : triples)
    for (VarId v : t.SubjectObjectVariables())
      if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
  return out;
}

bool Bgp::CoalescableWith(const Bgp& other) const {
  for (const TriplePattern& t1 : triples)
    for (const TriplePattern& t2 : other.triples)
      if (Coalescable(t1, t2)) return true;
  return false;
}

bool Bgp::CoalescableWith(const TriplePattern& t) const {
  for (const TriplePattern& mine : triples)
    if (Coalescable(mine, t)) return true;
  return false;
}

void Bgp::Absorb(const Bgp& other) {
  for (const TriplePattern& t : other.triples) {
    if (std::find(triples.begin(), triples.end(), t) == triples.end())
      triples.push_back(t);
  }
}

std::string Bgp::ToString(const VarTable& vars) const {
  std::string out;
  for (const TriplePattern& t : triples) {
    if (!out.empty()) out += " ";
    out += sparqluo::ToString(t, vars);
  }
  return out;
}

}  // namespace sparqluo
