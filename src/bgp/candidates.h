// Per-variable candidate sets for the candidate pruning optimization (§6).
#pragma once

#include <unordered_map>
#include <unordered_set>

#include "rdf/term.h"
#include "sparql/ast.h"

namespace sparqluo {

/// Maps a variable to the set of term ids it may still take. A variable
/// absent from the map is unconstrained.
class CandidateMap {
 public:
  using Set = std::unordered_set<TermId>;

  bool Has(VarId v) const { return sets_.count(v) > 0; }

  const Set* Get(VarId v) const {
    auto it = sets_.find(v);
    return it == sets_.end() ? nullptr : &it->second;
  }

  /// Installs (replacing) the candidate set for `v`.
  void Set_(VarId v, Set s) { sets_[v] = std::move(s); }

  /// True iff `v` is unconstrained or `id` is among its candidates.
  bool Admits(VarId v, TermId id) const {
    auto it = sets_.find(v);
    return it == sets_.end() || it->second.count(id) > 0;
  }

  bool empty() const { return sets_.empty(); }
  size_t size() const { return sets_.size(); }

  const std::unordered_map<VarId, Set>& sets() const { return sets_; }

 private:
  std::unordered_map<VarId, Set> sets_;
};

}  // namespace sparqluo
