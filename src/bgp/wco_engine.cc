#include "bgp/wco_engine.h"

#include <algorithm>
#include <unordered_set>

namespace sparqluo {

namespace {

/// Internal view of one resolved core pattern (constant predicate, at least
/// one subject/object variable).
struct CoreEdge {
  ResolvedPattern r;
  bool applied = false;
};

/// Collects the sorted, distinct values the variable `v` can take according
/// to edge `e` given the values of the other positions in `fixed`, where
/// kInvalidTermId in fixed means "that position is not yet bound".
/// Returns the list through `out` (sorted ascending).
void AdjacencyList(const TripleStore& store, const CoreEdge& e, bool v_is_subj,
                   TermId other_value, std::vector<TermId>* out,
                   BgpEvalCounters* counters) {
  TriplePatternIds q;
  q.p = e.r.p;  // core edges have constant predicates
  if (v_is_subj) {
    q.o = other_value;
  } else {
    q.s = other_value;
  }
  if (counters) ++counters->index_probes;
  const bool self_loop = e.r.sv != kInvalidVarId && e.r.sv == e.r.ov;
  TermId last = kInvalidTermId;
  store.Scan(q, [&](const Triple& t) {
    if (self_loop && t.s != t.o) return true;
    TermId val = v_is_subj ? t.s : t.o;
    // POS/SPO range scans yield the free position in ascending order, so
    // dedup needs only the previous value.
    if (val != last) {
      out->push_back(val);
      last = val;
    }
    return true;
  });
  // Scans through OSP (v subject, other=object bound) yield s sorted; scans
  // through SPO with s bound yield o sorted; seed scans over POS(p) yield
  // (o, s) pairs, so the projection may be unsorted. Normalize.
  if (!std::is_sorted(out->begin(), out->end())) {
    std::sort(out->begin(), out->end());
    out->erase(std::unique(out->begin(), out->end()), out->end());
  }
}

void IntersectSorted(std::vector<TermId>* a, const std::vector<TermId>& b) {
  std::vector<TermId> out;
  out.reserve(std::min(a->size(), b.size()));
  std::set_intersection(a->begin(), a->end(), b.begin(), b.end(),
                        std::back_inserter(out));
  *a = std::move(out);
}

}  // namespace

BindingSet WcoEngine::Evaluate(const Bgp& bgp, const CandidateMap* cands,
                               BgpEvalCounters* counters,
                               const CancelToken* cancel) const {
  std::vector<VarId> all_vars = bgp.Variables();
  BindingSet result(all_vars);
  if (bgp.triples.empty()) {
    result.AppendEmptyMappings(1);  // the unit bag
    return result;
  }
  CancelCheckpoint chk(cancel);
  chk.Poll();

  // Resolve constants; a missing constant means zero matches.
  std::vector<ResolvedPattern> resolved;
  resolved.reserve(bgp.triples.size());
  for (const TriplePattern& t : bgp.triples) {
    ResolvedPattern r = Resolve(t, dict_);
    if (r.missing_const) return result;
    resolved.push_back(r);
  }

  // Partition into ground checks, core edges and residual patterns.
  std::vector<CoreEdge> core;
  std::vector<ResolvedPattern> residual;
  for (const ResolvedPattern& r : resolved) {
    bool has_so_var = r.sv != kInvalidVarId || r.ov != kInvalidVarId;
    if (!has_so_var && r.pv == kInvalidVarId) {
      if (!store_.Contains(Triple(r.s, r.p, r.o))) return result;
      continue;  // ground triple: multiplicative identity
    }
    if (r.pv == kInvalidVarId && has_so_var) {
      core.push_back(CoreEdge{r, false});
    } else {
      residual.push_back(r);
    }
  }

  // The set of variables handled by the core phase.
  std::vector<VarId> core_vars;
  for (const CoreEdge& e : core) {
    for (VarId v : {e.r.sv, e.r.ov})
      if (v != kInvalidVarId &&
          std::find(core_vars.begin(), core_vars.end(), v) == core_vars.end())
        core_vars.push_back(v);
  }

  // --- Vertex-at-a-time core evaluation -------------------------------
  // rows: partial bindings over `bound_vars` (parallel to row layout).
  std::vector<VarId> bound_vars;
  std::vector<std::vector<TermId>> rows{{}};  // one empty partial binding

  auto col_of = [&](VarId v) -> size_t {
    for (size_t i = 0; i < bound_vars.size(); ++i)
      if (bound_vars[i] == v) return i;
    return SIZE_MAX;
  };

  // Estimated seed size of a variable: min over incident edges of the edge's
  // match count with constants bound (cheap index counts).
  auto seed_count = [&](VarId v) -> double {
    double best = 1e300;
    for (const CoreEdge& e : core) {
      if (e.r.sv != v && e.r.ov != v) continue;
      TriplePatternIds q;
      q.p = e.r.p;
      if (e.r.sv == kInvalidVarId) q.s = e.r.s;
      if (e.r.ov == kInvalidVarId) q.o = e.r.o;
      best = std::min(best, static_cast<double>(store_.Count(q)));
    }
    return best;
  };

  while (bound_vars.size() < core_vars.size()) {
    // Pick the next variable: prefer ones adjacent to already-bound vars,
    // break ties by seed selectivity.
    VarId next = kInvalidVarId;
    bool next_adjacent = false;
    double next_score = 1e300;
    for (VarId v : core_vars) {
      if (col_of(v) != SIZE_MAX) continue;
      // v is "adjacent" if some incident edge has a constant or already
      // bound other endpoint — its extension can use an indexed adjacency
      // list instead of a projection seed.
      bool adjacent = false;
      for (const CoreEdge& e : core) {
        if (e.r.sv != v && e.r.ov != v) continue;
        VarId other = e.r.sv == v ? e.r.ov : e.r.sv;
        if (other == kInvalidVarId || col_of(other) != SIZE_MAX) {
          adjacent = true;
          break;
        }
      }
      double score = seed_count(v);
      if (next == kInvalidVarId || (adjacent && !next_adjacent) ||
          (adjacent == next_adjacent && score < next_score)) {
        next = v;
        next_adjacent = adjacent;
        next_score = score;
      }
    }

    // Extend every partial binding with candidates for `next`.
    const CandidateMap::Set* cand_set =
        cands != nullptr ? cands->Get(next) : nullptr;
    std::vector<std::vector<TermId>> next_rows;
    std::vector<TermId> cand_list;
    std::vector<TermId> edge_list;
    for (const auto& row : rows) {
      chk.Poll();
      cand_list.clear();
      bool first_edge = true;
      bool dead = false;
      // Edges incident to `next` whose other endpoint is bound or constant
      // contribute an adjacency list; intersect them all.
      for (CoreEdge& e : core) {
        bool v_is_subj;
        if (e.r.sv == next && e.r.ov == next) {
          v_is_subj = true;  // self-loop handled inside AdjacencyList
        } else if (e.r.sv == next) {
          v_is_subj = true;
        } else if (e.r.ov == next) {
          v_is_subj = false;
        } else {
          continue;
        }
        // Resolve the other endpoint.
        TermId other;
        if (e.r.sv == next && e.r.ov == next) {
          other = kInvalidTermId;
        } else if (v_is_subj) {
          other = e.r.ov == kInvalidVarId
                      ? e.r.o
                      : (col_of(e.r.ov) == SIZE_MAX ? kInvalidTermId
                                                    : row[col_of(e.r.ov)]);
        } else {
          other = e.r.sv == kInvalidVarId
                      ? e.r.s
                      : (col_of(e.r.sv) == SIZE_MAX ? kInvalidTermId
                                                    : row[col_of(e.r.sv)]);
        }
        bool other_is_unbound_var =
            (v_is_subj ? e.r.ov != kInvalidVarId && col_of(e.r.ov) == SIZE_MAX
                       : e.r.sv != kInvalidVarId && col_of(e.r.sv) == SIZE_MAX) &&
            !(e.r.sv == next && e.r.ov == next);
        if (other_is_unbound_var && !first_edge) {
          // Defer: this edge will constrain when its other endpoint binds.
          continue;
        }
        if (other_is_unbound_var && first_edge) {
          // Use the projection as a (sound) seed only if no better edge
          // exists; check whether any other incident edge has a bound
          // endpoint — if so, skip this one.
          bool better_exists = false;
          for (const CoreEdge& e2 : core) {
            if (&e2 == &e) continue;
            if (e2.r.sv != next && e2.r.ov != next) continue;
            bool e2_subj = e2.r.sv == next;
            bool e2_other_unbound =
                (e2_subj ? e2.r.ov != kInvalidVarId && col_of(e2.r.ov) == SIZE_MAX
                         : e2.r.sv != kInvalidVarId && col_of(e2.r.sv) == SIZE_MAX);
            if (!e2_other_unbound) {
              better_exists = true;
              break;
            }
          }
          if (better_exists) continue;
        }
        edge_list.clear();
        AdjacencyList(store_, e, v_is_subj, other, &edge_list, counters);
        if (first_edge) {
          cand_list = edge_list;
          first_edge = false;
        } else {
          IntersectSorted(&cand_list, edge_list);
        }
        if (cand_list.empty()) {
          dead = true;
          break;
        }
        if (other_is_unbound_var) break;  // projection seed: one edge only
      }
      if (dead || first_edge) {
        // first_edge still true means no incident edge could seed this
        // variable for this row: disconnected from current bindings. Seed
        // from the globally cheapest incident edge projection.
        if (first_edge && !dead) {
          for (CoreEdge& e : core) {
            if (e.r.sv != next && e.r.ov != next) continue;
            edge_list.clear();
            AdjacencyList(store_, e, e.r.sv == next, kInvalidTermId, &edge_list,
                          counters);
            if (cand_list.empty()) {
              cand_list = edge_list;
            } else {
              IntersectSorted(&cand_list, edge_list);
            }
            break;
          }
        } else if (dead) {
          continue;
        }
      }
      for (TermId val : cand_list) {
        if (cand_set != nullptr && cand_set->count(val) == 0) {
          if (counters) ++counters->candidates_pruned;
          continue;
        }
        std::vector<TermId> nrow = row;
        nrow.push_back(val);
        next_rows.push_back(std::move(nrow));
      }
    }
    bound_vars.push_back(next);
    rows = std::move(next_rows);
    if (counters) counters->rows_materialized += rows.size();
    if (rows.empty()) return result;
  }

  // --- Verification of core edges not enforced during extension -------
  // Every core edge with both endpoints in bound_vars (or constants) must
  // hold; extensions enforced edges incident to the newly added variable
  // with a bound other endpoint, which covers all of them inductively —
  // except edges whose adjacency was skipped as "deferred". Re-check all.
  {
    std::vector<std::vector<TermId>> verified;
    verified.reserve(rows.size());
    for (const auto& row : rows) {
      chk.Poll();
      bool ok = true;
      for (const CoreEdge& e : core) {
        TermId s = e.r.sv == kInvalidVarId ? e.r.s : row[col_of(e.r.sv)];
        TermId o = e.r.ov == kInvalidVarId ? e.r.o : row[col_of(e.r.ov)];
        if (!store_.Contains(Triple(s, e.r.p, o))) {
          ok = false;
          break;
        }
      }
      if (ok) verified.push_back(row);
    }
    rows = std::move(verified);
  }

  // --- Residual patterns (variable predicates) -------------------------
  for (const ResolvedPattern& r : residual) {
    std::vector<VarId> new_vars;
    auto is_bound = [&](VarId v) { return col_of(v) != SIZE_MAX; };
    for (VarId v : {r.sv, r.pv, r.ov})
      if (v != kInvalidVarId && !is_bound(v) &&
          std::find(new_vars.begin(), new_vars.end(), v) == new_vars.end())
        new_vars.push_back(v);

    std::vector<std::vector<TermId>> next_rows;
    for (const auto& row : rows) {
      chk.Poll();
      TriplePatternIds q;
      q.s = r.sv == kInvalidVarId ? r.s
                                  : (is_bound(r.sv) ? row[col_of(r.sv)]
                                                    : kInvalidTermId);
      q.p = r.pv == kInvalidVarId ? r.p
                                  : (is_bound(r.pv) ? row[col_of(r.pv)]
                                                    : kInvalidTermId);
      q.o = r.ov == kInvalidVarId ? r.o
                                  : (is_bound(r.ov) ? row[col_of(r.ov)]
                                                    : kInvalidTermId);
      if (counters) ++counters->index_probes;
      store_.Scan(q, [&](const Triple& t) {
        chk.Poll();
        // Repeated-variable consistency within the pattern.
        if (r.sv != kInvalidVarId && r.sv == r.ov && t.s != t.o) return true;
        if (r.sv != kInvalidVarId && r.sv == r.pv && t.s != t.p) return true;
        if (r.pv != kInvalidVarId && r.pv == r.ov && t.p != t.o) return true;
        std::vector<TermId> nrow = row;
        for (VarId v : new_vars) {
          TermId val = v == r.sv ? t.s : (v == r.pv ? t.p : t.o);
          if (cands != nullptr) {
            const auto* cs = cands->Get(v);
            if (cs != nullptr && cs->count(val) == 0) {
              if (counters) ++counters->candidates_pruned;
              return true;
            }
          }
          nrow.push_back(val);
        }
        next_rows.push_back(std::move(nrow));
        return true;
      });
    }
    for (VarId v : new_vars) bound_vars.push_back(v);
    rows = std::move(next_rows);
    if (counters) counters->rows_materialized += rows.size();
    if (rows.empty()) return result;
  }

  // --- Deduplicate (set semantics of BGP matching) ---------------------
  // Vertex-at-a-time extension can reach the same full binding through
  // projection-seeded steps; normalize to distinct rows.
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());

  // --- Emit over the canonical schema ---------------------------------
  std::vector<size_t> out_cols;
  out_cols.reserve(all_vars.size());
  for (VarId v : all_vars) out_cols.push_back(col_of(v));
  std::vector<TermId> out_row(all_vars.size());
  result.Reserve(rows.size());
  for (const auto& row : rows) {
    for (size_t i = 0; i < out_cols.size(); ++i)
      out_row[i] = out_cols[i] == SIZE_MAX ? kUnboundTerm : row[out_cols[i]];
    result.AppendRow(out_row);
  }
  return result;
}

double WcoEngine::EstimateCost(const Bgp& bgp) const {
  if (bgp.triples.empty()) return 0.0;
  // cost(WCOJoin({v1..vk-1}, vk)) = card({v1..vk-1}) * min_i avg_size(vi, p).
  // Follow the same greedy pattern order the evaluation uses, accumulating
  // cardinalities with the sampling estimator.
  std::vector<size_t> order = estimator_.GreedyOrder(bgp);
  double cost = 0.0;
  Bgp prefix;
  double card_prev = 1.0;
  for (size_t k = 0; k < order.size(); ++k) {
    const TriplePattern& t = bgp.triples[order[k]];
    if (k == 0) {
      cost += estimator_.EstimateTriple(t);
      prefix.triples.push_back(t);
      card_prev = estimator_.EstimateBgp(prefix);
      continue;
    }
    // Extension fan: the predicate's average adjacency size.
    double fan = 1.0;
    if (!t.p.is_var) {
      TermId p = dict_.Lookup(t.p.term);
      const PredicateStats& ps = stats_.ForPredicate(p);
      // min over the bound endpoints; approximate with the smaller fanout.
      fan = std::max(1.0, std::min(ps.avg_out(), ps.avg_in()));
    }
    cost += card_prev * fan;
    prefix.triples.push_back(t);
    card_prev = estimator_.EstimateBgp(prefix);
  }
  return cost;
}

}  // namespace sparqluo
