// gStore-style WCO engine, structured for morsel-driven parallelism.
//
// Evaluation is split into:
//   1. BuildPlan   — resolve constants, partition patterns, and fix the
//                    vertex extension order. The order is a pure function
//                    of the BGP and the store's counts, never of partial
//                    binding contents, so every morsel follows it.
//   2. ExtendStep  — one vertex extension over a set of partial bindings.
//   3. CompleteRows— the remaining extensions + core verification +
//                    residual expansion for a subset of partial bindings.
//                    Row-independent, hence safe to run per morsel.
// The final sort+unique (set semantics of BGP matching) runs globally over
// the concatenated morsel outputs, which is why parallel evaluation is
// bit-identical to sequential: both emit the same sorted, deduplicated row
// set over the same schema.
#include "bgp/wco_engine.h"

#include <algorithm>
#include <unordered_set>

#include "obs/trace.h"

namespace sparqluo {

namespace {

/// Internal view of one resolved core pattern (constant predicate, at least
/// one subject/object variable).
struct CoreEdge {
  ResolvedPattern r;
};

/// Collects the sorted, distinct values the variable `v` can take according
/// to edge `e` given the values of the other positions in `fixed`, where
/// kInvalidTermId in fixed means "that position is not yet bound".
/// Returns the list through `out` (sorted ascending). `hint` carries the
/// previous probe's level-1 position: consecutive rows probe with values
/// drawn from sorted candidate lists, so the CSR directory lookup gallops
/// from the last bucket instead of binary-searching from scratch.
void AdjacencyList(const TripleStore& store, const CoreEdge& e, bool v_is_subj,
                   TermId other_value, std::vector<TermId>* out,
                   BgpEvalCounters* counters, TripleStore::ProbeHint* hint) {
  TriplePatternIds q;
  q.p = e.r.p;  // core edges have constant predicates
  if (v_is_subj) {
    q.o = other_value;
  } else {
    q.s = other_value;
  }
  if (counters) ++counters->index_probes;
  const bool self_loop = e.r.sv != kInvalidVarId && e.r.sv == e.r.ov;
  TermId last = kInvalidTermId;
  store.Scan(q, hint, [&](const Triple& t) {
    if (self_loop && t.s != t.o) return true;
    TermId val = v_is_subj ? t.s : t.o;
    // POS/SPO range scans yield the free position in ascending order, so
    // dedup needs only the previous value.
    if (val != last) {
      out->push_back(val);
      last = val;
    }
    return true;
  });
  // Scans through OSP (v subject, other=object bound) yield s sorted; scans
  // through SPO with s bound yield o sorted; seed scans over POS(p) yield
  // (o, s) pairs, so the projection may be unsorted. Normalize.
  if (!std::is_sorted(out->begin(), out->end())) {
    std::sort(out->begin(), out->end());
    out->erase(std::unique(out->begin(), out->end()), out->end());
  }
}

void IntersectSorted(std::vector<TermId>* a, const std::vector<TermId>& b) {
  std::vector<TermId> out;
  out.reserve(std::min(a->size(), b.size()));
  std::set_intersection(a->begin(), a->end(), b.begin(), b.end(),
                        std::back_inserter(out));
  *a = std::move(out);
}

using Rows = std::vector<std::vector<TermId>>;

/// The precomputed, row-independent shape of one BGP evaluation.
struct WcoPlan {
  std::vector<CoreEdge> core;
  std::vector<ResolvedPattern> residual;
  /// Core extension order (covers every core variable).
  std::vector<VarId> var_order;
  /// Variables each residual pattern newly binds, in pattern order.
  std::vector<std::vector<VarId>> residual_new;
  /// var_order followed by all residual_new entries: the column layout of
  /// fully extended rows.
  std::vector<VarId> final_vars;
  /// Set when a constant is missing or a ground triple fails: zero matches.
  bool definitely_empty = false;
};

size_t IndexOf(const std::vector<VarId>& vars, VarId v) {
  for (size_t i = 0; i < vars.size(); ++i)
    if (vars[i] == v) return i;
  return SIZE_MAX;
}

/// Resolves and partitions the BGP and fixes the extension order by
/// replaying the greedy next-variable choice over the simulated bound set.
WcoPlan BuildPlan(const Bgp& bgp, const TripleStore& store,
                  const Dictionary& dict) {
  WcoPlan plan;
  for (const TriplePattern& t : bgp.triples) {
    ResolvedPattern r = Resolve(t, dict);
    if (r.missing_const) {
      plan.definitely_empty = true;
      return plan;
    }
    bool has_so_var = r.sv != kInvalidVarId || r.ov != kInvalidVarId;
    if (!has_so_var && r.pv == kInvalidVarId) {
      if (!store.Contains(Triple(r.s, r.p, r.o))) {
        plan.definitely_empty = true;
        return plan;
      }
      continue;  // ground triple: multiplicative identity
    }
    if (r.pv == kInvalidVarId && has_so_var) {
      plan.core.push_back(CoreEdge{r});
    } else {
      plan.residual.push_back(r);
    }
  }

  // The set of variables handled by the core phase.
  std::vector<VarId> core_vars;
  for (const CoreEdge& e : plan.core) {
    for (VarId v : {e.r.sv, e.r.ov})
      if (v != kInvalidVarId && IndexOf(core_vars, v) == SIZE_MAX)
        core_vars.push_back(v);
  }

  // Estimated seed size of a variable: min over incident edges of the edge's
  // match count with constants bound (cheap index counts).
  auto seed_count = [&](VarId v) -> double {
    double best = 1e300;
    for (const CoreEdge& e : plan.core) {
      if (e.r.sv != v && e.r.ov != v) continue;
      TriplePatternIds q;
      q.p = e.r.p;
      if (e.r.sv == kInvalidVarId) q.s = e.r.s;
      if (e.r.ov == kInvalidVarId) q.o = e.r.o;
      best = std::min(best, static_cast<double>(store.Count(q)));
    }
    return best;
  };

  while (plan.var_order.size() < core_vars.size()) {
    // Pick the next variable: prefer ones adjacent to already-bound vars,
    // break ties by seed selectivity.
    VarId next = kInvalidVarId;
    bool next_adjacent = false;
    double next_score = 1e300;
    for (VarId v : core_vars) {
      if (IndexOf(plan.var_order, v) != SIZE_MAX) continue;
      // v is "adjacent" if some incident edge has a constant or already
      // bound other endpoint — its extension can use an indexed adjacency
      // list instead of a projection seed.
      bool adjacent = false;
      for (const CoreEdge& e : plan.core) {
        if (e.r.sv != v && e.r.ov != v) continue;
        VarId other = e.r.sv == v ? e.r.ov : e.r.sv;
        if (other == kInvalidVarId || IndexOf(plan.var_order, other) != SIZE_MAX) {
          adjacent = true;
          break;
        }
      }
      double score = seed_count(v);
      if (next == kInvalidVarId || (adjacent && !next_adjacent) ||
          (adjacent == next_adjacent && score < next_score)) {
        next = v;
        next_adjacent = adjacent;
        next_score = score;
      }
    }
    plan.var_order.push_back(next);
  }

  // Residual patterns bind their not-yet-bound variables in pattern order.
  plan.final_vars = plan.var_order;
  for (const ResolvedPattern& r : plan.residual) {
    std::vector<VarId> new_vars;
    for (VarId v : {r.sv, r.pv, r.ov})
      if (v != kInvalidVarId && IndexOf(plan.final_vars, v) == SIZE_MAX &&
          IndexOf(new_vars, v) == SIZE_MAX)
        new_vars.push_back(v);
    for (VarId v : new_vars) plan.final_vars.push_back(v);
    plan.residual_new.push_back(std::move(new_vars));
  }
  return plan;
}

/// Extends every partial binding in `rows` (columns = plan.var_order[0..step))
/// with plan.var_order[step]. The per-row logic is independent across rows.
Rows ExtendStep(const TripleStore& store, const WcoPlan& plan, size_t step,
                const Rows& rows, const CandidateMap* cands,
                BgpEvalCounters* counters, CancelCheckpoint& chk,
                TripleStore::ProbeHint* hint) {
  const VarId next = plan.var_order[step];
  auto col_of = [&](VarId v) -> size_t {
    for (size_t i = 0; i < step; ++i)
      if (plan.var_order[i] == v) return i;
    return SIZE_MAX;
  };
  const CandidateMap::Set* cand_set =
      cands != nullptr ? cands->Get(next) : nullptr;
  Rows next_rows;
  std::vector<TermId> cand_list;
  std::vector<TermId> edge_list;
  for (const auto& row : rows) {
    chk.Poll();
    cand_list.clear();
    bool first_edge = true;
    bool dead = false;
    // Edges incident to `next` whose other endpoint is bound or constant
    // contribute an adjacency list; intersect them all.
    for (const CoreEdge& e : plan.core) {
      bool v_is_subj;
      if (e.r.sv == next && e.r.ov == next) {
        v_is_subj = true;  // self-loop handled inside AdjacencyList
      } else if (e.r.sv == next) {
        v_is_subj = true;
      } else if (e.r.ov == next) {
        v_is_subj = false;
      } else {
        continue;
      }
      // Resolve the other endpoint.
      TermId other;
      if (e.r.sv == next && e.r.ov == next) {
        other = kInvalidTermId;
      } else if (v_is_subj) {
        other = e.r.ov == kInvalidVarId
                    ? e.r.o
                    : (col_of(e.r.ov) == SIZE_MAX ? kInvalidTermId
                                                  : row[col_of(e.r.ov)]);
      } else {
        other = e.r.sv == kInvalidVarId
                    ? e.r.s
                    : (col_of(e.r.sv) == SIZE_MAX ? kInvalidTermId
                                                  : row[col_of(e.r.sv)]);
      }
      bool other_is_unbound_var =
          (v_is_subj ? e.r.ov != kInvalidVarId && col_of(e.r.ov) == SIZE_MAX
                     : e.r.sv != kInvalidVarId && col_of(e.r.sv) == SIZE_MAX) &&
          !(e.r.sv == next && e.r.ov == next);
      if (other_is_unbound_var && !first_edge) {
        // Defer: this edge will constrain when its other endpoint binds.
        continue;
      }
      if (other_is_unbound_var && first_edge) {
        // Use the projection as a (sound) seed only if no better edge
        // exists; check whether any other incident edge has a bound
        // endpoint — if so, skip this one.
        bool better_exists = false;
        for (const CoreEdge& e2 : plan.core) {
          if (&e2 == &e) continue;
          if (e2.r.sv != next && e2.r.ov != next) continue;
          bool e2_subj = e2.r.sv == next;
          bool e2_other_unbound =
              (e2_subj ? e2.r.ov != kInvalidVarId && col_of(e2.r.ov) == SIZE_MAX
                       : e2.r.sv != kInvalidVarId && col_of(e2.r.sv) == SIZE_MAX);
          if (!e2_other_unbound) {
            better_exists = true;
            break;
          }
        }
        if (better_exists) continue;
      }
      edge_list.clear();
      AdjacencyList(store, e, v_is_subj, other, &edge_list, counters, hint);
      if (first_edge) {
        cand_list = edge_list;
        first_edge = false;
      } else {
        IntersectSorted(&cand_list, edge_list);
      }
      if (cand_list.empty()) {
        dead = true;
        break;
      }
      if (other_is_unbound_var) break;  // projection seed: one edge only
    }
    if (dead || first_edge) {
      // first_edge still true means no incident edge could seed this
      // variable for this row: disconnected from current bindings. Seed
      // from the globally cheapest incident edge projection.
      if (first_edge && !dead) {
        for (const CoreEdge& e : plan.core) {
          if (e.r.sv != next && e.r.ov != next) continue;
          edge_list.clear();
          AdjacencyList(store, e, e.r.sv == next, kInvalidTermId, &edge_list,
                        counters, hint);
          if (cand_list.empty()) {
            cand_list = edge_list;
          } else {
            IntersectSorted(&cand_list, edge_list);
          }
          break;
        }
      } else if (dead) {
        continue;
      }
    }
    for (TermId val : cand_list) {
      if (cand_set != nullptr && cand_set->count(val) == 0) {
        if (counters) ++counters->candidates_pruned;
        continue;
      }
      std::vector<TermId> nrow = row;
      nrow.push_back(val);
      next_rows.push_back(std::move(nrow));
    }
  }
  if (counters) counters->rows_materialized += next_rows.size();
  return next_rows;
}

/// Runs extension steps [first_step, end), core edge verification and
/// residual pattern expansion over one subset of partial bindings. The
/// result rows follow plan.final_vars; rows are NOT yet deduplicated.
Rows CompleteRows(const TripleStore& store, const WcoPlan& plan,
                  size_t first_step, Rows rows, const CandidateMap* cands,
                  BgpEvalCounters* counters, const CancelToken* cancel) {
  CancelCheckpoint chk(cancel);
  // One adaptive probe hint per morsel: rows arrive sorted by their seed
  // column, so consecutive extension and verification probes hit nearby
  // level-1 buckets and the galloping lookup pays O(1) amortized.
  TripleStore::ProbeHint hint;
  for (size_t step = first_step; step < plan.var_order.size(); ++step) {
    rows = ExtendStep(store, plan, step, rows, cands, counters, chk, &hint);
    if (rows.empty()) return rows;
  }

  // --- Verification of core edges not enforced during extension -------
  // Every core edge with both endpoints bound (or constant) must hold;
  // extensions enforced edges incident to the newly added variable with a
  // bound other endpoint, which covers all of them inductively — except
  // edges whose adjacency was skipped as "deferred". Re-check all.
  auto core_col = [&](VarId v) { return IndexOf(plan.var_order, v); };
  {
    Rows verified;
    verified.reserve(rows.size());
    for (auto& row : rows) {
      chk.Poll();
      bool ok = true;
      for (const CoreEdge& e : plan.core) {
        TermId s = e.r.sv == kInvalidVarId ? e.r.s : row[core_col(e.r.sv)];
        TermId o = e.r.ov == kInvalidVarId ? e.r.o : row[core_col(e.r.ov)];
        if (!store.Contains(Triple(s, e.r.p, o), &hint)) {
          ok = false;
          break;
        }
      }
      if (ok) verified.push_back(std::move(row));
    }
    rows = std::move(verified);
  }

  // --- Residual patterns (variable predicates) -------------------------
  size_t bound_count = plan.var_order.size();
  for (size_t ri = 0; ri < plan.residual.size(); ++ri) {
    const ResolvedPattern& r = plan.residual[ri];
    const std::vector<VarId>& new_vars = plan.residual_new[ri];
    auto col_of = [&](VarId v) -> size_t {
      size_t c = IndexOf(plan.final_vars, v);
      return c < bound_count ? c : SIZE_MAX;
    };
    Rows next_rows;
    for (const auto& row : rows) {
      chk.Poll();
      TriplePatternIds q;
      q.s = r.sv == kInvalidVarId
                ? r.s
                : (col_of(r.sv) != SIZE_MAX ? row[col_of(r.sv)] : kInvalidTermId);
      q.p = r.pv == kInvalidVarId
                ? r.p
                : (col_of(r.pv) != SIZE_MAX ? row[col_of(r.pv)] : kInvalidTermId);
      q.o = r.ov == kInvalidVarId
                ? r.o
                : (col_of(r.ov) != SIZE_MAX ? row[col_of(r.ov)] : kInvalidTermId);
      if (counters) ++counters->index_probes;
      store.Scan(q, &hint, [&](const Triple& t) {
        chk.Poll();
        // Repeated-variable consistency within the pattern.
        if (r.sv != kInvalidVarId && r.sv == r.ov && t.s != t.o) return true;
        if (r.sv != kInvalidVarId && r.sv == r.pv && t.s != t.p) return true;
        if (r.pv != kInvalidVarId && r.pv == r.ov && t.p != t.o) return true;
        std::vector<TermId> nrow = row;
        for (VarId v : new_vars) {
          TermId val = v == r.sv ? t.s : (v == r.pv ? t.p : t.o);
          if (cands != nullptr) {
            const auto* cs = cands->Get(v);
            if (cs != nullptr && cs->count(val) == 0) {
              if (counters) ++counters->candidates_pruned;
              return true;
            }
          }
          nrow.push_back(val);
        }
        next_rows.push_back(std::move(nrow));
        return true;
      });
    }
    bound_count += new_vars.size();
    rows = std::move(next_rows);
    if (counters) counters->rows_materialized += rows.size();
    if (rows.empty()) return rows;
  }
  return rows;
}

/// Sort + unique (set semantics of BGP matching) and projection onto the
/// canonical bgp.Variables() schema. Running this globally over the
/// concatenated morsel outputs is what makes the parallel path bit-identical
/// to the sequential one.
BindingSet EmitRows(Rows rows, const WcoPlan& plan,
                    const std::vector<VarId>& all_vars) {
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());

  BindingSet result(all_vars);
  std::vector<size_t> out_cols;
  out_cols.reserve(all_vars.size());
  for (VarId v : all_vars) out_cols.push_back(IndexOf(plan.final_vars, v));
  std::vector<TermId> out_row(all_vars.size());
  result.Reserve(rows.size());
  for (const auto& row : rows) {
    for (size_t i = 0; i < out_cols.size(); ++i)
      out_row[i] = out_cols[i] == SIZE_MAX ? kUnboundTerm : row[out_cols[i]];
    result.AppendRow(out_row);
  }
  return result;
}

}  // namespace

BindingSet WcoEngine::Evaluate(const Bgp& bgp, const CandidateMap* cands,
                               BgpEvalCounters* counters,
                               const CancelToken* cancel) const {
  std::vector<VarId> all_vars = bgp.Variables();
  if (bgp.triples.empty()) {
    BindingSet result(all_vars);
    result.AppendEmptyMappings(1);  // the unit bag
    return result;
  }
  CancelCheckpoint chk(cancel);
  chk.Poll();
  WcoPlan plan = BuildPlan(bgp, store_, dict_);
  if (plan.definitely_empty) return BindingSet(all_vars);
  Rows rows{{}};  // one empty partial binding
  rows = CompleteRows(store_, plan, 0, std::move(rows), cands, counters, cancel);
  return EmitRows(std::move(rows), plan, all_vars);
}

BindingSet WcoEngine::ParallelEvaluate(const Bgp& bgp, const CandidateMap* cands,
                                       BgpEvalCounters* counters,
                                       const CancelToken* cancel,
                                       const ParallelSpec& spec) const {
  if (!spec.enabled()) return Evaluate(bgp, cands, counters, cancel);
  std::vector<VarId> all_vars = bgp.Variables();
  if (bgp.triples.empty()) {
    BindingSet result(all_vars);
    result.AppendEmptyMappings(1);
    return result;
  }
  CancelCheckpoint chk(cancel);
  chk.Poll();
  WcoPlan plan = BuildPlan(bgp, store_, dict_);
  if (plan.definitely_empty) return BindingSet(all_vars);

  // Seed step: bind the first core variable sequentially (one index scan),
  // producing the partial bindings the morsels partition.
  Rows rows{{}};
  size_t first_step = 0;
  if (!plan.var_order.empty()) {
    TripleStore::ProbeHint seed_hint;
    rows = ExtendStep(store_, plan, 0, rows, cands, counters, chk, &seed_hint);
    first_step = 1;
    if (rows.empty()) return BindingSet(all_vars);
  }

  size_t num_morsels = spec.MorselCount(rows.size());
  if (num_morsels <= 1) {
    // Too little seed fan-out to split: finish sequentially.
    rows = CompleteRows(store_, plan, first_step, std::move(rows), cands,
                        counters, cancel);
    return EmitRows(std::move(rows), plan, all_vars);
  }

  size_t per_morsel = (rows.size() + num_morsels - 1) / num_morsels;
  std::vector<Rows> outs(num_morsels);
  std::vector<BgpEvalCounters> local(num_morsels);
  spec.pool->ParallelFor(num_morsels, spec.EffectiveWorkers(), [&](size_t m) {
    ScopedSpan morsel_span(spec.trace, "morsel", spec.trace_parent);
    size_t begin = m * per_morsel;
    size_t end = std::min(begin + per_morsel, rows.size());
    // Morsel ranges are disjoint and `rows` is dead after the ParallelFor,
    // so the seed bindings move instead of copying.
    Rows subset(std::make_move_iterator(rows.begin() + begin),
                std::make_move_iterator(rows.begin() + end));
    outs[m] = CompleteRows(store_, plan, first_step, std::move(subset), cands,
                           &local[m], cancel);
    morsel_span.Attr("seed_rows", std::to_string(end - begin));
    morsel_span.Attr("rows", std::to_string(outs[m].size()));
  });

  Rows merged;
  size_t total = 0;
  for (const Rows& out : outs) total += out.size();
  merged.reserve(total);
  for (Rows& out : outs)
    for (auto& row : out) merged.push_back(std::move(row));
  if (counters) {
    for (const BgpEvalCounters& c : local) counters->Merge(c);
    counters->morsels += num_morsels;
  }
  return EmitRows(std::move(merged), plan, all_vars);
}

double WcoEngine::EstimateCost(const Bgp& bgp) const {
  if (bgp.triples.empty()) return 0.0;
  // cost(WCOJoin({v1..vk-1}, vk)) = card({v1..vk-1}) * min_i avg_size(vi, p).
  // Follow the same greedy pattern order the evaluation uses, accumulating
  // cardinalities with the sampling estimator.
  std::vector<size_t> order = estimator_.GreedyOrder(bgp);
  double cost = 0.0;
  Bgp prefix;
  double card_prev = 1.0;
  for (size_t k = 0; k < order.size(); ++k) {
    const TriplePattern& t = bgp.triples[order[k]];
    if (k == 0) {
      cost += estimator_.EstimateTriple(t);
      prefix.triples.push_back(t);
      card_prev = estimator_.EstimateBgp(prefix);
      continue;
    }
    // Extension fan: the predicate's average adjacency size.
    double fan = 1.0;
    if (!t.p.is_var) {
      TermId p = dict_.Lookup(t.p.term);
      const PredicateStats& ps = stats_.ForPredicate(p);
      // min over the bound endpoints; approximate with the smaller fanout.
      fan = std::max(1.0, std::min(ps.avg_out(), ps.avg_in()));
    }
    cost += card_prev * fan;
    prefix.triples.push_back(t);
    card_prev = estimator_.EstimateBgp(prefix);
  }
  return cost;
}

}  // namespace sparqluo
