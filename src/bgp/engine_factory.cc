#include "bgp/adaptive_engine.h"
#include "bgp/engine.h"
#include "bgp/hashjoin_engine.h"
#include "bgp/wco_engine.h"

namespace sparqluo {

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kWco: return "gStore-WCO";
    case EngineKind::kHashJoin: return "Jena-HashJoin";
    case EngineKind::kAdaptive: return "Adaptive";
  }
  return "?";
}

std::unique_ptr<BgpEngine> MakeEngine(EngineKind kind, const TripleStore& store,
                                      const Dictionary& dict,
                                      const Statistics& stats) {
  switch (kind) {
    case EngineKind::kWco:
      return std::make_unique<WcoEngine>(store, dict, stats);
    case EngineKind::kHashJoin:
      return std::make_unique<HashJoinEngine>(store, dict, stats);
    case EngineKind::kAdaptive:
      return std::make_unique<AdaptiveEngine>(store, dict, stats);
  }
  return nullptr;
}

}  // namespace sparqluo
