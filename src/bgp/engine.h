// BGP evaluation engine interface.
//
// The SPARQL-UO layer (src/engine, src/optimizer) treats BGP evaluation as a
// black box with a cost model, exactly as the paper prescribes: "our
// proposed optimization techniques operate on a higher level than BGP
// evaluation techniques". Two engines are provided, mirroring the paper's
// two host systems:
//   - WcoEngine       (gStore-style worst-case-optimal vertex extension)
//   - HashJoinEngine  (Jena-style binary hash joins)
#pragma once

#include <memory>

#include "algebra/binding_set.h"
#include "bgp/bgp.h"
#include "bgp/candidates.h"
#include "bgp/cardinality.h"
#include "util/cancellation.h"
#include "util/executor_pool.h"

namespace sparqluo {

/// Instrumentation counters filled during evaluation.
struct BgpEvalCounters {
  uint64_t rows_materialized = 0;  ///< Partial + final bindings produced.
  uint64_t index_probes = 0;       ///< Store scans issued.
  uint64_t candidates_pruned = 0;  ///< Extensions rejected by candidate sets.
  uint64_t morsels = 0;            ///< Morsel tasks run by parallel paths.
  /// Per-BGP engine decisions made by the adaptive engine (both stay 0
  /// under a fixed engine). The executor diffs these around each BGP to
  /// stamp the chosen engine on the BGP's trace span.
  uint64_t wco_evals = 0;
  uint64_t hashjoin_evals = 0;

  void Merge(const BgpEvalCounters& other) {
    rows_materialized += other.rows_materialized;
    index_probes += other.index_probes;
    candidates_pruned += other.candidates_pruned;
    morsels += other.morsels;
    wco_evals += other.wco_evals;
    hashjoin_evals += other.hashjoin_evals;
  }
};

/// Abstract BGP evaluator with the engine-specific cost model of §5.1.2.
class BgpEngine {
 public:
  virtual ~BgpEngine() = default;

  virtual const char* name() const = 0;

  /// Evaluates `bgp` to a BindingSet whose schema is bgp.Variables().
  /// `cands` (nullable) carries candidate pruning sets; variables with a
  /// candidate set only take values from it. `counters` (nullable) collects
  /// instrumentation. `cancel` (nullable) is polled at evaluation
  /// checkpoints; a fired token aborts with a CancelledError that the
  /// Executor converts to a ResourceExhausted status.
  virtual BindingSet Evaluate(const Bgp& bgp, const CandidateMap* cands,
                              BgpEvalCounters* counters,
                              const CancelToken* cancel) const = 0;

  BindingSet Evaluate(const Bgp& bgp, const CandidateMap* cands,
                      BgpEvalCounters* counters) const {
    return Evaluate(bgp, cands, counters, nullptr);
  }

  BindingSet Evaluate(const Bgp& bgp) const {
    return Evaluate(bgp, nullptr, nullptr, nullptr);
  }

  /// Morsel-driven evaluation: identical contract and bit-identical result
  /// (schema and row order) to Evaluate, but heavy per-row work is fanned
  /// out over `spec.pool`. Engines without a parallel path fall back to the
  /// sequential Evaluate, as does a disabled spec.
  virtual BindingSet ParallelEvaluate(const Bgp& bgp, const CandidateMap* cands,
                                      BgpEvalCounters* counters,
                                      const CancelToken* cancel,
                                      const ParallelSpec& spec) const {
    (void)spec;
    return Evaluate(bgp, cands, counters, cancel);
  }

  /// cost(P): estimated evaluation cost of the BGP under this engine's join
  /// strategy (WCO join cost or binary join cost).
  virtual double EstimateCost(const Bgp& bgp) const = 0;

  /// |res(P)| estimate, shared across engines.
  double EstimateCardinality(const Bgp& bgp) const {
    return estimator().EstimateBgp(bgp);
  }

  virtual const CardinalityEstimator& estimator() const = 0;
};

/// Which host system's BGP engine to instantiate. kAdaptive holds both and
/// picks the cheaper per BGP from the engines' own cost models (the
/// cardinality pilot the planner already runs).
enum class EngineKind { kWco, kHashJoin, kAdaptive };

/// Human-readable engine name ("gStore-WCO" / "Jena-HashJoin" / "Adaptive").
const char* EngineKindName(EngineKind kind);

/// Creates an engine bound to the given store/dictionary/statistics. All
/// referenced objects must outlive the engine.
std::unique_ptr<BgpEngine> MakeEngine(EngineKind kind, const TripleStore& store,
                                      const Dictionary& dict,
                                      const Statistics& stats);

}  // namespace sparqluo
