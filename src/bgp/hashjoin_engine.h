// Jena-style binary hash-join BGP engine.
//
// Each triple pattern is scanned into a full binding table (filtered by
// candidate sets when present), then the tables are combined pairwise with
// hash joins in a greedy order. This mirrors the evaluation strategy the
// paper attributes to Jena, including its cost model (Equation 9):
//
//   cost(BinaryJoin(V1, V2)) = 2 * min(card(V1), card(V2))
//                            +     max(card(V1), card(V2))
#pragma once

#include "bgp/engine.h"

namespace sparqluo {

class HashJoinEngine : public BgpEngine {
 public:
  HashJoinEngine(const TripleStore& store, const Dictionary& dict,
                 const Statistics& stats)
      : store_(store), dict_(dict), stats_(stats),
        estimator_(store, dict, stats) {}

  const char* name() const override { return "Jena-HashJoin"; }

  BindingSet Evaluate(const Bgp& bgp, const CandidateMap* cands,
                      BgpEvalCounters* counters,
                      const CancelToken* cancel) const override;

  /// Morsel-driven evaluation, bit-identical to Evaluate: pattern scans are
  /// partitioned over the store's sorted index ranges and each binary join
  /// runs as a sharded hash build plus a morsel-parallel probe
  /// (ParallelJoin). Per-morsel tables concatenate in morsel order, so the
  /// row order matches the sequential pipeline exactly.
  BindingSet ParallelEvaluate(const Bgp& bgp, const CandidateMap* cands,
                              BgpEvalCounters* counters,
                              const CancelToken* cancel,
                              const ParallelSpec& spec) const override;

  double EstimateCost(const Bgp& bgp) const override;

  const CardinalityEstimator& estimator() const override { return estimator_; }

 private:
  /// Scans one triple pattern into a binding table.
  BindingSet ScanPattern(const TriplePattern& t, const CandidateMap* cands,
                         BgpEvalCounters* counters,
                         CancelCheckpoint* chk) const;

  /// ScanPattern with the matched index range split into morsels; the
  /// concatenated result is bit-identical to the sequential scan.
  BindingSet ParallelScanPattern(const TriplePattern& t,
                                 const CandidateMap* cands,
                                 BgpEvalCounters* counters,
                                 const CancelToken* cancel,
                                 const ParallelSpec& spec) const;

  const TripleStore& store_;
  const Dictionary& dict_;
  const Statistics& stats_;
  CardinalityEstimator estimator_;
};

}  // namespace sparqluo
