// Per-BGP adaptive engine selection.
//
// Holds both host engines (gStore-WCO and Jena-HashJoin) over the same
// store/dictionary/statistics and, for every BGP it is asked to evaluate,
// delegates to whichever engine's own cost model (§5.1.2) estimates the
// cheaper evaluation — the WCO extension cost vs the binary-join cost,
// both driven by the shared cardinality pilot. This replaces the global
// engine flag with a per-BGP decision: one query can evaluate its star
// subpattern with WCO vertex extension and its chain subpattern with
// binary hash joins.
//
// Correctness rides on the existing bit-identity discipline: both engines
// produce identical BindingSets (schema and row order) for every BGP, so
// the choice affects speed only — cached plans, cached results and deduped
// responses stay byte-identical regardless of which engine ran.
//
// The decision is recorded in BgpEvalCounters (wco_evals / hashjoin_evals);
// the executor stamps it on the BGP's trace span so --explain-analyze
// shows which engine evaluated each BGP.
#pragma once

#include "bgp/engine.h"
#include "bgp/hashjoin_engine.h"
#include "bgp/wco_engine.h"

namespace sparqluo {

class AdaptiveEngine : public BgpEngine {
 public:
  AdaptiveEngine(const TripleStore& store, const Dictionary& dict,
                 const Statistics& stats)
      : wco_(store, dict, stats), hashjoin_(store, dict, stats) {}

  const char* name() const override { return "Adaptive"; }

  BindingSet Evaluate(const Bgp& bgp, const CandidateMap* cands,
                      BgpEvalCounters* counters,
                      const CancelToken* cancel) const override {
    return Pick(bgp, counters).Evaluate(bgp, cands, counters, cancel);
  }

  BindingSet ParallelEvaluate(const Bgp& bgp, const CandidateMap* cands,
                              BgpEvalCounters* counters,
                              const CancelToken* cancel,
                              const ParallelSpec& spec) const override {
    return Pick(bgp, counters).ParallelEvaluate(bgp, cands, counters, cancel,
                                                spec);
  }

  /// The cost the engine will actually pay: the cheaper of the two models.
  double EstimateCost(const Bgp& bgp) const override {
    double wco = wco_.EstimateCost(bgp);
    double hash = hashjoin_.EstimateCost(bgp);
    return wco <= hash ? wco : hash;
  }

  /// Both engines build identical estimators over the same statistics;
  /// expose one of them as the shared pilot.
  const CardinalityEstimator& estimator() const override {
    return wco_.estimator();
  }

  /// The engine EstimateCost picked for `bgp`: ties go to WCO (the paper's
  /// default host system).
  const BgpEngine& ChooseFor(const Bgp& bgp) const {
    return wco_.EstimateCost(bgp) <= hashjoin_.EstimateCost(bgp)
               ? static_cast<const BgpEngine&>(wco_)
               : static_cast<const BgpEngine&>(hashjoin_);
  }

 private:
  const BgpEngine& Pick(const Bgp& bgp, BgpEvalCounters* counters) const {
    const BgpEngine& chosen = ChooseFor(bgp);
    if (counters != nullptr) {
      if (&chosen == static_cast<const BgpEngine*>(&wco_)) {
        ++counters->wco_evals;
      } else {
        ++counters->hashjoin_evals;
      }
    }
    return chosen;
  }

  WcoEngine wco_;
  HashJoinEngine hashjoin_;
};

}  // namespace sparqluo
