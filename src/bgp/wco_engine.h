// gStore-style worst-case-optimal (WCO) join BGP engine.
//
// Evaluation proceeds vertex-at-a-time over the query graph: each step picks
// the next variable and, for every partial binding, intersects the adjacency
// lists of all already-bound neighbors to produce the variable's matches
// (Section 5.1.2). Candidate pruning sets restrict the values a variable may
// take before any intersection result is materialized — which is what makes
// the CP optimization effective on this engine.
#pragma once

#include "bgp/engine.h"

namespace sparqluo {

class WcoEngine : public BgpEngine {
 public:
  WcoEngine(const TripleStore& store, const Dictionary& dict,
            const Statistics& stats)
      : store_(store), dict_(dict), stats_(stats),
        estimator_(store, dict, stats) {}

  const char* name() const override { return "gStore-WCO"; }

  BindingSet Evaluate(const Bgp& bgp, const CandidateMap* cands,
                      BgpEvalCounters* counters,
                      const CancelToken* cancel) const override;

  /// Morsel-driven evaluation, bit-identical to Evaluate: the seed
  /// variable's bindings are produced sequentially, partitioned into
  /// morsels, and each morsel runs the remaining vertex extensions,
  /// verification and residual expansion independently. The final global
  /// sort+dedup (shared with the sequential path) makes the merge
  /// deterministic.
  BindingSet ParallelEvaluate(const Bgp& bgp, const CandidateMap* cands,
                              BgpEvalCounters* counters,
                              const CancelToken* cancel,
                              const ParallelSpec& spec) const override;

  /// WCO join cost: sum over extension steps of
  ///   card({v1..vk-1}) * min_i average_size(vi, p).
  double EstimateCost(const Bgp& bgp) const override;

  const CardinalityEstimator& estimator() const override { return estimator_; }

 private:
  const TripleStore& store_;
  const Dictionary& dict_;
  const Statistics& stats_;
  CardinalityEstimator estimator_;
};

}  // namespace sparqluo
