// Sampling-based cardinality estimation (Section 5.1.2).
//
// Single triple patterns are answered exactly from the store's indexes.
// Multi-pattern BGPs chain the paper's scale-up rule:
//
//   card(V_k) = max(#extend / #sample * card(V_{k-1}), 1)
//
// where the sample is an actual pilot evaluation capped at `sample_size`
// partial results per step.
#pragma once

#include <vector>

#include "bgp/bgp.h"
#include "rdf/dictionary.h"
#include "rdf/statistics.h"
#include "rdf/triple_store.h"

namespace sparqluo {

/// Resolved view of a triple pattern: constants mapped to TermIds.
/// `missing_const` is set when a constant does not occur in the dictionary,
/// in which case the pattern can have no matches.
struct ResolvedPattern {
  const TriplePattern* src = nullptr;
  // For each position: kInvalidTermId when the position is a variable.
  TermId s = kInvalidTermId, p = kInvalidTermId, o = kInvalidTermId;
  // Variable ids (kInvalidVarId when the position is a constant).
  VarId sv = kInvalidVarId, pv = kInvalidVarId, ov = kInvalidVarId;
  bool missing_const = false;
};

/// Resolves a pattern's constants through `dict`.
ResolvedPattern Resolve(const TriplePattern& t, const Dictionary& dict);

/// Cardinality estimator shared by both BGP engines and the SPARQL-UO cost
/// model.
class CardinalityEstimator {
 public:
  CardinalityEstimator(const TripleStore& store, const Dictionary& dict,
                       const Statistics& stats, size_t sample_size = 32)
      : store_(store), dict_(dict), stats_(stats), sample_size_(sample_size) {}

  /// Exact match count of a single triple pattern (index lookup).
  double EstimateTriple(const TriplePattern& t) const;

  /// Estimated result size of a BGP via the sampling chain. Returns the
  /// exact count for single-pattern BGPs and 1 for empty BGPs (the unit).
  double EstimateBgp(const Bgp& bgp) const;

  const Statistics& stats() const { return stats_; }
  const TripleStore& store() const { return store_; }
  const Dictionary& dict() const { return dict_; }

  /// Greedy pattern order: start from the smallest exact-count pattern,
  /// then repeatedly append the connected pattern with the smallest count
  /// (falling back to disconnected ones when none connects). Both engines
  /// and the cost models use this order.
  std::vector<size_t> GreedyOrder(const Bgp& bgp) const;

 private:
  const TripleStore& store_;
  const Dictionary& dict_;
  const Statistics& stats_;
  size_t sample_size_;
};

}  // namespace sparqluo
