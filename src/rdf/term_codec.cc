#include "rdf/term_codec.h"

namespace sparqluo {

namespace {

std::string Offset(size_t off) {
  return "offset " + std::to_string(off);
}

}  // namespace

bool TermFitsRecord(const Term& t) {
  return t.lexical.size() <= kMaxTermBytes &&
         t.qualifier.size() <= kMaxTermBytes;
}

void AppendTermRecord(std::string* out, const Term& t) {
  out->push_back(static_cast<char>(t.kind));
  out->push_back(t.qualifier_is_lang ? 1 : 0);
  PutU32(out, static_cast<uint32_t>(t.lexical.size()));
  PutBytes(out, t.lexical.data(), t.lexical.size());
  PutU32(out, static_cast<uint32_t>(t.qualifier.size()));
  PutBytes(out, t.qualifier.data(), t.qualifier.size());
}

bool ReadTermString(ByteReader* in, std::string* s) {
  uint32_t len;
  if (!in->ReadU32(&len) || len > kMaxTermBytes) return false;
  const uint8_t* bytes;
  if (!in->Borrow(&bytes, len)) return false;
  s->assign(reinterpret_cast<const char*>(bytes), len);
  return true;
}

bool ReadTermRecord(ByteReader* in, const char* section, uint64_t i,
                    uint64_t count, Term* t, std::string* msg) {
  const size_t record_off = in->offset();
  auto at = [&] {
    return std::string("(section '") + section + "', term " +
           std::to_string(i) + " of " + std::to_string(count) + ", " +
           Offset(record_off) + ")";
  };
  uint8_t kind, is_lang;
  if (!in->ReadU8(&kind) || !in->ReadU8(&is_lang)) {
    *msg = "truncated term record " + at();
    return false;
  }
  if (kind > 2) {
    *msg = "corrupt term record: kind " + std::to_string(kind) + " " + at();
    return false;
  }
  t->kind = static_cast<TermKind>(kind);
  t->qualifier_is_lang = is_lang != 0;
  if (!ReadTermString(in, &t->lexical) || !ReadTermString(in, &t->qualifier)) {
    *msg = "truncated term record " + at();
    return false;
  }
  return true;
}

}  // namespace sparqluo
