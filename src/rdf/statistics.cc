#include "rdf/statistics.h"

#include <algorithm>
#include <vector>

namespace sparqluo {

Statistics Statistics::Compute(const TripleStore& store,
                               const Dictionary& dict) {
  // All aggregates fall out of the CSR level-1 directories and grouped
  // bucket walks — no per-triple hash sets:
  //   - distinct subjects/predicates/objects are directory sizes,
  //   - per-predicate counts are POS bucket sizes and distinct objects a
  //     run-length count over the bucket's sorted leading pair component,
  //   - per-predicate distinct subjects accumulate from the SPO walk
  //     (each subject bucket lists its distinct predicates consecutively),
  //   - entities = subjects ∪ non-literal objects, a sorted merge of the
  //     SPO and OSP directories.
  Statistics st;
  st.num_triples_ = store.size();

  std::span<const TermId> subjects = store.DistinctFirsts(Perm::kSpo);
  std::span<const TermId> objects = store.DistinctFirsts(Perm::kOsp);
  st.num_predicates_ = store.DistinctFirsts(Perm::kPos).size();

  store.ForEachGroup(Perm::kPos, [&](TermId p, std::span<const IdPair> pairs) {
    PredicateStats& ps = st.per_predicate_[p];
    ps.count = pairs.size();
    TermId last_o = kInvalidTermId;
    for (const IdPair& pr : pairs) {  // pr = (o, s), sorted by o
      if (pr.second != last_o) {
        ++ps.distinct_objects;
        last_o = pr.second;
      }
    }
  });
  store.ForEachGroup(Perm::kSpo, [&](TermId, std::span<const IdPair> pairs) {
    TermId last_p = kInvalidTermId;
    for (const IdPair& pr : pairs) {  // pr = (p, o), sorted by p
      if (pr.second != last_p) {
        ++st.per_predicate_[pr.second].distinct_subjects;
        last_p = pr.second;
      }
    }
  });

  // Entities are subjects plus non-literal objects; literals only ever
  // appear in object position. Both directories are sorted, so the union
  // is a linear merge.
  std::vector<TermId> entity_objects;
  entity_objects.reserve(objects.size());
  for (TermId o : objects) {
    if (dict.Decode(o).is_literal()) {
      ++st.num_literals_;
    } else {
      entity_objects.push_back(o);
    }
  }
  size_t i = 0, j = 0;
  while (i < subjects.size() || j < entity_objects.size()) {
    if (j >= entity_objects.size()) {
      ++i;
    } else if (i >= subjects.size()) {
      ++j;
    } else if (subjects[i] == entity_objects[j]) {
      ++i;
      ++j;
    } else if (subjects[i] < entity_objects[j]) {
      ++i;
    } else {
      ++j;
    }
    ++st.num_entities_;
  }
  return st;
}

}  // namespace sparqluo
