#include "rdf/statistics.h"

#include <unordered_set>

namespace sparqluo {

Statistics Statistics::Compute(const TripleStore& store,
                               const Dictionary& dict) {
  Statistics st;
  st.num_triples_ = store.size();

  std::unordered_set<TermId> entities;
  std::unordered_set<TermId> literals;
  // Per-predicate distinct subject/object counting exploits POS order: the
  // store's triples() span is SPO-sorted, so we instead collect into hash
  // sets per predicate, which is fine at our scales.
  std::unordered_map<TermId, std::unordered_set<TermId>> subj_of, obj_of;

  for (const Triple& t : store.triples()) {
    entities.insert(t.s);
    if (dict.Decode(t.o).is_literal()) {
      literals.insert(t.o);
    } else {
      entities.insert(t.o);
    }
    PredicateStats& ps = st.per_predicate_[t.p];
    ++ps.count;
    subj_of[t.p].insert(t.s);
    obj_of[t.p].insert(t.o);
  }
  for (auto& [p, ps] : st.per_predicate_) {
    ps.distinct_subjects = subj_of[p].size();
    ps.distinct_objects = obj_of[p].size();
  }
  st.num_entities_ = entities.size();
  st.num_predicates_ = st.per_predicate_.size();
  st.num_literals_ = literals.size();
  return st;
}

}  // namespace sparqluo
