#include "rdf/statistics.h"

#include <algorithm>
#include <vector>

#include "util/binary_io.h"

namespace sparqluo {

Statistics Statistics::Compute(const TripleStore& store,
                               const Dictionary& dict) {
  // All aggregates fall out of the CSR level-1 directories and grouped
  // bucket walks — no per-triple hash sets:
  //   - distinct subjects/predicates/objects are directory sizes,
  //   - per-predicate counts are POS bucket sizes and distinct objects a
  //     run-length count over the bucket's sorted leading pair component,
  //   - per-predicate distinct subjects accumulate from the SPO walk
  //     (each subject bucket lists its distinct predicates consecutively),
  //   - entities = subjects ∪ non-literal objects, a sorted merge of the
  //     SPO and OSP directories.
  Statistics st;
  st.num_triples_ = store.size();

  std::span<const TermId> subjects = store.DistinctFirsts(Perm::kSpo);
  std::span<const TermId> objects = store.DistinctFirsts(Perm::kOsp);
  st.num_predicates_ = store.DistinctFirsts(Perm::kPos).size();

  store.ForEachGroup(Perm::kPos, [&](TermId p, std::span<const IdPair> pairs) {
    PredicateStats& ps = st.per_predicate_[p];
    ps.count = pairs.size();
    TermId last_o = kInvalidTermId;
    for (const IdPair& pr : pairs) {  // pr = (o, s), sorted by o
      if (pr.second != last_o) {
        ++ps.distinct_objects;
        last_o = pr.second;
      }
    }
  });
  store.ForEachGroup(Perm::kSpo, [&](TermId, std::span<const IdPair> pairs) {
    TermId last_p = kInvalidTermId;
    for (const IdPair& pr : pairs) {  // pr = (p, o), sorted by p
      if (pr.second != last_p) {
        ++st.per_predicate_[pr.second].distinct_subjects;
        last_p = pr.second;
      }
    }
  });

  // Entities are subjects plus non-literal objects; literals only ever
  // appear in object position. Both directories are sorted, so the union
  // is a linear merge.
  std::vector<TermId> entity_objects;
  entity_objects.reserve(objects.size());
  for (TermId o : objects) {
    if (dict.Decode(o).is_literal()) {
      ++st.num_literals_;
    } else {
      entity_objects.push_back(o);
    }
  }
  size_t i = 0, j = 0;
  while (i < subjects.size() || j < entity_objects.size()) {
    if (j >= entity_objects.size()) {
      ++i;
    } else if (i >= subjects.size()) {
      ++j;
    } else if (subjects[i] == entity_objects[j]) {
      ++i;
      ++j;
    } else if (subjects[i] < entity_objects[j]) {
      ++i;
    } else {
      ++j;
    }
    ++st.num_entities_;
  }
  return st;
}

void Statistics::SerializeTo(std::string* out) const {
  PutU64(out, num_triples_);
  PutU64(out, num_entities_);
  PutU64(out, num_predicates_);
  PutU64(out, num_literals_);
  std::vector<TermId> preds;
  preds.reserve(per_predicate_.size());
  for (const auto& [p, ps] : per_predicate_) preds.push_back(p);
  std::sort(preds.begin(), preds.end());
  PutU64(out, preds.size());
  for (TermId p : preds) {
    const PredicateStats& ps = per_predicate_.at(p);
    PutU32(out, p);
    PutU64(out, ps.count);
    PutU64(out, ps.distinct_subjects);
    PutU64(out, ps.distinct_objects);
  }
}

Result<Statistics> Statistics::Deserialize(const uint8_t* data, size_t size) {
  ByteReader in(data, size);
  Statistics st;
  uint64_t pred_entries = 0;
  if (!in.ReadU64(&st.num_triples_) || !in.ReadU64(&st.num_entities_) ||
      !in.ReadU64(&st.num_predicates_) || !in.ReadU64(&st.num_literals_) ||
      !in.ReadU64(&pred_entries))
    return Status::ParseError("statistics: truncated header");
  // Each entry takes 28 bytes; reject counts the section cannot hold
  // before reserving anything.
  if (pred_entries > in.remaining() / 28)
    return Status::ParseError("statistics: predicate entry count exceeds "
                              "section size");
  st.per_predicate_.reserve(pred_entries);
  TermId last_p = 0;
  for (uint64_t i = 0; i < pred_entries; ++i) {
    uint32_t p;
    PredicateStats ps;
    if (!in.ReadU32(&p) || !in.ReadU64(&ps.count) ||
        !in.ReadU64(&ps.distinct_subjects) || !in.ReadU64(&ps.distinct_objects))
      return Status::ParseError("statistics: truncated predicate entry");
    if (i > 0 && p <= last_p)
      return Status::ParseError("statistics: predicate ids not strictly "
                                "ascending");
    last_p = p;
    st.per_predicate_.emplace(p, ps);
  }
  if (in.remaining() != 0)
    return Status::ParseError("statistics: trailing bytes after last entry");
  return st;
}

}  // namespace sparqluo
