// Turtle (subset) reader.
//
// Supports the Turtle constructs used by common dataset dumps:
//   @prefix / PREFIX and @base / BASE directives, prefixed names, the `a`
//   shorthand, predicate lists (;), object lists (,), IRIs, blank node
//   labels (_:b), and plain / language-tagged / datatyped literals and
//   numbers. Collections `(...)`, anonymous blank nodes `[...]` and
//   multi-line literals are not supported and are rejected with a parse
//   error.
#pragma once

#include <string>

#include "rdf/dictionary.h"
#include "rdf/triple_store.h"
#include "util/status.h"

namespace sparqluo {

/// Parses Turtle text, appending triples to `store` via `dict`. The store
/// is NOT built; call store->Build() after all loads.
Status ParseTurtleString(const std::string& text, Dictionary* dict,
                         TripleStore* store);

/// Loads a .ttl file from disk.
Status LoadTurtleFile(const std::string& path, Dictionary* dict,
                      TripleStore* store);

}  // namespace sparqluo
