#include "rdf/dictionary.h"

namespace sparqluo {

TermId Dictionary::Encode(const Term& term) {
  std::string key = term.CanonicalKey();
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  index_.emplace(std::move(key), id);
  terms_.push_back(term);
  if (term.is_literal()) ++literal_count_;
  return id;
}

TermId Dictionary::Lookup(const Term& term) const {
  auto it = index_.find(term.CanonicalKey());
  return it == index_.end() ? kInvalidTermId : it->second;
}

}  // namespace sparqluo
