#include "rdf/dictionary.h"

#include <cassert>
#include <mutex>

namespace sparqluo {

Dictionary::~Dictionary() {
  for (auto& chunk : chunks_) delete[] chunk.load(std::memory_order_relaxed);
}

TermId Dictionary::Encode(const Term& term) {
  std::string key = term.CanonicalKey();
  {
    // Fast path: the term is usually already interned (loaders re-encode
    // shared subjects/predicates constantly, update batches mostly touch
    // existing vocabulary).
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;  // raced with another writer

  size_t id = size_.load(std::memory_order_relaxed);
  assert(id < static_cast<size_t>(kInvalidTermId) && "dictionary id space full");
  size_t offset;
  size_t x = (id >> kFirstChunkBits) + 1;
  size_t c = std::bit_width(x) - 1;
  offset = id - kFirstChunkSize * ((size_t{1} << c) - 1);
  Term* chunk = chunks_[c].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    // Ids are dense, so a chunk is first touched at offset 0 — exactly one
    // allocation per chunk, done by whichever writer crosses the boundary.
    chunk = new Term[kFirstChunkSize << c];
    chunks_[c].store(chunk, std::memory_order_release);
  }
  chunk[offset] = term;
  if (term.is_literal()) literal_count_.fetch_add(1, std::memory_order_relaxed);
  index_.emplace(std::move(key), static_cast<TermId>(id));
  // Publish after the term is fully constructed: a reader that observes
  // size() > id is guaranteed to see the term via the acquire load.
  size_.store(id + 1, std::memory_order_release);
  return static_cast<TermId>(id);
}

TermId Dictionary::Lookup(const Term& term) const {
  std::string key = term.CanonicalKey();
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(key);
  return it == index_.end() ? kInvalidTermId : it->second;
}

}  // namespace sparqluo
