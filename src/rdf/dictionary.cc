#include "rdf/dictionary.h"

#include <cassert>
#include <mutex>

#include "obs/metrics.h"

namespace sparqluo {

namespace {

/// Process-wide dictionary-growth counter, resolved once (the bulk loader
/// interns millions of terms; a registry map lookup per term would show up).
Counter* TermsInternedCounter() {
  static Counter* counter = MetricRegistry::Global().GetCounter(
      "sparqluo_dictionary_terms_total",
      "Terms interned across all dictionaries");
  return counter;
}

}  // namespace

Dictionary::~Dictionary() {
  for (auto& chunk : chunks_) delete[] chunk.load(std::memory_order_relaxed);
}

Term* Dictionary::SlotFor(size_t id) {
  size_t x = (id >> kFirstChunkBits) + 1;
  size_t c = std::bit_width(x) - 1;
  size_t offset = id - kFirstChunkSize * ((size_t{1} << c) - 1);
  Term* chunk = chunks_[c].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    // Ids are dense, so a chunk is first touched at offset 0 — exactly one
    // allocation per chunk, done by whichever writer crosses the boundary.
    chunk = new Term[kFirstChunkSize << c];
    chunks_[c].store(chunk, std::memory_order_release);
  }
  return chunk + offset;
}

void Dictionary::EnsureIndexLocked() const {
  size_t n = size_.load(std::memory_order_relaxed);
  for (size_t id = indexed_count_; id < n; ++id)
    index_.emplace(Decode(static_cast<TermId>(id)).CanonicalKey(),
                   static_cast<TermId>(id));
  indexed_count_ = n;
  index_complete_.store(true, std::memory_order_release);
}

TermId Dictionary::Encode(const Term& term) {
  std::string key = term.CanonicalKey();
  if (index_complete_.load(std::memory_order_acquire)) {
    // Fast path: the term is usually already interned (loaders re-encode
    // shared subjects/predicates constantly, update batches mostly touch
    // existing vocabulary).
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  // A bulk snapshot load leaves the string index stale; close the gap
  // before deciding the term is new (a duplicate id would corrupt the
  // dense-id invariant every version relies on).
  if (!index_complete_.load(std::memory_order_relaxed)) EnsureIndexLocked();
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;  // raced with another writer

  size_t id = size_.load(std::memory_order_relaxed);
  assert(id < static_cast<size_t>(kInvalidTermId) && "dictionary id space full");
  *SlotFor(id) = term;
  if (term.is_literal()) literal_count_.fetch_add(1, std::memory_order_relaxed);
  index_.emplace(std::move(key), static_cast<TermId>(id));
  indexed_count_ = id + 1;
  TermsInternedCounter()->Increment();
  // Publish after the term is fully constructed: a reader that observes
  // size() > id is guaranteed to see the term via the acquire load.
  size_.store(id + 1, std::memory_order_release);
  return static_cast<TermId>(id);
}

TermId Dictionary::AppendForLoad(Term term) {
  size_t id = size_.load(std::memory_order_relaxed);
  assert(id < static_cast<size_t>(kInvalidTermId) && "dictionary id space full");
  const bool is_literal = term.is_literal();
  *SlotFor(id) = std::move(term);
  if (is_literal) literal_count_.fetch_add(1, std::memory_order_relaxed);
  TermsInternedCounter()->Increment();
  index_complete_.store(false, std::memory_order_relaxed);
  size_.store(id + 1, std::memory_order_release);
  return static_cast<TermId>(id);
}

TermId Dictionary::Lookup(const Term& term) const {
  std::string key = term.CanonicalKey();
  if (!index_complete_.load(std::memory_order_acquire)) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (!index_complete_.load(std::memory_order_relaxed)) EnsureIndexLocked();
    auto it = index_.find(key);
    return it == index_.end() ? kInvalidTermId : it->second;
  }
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(key);
  return it == index_.end() ? kInvalidTermId : it->second;
}

}  // namespace sparqluo
