// Dataset statistics backing the cost models (Section 5.1.2) and Table 2.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "rdf/dictionary.h"
#include "rdf/triple_store.h"

namespace sparqluo {

/// Per-predicate aggregates.
struct PredicateStats {
  uint64_t count = 0;              ///< Triples with this predicate.
  uint64_t distinct_subjects = 0;
  uint64_t distinct_objects = 0;

  /// average_size(v, p) of the WCO cost model when v is at the subject end
  /// of the edge (average out-fanout of the predicate).
  double avg_out() const {
    return distinct_subjects == 0
               ? 0.0
               : static_cast<double>(count) / distinct_subjects;
  }
  /// average_size(v, p) when v is at the object end (average in-fanout).
  double avg_in() const {
    return distinct_objects == 0 ? 0.0
                                 : static_cast<double>(count) / distinct_objects;
  }
};

/// Whole-dataset statistics (Table 2 columns) plus per-predicate aggregates.
class Statistics {
 public:
  /// Scans a built store once and fills all aggregates.
  static Statistics Compute(const TripleStore& store, const Dictionary& dict);

  uint64_t num_triples() const { return num_triples_; }
  uint64_t num_entities() const { return num_entities_; }
  uint64_t num_predicates() const { return num_predicates_; }
  uint64_t num_literals() const { return num_literals_; }

  /// Stats for a predicate id; zeros for unknown predicates.
  const PredicateStats& ForPredicate(TermId p) const {
    static const PredicateStats kEmpty;
    auto it = per_predicate_.find(p);
    return it == per_predicate_.end() ? kEmpty : it->second;
  }

  /// Appends the binary image of the whole structure — the SPQLUO2 `stats`
  /// section (docs/snapshot_format.md). Per-predicate entries are written
  /// sorted by id, so the encoding is byte-deterministic.
  void SerializeTo(std::string* out) const;

  /// Parses an image produced by SerializeTo. Rejects truncated or
  /// malformed input with a ParseError naming the failing field.
  static Result<Statistics> Deserialize(const uint8_t* data, size_t size);

 private:
  uint64_t num_triples_ = 0;
  uint64_t num_entities_ = 0;
  uint64_t num_predicates_ = 0;
  uint64_t num_literals_ = 0;
  std::unordered_map<TermId, PredicateStats> per_predicate_;
};

}  // namespace sparqluo
