// Shared binary term-record codec.
//
// One term record is: u8 kind, u8 qualifier_is_lang, then two
// length-prefixed (u32) strings — lexical and qualifier. The shape is
// shared by the v1 snapshot 'terms' stream, the v2 snapshot 'dict'
// section, and WAL update records; extracting it here keeps all three
// byte-identical (the committed golden v1 fixture pins the encoding).
#pragma once

#include <cstdint>
#include <string>

#include "rdf/term.h"
#include "util/binary_io.h"

namespace sparqluo {

/// Sanity cap shared by every reader of the record shape: no single term
/// string exceeds 16 MiB.
inline constexpr uint32_t kMaxTermBytes = 16u << 20;

/// True when both strings of `t` fit under kMaxTermBytes. Writers must
/// check before encoding — a record that encodes but can never decode
/// again is worse than a failed write.
bool TermFitsRecord(const Term& t);

/// Appends one term record to `out`.
void AppendTermRecord(std::string* out, const Term& t);

/// Reads one length-prefixed string; false on truncation or a length above
/// the sanity cap.
bool ReadTermString(ByteReader* in, std::string* s);

/// Decodes one term record. On failure fills `msg` with the inner error
/// text — including the section name, record index `i` of `count`, and
/// byte offset — for the caller to wrap with its format/path prefix.
bool ReadTermRecord(ByteReader* in, const char* section, uint64_t i,
                    uint64_t count, Term* t, std::string* msg);

}  // namespace sparqluo
