// In-memory dictionary-encoded triple store with permutation indexes.
//
// The store keeps three sorted copies of the triple set — SPO, POS and OSP —
// which together answer every bound/unbound combination of a triple pattern
// with a binary-searched prefix scan:
//
//   bound (s) / (s,p) / (s,p,o)  -> SPO
//   bound (p) / (p,o)            -> POS
//   bound (o) / (o,s)            -> OSP
//   nothing bound                -> SPO full scan
//
// This mirrors the "single table exhaustive indexing" organization used by
// RDF-3x-style stores, reduced to the three orders that suffice for prefix
// lookups.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/term.h"

namespace sparqluo {

/// Hash over the three ids of a triple (for delta/delete sets).
struct TripleHash {
  size_t operator()(const Triple& t) const {
    uint64_t h = t.s;
    h = h * 0x9E3779B97F4A7C15ull + t.p;
    h = h * 0x9E3779B97F4A7C15ull + t.o;
    h ^= h >> 32;
    h *= 0xD6E8FEB86659FD93ull;
    h ^= h >> 32;
    return static_cast<size_t>(h);
  }
};

/// A set of fully-bound triples (update deltas, delete filters).
using TripleSet = std::unordered_set<Triple, TripleHash>;

/// A triple pattern over ids; kInvalidTermId marks an unbound position.
struct TriplePatternIds {
  TermId s = kInvalidTermId;
  TermId p = kInvalidTermId;
  TermId o = kInvalidTermId;

  bool s_bound() const { return s != kInvalidTermId; }
  bool p_bound() const { return p != kInvalidTermId; }
  bool o_bound() const { return o != kInvalidTermId; }
};

/// Append-then-freeze triple store. Add() all triples, call Build(), then
/// query. Duplicate triples inserted via Add are deduplicated by Build
/// (RDF graphs are sets of triples).
class TripleStore {
 public:
  /// Appends a triple. Only valid before Build().
  void Add(const Triple& t);

  /// Sorts and deduplicates the data and constructs the three indexes.
  void Build();

  /// Builds this (empty, un-built) store as `base` minus `removed` plus
  /// `added` — the copy-on-write compaction step of a versioned commit
  /// (src/store/versioned_store.h). Bit-identical to Add()ing the net
  /// triple set and calling Build(): each permutation is produced by a
  /// linear merge of the base's sorted index with the sorted delta, so the
  /// cost is O(|base| + |delta| log |delta|) instead of a full re-sort.
  ///
  /// Preconditions: `base.built()`, and `added` is disjoint from `removed`
  /// (StoreDelta maintains this by replay). `added` may contain triples
  /// already in base (deduplicated during the merge); `removed` triples
  /// absent from base are ignored.
  void BuildDelta(const TripleStore& base, std::vector<Triple> added,
                  const TripleSet& removed);

  bool built() const { return built_; }
  size_t size() const { return spo_.size(); }

  /// The sorted index span covering a pattern, plus the residual object
  /// filter used for fully-bound patterns (whose (s, p) prefix scan must
  /// still check o). Public so morsel-driven evaluation can split one
  /// matched range into independently scannable sub-ranges; `range` points
  /// into the store's permutation arrays and stays valid as long as the
  /// store does.
  struct MatchedRange {
    std::span<const Triple> range;
    bool filter_o = false;
    TermId o = kInvalidTermId;

    size_t size() const { return range.size(); }

    /// The [begin, end) slice of this range (for one morsel).
    MatchedRange Slice(size_t begin, size_t end) const {
      return {range.subspan(begin, end - begin), filter_o, o};
    }
  };

  /// Resolves `pattern` to the index range holding its matches. Covers every
  /// bound/unbound combination; see the header comment for the index choice.
  MatchedRange Match(const TriplePatternIds& pattern) const;

  /// Invokes `fn` for every triple matching `pattern`. `fn` may return false
  /// to stop the scan early.
  ///
  /// Templated so the callback inlines into the scan loop: every index probe
  /// used to pay a std::function indirect call per triple, which dominated
  /// tight adjacency scans. Index selection stays out-of-line in Match.
  template <typename Fn>
  void Scan(const TriplePatternIds& pattern, Fn&& fn) const {
    ScanMatched(Match(pattern), std::forward<Fn>(fn));
  }

  /// Scan over an already-resolved (possibly sliced) range; yields triples
  /// in the same order Scan does for the covering pattern.
  template <typename Fn>
  static void ScanMatched(const MatchedRange& r, Fn&& fn) {
    for (const Triple& t : r.range) {
      if (r.filter_o && t.o != r.o) continue;
      if (!fn(t)) return;
    }
  }

  /// Exact number of triples matching `pattern` (uses index ranges; O(log n)
  /// for prefix-shaped patterns, O(n) only for s+o bound without p).
  size_t Count(const TriplePatternIds& pattern) const;

  /// True if the fully-bound triple is present.
  bool Contains(const Triple& t) const;

  /// All triples in SPO order (for iteration and testing).
  std::span<const Triple> triples() const { return spo_; }

 private:
  std::span<const Triple> EqualRangeSPO(TermId s) const;
  std::span<const Triple> EqualRangeSPO(TermId s, TermId p) const;
  std::span<const Triple> EqualRangePOS(TermId p) const;
  std::span<const Triple> EqualRangePOS(TermId p, TermId o) const;
  std::span<const Triple> EqualRangeOSP(TermId o) const;
  std::span<const Triple> EqualRangeOSP(TermId o, TermId s) const;

  std::vector<Triple> spo_;
  std::vector<Triple> pos_;
  std::vector<Triple> osp_;
  bool built_ = false;
};

}  // namespace sparqluo
