// In-memory dictionary-encoded triple store with two-level CSR
// permutation indexes.
//
// The store keeps the triple set under three permutation orders — SPO, POS
// and OSP — which together answer every bound/unbound combination of a
// triple pattern:
//
//   bound (s) / (s,p) / (s,p,o)  -> SPO
//   bound (p) / (p,o)            -> POS
//   bound (o) / (o,s)            -> OSP
//   nothing bound                -> SPO full scan
//
// Each permutation is a compressed two-level adjacency layout (CsrIndex)
// rather than a flat sorted array of 12-byte triples: a level-1 directory
// of the distinct leading components with [begin, end) offsets into a
// level-2 array of 8-byte (second, third) pairs. A probe is a level-1
// directory lookup (binary search, or a galloping search from a ProbeHint
// for sorted probe sequences) followed by at most one narrow level-2
// lower_bound — there are no residual filters: every pattern shape,
// including fully-bound and (s, o)-bound, resolves to an exact index
// range. See docs/index_layout.md for the layout, the probe algorithms
// and the memory math (~36 -> ~26 bytes/triple on LUBM).
//
// This is the "single table exhaustive indexing" organization of
// RDF-3x-style stores, reduced to the three orders that suffice for
// prefix lookups and compressed by factoring the leading component out.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_set>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/term.h"
#include "util/array_ref.h"

namespace sparqluo {

class ExecutorPool;

/// Hash over the three ids of a triple (for delta/delete sets).
struct TripleHash {
  size_t operator()(const Triple& t) const {
    uint64_t h = t.s;
    h = h * 0x9E3779B97F4A7C15ull + t.p;
    h = h * 0x9E3779B97F4A7C15ull + t.o;
    h ^= h >> 32;
    h *= 0xD6E8FEB86659FD93ull;
    h ^= h >> 32;
    return static_cast<size_t>(h);
  }
};

/// A set of fully-bound triples (update deltas, delete filters).
using TripleSet = std::unordered_set<Triple, TripleHash>;

/// A triple pattern over ids; kInvalidTermId marks an unbound position.
struct TriplePatternIds {
  TermId s = kInvalidTermId;
  TermId p = kInvalidTermId;
  TermId o = kInvalidTermId;

  bool s_bound() const { return s != kInvalidTermId; }
  bool p_bound() const { return p != kInvalidTermId; }
  bool o_bound() const { return o != kInvalidTermId; }
};

/// The three permutation orders. The enumerator value doubles as the index
/// into per-permutation state (ProbeHint::bucket).
enum class Perm : uint8_t { kSpo = 0, kPos = 1, kOsp = 2 };

/// A level-2 entry: the two trailing components of one triple under a
/// permutation order (p,o for SPO; o,s for POS; s,p for OSP).
struct IdPair {
  TermId second = 0;
  TermId third = 0;

  friend bool operator==(const IdPair& a, const IdPair& b) {
    return a.second == b.second && a.third == b.third;
  }
  friend bool operator<(const IdPair& a, const IdPair& b) {
    return a.second != b.second ? a.second < b.second : a.third < b.third;
  }
};

/// Level-2 offsets are 32-bit: the directory is sized by *distinct* leading
/// components, so halving the offset width is what keeps the whole layout
/// under the flat-array footprint (see docs/index_layout.md). Caps the
/// store at 2^32 - 1 triples, far beyond its in-memory reach.
using CsrOffset = uint32_t;

/// One two-level CSR permutation index. `firsts` holds the distinct
/// leading components ascending; bucket i covers pairs
/// [offsets[i], offsets[i+1]), each bucket sorted by (second, third).
/// `offsets` always has firsts.size() + 1 entries with offsets[0] == 0.
///
/// The three arrays are ArrayRefs so an index can either own its data
/// (built by TripleStore::Build / BuildDelta) or borrow it from an mmap'd
/// snapshot section (installed by TripleStore::AdoptCsr, which pins the
/// backing buffer). Readers are oblivious to the mode.
struct CsrIndex {
  ArrayRef<TermId> firsts;
  ArrayRef<CsrOffset> offsets;
  ArrayRef<IdPair> pairs;

  size_t size() const { return pairs.size(); }
};

/// Reassembles the (s, p, o) triple from a permutation's decomposition.
inline Triple TripleFrom(Perm perm, TermId first, IdPair pr) {
  switch (perm) {
    case Perm::kSpo:
      return Triple(first, pr.second, pr.third);
    case Perm::kPos:
      return Triple(pr.third, first, pr.second);
    default:  // Perm::kOsp
      return Triple(pr.second, pr.third, first);
  }
}

/// Append-then-freeze triple store. Add() all triples, call Build(), then
/// query. Duplicate triples inserted via Add are deduplicated by Build
/// (RDF graphs are sets of triples).
class TripleStore {
 public:
  /// Caller-owned adaptive probe state: the level-1 directory position of
  /// the previous probe, per permutation. Threading one hint through a
  /// sequence of probes replaces the level-1 binary search with a
  /// galloping search from the previous position — O(log d) in the probe
  /// distance d, which approaches O(1) for the sorted probe sequences WCO
  /// extension and verification produce. One hint per thread; the store
  /// itself stays immutable and freely shared.
  struct ProbeHint {
    size_t bucket[3] = {0, 0, 0};

    size_t* slot(Perm perm) { return &bucket[static_cast<size_t>(perm)]; }
  };

  /// Appends a triple. Only valid before Build().
  void Add(const Triple& t);

  /// Sorts and deduplicates the data and constructs the three CSR indexes.
  /// With a pool, the three permutations build in parallel (the caller
  /// participates, so a saturated pool degrades to sequential).
  void Build(ExecutorPool* pool = nullptr);

  /// Builds this (empty, un-built) store as `base` minus `removed` plus
  /// `added` — the copy-on-write compaction step of a versioned commit
  /// (src/store/versioned_store.h). Bit-identical to Add()ing the net
  /// triple set and calling Build(): each permutation is produced by a
  /// CSR-aware linear merge of the base's index with the sorted delta, so
  /// the cost is O(|base| + |delta| log |delta|) instead of a full
  /// re-sort. With a pool the three merges run in parallel.
  ///
  /// Preconditions: `base.built()`, and `added` is disjoint from `removed`
  /// (StoreDelta maintains this by replay). `added` may contain triples
  /// already in base (deduplicated during the merge); `removed` triples
  /// absent from base are ignored.
  void BuildDelta(const TripleStore& base, std::vector<Triple> added,
                  const TripleSet& removed, ExecutorPool* pool = nullptr);

  /// Installs pre-built CSR indexes on an empty, un-built store — the
  /// zero-per-triple load path of v2 snapshots (docs/snapshot_format.md).
  /// The indexes may borrow their arrays from `backing`, which the store
  /// keeps alive for its own lifetime; the caller is responsible for the
  /// CSR invariants (the snapshot loader validates them before adopting).
  /// Later commits on top copy-on-write as usual: BuildDelta reads the
  /// borrowed arrays and writes fully owned ones.
  void AdoptCsr(CsrIndex spo, CsrIndex pos, CsrIndex osp,
                std::shared_ptr<const void> backing);

  bool built() const { return built_; }

  /// Triples in the store: level-2 entries of any one permutation after
  /// Build, staged rows before.
  size_t size() const { return built_ ? spo_.pairs.size() : staging_.size(); }

  /// The exact index range covering a pattern. `index` points into the
  /// store's CSR indexes and stays valid as long as the store does;
  /// [begin, end) are global level-2 positions and `bucket` is the level-1
  /// bucket containing `begin`. Public so morsel-driven evaluation can
  /// split one matched range into independently scannable sub-ranges.
  struct MatchedRange {
    const CsrIndex* index = nullptr;
    Perm perm = Perm::kSpo;
    size_t begin = 0;
    size_t end = 0;
    size_t bucket = 0;

    size_t size() const { return end - begin; }

    /// The [from, to) slice of this range (for one morsel), positions
    /// relative to this range's begin.
    MatchedRange Slice(size_t from, size_t to) const {
      MatchedRange out = *this;
      out.begin = begin + from;
      out.end = begin + to;
      if (index != nullptr && out.begin < out.end) {
        const auto& off = index->offsets;
        out.bucket = static_cast<size_t>(
            std::upper_bound(off.begin(), off.end(),
                             static_cast<CsrOffset>(out.begin)) -
            off.begin() - 1);
      }
      return out;
    }
  };

  /// Resolves `pattern` to the exact index range holding its matches.
  /// Covers every bound/unbound combination; see the header comment for
  /// the index choice. `hint`, when given, makes the level-1 lookup
  /// adaptive (galloping from the previous probe's position).
  MatchedRange Match(const TriplePatternIds& pattern,
                     ProbeHint* hint = nullptr) const;

  /// Invokes `fn` for every triple matching `pattern`. `fn` may return
  /// false to stop the scan early.
  ///
  /// Templated so the callback inlines into the scan loop: every index
  /// probe used to pay a std::function indirect call per triple, which
  /// dominated tight adjacency scans. Index selection stays out-of-line
  /// in Match.
  template <typename Fn>
  void Scan(const TriplePatternIds& pattern, Fn&& fn) const {
    ScanMatched(Match(pattern), std::forward<Fn>(fn));
  }

  /// Scan with an adaptive probe hint (see ProbeHint).
  template <typename Fn>
  void Scan(const TriplePatternIds& pattern, ProbeHint* hint, Fn&& fn) const {
    ScanMatched(Match(pattern, hint), std::forward<Fn>(fn));
  }

  /// Scan over an already-resolved (possibly sliced) range; yields triples
  /// in the same order Scan does for the covering pattern (the range's
  /// permutation order).
  template <typename Fn>
  static void ScanMatched(const MatchedRange& r, Fn&& fn) {
    if (r.index == nullptr || r.begin >= r.end) return;
    switch (r.perm) {
      case Perm::kSpo:
        WalkRange<Perm::kSpo>(r, fn);
        break;
      case Perm::kPos:
        WalkRange<Perm::kPos>(r, fn);
        break;
      default:
        WalkRange<Perm::kOsp>(r, fn);
        break;
    }
  }

  /// Exact number of triples matching `pattern`. O(log n) for every
  /// pattern shape: all eight bound/unbound combinations resolve to exact
  /// ranges (the flat layout needed an O(range) residual scan for
  /// (s, o)-bound patterns).
  size_t Count(const TriplePatternIds& pattern, ProbeHint* hint = nullptr) const {
    return Match(pattern, hint).size();
  }

  /// True if the fully-bound triple is present (level-1 lookup on s plus
  /// one level-2 binary search for the (p, o) pair).
  bool Contains(const Triple& t, ProbeHint* hint = nullptr) const;

  /// Random-access view of the triple set in SPO order (iteration and
  /// testing). Elements materialize on access — there is no flat triple
  /// array anymore — so operator[] returns by value; sequential iteration
  /// walks the CSR with an O(1) amortized bucket cursor.
  class TripleView {
   public:
    class iterator {
     public:
      using iterator_category = std::forward_iterator_tag;
      using value_type = Triple;
      using difference_type = std::ptrdiff_t;
      using pointer = const Triple*;
      using reference = Triple;

      iterator() = default;

      Triple operator*() const {
        return Triple(ix_->firsts[bucket_], ix_->pairs[pos_].second,
                      ix_->pairs[pos_].third);
      }
      iterator& operator++() {
        ++pos_;
        if (pos_ < ix_->pairs.size() && ix_->offsets[bucket_ + 1] <= pos_)
          ++bucket_;
        return *this;
      }
      iterator operator++(int) {
        iterator copy = *this;
        ++*this;
        return copy;
      }
      friend bool operator==(const iterator& a, const iterator& b) {
        return a.pos_ == b.pos_;
      }
      friend bool operator!=(const iterator& a, const iterator& b) {
        return a.pos_ != b.pos_;
      }

     private:
      friend class TripleView;
      iterator(const CsrIndex* ix, size_t pos, size_t bucket)
          : ix_(ix), pos_(pos), bucket_(bucket) {}

      const CsrIndex* ix_ = nullptr;
      size_t pos_ = 0;
      size_t bucket_ = 0;
    };

    size_t size() const { return ix_->pairs.size(); }
    bool empty() const { return ix_->pairs.empty(); }

    /// The i-th triple in SPO order (O(log |subjects|) bucket lookup).
    Triple operator[](size_t i) const {
      const auto& off = ix_->offsets;
      size_t b = static_cast<size_t>(
          std::upper_bound(off.begin(), off.end(), static_cast<CsrOffset>(i)) -
          off.begin() - 1);
      return Triple(ix_->firsts[b], ix_->pairs[i].second, ix_->pairs[i].third);
    }

    iterator begin() const { return iterator(ix_, 0, 0); }
    iterator end() const { return iterator(ix_, ix_->pairs.size(), 0); }

   private:
    friend class TripleStore;
    explicit TripleView(const CsrIndex* ix) : ix_(ix) {}

    const CsrIndex* ix_;
  };

  /// All triples in SPO order. Only valid after Build().
  TripleView triples() const {
    assert(built_ && "triples() before Build");
    return TripleView(&spo_);
  }

  /// The level-1 directory of a permutation: its distinct leading
  /// components, ascending (distinct subjects for SPO, predicates for
  /// POS, objects for OSP). The single accessor statistics and
  /// cardinality estimation read the layout through.
  std::span<const TermId> DistinctFirsts(Perm perm) const {
    const CsrIndex& ix = IndexOf(perm);
    return {ix.firsts.data(), ix.firsts.size()};
  }

  /// Read-only access to a permutation's whole CSR index — the snapshot
  /// writer serializes the three arrays through this. Only valid after
  /// Build()/BuildDelta()/AdoptCsr().
  const CsrIndex& Csr(Perm perm) const {
    assert(built_ && "Csr before Build");
    return IndexOf(perm);
  }

  /// Invokes `fn(first, pairs)` per level-1 bucket of `perm`, ascending by
  /// first; `pairs` is the bucket's level-2 span sorted by (second,
  /// third). Grouped iteration for statistics and compaction consumers.
  template <typename Fn>
  void ForEachGroup(Perm perm, Fn&& fn) const {
    const CsrIndex& ix = IndexOf(perm);
    for (size_t b = 0; b < ix.firsts.size(); ++b) {
      fn(ix.firsts[b],
         std::span<const IdPair>(ix.pairs.data() + ix.offsets[b],
                                 ix.offsets[b + 1] - ix.offsets[b]));
    }
  }

  /// Resident bytes of the three CSR indexes (level-1 directories plus
  /// level-2 pair arrays). The flat-array layout this replaced held
  /// 3 * sizeof(Triple) = 36 bytes per triple.
  size_t IndexBytes() const;

 private:
  template <Perm P, typename Fn>
  static void WalkRange(const MatchedRange& r, Fn&& fn) {
    const CsrIndex& ix = *r.index;
    const IdPair* pairs = ix.pairs.data();
    size_t b = r.bucket;
    size_t pos = r.begin;
    while (pos < r.end) {
      // Buckets are non-empty, so after the first (possibly partial)
      // bucket each outer iteration advances exactly one bucket.
      const size_t bucket_end = ix.offsets[b + 1];
      const size_t stop = bucket_end < r.end ? bucket_end : r.end;
      const TermId first = ix.firsts[b];
      for (; pos < stop; ++pos) {
        if (!fn(TripleFrom(P, first, pairs[pos]))) return;
      }
      ++b;
    }
  }

  const CsrIndex& IndexOf(Perm perm) const {
    switch (perm) {
      case Perm::kSpo:
        return spo_;
      case Perm::kPos:
        return pos_;
      default:
        return osp_;
    }
  }

  void BuildIndexes(ExecutorPool* pool);

  std::vector<Triple> staging_;  ///< Add() target; cleared by Build().
  CsrIndex spo_;
  CsrIndex pos_;
  CsrIndex osp_;
  /// Keeps the memory behind borrowed CSR arrays alive (the mmap'd
  /// snapshot image); null when all three indexes own their data.
  std::shared_ptr<const void> csr_backing_;
  bool built_ = false;
};

}  // namespace sparqluo
