#include "rdf/turtle.h"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "sparql/lexer.h"
#include "util/string_util.h"

namespace sparqluo {

namespace {

constexpr const char* kRdfTypeIri =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
constexpr const char* kXsdIntegerIri =
    "http://www.w3.org/2001/XMLSchema#integer";
constexpr const char* kXsdDecimalIri =
    "http://www.w3.org/2001/XMLSchema#decimal";

class TurtleParser {
 public:
  TurtleParser(std::vector<Token> tokens, Dictionary* dict, TripleStore* store)
      : tokens_(std::move(tokens)), dict_(dict), store_(store) {}

  Status Parse() {
    while (!CurIs(TokenType::kEof)) {
      // Directives.
      if (Cur().type == TokenType::kLangTag && Cur().text == "prefix") {
        Advance();
        SPARQLUO_RETURN_NOT_OK(ParsePrefixDecl(/*sparql_style=*/false));
        continue;
      }
      if (Cur().type == TokenType::kLangTag && Cur().text == "base") {
        Advance();
        SPARQLUO_RETURN_NOT_OK(ParseBaseDecl(/*sparql_style=*/false));
        continue;
      }
      if (CurIs(TokenType::kKeyword, "PREFIX")) {
        Advance();
        SPARQLUO_RETURN_NOT_OK(ParsePrefixDecl(/*sparql_style=*/true));
        continue;
      }
      if (CurIs(TokenType::kKeyword, "BASE")) {
        Advance();
        SPARQLUO_RETURN_NOT_OK(ParseBaseDecl(/*sparql_style=*/true));
        continue;
      }
      SPARQLUO_RETURN_NOT_OK(ParseTriples());
    }
    return Status::OK();
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool CurIs(TokenType t) const { return Cur().type == t; }
  bool CurIs(TokenType t, std::string_view text) const {
    return Cur().type == t && Cur().text == text;
  }
  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " (line " + std::to_string(Cur().line) +
                              ")");
  }

  Status ParsePrefixDecl(bool sparql_style) {
    if (Cur().type != TokenType::kPrefixedName || Cur().text.empty() ||
        Cur().text.back() != ':')
      return Err("expected 'ns:' after @prefix");
    std::string ns = Cur().text.substr(0, Cur().text.size() - 1);
    Advance();
    if (Cur().type != TokenType::kIriRef)
      return Err("expected IRI in prefix declaration");
    prefixes_[ns] = ResolveIri(Cur().text);
    Advance();
    if (!sparql_style) {
      if (!CurIs(TokenType::kDot)) return Err("expected '.' after @prefix");
      Advance();
    }
    return Status::OK();
  }

  Status ParseBaseDecl(bool sparql_style) {
    if (Cur().type != TokenType::kIriRef)
      return Err("expected IRI in base declaration");
    base_ = Cur().text;
    Advance();
    if (!sparql_style) {
      if (!CurIs(TokenType::kDot)) return Err("expected '.' after @base");
      Advance();
    }
    return Status::OK();
  }

  /// Relative IRIs are resolved by simple concatenation with the base.
  std::string ResolveIri(const std::string& iri) const {
    if (iri.find("://") != std::string::npos || base_.empty()) return iri;
    return base_ + iri;
  }

  Result<Term> ParseTerm(bool predicate_position) {
    switch (Cur().type) {
      case TokenType::kIriRef: {
        Term t = Term::Iri(ResolveIri(Cur().text));
        Advance();
        return t;
      }
      case TokenType::kPrefixedName: {
        const std::string& qname = Cur().text;
        size_t colon = qname.find(':');
        std::string prefix = qname.substr(0, colon);
        // _:label blank nodes lex as prefixed names with prefix "_".
        if (qname.rfind("_:", 0) == 0) {
          Term t = Term::Blank(qname.substr(2));
          Advance();
          return t;
        }
        auto it = prefixes_.find(prefix);
        if (it == prefixes_.end())
          return Err("undeclared prefix '" + prefix + ":'");
        Term t = Term::Iri(it->second + qname.substr(colon + 1));
        Advance();
        return t;
      }
      case TokenType::kA:
        if (!predicate_position) return Err("'a' only allowed as predicate");
        Advance();
        return Term::Iri(kRdfTypeIri);
      case TokenType::kString: {
        std::string value = Cur().text;
        Advance();
        if (Cur().type == TokenType::kLangTag) {
          std::string lang = Cur().text;
          Advance();
          return Term::LangLiteral(value, lang);
        }
        if (Cur().type == TokenType::kDoubleCaret) {
          Advance();
          auto dt = ParseTerm(false);
          if (!dt.ok()) return dt;
          if (!dt->is_iri()) return Err("datatype must be an IRI");
          return Term::TypedLiteral(value, dt->lexical);
        }
        return Term::Literal(value);
      }
      case TokenType::kNumber: {
        std::string text = Cur().text;
        Advance();
        return Term::TypedLiteral(
            text, text.find('.') == std::string::npos ? kXsdIntegerIri
                                                      : kXsdDecimalIri);
      }
      default:
        return Err(std::string("unexpected token '") + Cur().text +
                   "' in triple term");
    }
  }

  Status ParseTriples() {
    auto subject = ParseTerm(false);
    if (!subject.ok()) return subject.status();
    if (subject->is_literal()) return Err("literal subject not allowed");
    while (true) {
      auto predicate = ParseTerm(true);
      if (!predicate.ok()) return predicate.status();
      if (!predicate->is_iri()) return Err("predicate must be an IRI");
      while (true) {
        auto object = ParseTerm(false);
        if (!object.ok()) return object.status();
        store_->Add(Triple(dict_->Encode(*subject), dict_->Encode(*predicate),
                           dict_->Encode(*object)));
        if (CurIs(TokenType::kComma)) {
          Advance();
          continue;
        }
        break;
      }
      if (CurIs(TokenType::kSemicolon)) {
        Advance();
        // A trailing ';' before '.' is legal Turtle.
        if (CurIs(TokenType::kDot)) break;
        continue;
      }
      break;
    }
    if (!CurIs(TokenType::kDot)) return Err("expected '.' after triples");
    Advance();
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Dictionary* dict_;
  TripleStore* store_;
  std::unordered_map<std::string, std::string> prefixes_;
  std::string base_;
};

}  // namespace

Status ParseTurtleString(const std::string& text, Dictionary* dict,
                         TripleStore* store) {
  auto tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  TurtleParser parser(std::move(*tokens), dict, store);
  return parser.Parse();
}

Status LoadTurtleFile(const std::string& path, Dictionary* dict,
                      TripleStore* store) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseTurtleString(buf.str(), dict, store);
}

}  // namespace sparqluo
