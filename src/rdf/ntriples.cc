#include "rdf/ntriples.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/string_util.h"

namespace sparqluo {

namespace {

// Splits one N-Triples statement into its three term texts. Returns false on
// malformed input. Handles quotes/escapes inside literals.
bool SplitStatement(std::string_view line, std::string_view* s,
                    std::string_view* p, std::string_view* o) {
  auto skip_ws = [&](size_t i) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    return i;
  };
  auto read_term = [&](size_t i, std::string_view* out) -> size_t {
    if (i >= line.size()) return std::string_view::npos;
    size_t start = i;
    if (line[i] == '<') {
      size_t end = line.find('>', i);
      if (end == std::string_view::npos) return std::string_view::npos;
      *out = line.substr(start, end - start + 1);
      return end + 1;
    }
    if (line[i] == '"') {
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\') {
          i += 2;
          continue;
        }
        if (line[i] == '"') break;
        ++i;
      }
      if (i >= line.size()) return std::string_view::npos;
      ++i;  // past closing quote
      if (i < line.size() && line[i] == '@') {
        while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
               line[i] != '.')
          ++i;
      } else if (i + 1 < line.size() && line[i] == '^' && line[i + 1] == '^') {
        i += 2;
        if (i < line.size() && line[i] == '<') {
          size_t end = line.find('>', i);
          if (end == std::string_view::npos) return std::string_view::npos;
          i = end + 1;
        }
      }
      *out = line.substr(start, i - start);
      return i;
    }
    // Blank node or other token: read until whitespace.
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    *out = line.substr(start, i - start);
    return i;
  };

  size_t i = skip_ws(0);
  i = read_term(i, s);
  if (i == std::string_view::npos) return false;
  i = skip_ws(i);
  i = read_term(i, p);
  if (i == std::string_view::npos) return false;
  i = skip_ws(i);
  i = read_term(i, o);
  if (i == std::string_view::npos) return false;
  i = skip_ws(i);
  return i < line.size() && line[i] == '.';
}

}  // namespace

Status ParseNTriples(std::istream& in, Dictionary* dict, TripleStore* store) {
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view v = TrimString(line);
    if (v.empty() || v.front() == '#') continue;
    std::string_view st, pt, ot;
    if (!SplitStatement(v, &st, &pt, &ot)) {
      return Status::ParseError("malformed N-Triples statement at line " +
                                std::to_string(line_no) + ": " + line);
    }
    auto s = Term::Parse(st);
    auto p = Term::Parse(pt);
    auto o = Term::Parse(ot);
    if (!s.ok()) return s.status();
    if (!p.ok()) return p.status();
    if (!o.ok()) return o.status();
    store->Add(Triple(dict->Encode(*s), dict->Encode(*p), dict->Encode(*o)));
  }
  return Status::OK();
}

Status ParseNTriplesString(const std::string& text, Dictionary* dict,
                           TripleStore* store) {
  std::istringstream in(text);
  return ParseNTriples(in, dict, store);
}

Status LoadNTriplesFile(const std::string& path, Dictionary* dict,
                        TripleStore* store) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open file: " + path);
  return ParseNTriples(in, dict, store);
}

void WriteNTriples(const TripleStore& store, const Dictionary& dict,
                   std::ostream& out) {
  for (const Triple& t : store.triples()) {
    out << dict.ToString(t.s) << " " << dict.ToString(t.p) << " "
        << dict.ToString(t.o) << " .\n";
  }
}

}  // namespace sparqluo
