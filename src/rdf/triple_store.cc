#include "rdf/triple_store.h"

#include <algorithm>
#include <cassert>

namespace sparqluo {

namespace {

struct OrderSPO {
  bool operator()(const Triple& a, const Triple& b) const {
    if (a.s != b.s) return a.s < b.s;
    if (a.p != b.p) return a.p < b.p;
    return a.o < b.o;
  }
};
struct OrderPOS {
  bool operator()(const Triple& a, const Triple& b) const {
    if (a.p != b.p) return a.p < b.p;
    if (a.o != b.o) return a.o < b.o;
    return a.s < b.s;
  }
};
struct OrderOSP {
  bool operator()(const Triple& a, const Triple& b) const {
    if (a.o != b.o) return a.o < b.o;
    if (a.s != b.s) return a.s < b.s;
    return a.p < b.p;
  }
};

template <typename Cmp>
std::span<const Triple> RangeOf(const std::vector<Triple>& v, const Triple& lo,
                                const Triple& hi, Cmp cmp) {
  auto first = std::lower_bound(v.begin(), v.end(), lo, cmp);
  auto last = std::upper_bound(first, v.end(), hi, cmp);
  return {&*first, static_cast<size_t>(last - first)};
}

}  // namespace

void TripleStore::Add(const Triple& t) {
  assert(!built_ && "Add after Build");
  spo_.push_back(t);
}

void TripleStore::Build() {
  std::sort(spo_.begin(), spo_.end(), OrderSPO{});
  spo_.erase(std::unique(spo_.begin(), spo_.end()), spo_.end());
  pos_ = spo_;
  std::sort(pos_.begin(), pos_.end(), OrderPOS{});
  osp_ = spo_;
  std::sort(osp_.begin(), osp_.end(), OrderOSP{});
  built_ = true;
}

namespace {

/// Merges one sorted base permutation with the (sorted, deduplicated)
/// delta additions, dropping base triples present in `removed`. Equal
/// elements (an addition already in base) are emitted once. Because both
/// inputs are sorted under `cmp` and the output preserves that order, the
/// result is exactly what sort+unique over the net triple set produces.
template <typename Cmp>
std::vector<Triple> MergeDelta(std::span<const Triple> base,
                               std::vector<Triple> added,
                               const TripleSet& removed, Cmp cmp) {
  std::sort(added.begin(), added.end(), cmp);
  added.erase(std::unique(added.begin(), added.end()), added.end());
  std::vector<Triple> out;
  out.reserve(base.size() + added.size());
  size_t i = 0, j = 0;
  while (i < base.size() || j < added.size()) {
    bool take_base;
    if (i >= base.size()) {
      take_base = false;
    } else if (j >= added.size()) {
      take_base = true;
    } else if (base[i] == added[j]) {
      ++j;  // duplicate insert of an existing triple: keep the base copy
      take_base = true;
    } else {
      take_base = cmp(base[i], added[j]);
    }
    if (take_base) {
      if (removed.find(base[i]) == removed.end()) out.push_back(base[i]);
      ++i;
    } else {
      out.push_back(added[j]);
      ++j;
    }
  }
  return out;
}

}  // namespace

void TripleStore::BuildDelta(const TripleStore& base,
                             std::vector<Triple> added,
                             const TripleSet& removed) {
  assert(base.built_ && "BuildDelta requires a built base");
  assert(!built_ && spo_.empty() && "BuildDelta requires an empty store");
  spo_ = MergeDelta(std::span<const Triple>(base.spo_), added, removed,
                    OrderSPO{});
  pos_ = MergeDelta(std::span<const Triple>(base.pos_), added, removed,
                    OrderPOS{});
  osp_ = MergeDelta(std::span<const Triple>(base.osp_), std::move(added),
                    removed, OrderOSP{});
  built_ = true;
}

std::span<const Triple> TripleStore::EqualRangeSPO(TermId s) const {
  return RangeOf(spo_, Triple(s, 0, 0), Triple(s, kInvalidTermId, kInvalidTermId),
                 OrderSPO{});
}
std::span<const Triple> TripleStore::EqualRangeSPO(TermId s, TermId p) const {
  return RangeOf(spo_, Triple(s, p, 0), Triple(s, p, kInvalidTermId),
                 OrderSPO{});
}
std::span<const Triple> TripleStore::EqualRangePOS(TermId p) const {
  return RangeOf(pos_, Triple(0, p, 0), Triple(kInvalidTermId, p, kInvalidTermId),
                 OrderPOS{});
}
std::span<const Triple> TripleStore::EqualRangePOS(TermId p, TermId o) const {
  return RangeOf(pos_, Triple(0, p, o), Triple(kInvalidTermId, p, o),
                 OrderPOS{});
}
std::span<const Triple> TripleStore::EqualRangeOSP(TermId o) const {
  return RangeOf(osp_, Triple(0, 0, o), Triple(kInvalidTermId, kInvalidTermId, o),
                 OrderOSP{});
}
std::span<const Triple> TripleStore::EqualRangeOSP(TermId o, TermId s) const {
  return RangeOf(osp_, Triple(s, 0, o), Triple(s, kInvalidTermId, o),
                 OrderOSP{});
}

TripleStore::MatchedRange TripleStore::Match(const TriplePatternIds& q) const {
  assert(built_ && "Scan before Build");
  // Each bound-position combination maps to an index whose prefix covers all
  // bound positions, except the fully-bound case where o is filtered on top
  // of the (s, p) prefix.
  MatchedRange out;
  if (q.s_bound() && q.p_bound()) {
    out.range = EqualRangeSPO(q.s, q.p);
    out.filter_o = q.o_bound();
    out.o = q.o;
  } else if (q.s_bound() && q.o_bound()) {
    out.range = EqualRangeOSP(q.o, q.s);
  } else if (q.s_bound()) {
    out.range = EqualRangeSPO(q.s);
  } else if (q.p_bound()) {
    out.range = q.o_bound() ? EqualRangePOS(q.p, q.o) : EqualRangePOS(q.p);
  } else if (q.o_bound()) {
    out.range = EqualRangeOSP(q.o);
  } else {
    out.range = {spo_.data(), spo_.size()};
  }
  return out;
}

size_t TripleStore::Count(const TriplePatternIds& q) const {
  assert(built_);
  if (q.s_bound() && q.p_bound() && q.o_bound())
    return Contains(Triple(q.s, q.p, q.o)) ? 1 : 0;
  if (q.s_bound() && q.o_bound()) {
    // OSP range on (o, s), residual filter on p.
    size_t n = 0;
    for (const Triple& t : EqualRangeOSP(q.o, q.s)) {
      if (!q.p_bound() || t.p == q.p) ++n;
    }
    return n;
  }
  if (q.s_bound() && q.p_bound()) return EqualRangeSPO(q.s, q.p).size();
  if (q.s_bound()) return EqualRangeSPO(q.s).size();
  if (q.p_bound() && q.o_bound()) return EqualRangePOS(q.p, q.o).size();
  if (q.p_bound()) return EqualRangePOS(q.p).size();
  if (q.o_bound()) return EqualRangeOSP(q.o).size();
  return spo_.size();
}

bool TripleStore::Contains(const Triple& t) const {
  auto range = EqualRangeSPO(t.s, t.p);
  return std::binary_search(range.begin(), range.end(), t, OrderSPO{});
}

}  // namespace sparqluo
