#include "rdf/triple_store.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "util/executor_pool.h"

namespace sparqluo {

namespace {

constexpr size_t kNoBucket = SIZE_MAX;

struct OrderSPO {
  bool operator()(const Triple& a, const Triple& b) const {
    if (a.s != b.s) return a.s < b.s;
    if (a.p != b.p) return a.p < b.p;
    return a.o < b.o;
  }
};
struct OrderPOS {
  bool operator()(const Triple& a, const Triple& b) const {
    if (a.p != b.p) return a.p < b.p;
    if (a.o != b.o) return a.o < b.o;
    return a.s < b.s;
  }
};
struct OrderOSP {
  bool operator()(const Triple& a, const Triple& b) const {
    if (a.o != b.o) return a.o < b.o;
    if (a.s != b.s) return a.s < b.s;
    return a.p < b.p;
  }
};

/// The (first, second, third) decomposition of a triple under `perm` —
/// the inverse of TripleFrom.
struct Key3 {
  TermId first;
  TermId second;
  TermId third;

  friend bool operator==(const Key3& a, const Key3& b) {
    return a.first == b.first && a.second == b.second && a.third == b.third;
  }
  friend bool operator<(const Key3& a, const Key3& b) {
    if (a.first != b.first) return a.first < b.first;
    if (a.second != b.second) return a.second < b.second;
    return a.third < b.third;
  }
};

Key3 KeyOf(Perm perm, const Triple& t) {
  switch (perm) {
    case Perm::kSpo:
      return {t.s, t.p, t.o};
    case Perm::kPos:
      return {t.p, t.o, t.s};
    default:  // Perm::kOsp
      return {t.o, t.s, t.p};
  }
}

void SortByPerm(Perm perm, std::vector<Triple>* v) {
  switch (perm) {
    case Perm::kSpo:
      std::sort(v->begin(), v->end(), OrderSPO{});
      break;
    case Perm::kPos:
      std::sort(v->begin(), v->end(), OrderPOS{});
      break;
    default:
      std::sort(v->begin(), v->end(), OrderOSP{});
      break;
  }
}

/// Incremental CSR construction: Append keys in permutation order; a new
/// level-1 bucket opens whenever the leading component changes. `offsets`
/// holds bucket starts until Finish() appends the final end sentinel.
class CsrBuilder {
 public:
  void Reserve(size_t pairs, size_t firsts_estimate) {
    pairs_.reserve(pairs);
    firsts_.reserve(firsts_estimate);
    offsets_.reserve(firsts_estimate + 1);
  }

  void Append(const Key3& k) {
    if (firsts_.empty() || firsts_.back() != k.first) {
      firsts_.push_back(k.first);
      offsets_.push_back(static_cast<CsrOffset>(pairs_.size()));
    }
    pairs_.push_back(IdPair{k.second, k.third});
  }

  CsrIndex Finish() {
    // Always-on: past 2^32 - 1 pairs the 32-bit offsets would silently
    // truncate in exactly the (Release) builds that could reach that
    // scale, corrupting every subsequent probe. Fail loudly instead.
    if (pairs_.size() >= UINT32_MAX) {
      std::fprintf(stderr,
                   "TripleStore: %zu level-2 entries overflow the 32-bit "
                   "CSR offsets (see docs/index_layout.md)\n",
                   pairs_.size());
      std::abort();
    }
    offsets_.push_back(static_cast<CsrOffset>(pairs_.size()));
    // Reserve() estimates the directory at |triples|/4; small directories
    // (POS especially — a handful of predicates against megabytes of
    // reserved slots) would otherwise retain that capacity for the life
    // of the version, invisibly to IndexBytes(). Trim to fit so resident
    // memory matches the reported footprint.
    firsts_.shrink_to_fit();
    offsets_.shrink_to_fit();
    pairs_.shrink_to_fit();
    CsrIndex out;
    out.firsts = std::move(firsts_);
    out.offsets = std::move(offsets_);
    out.pairs = std::move(pairs_);
    return out;
  }

 private:
  std::vector<TermId> firsts_;
  std::vector<CsrOffset> offsets_;
  std::vector<IdPair> pairs_;
};

/// Compresses a `perm`-sorted, deduplicated triple array into a CSR index.
CsrIndex CompressSorted(Perm perm, const std::vector<Triple>& sorted) {
  CsrBuilder b;
  b.Reserve(sorted.size(), sorted.empty() ? 0 : sorted.size() / 4);
  for (const Triple& t : sorted) b.Append(KeyOf(perm, t));
  return b.Finish();
}

/// Galloping lower_bound over the sorted level-1 directory, starting near
/// `hint`. Cost is O(log d) in the distance d between the hint and the
/// result, so a sorted probe sequence threading its previous position
/// through pays amortized O(1) per probe; a cold probe (hint 0) on a
/// random key degrades to ordinary binary search cost.
size_t GallopLowerBound(const ArrayRef<TermId>& v, TermId key,
                        size_t hint) {
  const size_t n = v.size();
  if (n == 0) return 0;
  if (hint >= n) hint = n - 1;
  size_t lo, hi;
  if (v[hint] < key) {
    // Result is right of the hint: double the step until overshooting.
    size_t step = 1;
    lo = hint + 1;
    hi = hint + 1;
    while (hi < n && v[hi] < key) {
      lo = hi + 1;
      hi += step;
      step <<= 1;
    }
    if (hi > n) hi = n;
  } else {
    // Result is at or left of the hint: double the step leftwards.
    size_t step = 1;
    hi = hint;
    lo = hint;
    while (lo > 0 && v[lo - 1] >= key) {
      hi = lo - 1;
      lo = hi > step ? hi - step : 0;
      step <<= 1;
    }
  }
  return static_cast<size_t>(
      std::lower_bound(v.begin() + lo, v.begin() + hi, key) - v.begin());
}

/// Level-1 lookup: the bucket index of `key`, or kNoBucket. With a hint
/// slot the lookup gallops from (and updates) the previous position.
size_t FindBucket(const CsrIndex& ix, TermId key, size_t* hint_slot) {
  size_t i;
  if (hint_slot != nullptr) {
    i = GallopLowerBound(ix.firsts, key, *hint_slot);
    *hint_slot = i < ix.firsts.size() ? i : (ix.firsts.empty() ? 0 : ix.firsts.size() - 1);
  } else {
    i = static_cast<size_t>(
        std::lower_bound(ix.firsts.begin(), ix.firsts.end(), key) -
        ix.firsts.begin());
  }
  if (i >= ix.firsts.size() || ix.firsts[i] != key) return kNoBucket;
  return i;
}

}  // namespace

void TripleStore::Add(const Triple& t) {
  assert(!built_ && "Add after Build");
  staging_.push_back(t);
}

void TripleStore::AdoptCsr(CsrIndex spo, CsrIndex pos, CsrIndex osp,
                           std::shared_ptr<const void> backing) {
  assert(!built_ && staging_.empty() && "AdoptCsr requires an empty store");
  spo_ = std::move(spo);
  pos_ = std::move(pos);
  osp_ = std::move(osp);
  csr_backing_ = std::move(backing);
  built_ = true;
}

void TripleStore::Build(ExecutorPool* pool) {
  assert(!built_ && "Build called twice");
  std::sort(staging_.begin(), staging_.end(), OrderSPO{});
  staging_.erase(std::unique(staging_.begin(), staging_.end()),
                 staging_.end());
  BuildIndexes(pool);
  built_ = true;
}

void TripleStore::BuildIndexes(ExecutorPool* pool) {
  // staging_ is SPO-sorted and deduplicated; each permutation re-sorts a
  // private copy (SPO compresses in place) and compresses independently,
  // so the three builds are embarrassingly parallel.
  auto build_one = [this](size_t i) {
    switch (static_cast<Perm>(i)) {
      case Perm::kSpo:
        spo_ = CompressSorted(Perm::kSpo, staging_);
        break;
      case Perm::kPos: {
        std::vector<Triple> tmp = staging_;
        SortByPerm(Perm::kPos, &tmp);
        pos_ = CompressSorted(Perm::kPos, tmp);
        break;
      }
      default: {
        std::vector<Triple> tmp = staging_;
        SortByPerm(Perm::kOsp, &tmp);
        osp_ = CompressSorted(Perm::kOsp, tmp);
        break;
      }
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(3, 3, build_one);
  } else {
    for (size_t i = 0; i < 3; ++i) build_one(i);
  }
  staging_.clear();
  staging_.shrink_to_fit();
}

void TripleStore::BuildDelta(const TripleStore& base,
                             std::vector<Triple> added,
                             const TripleSet& removed, ExecutorPool* pool) {
  assert(base.built_ && "BuildDelta requires a built base");
  assert(!built_ && staging_.empty() && "BuildDelta requires an empty store");
  // Each permutation merges the base's CSR (already in order) with the
  // additions sorted its way, dropping removed base triples. Equal
  // elements (an addition already in base) are emitted once. The output
  // order equals sort+unique over the net triple set, so the result is
  // bit-identical to a from-scratch Build.
  //
  // The additions are sorted+deduplicated once, in SPO order, up front;
  // the SPO merge reads that buffer directly (concurrent reads are safe)
  // and only POS/OSP re-sort a private copy — one O(|delta|) copy fewer
  // per commit than copying per permutation.
  SortByPerm(Perm::kSpo, &added);
  added.erase(std::unique(added.begin(), added.end()), added.end());
  auto merge_one = [this, &base, &added, &removed](size_t i) {
    const Perm perm = static_cast<Perm>(i);
    const CsrIndex& bix = base.IndexOf(perm);
    std::vector<Triple> resorted;
    if (perm != Perm::kSpo) {
      resorted = added;
      SortByPerm(perm, &resorted);
    }
    const std::vector<Triple>& add =
        perm == Perm::kSpo ? added : resorted;

    CsrBuilder out;
    out.Reserve(bix.pairs.size() + add.size(), bix.firsts.size());
    size_t j = 0;
    for (size_t bk = 0; bk < bix.firsts.size(); ++bk) {
      const TermId first = bix.firsts[bk];
      for (size_t pos = bix.offsets[bk]; pos < bix.offsets[bk + 1]; ++pos) {
        const Key3 bkey{first, bix.pairs[pos].second, bix.pairs[pos].third};
        while (j < add.size() && KeyOf(perm, add[j]) < bkey) {
          out.Append(KeyOf(perm, add[j]));
          ++j;
        }
        if (j < add.size() && KeyOf(perm, add[j]) == bkey)
          ++j;  // duplicate insert of an existing triple: keep the base copy
        if (removed.find(TripleFrom(perm, bkey.first,
                                    IdPair{bkey.second, bkey.third})) ==
            removed.end()) {
          out.Append(bkey);
        }
      }
    }
    for (; j < add.size(); ++j) out.Append(KeyOf(perm, add[j]));

    CsrIndex merged = out.Finish();
    switch (perm) {
      case Perm::kSpo:
        spo_ = std::move(merged);
        break;
      case Perm::kPos:
        pos_ = std::move(merged);
        break;
      default:
        osp_ = std::move(merged);
        break;
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(3, 3, merge_one);
  } else {
    for (size_t i = 0; i < 3; ++i) merge_one(i);
  }
  built_ = true;
}

TripleStore::MatchedRange TripleStore::Match(const TriplePatternIds& q,
                                             ProbeHint* hint) const {
  assert(built_ && "Match before Build");
  MatchedRange out;

  // Level-1 lookup: resolve the bound leading component to its bucket.
  // On a miss the range stays empty (index set, begin == end == 0).
  auto bucket_range = [&](const CsrIndex& ix, Perm perm, TermId key) {
    out.index = &ix;
    out.perm = perm;
    size_t b = FindBucket(ix, key, hint != nullptr ? hint->slot(perm) : nullptr);
    if (b == kNoBucket) return false;
    out.bucket = b;
    out.begin = ix.offsets[b];
    out.end = ix.offsets[b + 1];
    return true;
  };
  // Level-2 narrowing: restrict the bucket to pairs whose second component
  // equals `second` (a two-bound prefix probe).
  auto narrow_second = [&](const CsrIndex& ix, TermId second) {
    auto first_it = ix.pairs.begin() + static_cast<ptrdiff_t>(out.begin);
    auto last_it = ix.pairs.begin() + static_cast<ptrdiff_t>(out.end);
    auto lo = std::lower_bound(
        first_it, last_it, second,
        [](const IdPair& pr, TermId k) { return pr.second < k; });
    auto hi = std::upper_bound(
        lo, last_it, second,
        [](TermId k, const IdPair& pr) { return k < pr.second; });
    out.begin = static_cast<size_t>(lo - ix.pairs.begin());
    out.end = static_cast<size_t>(hi - ix.pairs.begin());
  };

  if (q.s_bound() && q.p_bound() && q.o_bound()) {
    // Fully bound: direct existence check — a single level-2 binary
    // search for the exact (p, o) pair inside s's bucket. No residual
    // filter remains on any path.
    if (bucket_range(spo_, Perm::kSpo, q.s)) {
      const IdPair target{q.p, q.o};
      auto first_it = spo_.pairs.begin() + static_cast<ptrdiff_t>(out.begin);
      auto last_it = spo_.pairs.begin() + static_cast<ptrdiff_t>(out.end);
      auto it = std::lower_bound(first_it, last_it, target);
      out.begin = static_cast<size_t>(it - spo_.pairs.begin());
      out.end = (it != last_it && *it == target) ? out.begin + 1 : out.begin;
    }
  } else if (q.s_bound() && q.p_bound()) {
    if (bucket_range(spo_, Perm::kSpo, q.s)) narrow_second(spo_, q.p);
  } else if (q.s_bound() && q.o_bound()) {
    if (bucket_range(osp_, Perm::kOsp, q.o)) narrow_second(osp_, q.s);
  } else if (q.s_bound()) {
    bucket_range(spo_, Perm::kSpo, q.s);
  } else if (q.p_bound() && q.o_bound()) {
    if (bucket_range(pos_, Perm::kPos, q.p)) narrow_second(pos_, q.o);
  } else if (q.p_bound()) {
    bucket_range(pos_, Perm::kPos, q.p);
  } else if (q.o_bound()) {
    bucket_range(osp_, Perm::kOsp, q.o);
  } else {
    out.index = &spo_;
    out.perm = Perm::kSpo;
    out.begin = 0;
    out.end = spo_.pairs.size();
    out.bucket = 0;
  }
  return out;
}

bool TripleStore::Contains(const Triple& t, ProbeHint* hint) const {
  assert(built_);
  size_t b = FindBucket(spo_, t.s,
                        hint != nullptr ? hint->slot(Perm::kSpo) : nullptr);
  if (b == kNoBucket) return false;
  auto first_it = spo_.pairs.begin() + static_cast<ptrdiff_t>(spo_.offsets[b]);
  auto last_it =
      spo_.pairs.begin() + static_cast<ptrdiff_t>(spo_.offsets[b + 1]);
  return std::binary_search(first_it, last_it, IdPair{t.p, t.o});
}

size_t TripleStore::IndexBytes() const {
  auto one = [](const CsrIndex& ix) {
    return ix.firsts.size() * sizeof(TermId) +
           ix.offsets.size() * sizeof(CsrOffset) +
           ix.pairs.size() * sizeof(IdPair);
  };
  return one(spo_) + one(pos_) + one(osp_);
}

}  // namespace sparqluo
