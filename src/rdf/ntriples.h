// N-Triples reader/writer for loading real RDF files into the store.
#pragma once

#include <iosfwd>
#include <string>

#include "rdf/dictionary.h"
#include "rdf/triple_store.h"
#include "util/status.h"

namespace sparqluo {

/// Parses N-Triples text (one `<s> <p> <o> .` statement per line; `#`
/// comments and blank lines allowed) and appends the triples to `store`,
/// encoding terms through `dict`. The store is NOT built; call
/// store->Build() after all loads.
Status ParseNTriples(std::istream& in, Dictionary* dict, TripleStore* store);

/// Convenience overload over a string buffer.
Status ParseNTriplesString(const std::string& text, Dictionary* dict,
                           TripleStore* store);

/// Loads a .nt file from disk.
Status LoadNTriplesFile(const std::string& path, Dictionary* dict,
                        TripleStore* store);

/// Serializes the full store to N-Triples.
void WriteNTriples(const TripleStore& store, const Dictionary& dict,
                   std::ostream& out);

}  // namespace sparqluo
