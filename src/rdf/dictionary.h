// Bidirectional term <-> id dictionary.
//
// All query processing operates on dense TermIds; strings only appear at
// load time, in update batches, and when printing results.
//
// The dictionary is *append-only and append-safe*: ids are never reused or
// remapped, and writers may Encode() new terms while readers concurrently
// Decode()/Lookup() existing ones. This is what lets every committed
// DatabaseVersion (src/store/version.h) share one dictionary — a term keeps
// the same id in every version, so binding rows survive across commits and
// delta triples compare directly against base triples.
//
// Concurrency design:
//   - Decode(id) is lock-free. Terms live in geometrically-growing chunks
//     whose addresses never change (no vector reallocation), published
//     through an atomic size with release/acquire ordering. A reader
//     holding a valid id (one below a size() it observed) always sees a
//     fully constructed term.
//   - Encode()/Lookup() share the string index under a shared_mutex:
//     lookups take the shared lock, inserts the exclusive lock. These run
//     once per query constant / update term, not per triple, so the lock
//     is far off the scan hot path.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "rdf/term.h"
#include "util/status.h"

namespace sparqluo {

/// Append-only dictionary assigning dense ids to RDF terms.
class Dictionary {
 public:
  Dictionary() = default;
  ~Dictionary();

  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;

  /// Returns the id of `term`, inserting it if new. Thread-safe against
  /// concurrent Encode/Lookup/Decode.
  TermId Encode(const Term& term);

  /// Returns the id of `term` or kInvalidTermId when absent. Never inserts.
  TermId Lookup(const Term& term) const;

  /// Bulk-append fast path for snapshot loading: places `term` at the next
  /// id without touching the string index (no CanonicalKey hashing, no
  /// locking). The index is rebuilt lazily, in one pass, the first time
  /// Encode() or Lookup() needs it — queries that never intern a new term
  /// pay for at most the constants they mention.
  ///
  /// Loader-only: single-threaded, before the dictionary is shared, and
  /// never interleaved with Encode() (LoadSnapshot's empty-database
  /// precondition enforces this).
  TermId AppendForLoad(Term term);

  /// Returns the term for a valid id. Precondition: id < size(). Lock-free;
  /// the reference stays valid for the dictionary's lifetime (terms are
  /// never moved once published).
  const Term& Decode(TermId id) const {
    size_t offset;
    return ChunkFor(id, &offset)[offset];
  }

  size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Number of literal terms seen so far (Table 2 statistic).
  size_t literal_count() const {
    return literal_count_.load(std::memory_order_relaxed);
  }

  /// Surface form of an id; "UNBOUND" for kInvalidTermId.
  std::string ToString(TermId id) const {
    if (id == kInvalidTermId) return "UNBOUND";
    return Decode(id).ToString();
  }

 private:
  /// Terms are stored in chunks of geometrically growing size: chunk c
  /// holds ids [B*(2^c - 1), B*(2^(c+1) - 1)) and has capacity B*2^c with
  /// B = kFirstChunkSize. 21 chunks cover the whole 32-bit id space while
  /// a small dictionary allocates only the 4096-term first chunk.
  static constexpr size_t kFirstChunkBits = 12;
  static constexpr size_t kFirstChunkSize = size_t{1} << kFirstChunkBits;
  static constexpr size_t kMaxChunks = 21;

  const Term* ChunkFor(TermId id, size_t* offset) const {
    size_t x = (static_cast<size_t>(id) >> kFirstChunkBits) + 1;
    size_t c = std::bit_width(x) - 1;
    *offset = id - kFirstChunkSize * ((size_t{1} << c) - 1);
    return chunks_[c].load(std::memory_order_acquire);
  }

  /// Returns the chunk slot for `id`, allocating the chunk on first touch.
  /// Caller must either hold mu_ exclusively or be the (single-threaded)
  /// bulk loader.
  Term* SlotFor(size_t id);

  /// Backfills index_ with every term appended via AppendForLoad. Caller
  /// must hold mu_ exclusively.
  void EnsureIndexLocked() const;

  std::array<std::atomic<Term*>, kMaxChunks> chunks_{};
  std::atomic<size_t> size_{0};
  std::atomic<size_t> literal_count_{0};

  mutable std::shared_mutex mu_;  ///< Guards index_ and appends.
  mutable std::unordered_map<std::string, TermId> index_;
  /// Ids [0, indexed_count_) are present in index_. Smaller than size()
  /// only after AppendForLoad; the first Encode/Lookup closes the gap
  /// under the exclusive lock. Reading `true` from index_complete_ (==
  /// indexed_count_ == size) allows the shared-lock fast path.
  mutable size_t indexed_count_ = 0;
  mutable std::atomic<bool> index_complete_{true};
};

}  // namespace sparqluo
