// Bidirectional term <-> id dictionary.
//
// All query processing operates on dense TermIds; strings only appear at
// load time and when printing results.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"
#include "util/status.h"

namespace sparqluo {

/// Append-only dictionary assigning dense ids to RDF terms.
class Dictionary {
 public:
  /// Returns the id of `term`, inserting it if new.
  TermId Encode(const Term& term);

  /// Returns the id of `term` or kInvalidTermId when absent. Never inserts.
  TermId Lookup(const Term& term) const;

  /// Returns the term for a valid id. Precondition: id < size().
  const Term& Decode(TermId id) const { return terms_[id]; }

  size_t size() const { return terms_.size(); }

  /// Number of literal terms seen so far (Table 2 statistic).
  size_t literal_count() const { return literal_count_; }

  /// Surface form of an id; "UNBOUND" for kInvalidTermId.
  std::string ToString(TermId id) const {
    if (id == kInvalidTermId) return "UNBOUND";
    return terms_[id].ToString();
  }

 private:
  std::unordered_map<std::string, TermId> index_;
  std::vector<Term> terms_;
  size_t literal_count_ = 0;
};

}  // namespace sparqluo
