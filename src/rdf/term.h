// RDF terms: IRIs, literals and blank nodes (Definition 1 of the paper).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace sparqluo {

/// Dense dictionary id of an RDF term. Ids are assigned in insertion order
/// starting at 0. kInvalidTermId doubles as the UNBOUND marker in bindings.
using TermId = uint32_t;
inline constexpr TermId kInvalidTermId = UINT32_MAX;

/// The three RDF term kinds of Definition 1 (I, L, B).
enum class TermKind : uint8_t { kIri = 0, kLiteral = 1, kBlank = 2 };

/// A decoded RDF term.
///
/// Literals keep their language tag or datatype IRI in `qualifier`
/// (exactly one of the two may be non-empty; `qualifier_is_lang` says which).
struct Term {
  TermKind kind = TermKind::kIri;
  std::string lexical;          ///< IRI string, literal value, or blank label.
  std::string qualifier;        ///< Language tag or datatype IRI for literals.
  bool qualifier_is_lang = false;

  static Term Iri(std::string iri) {
    Term t;
    t.kind = TermKind::kIri;
    t.lexical = std::move(iri);
    return t;
  }
  static Term Literal(std::string value) {
    Term t;
    t.kind = TermKind::kLiteral;
    t.lexical = std::move(value);
    return t;
  }
  static Term LangLiteral(std::string value, std::string lang) {
    Term t = Literal(std::move(value));
    t.qualifier = std::move(lang);
    t.qualifier_is_lang = true;
    return t;
  }
  static Term TypedLiteral(std::string value, std::string datatype) {
    Term t = Literal(std::move(value));
    t.qualifier = std::move(datatype);
    t.qualifier_is_lang = false;
    return t;
  }
  static Term Blank(std::string label) {
    Term t;
    t.kind = TermKind::kBlank;
    t.lexical = std::move(label);
    return t;
  }

  bool is_iri() const { return kind == TermKind::kIri; }
  bool is_literal() const { return kind == TermKind::kLiteral; }
  bool is_blank() const { return kind == TermKind::kBlank; }

  bool operator==(const Term& other) const {
    return kind == other.kind && lexical == other.lexical &&
           qualifier == other.qualifier &&
           qualifier_is_lang == other.qualifier_is_lang;
  }

  /// N-Triples / SPARQL surface form: `<iri>`, `"lit"@en`, `"5"^^<dt>`, `_:b`.
  std::string ToString() const;

  /// Canonical dictionary key; injective over all well-formed terms.
  std::string CanonicalKey() const;

  /// Parses a term from its N-Triples surface form.
  static Result<Term> Parse(std::string_view text);
};

/// Total order over terms for ORDER BY and FILTER comparisons: numeric when
/// both sides are numeric literals, otherwise by surface form. Returns
/// <0, 0 or >0.
int CompareTermsForOrdering(const Term& x, const Term& y);

/// A dictionary-encoded triple (s, p, o).
struct Triple {
  TermId s = kInvalidTermId;
  TermId p = kInvalidTermId;
  TermId o = kInvalidTermId;

  Triple() = default;
  Triple(TermId s_, TermId p_, TermId o_) : s(s_), p(p_), o(o_) {}

  bool operator==(const Triple& other) const {
    return s == other.s && p == other.p && o == other.o;
  }
};

}  // namespace sparqluo
