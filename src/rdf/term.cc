#include "rdf/term.h"

#include <cstdlib>

#include "util/string_util.h"

namespace sparqluo {

std::string Term::ToString() const {
  switch (kind) {
    case TermKind::kIri:
      return "<" + lexical + ">";
    case TermKind::kBlank:
      return "_:" + lexical;
    case TermKind::kLiteral: {
      std::string out = "\"" + EscapeLiteral(lexical) + "\"";
      if (!qualifier.empty()) {
        if (qualifier_is_lang) {
          out += "@" + qualifier;
        } else {
          out += "^^<" + qualifier + ">";
        }
      }
      return out;
    }
  }
  return "";
}

std::string Term::CanonicalKey() const {
  // A one-byte kind tag keeps IRIs, literals and blanks disjoint even when
  // their lexical forms collide.
  std::string key;
  key.reserve(lexical.size() + qualifier.size() + 3);
  key += static_cast<char>('0' + static_cast<int>(kind));
  key += qualifier_is_lang ? '@' : '^';
  key += qualifier;
  key += '\x1f';
  key += lexical;
  return key;
}

int CompareTermsForOrdering(const Term& x, const Term& y) {
  auto numeric = [](const Term& t, double* out) {
    if (!t.is_literal()) return false;
    char* end = nullptr;
    double v = std::strtod(t.lexical.c_str(), &end);
    if (end == t.lexical.c_str() || *end != '\0') return false;
    *out = v;
    return true;
  };
  double xv, yv;
  if (numeric(x, &xv) && numeric(y, &yv)) {
    if (xv < yv) return -1;
    if (xv > yv) return 1;
    return 0;
  }
  std::string xs = x.ToString(), ys = y.ToString();
  return xs < ys ? -1 : (xs > ys ? 1 : 0);
}

Result<Term> Term::Parse(std::string_view text) {
  text = TrimString(text);
  if (text.empty())
    return Status::ParseError("empty term");
  if (text.front() == '<') {
    if (text.back() != '>')
      return Status::ParseError("unterminated IRI: " + std::string(text));
    return Term::Iri(std::string(text.substr(1, text.size() - 2)));
  }
  if (StartsWith(text, "_:")) {
    return Term::Blank(std::string(text.substr(2)));
  }
  if (text.front() == '"') {
    // Find the closing quote, honoring backslash escapes.
    size_t end = std::string_view::npos;
    for (size_t i = 1; i < text.size(); ++i) {
      if (text[i] == '\\') {
        ++i;
        continue;
      }
      if (text[i] == '"') {
        end = i;
        break;
      }
    }
    if (end == std::string_view::npos)
      return Status::ParseError("unterminated literal: " + std::string(text));
    std::string value = UnescapeLiteral(text.substr(1, end - 1));
    std::string_view rest = text.substr(end + 1);
    if (rest.empty()) return Term::Literal(std::move(value));
    if (rest.front() == '@')
      return Term::LangLiteral(std::move(value), std::string(rest.substr(1)));
    if (StartsWith(rest, "^^<") && rest.back() == '>')
      return Term::TypedLiteral(std::move(value),
                                std::string(rest.substr(3, rest.size() - 4)));
    return Status::ParseError("malformed literal suffix: " + std::string(text));
  }
  return Status::ParseError("unrecognized term: " + std::string(text));
}

}  // namespace sparqluo
