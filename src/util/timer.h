// Wall-clock stopwatch for benchmarking and instrumentation.
#pragma once

#include <chrono>
#include <cstdint>

namespace sparqluo {

/// Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Reset, in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sparqluo
