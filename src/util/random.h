// Deterministic pseudo-random generator for data generation and tests.
#pragma once

#include <cstdint>

namespace sparqluo {

/// SplitMix64-seeded xorshift128+ generator. Deterministic across platforms,
/// so benchmark datasets regenerate identically everywhere.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 to fill the state from the seed.
    auto next = [&seed]() {
      seed += 0x9E3779B97F4A7C15ULL;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      return z ^ (z >> 31);
    };
    s0_ = next();
    s1_ = next();
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi].
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Uniform(hi - lo + 1); }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Approximate Zipf-distributed value in [0, n): rank-skewed sampling used
  /// by the DBpedia-like generator to model hub entities.
  uint64_t Zipf(uint64_t n, double alpha = 1.0) {
    // Inverse-CDF on a power-law; coarse but fast and deterministic.
    double u = NextDouble();
    double x = (alpha == 1.0)
                   ? (static_cast<double>(n) - 1.0) * u * u
                   : (static_cast<double>(n) - 1.0) * u * u * u;
    auto v = static_cast<uint64_t>(x);
    return v >= n ? n - 1 : v;
  }

 private:
  uint64_t s0_, s1_;
};

}  // namespace sparqluo
