#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <thread>

namespace sparqluo {

namespace {

LogLevel InitialLevel() {
  const char* env = std::getenv("SPARQLUO_LOG_LEVEL");
  return env != nullptr ? ParseLogLevel(env, LogLevel::kWarn) : LogLevel::kWarn;
}

/// Lazily initialized so the env override applies no matter when the first
/// log call happens relative to static initialization.
std::atomic<LogLevel>& Level() {
  static std::atomic<LogLevel> level{InitialLevel()};
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

/// UTC ISO-8601 with milliseconds, e.g. 2026-08-07T12:34:56.789Z.
void FormatTimestamp(char* buf, size_t size) {
  auto now = std::chrono::system_clock::now();
  std::time_t secs = std::chrono::system_clock::to_time_t(now);
  int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &secs);
#else
  gmtime_r(&secs, &tm);
#endif
  std::snprintf(buf, size, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, millis);
}

/// The OS thread id rendered once per thread (std::thread::id has no
/// cheap integer accessor; caching the formatted form keeps the per-line
/// cost to a string copy).
const std::string& ThisThreadIdString() {
  thread_local const std::string id = [] {
    std::ostringstream os;
    os << std::this_thread::get_id();
    return os.str();
  }();
  return id;
}

}  // namespace

void SetLogLevel(LogLevel level) { Level().store(level); }
LogLevel GetLogLevel() { return Level().load(); }

LogLevel ParseLogLevel(const std::string& name, LogLevel fallback) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name)
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return fallback;
}

namespace internal {
void LogMessage(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(Level().load())) return;
  char ts[64];
  FormatTimestamp(ts, sizeof(ts));
  std::fprintf(stderr, "%s %s [tid %s] %s\n", ts, LevelName(level),
               ThisThreadIdString().c_str(), msg.c_str());
}
}  // namespace internal

}  // namespace sparqluo
