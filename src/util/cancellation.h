// Cooperative cancellation and deadlines for query evaluation.
//
// A CancelToken carries an optional wall-clock deadline plus an explicit
// cancel flag that another thread may set at any time. Evaluation code
// polls the token at loop checkpoints through a CancelCheckpoint, which
// amortizes the (comparatively expensive) clock read over `stride` polls
// while reading the atomic flag on every poll.
//
// Cancellation propagates as a CancelledError exception. This is internal
// control flow only: Executor::EvaluateTree catches it and converts it to
// an aborted ExecMetrics / ResourceExhausted Status, so it never crosses
// the public API boundary (the Status/Result discipline of util/status.h
// is preserved).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace sparqluo {

/// Shared cancellation state for one query execution. The deadline is set
/// before evaluation starts (single writer); the cancel flag may be set
/// concurrently by any thread.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  explicit CancelToken(Clock::time_point deadline) : deadline_(deadline) {}

  /// A token that expires `timeout` from now.
  static CancelToken WithTimeout(std::chrono::nanoseconds timeout) {
    return CancelToken(Clock::now() + timeout);
  }

  /// Requests cancellation; evaluation aborts at its next checkpoint.
  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Installs a deadline. Call before evaluation starts (not synchronized
  /// with concurrent Expired() readers).
  void SetDeadline(Clock::time_point deadline) { deadline_ = deadline; }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  bool has_deadline() const {
    return deadline_ != Clock::time_point::max();
  }
  Clock::time_point deadline() const { return deadline_; }

  /// True when the deadline (if any) has passed. Reads the clock.
  bool Expired() const { return has_deadline() && Clock::now() >= deadline_; }

 private:
  std::atomic<bool> cancelled_{false};
  Clock::time_point deadline_ = Clock::time_point::max();
};

/// Thrown by evaluation checkpoints when a token fires; caught by
/// Executor::EvaluateTree. `deadline` distinguishes deadline expiry from an
/// explicit RequestCancel.
struct CancelledError {
  bool deadline = false;
};

/// Per-evaluation polling helper. Null token makes Poll a no-op, so callers
/// do not need to branch on "cancellation enabled".
class CancelCheckpoint {
 public:
  explicit CancelCheckpoint(const CancelToken* token, uint32_t stride = 256)
      : token_(token), stride_(stride), countdown_(1) {}

  /// Throws CancelledError when the token is cancelled or past its
  /// deadline. The clock is consulted on the first poll and then once per
  /// `stride` polls; the cancel flag is read on every poll.
  void Poll() {
    if (token_ == nullptr) return;
    if (token_->cancel_requested()) throw CancelledError{false};
    if (--countdown_ == 0) {
      countdown_ = stride_;
      if (token_->Expired()) throw CancelledError{true};
    }
  }

 private:
  const CancelToken* token_;
  uint32_t stride_;
  uint32_t countdown_;
};

}  // namespace sparqluo
