// Little-endian binary encode/decode helpers shared by the snapshot
// writers and loaders (docs/snapshot_format.md).
//
// Writers append to a std::string buffer; readers consume a bounds-checked
// ByteReader cursor over an in-memory image. Both sides are explicit about
// byte order, so the encoded form is identical on every host; the reader
// additionally tracks its absolute offset so loaders can report *where* a
// file went bad, not just that it did.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace sparqluo {

inline void PutU16(std::string* out, uint16_t v) {
  const char bytes[2] = {static_cast<char>(v), static_cast<char>(v >> 8)};
  out->append(bytes, 2);
}

inline void PutU32(std::string* out, uint32_t v) {
  const char bytes[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
                         static_cast<char>(v >> 16),
                         static_cast<char>(v >> 24)};
  out->append(bytes, 4);
}

inline void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

inline void PutBytes(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

/// Bounds-checked forward cursor over an in-memory byte image. Every Read*
/// either consumes and returns true, or leaves the cursor unmoved and
/// returns false; offset() is the absolute position for error messages.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size, size_t base_offset = 0)
      : data_(data), size_(size), base_(base_offset) {}

  size_t remaining() const { return size_ - pos_; }
  /// Absolute offset of the cursor (file offset when `base_offset` was the
  /// section's file position).
  size_t offset() const { return base_ + pos_; }

  bool ReadU8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = data_[pos_++];
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    *v = static_cast<uint32_t>(data_[pos_]) |
         static_cast<uint32_t>(data_[pos_ + 1]) << 8 |
         static_cast<uint32_t>(data_[pos_ + 2]) << 16 |
         static_cast<uint32_t>(data_[pos_ + 3]) << 24;
    pos_ += 4;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    uint32_t lo, hi;
    if (remaining() < 8 || !ReadU32(&lo) || !ReadU32(&hi)) return false;
    *v = static_cast<uint64_t>(hi) << 32 | lo;
    return true;
  }
  /// Copies `size` bytes into `out` (which must have room for them).
  bool ReadBytes(void* out, size_t size) {
    if (remaining() < size) return false;
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
    return true;
  }
  /// Borrows `size` bytes in place (no copy); the pointer stays valid as
  /// long as the underlying image does.
  bool Borrow(const uint8_t** out, size_t size) {
    if (remaining() < size) return false;
    *out = data_ + pos_;
    pos_ += size;
    return true;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t base_;
  size_t pos_ = 0;
};

}  // namespace sparqluo
