// Small string helpers shared by the parser, serializers and generators.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sparqluo {

/// Splits `s` on `delim`, keeping empty pieces.
std::vector<std::string> SplitString(std::string_view s, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimString(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Escapes a literal's characters for N-Triples / SPARQL output
/// (backslash, quote, newline, tab, carriage return).
std::string EscapeLiteral(std::string_view s);

/// Inverse of EscapeLiteral.
std::string UnescapeLiteral(std::string_view s);

}  // namespace sparqluo
