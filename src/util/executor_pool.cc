#include "util/executor_pool.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <memory>

#include "obs/metrics.h"

namespace sparqluo {

ExecutorPool::ExecutorPool(size_t num_threads) {
  MetricRegistry& reg = MetricRegistry::Global();
  queue_depth_metric_ = reg.GetGauge(
      "sparqluo_executor_queue_depth", "Tasks waiting in the pool queue");
  tasks_metric_ = reg.GetCounter("sparqluo_executor_tasks_total",
                                 "Tasks executed by pool workers");
  busy_us_metric_ =
      reg.GetCounter("sparqluo_executor_busy_microseconds_total",
                     "Microseconds pool workers spent running tasks");
  batches_metric_ = reg.GetCounter("sparqluo_executor_morsel_batches_total",
                                   "ParallelFor batches dispatched");
  batch_items_metric_ = reg.GetCounter(
      "sparqluo_executor_morsel_items_total",
      "Work items (morsels) claimed across all ParallelFor batches");
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

ExecutorPool::~ExecutorPool() { Shutdown(); }

void ExecutorPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_)
    if (w.joinable()) w.join();
}

void ExecutorPool::Submit(std::function<void()> task, bool front) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!shutdown_) {
      if (front) {
        queue_.push_front(std::move(task));
      } else {
        queue_.push_back(std::move(task));
      }
      queue_depth_metric_->Set(static_cast<int64_t>(queue_.size()));
      cv_.notify_one();
      return;
    }
  }
  task();  // shut down: run inline so submitted work is never lost
}

void ExecutorPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_metric_->Set(static_cast<int64_t>(queue_.size()));
    }
    auto t0 = std::chrono::steady_clock::now();
    task();
    auto t1 = std::chrono::steady_clock::now();
    tasks_metric_->Increment();
    busy_us_metric_->Increment(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count()));
  }
}

void ExecutorPool::ParallelFor(size_t n, size_t max_workers,
                               const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  batches_metric_->Increment();
  batch_items_metric_->Increment(n);
  if (max_workers == 0) max_workers = workers_.size() + 1;
  size_t helpers = std::min({max_workers - 1, n - 1, workers_.size()});
  if (helpers == 0) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared batch state. Help tasks hold the shared_ptr, so a task dequeued
  // after ParallelFor returned still finds the counter exhausted (every
  // index < n was claimed before the caller could observe done == n) and
  // exits without touching `fn`, which is dead by then.
  struct State {
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex mu;
    std::condition_variable cv;
    size_t done = 0;                   // guarded by mu
    std::exception_ptr error;          // guarded by mu; first failure wins
    size_t n = 0;
    const std::function<void(size_t)>* fn = nullptr;
  };
  auto st = std::make_shared<State>();
  st->n = n;
  st->fn = &fn;

  auto work = [st] {
    size_t completed = 0;
    for (;;) {
      size_t i = st->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= st->n) break;
      // After a failure, remaining items are claimed but skipped so the
      // batch finishes quickly (a fired CancelToken would make every one
      // throw the same way anyway).
      if (!st->failed.load(std::memory_order_relaxed)) {
        try {
          (*st->fn)(i);
        } catch (...) {
          st->failed.store(true, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(st->mu);
          if (!st->error) st->error = std::current_exception();
        }
      }
      ++completed;
    }
    if (completed > 0) {
      std::lock_guard<std::mutex> lock(st->mu);
      st->done += completed;
      if (st->done == st->n) st->cv.notify_all();
    }
  };

  for (size_t h = 0; h < helpers; ++h) Submit(work, /*front=*/true);
  work();  // the caller participates: progress even on a saturated pool

  std::unique_lock<std::mutex> lock(st->mu);
  st->cv.wait(lock, [&] { return st->done == st->n; });
  if (st->error) std::rethrow_exception(st->error);
}

}  // namespace sparqluo
