// Owned-or-borrowed contiguous array.
//
// The storage seam behind zero-copy snapshot loading: a structure whose
// hot arrays are ArrayRef<T> can either own its data (a std::vector built
// the normal way) or borrow it from externally managed memory (a section
// of an mmap'd snapshot file). Readers see one pointer + size either way,
// so the read path compiles identically for both modes; only construction
// and lifetime management differ.
//
// Borrowed mode does not extend the lifetime of the underlying buffer —
// whoever installs a borrowed ArrayRef must keep the backing memory alive
// for as long as the ArrayRef is reachable (TripleStore pins the snapshot
// buffer with a shared_ptr for exactly this reason).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace sparqluo {

/// A read-mostly contiguous array that either owns a vector or borrows a
/// caller-managed buffer. Elements are immutable once installed.
template <typename T>
class ArrayRef {
 public:
  ArrayRef() = default;

  /// Owning: adopts `v`; the data lives inside this ArrayRef.
  ArrayRef(std::vector<T> v)  // NOLINT(google-explicit-constructor)
      : own_(std::move(v)), data_(own_.data()), size_(own_.size()) {}

  /// Borrowing: points at `[data, data + size)`, which the caller must
  /// keep alive and unchanged for the lifetime of this ArrayRef.
  static ArrayRef Borrowed(const T* data, size_t size) {
    ArrayRef r;
    r.borrowed_ = true;
    r.data_ = data;
    r.size_ = size;
    return r;
  }

  // Moves transfer ownership (a moved vector keeps its heap block, so the
  // data pointer must be re-anchored); copies deep-copy owned data.
  ArrayRef(ArrayRef&& other) noexcept { *this = std::move(other); }
  ArrayRef& operator=(ArrayRef&& other) noexcept {
    if (this != &other) {
      borrowed_ = other.borrowed_;
      own_ = std::move(other.own_);
      data_ = borrowed_ ? other.data_ : own_.data();
      size_ = other.size_;
      other.borrowed_ = false;
      other.own_.clear();
      other.data_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }
  ArrayRef(const ArrayRef& other) { *this = other; }
  ArrayRef& operator=(const ArrayRef& other) {
    if (this != &other) {
      borrowed_ = other.borrowed_;
      own_ = other.own_;
      data_ = borrowed_ ? other.data_ : own_.data();
      size_ = other.size_;
    }
    return *this;
  }

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T& operator[](size_t i) const { return data_[i]; }
  const T& back() const { return data_[size_ - 1]; }

  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  /// True when the data is borrowed from caller-managed memory.
  bool borrowed() const { return borrowed_; }

 private:
  bool borrowed_ = false;
  std::vector<T> own_;
  const T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace sparqluo
