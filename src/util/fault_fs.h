// Fault-injectable file operations — the seam between durable-write code
// (the WAL, snapshot publishing) and the operating system.
//
// Production code performs every write-path syscall through a FileOps
// pointer. The default implementation (FileOps::Default()) is a plain
// POSIX passthrough with zero overhead beyond the virtual call; tests
// substitute a FaultInjectionFileOps to make the failure modes that are
// otherwise unreachable in CI actually happen:
//
//   - fsync/write failing with EIO or ENOSPC (a full disk, a dying one),
//   - short writes (a partially applied append, the torn-write precursor),
//   - process death at *numbered crash points* — well-defined instants in
//     the commit/checkpoint protocols (see CrashPoint) at which the
//     recovery suite kills the process and then proves the store recovers
//     to a correct state.
//
// The crash points double as executable documentation of the durability
// protocol: every ordering claim in docs/durability.md has a crash point
// on each side of it, and tests/crash_recovery_test.cc kills at every one.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace sparqluo {

/// Numbered instants in the WAL-commit and checkpoint protocols at which a
/// FaultInjectionFileOps can abort the process. The catalog (and what a
/// correct recovery must look like after dying at each) is specified in
/// docs/durability.md.
enum class CrashPoint : int {
  kNone = 0,
  /// Commit: before any record byte reaches the segment file.
  kWalBeforeAppend = 1,
  /// Commit: record bytes written, not yet fsynced.
  kWalAfterAppend = 2,
  /// Commit: record durable, new version not yet published to readers.
  kWalAfterFsync = 3,
  /// Checkpoint: snapshot temporary written + fsynced, not yet renamed.
  kCheckpointAfterTmpWrite = 4,
  /// Checkpoint: snapshot renamed into place, directory not yet fsynced.
  kCheckpointAfterRename = 5,
  /// Checkpoint: marker file durable, obsolete segments not yet retired.
  kCheckpointAfterMarker = 6,
  /// Checkpoint: obsolete segments retired (protocol complete).
  kCheckpointAfterRetire = 7,
};
inline constexpr int kCrashPointCount = 8;

/// Name of a crash point, for CLI/env arming and test diagnostics.
const char* CrashPointName(CrashPoint p);

/// File operations used on durable-write paths. All methods are
/// thread-safe in both implementations. Errors come back as Status with
/// the failing path/errno in the message — callers add protocol context.
class FileOps {
 public:
  virtual ~FileOps() = default;

  /// open(2). `flags` is the usual O_* bitmask; returns the fd.
  virtual Result<int> Open(const std::string& path, int flags, int mode = 0644);
  /// write(2): may write fewer than `size` bytes (callers that need all
  /// bytes use WriteAll). Returns the byte count actually written.
  virtual Result<size_t> Write(int fd, const void* data, size_t size);
  virtual Status Fsync(int fd);
  virtual Status Close(int fd);
  virtual Status Truncate(int fd, uint64_t size);
  virtual Status Rename(const std::string& from, const std::string& to);
  virtual Status Remove(const std::string& path);
  /// Creates the directory if missing (existing directory is OK).
  virtual Status Mkdir(const std::string& path);
  /// Opens + fsyncs a directory, making a rename/create/unlink inside it
  /// durable.
  virtual Status SyncDir(const std::string& dir);
  /// Names of the entries in `dir` (no "." / ".."), unsorted.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir);
  /// Crash-point hook: a no-op here; FaultInjectionFileOps aborts the
  /// process (as if SIGKILLed) when armed at `point`.
  virtual void Crash(CrashPoint point) { (void)point; }

  /// Loops Write until every byte is written or an error occurs; a short
  /// write with no errno is reported as Unavailable.
  Status WriteAll(int fd, const void* data, size_t size);

  /// Process-wide POSIX passthrough singleton. Never null; used whenever a
  /// caller passes ops == nullptr.
  static FileOps* Default();
};

/// Resolves an optional override to the default passthrough.
inline FileOps* ResolveFileOps(FileOps* ops) {
  return ops != nullptr ? ops : FileOps::Default();
}

/// Test implementation: forwards to a base FileOps (the POSIX default
/// unless overridden) while counting operations and injecting the armed
/// faults. Arm/disarm and counters are thread-safe; a fault fires exactly
/// once per arming unless `sticky` is set.
class FaultInjectionFileOps : public FileOps {
 public:
  explicit FaultInjectionFileOps(FileOps* base = nullptr)
      : base_(ResolveFileOps(base)) {}

  // --- fault arming ----------------------------------------------------
  /// Fails the Nth write from now (0 = the next one) with `error_code`
  /// (EIO/ENOSPC). With `sticky`, every later write fails too.
  void FailWrite(int nth, int error_code, bool sticky = false);
  /// Fails the Nth fsync from now with `error_code`.
  void FailFsync(int nth, int error_code, bool sticky = false);
  /// Makes the Nth write from now a short write: only the first half of
  /// the buffer reaches the file and the syscall "succeeds" short.
  void ShortWrite(int nth);
  /// Fails every Truncate (the append-rollback path) with `error_code`.
  void FailTruncate(int error_code);
  /// Aborts the process (via _exit, no flushing — a simulated SIGKILL) the
  /// Nth time `point` is reached.
  void CrashAt(CrashPoint point, int nth = 0);
  /// Clears every armed fault.
  void Disarm();

  // --- counters --------------------------------------------------------
  uint64_t writes() const { return writes_.load(); }
  uint64_t fsyncs() const { return fsyncs_.load(); }
  uint64_t dir_syncs() const { return dir_syncs_.load(); }
  uint64_t renames() const { return renames_.load(); }
  uint64_t removes() const { return removes_.load(); }

  // --- FileOps ---------------------------------------------------------
  Result<int> Open(const std::string& path, int flags, int mode) override;
  Result<size_t> Write(int fd, const void* data, size_t size) override;
  Status Fsync(int fd) override;
  Status Close(int fd) override;
  Status Truncate(int fd, uint64_t size) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status Mkdir(const std::string& path) override;
  Status SyncDir(const std::string& dir) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  void Crash(CrashPoint point) override;

 private:
  /// One countdown-armed fault. `remaining` < 0 = disarmed; 0 = fires on
  /// the next hit.
  struct Countdown {
    std::atomic<int> remaining{-1};
    int error_code = 0;
    bool sticky = false;

    /// Atomically decides whether this hit fires the fault.
    bool Fire();
  };

  FileOps* base_;
  Countdown fail_write_, fail_fsync_, short_write_;
  std::atomic<int> fail_truncate_errno_{0};
  std::atomic<int> crash_point_{0};
  std::atomic<int> crash_countdown_{0};
  std::atomic<uint64_t> writes_{0}, fsyncs_{0}, dir_syncs_{0}, renames_{0},
      removes_{0};
};

}  // namespace sparqluo
