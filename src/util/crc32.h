// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum guarding
// snapshot file sections (docs/snapshot_format.md).
#pragma once

#include <cstddef>
#include <cstdint>

namespace sparqluo {

/// CRC-32 of `[data, data + size)`. `seed` chains incremental computations:
/// Crc32(b, nb, Crc32(a, na)) == Crc32(concat(a, b)).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace sparqluo
