#include "util/fault_fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sparqluo {

namespace {

/// Exit code a FaultInjectionFileOps crash dies with; the crash-recovery
/// suite checks it to distinguish an injected crash from a real failure.
constexpr int kCrashExitCode = 86;

Status ErrnoStatus(const char* op, const std::string& path, int err) {
  return Status::Unavailable(std::string(op) + " " + path + ": " +
                         std::strerror(err));
}

Status ErrnoStatusFd(const char* op, int fd, int err) {
  return Status::Unavailable(std::string(op) + " fd=" + std::to_string(fd) + ": " +
                         std::strerror(err));
}

}  // namespace

const char* CrashPointName(CrashPoint p) {
  switch (p) {
    case CrashPoint::kNone:
      return "none";
    case CrashPoint::kWalBeforeAppend:
      return "wal-before-append";
    case CrashPoint::kWalAfterAppend:
      return "wal-after-append";
    case CrashPoint::kWalAfterFsync:
      return "wal-after-fsync";
    case CrashPoint::kCheckpointAfterTmpWrite:
      return "checkpoint-after-tmp-write";
    case CrashPoint::kCheckpointAfterRename:
      return "checkpoint-after-rename";
    case CrashPoint::kCheckpointAfterMarker:
      return "checkpoint-after-marker";
    case CrashPoint::kCheckpointAfterRetire:
      return "checkpoint-after-retire";
  }
  return "unknown";
}

Result<int> FileOps::Open(const std::string& path, int flags, int mode) {
  int fd = ::open(path.c_str(), flags, mode);
  if (fd < 0) return ErrnoStatus("open", path, errno);
  return fd;
}

Result<size_t> FileOps::Write(int fd, const void* data, size_t size) {
  ssize_t n = ::write(fd, data, size);
  if (n < 0) return ErrnoStatusFd("write", fd, errno);
  return static_cast<size_t>(n);
}

Status FileOps::Fsync(int fd) {
  if (::fsync(fd) != 0) return ErrnoStatusFd("fsync", fd, errno);
  return Status::OK();
}

Status FileOps::Close(int fd) {
  if (::close(fd) != 0) return ErrnoStatusFd("close", fd, errno);
  return Status::OK();
}

Status FileOps::Truncate(int fd, uint64_t size) {
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    return ErrnoStatusFd("ftruncate", fd, errno);
  }
  return Status::OK();
}

Status FileOps::Rename(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoStatus("rename", from + " -> " + to, errno);
  }
  return Status::OK();
}

Status FileOps::Remove(const std::string& path) {
  if (::unlink(path.c_str()) != 0) return ErrnoStatus("unlink", path, errno);
  return Status::OK();
}

Status FileOps::Mkdir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return ErrnoStatus("mkdir", path, errno);
  }
  return Status::OK();
}

Status FileOps::SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoStatus("open dir", dir, errno);
  Status st = Fsync(fd);
  ::close(fd);
  if (!st.ok()) return Status::Unavailable("fsync dir " + dir + ": " + st.message());
  return Status::OK();
}

Result<std::vector<std::string>> FileOps::ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return ErrnoStatus("opendir", dir, errno);
  std::vector<std::string> names;
  while (dirent* ent = ::readdir(d)) {
    std::string name = ent->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(std::move(name));
  }
  ::closedir(d);
  return names;
}

Status FileOps::WriteAll(int fd, const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  size_t remaining = size;
  while (remaining > 0) {
    SPARQLUO_ASSIGN_OR_RETURN(size_t n, Write(fd, p, remaining));
    if (n == 0) {
      return Status::Unavailable("short write: 0 of " +
                                 std::to_string(remaining) + " bytes written");
    }
    p += n;
    remaining -= n;
  }
  return Status::OK();
}

FileOps* FileOps::Default() {
  static FileOps* instance = new FileOps();
  return instance;
}

bool FaultInjectionFileOps::Countdown::Fire() {
  int cur = remaining.load(std::memory_order_relaxed);
  while (cur >= 0) {
    // sticky faults stay armed at 0 once reached
    int next = (cur == 0) ? (sticky ? 0 : -1) : cur - 1;
    if (remaining.compare_exchange_weak(cur, next, std::memory_order_relaxed)) {
      return cur == 0;
    }
  }
  return false;
}

void FaultInjectionFileOps::FailWrite(int nth, int error_code, bool sticky) {
  fail_write_.error_code = error_code;
  fail_write_.sticky = sticky;
  fail_write_.remaining.store(nth);
}

void FaultInjectionFileOps::FailFsync(int nth, int error_code, bool sticky) {
  fail_fsync_.error_code = error_code;
  fail_fsync_.sticky = sticky;
  fail_fsync_.remaining.store(nth);
}

void FaultInjectionFileOps::ShortWrite(int nth) {
  short_write_.sticky = false;
  short_write_.remaining.store(nth);
}

void FaultInjectionFileOps::FailTruncate(int error_code) {
  fail_truncate_errno_.store(error_code);
}

void FaultInjectionFileOps::CrashAt(CrashPoint point, int nth) {
  crash_countdown_.store(nth);
  crash_point_.store(static_cast<int>(point));
}

void FaultInjectionFileOps::Disarm() {
  fail_write_.remaining.store(-1);
  fail_fsync_.remaining.store(-1);
  short_write_.remaining.store(-1);
  fail_truncate_errno_.store(0);
  crash_point_.store(0);
}

Result<int> FaultInjectionFileOps::Open(const std::string& path, int flags,
                                        int mode) {
  return base_->Open(path, flags, mode);
}

Result<size_t> FaultInjectionFileOps::Write(int fd, const void* data,
                                            size_t size) {
  writes_.fetch_add(1);
  if (fail_write_.Fire()) {
    return ErrnoStatusFd("write", fd, fail_write_.error_code);
  }
  if (short_write_.Fire() && size > 1) {
    return base_->Write(fd, data, size / 2);
  }
  return base_->Write(fd, data, size);
}

Status FaultInjectionFileOps::Fsync(int fd) {
  fsyncs_.fetch_add(1);
  if (fail_fsync_.Fire()) {
    return ErrnoStatusFd("fsync", fd, fail_fsync_.error_code);
  }
  return base_->Fsync(fd);
}

Status FaultInjectionFileOps::Close(int fd) { return base_->Close(fd); }

Status FaultInjectionFileOps::Truncate(int fd, uint64_t size) {
  int err = fail_truncate_errno_.load();
  if (err != 0) return ErrnoStatusFd("ftruncate", fd, err);
  return base_->Truncate(fd, size);
}

Status FaultInjectionFileOps::Rename(const std::string& from,
                                     const std::string& to) {
  renames_.fetch_add(1);
  return base_->Rename(from, to);
}

Status FaultInjectionFileOps::Remove(const std::string& path) {
  removes_.fetch_add(1);
  return base_->Remove(path);
}

Status FaultInjectionFileOps::Mkdir(const std::string& path) {
  return base_->Mkdir(path);
}

Status FaultInjectionFileOps::SyncDir(const std::string& dir) {
  dir_syncs_.fetch_add(1);
  if (fail_fsync_.Fire()) {
    return Status::Unavailable("fsync dir " + dir + ": " +
                           std::strerror(fail_fsync_.error_code));
  }
  return base_->SyncDir(dir);
}

Result<std::vector<std::string>> FaultInjectionFileOps::ListDir(
    const std::string& dir) {
  return base_->ListDir(dir);
}

void FaultInjectionFileOps::Crash(CrashPoint point) {
  if (crash_point_.load(std::memory_order_relaxed) !=
      static_cast<int>(point)) {
    return;
  }
  if (crash_countdown_.fetch_sub(1) > 0) return;
  // _exit skips atexit handlers and stdio flushing — the closest userspace
  // approximation of SIGKILL that still lets gtest children arm it.
  ::_exit(kCrashExitCode);
}

}  // namespace sparqluo
