#include "util/crc32.h"

#include <array>
#include <bit>
#include <cstring>

namespace sparqluo {

namespace {

/// Slicing-by-8 tables: table[0] is the standard reflected-polynomial
/// byte table; table[k][b] is the CRC of byte b followed by k zero bytes.
/// Processing 8 input bytes per iteration with one table lookup each runs
/// several times faster than the bytewise loop — the checksum pass over a
/// snapshot's section bytes is on the cold-start critical path.
struct Tables {
  uint32_t t[8][256];
};

Tables BuildTables() {
  Tables tb{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit)
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    tb.t[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i)
    for (int k = 1; k < 8; ++k)
      tb.t[k][i] = (tb.t[k - 1][i] >> 8) ^ tb.t[0][tb.t[k - 1][i] & 0xFF];
  return tb;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  static const Tables kTables = BuildTables();
  const auto& t = kTables.t;
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  // The slicing formulation reads the input as little-endian u32 words;
  // big-endian hosts take the (correct, slower) bytewise loop for all of it.
  while (std::endian::native == std::endian::little && size >= 8) {
    // The memcpy compiles to one unaligned load.
    uint32_t lo, hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
          t[4][lo >> 24] ^ t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
          t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
    p += 8;
    size -= 8;
  }
  for (size_t i = 0; i < size; ++i)
    crc = t[0][(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  return ~crc;
}

}  // namespace sparqluo
