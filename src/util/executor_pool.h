// Shared worker pool for inter- and intra-query parallelism.
//
// One ExecutorPool serves two kinds of work:
//   - whole-query tasks submitted by the QueryService (Submit), and
//   - morsel batches fanned out by a BGP engine mid-query (ParallelFor).
//
// ParallelFor is morsel-driven: the n work items are claimed from a shared
// atomic counter, the calling thread participates, and idle pool workers
// join in through "help" tasks pushed to the front of the queue. Because
// the caller always drains the counter itself, a fully busy pool degrades
// to sequential execution instead of deadlocking — a query task running on
// a pool worker can safely fan out onto the same pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sparqluo {

class Counter;  // obs/metrics.h
class Gauge;
class TraceContext;  // obs/trace.h

class ExecutorPool {
 public:
  /// Spawns `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ExecutorPool(size_t num_threads = 0);
  ~ExecutorPool();

  ExecutorPool(const ExecutorPool&) = delete;
  ExecutorPool& operator=(const ExecutorPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues one task. `front` pushes it ahead of queued work (used for
  /// morsel help tasks so intra-query work is not starved by queued
  /// queries). After Shutdown the task runs inline on the caller, so no
  /// submitted work is ever silently dropped.
  void Submit(std::function<void()> task, bool front = false);

  /// Runs fn(0) .. fn(n-1) using at most `max_workers` threads (including
  /// the calling thread; 0 means "pool size + 1"). Blocks until every
  /// invocation finished. If any invocation throws, the remaining unstarted
  /// items are skipped and the first exception is rethrown on the caller.
  void ParallelFor(size_t n, size_t max_workers,
                   const std::function<void(size_t)>& fn);

  /// Stops accepting pool-side work, drains the queue and joins the
  /// workers. Idempotent; also run by the destructor.
  void Shutdown();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;

  // Process-global instruments (obs/metrics.h), resolved once here so the
  // per-task cost is a handful of relaxed atomic ops.
  Gauge* queue_depth_metric_;
  Counter* tasks_metric_;
  Counter* busy_us_metric_;
  Counter* batches_metric_;
  Counter* batch_items_metric_;
};

/// How a BGP engine should parallelize one evaluation. Carried alongside
/// (not inside) ExecOptions so the bgp/ layer needs no dependency on the
/// executor.
struct ParallelSpec {
  ExecutorPool* pool = nullptr;  ///< Not owned; null disables parallelism.
  /// Maximum concurrent workers per morsel batch, including the caller.
  /// 0 = pool size + 1; 1 = sequential.
  size_t parallelism = 1;
  /// Work items (index triples or partial bindings) per morsel.
  size_t morsel_size = 1024;
  /// Optional query trace (obs/trace.h) the engines record per-morsel spans
  /// into, parented under `trace_parent`. Forward-declared so this lowest
  /// layer stays header-independent of obs/. Not owned; null disables
  /// morsel tracing.
  TraceContext* trace = nullptr;
  uint32_t trace_parent = 0xffffffffu;  ///< TraceContext::kNoSpan.

  bool enabled() const { return pool != nullptr && parallelism != 1; }

  /// Workers usable for one batch, including the caller.
  size_t EffectiveWorkers() const {
    if (pool == nullptr) return 1;
    return parallelism == 0 ? pool->num_threads() + 1 : parallelism;
  }

  /// Number of morsels for `n` work items (at least 1 for n > 0), capping
  /// the per-batch bookkeeping while keeping every worker busy.
  size_t MorselCount(size_t n) const {
    if (n == 0) return 0;
    size_t size = morsel_size == 0 ? 1 : morsel_size;
    return (n + size - 1) / size;
  }
};

}  // namespace sparqluo
