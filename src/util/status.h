// Status / Result error-handling primitives (RocksDB / Arrow idiom).
//
// Library code never throws across module boundaries; fallible operations
// return Status (no payload) or Result<T> (payload or error).
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace sparqluo {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kNotFound,
  kOutOfRange,
  kUnsupported,
  kInternal,
  kResourceExhausted,
  kFailedPrecondition,
  /// Admission control refused the request (queue full or shutting down).
  /// Distinct from kResourceExhausted — which a query earns mid-flight by
  /// blowing a row/deadline guard — so front-ends can map overload to a
  /// retryable HTTP 503 while in-flight aborts map to 408.
  kOverloaded,
  /// A durable-I/O failure (fsync/write returning EIO/ENOSPC, a failed WAL
  /// append). The operation did not take effect and may succeed on retry
  /// once the underlying condition clears; front-ends map it to HTTP 503
  /// while read paths keep serving.
  kUnavailable,
};

/// Returns a human-readable name for a StatusCode.
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kUnsupported: return "Unsupported";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kOverloaded: return "Overloaded";
    case StatusCode::kUnavailable: return "Unavailable";
  }
  return "Unknown";
}

/// Outcome of a fallible operation that returns no payload.
///
/// Cheap to copy in the OK case (no allocation). Inspect with ok(); a
/// non-OK Status carries a code and a message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a non-OK Status.
///
/// Use value()/operator* only after checking ok(); accessing the value of a
/// failed Result aborts in debug builds.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(data_).ok() && "Result constructed from OK Status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define SPARQLUO_RETURN_NOT_OK(expr)             \
  do {                                           \
    ::sparqluo::Status _st = (expr);             \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Assigns the value of a Result expression to `lhs`, or propagates the error.
#define SPARQLUO_ASSIGN_OR_RETURN(lhs, rexpr)    \
  auto _res_##__LINE__ = (rexpr);                \
  if (!_res_##__LINE__.ok()) return _res_##__LINE__.status(); \
  lhs = std::move(_res_##__LINE__).value()

}  // namespace sparqluo
