// Read-only whole-file images: mmap where available, read-into-buffer
// otherwise.
//
// The v2 snapshot loader (docs/snapshot_format.md) borrows its index
// arrays straight out of one of these, so the image must stay alive —
// and its bytes stable — for as long as anything points into it. Callers
// hold it through a shared_ptr pinned by the borrowing structure.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace sparqluo {

/// An immutable in-memory image of a file. `mapped()` says whether the
/// bytes are a live mmap (shared page cache, lazily faulted) or an owned
/// heap copy (the portable fallback, also used when mmap is declined).
class FileImage {
 public:
  FileImage() = default;
  ~FileImage();

  FileImage(const FileImage&) = delete;
  FileImage& operator=(const FileImage&) = delete;

  /// Opens `path` read-only. With `allow_mmap`, tries mmap first and falls
  /// back to a buffered read on any mapping failure; without, reads the
  /// file into an owned buffer directly.
  static Result<std::shared_ptr<const FileImage>> Open(const std::string& path,
                                                       bool allow_mmap = true);

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool mapped() const { return mapped_; }

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  void* map_base_ = nullptr;        ///< munmap target when mapped_.
  std::vector<uint8_t> buffer_;     ///< Owned bytes when !mapped_.
};

}  // namespace sparqluo
