#include "util/string_util.h"

namespace sparqluo {

std::vector<std::string> SplitString(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view TrimString(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' || s[b] == '\n'))
    ++b;
  while (e > b &&
         (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
          s[e - 1] == '\n'))
    --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string EscapeLiteral(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

std::string UnescapeLiteral(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        default: out += s[i];
      }
    } else {
      out += s[i];
    }
  }
  return out;
}

}  // namespace sparqluo
