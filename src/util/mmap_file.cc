#include "util/mmap_file.h"

#include <cerrno>
#include <cstring>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#define SPARQLUO_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define SPARQLUO_HAS_MMAP 0
#endif

namespace sparqluo {

FileImage::~FileImage() {
#if SPARQLUO_HAS_MMAP
  if (map_base_ != nullptr) munmap(map_base_, size_);
#endif
}

Result<std::shared_ptr<const FileImage>> FileImage::Open(
    const std::string& path, bool allow_mmap) {
  auto image = std::make_shared<FileImage>();
#if SPARQLUO_HAS_MMAP
  if (allow_mmap) {
    int fd = open(path.c_str(), O_RDONLY);
    if (fd < 0) return Status::NotFound("cannot open: " + path);
    struct stat st;
    if (fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
      size_t size = static_cast<size_t>(st.st_size);
      if (size == 0) {
        // mmap rejects zero-length mappings; an empty file is a valid
        // (if always-invalid-to-parse) image.
        close(fd);
        return std::shared_ptr<const FileImage>(std::move(image));
      }
      void* base = mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      close(fd);  // The mapping keeps its own reference to the file.
      if (base != MAP_FAILED) {
        image->map_base_ = base;
        image->data_ = static_cast<const uint8_t*>(base);
        image->size_ = size;
        image->mapped_ = true;
        return std::shared_ptr<const FileImage>(std::move(image));
      }
      // Mapping failed (e.g. a filesystem without mmap support): fall
      // through to the buffered read below.
    } else {
      close(fd);
    }
  }
#else
  (void)allow_mmap;
#endif
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.is_open()) return Status::NotFound("cannot open: " + path);
  std::streamoff size = in.tellg();
  // Unseekable input (a FIFO, a device) reports -1; surface a Status
  // instead of resizing the buffer to (size_t)-1.
  if (size < 0) return Status::Internal("cannot determine size: " + path);
  in.seekg(0);
  image->buffer_.resize(static_cast<size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(image->buffer_.data()), size))
    return Status::Internal("read failed: " + path);
  image->data_ = image->buffer_.data();
  image->size_ = image->buffer_.size();
  return std::shared_ptr<const FileImage>(std::move(image));
}

}  // namespace sparqluo
