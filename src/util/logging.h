// Minimal leveled logging used across the library.
//
// Lines are written to stderr as
//   2026-08-07T12:34:56.789Z WARN [tid 140212...] message
// (UTC ISO-8601 timestamp with milliseconds, level, OS thread id). The
// threshold defaults to kWarn and can be overridden without code changes
// through the SPARQLUO_LOG_LEVEL environment variable (debug | info |
// warn | error | off, case-insensitive), read once at first use.
#pragma once

#include <sstream>
#include <string>

namespace sparqluo {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped. Default: kWarn,
/// unless the SPARQLUO_LOG_LEVEL environment variable names another level.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses a level name ("debug", "INFO", "warn", "error", "off");
/// returns `fallback` for anything unrecognized.
LogLevel ParseLogLevel(const std::string& name, LogLevel fallback);

namespace internal {
void LogMessage(LogLevel level, const std::string& msg);

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace sparqluo

#define SPARQLUO_LOG(level) \
  ::sparqluo::internal::LogStream(::sparqluo::LogLevel::level)
