// Minimal leveled logging used across the library.
#pragma once

#include <sstream>
#include <string>

namespace sparqluo {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped. Default: kWarn.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void LogMessage(LogLevel level, const std::string& msg);

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace sparqluo

#define SPARQLUO_LOG(level) \
  ::sparqluo::internal::LogStream(::sparqluo::LogLevel::level)
