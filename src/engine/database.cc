#include "engine/database.h"

#include <cassert>

#include "rdf/turtle.h"

#include "sparql/parser.h"

namespace sparqluo {

Database::Database()
    : dict_(std::make_shared<Dictionary>()),
      base_store_(std::make_shared<TripleStore>()) {}

void Database::AddTriple(const Term& s, const Term& p, const Term& o) {
  base_store_->Add(Triple(dict_->Encode(s), dict_->Encode(p), dict_->Encode(o)));
}

Status Database::LoadNTriplesFile(const std::string& path) {
  return sparqluo::LoadNTriplesFile(path, dict_.get(), base_store_.get());
}

Status Database::LoadNTriplesString(const std::string& text) {
  return sparqluo::ParseNTriplesString(text, dict_.get(), base_store_.get());
}

Status Database::LoadTurtleFile(const std::string& path) {
  return sparqluo::LoadTurtleFile(path, dict_.get(), base_store_.get());
}

Status Database::LoadTurtleString(const std::string& text) {
  return sparqluo::ParseTurtleString(text, dict_.get(), base_store_.get());
}

void Database::Finalize(EngineKind kind, ExecutorPool* pool) {
  if (finalized()) return;
  if (!base_store_->built()) base_store_->Build(pool);
  versions_ = std::make_unique<VersionedStore>(
      dict_, std::shared_ptr<const TripleStore>(base_store_), kind, pool,
      std::move(loaded_stats_));
  loaded_stats_.reset();
}

void Database::AdoptStatistics(Statistics stats) {
  assert(!finalized() && "AdoptStatistics after Finalize");
  loaded_stats_ = std::move(stats);
}

Result<BindingSet> Database::Query(const std::string& text,
                                   const ExecOptions& options,
                                   ExecMetrics* metrics) const {
  if (!finalized())
    return Status::Internal("Database::Finalize() must be called first");
  // Pin the version for the whole parse + execute: a commit that lands
  // mid-query cannot swap the store underneath us.
  std::shared_ptr<const DatabaseVersion> snap = versions_->Current();
  auto query = ParseQuery(text);
  if (!query.ok()) return query.status();
  return snap->executor->Execute(*query, options, metrics);
}

Result<Query> Database::Parse(const std::string& text) const {
  return ParseQuery(text);
}

std::shared_ptr<const DatabaseVersion> Database::Snapshot() const {
  return finalized() ? versions_->Current() : nullptr;
}

Result<CommitStats> Database::Update(const std::string& update_text) {
  auto batch = ParseUpdate(update_text);
  if (!batch.ok()) return batch.status();
  return Apply(*batch);
}

Result<CommitStats> Database::Apply(const UpdateBatch& batch) {
  if (!finalized())
    return Status::Internal("Database::Finalize() must be called first");
  return versions_->Apply(batch);
}

Status Database::Stage(const UpdateBatch& batch) {
  if (!finalized())
    return Status::Internal("Database::Finalize() must be called first");
  versions_->Stage(batch);
  return Status::OK();
}

Result<CommitStats> Database::Commit() {
  if (!finalized())
    return Status::Internal("Database::Finalize() must be called first");
  return versions_->Commit();
}

uint64_t Database::version() const {
  return finalized() ? versions_->version() : 0;
}

const TripleStore& Database::store() const {
  return finalized() ? *versions_->Current()->store : *base_store_;
}

const Statistics& Database::stats() const {
  return versions_->Current()->stats;
}

const BgpEngine& Database::engine() const {
  return *versions_->Current()->engine;
}

const Executor& Database::executor() const {
  return *versions_->Current()->executor;
}

}  // namespace sparqluo
