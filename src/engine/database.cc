#include "engine/database.h"

#include "rdf/turtle.h"

#include "sparql/parser.h"

namespace sparqluo {

void Database::AddTriple(const Term& s, const Term& p, const Term& o) {
  store_.Add(Triple(dict_.Encode(s), dict_.Encode(p), dict_.Encode(o)));
}

Status Database::LoadNTriplesFile(const std::string& path) {
  return sparqluo::LoadNTriplesFile(path, &dict_, &store_);
}

Status Database::LoadNTriplesString(const std::string& text) {
  return sparqluo::ParseNTriplesString(text, &dict_, &store_);
}

Status Database::LoadTurtleFile(const std::string& path) {
  return sparqluo::LoadTurtleFile(path, &dict_, &store_);
}

Status Database::LoadTurtleString(const std::string& text) {
  return sparqluo::ParseTurtleString(text, &dict_, &store_);
}

void Database::Finalize(EngineKind kind) {
  if (!store_.built()) store_.Build();
  stats_ = Statistics::Compute(store_, dict_);
  engine_ = MakeEngine(kind, store_, dict_, stats_);
  executor_ = std::make_unique<Executor>(*engine_, dict_, store_);
}

Result<BindingSet> Database::Query(const std::string& text,
                                   const ExecOptions& options,
                                   ExecMetrics* metrics) const {
  if (!finalized())
    return Status::Internal("Database::Finalize() must be called first");
  auto query = ParseQuery(text);
  if (!query.ok()) return query.status();
  return executor_->Execute(*query, options, metrics);
}

Result<Query> Database::Parse(const std::string& text) const {
  return ParseQuery(text);
}

}  // namespace sparqluo
