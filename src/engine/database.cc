#include "engine/database.h"

#include <cassert>

#include "rdf/turtle.h"

#include "sparql/parser.h"

namespace sparqluo {

namespace {

/// Resolves a template slot under solution `r`; false when the slot's
/// variable is unbound (the solution then produces no triple for this
/// template, mirroring CONSTRUCT).
bool ResolveSlot(const PatternSlot& slot, const BindingSet& rows, size_t r,
                 const Dictionary& dict, Term* out) {
  if (!slot.is_var) {
    *out = slot.term;
    return true;
  }
  TermId id = rows.Value(r, slot.var);
  if (id == kUnboundTerm) return false;
  *out = dict.Decode(id);
  return true;
}

/// Instantiates one pattern update against a pinned version: evaluates the
/// WHERE group sequentially on that version's executor, then expands every
/// delete template before every insert template (SPARQL 1.1 Update: all
/// deletes of an operation happen before its inserts). Unbound template
/// variables and ill-formed triples are skipped, not errors.
Result<UpdateBatch> InstantiatePatternUpdate(const UpdateCommand& cmd,
                                             const DatabaseVersion& version) {
  Query q;
  q.vars = cmd.vars;
  q.where = cmd.pattern.where;
  Result<BindingSet> rows = version.executor->Execute(q, ExecOptions::Full());
  if (!rows.ok()) return rows.status();
  const Dictionary& dict = *version.dict;
  UpdateBatch batch;
  auto expand = [&](const std::vector<TriplePattern>& templates,
                    UpdateOp::Kind kind) {
    for (size_t r = 0; r < rows->size(); ++r) {
      for (const TriplePattern& t : templates) {
        Term s, p, o;
        if (!ResolveSlot(t.s, *rows, r, dict, &s) ||
            !ResolveSlot(t.p, *rows, r, dict, &p) ||
            !ResolveSlot(t.o, *rows, r, dict, &o))
          continue;
        if (s.is_literal() || !p.is_iri()) continue;
        if (kind == UpdateOp::Kind::kDelete)
          batch.Delete(std::move(s), std::move(p), std::move(o));
        else
          batch.Insert(std::move(s), std::move(p), std::move(o));
      }
    }
  };
  expand(cmd.pattern.delete_templates, UpdateOp::Kind::kDelete);
  expand(cmd.pattern.insert_templates, UpdateOp::Kind::kInsert);
  return batch;
}

}  // namespace

Database::Database()
    : dict_(std::make_shared<Dictionary>()),
      base_store_(std::make_shared<TripleStore>()) {}

void Database::AddTriple(const Term& s, const Term& p, const Term& o) {
  base_store_->Add(Triple(dict_->Encode(s), dict_->Encode(p), dict_->Encode(o)));
}

Status Database::LoadNTriplesFile(const std::string& path) {
  return sparqluo::LoadNTriplesFile(path, dict_.get(), base_store_.get());
}

Status Database::LoadNTriplesString(const std::string& text) {
  return sparqluo::ParseNTriplesString(text, dict_.get(), base_store_.get());
}

Status Database::LoadTurtleFile(const std::string& path) {
  return sparqluo::LoadTurtleFile(path, dict_.get(), base_store_.get());
}

Status Database::LoadTurtleString(const std::string& text) {
  return sparqluo::ParseTurtleString(text, dict_.get(), base_store_.get());
}

void Database::Finalize(EngineKind kind, ExecutorPool* pool) {
  if (finalized()) return;
  if (!base_store_->built()) base_store_->Build(pool);
  versions_ = std::make_unique<VersionedStore>(
      dict_, std::shared_ptr<const TripleStore>(base_store_), kind, pool,
      std::move(loaded_stats_));
  loaded_stats_.reset();
}

void Database::AdoptStatistics(Statistics stats) {
  assert(!finalized() && "AdoptStatistics after Finalize");
  loaded_stats_ = std::move(stats);
}

Result<BindingSet> Database::Query(const std::string& text,
                                   const ExecOptions& options,
                                   ExecMetrics* metrics) const {
  if (!finalized())
    return Status::Internal("Database::Finalize() must be called first");
  // Pin the version for the whole parse + execute: a commit that lands
  // mid-query cannot swap the store underneath us.
  std::shared_ptr<const DatabaseVersion> snap = versions_->Current();
  auto query = ParseQuery(text);
  if (!query.ok()) return query.status();
  return snap->executor->Execute(*query, options, metrics);
}

Result<Query> Database::Parse(const std::string& text) const {
  return ParseQuery(text);
}

std::shared_ptr<const DatabaseVersion> Database::Snapshot() const {
  return finalized() ? versions_->Current() : nullptr;
}

Result<CommitStats> Database::Update(const std::string& update_text) {
  if (!UpdateTextHasPatternOp(update_text)) {
    // DATA-only scripts keep the original one-batch/one-commit path.
    auto batch = ParseUpdate(update_text);
    if (!batch.ok()) return batch.status();
    return Apply(*batch);
  }
  if (!finalized())
    return Status::Internal("Database::Finalize() must be called first");
  auto commands = ParseUpdateScript(update_text);
  if (!commands.ok()) return commands.status();
  // Each command commits as its own version, so later commands see earlier
  // commands' effects (SPARQL 1.1 Update sequence semantics).
  CommitStats last;
  last.version = versions_->version();
  last.store_size = versions_->Current()->store->size();
  for (const UpdateCommand& cmd : *commands) {
    if (!cmd.is_pattern) {
      auto stats = versions_->Apply(cmd.data);
      if (!stats.ok()) return stats.status();
      last = *stats;
      continue;
    }
    auto stats = versions_->ApplyWith([&cmd](const DatabaseVersion& v) {
      return InstantiatePatternUpdate(cmd, v);
    });
    if (!stats.ok()) return stats.status();
    last = *stats;
  }
  return last;
}

Result<CommitStats> Database::Apply(const UpdateBatch& batch) {
  if (!finalized())
    return Status::Internal("Database::Finalize() must be called first");
  return versions_->Apply(batch);
}

Status Database::Stage(const UpdateBatch& batch) {
  if (!finalized())
    return Status::Internal("Database::Finalize() must be called first");
  versions_->Stage(batch);
  return Status::OK();
}

Result<CommitStats> Database::Commit() {
  if (!finalized())
    return Status::Internal("Database::Finalize() must be called first");
  return versions_->Commit();
}

Result<WalRecoveryInfo> Database::OpenWal(const std::string& dir,
                                          const Wal::Options& options) {
  if (!finalized())
    return Status::Internal("Database::Finalize() must be called first");
  SPARQLUO_ASSIGN_OR_RETURN(std::unique_ptr<Wal> wal, Wal::Open(dir, options));
  return versions_->AttachWal(std::move(wal));
}

Wal* Database::wal() const {
  return finalized() ? versions_->wal() : nullptr;
}

uint64_t Database::AddCommitListener(
    std::function<void(uint64_t)> listener) const {
  return versions_->AddCommitListener(std::move(listener));
}

void Database::RemoveCommitListener(uint64_t id) const {
  versions_->RemoveCommitListener(id);
}

uint64_t Database::version() const {
  return finalized() ? versions_->version() : 0;
}

const TripleStore& Database::store() const {
  return finalized() ? *versions_->Current()->store : *base_store_;
}

const Statistics& Database::stats() const {
  return versions_->Current()->stats;
}

const BgpEngine& Database::engine() const {
  return *versions_->Current()->engine;
}

const Executor& Database::executor() const {
  return *versions_->Current()->executor;
}

}  // namespace sparqluo
