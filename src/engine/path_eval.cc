#include "engine/path_eval.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace sparqluo {

namespace {

/// Start nodes per parallel morsel. One start costs a whole BFS, so morsels
/// are much smaller than the row-level morsel size used by the BGP engines.
constexpr size_t kPathMorselStarts = 64;

/// Applies path sub-expressions one step at a time against the CSR indexes.
/// One instance per worker: the predicate-id cache is not synchronised.
class PathStepper {
 public:
  PathStepper(const TripleStore& store, const Dictionary& dict,
              const CancelToken* cancel)
      : store_(store), dict_(dict), chk_(cancel) {}

  /// Every node reachable from `start` through the closure `p` (root kind
  /// kStar or kPlus), sorted ascending. kStar includes `start` itself;
  /// kPlus includes it only when a cycle leads back.
  std::vector<TermId> Closure(TermId start, const PathExpr& p, bool forward) {
    const PathExpr& inner = p.children[0];
    std::unordered_set<TermId> seen;
    std::vector<TermId> frontier;
    auto visit = [&](TermId y) {
      if (seen.insert(y).second) frontier.push_back(y);
    };
    if (p.kind == PathExpr::Kind::kStar) {
      visit(start);
    } else {
      Step(start, inner, forward, visit);
    }
    std::vector<TermId> current;
    while (!frontier.empty()) {
      chk_.Poll();
      current.swap(frontier);
      frontier.clear();
      for (TermId x : current) Step(x, inner, forward, visit);
    }
    std::vector<TermId> out(seen.begin(), seen.end());
    std::sort(out.begin(), out.end());
    return out;
  }

  /// True iff `target` is reachable from `start` through the closure `p`.
  /// Early-exits as soon as the target enters the frontier.
  bool Reaches(TermId start, TermId target, const PathExpr& p) {
    if (p.kind == PathExpr::Kind::kStar && start == target) return true;
    const PathExpr& inner = p.children[0];
    std::unordered_set<TermId> seen;
    std::vector<TermId> frontier;
    bool found = false;
    auto visit = [&](TermId y) {
      if (y == target) found = true;
      if (seen.insert(y).second) frontier.push_back(y);
    };
    Step(start, inner, true, visit);
    std::vector<TermId> current;
    while (!found && !frontier.empty()) {
      chk_.Poll();
      current.swap(frontier);
      frontier.clear();
      for (TermId x : current) {
        Step(x, inner, true, visit);
        if (found) break;
      }
    }
    return found;
  }

 private:
  /// One application of `e` from node `x`. Forward emits every y with
  /// (x, e, y); backward emits every y with (y, e, x). Duplicates may be
  /// emitted — callers dedup through their visited set.
  void Step(TermId x, const PathExpr& e, bool forward,
            const std::function<void(TermId)>& emit) {
    switch (e.kind) {
      case PathExpr::Kind::kLink: {
        TermId pid = PredicateId(e);
        if (pid == kInvalidTermId) return;
        if (forward) {
          store_.Scan(TriplePatternIds{x, pid, kInvalidTermId},
                      [&](const Triple& t) {
                        emit(t.o);
                        return true;
                      });
        } else {
          store_.Scan(TriplePatternIds{kInvalidTermId, pid, x},
                      [&](const Triple& t) {
                        emit(t.s);
                        return true;
                      });
        }
        return;
      }
      case PathExpr::Kind::kSeq: {
        // Fold the elements left to right (right to left when walking
        // backward), carrying the set of intermediate nodes.
        std::vector<TermId> current{x};
        std::unordered_set<TermId> next;
        size_t n = e.children.size();
        for (size_t i = 0; i < n; ++i) {
          const PathExpr& c = e.children[forward ? i : n - 1 - i];
          next.clear();
          for (TermId node : current)
            Step(node, c, forward, [&](TermId y) { next.insert(y); });
          if (next.empty()) return;
          current.assign(next.begin(), next.end());
        }
        for (TermId y : current) emit(y);
        return;
      }
      case PathExpr::Kind::kAlt:
        for (const PathExpr& c : e.children) Step(x, c, forward, emit);
        return;
      case PathExpr::Kind::kStar:
      case PathExpr::Kind::kPlus:
        // Nested closure: a full inner reachability expansion is one step.
        for (TermId y : Closure(x, e, forward)) emit(y);
        return;
    }
  }

  /// Dictionary id of a link's predicate; kInvalidTermId when the IRI does
  /// not occur in the data (the link then matches nothing). Cached per
  /// expression node — node addresses are stable during evaluation.
  TermId PredicateId(const PathExpr& e) {
    auto it = pred_ids_.find(&e);
    if (it != pred_ids_.end()) return it->second;
    TermId id = dict_.Lookup(e.iri);
    pred_ids_.emplace(&e, id);
    return id;
  }

  const TripleStore& store_;
  const Dictionary& dict_;
  CancelCheckpoint chk_;
  std::unordered_map<const PathExpr*, TermId> pred_ids_;
};

/// Distinct subject and object node ids of the store, ascending: the
/// candidate endpoints of a zero-or-more path with two free variables.
std::vector<TermId> GraphNodes(const TripleStore& store) {
  std::span<const TermId> subjects = store.DistinctFirsts(Perm::kSpo);
  std::span<const TermId> objects = store.DistinctFirsts(Perm::kOsp);
  std::vector<TermId> nodes;
  nodes.reserve(subjects.size() + objects.size());
  std::set_union(subjects.begin(), subjects.end(), objects.begin(),
                 objects.end(), std::back_inserter(nodes));
  return nodes;
}

/// Resolves a constant endpoint to its dictionary id; when the term is
/// absent from the data it is interned so zero-length `*` matches can still
/// bind it. Returns kInvalidTermId only when interning is unavailable.
TermId EndpointId(const Term& term, const Dictionary& dict,
                  Dictionary* intern) {
  TermId id = dict.Lookup(term);
  if (id != kInvalidTermId) return id;
  return intern != nullptr ? intern->Encode(term) : kInvalidTermId;
}

}  // namespace

BindingSet EvaluatePath(const PathPattern& pattern, const TripleStore& store,
                        const Dictionary& dict, Dictionary* intern,
                        const CancelToken* cancel,
                        const ParallelSpec& parallel) {
  const PathExpr& path = pattern.path;
  const bool s_var = pattern.subject.is_var;
  const bool o_var = pattern.object.is_var;
  const bool zero_len = path.kind == PathExpr::Kind::kStar;

  // --- Both endpoints constant: a single reachability probe. -------------
  if (!s_var && !o_var) {
    TermId s = dict.Lookup(pattern.subject.term);
    TermId o = dict.Lookup(pattern.object.term);
    BindingSet out(std::vector<VarId>{});
    bool match;
    if (zero_len && pattern.subject.term == pattern.object.term) {
      match = true;  // zero-length path from a term to itself, in data or not
    } else if (s == kInvalidTermId || o == kInvalidTermId) {
      match = false;
    } else {
      PathStepper stepper(store, dict, cancel);
      match = stepper.Reaches(s, o, path);
    }
    if (match) out.AppendEmptyMappings(1);
    return out;
  }

  // --- One endpoint constant: one BFS, forward or backward. --------------
  if (s_var != o_var) {
    const bool forward = !s_var;  // subject bound => walk forward
    const PatternSlot& bound = forward ? pattern.subject : pattern.object;
    VarId free_var = forward ? pattern.object.var : pattern.subject.var;
    BindingSet out(std::vector<VarId>{free_var});
    TermId start = zero_len ? EndpointId(bound.term, dict, intern)
                            : dict.Lookup(bound.term);
    if (start == kInvalidTermId) return out;  // `+` from an absent term
    PathStepper stepper(store, dict, cancel);
    for (TermId end : stepper.Closure(start, path, forward))
      out.AppendRow({end});
    return out;
  }

  // --- Both endpoints variables: one forward BFS per graph node. ---------
  const bool same_var = pattern.subject.var == pattern.object.var;
  std::vector<VarId> schema =
      same_var ? std::vector<VarId>{pattern.subject.var}
               : std::vector<VarId>{pattern.subject.var, pattern.object.var};
  std::vector<TermId> starts = GraphNodes(store);

  auto eval_morsel = [&](size_t begin, size_t end, BindingSet* out) {
    PathStepper stepper(store, dict, cancel);
    for (size_t i = begin; i < end; ++i) {
      TermId s = starts[i];
      std::vector<TermId> ends = stepper.Closure(s, path, /*forward=*/true);
      if (same_var) {
        if (std::binary_search(ends.begin(), ends.end(), s))
          out->AppendRow({s});
      } else {
        for (TermId e : ends) out->AppendRow({s, e});
      }
    }
  };

  size_t morsels =
      (starts.size() + kPathMorselStarts - 1) / kPathMorselStarts;
  BindingSet result(schema);
  if (parallel.enabled() && morsels > 1) {
    std::vector<BindingSet> partial(morsels, BindingSet(schema));
    parallel.pool->ParallelFor(morsels, parallel.EffectiveWorkers(),
                               [&](size_t m) {
                                 size_t begin = m * kPathMorselStarts;
                                 size_t end = std::min(
                                     begin + kPathMorselStarts, starts.size());
                                 eval_morsel(begin, end, &partial[m]);
                               });
    // Morsel-order concatenation reproduces the sequential row order.
    for (BindingSet& p : partial) result.Append(p);
  } else {
    eval_morsel(0, starts.size(), &result);
  }
  return result;
}

}  // namespace sparqluo
