#include "engine/result_writer.h"

#include <ostream>
#include <sstream>

#include "sparql/result_writer.h"
#include "util/string_util.h"

namespace sparqluo {

namespace {

/// CSV field escaping: quote when the value contains comma, quote or
/// newline; double embedded quotes.
void WriteCsvField(const std::string& value, std::ostream& out) {
  bool needs_quoting = value.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) {
    out << value;
    return;
  }
  out << '"';
  for (char c : value) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

/// CSV plain rendering: IRIs and literal values bare, blanks as _:label.
std::string CsvValue(const Term& term) {
  switch (term.kind) {
    case TermKind::kIri: return term.lexical;
    case TermKind::kLiteral: return term.lexical;
    case TermKind::kBlank: return "_:" + term.lexical;
  }
  return "";
}

/// Adapts an ostream to the streaming writer's Sink interface.
StreamingResultWriter::Sink OstreamSink(std::ostream& out) {
  return [&out](std::string_view piece) {
    out.write(piece.data(), static_cast<std::streamsize>(piece.size()));
    return true;  // preserve the historical "best effort" ostream behavior
  };
}

}  // namespace

void WriteCsv(const BindingSet& rows, const VarTable& vars,
              const Dictionary& dict, std::ostream& out) {
  for (size_t c = 0; c < rows.schema().size(); ++c) {
    if (c > 0) out << ',';
    out << vars.Name(rows.schema()[c]);
  }
  out << "\r\n";
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < rows.width(); ++c) {
      if (c > 0) out << ',';
      TermId id = rows.At(r, c);
      if (id != kUnboundTerm) WriteCsvField(CsvValue(dict.Decode(id)), out);
    }
    out << "\r\n";
  }
}

// TSV and JSON delegate to the streaming writer in src/sparql/
// result_writer.h — the single serializer the HTTP endpoint also streams
// through, so in-process FormatResults output and over-the-wire bodies
// are bit-identical by construction.
void WriteTsv(const BindingSet& rows, const VarTable& vars,
              const Dictionary& dict, std::ostream& out) {
  StreamingResultWriter writer(WireFormat::kTsv, OstreamSink(out));
  writer.WriteAll(rows, vars, dict);
}

void WriteJson(const BindingSet& rows, const VarTable& vars,
               const Dictionary& dict, std::ostream& out) {
  StreamingResultWriter writer(WireFormat::kJson, OstreamSink(out));
  writer.WriteAll(rows, vars, dict);
}

void WriteNTriples(const BindingSet& rows, const VarTable& vars,
                   const Dictionary& dict, std::ostream& out) {
  StreamingResultWriter writer(WireFormat::kNTriples, OstreamSink(out));
  writer.WriteAll(rows, vars, dict);
}

std::string FormatResults(const BindingSet& rows, const VarTable& vars,
                          const Dictionary& dict, ResultFormat format) {
  std::ostringstream out;
  switch (format) {
    case ResultFormat::kCsv: WriteCsv(rows, vars, dict, out); break;
    case ResultFormat::kTsv: WriteTsv(rows, vars, dict, out); break;
    case ResultFormat::kJson: WriteJson(rows, vars, dict, out); break;
    case ResultFormat::kNTriples: WriteNTriples(rows, vars, dict, out); break;
  }
  return out.str();
}

}  // namespace sparqluo
