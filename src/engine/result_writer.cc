#include "engine/result_writer.h"

#include <ostream>
#include <sstream>

#include "util/string_util.h"

namespace sparqluo {

namespace {

/// CSV field escaping: quote when the value contains comma, quote or
/// newline; double embedded quotes.
void WriteCsvField(const std::string& value, std::ostream& out) {
  bool needs_quoting = value.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) {
    out << value;
    return;
  }
  out << '"';
  for (char c : value) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

/// CSV plain rendering: IRIs and literal values bare, blanks as _:label.
std::string CsvValue(const Term& term) {
  switch (term.kind) {
    case TermKind::kIri: return term.lexical;
    case TermKind::kLiteral: return term.lexical;
    case TermKind::kBlank: return "_:" + term.lexical;
  }
  return "";
}

void WriteJsonString(const std::string& s, std::ostream& out) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

void WriteCsv(const BindingSet& rows, const VarTable& vars,
              const Dictionary& dict, std::ostream& out) {
  for (size_t c = 0; c < rows.schema().size(); ++c) {
    if (c > 0) out << ',';
    out << vars.Name(rows.schema()[c]);
  }
  out << "\r\n";
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < rows.width(); ++c) {
      if (c > 0) out << ',';
      TermId id = rows.At(r, c);
      if (id != kUnboundTerm) WriteCsvField(CsvValue(dict.Decode(id)), out);
    }
    out << "\r\n";
  }
}

void WriteTsv(const BindingSet& rows, const VarTable& vars,
              const Dictionary& dict, std::ostream& out) {
  for (size_t c = 0; c < rows.schema().size(); ++c) {
    if (c > 0) out << '\t';
    out << '?' << vars.Name(rows.schema()[c]);
  }
  out << '\n';
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < rows.width(); ++c) {
      if (c > 0) out << '\t';
      TermId id = rows.At(r, c);
      if (id != kUnboundTerm) out << dict.Decode(id).ToString();
    }
    out << '\n';
  }
}

void WriteJson(const BindingSet& rows, const VarTable& vars,
               const Dictionary& dict, std::ostream& out) {
  out << "{\"head\":{\"vars\":[";
  for (size_t c = 0; c < rows.schema().size(); ++c) {
    if (c > 0) out << ',';
    WriteJsonString(vars.Name(rows.schema()[c]), out);
  }
  out << "]},\"results\":{\"bindings\":[";
  for (size_t r = 0; r < rows.size(); ++r) {
    if (r > 0) out << ',';
    out << '{';
    bool first = true;
    for (size_t c = 0; c < rows.width(); ++c) {
      TermId id = rows.At(r, c);
      if (id == kUnboundTerm) continue;  // unbound vars are omitted
      if (!first) out << ',';
      first = false;
      const Term& term = dict.Decode(id);
      WriteJsonString(vars.Name(rows.schema()[c]), out);
      out << ":{\"type\":";
      switch (term.kind) {
        case TermKind::kIri: out << "\"uri\""; break;
        case TermKind::kLiteral: out << "\"literal\""; break;
        case TermKind::kBlank: out << "\"bnode\""; break;
      }
      out << ",\"value\":";
      WriteJsonString(term.lexical, out);
      if (term.is_literal() && !term.qualifier.empty()) {
        if (term.qualifier_is_lang) {
          out << ",\"xml:lang\":";
        } else {
          out << ",\"datatype\":";
        }
        WriteJsonString(term.qualifier, out);
      }
      out << '}';
    }
    out << '}';
  }
  out << "]}}";
}

std::string FormatResults(const BindingSet& rows, const VarTable& vars,
                          const Dictionary& dict, ResultFormat format) {
  std::ostringstream out;
  switch (format) {
    case ResultFormat::kCsv: WriteCsv(rows, vars, dict, out); break;
    case ResultFormat::kTsv: WriteTsv(rows, vars, dict, out); break;
    case ResultFormat::kJson: WriteJson(rows, vars, dict, out); break;
  }
  return out.str();
}

}  // namespace sparqluo
