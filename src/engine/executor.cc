#include "engine/executor.h"

#include <algorithm>

#include "algebra/operators.h"
#include "betree/builder.h"
#include "engine/aggregate.h"
#include "engine/path_eval.h"
#include "util/timer.h"

namespace sparqluo {

namespace {

/// Internal control-flow signal for the max_intermediate_rows guard; never
/// escapes this translation unit.
struct RowLimitExceeded {};

/// Result of evaluating one BE-tree node: the bindings plus the node's join
/// space JS (§7.1): BGP -> actual result size; AND/OPTIONAL -> product;
/// UNION -> sum.
struct EvalResult {
  BindingSet rows;
  double js = 1.0;
};

class TreeEvaluator {
 public:
  TreeEvaluator(const BgpEngine& engine, const Dictionary& dict,
                const TripleStore& store, Dictionary* intern,
                const ExecOptions& options, ExecMetrics* metrics)
      : engine_(engine), dict_(dict), store_(store), intern_(intern),
        options_(options), metrics_(metrics), chk_(options.cancel) {}

  /// Algorithm 1 over a group node. `inherited` is the modified algorithm's
  /// third argument `cand`: the caller's current bindings, used to prune
  /// this level's BGP children and forwarded to subtrees until this level
  /// produces bindings of its own (which is what lets the pruning effect of
  /// small results travel across levels, §6).
  EvalResult EvalGroup(const BeNode& group, const BindingSet* inherited) {
    EvalResult acc;
    acc.rows = BindingSet::Unit();
    acc.js = 1.0;
    bool first = true;
    auto cand_source = [&]() -> const BindingSet* {
      if (!options_.candidate_pruning) return nullptr;
      return first ? inherited : &acc.rows;
    };
    for (const auto& child : group.children) {
      chk_.Poll();
      switch (child->type) {
        case BeNode::Type::kBgp: {
          // §6: BGP children are pruned by the function's `cand` argument.
          BindingSet res =
              EvaluateBgp(child->bgp,
                          options_.candidate_pruning ? inherited : nullptr);
          acc.js *= static_cast<double>(std::max<size_t>(res.size(), 1));
          acc.rows = first ? std::move(res)
                           : Join(acc.rows, res, options_.cancel);
          break;
        }
        case BeNode::Type::kGroup: {
          EvalResult sub = EvalGroup(*child, cand_source());
          acc.js *= std::max(sub.js, 1.0);
          acc.rows = first ? std::move(sub.rows)
                           : Join(acc.rows, sub.rows, options_.cancel);
          break;
        }
        case BeNode::Type::kUnion: {
          BindingSet u;
          double js_sum = 0.0;
          bool ufirst = true;
          const BindingSet* cand = cand_source();
          for (const auto& branch : child->children) {
            EvalResult sub = EvalGroup(*branch, cand);
            js_sum += sub.js;
            u = ufirst ? std::move(sub.rows) : UnionBag(u, sub.rows);
            ufirst = false;
          }
          acc.js *= std::max(js_sum, 1.0);
          acc.rows = first ? std::move(u) : Join(acc.rows, u, options_.cancel);
          break;
        }
        case BeNode::Type::kOptional: {
          // An OPTIONAL's padding decision depends on its right side's
          // emptiness relative to the CURRENT base (acc). Forwarding the
          // caller's candidates when nothing has been evaluated yet (base =
          // unit bag) could prune away rows that must suppress padding, so
          // inherited candidates stop at a leading OPTIONAL.
          const BindingSet* cand =
              options_.candidate_pruning && !first ? &acc.rows : nullptr;
          EvalResult sub = EvalGroup(*child->children[0], cand);
          acc.js *= std::max(sub.js, 1.0);
          acc.rows = LeftOuterJoin(acc.rows, sub.rows, options_.cancel);
          break;
        }
        case BeNode::Type::kFilter: {
          acc.rows = ApplyFilter(acc.rows, child->filter, dict_);
          break;
        }
        case BeNode::Type::kPath: {
          // Closure paths are opaque to candidate pruning; their result
          // joins into the accumulator like a BGP child's.
          ScopedSpan path_span(options_.trace, "path", options_.trace_parent);
          ParallelSpec spec = options_.parallel;
          spec.trace = options_.trace;
          spec.trace_parent = path_span.id();
          BindingSet res = EvaluatePath(child->path, store_, dict_, intern_,
                                        options_.cancel, spec);
          path_span.Attr("rows", std::to_string(res.size()));
          acc.js *= static_cast<double>(std::max<size_t>(res.size(), 1));
          acc.rows = first ? std::move(res)
                           : Join(acc.rows, res, options_.cancel);
          break;
        }
      }
      first = false;
      if (acc.rows.size() > options_.max_intermediate_rows)
        throw RowLimitExceeded{};
    }
    return acc;
  }

 private:

  BindingSet EvaluateBgp(const Bgp& bgp, const BindingSet* cand_source) {
    CandidateMap cands;
    const CandidateMap* cands_ptr = nullptr;
    if (options_.candidate_pruning && cand_source != nullptr &&
        !cand_source->schema().empty() && !cand_source->empty()) {
      // Adaptive mode: the threshold is the estimated BGP result size,
      // floored by the dataset-size-based default — a small *estimated
      // result* does not mean the BGP is cheap to evaluate unpruned, so
      // the floor keeps pruning engaged for selective candidate sets
      // (§6's fallback rule).
      double fixed = options_.fixed_threshold_fraction *
                     static_cast<double>(store_.size());
      double threshold =
          options_.adaptive_threshold
              ? std::max(engine_.EstimateCardinality(bgp), fixed)
              : fixed;
      BuildCandidates(*cand_source, bgp, threshold, &cands);
      if (!cands.empty()) cands_ptr = &cands;
    }
    BgpEvalCounters counters;
    ScopedSpan bgp_span(options_.trace, "bgp", options_.trace_parent);
    ParallelSpec spec = options_.parallel;
    spec.trace = options_.trace;
    spec.trace_parent = bgp_span.id();
    BindingSet res =
        spec.enabled()
            ? engine_.ParallelEvaluate(bgp, cands_ptr, &counters,
                                       options_.cancel, spec)
            : engine_.Evaluate(bgp, cands_ptr, &counters, options_.cancel);
    bgp_span.Attr("patterns", std::to_string(bgp.triples.size()));
    bgp_span.Attr("rows", std::to_string(res.size()));
    bgp_span.Attr("pruned", cands_ptr != nullptr ? "true" : "false");
    // The engine that evaluated this BGP: under the adaptive engine the
    // per-BGP decision counters say which host engine was delegated to
    // (counters are fresh per BGP, so a nonzero count is this BGP's
    // choice); a fixed engine reports its own name.
    bgp_span.Attr("engine", counters.wco_evals + counters.hashjoin_evals > 0
                                ? (counters.wco_evals > 0 ? "gStore-WCO"
                                                          : "Jena-HashJoin")
                                : engine_.name());
    if (metrics_) metrics_->bgp.Merge(counters);
    return res;
  }

  /// Converts the current bindings into per-variable candidate sets for the
  /// variables shared with `bgp`. The threshold gates each variable's
  /// DISTINCT value count (a large binding table over few distinct values
  /// is still an excellent pruning source); collection aborts early once a
  /// set exceeds it. A variable left unbound by any mapping is
  /// unconstrained and gets no set.
  void BuildCandidates(const BindingSet& source, const Bgp& bgp,
                       double threshold, CandidateMap* out) const {
    std::vector<VarId> bgp_vars = bgp.Variables();
    for (VarId v : bgp_vars) {
      size_t col = source.ColumnOf(v);
      if (col == SIZE_MAX) continue;
      CandidateMap::Set values;
      bool usable = true;
      for (size_t r = 0; r < source.size(); ++r) {
        TermId val = source.At(r, col);
        if (val == kUnboundTerm ||
            static_cast<double>(values.size()) >= threshold) {
          usable = false;
          break;
        }
        values.insert(val);
      }
      if (usable) out->Set_(v, std::move(values));
    }
  }

  const BgpEngine& engine_;
  const Dictionary& dict_;
  const TripleStore& store_;
  Dictionary* intern_;
  const ExecOptions& options_;
  ExecMetrics* metrics_;
  CancelCheckpoint chk_;
};

}  // namespace

const char* AbortReasonName(AbortReason reason) {
  switch (reason) {
    case AbortReason::kNone: return "none";
    case AbortReason::kRowLimit: return "row-limit";
    case AbortReason::kDeadline: return "deadline";
    case AbortReason::kCancelled: return "cancelled";
  }
  return "unknown";
}

BeTree Executor::Plan(const Query& query, const ExecOptions& options,
                      ExecMetrics* metrics) const {
  Timer timer;
  ScopedSpan plan_span(options.trace, "plan", options.trace_parent);
  BeTree tree = BuildBeTree(query);
  if (options.tree_transform) {
    ScopedSpan transform_span(options.trace, "transform", plan_span.id());
    CostModel cost(engine_);
    TransformOptions topt;
    topt.skip_cp_equivalent_levels = options.candidate_pruning;
    TransformStats tstats;
    MultiLevelTransform(&tree, cost, topt, &tstats);
    transform_span.Attr("merges", std::to_string(tstats.merges));
    transform_span.Attr("injects", std::to_string(tstats.injects));
    if (metrics) metrics->transform = tstats;
  }
  if (metrics) metrics->transform_ms = timer.ElapsedMillis();
  return tree;
}

BindingSet Executor::EvaluateTree(const BeTree& tree, const ExecOptions& options,
                                  ExecMetrics* metrics) const {
  Timer timer;
  TreeEvaluator eval(engine_, dict_, store_, intern_, options, metrics);
  EvalResult res;
  try {
    res = eval.EvalGroup(*tree.root, nullptr);
  } catch (const RowLimitExceeded&) {
    if (metrics) {
      metrics->aborted = true;
      metrics->abort_reason = AbortReason::kRowLimit;
      metrics->exec_ms = timer.ElapsedMillis();
    }
    return BindingSet();
  } catch (const CancelledError& e) {
    if (metrics) {
      metrics->aborted = true;
      metrics->abort_reason =
          e.deadline ? AbortReason::kDeadline : AbortReason::kCancelled;
      metrics->exec_ms = timer.ElapsedMillis();
    }
    return BindingSet();
  }
  if (metrics) {
    metrics->exec_ms = timer.ElapsedMillis();
    metrics->join_space = res.js;
    metrics->result_rows = res.rows.size();
  }
  return std::move(res.rows);
}

BindingSet Executor::OrderRows(const BindingSet& rows,
                               const std::vector<OrderKey>& keys) const {
  if (rows.width() == 0) return rows;  // only empty mappings: order is moot
  std::vector<size_t> order(rows.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<size_t> cols;
  cols.reserve(keys.size());
  for (const OrderKey& k : keys) cols.push_back(rows.ColumnOf(k.var));
  std::stable_sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    for (size_t k = 0; k < keys.size(); ++k) {
      if (cols[k] == SIZE_MAX) continue;
      TermId vx = rows.At(x, cols[k]);
      TermId vy = rows.At(y, cols[k]);
      if (vx == vy) continue;
      int c;
      if (vx == kUnboundTerm) {
        c = -1;  // unbound < bound
      } else if (vy == kUnboundTerm) {
        c = 1;
      } else {
        c = CompareTermsForOrdering(dict_.Decode(vx), dict_.Decode(vy));
      }
      if (c == 0) continue;
      return keys[k].ascending ? c < 0 : c > 0;
    }
    return false;
  });
  BindingSet out(rows.schema());
  out.Reserve(rows.size());
  std::vector<TermId> row(rows.width());
  for (size_t i : order) {
    row.assign(rows.Row(i), rows.Row(i) + rows.width());
    out.AppendRow(row);
  }
  return out;
}

BindingSet Executor::Slice(const BindingSet& rows, size_t offset,
                           size_t limit) {
  BindingSet out(rows.schema());
  if (offset >= rows.size()) return out;
  size_t end = rows.size() - offset;
  if (limit != SIZE_MAX) end = std::min(end, limit);
  if (rows.width() == 0) {
    out.AppendEmptyMappings(end);
    return out;
  }
  std::vector<TermId> row(rows.width());
  for (size_t i = 0; i < end; ++i) {
    size_t r = offset + i;
    row.assign(rows.Row(r), rows.Row(r) + rows.width());
    out.AppendRow(row);
  }
  return out;
}

Result<BindingSet> Executor::Execute(const Query& query,
                                     const ExecOptions& options,
                                     ExecMetrics* metrics) const {
  ExecMetrics local;
  ExecMetrics* m = metrics != nullptr ? metrics : &local;
  BeTree tree = Plan(query, options, m);
  SPARQLUO_RETURN_NOT_OK(tree.Validate());
  return ExecutePlanned(query, tree, options, m);
}

Result<BindingSet> Executor::ExecutePlanned(const Query& query,
                                            const BeTree& tree,
                                            const ExecOptions& options,
                                            ExecMetrics* metrics) const {
  ExecMetrics local;
  ExecMetrics* m = metrics != nullptr ? metrics : &local;
  BindingSet rows;
  {
    ScopedSpan eval_span(options.trace, "eval", options.trace_parent);
    ExecOptions eval_options = options;
    eval_options.trace_parent = eval_span.id();
    rows = EvaluateTree(tree, eval_options, m);
    eval_span.Attr("rows", std::to_string(rows.size()));
    if (m->aborted) eval_span.Attr("aborted", AbortReasonName(m->abort_reason));
  }
  if (m->aborted) {
    switch (m->abort_reason) {
      case AbortReason::kDeadline:
        return Status::ResourceExhausted("query deadline exceeded");
      case AbortReason::kCancelled:
        return Status::ResourceExhausted("query cancelled");
      default:
        return Status::ResourceExhausted(
            "intermediate result exceeded max_intermediate_rows");
    }
  }
  if (!query.group_by.empty() || !query.aggregates.empty()) {
    ScopedSpan agg_span(options.trace, "aggregate", options.trace_parent);
    ParallelSpec spec = options.parallel;
    spec.trace = options.trace;
    spec.trace_parent = agg_span.id();
    try {
      Result<BindingSet> agg =
          EvaluateAggregates(rows, query, dict_, intern_, options.cancel, spec);
      if (!agg.ok()) return agg.status();
      rows = std::move(*agg);
    } catch (const CancelledError& e) {
      m->aborted = true;
      m->abort_reason =
          e.deadline ? AbortReason::kDeadline : AbortReason::kCancelled;
      return Status::ResourceExhausted(e.deadline ? "query deadline exceeded"
                                                  : "query cancelled");
    }
    agg_span.Attr("groups", std::to_string(rows.size()));
  }
  ScopedSpan serialize_span(options.trace, "serialize", options.trace_parent);
  if (query.form == QueryForm::kAsk) {
    // ASK reduces to solution existence: a zero-width bag holding one empty
    // mapping for "yes", none for "no".
    BindingSet ask;
    if (!rows.empty()) ask.AppendEmptyMappings(1);
    m->result_rows = ask.size();
    return ask;
  }
  if (!query.order_by.empty()) rows = OrderRows(rows, query.order_by);
  if (query.form == QueryForm::kConstruct) {
    // Solution modifiers apply to the WHERE solutions, then the template
    // instantiates per surviving solution.
    if (query.offset > 0 || query.limit != SIZE_MAX)
      rows = Slice(rows, query.offset, query.limit);
    Result<BindingSet> triples = ConstructTriples(query, rows);
    if (!triples.ok()) return triples.status();
    m->result_rows = triples->size();
    serialize_span.Attr("rows", std::to_string(triples->size()));
    return triples;
  }
  if (!query.projection.empty()) {
    rows = rows.Project(query.projection);
  } else {
    // SELECT *: hidden variables introduced by path desugaring (names
    // starting with '.') are implementation detail, not solutions.
    std::vector<VarId> visible;
    bool hidden = false;
    for (VarId v : rows.schema()) {
      const std::string& name = query.vars.Name(v);
      if (!name.empty() && name[0] == '.')
        hidden = true;
      else
        visible.push_back(v);
    }
    if (hidden) rows = rows.Project(visible);
  }
  if (query.distinct) rows = rows.Distinct();
  if (query.offset > 0 || query.limit != SIZE_MAX)
    rows = Slice(rows, query.offset, query.limit);
  m->result_rows = rows.size();
  serialize_span.Attr("rows", std::to_string(rows.size()));
  return rows;
}

Result<BindingSet> Executor::ConstructTriples(const Query& query,
                                              const BindingSet& rows) const {
  if (intern_ == nullptr)
    return Status::Internal("CONSTRUCT requires an interning dictionary");
  // Resolve template constants to dictionary ids once, up front.
  struct Slot {
    bool is_var;
    VarId var;
    TermId cid;
  };
  struct Template {
    Slot s, p, o;
  };
  auto resolve = [this](const PatternSlot& ps) {
    Slot slot;
    slot.is_var = ps.is_var;
    slot.var = ps.is_var ? ps.var : kInvalidVarId;
    slot.cid = ps.is_var ? kUnboundTerm : intern_->Encode(ps.term);
    return slot;
  };
  std::vector<Template> templates;
  templates.reserve(query.construct_template.size());
  for (const TriplePattern& t : query.construct_template)
    templates.push_back({resolve(t.s), resolve(t.p), resolve(t.o)});

  BindingSet out(std::vector<VarId>{query.construct_s, query.construct_p,
                                    query.construct_o});
  TripleSet seen;
  for (size_t r = 0; r < rows.size(); ++r) {
    for (const Template& t : templates) {
      TermId s = t.s.is_var ? rows.Value(r, t.s.var) : t.s.cid;
      TermId p = t.p.is_var ? rows.Value(r, t.p.var) : t.p.cid;
      TermId o = t.o.is_var ? rows.Value(r, t.o.var) : t.o.cid;
      // A solution that leaves a template variable unbound produces no
      // triple for this template, per SPARQL 1.1 §16.2.
      if (s == kUnboundTerm || p == kUnboundTerm || o == kUnboundTerm)
        continue;
      if (intern_->Decode(s).is_literal() || !intern_->Decode(p).is_iri())
        continue;  // ill-formed triple: skipped, not an error
      if (!seen.insert(Triple{s, p, o}).second) continue;
      out.AppendRow({s, p, o});
    }
  }
  return out;
}

}  // namespace sparqluo
