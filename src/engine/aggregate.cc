#include "engine/aggregate.h"

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace sparqluo {

namespace {

constexpr const char* kXsdInteger = "http://www.w3.org/2001/XMLSchema#integer";
constexpr const char* kXsdDecimal = "http://www.w3.org/2001/XMLSchema#decimal";
constexpr const char* kXsdDouble = "http://www.w3.org/2001/XMLSchema#double";
constexpr const char* kXsdFloat = "http://www.w3.org/2001/XMLSchema#float";

/// Fixed morsel size used by the sequential AND the parallel path, so both
/// merge the same partials in the same order.
constexpr size_t kAggMorsel = 1024;

/// True when `t` is a typed numeric literal whose lexical parses fully.
bool NumericValue(const Term& t, bool* is_int, double* value) {
  if (!t.is_literal() || t.qualifier_is_lang) return false;
  if (t.qualifier != kXsdInteger && t.qualifier != kXsdDecimal &&
      t.qualifier != kXsdDouble && t.qualifier != kXsdFloat)
    return false;
  const char* begin = t.lexical.c_str();
  char* end = nullptr;
  double v = std::strtod(begin, &end);
  if (end == begin || *end != '\0') return false;
  *is_int = t.qualifier == kXsdInteger;
  *value = v;
  return true;
}

/// Running state of one aggregate within one group.
struct AggAccum {
  uint64_t count = 0;        ///< Rows (COUNT *), bound (COUNT), numeric (AVG).
  bool all_int = true;       ///< Every numeric input so far was xsd:integer.
  bool numeric_ok = true;    ///< No non-numeric bound input seen (SUM/AVG).
  bool any = false;          ///< At least one numeric input seen.
  long long isum = 0;        ///< Exact sum while all_int holds.
  double dsum = 0.0;         ///< Floating sum (morsel-order deterministic).
  TermId best = kUnboundTerm;  ///< MIN/MAX champion (first seen wins ties).
  std::set<TermId> dset;     ///< DISTINCT input ids (ordered for finalize).
};

void AccumulateNumeric(AggAccum* a, const Term& t) {
  bool is_int = false;
  double v = 0.0;
  if (!NumericValue(t, &is_int, &v)) {
    a->numeric_ok = false;
    return;
  }
  a->any = true;
  ++a->count;
  a->all_int = a->all_int && is_int;
  if (is_int) a->isum += std::strtoll(t.lexical.c_str(), nullptr, 10);
  a->dsum += v;
}

void UpdateAccum(AggAccum* a, const AggregateSpec& s, TermId val,
                 const Dictionary& dict) {
  if (s.func == AggFunc::kCount && s.count_star) {
    ++a->count;
    return;
  }
  if (val == kUnboundTerm) return;  // aggregates range over bound values
  switch (s.func) {
    case AggFunc::kCount:
      if (s.distinct)
        a->dset.insert(val);
      else
        ++a->count;
      return;
    case AggFunc::kSum:
    case AggFunc::kAvg:
      if (s.distinct)
        a->dset.insert(val);  // numeric folding deferred to finalize
      else
        AccumulateNumeric(a, dict.Decode(val));
      return;
    case AggFunc::kMin:
    case AggFunc::kMax: {
      if (a->best == kUnboundTerm) {
        a->best = val;
        return;
      }
      int c = CompareTermsForOrdering(dict.Decode(val), dict.Decode(a->best));
      if ((s.func == AggFunc::kMin && c < 0) ||
          (s.func == AggFunc::kMax && c > 0))
        a->best = val;
      return;
    }
  }
}

/// Merges a later morsel's accumulator into an earlier one. Addition order
/// is fixed by morsel order, keeping floating sums deterministic.
void MergeAccum(AggAccum* a, const AggAccum& b, const AggregateSpec& s,
                const Dictionary& dict) {
  a->count += b.count;
  a->isum += b.isum;
  a->dsum += b.dsum;
  a->all_int = a->all_int && b.all_int;
  a->numeric_ok = a->numeric_ok && b.numeric_ok;
  a->any = a->any || b.any;
  if (b.best != kUnboundTerm) {
    if (a->best == kUnboundTerm) {
      a->best = b.best;
    } else {
      int c = CompareTermsForOrdering(dict.Decode(b.best),
                                      dict.Decode(a->best));
      if ((s.func == AggFunc::kMin && c < 0) ||
          (s.func == AggFunc::kMax && c > 0))
        a->best = b.best;
    }
  }
  a->dset.insert(b.dset.begin(), b.dset.end());
}

/// Hash-aggregation state of one morsel (or of the merged whole).
struct Partial {
  std::unordered_map<std::string, size_t> index;  ///< key bytes -> group idx
  std::vector<std::vector<TermId>> keys;          ///< first-occurrence order
  std::vector<std::vector<AggAccum>> groups;      ///< [group][spec]

  std::vector<AggAccum>* FindOrCreate(const std::vector<TermId>& key,
                                      size_t spec_count) {
    std::string bytes(reinterpret_cast<const char*>(key.data()),
                      key.size() * sizeof(TermId));
    auto [it, inserted] = index.emplace(std::move(bytes), keys.size());
    if (inserted) {
      keys.push_back(key);
      groups.emplace_back(spec_count);
    }
    return &groups[it->second];
  }
};

TermId Finalize(const AggAccum& frozen, const AggregateSpec& s,
                const Dictionary& dict, Dictionary* intern) {
  AggAccum a = frozen;
  if (s.distinct && (s.func == AggFunc::kSum || s.func == AggFunc::kAvg)) {
    // Fold the distinct ids in ascending TermId order: deterministic, and
    // identical no matter which morsels the duplicates landed in.
    for (TermId id : a.dset) AccumulateNumeric(&a, dict.Decode(id));
  }
  switch (s.func) {
    case AggFunc::kCount: {
      uint64_t n = s.distinct ? a.dset.size() : a.count;
      return intern->Encode(Term::TypedLiteral(std::to_string(n), kXsdInteger));
    }
    case AggFunc::kSum:
      if (!a.numeric_ok) return kUnboundTerm;
      if (!a.any)
        return intern->Encode(Term::TypedLiteral("0", kXsdInteger));
      if (a.all_int)
        return intern->Encode(
            Term::TypedLiteral(std::to_string(a.isum), kXsdInteger));
      return intern->Encode(
          Term::TypedLiteral(FormatDecimal(a.dsum), kXsdDecimal));
    case AggFunc::kAvg:
      if (!a.numeric_ok) return kUnboundTerm;
      if (!a.any)
        return intern->Encode(Term::TypedLiteral("0", kXsdInteger));
      return intern->Encode(Term::TypedLiteral(
          FormatDecimal(a.dsum / static_cast<double>(a.count)), kXsdDecimal));
    case AggFunc::kMin:
    case AggFunc::kMax:
      return a.best;
  }
  return kUnboundTerm;
}

}  // namespace

std::string FormatDecimal(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

Result<BindingSet> EvaluateAggregates(const BindingSet& rows,
                                      const Query& query,
                                      const Dictionary& dict,
                                      Dictionary* intern,
                                      const CancelToken* cancel,
                                      const ParallelSpec& parallel) {
  if (intern == nullptr)
    return Status::Internal(
        "aggregate evaluation requires an interning dictionary");

  const auto& specs = query.aggregates;
  std::vector<size_t> group_cols(query.group_by.size());
  for (size_t j = 0; j < query.group_by.size(); ++j)
    group_cols[j] = rows.ColumnOf(query.group_by[j]);
  std::vector<size_t> input_cols(specs.size(), SIZE_MAX);
  for (size_t i = 0; i < specs.size(); ++i)
    if (!specs[i].count_star) input_cols[i] = rows.ColumnOf(specs[i].input);

  auto eval_morsel = [&](size_t begin, size_t end, Partial* out) {
    CancelCheckpoint chk(cancel);
    std::vector<TermId> key(group_cols.size());
    for (size_t r = begin; r < end; ++r) {
      chk.Poll();
      for (size_t j = 0; j < group_cols.size(); ++j)
        key[j] =
            group_cols[j] == SIZE_MAX ? kUnboundTerm : rows.At(r, group_cols[j]);
      std::vector<AggAccum>* accums = out->FindOrCreate(key, specs.size());
      for (size_t i = 0; i < specs.size(); ++i) {
        TermId val = input_cols[i] == SIZE_MAX ? kUnboundTerm
                                               : rows.At(r, input_cols[i]);
        UpdateAccum(&(*accums)[i], specs[i], val, dict);
      }
    }
  };

  size_t n = rows.size();
  size_t morsels = (n + kAggMorsel - 1) / kAggMorsel;
  std::vector<Partial> partial(morsels);
  if (parallel.enabled() && morsels > 1) {
    parallel.pool->ParallelFor(morsels, parallel.EffectiveWorkers(),
                               [&](size_t m) {
                                 eval_morsel(m * kAggMorsel,
                                             std::min((m + 1) * kAggMorsel, n),
                                             &partial[m]);
                               });
  } else {
    for (size_t m = 0; m < morsels; ++m)
      eval_morsel(m * kAggMorsel, std::min((m + 1) * kAggMorsel, n),
                  &partial[m]);
  }

  // Merge partials in morsel order: global group order = first occurrence
  // in row order, exactly as a single sequential pass would produce.
  Partial global;
  for (Partial& p : partial) {
    for (size_t g = 0; g < p.keys.size(); ++g) {
      std::vector<AggAccum>* accums =
          global.FindOrCreate(p.keys[g], specs.size());
      for (size_t i = 0; i < specs.size(); ++i)
        MergeAccum(&(*accums)[i], p.groups[g][i], specs[i], dict);
    }
  }

  // With no GROUP BY clause the whole input forms one group, present even
  // when the input is empty (COUNT(*) over nothing is 0).
  if (query.group_by.empty() && global.keys.empty())
    global.FindOrCreate({}, specs.size());

  std::vector<VarId> schema = query.group_by;
  for (const AggregateSpec& s : specs) schema.push_back(s.output);
  BindingSet out(std::move(schema));
  for (size_t g = 0; g < global.keys.size(); ++g) {
    std::vector<TermId> row = global.keys[g];
    for (size_t i = 0; i < specs.size(); ++i)
      row.push_back(Finalize(global.groups[g][i], specs[i], dict, intern));
    out.AppendRow(row);
  }
  return out;
}

}  // namespace sparqluo
