// GROUP BY / aggregate evaluation (COUNT, SUM, MIN, MAX, AVG).
//
// Hash aggregation over the solution bag produced by pattern matching.
// Input rows are split into fixed-size morsels; each morsel builds a local
// hash table keyed by the GROUP BY columns, and the partials are merged in
// morsel order. The sequential path runs the *same* morsel decomposition
// and merge, so the parallel result — group order, sums, every cell — is
// bit-identical to the sequential one (floating-point additions happen in
// the same order either way).
//
// Group output order is first occurrence in row order. Semantics of the
// dialect (documented in docs/sparql_surface.md): aggregates range over the
// bound values of their input variable; COUNT(*) counts rows; SUM/AVG of a
// group containing a non-numeric bound value are unbound; SUM/AVG over no
// values are 0; MIN/MAX over no values are unbound.
#pragma once

#include "algebra/binding_set.h"
#include "rdf/dictionary.h"
#include "sparql/ast.h"
#include "util/cancellation.h"
#include "util/executor_pool.h"
#include "util/status.h"

namespace sparqluo {

/// Evaluates `query`'s GROUP BY / aggregate clause over `rows`. The result
/// schema is [group_by vars..., aggregate outputs...]; the projection step
/// downstream reorders to SELECT order. Computed terms (counts, sums) are
/// interned through `intern`, which must be non-null.
Result<BindingSet> EvaluateAggregates(const BindingSet& rows,
                                      const Query& query,
                                      const Dictionary& dict,
                                      Dictionary* intern,
                                      const CancelToken* cancel,
                                      const ParallelSpec& parallel);

/// Canonical lexical form used for computed xsd:decimal values ("%.12g").
/// Shared with the reference evaluator so both sides of the differential
/// harness format averages identically.
std::string FormatDecimal(double v);

}  // namespace sparqluo
