// Convenience facade bundling dictionary, store, statistics, engine and
// executor — the entry point examples and benchmarks use.
#pragma once

#include <memory>
#include <string>

#include "engine/executor.h"
#include "rdf/ntriples.h"
#include "rdf/statistics.h"

namespace sparqluo {

/// An in-memory RDF database with a SPARQL-UO front end.
///
/// Usage:
///   Database db;
///   db.AddTriple(...); or db.LoadNTriples*(...);
///   db.Finalize(EngineKind::kWco);
///   auto result = db.Query("SELECT * WHERE { ... }", ExecOptions::Full());
class Database {
 public:
  Database() = default;

  // Loading (before Finalize).
  void AddTriple(const Term& s, const Term& p, const Term& o);
  Status LoadNTriplesFile(const std::string& path);
  Status LoadNTriplesString(const std::string& text);
  Status LoadTurtleFile(const std::string& path);
  Status LoadTurtleString(const std::string& text);

  /// Builds indexes and statistics and instantiates the BGP engine.
  void Finalize(EngineKind kind = EngineKind::kWco);

  /// Parses and executes a query.
  Result<BindingSet> Query(const std::string& text,
                           const ExecOptions& options = ExecOptions::Full(),
                           ExecMetrics* metrics = nullptr) const;

  /// Parses a query without executing it (for planning / inspection).
  Result<sparqluo::Query> Parse(const std::string& text) const;

  // Accessors (valid after Finalize unless noted).
  Dictionary& dict() { return dict_; }
  const Dictionary& dict() const { return dict_; }
  TripleStore& store() { return store_; }
  const TripleStore& store() const { return store_; }
  const Statistics& stats() const { return stats_; }
  const BgpEngine& engine() const { return *engine_; }
  const Executor& executor() const { return *executor_; }
  bool finalized() const { return executor_ != nullptr; }
  size_t size() const { return store_.size(); }

 private:
  Dictionary dict_;
  TripleStore store_;
  Statistics stats_;
  std::unique_ptr<BgpEngine> engine_;
  std::unique_ptr<Executor> executor_;
};

}  // namespace sparqluo
