// Convenience facade bundling dictionary, versioned store, engine and
// executor — the entry point examples, benchmarks and the CLI use.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "engine/executor.h"
#include "rdf/ntriples.h"
#include "rdf/statistics.h"
#include "store/versioned_store.h"

namespace sparqluo {

class ExecutorPool;

/// An in-memory RDF database with a SPARQL-UO front end and a versioned,
/// snapshot-isolated write path.
///
/// Usage:
///   Database db;
///   db.AddTriple(...); or db.LoadNTriples*(...);
///   db.Finalize(EngineKind::kWco);              // publishes version 0
///   auto result = db.Query("SELECT * WHERE { ... }", ExecOptions::Full());
///   db.Update("INSERT DATA { <s> <p> <o> }");   // publishes version 1
///
/// After Finalize() the database is a chain of immutable versions
/// (src/store/versioned_store.h). Queries pin the current version for
/// their whole execution, so a concurrent Update() never changes a result
/// mid-flight; long-lived readers should hold Snapshot() explicitly.
///
/// Accessor caveat: the const accessors (store()/stats()/engine()/
/// executor()) resolve against the *current* version and the references
/// they return are only guaranteed stable until the next commit. Code that
/// runs concurrently with updates must pin a Snapshot() and read through
/// it. mutable_store() is the pre-Finalize staging store (which also backs
/// version 0) — it exists for loaders only.
class Database {
 public:
  Database();

  // Loading (before Finalize).
  void AddTriple(const Term& s, const Term& p, const Term& o);
  Status LoadNTriplesFile(const std::string& path);
  Status LoadNTriplesString(const std::string& text);
  Status LoadTurtleFile(const std::string& path);
  Status LoadTurtleString(const std::string& text);

  /// Builds indexes and statistics and publishes version 0. With a pool,
  /// the three CSR permutation indexes build in parallel, and later
  /// commits merge their permutations in parallel on the same pool (which
  /// must then outlive the database's last commit).
  ///
  /// Skips every rebuild the loader already paid for: a store whose CSR
  /// indexes were installed by TripleStore::AdoptCsr (the v2 snapshot
  /// path) is published as-is, and statistics stashed by AdoptStatistics
  /// are adopted for version 0 instead of recomputed.
  void Finalize(EngineKind kind = EngineKind::kWco,
                ExecutorPool* pool = nullptr);

  /// Installs statistics precomputed by a snapshot loader; the next
  /// Finalize() publishes version 0 with these instead of recomputing
  /// them from the store. Loader-only, before Finalize.
  void AdoptStatistics(Statistics stats);

  /// Parses and executes a query against the current committed version.
  Result<BindingSet> Query(const std::string& text,
                           const ExecOptions& options = ExecOptions::Full(),
                           ExecMetrics* metrics = nullptr) const;

  /// Parses a query without executing it (for planning / inspection).
  Result<sparqluo::Query> Parse(const std::string& text) const;

  // --- Versioned update API (valid after Finalize) -----------------------

  /// Pins the current committed version. Queries executed through the
  /// snapshot's executor are isolated from concurrent commits.
  std::shared_ptr<const DatabaseVersion> Snapshot() const;

  /// Parses `INSERT DATA` / `DELETE DATA` text and applies it as one
  /// committed batch. Thread-safe; writers are serialized.
  Result<CommitStats> Update(const std::string& update_text);

  /// Applies an already-built batch as one commit.
  Result<CommitStats> Apply(const UpdateBatch& batch);

  /// Stages a batch into the pending delta without committing. Staged data
  /// is invisible to queries until Commit().
  Status Stage(const UpdateBatch& batch);

  /// Publishes all staged batches as one new version.
  Result<CommitStats> Commit();

  /// Opens (creating if needed) the write-ahead log at `dir` and attaches
  /// it to the store: recovery replays every logged commit past the
  /// version the loaded snapshot checkpointed, then new commits start
  /// logging. Must run right after Finalize (version 0, nothing staged).
  /// Returns what recovery found; see src/store/wal.h and
  /// docs/durability.md.
  Result<WalRecoveryInfo> OpenWal(const std::string& dir,
                                  const Wal::Options& options = {});

  /// The attached write-ahead log, or null when none is open.
  Wal* wal() const;

  /// Registers a post-commit hook on the versioned store (valid after
  /// Finalize); see VersionedStore::AddCommitListener for the invocation
  /// contract. Const because listeners observe commits without mutating
  /// data — a read-side consumer (cache invalidation) registers against a
  /// database whose writes happen elsewhere.
  uint64_t AddCommitListener(std::function<void(uint64_t version)> listener) const;
  void RemoveCommitListener(uint64_t id) const;

  /// Current committed version id (0 right after Finalize).
  uint64_t version() const;

  // Accessors (valid after Finalize unless noted).
  Dictionary& dict() { return *dict_; }
  const Dictionary& dict() const { return *dict_; }
  /// Pre-Finalize staging store (version 0's storage) — loaders only; use
  /// the update API for post-Finalize writes.
  TripleStore& mutable_store() { return *base_store_; }
  /// The current committed version's store (the staging store before
  /// Finalize). See the accessor caveat in the class comment.
  const TripleStore& store() const;
  const Statistics& stats() const;
  const BgpEngine& engine() const;
  const Executor& executor() const;
  bool finalized() const { return versions_ != nullptr; }
  size_t size() const { return store().size(); }

 private:
  std::shared_ptr<Dictionary> dict_;
  std::shared_ptr<TripleStore> base_store_;   ///< Loading target; version 0.
  std::unique_ptr<VersionedStore> versions_;  ///< Null before Finalize.
  /// Stats handed over by a snapshot loader, consumed by Finalize().
  std::optional<Statistics> loaded_stats_;
};

}  // namespace sparqluo
