// Property-path closure evaluation (`*` / `+`) by iterative reachability
// over the CSR permutation indexes.
//
// Only the closure operators reach this layer: `/` and `|` are desugared by
// the parser into hidden-variable chains and UNION. A closure wraps an
// arbitrary nested path expression (link, sequence, alternative, or another
// closure), applied one step at a time by a BFS whose frontier expansion
// polls the cancel token.
//
// Determinism contract (the bit-identity discipline of the test suite):
// result rows are ordered by ascending start node, then ascending end node.
// The parallel path decomposes the start list into fixed-size morsels and
// concatenates per-morsel results in morsel order, which reproduces the
// sequential order bit for bit.
#pragma once

#include "algebra/binding_set.h"
#include "rdf/dictionary.h"
#include "rdf/triple_store.h"
#include "sparql/ast.h"
#include "util/cancellation.h"
#include "util/executor_pool.h"
#include "util/status.h"

namespace sparqluo {

/// Evaluates one `*`/`+` path pattern. Result schema:
///   - both endpoints variables (distinct): [subject_var, object_var]
///   - both endpoints the same variable:    [var] (start == end solutions)
///   - one endpoint constant:               [the variable endpoint]
///   - both endpoints constant:             zero-width (1 empty mapping per
///                                          match, i.e. 0 or 1)
///
/// `intern` is needed for zero-length `*` matches whose endpoint term is
/// not in the dictionary yet (e.g. `<absent> <p>* ?x` binds ?x to
/// <absent>); when null such rows are dropped.
BindingSet EvaluatePath(const PathPattern& pattern, const TripleStore& store,
                        const Dictionary& dict, Dictionary* intern,
                        const CancelToken* cancel,
                        const ParallelSpec& parallel);

}  // namespace sparqluo
