// Query-result serialization in the W3C SPARQL 1.1 results formats:
// CSV, TSV (https://www.w3.org/TR/sparql11-results-csv-tsv/) and the JSON
// results format (https://www.w3.org/TR/sparql11-results-json/).
#pragma once

#include <iosfwd>
#include <string>

#include "algebra/binding_set.h"

namespace sparqluo {

/// Writes `rows` as SPARQL 1.1 CSV: header of variable names, values in
/// plain form (IRIs bare, literals unquoted unless they need escaping),
/// unbound cells empty.
void WriteCsv(const BindingSet& rows, const VarTable& vars,
              const Dictionary& dict, std::ostream& out);

/// Writes `rows` as SPARQL 1.1 TSV: header of ?-prefixed variables, values
/// in their N-Triples surface form, unbound cells empty.
void WriteTsv(const BindingSet& rows, const VarTable& vars,
              const Dictionary& dict, std::ostream& out);

/// Writes `rows` in the SPARQL 1.1 JSON results format
/// ({"head":{"vars":[...]},"results":{"bindings":[...]}}).
void WriteJson(const BindingSet& rows, const VarTable& vars,
               const Dictionary& dict, std::ostream& out);

/// Writes `rows` as N-Triples statements, one per row (CONSTRUCT results:
/// three subject/predicate/object columns). No header; rows with unbound
/// cells render their bound cells only, like TSV.
void WriteNTriples(const BindingSet& rows, const VarTable& vars,
                   const Dictionary& dict, std::ostream& out);

/// Convenience: renders with the chosen writer into a string.
enum class ResultFormat { kCsv, kTsv, kJson, kNTriples };
std::string FormatResults(const BindingSet& rows, const VarTable& vars,
                          const Dictionary& dict, ResultFormat format);

}  // namespace sparqluo
