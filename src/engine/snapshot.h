// Binary database snapshots.
//
// Serializes a loaded (pre- or post-Finalize) database — dictionary and
// triples — to a compact binary file, so large generated datasets can be
// reloaded without re-running the generator or re-parsing N-Triples.
//
// Format sketch (little-endian; docs/snapshot_format.md is the full
// specification, including validation rules and versioning policy):
//   magic "SPQLUO1\n" | u64 term_count | terms | u64 triple_count | triples
//   term   := u8 kind | u8 qualifier_is_lang | u32 len lexical bytes
//             | u32 len qualifier bytes
//   triple := u32 s | u32 p | u32 o
#pragma once

#include <string>

#include "engine/database.h"
#include "util/status.h"

namespace sparqluo {

/// Writes the database's dictionary and triple set to `path`.
Status SaveSnapshot(const Database& db, const std::string& path);

/// Loads a snapshot into an empty database. The caller still runs
/// db->Finalize() afterwards to build indexes and pick an engine.
Status LoadSnapshot(const std::string& path, Database* db);

}  // namespace sparqluo
