// Binary database snapshots.
//
// Two on-disk formats (docs/snapshot_format.md is the full specification,
// including layout tables, validation rules and the versioning policy):
//
//   SPQLUO1 — data only: dictionary terms and raw (s, p, o) id records.
//     Loading streams the records back into the staging store; the caller
//     then pays a full Finalize() (dictionary interning + three CSR
//     permutation sorts) to rebuild the indexes.
//
//   SPQLUO2 — the finalized database: chunked dictionary, all three CSR
//     permutation indexes (level-1 directories, offset arrays, level-2
//     pair arrays) and Statistics, as 8-byte-aligned, individually
//     CRC-32-checksummed sections behind a table-of-contents header.
//     Loading mmaps the file (or falls back to one buffered read) and
//     points the store at the section views — zero per-triple work, so
//     the follow-up Finalize() only instantiates engine + executor.
//
// SaveSnapshot picks the format explicitly; LoadSnapshot dispatches on the
// magic, so both formats load through one entry point.
#pragma once

#include <cstdint>
#include <string>

#include "engine/database.h"
#include "util/fault_fs.h"
#include "util/status.h"

namespace sparqluo {

/// On-disk snapshot format. kV1 stays both readable and writable for
/// compatibility; kV2 is the mmap-friendly section format.
enum class SnapshotFormat : uint8_t { kV1 = 1, kV2 = 2 };

/// Load-time knobs (defaults are right for production use).
struct SnapshotLoadOptions {
  /// v2: mmap the file when possible; off forces the read-into-buffer
  /// fallback (useful for tests and for filesystems without mmap).
  bool allow_mmap = true;
  /// v2: verify the per-section CRC-32 checksums. Leaving this on costs
  /// one linear pass over the file — still far below a v1 rebuild — and
  /// is what turns silent corruption into a clean ParseError.
  bool verify_checksums = true;
};

/// What LoadSnapshot actually did (optional diagnostics out-param).
struct SnapshotLoadInfo {
  SnapshotFormat format = SnapshotFormat::kV1;
  bool mapped = false;       ///< v2 only: the file is mmap'd, not copied.
  uint64_t file_bytes = 0;
};

/// Writes the database to `path`. Both formats require built indexes
/// (Finalize() or a loaded v2 snapshot): kV1 iterates the SPO index to
/// emit plain records, kV2 serializes the indexes themselves. The save
/// pins the *current committed version* — making it the durable
/// checkpoint target for the updatable store — and publishes the file
/// atomically and durably: write-to-temporary, fsync the file, rename,
/// fsync the parent directory. A crash never leaves a torn snapshot,
/// re-saving over a currently mmap'd file is safe, and a published
/// snapshot survives power loss.
///
/// With a WAL attached to `db`, a successful save also checkpoints the
/// log: the saved version is recorded in the WAL directory's marker and
/// segments it fully covers are retired (docs/durability.md).
///
/// `ops` routes the durable-write syscalls (tests inject faults through
/// it); null uses the real filesystem.
Status SaveSnapshot(const Database& db, const std::string& path,
                    SnapshotFormat format = SnapshotFormat::kV1,
                    FileOps* ops = nullptr);

/// Loads a snapshot of either format into an empty database, dispatching
/// on the file magic. After a v1 load the caller runs db->Finalize() to
/// build indexes; after a v2 load Finalize() must still be called but
/// skips every rebuild (indexes and statistics are adopted from the
/// file). Errors name the failing section and byte offset.
Status LoadSnapshot(const std::string& path, Database* db,
                    const SnapshotLoadOptions& options = {},
                    SnapshotLoadInfo* info = nullptr);

}  // namespace sparqluo
