// SPARQL-UO query execution (Algorithm 1) with candidate pruning (§6).
//
// The four approaches evaluated in the paper map to ExecOptions:
//   base: tree_transform = false, candidate_pruning = false
//   TT:   tree_transform = true,  candidate_pruning = false
//   CP:   tree_transform = false, candidate_pruning = true  (fixed 1%)
//   full: tree_transform = true,  candidate_pruning = true  (adaptive)
#pragma once

#include "algebra/binding_set.h"
#include "betree/be_tree.h"
#include "bgp/engine.h"
#include "obs/trace.h"
#include "optimizer/transformer.h"
#include "sparql/ast.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace sparqluo {

struct ExecOptions {
  bool tree_transform = false;
  bool candidate_pruning = false;
  /// Fixed CP threshold as a fraction of the store's triple count
  /// (the paper's CP mode uses 1%).
  double fixed_threshold_fraction = 0.01;
  /// Adaptive threshold (full mode): prune only when the candidate bag is
  /// smaller than the estimated BGP result size.
  bool adaptive_threshold = false;
  /// Cooperative guard: evaluation aborts with ResourceExhausted once an
  /// intermediate binding table exceeds this many rows (the benchmark
  /// harness's stand-in for the paper's out-of-memory condition).
  size_t max_intermediate_rows = SIZE_MAX;
  /// Cooperative deadline/cancellation: evaluation polls this token at its
  /// checkpoints and aborts with ResourceExhausted when it fires. Not
  /// owned; may be null (no deadline). The query service points this at a
  /// per-request token to enforce deadlines.
  const CancelToken* cancel = nullptr;
  /// Query-lifecycle tracing (obs/trace.h). Null disables tracing — the
  /// hot path then performs only null-pointer checks, no allocation or
  /// clock reads. Execution-only: does not affect planning, so plans are
  /// shared between traced and untraced requests. Not owned.
  TraceContext* trace = nullptr;
  /// Span under which the executor records its plan/transform/eval/
  /// serialize children (TraceContext::kNoSpan roots them).
  TraceContext::SpanId trace_parent = TraceContext::kNoSpan;
  /// Intra-query parallelism (pool, worker cap, morsel size). When
  /// `parallel.enabled()` — a non-null pool and parallelism != 1 — BGP
  /// evaluation dispatches to the engine's morsel-driven ParallelEvaluate
  /// path, whose results are bit-identical to sequential execution. The
  /// pool is not owned; the query service points it at its own pool so
  /// inter- and intra-query work share one set of workers. Execution-only:
  /// does not affect planning, so plans cached at any parallelism are
  /// shared.
  ParallelSpec parallel;

  static ExecOptions Base() { return {}; }
  static ExecOptions TT() {
    ExecOptions o;
    o.tree_transform = true;
    return o;
  }
  static ExecOptions CP() {
    ExecOptions o;
    o.candidate_pruning = true;
    return o;
  }
  static ExecOptions Full() {
    ExecOptions o;
    o.tree_transform = true;
    o.candidate_pruning = true;
    o.adaptive_threshold = true;
    return o;
  }
  const char* Name() const {
    if (tree_transform && candidate_pruning) return "full";
    if (tree_transform) return "TT";
    if (candidate_pruning) return "CP";
    return "base";
  }
};

/// Why an evaluation was cut short.
enum class AbortReason {
  kNone = 0,
  kRowLimit,   ///< max_intermediate_rows exceeded.
  kDeadline,   ///< CancelToken deadline expired.
  kCancelled,  ///< CancelToken::RequestCancel.
};

const char* AbortReasonName(AbortReason reason);

/// Per-query instrumentation.
struct ExecMetrics {
  double transform_ms = 0.0;  ///< Time spent deciding/applying transformations.
  double exec_ms = 0.0;       ///< Evaluation time (Algorithm 1).
  double join_space = 0.0;    ///< JS metric (§7.1) from actual BGP result sizes.
  size_t result_rows = 0;
  bool aborted = false;       ///< True when any guard fired.
  AbortReason abort_reason = AbortReason::kNone;
  BgpEvalCounters bgp;
  TransformStats transform;
};

/// Evaluates queries against one store/engine pair.
class Executor {
 public:
  /// `intern` is a mutable handle to the SAME dictionary as `dict`, used to
  /// intern computed terms (aggregate results, CONSTRUCT constants,
  /// zero-length path endpoints). When null those features return an
  /// Internal error / drop the affected rows; plain SELECT/ASK evaluation
  /// is unaffected, so existing three-argument call sites keep working.
  Executor(const BgpEngine& engine, const Dictionary& dict,
           const TripleStore& store, Dictionary* intern = nullptr)
      : engine_(engine), dict_(dict), store_(store), intern_(intern) {}

  /// Parses nothing: takes a parsed query, builds + (optionally) transforms
  /// the BE-tree, evaluates it, applies projection/DISTINCT.
  Result<BindingSet> Execute(const Query& query, const ExecOptions& options,
                             ExecMetrics* metrics = nullptr) const;

  /// Executes a query against an already-planned (built + transformed)
  /// BE-tree, applying the query's solution modifiers. This is the
  /// plan-cache fast path: Execute == Plan + Validate + ExecutePlanned.
  Result<BindingSet> ExecutePlanned(const Query& query, const BeTree& tree,
                                    const ExecOptions& options,
                                    ExecMetrics* metrics = nullptr) const;

  /// Evaluates an already-built BE-tree (no transformation). Used by tests
  /// and by Execute after transformation.
  BindingSet EvaluateTree(const BeTree& tree, const ExecOptions& options,
                          ExecMetrics* metrics = nullptr) const;

  /// Builds and transforms the BE-tree per `options`, without evaluating.
  BeTree Plan(const Query& query, const ExecOptions& options,
              ExecMetrics* metrics = nullptr) const;

 private:
  /// ORDER BY: stable sort by the decoded term order of each key
  /// (unbound sorts first, per the SPARQL ordering of unbound < bound).
  BindingSet OrderRows(const BindingSet& rows,
                       const std::vector<OrderKey>& keys) const;

  /// OFFSET/LIMIT slice.
  static BindingSet Slice(const BindingSet& rows, size_t offset, size_t limit);

  /// CONSTRUCT instantiation: applies the template to every solution (in
  /// row order, template order within a row), drops rows with unbound
  /// template variables and ill-formed triples (literal subject, non-IRI
  /// predicate), and deduplicates keeping first occurrence. Returns a
  /// three-column BindingSet over the hidden construct_s/p/o variables.
  Result<BindingSet> ConstructTriples(const Query& query,
                                      const BindingSet& rows) const;

  const BgpEngine& engine_;
  const Dictionary& dict_;
  const TripleStore& store_;
  Dictionary* intern_;
};

}  // namespace sparqluo
