#include "engine/snapshot.h"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace sparqluo {

namespace {

constexpr char kMagic[8] = {'S', 'P', 'Q', 'L', 'U', 'O', '1', '\n'};

void WriteU32(std::ostream& out, uint32_t v) {
  char buf[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
                 static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out.write(buf, 4);
}
void WriteU64(std::ostream& out, uint64_t v) {
  WriteU32(out, static_cast<uint32_t>(v));
  WriteU32(out, static_cast<uint32_t>(v >> 32));
}
void WriteString(std::ostream& out, const std::string& s) {
  WriteU32(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadU32(std::istream& in, uint32_t* v) {
  unsigned char buf[4];
  if (!in.read(reinterpret_cast<char*>(buf), 4)) return false;
  *v = static_cast<uint32_t>(buf[0]) | static_cast<uint32_t>(buf[1]) << 8 |
       static_cast<uint32_t>(buf[2]) << 16 | static_cast<uint32_t>(buf[3]) << 24;
  return true;
}
bool ReadU64(std::istream& in, uint64_t* v) {
  uint32_t lo, hi;
  if (!ReadU32(in, &lo) || !ReadU32(in, &hi)) return false;
  *v = static_cast<uint64_t>(hi) << 32 | lo;
  return true;
}
bool ReadString(std::istream& in, std::string* s) {
  uint32_t len;
  if (!ReadU32(in, &len)) return false;
  // Sanity cap: no single term should exceed 16 MiB.
  if (len > (16u << 20)) return false;
  s->resize(len);
  return static_cast<bool>(in.read(s->data(), len));
}

}  // namespace

Status SaveSnapshot(const Database& db, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return Status::NotFound("cannot open for write: " + path);
  out.write(kMagic, sizeof(kMagic));

  const Dictionary& dict = db.dict();
  WriteU64(out, dict.size());
  for (TermId id = 0; id < dict.size(); ++id) {
    const Term& t = dict.Decode(id);
    out.put(static_cast<char>(t.kind));
    out.put(t.qualifier_is_lang ? 1 : 0);
    WriteString(out, t.lexical);
    WriteString(out, t.qualifier);
  }

  auto triples = db.store().triples();
  WriteU64(out, triples.size());
  for (const Triple& t : triples) {
    WriteU32(out, t.s);
    WriteU32(out, t.p);
    WriteU32(out, t.o);
  }
  out.flush();
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Status LoadSnapshot(const std::string& path, Database* db) {
  if (db->size() != 0 || db->dict().size() != 0)
    return Status::InvalidArgument("LoadSnapshot requires an empty database");
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("cannot open: " + path);
  char magic[8];
  if (!in.read(magic, 8) || std::memcmp(magic, kMagic, 8) != 0)
    return Status::ParseError("not a sparqluo snapshot: " + path);

  uint64_t term_count;
  if (!ReadU64(in, &term_count))
    return Status::ParseError("truncated snapshot header");
  // Ids are dense and assigned in order, so re-encoding reproduces them.
  for (uint64_t i = 0; i < term_count; ++i) {
    int kind = in.get();
    int is_lang = in.get();
    Term t;
    if (kind < 0 || kind > 2 || is_lang < 0)
      return Status::ParseError("corrupt term record");
    t.kind = static_cast<TermKind>(kind);
    t.qualifier_is_lang = is_lang != 0;
    if (!ReadString(in, &t.lexical) || !ReadString(in, &t.qualifier))
      return Status::ParseError("truncated term record");
    TermId id = db->dict().Encode(t);
    if (id != i) return Status::ParseError("duplicate term in snapshot");
  }

  uint64_t triple_count;
  if (!ReadU64(in, &triple_count))
    return Status::ParseError("truncated triple header");
  for (uint64_t i = 0; i < triple_count; ++i) {
    uint32_t s, p, o;
    if (!ReadU32(in, &s) || !ReadU32(in, &p) || !ReadU32(in, &o))
      return Status::ParseError("truncated triple record");
    if (s >= term_count || p >= term_count || o >= term_count)
      return Status::ParseError("triple references unknown term");
    db->mutable_store().Add(Triple(s, p, o));
  }
  return Status::OK();
}

}  // namespace sparqluo
