#include "engine/snapshot.h"

#include <fcntl.h>

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "rdf/term_codec.h"
#include "store/wal.h"
#include "util/binary_io.h"
#include "util/crc32.h"
#include "util/logging.h"
#include "util/mmap_file.h"
#include "util/timer.h"

namespace sparqluo {

namespace {

constexpr char kMagicV1[8] = {'S', 'P', 'Q', 'L', 'U', 'O', '1', '\n'};
constexpr char kMagicV2[8] = {'S', 'P', 'Q', 'L', 'U', 'O', '2', '\n'};

// Term records use the shared codec in rdf/term_codec.h (the committed
// golden v1 fixture pins its byte shape).

std::string Offset(size_t off) {
  return "offset " + std::to_string(off);
}

/// The store/statistics pair a save serializes. Post-Finalize this is one
/// pinned version — a writer committing concurrently can neither destroy
/// the store mid-save nor let the sections drift apart (v2 checkpoints of
/// a live updatable store depend on this). Pre-Finalize it is the staging
/// store with statistics computed on demand.
struct SaveSource {
  std::shared_ptr<const DatabaseVersion> pin;  ///< Null before Finalize.
  const TripleStore* store = nullptr;

  explicit SaveSource(const Database& db)
      : pin(db.Snapshot()), store(pin ? pin->store.get() : &db.store()) {}

  Statistics ComputeOrPinnedStats(const Dictionary& dict) const {
    return pin ? pin->stats : Statistics::Compute(*store, dict);
  }
};

/// Writes `pieces` back to back into a fresh `tmp_path` and fsyncs it —
/// the file is fully durable (under its temporary name) when this
/// returns. All I/O goes through `ops` so tests can inject write/fsync
/// failures and crash points.
Status WriteTmpDurably(FileOps* ops, const std::string& tmp_path,
                       const std::vector<std::string_view>& pieces) {
  Result<int> fd = ops->Open(tmp_path, O_WRONLY | O_CREAT | O_TRUNC);
  if (!fd.ok()) {
    return Status::NotFound("cannot open for write: " + tmp_path + ": " +
                            fd.status().message());
  }
  Status st = Status::OK();
  for (std::string_view piece : pieces) {
    if (piece.empty()) continue;
    st = ops->WriteAll(*fd, piece.data(), piece.size());
    if (!st.ok()) break;
  }
  if (st.ok()) st = ops->Fsync(*fd);
  Status close_st = ops->Close(*fd);
  if (st.ok()) st = close_st;
  if (!st.ok()) {
    (void)ops->Remove(tmp_path);
    return Status::Unavailable("write failed: " + tmp_path + ": " +
                               st.message());
  }
  return Status::OK();
}

/// Atomically publishes the finished (already fsynced) temporary file as
/// `path`: rename, then fsync the parent directory so the rename itself
/// is durable. Writing to a sibling temporary and renaming keeps three
/// hazards away: a crash mid-write never leaves a half-written snapshot
/// at `path`, a crash shortly *after* a successful save cannot surface an
/// empty delayed-allocation inode there either, and re-saving over a
/// currently mmap'd snapshot cannot truncate the pages a live store is
/// borrowing (the old inode survives until the last mapping drops).
Status PublishFile(FileOps* ops, const std::string& tmp_path,
                   const std::string& path) {
  ops->Crash(CrashPoint::kCheckpointAfterTmpWrite);
  Status st = ops->Rename(tmp_path, path);
  if (!st.ok()) {
    (void)ops->Remove(tmp_path);
    return Status::Unavailable("cannot rename " + tmp_path + " -> " + path +
                               ": " + st.message());
  }
  ops->Crash(CrashPoint::kCheckpointAfterRename);
  // Directory sync makes the rename durable. A failure here means the
  // publish may not survive power loss — report it; the caller must not
  // checkpoint the WAL against a snapshot that might vanish.
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  st = ops->SyncDir(dir);
  if (!st.ok()) {
    return Status::Unavailable("snapshot published but not durable: " +
                               st.message());
  }
  return Status::OK();
}

/// A term that would be rejected by the loader's 16 MiB record cap must
/// fail the save instead — a file that saves but can never load again is
/// worse than a failed save. Checked inline in the write loops.
Status OversizeTermError(TermId id) {
  return Status::InvalidArgument(
      "term " + std::to_string(id) + " exceeds the 16 MiB snapshot term "
      "size cap and would be rejected on load");
}

// ---------------------------------------------------------------------
// SPQLUO1: data-only stream format
// ---------------------------------------------------------------------

Status SaveSnapshotV1(const Database& db, const SaveSource& src,
                      const std::string& path, FileOps* ops) {
  if (!src.store->built())
    return Status::FailedPrecondition(
        "SaveSnapshot requires built indexes (the triple view is CSR-"
        "backed); call Finalize() first");
  const Dictionary& dict = db.dict();
  const size_t term_count = dict.size();

  std::string body(kMagicV1, sizeof(kMagicV1));
  PutU64(&body, term_count);
  for (TermId id = 0; id < term_count; ++id) {
    const Term& t = dict.Decode(id);
    if (!TermFitsRecord(t)) return OversizeTermError(id);
    AppendTermRecord(&body, t);
  }

  auto triples = src.store->triples();
  PutU64(&body, triples.size());
  body.reserve(body.size() + triples.size() * 12);
  for (const Triple& t : triples) {
    PutU32(&body, t.s);
    PutU32(&body, t.p);
    PutU32(&body, t.o);
  }

  const std::string tmp_path = path + ".tmp";
  SPARQLUO_RETURN_NOT_OK(WriteTmpDurably(ops, tmp_path, {body}));
  return PublishFile(ops, tmp_path, path);
}

Status LoadSnapshotV1(const std::string& path, const FileImage& image,
                      Database* db, SnapshotLoadInfo* info) {
  auto err = [&](const std::string& msg) {
    return Status::ParseError("v1 snapshot '" + path + "': " + msg);
  };
  ByteReader in(image.data(), image.size());
  const uint8_t* skip;
  in.Borrow(&skip, 8);  // magic, verified by the dispatcher

  uint64_t term_count;
  if (!in.ReadU64(&term_count))
    return err("truncated header (section 'terms', " + Offset(in.offset()) +
               ")");
  // Ids are dense and assigned in order, so re-encoding reproduces them.
  for (uint64_t i = 0; i < term_count; ++i) {
    const size_t record_off = in.offset();
    Term t;
    std::string msg;
    if (!ReadTermRecord(&in, "terms", i, term_count, &t, &msg))
      return err(msg);
    TermId id = db->dict().Encode(t);
    if (id != i)
      return err("duplicate term (section 'terms', term " +
                 std::to_string(i) + " of " + std::to_string(term_count) +
                 ", " + Offset(record_off) + ")");
  }

  uint64_t triple_count;
  if (!in.ReadU64(&triple_count))
    return err("truncated header (section 'triples', " + Offset(in.offset()) +
               ")");
  for (uint64_t i = 0; i < triple_count; ++i) {
    const size_t record_off = in.offset();
    auto at = [&] {
      return "(section 'triples', triple " + std::to_string(i) + " of " +
             std::to_string(triple_count) + ", " + Offset(record_off) + ")";
    };
    uint32_t s, p, o;
    if (!in.ReadU32(&s) || !in.ReadU32(&p) || !in.ReadU32(&o))
      return err("truncated triple record " + at());
    if (s >= term_count || p >= term_count || o >= term_count)
      return err("triple references unknown term " + at());
    db->mutable_store().Add(Triple(s, p, o));
  }
  if (info != nullptr) {
    info->format = SnapshotFormat::kV1;
    info->mapped = false;  // Everything is copied out; the image is freed.
    info->file_bytes = image.size();
  }
  return Status::OK();
}

// ---------------------------------------------------------------------
// SPQLUO2: section-based mmap format
// ---------------------------------------------------------------------

// Section ids. The CSR ids encode (permutation, array): 0x[perm+1][array],
// array 1 = level-1 firsts, 2 = offsets, 3 = level-2 pairs.
constexpr uint32_t kSecMeta = 0x01;
constexpr uint32_t kSecDict = 0x02;
constexpr uint32_t kSecStats = 0x03;
constexpr uint32_t CsrSectionId(Perm perm, uint32_t array) {
  return ((static_cast<uint32_t>(perm) + 1) << 4) | array;
}

const char* SectionName(uint32_t id) {
  switch (id) {
    case kSecMeta: return "meta";
    case kSecDict: return "dict";
    case kSecStats: return "stats";
    case 0x11: return "spo.firsts";
    case 0x12: return "spo.offsets";
    case 0x13: return "spo.pairs";
    case 0x21: return "pos.firsts";
    case 0x22: return "pos.offsets";
    case 0x23: return "pos.pairs";
    case 0x31: return "osp.firsts";
    case 0x32: return "osp.offsets";
    case 0x33: return "osp.pairs";
    default: return "unknown";
  }
}

/// Every id a valid file must carry, in canonical write order.
constexpr uint32_t kRequiredSections[] = {
    kSecMeta, kSecDict, kSecStats,                    //
    0x11, 0x12, 0x13, 0x21, 0x22, 0x23, 0x31, 0x32, 0x33};
constexpr size_t kSectionCount =
    sizeof(kRequiredSections) / sizeof(kRequiredSections[0]);

constexpr uint32_t kLayoutVersion = 1;
constexpr uint32_t kEndianTag = 0x0A0B0C0D;
constexpr size_t kTocEntryBytes = 32;
constexpr size_t kHeaderBytes = 16;  // magic + section_count + toc_crc

constexpr uint64_t Align8(uint64_t v) { return (v + 7) & ~uint64_t{7}; }

Status SaveSnapshotV2(const Database& db, const SaveSource& src,
                      const std::string& path, FileOps* ops) {
  if constexpr (std::endian::native != std::endian::little)
    return Status::Unsupported(
        "v2 snapshots are little-endian raw-array images; this host is "
        "big-endian");
  const TripleStore& store = *src.store;
  if (!store.built())
    return Status::FailedPrecondition(
        "v2 snapshots serialize the built CSR indexes; call Finalize() "
        "first (or save format v1)");
  const Dictionary& dict = db.dict();
  const size_t term_count = dict.size();

  std::string meta;
  PutU32(&meta, kLayoutVersion);
  PutU32(&meta, kEndianTag);
  PutU64(&meta, term_count);
  PutU64(&meta, store.size());

  std::string dict_blob;
  for (TermId id = 0; id < term_count; ++id) {
    const Term& t = dict.Decode(id);
    if (!TermFitsRecord(t)) return OversizeTermError(id);
    AppendTermRecord(&dict_blob, t);
  }

  std::string stats_blob;
  src.ComputeOrPinnedStats(dict).SerializeTo(&stats_blob);

  struct SectionOut {
    uint32_t id;
    const void* data;
    uint64_t length;
  };
  std::vector<SectionOut> sections = {
      {kSecMeta, meta.data(), meta.size()},
      {kSecDict, dict_blob.data(), dict_blob.size()},
      {kSecStats, stats_blob.data(), stats_blob.size()},
  };
  for (Perm perm : {Perm::kSpo, Perm::kPos, Perm::kOsp}) {
    const CsrIndex& ix = store.Csr(perm);
    sections.push_back({CsrSectionId(perm, 1), ix.firsts.data(),
                        ix.firsts.size() * sizeof(TermId)});
    sections.push_back({CsrSectionId(perm, 2), ix.offsets.data(),
                        ix.offsets.size() * sizeof(CsrOffset)});
    sections.push_back({CsrSectionId(perm, 3), ix.pairs.data(),
                        ix.pairs.size() * sizeof(IdPair)});
  }

  // Lay the payloads out back to back, each 8-byte aligned, and build the
  // TOC over the final positions.
  std::string toc;
  uint64_t cursor = Align8(kHeaderBytes + sections.size() * kTocEntryBytes);
  for (const SectionOut& s : sections) {
    PutU32(&toc, s.id);
    PutU32(&toc, 0);  // reserved
    PutU64(&toc, cursor);
    PutU64(&toc, s.length);
    PutU32(&toc, Crc32(s.data, s.length));
    PutU32(&toc, 0);  // reserved
    cursor = Align8(cursor + s.length);
  }

  std::string header(kMagicV2, sizeof(kMagicV2));
  PutU32(&header, static_cast<uint32_t>(sections.size()));
  PutU32(&header, Crc32(toc.data(), toc.size()));
  header += toc;

  std::vector<std::string_view> pieces;
  pieces.emplace_back(header);
  uint64_t written = header.size();
  static constexpr char kZeros[8] = {};
  for (const SectionOut& s : sections) {
    uint64_t target = Align8(written);
    pieces.emplace_back(kZeros, target - written);
    if (s.length > 0)
      pieces.emplace_back(static_cast<const char*>(s.data), s.length);
    written = target + s.length;
  }

  const std::string tmp_path = path + ".tmp";
  SPARQLUO_RETURN_NOT_OK(WriteTmpDurably(ops, tmp_path, pieces));
  return PublishFile(ops, tmp_path, path);
}

struct TocEntry {
  uint32_t id = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
  uint32_t crc = 0;
};

/// Borrows a raw little-endian array section as a typed ArrayRef. The
/// caller has already bounds-checked the section and verified divisibility
/// by sizeof(T); alignment holds because section offsets are 8-byte
/// aligned and the image base is page- (mmap) or malloc-aligned.
template <typename T>
ArrayRef<T> BorrowArray(const FileImage& image, const TocEntry& e) {
  return ArrayRef<T>::Borrowed(
      reinterpret_cast<const T*>(image.data() + e.offset),
      static_cast<size_t>(e.length / sizeof(T)));
}

Status LoadSnapshotV2(const std::string& path,
                      std::shared_ptr<const FileImage> image, Database* db,
                      const SnapshotLoadOptions& options,
                      SnapshotLoadInfo* info) {
  if constexpr (std::endian::native != std::endian::little)
    return Status::Unsupported(
        "v2 snapshots are little-endian raw-array images; this host is "
        "big-endian");
  auto err = [&](const std::string& msg) {
    return Status::ParseError("v2 snapshot '" + path + "': " + msg);
  };
  const uint8_t* base = image->data();
  const uint64_t file_size = image->size();
  if (file_size < kHeaderBytes)
    return err("file too small for header (" + std::to_string(file_size) +
               " bytes, need " + std::to_string(kHeaderBytes) + ")");

  ByteReader hdr(base + 8, kHeaderBytes - 8, 8);
  uint32_t section_count, stored_toc_crc;
  hdr.ReadU32(&section_count);
  hdr.ReadU32(&stored_toc_crc);
  if (section_count < kSectionCount || section_count > 64)
    return err("implausible section count " + std::to_string(section_count) +
               " (section 'toc', " + Offset(8) + ")");
  const uint64_t toc_bytes = uint64_t{section_count} * kTocEntryBytes;
  if (kHeaderBytes + toc_bytes > file_size)
    return err("truncated table of contents (need " +
               std::to_string(toc_bytes) + " bytes at " +
               Offset(kHeaderBytes) + ", file is " +
               std::to_string(file_size) + ")");
  const uint32_t computed_toc_crc =
      Crc32(base + kHeaderBytes, static_cast<size_t>(toc_bytes));
  if (computed_toc_crc != stored_toc_crc)
    return err("table of contents CRC mismatch (section 'toc', " +
               Offset(kHeaderBytes) + ")");

  // Parse and structurally validate every TOC entry: in bounds, aligned,
  // non-overlapping, no duplicate ids.
  std::vector<TocEntry> entries(section_count);
  {
    ByteReader toc(base + kHeaderBytes, static_cast<size_t>(toc_bytes),
                   kHeaderBytes);
    for (TocEntry& e : entries) {
      uint32_t reserved;
      toc.ReadU32(&e.id);
      toc.ReadU32(&reserved);
      toc.ReadU64(&e.offset);
      toc.ReadU64(&e.length);
      toc.ReadU32(&e.crc);
      toc.ReadU32(&reserved);
    }
  }
  const uint64_t payload_start = kHeaderBytes + toc_bytes;
  for (const TocEntry& e : entries) {
    const std::string at = std::string("section '") + SectionName(e.id) +
                           "' (" + Offset(e.offset) + ", length " +
                           std::to_string(e.length) + ")";
    if (e.offset % 8 != 0) return err("misaligned " + at);
    if (e.offset < payload_start || e.offset > file_size ||
        e.length > file_size - e.offset)
      return err("out-of-bounds " + at + ", file size " +
                 std::to_string(file_size));
  }
  std::vector<const TocEntry*> by_offset;
  by_offset.reserve(entries.size());
  for (const TocEntry& e : entries) by_offset.push_back(&e);
  std::sort(by_offset.begin(), by_offset.end(),
            [](const TocEntry* a, const TocEntry* b) {
              return a->offset < b->offset;
            });
  for (size_t i = 1; i < by_offset.size(); ++i) {
    const TocEntry& prev = *by_offset[i - 1];
    if (prev.offset + prev.length > by_offset[i]->offset)
      return err(std::string("overlapping sections '") +
                 SectionName(prev.id) + "' and '" +
                 SectionName(by_offset[i]->id) + "' (" +
                 Offset(by_offset[i]->offset) + ")");
  }

  const TocEntry* by_id[0x40] = {};
  for (const TocEntry& e : entries) {
    if (e.id >= 0x40) continue;  // Unknown high ids: ignored (forward compat).
    if (by_id[e.id] != nullptr)
      return err(std::string("duplicate section '") + SectionName(e.id) + "'");
    by_id[e.id] = &e;
  }
  for (uint32_t id : kRequiredSections) {
    if (by_id[id] == nullptr)
      return err(std::string("missing section '") + SectionName(id) + "'");
  }

  if (options.verify_checksums) {
    for (uint32_t id : kRequiredSections) {
      const TocEntry& e = *by_id[id];
      const uint32_t computed =
          Crc32(base + e.offset, static_cast<size_t>(e.length));
      if (computed != e.crc)
        return err(std::string("section '") + SectionName(id) +
                   "' CRC mismatch (" + Offset(e.offset) + ")");
    }
  }

  // --- meta ---
  const TocEntry& meta = *by_id[kSecMeta];
  uint32_t layout_version, endian_tag;
  uint64_t term_count, triple_count;
  {
    ByteReader in(base + meta.offset, static_cast<size_t>(meta.length),
                  static_cast<size_t>(meta.offset));
    if (!in.ReadU32(&layout_version) || !in.ReadU32(&endian_tag) ||
        !in.ReadU64(&term_count) || !in.ReadU64(&triple_count))
      return err("truncated section 'meta' (" + Offset(meta.offset) + ")");
    if (layout_version != kLayoutVersion)
      return err("unsupported layout version " +
                 std::to_string(layout_version) + " (section 'meta')");
    if (endian_tag != kEndianTag)
      return err("endianness tag mismatch (section 'meta'); file was "
                 "written on an incompatible host");
    if (term_count >= kInvalidTermId)
      return err("term count " + std::to_string(term_count) +
                 " exceeds the id space (section 'meta')");
    if (in.remaining() != 0)
      return err("trailing bytes in section 'meta' (" + Offset(in.offset()) +
                 "); meta extensions bump layout_version");
  }

  // --- CSR sections: structural validation, then borrow in place ---
  CsrIndex csr[3];
  for (Perm perm : {Perm::kSpo, Perm::kPos, Perm::kOsp}) {
    const TocEntry& ef = *by_id[CsrSectionId(perm, 1)];
    const TocEntry& eo = *by_id[CsrSectionId(perm, 2)];
    const TocEntry& ep = *by_id[CsrSectionId(perm, 3)];
    auto sec = [&](const TocEntry& e) {
      return std::string("section '") + SectionName(e.id) + "' (" +
             Offset(e.offset) + ")";
    };
    if (ef.length % sizeof(TermId) != 0 || eo.length % sizeof(CsrOffset) != 0 ||
        ep.length % sizeof(IdPair) != 0)
      return err("CSR section length not a multiple of its element size: " +
                 sec(ef.length % sizeof(TermId) != 0
                         ? ef
                         : (eo.length % sizeof(CsrOffset) != 0 ? eo : ep)));
    const uint64_t nfirsts = ef.length / sizeof(TermId);
    const uint64_t noffsets = eo.length / sizeof(CsrOffset);
    const uint64_t npairs = ep.length / sizeof(IdPair);
    if (npairs != triple_count)
      return err(sec(ep) + " holds " + std::to_string(npairs) +
                 " pairs, meta says " + std::to_string(triple_count) +
                 " triples");
    if (noffsets != nfirsts + 1)
      return err(sec(eo) + " has " + std::to_string(noffsets) +
                 " offsets for " + std::to_string(nfirsts) +
                 " directory entries (want directory + 1)");
    ArrayRef<TermId> firsts = BorrowArray<TermId>(*image, ef);
    ArrayRef<CsrOffset> offsets = BorrowArray<CsrOffset>(*image, eo);
    ArrayRef<IdPair> pairs = BorrowArray<IdPair>(*image, ep);
    // O(directory) invariants; intra-bucket pair *order* is covered by
    // the section CRC rather than an O(n) re-check, while pair *ids* get
    // a bounds scan below (docs/snapshot_format.md spells out this trust
    // model).
    if (offsets.size() > 0 && offsets[0] != 0)
      return err(sec(eo) + " does not start at 0");
    for (size_t b = 0; b + 1 < offsets.size(); ++b) {
      if (offsets[b] >= offsets[b + 1])
        return err(sec(eo) + " not strictly increasing at bucket " +
                   std::to_string(b) + " (buckets must be non-empty)");
    }
    if (nfirsts > 0 && offsets.back() != npairs)
      return err(sec(eo) + " ends at " + std::to_string(offsets.back()) +
                 ", pairs section holds " + std::to_string(npairs));
    if (nfirsts == 0 && npairs != 0)
      return err(sec(ep) + " holds pairs but the directory is empty");
    for (size_t b = 0; b < firsts.size(); ++b) {
      if (firsts[b] >= term_count)
        return err(sec(ef) + " references unknown term at bucket " +
                   std::to_string(b));
      if (b > 0 && firsts[b - 1] >= firsts[b])
        return err(sec(ef) + " not strictly ascending at bucket " +
                   std::to_string(b));
    }
    // The one O(pairs) check, and the one that makes the memory-safety
    // guarantee unconditional: every pair id must be decodable, or a
    // query result would hand Dictionary::Decode an id past the chunk
    // table. A sequential max-scan costs a few ms at LUBM(13) — noise
    // next to the rebuild this format avoids. (Intra-bucket *order* is
    // still only CRC-covered: wrong order misorders results, it cannot
    // touch invalid memory.)
    TermId max_id = 0;
    for (const IdPair& pr : pairs)
      max_id = std::max(max_id, std::max(pr.second, pr.third));
    if (npairs > 0 && max_id >= term_count)
      return err(sec(ep) + " references unknown term id " +
                 std::to_string(max_id));
    CsrIndex& ix = csr[static_cast<size_t>(perm)];
    ix.firsts = std::move(firsts);
    ix.offsets = std::move(offsets);
    ix.pairs = std::move(pairs);
  }

  // --- stats ---
  const TocEntry& stats_entry = *by_id[kSecStats];
  auto stats = Statistics::Deserialize(
      base + stats_entry.offset, static_cast<size_t>(stats_entry.length));
  if (!stats.ok())
    return err(stats.status().message() + " (section 'stats', " +
               Offset(stats_entry.offset) + ")");
  if (stats->num_triples() != triple_count)
    return err("statistics disagree with meta (" +
               std::to_string(stats->num_triples()) + " vs " +
               std::to_string(triple_count) +
               " triples; section 'stats', " + Offset(stats_entry.offset) +
               ")");

  // --- dict: bulk-append decoded terms (O(terms), no interning) ---
  {
    const TocEntry& e = *by_id[kSecDict];
    ByteReader in(base + e.offset, static_cast<size_t>(e.length),
                  static_cast<size_t>(e.offset));
    for (uint64_t i = 0; i < term_count; ++i) {
      Term t;
      std::string msg;
      if (!ReadTermRecord(&in, "dict", i, term_count, &t, &msg))
        return err(msg);
      db->dict().AppendForLoad(std::move(t));
    }
    if (in.remaining() != 0)
      return err("trailing bytes after last term record (section 'dict', " +
                 Offset(in.offset()) + ")");
  }

  if (info != nullptr) {
    info->format = SnapshotFormat::kV2;
    info->mapped = image->mapped();
    info->file_bytes = file_size;
  }
  db->AdoptStatistics(std::move(*stats));
  db->mutable_store().AdoptCsr(
      std::move(csr[0]), std::move(csr[1]), std::move(csr[2]),
      std::shared_ptr<const void>(std::move(image)));
  return Status::OK();
}

}  // namespace

Status SaveSnapshot(const Database& db, const std::string& path,
                    SnapshotFormat format, FileOps* ops) {
  Timer timer;
  ops = ResolveFileOps(ops);
  // Capture one version for the whole save (see SaveSource): the
  // checkpoint must be internally consistent even while a writer commits,
  // and its id is what a successful save checkpoints the WAL to.
  SaveSource src(db);
  Status s = format == SnapshotFormat::kV2
                 ? SaveSnapshotV2(db, src, path, ops)
                 : SaveSnapshotV1(db, src, path, ops);
  if (s.ok()) {
    MetricRegistry::Global()
        .GetHistogram("sparqluo_snapshot_save_ms",
                      "Snapshot save latency in milliseconds")
        ->Observe(timer.ElapsedMillis());
  }
  // The snapshot now durably holds everything through the pinned version:
  // record that in the WAL directory and retire segments it covers. A
  // checkpoint failure doesn't invalidate the save — the log just stays
  // longer than it needed to — so the save still reports success.
  if (s.ok() && src.pin != nullptr) {
    if (Wal* wal = db.wal()) {
      Status ckpt = wal->Checkpoint(src.pin->id, src.store->size());
      if (!ckpt.ok()) {
        SPARQLUO_LOG(kWarn)
            << "wal checkpoint after snapshot save failed: "
            << ckpt.ToString();
      }
    }
  }
  return s;
}

Status LoadSnapshot(const std::string& path, Database* db,
                    const SnapshotLoadOptions& options,
                    SnapshotLoadInfo* info) {
  if (db->size() != 0 || db->dict().size() != 0)
    return Status::InvalidArgument("LoadSnapshot requires an empty database");
  Timer timer;
  auto image = FileImage::Open(path, options.allow_mmap);
  if (!image.ok()) return image.status();
  if ((*image)->size() < 8 ||
      (std::memcmp((*image)->data(), kMagicV1, 8) != 0 &&
       std::memcmp((*image)->data(), kMagicV2, 8) != 0))
    return Status::ParseError("not a sparqluo snapshot: " + path);
  bool v2 = std::memcmp((*image)->data(), kMagicV2, 8) == 0;
  Status s = v2 ? LoadSnapshotV2(path, std::move(*image), db, options, info)
                : LoadSnapshotV1(path, **image, db, info);
  if (s.ok()) {
    MetricRegistry::Global()
        .GetHistogram("sparqluo_snapshot_load_ms",
                      "Snapshot load latency in milliseconds")
        ->Observe(timer.ElapsedMillis());
  }
  return s;
}

}  // namespace sparqluo
