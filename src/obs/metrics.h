// Process-wide metrics: counters, gauges and log-linear histograms.
//
// The observability layer every serving subsystem reports into. Three
// metric kinds, all safe for concurrent writers:
//
//   Counter   — monotonically increasing uint64 (relaxed atomic add).
//   Gauge     — point-in-time int64 (set/add).
//   Histogram — HdrHistogram-style log-linear distribution with a fixed
//               bucket layout: exact buckets for small values, then every
//               power-of-two range split into 32 linear sub-buckets, so
//               relative quantile error is bounded by ~3% (one bucket
//               width) while memory stays fixed (~15 KB per histogram)
//               no matter how many samples arrive. This is what replaces
//               the capped latency-sample vector ServiceStats used to
//               keep: percentiles stay correct under sustained traffic.
//
// MetricRegistry owns metrics by (name, labels) and renders the whole set
// in the Prometheus text exposition format — the data source for the CLI's
// --metrics-out flag and for a future HTTP /metrics route. Handles returned
// by Get* are stable for the registry's lifetime; instruments resolve them
// once at construction and then increment lock-free, so the hot path never
// touches the registry mutex.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sparqluo {

/// Monotonic counter. Increment is one relaxed atomic add.
class Counter {
 public:
  void Increment(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Point-in-time value (queue depth, store version, ...).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Fixed-layout log-linear histogram over non-negative doubles.
///
/// Values are scaled by 2^kScaleBits and bucketed: raw values below 2^kSubBits
/// get exact buckets; above that, each power-of-two range [2^m, 2^(m+1)) is
/// split into 2^kSubBits linear sub-buckets of width 2^(m-kSubBits). Quantile()
/// returns the upper bound of the bucket holding the requested rank, so its
/// error versus the exact sample percentile is at most one bucket width
/// (BucketWidth(v) in value units — ~3% of v, or 1/1024 absolute for tiny
/// values). All mutation is relaxed atomics; Observe never allocates.
class Histogram {
 public:
  static constexpr int kSubBits = 5;                 ///< 32 sub-buckets/octave.
  static constexpr size_t kSubBuckets = size_t{1} << kSubBits;
  static constexpr int kScaleBits = 10;              ///< Value resolution 2^-10.
  static constexpr size_t kNumBuckets = kSubBuckets * (64 - kSubBits + 1);

  void Observe(double v) {
    uint64_t u = Scale(v);
    buckets_[IndexOf(u)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_scaled_.fetch_add(u, std::memory_order_relaxed);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const {
    return Descale(sum_scaled_.load(std::memory_order_relaxed));
  }

  /// Upper bound (in value units) of the bucket containing the q-quantile
  /// sample (q in [0, 1]); 0 when empty. Error <= one bucket width.
  double Quantile(double q) const;

  /// Width, in value units, of the bucket a value of `v` lands in — the
  /// worst-case quantile error around v.
  static double BucketWidth(double v);

  /// One non-empty bucket: Prometheus-style upper bound + its own (not
  /// cumulative) count.
  struct BucketView {
    double upper_bound = 0.0;
    uint64_t count = 0;
  };
  /// Non-empty buckets in ascending bound order (a snapshot; concurrent
  /// Observe calls may be partially visible).
  std::vector<BucketView> NonEmptyBuckets() const;

 private:
  static uint64_t Scale(double v);
  static double Descale(uint64_t u) {
    return static_cast<double>(u) /
           static_cast<double>(uint64_t{1} << kScaleBits);
  }
  static size_t IndexOf(uint64_t u);
  /// Smallest raw value mapping to bucket `idx`; the bucket's exclusive
  /// upper bound is LowerBoundRaw(idx + 1).
  static uint64_t LowerBoundRaw(size_t idx);

  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_scaled_{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

/// Named metric registry with Prometheus text rendering.
///
/// Get* interns a metric under (name, labels) and returns a stable pointer;
/// repeated calls return the same instance, so independent components
/// naming the same metric share one series. `labels` is a preformatted
/// Prometheus label list without braces (e.g. `shard="3"`), empty for none.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// The process-global registry every production instrument reports to.
  static MetricRegistry& Global();

  Counter* GetCounter(const std::string& name, const std::string& help = "",
                      const std::string& labels = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "",
                  const std::string& labels = "");
  Histogram* GetHistogram(const std::string& name, const std::string& help = "",
                          const std::string& labels = "");

  /// Prometheus text exposition format: # HELP / # TYPE per family, then
  /// one sample line per (labels) series; histograms render cumulative
  /// non-empty `_bucket{le=...}` lines plus `_sum`/`_count`.
  std::string RenderPrometheus() const;

 private:
  enum class Type { kCounter, kGauge, kHistogram };
  struct Family {
    Type type = Type::kCounter;
    std::string help;
    // Keyed by label string; only the map matching `type` is populated.
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
  };

  Family* FamilyFor(const std::string& name, Type type,
                    const std::string& help);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

}  // namespace sparqluo
