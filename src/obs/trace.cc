#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace sparqluo {

TraceContext::TraceContext(size_t max_spans)
    : max_spans_(max_spans == 0 ? 1 : max_spans),
      epoch_(std::chrono::steady_clock::now()) {
  // Typical query traces are small; reserving a page's worth keeps the
  // common case to one allocation without pre-paying the cap.
  std::lock_guard<std::mutex> lock(mu_);
  spans_.reserve(std::min<size_t>(max_spans_, 64));
}

uint32_t TraceContext::TidLocked(std::thread::id id) {
  auto it = tids_.find(id);
  if (it != tids_.end()) return it->second;
  uint32_t dense = static_cast<uint32_t>(tids_.size());
  tids_.emplace(id, dense);
  return dense;
}

TraceContext::SpanId TraceContext::StartSpan(std::string_view name,
                                             SpanId parent) {
  return StartSpanAt(name, parent, std::chrono::steady_clock::now());
}

TraceContext::SpanId TraceContext::StartSpanAt(
    std::string_view name, SpanId parent,
    std::chrono::steady_clock::time_point start) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return kNoSpan;
  }
  TraceSpan span;
  span.parent = parent;
  span.start_us = NowUs(start);
  span.tid = TidLocked(std::this_thread::get_id());
  span.name.assign(name.data(), name.size());
  spans_.push_back(std::move(span));
  return static_cast<SpanId>(spans_.size() - 1);
}

void TraceContext::EndSpan(SpanId id) {
  auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= spans_.size()) return;
  TraceSpan& span = spans_[id];
  if (span.dur_us < 0) span.dur_us = std::max<int64_t>(0, NowUs(now) - span.start_us);
}

void TraceContext::AddAttr(SpanId id, std::string_view key, std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= spans_.size()) return;
  spans_[id].attrs.emplace_back(std::string(key), std::move(value));
}

size_t TraceContext::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

size_t TraceContext::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<TraceSpan> TraceContext::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

namespace {

std::string FormatMs(int64_t us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(us) / 1000.0);
  return buf;
}

void RenderNode(const std::vector<TraceSpan>& spans,
                const std::vector<std::vector<size_t>>& children, size_t idx,
                int depth, std::string* out) {
  const TraceSpan& s = spans[idx];
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += "- " + s.name + " ";
  *out += s.dur_us < 0 ? "(open)" : FormatMs(s.dur_us) + " ms";
  if (!s.attrs.empty()) {
    *out += " {";
    for (size_t i = 0; i < s.attrs.size(); ++i) {
      if (i > 0) *out += ", ";
      *out += s.attrs[i].first + "=" + s.attrs[i].second;
    }
    *out += "}";
  }
  *out += "\n";
  for (size_t child : children[idx])
    RenderNode(spans, children, child, depth + 1, out);
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string TraceContext::RenderTree() const {
  std::vector<TraceSpan> spans = Snapshot();
  std::vector<std::vector<size_t>> children(spans.size());
  std::vector<size_t> roots;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent == kNoSpan || spans[i].parent >= spans.size()) {
      roots.push_back(i);
    } else {
      children[spans[i].parent].push_back(i);
    }
  }
  auto by_start = [&spans](size_t a, size_t b) {
    return spans[a].start_us != spans[b].start_us
               ? spans[a].start_us < spans[b].start_us
               : a < b;
  };
  std::sort(roots.begin(), roots.end(), by_start);
  for (auto& c : children) std::sort(c.begin(), c.end(), by_start);
  std::string out;
  for (size_t root : roots) RenderNode(spans, children, root, 0, &out);
  size_t d;
  {
    std::lock_guard<std::mutex> lock(mu_);
    d = dropped_;
  }
  if (d > 0) out += "- (" + std::to_string(d) + " spans dropped at cap)\n";
  return out;
}

size_t TraceContext::AppendChromeTraceEvents(int pid, int64_t ts_offset_us,
                                             std::string* out) const {
  std::vector<TraceSpan> spans = Snapshot();
  size_t emitted = 0;
  for (const TraceSpan& s : spans) {
    if (emitted > 0) *out += ",\n";
    *out += "{\"name\":\"" + JsonEscape(s.name) + "\",\"cat\":\"query\"," +
            "\"ph\":\"X\",\"ts\":" +
            std::to_string(s.start_us + ts_offset_us) + ",\"dur\":" +
            std::to_string(s.dur_us < 0 ? 0 : s.dur_us) + ",\"pid\":" +
            std::to_string(pid) + ",\"tid\":" + std::to_string(s.tid);
    if (!s.attrs.empty()) {
      *out += ",\"args\":{";
      for (size_t i = 0; i < s.attrs.size(); ++i) {
        if (i > 0) *out += ",";
        *out += "\"" + JsonEscape(s.attrs[i].first) + "\":\"" +
                JsonEscape(s.attrs[i].second) + "\"";
      }
      *out += "}";
    }
    *out += "}";
    ++emitted;
  }
  return emitted;
}

}  // namespace sparqluo
