#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>

namespace sparqluo {

uint64_t Histogram::Scale(double v) {
  if (!(v > 0.0)) return 0;  // negatives and NaN clamp to zero
  double scaled = v * static_cast<double>(uint64_t{1} << kScaleBits);
  if (scaled >= 9.0e18) return uint64_t{9000000000000000000u};
  return static_cast<uint64_t>(std::llround(scaled));
}

size_t Histogram::IndexOf(uint64_t u) {
  if (u < kSubBuckets) return static_cast<size_t>(u);
  int msb = 63 - std::countl_zero(u);  // >= kSubBits
  int shift = msb - kSubBits;
  size_t sub = static_cast<size_t>(u >> shift) & (kSubBuckets - 1);
  return static_cast<size_t>(msb - kSubBits + 1) * kSubBuckets + sub;
}

uint64_t Histogram::LowerBoundRaw(size_t idx) {
  if (idx < kSubBuckets) return idx;
  size_t msb = idx / kSubBuckets + kSubBits - 1;
  size_t sub = idx % kSubBuckets;
  return (kSubBuckets + sub) << (msb - kSubBits);
}

double Histogram::BucketWidth(double v) {
  size_t idx = IndexOf(Scale(v));
  uint64_t lo = LowerBoundRaw(idx);
  uint64_t hi = idx + 1 < kNumBuckets
                    ? LowerBoundRaw(idx + 1)
                    : lo + (lo >> kSubBits);  // top bucket: same octave width
  return Descale(hi - lo == 0 ? 1 : hi - lo);
}

double Histogram::Quantile(double q) const {
  uint64_t total = Count();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-quantile sample, 1-based (nearest-rank definition).
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  uint64_t cum = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cum += buckets_[i].load(std::memory_order_relaxed);
    if (cum >= rank)
      return Descale(i + 1 < kNumBuckets ? LowerBoundRaw(i + 1)
                                         : LowerBoundRaw(i));
  }
  // Concurrent writers can make `total` exceed the bucket sum momentarily.
  return Descale(LowerBoundRaw(kNumBuckets - 1));
}

std::vector<Histogram::BucketView> Histogram::NonEmptyBuckets() const {
  std::vector<BucketView> out;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    out.push_back(BucketView{
        Descale(i + 1 < kNumBuckets ? LowerBoundRaw(i + 1) : LowerBoundRaw(i)),
        c});
  }
  return out;
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

MetricRegistry::Family* MetricRegistry::FamilyFor(const std::string& name,
                                                  Type type,
                                                  const std::string& help) {
  Family& fam = families_[name];
  if (fam.counters.empty() && fam.gauges.empty() && fam.histograms.empty()) {
    fam.type = type;
    fam.help = help;
  }
  return &fam;
}

Counter* MetricRegistry::GetCounter(const std::string& name,
                                    const std::string& help,
                                    const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* fam = FamilyFor(name, Type::kCounter, help);
  auto& slot = fam->counters[labels];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name,
                                const std::string& help,
                                const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* fam = FamilyFor(name, Type::kGauge, help);
  auto& slot = fam->gauges[labels];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        const std::string& help,
                                        const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* fam = FamilyFor(name, Type::kHistogram, help);
  auto& slot = fam->histograms[labels];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

namespace {

/// %g with enough digits to round-trip bucket bounds.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string SeriesName(const std::string& name, const std::string& labels) {
  if (labels.empty()) return name;
  return name + "{" + labels + "}";
}

/// `_bucket` series need an `le` label merged into the user labels.
std::string BucketSeries(const std::string& name, const std::string& labels,
                         const std::string& le) {
  std::string merged = labels.empty() ? "" : labels + ",";
  merged += "le=\"" + le + "\"";
  return name + "_bucket{" + merged + "}";
}

}  // namespace

std::string MetricRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, fam] : families_) {
    if (!fam.help.empty()) out += "# HELP " + name + " " + fam.help + "\n";
    switch (fam.type) {
      case Type::kCounter:
        out += "# TYPE " + name + " counter\n";
        for (const auto& [labels, c] : fam.counters)
          out += SeriesName(name, labels) + " " + std::to_string(c->value()) +
                 "\n";
        break;
      case Type::kGauge:
        out += "# TYPE " + name + " gauge\n";
        for (const auto& [labels, g] : fam.gauges)
          out += SeriesName(name, labels) + " " + std::to_string(g->value()) +
                 "\n";
        break;
      case Type::kHistogram:
        out += "# TYPE " + name + " histogram\n";
        for (const auto& [labels, h] : fam.histograms) {
          uint64_t cum = 0;
          for (const Histogram::BucketView& b : h->NonEmptyBuckets()) {
            cum += b.count;
            out += BucketSeries(name, labels, FormatDouble(b.upper_bound)) +
                   " " + std::to_string(cum) + "\n";
          }
          // One consistent total: concurrent Observe calls between the
          // bucket snapshot and here must not make +Inf < a bucket's
          // cumulative count (scrapers reject non-monotone histograms).
          uint64_t total = std::max(cum, h->Count());
          out += BucketSeries(name, labels, "+Inf") + " " +
                 std::to_string(total) + "\n";
          out += SeriesName(name + "_sum", labels) + " " +
                 FormatDouble(h->Sum()) + "\n";
          out += SeriesName(name + "_count", labels) + " " +
                 std::to_string(total) + "\n";
        }
        break;
    }
  }
  return out;
}

}  // namespace sparqluo
