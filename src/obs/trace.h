// Query-lifecycle span tracing.
//
// A TraceContext records one request's execution as a tree of timed spans
// (parse, plan-cache lookup, transform, per-BGP evaluation, morsel tasks on
// the worker pool, projection/serialization), each with a start offset,
// duration, owning thread and free-form attributes. Two renderers:
//
//   RenderTree()             — human-readable --explain-analyze tree.
//   AppendChromeTraceEvents() — Chrome trace-event JSON, loadable in
//                               Perfetto / chrome://tracing.
//
// Design constraints, in order:
//   1. Disabled tracing is free. Every instrumentation point takes a
//      nullable TraceContext*; when it is null, ScopedSpan and friends
//      compile down to a pointer test — no allocation, no clock read.
//   2. Bounded memory when enabled. Spans are capped (max_spans); past the
//      cap StartSpan returns kNoSpan and counts the drop, so a query
//      fanning out into millions of morsels cannot balloon its trace.
//   3. Safe concurrent recording. Morsel spans are started/ended from pool
//      worker threads while the query thread records its own; a mutex
//      guards the span vector (enabled path only — see constraint 1).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace sparqluo {

/// One recorded span. Times are microseconds relative to the context epoch.
struct TraceSpan {
  uint32_t parent = 0xffffffffu;  ///< Index of the parent; kNoSpan for roots.
  int64_t start_us = 0;
  int64_t dur_us = -1;            ///< -1 while the span is still open.
  uint32_t tid = 0;               ///< Dense per-context thread index.
  std::string name;
  std::vector<std::pair<std::string, std::string>> attrs;
};

class TraceContext {
 public:
  using SpanId = uint32_t;
  static constexpr SpanId kNoSpan = 0xffffffffu;
  static constexpr size_t kDefaultMaxSpans = 4096;

  explicit TraceContext(size_t max_spans = kDefaultMaxSpans);

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  /// Opens a span starting now. Returns kNoSpan (and counts a drop) once
  /// the span cap is reached; every other method accepts kNoSpan as a
  /// harmless no-op id.
  SpanId StartSpan(std::string_view name, SpanId parent = kNoSpan);

  /// Opens a span with an explicit start time (e.g. queue wait measured
  /// from the submission timestamp).
  SpanId StartSpanAt(std::string_view name, SpanId parent,
                     std::chrono::steady_clock::time_point start);

  void EndSpan(SpanId id);

  /// Attaches a key/value attribute to an open or closed span.
  void AddAttr(SpanId id, std::string_view key, std::string value);

  size_t size() const;
  size_t dropped() const;

  /// Copy of all spans recorded so far (open spans keep dur_us == -1).
  std::vector<TraceSpan> Snapshot() const;

  /// Indented tree (children ordered by start time) with durations and
  /// attributes — the --explain-analyze rendering.
  std::string RenderTree() const;

  /// Appends one complete-event ("ph":"X") JSON object per span to `out`,
  /// comma-separated, for embedding in a {"traceEvents": [...]} document.
  /// `pid` distinguishes queries sharing a file; `ts_offset_us` shifts this
  /// context's epoch onto the file's common timeline. Emits nothing when
  /// the context is empty. Returns the number of events appended.
  size_t AppendChromeTraceEvents(int pid, int64_t ts_offset_us,
                                 std::string* out) const;

  std::chrono::steady_clock::time_point epoch() const { return epoch_; }

  /// Microseconds from `base` to this context's epoch (for multi-query
  /// trace files sharing one timeline).
  int64_t EpochOffsetUs(std::chrono::steady_clock::time_point base) const {
    return std::chrono::duration_cast<std::chrono::microseconds>(epoch_ - base)
        .count();
  }

 private:
  int64_t NowUs(std::chrono::steady_clock::time_point t) const {
    return std::chrono::duration_cast<std::chrono::microseconds>(t - epoch_)
        .count();
  }
  uint32_t TidLocked(std::thread::id id);

  const size_t max_spans_;
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
  size_t dropped_ = 0;
  std::map<std::thread::id, uint32_t> tids_;
};

/// RAII span that is a no-op (no allocation, no clock read) on a null
/// context — the disabled-path guarantee every hot path relies on.
class ScopedSpan {
 public:
  ScopedSpan(TraceContext* ctx, std::string_view name,
             TraceContext::SpanId parent = TraceContext::kNoSpan)
      : ctx_(ctx),
        id_(ctx != nullptr ? ctx->StartSpan(name, parent)
                           : TraceContext::kNoSpan) {}
  ~ScopedSpan() {
    if (ctx_ != nullptr) ctx_->EndSpan(id_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  TraceContext::SpanId id() const { return id_; }

  void Attr(std::string_view key, std::string value) {
    if (ctx_ != nullptr) ctx_->AddAttr(id_, key, std::move(value));
  }

 private:
  TraceContext* ctx_;
  TraceContext::SpanId id_;
};

}  // namespace sparqluo
