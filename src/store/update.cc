#include "store/update.h"

#include <string>
#include <unordered_map>

#include "sparql/lexer.h"

namespace sparqluo {

namespace {

constexpr const char* kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
constexpr const char* kXsdInteger = "http://www.w3.org/2001/XMLSchema#integer";
constexpr const char* kXsdDecimal = "http://www.w3.org/2001/XMLSchema#decimal";

/// Recursive-descent parser for the INSERT DATA / DELETE DATA fragment.
/// Mirrors the term grammar of sparql/parser.cc, restricted to ground
/// terms (a variable in a data block is an error, per SPARQL 1.1 Update).
class UpdateParser {
 public:
  explicit UpdateParser(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  Result<UpdateBatch> Parse() {
    UpdateBatch batch;
    SPARQLUO_RETURN_NOT_OK(ParsePrologue());
    bool any = false;
    while (true) {
      UpdateOp::Kind kind;
      if (CurIs(TokenType::kKeyword, "INSERT")) {
        kind = UpdateOp::Kind::kInsert;
      } else if (CurIs(TokenType::kKeyword, "DELETE")) {
        kind = UpdateOp::Kind::kDelete;
      } else if (!any) {
        return Err("expected INSERT DATA or DELETE DATA");
      } else {
        break;
      }
      Advance();
      SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kKeyword, "DATA"));
      SPARQLUO_RETURN_NOT_OK(ParseDataBlock(kind, &batch));
      any = true;
      if (CurIs(TokenType::kSemicolon)) {
        Advance();
        // A trailing ';' before EOF is allowed (SPARQL 1.1 Update permits
        // an empty final operation).
        continue;
      }
      break;
    }
    if (Cur().type != TokenType::kEof)
      return Err("trailing tokens after update");
    return batch;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool CurIs(TokenType t) const { return Cur().type == t; }
  bool CurIs(TokenType t, std::string_view text) const {
    return Cur().type == t && Cur().text == text;
  }
  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " (line " + std::to_string(Cur().line) +
                              ", near '" + Cur().text + "')");
  }
  Status Expect(TokenType t, std::string_view text = {}) {
    if (Cur().type != t || (!text.empty() && Cur().text != text))
      return Err("expected " + std::string(text.empty() ? TokenTypeName(t)
                                                        : std::string(text)));
    Advance();
    return Status::OK();
  }

  Status ParsePrologue() {
    while (CurIs(TokenType::kKeyword, "PREFIX")) {
      Advance();
      if (Cur().type != TokenType::kPrefixedName)
        return Err("expected prefix name after PREFIX");
      std::string pname = Cur().text;
      if (pname.empty() || pname.back() != ':')
        return Err("prefix declaration must end with ':'");
      Advance();
      if (Cur().type != TokenType::kIriRef)
        return Err("expected IRI after prefix name");
      prefixes_[pname.substr(0, pname.size() - 1)] = Cur().text;
      Advance();
    }
    return Status::OK();
  }

  Result<Term> ExpandPrefixedName(const std::string& qname) {
    size_t colon = qname.find(':');
    std::string prefix = qname.substr(0, colon);
    std::string local = qname.substr(colon + 1);
    if (prefix == "_") return Term::Blank(local);
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end())
      return Status::ParseError("undeclared prefix '" + prefix + ":'");
    return Term::Iri(it->second + local);
  }

  Result<Term> ParseGroundTerm(bool predicate_position) {
    switch (Cur().type) {
      case TokenType::kVariable:
        return Err("data blocks must be ground: variable ?" + Cur().text +
                   " not allowed in INSERT DATA / DELETE DATA");
      case TokenType::kIriRef: {
        Term t = Term::Iri(Cur().text);
        Advance();
        return t;
      }
      case TokenType::kPrefixedName: {
        auto t = ExpandPrefixedName(Cur().text);
        if (!t.ok()) return t.status();
        Advance();
        return t;
      }
      case TokenType::kA:
        if (!predicate_position) return Err("'a' only allowed as predicate");
        Advance();
        return Term::Iri(kRdfType);
      case TokenType::kString: {
        std::string value = Cur().text;
        Advance();
        if (Cur().type == TokenType::kLangTag) {
          std::string lang = Cur().text;
          Advance();
          return Term::LangLiteral(std::move(value), std::move(lang));
        }
        if (Cur().type == TokenType::kDoubleCaret) {
          Advance();
          if (Cur().type == TokenType::kIriRef) {
            std::string dt = Cur().text;
            Advance();
            return Term::TypedLiteral(std::move(value), std::move(dt));
          }
          if (Cur().type == TokenType::kPrefixedName) {
            auto t = ExpandPrefixedName(Cur().text);
            if (!t.ok()) return t.status();
            Advance();
            return Term::TypedLiteral(std::move(value), t->lexical);
          }
          return Err("expected datatype IRI after ^^");
        }
        return Term::Literal(std::move(value));
      }
      case TokenType::kNumber: {
        std::string text = Cur().text;
        Advance();
        const char* dt = text.find('.') == std::string::npos ? kXsdInteger
                                                             : kXsdDecimal;
        return Term::TypedLiteral(std::move(text), dt);
      }
      default:
        return Err("expected ground term");
    }
  }

  /// '{' ( triples with '.', ';', ',' abbreviations )* '}'
  Status ParseDataBlock(UpdateOp::Kind kind, UpdateBatch* out) {
    SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kLBrace));
    while (!CurIs(TokenType::kRBrace)) {
      if (CurIs(TokenType::kEof)) return Err("unterminated data block");
      auto subject = ParseGroundTerm(/*predicate_position=*/false);
      if (!subject.ok()) return subject.status();
      while (true) {
        auto pred = ParseGroundTerm(/*predicate_position=*/true);
        if (!pred.ok()) return pred.status();
        while (true) {
          auto obj = ParseGroundTerm(/*predicate_position=*/false);
          if (!obj.ok()) return obj.status();
          out->ops.push_back({kind, {*subject, *pred, std::move(*obj)}});
          if (CurIs(TokenType::kComma)) {
            Advance();
            continue;
          }
          break;
        }
        if (CurIs(TokenType::kSemicolon)) {
          Advance();
          continue;
        }
        break;
      }
      if (CurIs(TokenType::kDot)) Advance();
    }
    Advance();  // consume '}'
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::unordered_map<std::string, std::string> prefixes_;
};

}  // namespace

Result<UpdateBatch> ParseUpdate(std::string_view text) {
  auto tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  UpdateParser p(std::move(*tokens));
  return p.Parse();
}

bool UpdateTextHasPatternOp(std::string_view text) {
  auto tokens = Tokenize(text);
  if (!tokens.ok()) return false;  // let the real parser report the error
  for (const Token& t : *tokens)
    if (t.type == TokenType::kKeyword && t.text == "WHERE") return true;
  return false;
}

}  // namespace sparqluo
