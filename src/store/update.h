// Ground update batches (the write-path counterpart of sparql/ast.h).
//
// A batch is an ordered list of INSERT/DELETE operations over fully-bound
// ("ground") triples — the SPARQL 1.1 Update `INSERT DATA` / `DELETE DATA`
// fragment. Operations are replayed in order against the pending delta
// (src/store/delta.h), so within one batch a later DELETE wins over an
// earlier INSERT of the same triple and vice versa.
#pragma once

#include <string_view>
#include <vector>

#include "rdf/term.h"
#include "util/status.h"

namespace sparqluo {

/// A fully-bound triple in decoded (term) form.
struct GroundTriple {
  Term s, p, o;
};

/// One INSERT or DELETE of a single ground triple.
struct UpdateOp {
  enum class Kind { kInsert, kDelete };
  Kind kind = Kind::kInsert;
  GroundTriple triple;
};

/// An ordered batch of update operations.
struct UpdateBatch {
  std::vector<UpdateOp> ops;

  void Insert(Term s, Term p, Term o) {
    ops.push_back({UpdateOp::Kind::kInsert,
                   {std::move(s), std::move(p), std::move(o)}});
  }
  void Delete(Term s, Term p, Term o) {
    ops.push_back({UpdateOp::Kind::kDelete,
                   {std::move(s), std::move(p), std::move(o)}});
  }

  size_t size() const { return ops.size(); }
  bool empty() const { return ops.empty(); }
};

/// Parses the SPARQL 1.1 Update fragment
///
///   Prologue ( (INSERT|DELETE) DATA '{' TriplesTemplate? '}' )
///            ( ';' ... )* ';'?
///
/// into an UpdateBatch. TriplesTemplate supports the same term syntax as
/// query patterns (IRIs, prefixed names, `a`, literals with language tags
/// or datatypes, numbers, `_:`-labelled blank nodes) plus the `;` and `,`
/// predicate/object list abbreviations — but no variables: data blocks
/// must be ground, and a variable is a parse error.
Result<UpdateBatch> ParseUpdate(std::string_view text);

}  // namespace sparqluo
