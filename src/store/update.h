// Ground update batches (the write-path counterpart of sparql/ast.h).
//
// A batch is an ordered list of INSERT/DELETE operations over fully-bound
// ("ground") triples — the SPARQL 1.1 Update `INSERT DATA` / `DELETE DATA`
// fragment. Operations are replayed in order against the pending delta
// (src/store/delta.h), so within one batch a later DELETE wins over an
// earlier INSERT of the same triple and vice versa.
#pragma once

#include <string_view>
#include <vector>

#include "rdf/term.h"
#include "sparql/ast.h"
#include "util/status.h"

namespace sparqluo {

/// A fully-bound triple in decoded (term) form.
struct GroundTriple {
  Term s, p, o;
};

/// One INSERT or DELETE of a single ground triple.
struct UpdateOp {
  enum class Kind { kInsert, kDelete };
  Kind kind = Kind::kInsert;
  GroundTriple triple;
};

/// An ordered batch of update operations.
struct UpdateBatch {
  std::vector<UpdateOp> ops;

  void Insert(Term s, Term p, Term o) {
    ops.push_back({UpdateOp::Kind::kInsert,
                   {std::move(s), std::move(p), std::move(o)}});
  }
  void Delete(Term s, Term p, Term o) {
    ops.push_back({UpdateOp::Kind::kDelete,
                   {std::move(s), std::move(p), std::move(o)}});
  }

  size_t size() const { return ops.size(); }
  bool empty() const { return ops.empty(); }
};

/// Parses the SPARQL 1.1 Update fragment
///
///   Prologue ( (INSERT|DELETE) DATA '{' TriplesTemplate? '}' )
///            ( ';' ... )* ';'?
///
/// into an UpdateBatch. TriplesTemplate supports the same term syntax as
/// query patterns (IRIs, prefixed names, `a`, literals with language tags
/// or datatypes, numbers, `_:`-labelled blank nodes) plus the `;` and `,`
/// predicate/object list abbreviations — but no variables: data blocks
/// must be ground, and a variable is a parse error.
Result<UpdateBatch> ParseUpdate(std::string_view text);

/// One pattern-based update: `DELETE {t} INSERT {t} WHERE {g}` and its
/// single-template forms. The WHERE group is evaluated against the current
/// store version; each solution instantiates the delete templates first,
/// then the insert templates (SPARQL 1.1 Update semantics: all deletes of
/// an operation happen before its inserts).
struct PatternUpdateOp {
  std::vector<TriplePattern> delete_templates;
  std::vector<TriplePattern> insert_templates;
  GroupGraphPattern where;
};

/// One `;`-separated operation of an update script: either a ground DATA
/// batch or a pattern update. Each command commits as its own version, so
/// later commands see earlier commands' effects.
struct UpdateCommand {
  bool is_pattern = false;
  UpdateBatch data;       ///< !is_pattern
  PatternUpdateOp pattern;///< is_pattern
  VarTable vars;          ///< variable table for `pattern`
};

/// Parses the full SPARQL 1.1 Update fragment including pattern-based
/// operations:
///
///   Prologue ( INSERT DATA {..} | DELETE DATA {..}
///            | DELETE {t} [INSERT {t}] WHERE {g}
///            | INSERT {t} WHERE {g}
///            | DELETE WHERE {t} )  (';' ...)* ';'?
///
/// Implemented by the query parser (sparql/parser.cc), which owns the
/// template/pattern grammar. DATA-only texts should keep using
/// ParseUpdate, which merges every operation into one batch (one commit).
Result<std::vector<UpdateCommand>> ParseUpdateScript(std::string_view text);

/// True when the update text contains a pattern-based operation (a WHERE
/// keyword outside comments/strings) and must go through
/// ParseUpdateScript; DATA-only texts return false.
bool UpdateTextHasPatternOp(std::string_view text);

}  // namespace sparqluo
