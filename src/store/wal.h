// Segment-based write-ahead log for the versioned store.
//
// Durability tier under the copy-on-write commit path: before a commit
// publishes version N, the serialized UpdateBatch that produced it is
// appended to the log and (per the configured fsync policy) made durable.
// On restart, recovery loads the latest snapshot and replays every record
// past its version; because the dictionary assigns TermIds in
// first-appearance order and records replay in commit order, the rebuilt
// store is bit-identical to the pre-crash one (docs/durability.md).
//
// On-disk layout (all integers little-endian):
//
//   <dir>/wal-<20-digit first version>.log     segment files
//   <dir>/checkpoint                           checkpoint marker
//
// Segment: 8-byte magic "SPQLWAL1", then records back to back. Record:
//
//   u32 crc        CRC-32 of the 12 following header+payload bytes onward
//                  (payload_length, version, payload)
//   u32 payload_length
//   u64 version    the version id this batch committed as
//   payload        u32 op_count, then per op: u8 kind (0 insert, 1
//                  delete) + three term records (rdf/term_codec.h)
//
// A torn tail — a partial record at the end of the *last* segment, the
// signature of a crash mid-append — is detected by CRC/length and
// truncated away on recovery. The same damage in an earlier segment has
// no innocent explanation and fails recovery instead.
//
// Checkpoint marker: "SPQLCKP1", u64 version, u64 store_size, u32 CRC-32
// of the 16 payload bytes. It records which snapshot the WAL dir pairs
// with; segments wholly at or below the marker version are retired by
// Checkpoint().
//
// Thread safety: Append may be called from any number of threads (the
// versioned store serializes writers today, but the log does not rely on
// it); group commit coalesces concurrent fsyncs — every appender whose
// record was written before an fsync started is acknowledged by that one
// fsync.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "store/update.h"
#include "util/fault_fs.h"
#include "util/status.h"

namespace sparqluo {

/// When an Append is acknowledged as durable.
enum class FsyncPolicy {
  kAlways,    ///< fsync before every Append returns (group-committed).
  kInterval,  ///< background fsync every interval_ms; bounded loss window.
  kOff,       ///< never fsync; the OS decides. Loss window unbounded.
};

/// Parses "always" | "off" | a positive integer (interval in ms).
Result<FsyncPolicy> ParseFsyncPolicy(const std::string& text, int* interval_ms);

/// One recovered log record: the batch that committed `version`.
struct WalRecord {
  uint64_t version = 0;
  UpdateBatch batch;
};

/// What recovery found and did — surfaced to the operator at startup.
struct WalRecoveryInfo {
  uint64_t checkpoint_version = 0;  ///< From the marker; 0 if none.
  uint64_t checkpoint_store_size = 0;
  uint64_t records_replayed = 0;
  uint64_t segments_scanned = 0;
  bool torn_tail_truncated = false;
  uint64_t truncated_bytes = 0;
};

class Wal {
 public:
  struct Options {
    FsyncPolicy fsync = FsyncPolicy::kAlways;
    int interval_ms = 50;       ///< kInterval flush period.
    uint64_t segment_bytes = 64ull << 20;  ///< Rotate past this size.
    FileOps* ops = nullptr;     ///< null = FileOps::Default().
  };

  /// Opens (creating if needed) the log directory: reads the checkpoint
  /// marker, scans segment files, and readies the newest segment for
  /// appending. Does not replay anything — call Recover next.
  static Result<std::unique_ptr<Wal>> Open(const std::string& dir,
                                           const Options& opts);

  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Reads every record with version > `from_version`, in file order.
  /// Truncates a torn tail in the last segment (recording it in `info`);
  /// corruption anywhere else is a ParseError.
  Result<std::vector<WalRecord>> Recover(uint64_t from_version,
                                         WalRecoveryInfo* info);

  /// Appends the record for `version` and, under FsyncPolicy::kAlways,
  /// makes it durable before returning. A write failure is rolled back
  /// (the segment is truncated to its pre-record size) and reported as
  /// kUnavailable; if even the rollback fails the log wedges and every
  /// later Append returns the sticky error — reads are unaffected.
  Status Append(uint64_t version, const std::vector<UpdateOp>& ops);

  /// Fsyncs everything appended so far (any policy).
  Status Flush();

  /// Durably records that `version` is captured by a snapshot of
  /// `store_size` triples, then retires segments whose records are all at
  /// or below it. Called by SaveSnapshot after a successful publish.
  Status Checkpoint(uint64_t version, uint64_t store_size);

  /// Version recorded by the checkpoint marker (0 = no checkpoint yet).
  uint64_t checkpoint_version() const {
    return checkpoint_version_.load(std::memory_order_relaxed);
  }

  /// Store size the checkpoint marker recorded — a sanity cross-check that
  /// the WAL directory is paired with the right snapshot.
  uint64_t checkpoint_store_size() const { return checkpoint_store_size_; }

  /// Flushes and closes the active segment. Idempotent; called by the
  /// destructor. After Close every Append fails.
  Status Close();

  const std::string& dir() const { return dir_; }
  const Options& options() const { return opts_; }

 private:
  Wal(std::string dir, const Options& opts);

  /// Opens segment `path` for appending (creating it with a magic header
  /// when `create`). Caller holds append_mu_.
  Status OpenSegmentLocked(const std::string& path, bool create,
                           uint64_t existing_bytes);
  /// Seals the active segment and starts a new one whose name records
  /// `first_version`. Caller holds append_mu_.
  Status RotateLocked(uint64_t first_version);
  /// Group commit: returns once every byte up to `lsn` is fsynced. `fd` is
  /// the segment the caller's bytes landed in (still open if they are not
  /// yet covered — rotation seals segments before closing them).
  Status SyncTo(uint64_t lsn, int fd);
  /// Re-reads segment file names, sorted by first version.
  Result<std::vector<std::string>> ListSegments() const;
  Status WriteCheckpointMarker(uint64_t version, uint64_t store_size);
  Status ReadCheckpointMarker();
  void StartFlusher();

  const std::string dir_;
  const Options opts_;
  FileOps* ops_;  ///< Resolved, never null.

  std::mutex append_mu_;  ///< Serializes segment writes and rotation.
  int fd_ = -1;                     ///< Active segment; guarded by append_mu_.
  std::string active_path_;         ///< Guarded by append_mu_.
  uint64_t active_bytes_ = 0;       ///< Bytes in the active segment.
  uint64_t written_lsn_ = 0;        ///< Log-wide bytes appended OK so far.
  Status wedged_ = Status::OK();    ///< Sticky failure after a bad rollback.
  bool closed_ = false;

  std::mutex sync_mu_;  ///< Serializes fsyncs (group commit).
  uint64_t synced_lsn_ = 0;         ///< Bytes known durable.

  std::atomic<uint64_t> checkpoint_version_{0};
  uint64_t checkpoint_store_size_ = 0;

  std::thread flusher_;  ///< kInterval background fsync.
  std::mutex flusher_mu_;
  std::condition_variable flusher_cv_;
  bool flusher_stop_ = false;
};

}  // namespace sparqluo
