// One immutable committed version of the database.
//
// A DatabaseVersion bundles everything the read path needs — store,
// statistics, BGP engine, executor — pinned together so their lifetimes
// cannot diverge. Readers obtain a shared_ptr<const DatabaseVersion> from
// VersionedStore::Current() (or Database::Snapshot()) and keep executing
// against it for as long as they hold the pointer, no matter how many
// commits happen meanwhile: snapshot isolation by reference counting.
//
// The dictionary is the one structure shared *across* versions: it is
// append-only and append-safe (see rdf/dictionary.h), so term ids are
// stable for the lifetime of the database and a version only needs to
// hold a reference to keep decoding valid.
#pragma once

#include <cstdint>
#include <memory>

#include "bgp/engine.h"
#include "engine/executor.h"
#include "rdf/statistics.h"

namespace sparqluo {

struct DatabaseVersion {
  uint64_t id = 0;  ///< 0 = the version published by Database::Finalize().
  EngineKind engine_kind = EngineKind::kWco;
  std::shared_ptr<const Dictionary> dict;   ///< Shared across all versions.
  std::shared_ptr<const TripleStore> store; ///< Immutable once published.
  Statistics stats;                         ///< Recomputed per commit.
  std::unique_ptr<BgpEngine> engine;        ///< Bound to store/dict/stats.
  std::unique_ptr<Executor> executor;       ///< Bound to engine/dict/store.
};

}  // namespace sparqluo
