// Versioned, snapshot-isolated update subsystem.
//
// The write path of the database. The design is copy-on-write with
// compaction at commit:
//
//   Stage(batch)   — replays INSERT/DELETE ops into the mutable StoreDelta
//                    (dictionary terms are interned append-safely; the
//                    delta holds encoded triples). Invisible to readers.
//   Commit()       — merges base + delta into a fresh immutable
//                    TripleStore (linear merge per permutation index, see
//                    TripleStore::BuildDelta), recomputes statistics,
//                    instantiates a new engine + executor, and atomically
//                    publishes the bundle as the next DatabaseVersion.
//   Apply(batch)   — Stage + Commit under one writer critical section.
//
// Concurrency contract:
//   - Writers are serialized by a writer mutex; there is at most one
//     staged delta at a time.
//   - Readers never block and never observe a half-applied batch: they pin
//     the current version via shared_ptr (Current()) and keep using it;
//     the version stays alive until the last reader releases it.
//   - Evaluating any query on version N is bit-identical to evaluating it
//     on a store rebuilt from scratch with the same net triples: the
//     merge produces byte-identical permutation arrays, and term ids are
//     append-only so dictionary order never shifts underneath a version.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "store/delta.h"
#include "store/update.h"
#include "store/version.h"
#include "store/wal.h"

namespace sparqluo {

/// Outcome of one commit.
struct CommitStats {
  uint64_t version = 0;    ///< Version id current after the commit.
  size_t store_size = 0;   ///< Triples in the committed store.
  size_t inserted = 0;     ///< Net new triples (duplicates don't count).
  size_t deleted = 0;      ///< Net removed triples (absent deletes don't).
  double commit_ms = 0.0;  ///< Merge + stats + engine build + publish.
};

class VersionedStore {
 public:
  /// Publishes `base` (which must be built) as version 0. The dictionary
  /// is shared with the caller: the store appends to it when staging
  /// batches that introduce new terms. `build_pool` (not owned, may be
  /// null) parallelizes the per-permutation CSR merges of each commit;
  /// it must outlive the last commit. `v0_stats`, when given, are adopted
  /// for version 0 instead of recomputing — the snapshot fast path, which
  /// already persisted statistics alongside the indexes; later commits
  /// always recompute.
  VersionedStore(std::shared_ptr<Dictionary> dict,
                 std::shared_ptr<const TripleStore> base, EngineKind kind,
                 ExecutorPool* build_pool = nullptr,
                 std::optional<Statistics> v0_stats = std::nullopt);

  VersionedStore(const VersionedStore&) = delete;
  VersionedStore& operator=(const VersionedStore&) = delete;

  /// Pins the current committed version. Never null; safe from any thread.
  std::shared_ptr<const DatabaseVersion> Current() const;

  /// Id of the current committed version.
  uint64_t version() const { return Current()->id; }

  /// Replays `batch` into the pending delta without publishing.
  void Stage(const UpdateBatch& batch);

  /// Publishes the pending delta as a new version and clears it. With an
  /// empty delta this is a no-op: no new version is published and the
  /// returned stats carry the current version unchanged.
  ///
  /// With a WAL attached, the batch is logged (and made durable per the
  /// fsync policy) *before* the version publishes. A failed append returns
  /// kUnavailable and publishes nothing — the delta stays staged, readers
  /// keep the prior version, and the commit can be retried.
  Result<CommitStats> Commit();

  /// Stage + Commit as one writer critical section.
  Result<CommitStats> Apply(const UpdateBatch& batch);

  /// Pattern-update commit (DELETE/INSERT ... WHERE): runs `make_batch`
  /// against the current version inside the writer critical section —
  /// serializing the read-evaluate-write cycle against concurrent writers —
  /// and applies the returned batch as one new version. Readers still never
  /// block: they keep pinning the version current before the commit.
  Result<CommitStats> ApplyWith(
      const std::function<Result<UpdateBatch>(const DatabaseVersion&)>&
          make_batch);

  /// Pending (staged, uncommitted) delta sizes — diagnostic only.
  size_t pending_adds() const;
  size_t pending_removes() const;

  const std::shared_ptr<Dictionary>& dict() const { return dict_; }

  /// Arms write-ahead logging and replays what the log holds beyond the
  /// state already published. Must be called on a freshly finalized store
  /// (version 0, nothing staged, nothing committed): the published version
  /// is rebased to the log's checkpoint version — the snapshot the WAL
  /// directory pairs with — every record past it is replayed as its own
  /// commit, and only then do new commits start appending to the log.
  /// Replay is idempotent, so a snapshot newer than the checkpoint marker
  /// (a crash between snapshot publish and marker write) converges to the
  /// same final state.
  Result<WalRecoveryInfo> AttachWal(std::unique_ptr<Wal> wal);

  /// The attached log, or null. Used by checkpointing (SaveSnapshot) and
  /// shutdown; lifetime is the store's.
  Wal* wal() const { return wal_.get(); }

  /// Registers a hook invoked after every successful commit publishes a
  /// new version, with the just-published version id. Hooks fire inside
  /// the writer critical section — serialized with commits, each published
  /// version observed exactly once, and never concurrently with
  /// themselves — so they must be short and must not commit or register/
  /// unregister listeners. QueryService uses this as the cache
  /// invalidation point: it covers commits made directly through
  /// Database::Apply/Update as well, not just the service's own
  /// SubmitUpdate path. Returns a token for RemoveCommitListener.
  uint64_t AddCommitListener(std::function<void(uint64_t version)> listener);

  /// Unregisters a commit listener. Blocks while the listener is being
  /// invoked by a concurrent commit, so after this returns the listener
  /// will never run again — safe to destroy its captured state. Unknown
  /// ids are ignored.
  void RemoveCommitListener(uint64_t id);

 private:
  std::shared_ptr<const DatabaseVersion> MakeVersion(
      uint64_t id, std::shared_ptr<const TripleStore> store,
      std::optional<Statistics> stats = std::nullopt) const;
  void StageLocked(const UpdateBatch& batch);
  /// `log_to_wal` is false only during AttachWal replay, where the record
  /// being committed already lives in the log.
  Result<CommitStats> CommitLocked(bool log_to_wal);

  std::shared_ptr<Dictionary> dict_;
  EngineKind kind_;
  ExecutorPool* build_pool_;  ///< Not owned; null = sequential merges.

  mutable std::mutex current_mu_;  ///< Guards the current_ pointer swap.
  std::shared_ptr<const DatabaseVersion> current_;

  mutable std::mutex writer_mu_;  ///< Serializes Stage/Commit/Apply.
  StoreDelta delta_;              ///< Guarded by writer_mu_.
  /// Staged ops in stage order, the exact sequence a WAL record replays —
  /// the delta nets ops and loses ordering, which bit-identity needs.
  /// Guarded by writer_mu_; maintained only while a WAL is attached.
  std::vector<UpdateOp> pending_ops_;
  std::unique_ptr<Wal> wal_;  ///< Null until AttachWal.

  /// Post-commit hooks; guarded by listeners_mu_, which is held across
  /// invocation so removal synchronizes with in-flight calls.
  mutable std::mutex listeners_mu_;
  uint64_t next_listener_id_ = 1;
  std::vector<std::pair<uint64_t, std::function<void(uint64_t)>>> listeners_;
};

}  // namespace sparqluo
