#include "store/wal.h"

#include <fcntl.h>
#include <sys/stat.h>

#include <algorithm>
#include <cctype>
#include <cstring>
#include <fstream>

#include "obs/metrics.h"
#include "rdf/term_codec.h"
#include "util/binary_io.h"
#include "util/crc32.h"
#include "util/timer.h"

namespace sparqluo {

namespace {

constexpr char kSegmentMagic[8] = {'S', 'P', 'Q', 'L', 'W', 'A', 'L', '1'};
constexpr char kMarkerMagic[8] = {'S', 'P', 'Q', 'L', 'C', 'K', 'P', '1'};
constexpr size_t kRecordHeaderBytes = 16;  // u32 crc, u32 len, u64 version
constexpr char kMarkerName[] = "checkpoint";

// --- metrics ----------------------------------------------------------

Counter* AppendsCounter() {
  return MetricRegistry::Global().GetCounter(
      "sparqluo_wal_appends_total", "WAL records appended");
}
Counter* AppendedBytesCounter() {
  return MetricRegistry::Global().GetCounter(
      "sparqluo_wal_appended_bytes_total", "Bytes appended to WAL segments");
}
Counter* AppendFailuresCounter() {
  return MetricRegistry::Global().GetCounter(
      "sparqluo_wal_append_failures_total",
      "WAL appends that failed (commit refused, nothing published)");
}
Counter* ReplayedCounter() {
  return MetricRegistry::Global().GetCounter(
      "sparqluo_wal_records_replayed_total",
      "WAL records replayed during recovery");
}
Counter* CheckpointsCounter() {
  return MetricRegistry::Global().GetCounter(
      "sparqluo_wal_checkpoints_total", "WAL checkpoints written");
}
Counter* RetiredCounter() {
  return MetricRegistry::Global().GetCounter(
      "sparqluo_wal_segments_retired_total",
      "WAL segments retired by checkpoints");
}
Histogram* FsyncHistogram() {
  return MetricRegistry::Global().GetHistogram(
      "sparqluo_wal_fsync_ms", "WAL fsync latency (ms)");
}
Histogram* RecoveryHistogram() {
  return MetricRegistry::Global().GetHistogram(
      "sparqluo_wal_recovery_ms", "WAL recovery (scan + replay read) time (ms)");
}

// --- segment names ----------------------------------------------------

std::string SegmentName(uint64_t first_version) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%020llu.log",
                static_cast<unsigned long long>(first_version));
  return buf;
}

/// Parses "wal-<digits>.log"; false for any other name.
bool ParseSegmentName(const std::string& name, uint64_t* first_version) {
  if (name.size() != 28 || name.rfind("wal-", 0) != 0 ||
      name.compare(24, 4, ".log") != 0) {
    return false;
  }
  uint64_t v = 0;
  for (size_t i = 4; i < 24; ++i) {
    if (!std::isdigit(static_cast<unsigned char>(name[i]))) return false;
    v = v * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *first_version = v;
  return true;
}

/// File size via stat (read-side helper; not part of the fault seam).
Result<uint64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::Unavailable("stat " + path + ": " + std::strerror(errno));
  }
  return static_cast<uint64_t>(st.st_size);
}

/// Serializes one batch into the record payload shape (see wal.h).
Status SerializePayload(const std::vector<UpdateOp>& ops, std::string* out) {
  PutU32(out, static_cast<uint32_t>(ops.size()));
  for (const UpdateOp& op : ops) {
    for (const Term* t : {&op.triple.s, &op.triple.p, &op.triple.o}) {
      if (!TermFitsRecord(*t)) {
        return Status::InvalidArgument(
            "update term exceeds the 16 MiB record size cap");
      }
    }
    out->push_back(op.kind == UpdateOp::Kind::kDelete ? 1 : 0);
    AppendTermRecord(out, op.triple.s);
    AppendTermRecord(out, op.triple.p);
    AppendTermRecord(out, op.triple.o);
  }
  return Status::OK();
}

/// Decodes one record payload; false (with `msg`) on malformed bytes.
bool ParsePayload(const uint8_t* data, size_t size, UpdateBatch* batch,
                  std::string* msg) {
  ByteReader in(data, size);
  uint32_t op_count;
  if (!in.ReadU32(&op_count)) {
    *msg = "truncated op count";
    return false;
  }
  batch->ops.reserve(op_count);
  for (uint32_t i = 0; i < op_count; ++i) {
    uint8_t kind;
    if (!in.ReadU8(&kind) || kind > 1) {
      *msg = "bad op kind (op " + std::to_string(i) + ")";
      return false;
    }
    UpdateOp op;
    op.kind = kind == 1 ? UpdateOp::Kind::kDelete : UpdateOp::Kind::kInsert;
    for (Term* t : {&op.triple.s, &op.triple.p, &op.triple.o}) {
      if (!ReadTermRecord(&in, "wal", i, op_count, t, msg)) return false;
    }
    batch->ops.push_back(std::move(op));
  }
  if (in.remaining() != 0) {
    *msg = "trailing bytes after ops";
    return false;
  }
  return true;
}

}  // namespace

Result<FsyncPolicy> ParseFsyncPolicy(const std::string& text,
                                     int* interval_ms) {
  if (text == "always") return FsyncPolicy::kAlways;
  if (text == "off") return FsyncPolicy::kOff;
  char* end = nullptr;
  long v = std::strtol(text.c_str(), &end, 10);
  if (end != text.c_str() && *end == '\0' && v > 0) {
    *interval_ms = static_cast<int>(v);
    return FsyncPolicy::kInterval;
  }
  return Status::InvalidArgument(
      "--fsync must be 'always', 'off', or a positive interval in ms, got '" +
      text + "'");
}

Wal::Wal(std::string dir, const Options& opts)
    : dir_(std::move(dir)), opts_(opts), ops_(ResolveFileOps(opts.ops)) {}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& dir,
                                       const Options& opts) {
  auto wal = std::unique_ptr<Wal>(new Wal(dir, opts));
  SPARQLUO_RETURN_NOT_OK(wal->ops_->Mkdir(dir));
  SPARQLUO_RETURN_NOT_OK(wal->ReadCheckpointMarker());
  // The newest existing segment (if any) becomes the append target; its fd
  // opens lazily on the first Append, after Recover has had the chance to
  // truncate a torn tail off it.
  SPARQLUO_ASSIGN_OR_RETURN(std::vector<std::string> segments,
                            wal->ListSegments());
  if (!segments.empty()) {
    wal->active_path_ = dir + "/" + segments.back();
    SPARQLUO_ASSIGN_OR_RETURN(wal->active_bytes_,
                              FileSize(wal->active_path_));
  }
  if (opts.fsync == FsyncPolicy::kInterval) wal->StartFlusher();
  return wal;
}

Wal::~Wal() { (void)Close(); }

Result<std::vector<std::string>> Wal::ListSegments() const {
  SPARQLUO_ASSIGN_OR_RETURN(std::vector<std::string> names,
                            ops_->ListDir(dir_));
  std::vector<std::string> segments;
  for (const std::string& name : names) {
    uint64_t v;
    if (ParseSegmentName(name, &v)) segments.push_back(name);
  }
  // Zero-padded fixed-width names: lexicographic == numeric order.
  std::sort(segments.begin(), segments.end());
  return segments;
}

Status Wal::ReadCheckpointMarker() {
  const std::string path = dir_ + "/" + kMarkerName;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::OK();  // no checkpoint yet
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  auto err = [&](const std::string& msg) {
    return Status::ParseError("wal checkpoint marker '" + path + "': " + msg);
  };
  if (blob.size() != 28) return err("expected 28 bytes, found " +
                                    std::to_string(blob.size()));
  if (std::memcmp(blob.data(), kMarkerMagic, 8) != 0) return err("bad magic");
  ByteReader reader(reinterpret_cast<const uint8_t*>(blob.data() + 8), 20);
  uint64_t version, store_size;
  uint32_t crc;
  reader.ReadU64(&version);
  reader.ReadU64(&store_size);
  reader.ReadU32(&crc);
  if (crc != Crc32(blob.data() + 8, 16)) return err("checksum mismatch");
  checkpoint_version_.store(version, std::memory_order_relaxed);
  checkpoint_store_size_ = store_size;
  return Status::OK();
}

Status Wal::WriteCheckpointMarker(uint64_t version, uint64_t store_size) {
  std::string blob(kMarkerMagic, 8);
  PutU64(&blob, version);
  PutU64(&blob, store_size);
  PutU32(&blob, Crc32(blob.data() + 8, 16));

  const std::string path = dir_ + "/" + kMarkerName;
  const std::string tmp = path + ".tmp";
  SPARQLUO_ASSIGN_OR_RETURN(
      int fd, ops_->Open(tmp, O_WRONLY | O_CREAT | O_TRUNC, 0644));
  Status st = ops_->WriteAll(fd, blob.data(), blob.size());
  if (st.ok()) st = ops_->Fsync(fd);
  Status close_st = ops_->Close(fd);
  if (st.ok()) st = close_st;
  if (!st.ok()) {
    (void)ops_->Remove(tmp);
    return Status::Unavailable("wal checkpoint marker write failed: " +
                               st.message());
  }
  SPARQLUO_RETURN_NOT_OK(ops_->Rename(tmp, path));
  SPARQLUO_RETURN_NOT_OK(ops_->SyncDir(dir_));
  checkpoint_version_.store(version, std::memory_order_relaxed);
  checkpoint_store_size_ = store_size;
  return Status::OK();
}

Result<std::vector<WalRecord>> Wal::Recover(uint64_t from_version,
                                            WalRecoveryInfo* info) {
  Timer timer;
  WalRecoveryInfo local;
  local.checkpoint_version = checkpoint_version();
  local.checkpoint_store_size = checkpoint_store_size_;
  std::vector<WalRecord> records;

  SPARQLUO_ASSIGN_OR_RETURN(std::vector<std::string> segments, ListSegments());
  for (size_t seg = 0; seg < segments.size(); ++seg) {
    const bool last = seg + 1 == segments.size();
    const std::string path = dir_ + "/" + segments[seg];
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
      return Status::Unavailable("cannot open wal segment: " + path);
    }
    std::string blob((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    ++local.segments_scanned;

    auto err = [&](const std::string& msg) {
      return Status::ParseError("wal segment '" + path + "': " + msg);
    };
    if (blob.size() < 8 || std::memcmp(blob.data(), kSegmentMagic, 8) != 0) {
      // A header shorter than the magic can only be a torn creation of the
      // newest segment; anywhere else the log is damaged.
      if (last && blob.size() < 8) {
        local.torn_tail_truncated = true;
        local.truncated_bytes += blob.size();
        SPARQLUO_RETURN_NOT_OK(ops_->Remove(path));
        SPARQLUO_RETURN_NOT_OK(ops_->SyncDir(dir_));
        std::lock_guard<std::mutex> lock(append_mu_);
        if (active_path_ == path) {
          active_path_.clear();
          active_bytes_ = 0;
        }
        continue;
      }
      return err("bad segment magic");
    }

    const uint8_t* data = reinterpret_cast<const uint8_t*>(blob.data());
    size_t off = 8;
    while (off < blob.size()) {
      // Anything that doesn't parse as a whole CRC-valid record is a torn
      // tail if it sits at the end of the newest segment — the expected
      // residue of a crash mid-append — and corruption anywhere else.
      std::string torn_reason;
      uint64_t version = 0;
      uint32_t payload_len = 0;
      const size_t remaining = blob.size() - off;
      if (remaining < kRecordHeaderBytes) {
        torn_reason = "partial record header";
      } else {
        ByteReader header(data + off, kRecordHeaderBytes, off);
        uint32_t crc;
        header.ReadU32(&crc);
        header.ReadU32(&payload_len);
        header.ReadU64(&version);
        if (payload_len > remaining - kRecordHeaderBytes) {
          torn_reason = "record length past end of file";
        } else if (crc != Crc32(data + off + 4, 12 + payload_len)) {
          torn_reason = "record checksum mismatch";
        }
      }
      if (!torn_reason.empty()) {
        if (!last) {
          return err(torn_reason + " (offset " + std::to_string(off) +
                     ") in a sealed segment");
        }
        local.torn_tail_truncated = true;
        local.truncated_bytes += blob.size() - off;
        SPARQLUO_ASSIGN_OR_RETURN(int fd, ops_->Open(path, O_WRONLY, 0644));
        Status st = ops_->Truncate(fd, off);
        if (st.ok()) st = ops_->Fsync(fd);
        Status close_st = ops_->Close(fd);
        if (st.ok()) st = close_st;
        if (!st.ok()) {
          return Status::Unavailable("truncating torn wal tail failed: " +
                                     st.message());
        }
        std::lock_guard<std::mutex> lock(append_mu_);
        if (active_path_ == path) active_bytes_ = off;
        break;
      }

      // CRC-valid bytes that fail to decode were written wrong, not torn.
      if (version > from_version) {
        WalRecord rec;
        rec.version = version;
        std::string msg;
        if (!ParsePayload(data + off + kRecordHeaderBytes, payload_len,
                          &rec.batch, &msg)) {
          return err("corrupt record payload at offset " +
                     std::to_string(off) + ": " + msg);
        }
        records.push_back(std::move(rec));
      }
      off += kRecordHeaderBytes + payload_len;
    }
  }

  local.records_replayed = records.size();
  ReplayedCounter()->Increment(records.size());
  RecoveryHistogram()->Observe(timer.ElapsedMillis());
  if (info != nullptr) *info = local;
  return records;
}

Status Wal::OpenSegmentLocked(const std::string& path, bool create,
                              uint64_t existing_bytes) {
  int flags = O_WRONLY | O_APPEND | (create ? O_CREAT | O_EXCL : 0);
  SPARQLUO_ASSIGN_OR_RETURN(int fd, ops_->Open(path, flags, 0644));
  if (create) {
    // Make the new segment's directory entry durable: a sealed predecessor
    // must never outlive a successor that vanished with the dir entry. Any
    // failure removes the half-created file so a retry can create again.
    Status st = ops_->WriteAll(fd, kSegmentMagic, 8);
    if (st.ok()) st = ops_->SyncDir(dir_);
    if (!st.ok()) {
      (void)ops_->Close(fd);
      (void)ops_->Remove(path);
      return Status::Unavailable("wal segment create failed: " + st.message());
    }
    existing_bytes = 8;
  }
  fd_ = fd;
  active_path_ = path;
  active_bytes_ = existing_bytes;
  return Status::OK();
}

Status Wal::RotateLocked(uint64_t first_version) {
  if (fd_ >= 0) {
    // Seal the outgoing segment: everything in it becomes durable here, so
    // group commit never needs a closed fd.
    Timer timer;
    Status st = ops_->Fsync(fd_);
    FsyncHistogram()->Observe(timer.ElapsedMillis());
    if (!st.ok()) return Status::Unavailable("wal seal failed: " + st.message());
    {
      std::lock_guard<std::mutex> lock(sync_mu_);
      synced_lsn_ = written_lsn_;
    }
    SPARQLUO_RETURN_NOT_OK(ops_->Close(fd_));
    fd_ = -1;
  }
  return OpenSegmentLocked(dir_ + "/" + SegmentName(first_version),
                           /*create=*/true, 0);
}

Status Wal::Append(uint64_t version, const std::vector<UpdateOp>& ops) {
  std::string record;
  record.reserve(kRecordHeaderBytes + 64 * ops.size());
  record.resize(4);  // crc placeholder
  std::string payload;
  SPARQLUO_RETURN_NOT_OK(SerializePayload(ops, &payload));
  PutU32(&record, static_cast<uint32_t>(payload.size()));
  PutU64(&record, version);
  record.append(payload);
  const uint32_t crc = Crc32(record.data() + 4, record.size() - 4);
  record[0] = static_cast<char>(crc);
  record[1] = static_cast<char>(crc >> 8);
  record[2] = static_cast<char>(crc >> 16);
  record[3] = static_cast<char>(crc >> 24);

  uint64_t my_lsn = 0;
  int my_fd = -1;
  {
    std::lock_guard<std::mutex> lock(append_mu_);
    if (closed_) return Status::Unavailable("wal is closed");
    if (!wedged_.ok()) return wedged_;
    ops_->Crash(CrashPoint::kWalBeforeAppend);
    if (fd_ < 0) {
      // Lazy open: resume the newest on-disk segment (post-Recover size),
      // or start the first one.
      if (active_path_.empty()) {
        SPARQLUO_RETURN_NOT_OK(RotateLocked(version));
      } else {
        SPARQLUO_RETURN_NOT_OK(
            OpenSegmentLocked(active_path_, /*create=*/false, active_bytes_));
      }
    } else if (active_bytes_ >= opts_.segment_bytes) {
      SPARQLUO_RETURN_NOT_OK(RotateLocked(version));
    }
    Status st = ops_->WriteAll(fd_, record.data(), record.size());
    if (!st.ok()) {
      AppendFailuresCounter()->Increment();
      // Roll the partial record back so the tail stays clean for the next
      // try; if even that fails the log wedges rather than risk feeding a
      // later reader a half-record it would mistake for a crash tail.
      Status trunc = ops_->Truncate(fd_, active_bytes_);
      if (!trunc.ok()) {
        wedged_ = Status::Unavailable(
            "wal wedged: append failed (" + st.message() +
            ") and rollback truncate failed (" + trunc.message() + ")");
        return wedged_;
      }
      return Status::Unavailable("wal append failed: " + st.message());
    }
    active_bytes_ += record.size();
    written_lsn_ += record.size();
    my_lsn = written_lsn_;
    my_fd = fd_;
    ops_->Crash(CrashPoint::kWalAfterAppend);
  }
  AppendsCounter()->Increment();
  AppendedBytesCounter()->Increment(record.size());

  if (opts_.fsync == FsyncPolicy::kAlways) {
    Status st = SyncTo(my_lsn, my_fd);
    if (!st.ok()) {
      AppendFailuresCounter()->Increment();
      return st;
    }
    ops_->Crash(CrashPoint::kWalAfterFsync);
  }
  return Status::OK();
}

Status Wal::SyncTo(uint64_t lsn, int fd) {
  std::lock_guard<std::mutex> lock(sync_mu_);
  // Group commit: a concurrent appender's fsync that started after our
  // write already covered our bytes.
  if (synced_lsn_ >= lsn) return Status::OK();
  // Our bytes are below synced_lsn_ only in the active segment — rotation
  // seals (fsyncs) a segment before closing it — so `fd` is still open.
  Timer timer;
  Status st = ops_->Fsync(fd);
  FsyncHistogram()->Observe(timer.ElapsedMillis());
  if (!st.ok()) {
    return Status::Unavailable("wal fsync failed: " + st.message());
  }
  synced_lsn_ = std::max(synced_lsn_, lsn);
  return Status::OK();
}

Status Wal::Flush() {
  uint64_t lsn;
  int fd;
  {
    std::lock_guard<std::mutex> lock(append_mu_);
    if (!wedged_.ok()) return wedged_;
    if (fd_ < 0) return Status::OK();
    lsn = written_lsn_;
    fd = fd_;
  }
  return SyncTo(lsn, fd);
}

Status Wal::Checkpoint(uint64_t version, uint64_t store_size) {
  SPARQLUO_RETURN_NOT_OK(Flush());
  {
    // Rotate so the records now covered by the snapshot don't share a
    // segment with future ones — otherwise the active segment could never
    // retire. active_bytes_ > 8 covers the lazily-unopened case too: a
    // recovered segment awaiting its first post-restart append still
    // rotates away so the checkpoint can retire it.
    std::lock_guard<std::mutex> lock(append_mu_);
    if (closed_) return Status::Unavailable("wal is closed");
    if (active_bytes_ > 8) {
      SPARQLUO_RETURN_NOT_OK(RotateLocked(version + 1));
    }
  }
  SPARQLUO_RETURN_NOT_OK(WriteCheckpointMarker(version, store_size));
  CheckpointsCounter()->Increment();
  ops_->Crash(CrashPoint::kCheckpointAfterMarker);

  // A segment is obsolete once a successor exists whose first version is
  // already covered records-wise: every record it holds is ≤ `version`.
  SPARQLUO_ASSIGN_OR_RETURN(std::vector<std::string> segments, ListSegments());
  size_t retired = 0;
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    uint64_t next_first;
    if (!ParseSegmentName(segments[i + 1], &next_first)) continue;
    if (next_first <= version + 1) {
      SPARQLUO_RETURN_NOT_OK(ops_->Remove(dir_ + "/" + segments[i]));
      ++retired;
    } else {
      break;
    }
  }
  if (retired > 0) {
    SPARQLUO_RETURN_NOT_OK(ops_->SyncDir(dir_));
    RetiredCounter()->Increment(retired);
  }
  ops_->Crash(CrashPoint::kCheckpointAfterRetire);
  return Status::OK();
}

void Wal::StartFlusher() {
  flusher_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(flusher_mu_);
    while (!flusher_stop_) {
      flusher_cv_.wait_for(lock, std::chrono::milliseconds(opts_.interval_ms));
      if (flusher_stop_) break;
      lock.unlock();
      (void)Flush();  // policy kInterval acknowledges before durability
      lock.lock();
    }
  });
}

Status Wal::Close() {
  if (flusher_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(flusher_mu_);
      flusher_stop_ = true;
    }
    flusher_cv_.notify_all();
    flusher_.join();
  }
  Status flush_st = Status::OK();
  if (opts_.fsync != FsyncPolicy::kOff) flush_st = Flush();
  std::lock_guard<std::mutex> lock(append_mu_);
  if (closed_) return Status::OK();
  closed_ = true;
  if (fd_ >= 0) {
    Status close_st = ops_->Close(fd_);
    fd_ = -1;
    if (flush_st.ok()) flush_st = close_st;
  }
  return flush_st;
}

}  // namespace sparqluo
