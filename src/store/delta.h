// The mutable write-side delta of a VersionedStore.
//
// A StoreDelta accumulates the *net effect* of staged update batches
// relative to the current committed base store. Operations replay in
// order: inserting a triple cancels a pending delete of it, deleting a
// triple cancels a pending insert — so `added()` and `removed()` are
// always disjoint, which is exactly the precondition of
// TripleStore::BuildDelta. The delta is only ever touched under the
// VersionedStore writer lock and is invisible to readers: snapshot
// isolation means uncommitted writes can never influence a query.
#pragma once

#include "rdf/triple_store.h"

namespace sparqluo {

class StoreDelta {
 public:
  /// Replays one insert: the triple is pending-added and any pending
  /// delete of it is cancelled.
  void Insert(const Triple& t) {
    removed_.erase(t);
    added_.insert(t);
  }

  /// Replays one delete: the triple is pending-removed and any pending
  /// insert of it is cancelled.
  void Delete(const Triple& t) {
    added_.erase(t);
    removed_.insert(t);
  }

  bool empty() const { return added_.empty() && removed_.empty(); }
  size_t add_count() const { return added_.size(); }
  size_t remove_count() const { return removed_.size(); }

  const TripleSet& added() const { return added_; }
  const TripleSet& removed() const { return removed_; }

  void Clear() {
    added_.clear();
    removed_.clear();
  }

 private:
  TripleSet added_;    ///< Pending inserts (may already exist in base).
  TripleSet removed_;  ///< Pending deletes (may be absent from base).
};

}  // namespace sparqluo
