#include "store/versioned_store.h"

#include <cassert>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/timer.h"

namespace sparqluo {

VersionedStore::VersionedStore(std::shared_ptr<Dictionary> dict,
                               std::shared_ptr<const TripleStore> base,
                               EngineKind kind, ExecutorPool* build_pool,
                               std::optional<Statistics> v0_stats)
    : dict_(std::move(dict)), kind_(kind), build_pool_(build_pool) {
  assert(base != nullptr && base->built() &&
         "VersionedStore requires a built base store");
  current_ = MakeVersion(0, std::move(base), std::move(v0_stats));
}

std::shared_ptr<const DatabaseVersion> VersionedStore::Current() const {
  std::lock_guard<std::mutex> lock(current_mu_);
  return current_;
}

std::shared_ptr<const DatabaseVersion> VersionedStore::MakeVersion(
    uint64_t id, std::shared_ptr<const TripleStore> store,
    std::optional<Statistics> stats) const {
  auto v = std::make_shared<DatabaseVersion>();
  v->id = id;
  v->engine_kind = kind_;
  v->dict = dict_;
  v->store = std::move(store);
  v->stats = stats.has_value() ? std::move(*stats)
                               : Statistics::Compute(*v->store, *dict_);
  v->engine = MakeEngine(kind_, *v->store, *dict_, v->stats);
  v->executor =
      std::make_unique<Executor>(*v->engine, *dict_, *v->store, dict_.get());
  return v;
}

void VersionedStore::Stage(const UpdateBatch& batch) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  StageLocked(batch);
}

void VersionedStore::StageLocked(const UpdateBatch& batch) {
  for (const UpdateOp& op : batch.ops) {
    // Encoding is append-safe: new terms get fresh ids without disturbing
    // readers on any pinned version. Terms of deleted triples stay
    // interned forever — ids are never reused, so a later re-insert maps
    // back to the same ids.
    Triple t(dict_->Encode(op.triple.s), dict_->Encode(op.triple.p),
             dict_->Encode(op.triple.o));
    if (op.kind == UpdateOp::Kind::kInsert) {
      delta_.Insert(t);
    } else {
      delta_.Delete(t);
    }
  }
  if (wal_ != nullptr) {
    pending_ops_.insert(pending_ops_.end(), batch.ops.begin(),
                        batch.ops.end());
  }
}

Result<CommitStats> VersionedStore::Commit() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return CommitLocked(/*log_to_wal=*/true);
}

Result<CommitStats> VersionedStore::Apply(const UpdateBatch& batch) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  StageLocked(batch);
  return CommitLocked(/*log_to_wal=*/true);
}

Result<CommitStats> VersionedStore::ApplyWith(
    const std::function<Result<UpdateBatch>(const DatabaseVersion&)>&
        make_batch) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  Result<UpdateBatch> batch = make_batch(*Current());
  if (!batch.ok()) return batch.status();
  StageLocked(*batch);
  return CommitLocked(/*log_to_wal=*/true);
}

Result<CommitStats> VersionedStore::CommitLocked(bool log_to_wal) {
  Timer timer;
  std::shared_ptr<const DatabaseVersion> base_version = Current();
  CommitStats stats;
  if (delta_.empty()) {
    // Ops that netted to nothing change no state, publish no version, and
    // need no log record.
    pending_ops_.clear();
    stats.version = base_version->id;
    stats.store_size = base_version->store->size();
    stats.commit_ms = timer.ElapsedMillis();
    return stats;
  }
  const TripleStore& base = *base_version->store;
  // Net effect: deletes of absent triples and inserts of present ones are
  // no-ops and excluded from the reported counts.
  size_t already_present = 0;
  for (const Triple& t : delta_.added())
    if (base.Contains(t)) ++already_present;
  for (const Triple& t : delta_.removed())
    if (base.Contains(t)) ++stats.deleted;
  stats.inserted = delta_.add_count() - already_present;

  auto next = std::make_shared<TripleStore>();
  next->BuildDelta(base,
                   {delta_.added().begin(), delta_.added().end()},
                   delta_.removed(), build_pool_);
  stats.store_size = next->size();
  // Write-ahead: the batch must be on disk (durable per policy) before any
  // reader can observe the version it produces. On failure nothing
  // publishes — the delta and pending ops stay staged for a retry, and
  // readers continue on the prior version.
  if (log_to_wal && wal_ != nullptr) {
    Status st = wal_->Append(base_version->id + 1, pending_ops_);
    if (!st.ok()) {
      return Status::Unavailable("commit refused, version not published: " +
                                 st.message());
    }
  }
  auto published = MakeVersion(base_version->id + 1, std::move(next));
  stats.version = published->id;
  {
    std::lock_guard<std::mutex> lock(current_mu_);
    current_ = std::move(published);
  }
  delta_.Clear();
  pending_ops_.clear();
  stats.commit_ms = timer.ElapsedMillis();
  MetricRegistry& reg = MetricRegistry::Global();
  reg.GetCounter("sparqluo_store_commits_total", "Published store versions")
      ->Increment();
  reg.GetHistogram("sparqluo_store_commit_ms",
                   "Commit latency (staging excluded) in milliseconds")
      ->Observe(stats.commit_ms);
  reg.GetHistogram("sparqluo_store_commit_delta_triples",
                   "Net inserted+deleted triples per commit")
      ->Observe(static_cast<double>(stats.inserted + stats.deleted));
  reg.GetGauge("sparqluo_store_version", "Current published store version")
      ->Set(static_cast<int64_t>(stats.version));
  reg.GetGauge("sparqluo_store_triples", "Triples in the current version")
      ->Set(static_cast<int64_t>(stats.store_size));
  {
    // Still inside the writer critical section: every listener sees each
    // published version exactly once, in commit order, before the next
    // commit can start. listeners_mu_ is held across the calls so
    // RemoveCommitListener can synchronize with an in-flight invocation.
    std::lock_guard<std::mutex> lock(listeners_mu_);
    for (const auto& [id, listener] : listeners_) listener(stats.version);
  }
  return stats;
}

uint64_t VersionedStore::AddCommitListener(
    std::function<void(uint64_t)> listener) {
  std::lock_guard<std::mutex> lock(listeners_mu_);
  uint64_t id = next_listener_id_++;
  listeners_.emplace_back(id, std::move(listener));
  return id;
}

void VersionedStore::RemoveCommitListener(uint64_t id) {
  std::lock_guard<std::mutex> lock(listeners_mu_);
  for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
    if (it->first == id) {
      listeners_.erase(it);
      return;
    }
  }
}

Result<WalRecoveryInfo> VersionedStore::AttachWal(std::unique_ptr<Wal> wal) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (wal_ != nullptr) {
    return Status::FailedPrecondition("a WAL is already attached");
  }
  if (!delta_.empty()) {
    return Status::FailedPrecondition(
        "AttachWal requires an empty staged delta");
  }
  if (Current()->id != 0) {
    return Status::FailedPrecondition(
        "AttachWal must run before any commit (current version " +
        std::to_string(Current()->id) + ")");
  }

  // The loaded base IS the checkpointed snapshot: rebase version 0 to the
  // version the marker recorded so replayed commits continue the pre-crash
  // numbering.
  const uint64_t ckpt = wal->checkpoint_version();
  if (ckpt > 0) {
    auto cur = Current();
    if (wal->checkpoint_store_size() != cur->store->size()) {
      // Warn, don't fail: replay is idempotent, and the mismatch is also
      // the expected residue of a crash between snapshot publish and
      // marker write. A truly wrong pairing fails the version-gap check.
      SPARQLUO_LOG(kWarn)
          << "wal checkpoint recorded " << wal->checkpoint_store_size()
          << " triples but the loaded snapshot has " << cur->store->size()
          << " — verify the WAL directory pairs with this snapshot";
    }
    auto rebased = MakeVersion(ckpt, cur->store, cur->stats);
    std::lock_guard<std::mutex> current_lock(current_mu_);
    current_ = std::move(rebased);
  }

  WalRecoveryInfo info;
  SPARQLUO_ASSIGN_OR_RETURN(std::vector<WalRecord> records,
                            wal->Recover(Current()->id, &info));
  for (const WalRecord& rec : records) {
    const uint64_t expected = Current()->id + 1;
    if (rec.version != expected) {
      return Status::ParseError(
          "wal replay gap: expected version " + std::to_string(expected) +
          ", log holds " + std::to_string(rec.version) +
          " — the WAL directory does not pair with this snapshot");
    }
    StageLocked(rec.batch);
    SPARQLUO_ASSIGN_OR_RETURN(CommitStats stats,
                              CommitLocked(/*log_to_wal=*/false));
    if (stats.version != rec.version) {
      return Status::Internal("wal replay published version " +
                              std::to_string(stats.version) + " for record " +
                              std::to_string(rec.version));
    }
  }
  wal_ = std::move(wal);
  return info;
}

size_t VersionedStore::pending_adds() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return delta_.add_count();
}

size_t VersionedStore::pending_removes() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return delta_.remove_count();
}

}  // namespace sparqluo
