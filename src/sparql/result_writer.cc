#include "sparql/result_writer.h"

#include <cstdio>

namespace sparqluo {

std::string_view WireFormatContentType(WireFormat format) {
  switch (format) {
    case WireFormat::kJson: return "application/sparql-results+json";
    case WireFormat::kTsv: return "text/tab-separated-values";
    case WireFormat::kNTriples: return "application/n-triples";
  }
  return "application/octet-stream";
}

void AppendJsonString(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

StreamingResultWriter::StreamingResultWriter(WireFormat format, Sink sink,
                                             size_t flush_bytes)
    : format_(format),
      sink_(std::move(sink)),
      flush_bytes_(flush_bytes == 0 ? 1 : flush_bytes) {}

bool StreamingResultWriter::MaybeFlush() {
  if (buffer_.size() > max_buffered_) max_buffered_ = buffer_.size();
  if (buffer_.size() < flush_bytes_) return !failed_;
  return FlushAll();
}

bool StreamingResultWriter::FlushAll() {
  if (failed_) return false;
  if (buffer_.size() > max_buffered_) max_buffered_ = buffer_.size();
  if (buffer_.empty()) return true;
  bytes_emitted_ += buffer_.size();
  if (!sink_(buffer_)) {
    failed_ = true;
    buffer_.clear();
    return false;
  }
  buffer_.clear();
  return true;
}

bool StreamingResultWriter::BeginSelect(const std::vector<VarId>& schema,
                                        const VarTable& vars) {
  if (failed_ || began_) return !failed_;
  began_ = true;
  schema_ = schema;
  vars_ = &vars;
  if (format_ == WireFormat::kJson) {
    buffer_ += "{\"head\":{\"vars\":[";
    for (size_t c = 0; c < schema_.size(); ++c) {
      if (c > 0) buffer_ += ',';
      AppendJsonString(vars.Name(schema_[c]), &buffer_);
    }
    buffer_ += "]},\"results\":{\"bindings\":[";
  } else if (format_ == WireFormat::kTsv) {
    for (size_t c = 0; c < schema_.size(); ++c) {
      if (c > 0) buffer_ += '\t';
      buffer_ += '?';
      buffer_ += vars.Name(schema_[c]);
    }
    buffer_ += '\n';
  }
  // kNTriples: statements only, no header.
  return MaybeFlush();
}

bool StreamingResultWriter::WriteRow(const TermId* row, size_t width,
                                     const Dictionary& dict) {
  if (failed_) return false;
  if (format_ == WireFormat::kJson) {
    if (rows_written_ > 0) buffer_ += ',';
    buffer_ += '{';
    bool first = true;
    for (size_t c = 0; c < width; ++c) {
      TermId id = row[c];
      if (id == kUnboundTerm) continue;  // unbound vars are omitted
      if (!first) buffer_ += ',';
      first = false;
      const Term& term = dict.Decode(id);
      AppendJsonString(vars_->Name(schema_[c]), &buffer_);
      buffer_ += ":{\"type\":";
      switch (term.kind) {
        case TermKind::kIri: buffer_ += "\"uri\""; break;
        case TermKind::kLiteral: buffer_ += "\"literal\""; break;
        case TermKind::kBlank: buffer_ += "\"bnode\""; break;
      }
      buffer_ += ",\"value\":";
      AppendJsonString(term.lexical, &buffer_);
      if (term.is_literal() && !term.qualifier.empty()) {
        buffer_ += term.qualifier_is_lang ? ",\"xml:lang\":" : ",\"datatype\":";
        AppendJsonString(term.qualifier, &buffer_);
      }
      buffer_ += '}';
    }
    buffer_ += '}';
  } else if (format_ == WireFormat::kNTriples) {
    for (size_t c = 0; c < width; ++c) {
      if (c > 0) buffer_ += ' ';
      TermId id = row[c];
      if (id != kUnboundTerm) buffer_ += dict.Decode(id).ToString();
    }
    buffer_ += " .\n";
  } else {
    for (size_t c = 0; c < width; ++c) {
      if (c > 0) buffer_ += '\t';
      TermId id = row[c];
      if (id != kUnboundTerm) buffer_ += dict.Decode(id).ToString();
    }
    buffer_ += '\n';
  }
  ++rows_written_;
  return MaybeFlush();
}

bool StreamingResultWriter::WriteAll(const BindingSet& rows,
                                     const VarTable& vars,
                                     const Dictionary& dict) {
  if (!BeginSelect(rows.schema(), vars)) return false;
  size_t width = rows.width();
  if (width == 0) {
    // Zero-width results (e.g. a fully-bound BGP that matched): each
    // mapping renders as an empty JSON object / blank TSV line.
    static const TermId kNoCells = kUnboundTerm;
    for (size_t r = 0; r < rows.size(); ++r)
      if (!WriteRow(&kNoCells, 0, dict)) return false;
  } else {
    for (size_t r = 0; r < rows.size(); ++r)
      if (!WriteRow(rows.Row(r), width, dict)) return false;
  }
  return Finish();
}

bool StreamingResultWriter::WriteBoolean(bool value) {
  if (failed_ || finished_) return !failed_;
  finished_ = true;
  if (format_ == WireFormat::kJson) {
    buffer_ += value ? "{\"head\":{},\"boolean\":true}"
                     : "{\"head\":{},\"boolean\":false}";
  } else {
    buffer_ += value ? "true\n" : "false\n";
  }
  return FlushAll();
}

bool StreamingResultWriter::Finish() {
  if (failed_ || finished_) return !failed_;
  finished_ = true;
  if (began_ && format_ == WireFormat::kJson) buffer_ += "]}}";
  return FlushAll();
}

}  // namespace sparqluo
