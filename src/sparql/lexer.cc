#include "sparql/lexer.h"

#include <cctype>

#include "util/string_util.h"

namespace sparqluo {

namespace {

const char* kKeywords[] = {"SELECT", "WHERE",  "UNION",    "OPTIONAL",
                           "FILTER", "PREFIX", "DISTINCT", "REDUCED",
                           "BOUND",  "ASK",    "LIMIT",    "OFFSET",
                           "BASE",   "ORDER",  "BY",       "ASC",
                           "DESC",   "INSERT", "DELETE",   "DATA",
                           "CONSTRUCT", "GROUP", "AS",      "COUNT",
                           "SUM",    "MIN",    "MAX",      "AVG"};

bool IsKeyword(const std::string& upper) {
  for (const char* k : kKeywords)
    if (upper == k) return true;
  return false;
}

bool IsPnChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.';
}

}  // namespace

const char* TokenTypeName(TokenType type) {
  switch (type) {
    case TokenType::kEof: return "EOF";
    case TokenType::kIriRef: return "IRI";
    case TokenType::kPrefixedName: return "PrefixedName";
    case TokenType::kVariable: return "Variable";
    case TokenType::kString: return "String";
    case TokenType::kLangTag: return "LangTag";
    case TokenType::kDoubleCaret: return "^^";
    case TokenType::kNumber: return "Number";
    case TokenType::kKeyword: return "Keyword";
    case TokenType::kA: return "a";
    case TokenType::kLBrace: return "{";
    case TokenType::kRBrace: return "}";
    case TokenType::kLParen: return "(";
    case TokenType::kRParen: return ")";
    case TokenType::kDot: return ".";
    case TokenType::kSemicolon: return ";";
    case TokenType::kComma: return ",";
    case TokenType::kStar: return "*";
    case TokenType::kEq: return "=";
    case TokenType::kNeq: return "!=";
    case TokenType::kLt: return "<";
    case TokenType::kGt: return ">";
    case TokenType::kLe: return "<=";
    case TokenType::kGe: return ">=";
    case TokenType::kAndAnd: return "&&";
    case TokenType::kOrOr: return "||";
    case TokenType::kBang: return "!";
    case TokenType::kSlash: return "/";
    case TokenType::kPipe: return "|";
    case TokenType::kPlus: return "+";
  }
  return "?";
}

Result<std::vector<Token>> Tokenize(std::string_view in) {
  std::vector<Token> out;
  size_t i = 0, line = 1, col = 1;
  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n && i < in.size(); ++k, ++i) {
      if (in[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };
  auto make = [&](TokenType t, std::string text) {
    Token tok;
    tok.type = t;
    tok.text = std::move(text);
    tok.line = line;
    tok.column = col;
    out.push_back(std::move(tok));
  };

  while (i < in.size()) {
    char c = in[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    if (c == '#') {
      while (i < in.size() && in[i] != '\n') advance(1);
      continue;
    }
    if (c == '<') {
      // IRI ref if it closes with '>' before any whitespace; else operator.
      size_t j = i + 1;
      bool iri = false;
      while (j < in.size()) {
        char d = in[j];
        if (d == '>') {
          iri = true;
          break;
        }
        if (d == ' ' || d == '\t' || d == '\n' || d == '\r' || d == '"' ||
            d == '{' || d == '}')
          break;
        ++j;
      }
      if (iri) {
        make(TokenType::kIriRef, std::string(in.substr(i + 1, j - i - 1)));
        advance(j - i + 1);
      } else if (i + 1 < in.size() && in[i + 1] == '=') {
        make(TokenType::kLe, "<=");
        advance(2);
      } else {
        make(TokenType::kLt, "<");
        advance(1);
      }
      continue;
    }
    if (c == '"') {
      size_t j = i + 1;
      std::string value;
      bool closed = false;
      while (j < in.size()) {
        if (in[j] == '\\' && j + 1 < in.size()) {
          value += in[j];
          value += in[j + 1];
          j += 2;
          continue;
        }
        if (in[j] == '"') {
          closed = true;
          break;
        }
        value += in[j];
        ++j;
      }
      if (!closed)
        return Status::ParseError("unterminated string literal at line " +
                                  std::to_string(line));
      make(TokenType::kString, UnescapeLiteral(value));
      advance(j - i + 1);
      continue;
    }
    if (c == '@') {
      size_t j = i + 1;
      while (j < in.size() &&
             (std::isalnum(static_cast<unsigned char>(in[j])) || in[j] == '-'))
        ++j;
      make(TokenType::kLangTag, std::string(in.substr(i + 1, j - i - 1)));
      advance(j - i);
      continue;
    }
    if (c == '^' && i + 1 < in.size() && in[i + 1] == '^') {
      make(TokenType::kDoubleCaret, "^^");
      advance(2);
      continue;
    }
    if (c == '?' || c == '$') {
      size_t j = i + 1;
      while (j < in.size() && (std::isalnum(static_cast<unsigned char>(in[j])) ||
                               in[j] == '_'))
        ++j;
      if (j == i + 1)
        return Status::ParseError("empty variable name at line " +
                                  std::to_string(line));
      make(TokenType::kVariable, std::string(in.substr(i + 1, j - i - 1)));
      advance(j - i);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < in.size() &&
         std::isdigit(static_cast<unsigned char>(in[i + 1])))) {
      size_t j = i + 1;
      while (j < in.size() && (std::isdigit(static_cast<unsigned char>(in[j])) ||
                               in[j] == '.'))
        ++j;
      make(TokenType::kNumber, std::string(in.substr(i, j - i)));
      advance(j - i);
      continue;
    }
    switch (c) {
      case '{': make(TokenType::kLBrace, "{"); advance(1); continue;
      case '}': make(TokenType::kRBrace, "}"); advance(1); continue;
      case '(': make(TokenType::kLParen, "("); advance(1); continue;
      case ')': make(TokenType::kRParen, ")"); advance(1); continue;
      case '.': make(TokenType::kDot, "."); advance(1); continue;
      case ';': make(TokenType::kSemicolon, ";"); advance(1); continue;
      case ',': make(TokenType::kComma, ","); advance(1); continue;
      case '*': make(TokenType::kStar, "*"); advance(1); continue;
      case '/': make(TokenType::kSlash, "/"); advance(1); continue;
      case '+': make(TokenType::kPlus, "+"); advance(1); continue;
      case '=': make(TokenType::kEq, "="); advance(1); continue;
      case '>':
        if (i + 1 < in.size() && in[i + 1] == '=') {
          make(TokenType::kGe, ">=");
          advance(2);
        } else {
          make(TokenType::kGt, ">");
          advance(1);
        }
        continue;
      case '!':
        if (i + 1 < in.size() && in[i + 1] == '=') {
          make(TokenType::kNeq, "!=");
          advance(2);
        } else {
          make(TokenType::kBang, "!");
          advance(1);
        }
        continue;
      case '&':
        if (i + 1 < in.size() && in[i + 1] == '&') {
          make(TokenType::kAndAnd, "&&");
          advance(2);
          continue;
        }
        return Status::ParseError("stray '&' at line " + std::to_string(line));
      case '|':
        if (i + 1 < in.size() && in[i + 1] == '|') {
          make(TokenType::kOrOr, "||");
          advance(2);
        } else {
          make(TokenType::kPipe, "|");
          advance(1);
        }
        continue;
      default: break;
    }
    // Bare word: keyword, 'a', or prefixed name (possibly with empty prefix).
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':') {
      size_t j = i;
      bool has_colon = false;
      while (j < in.size() && (IsPnChar(in[j]) || in[j] == ':')) {
        if (in[j] == ':') has_colon = true;
        ++j;
      }
      // A trailing dot is a statement terminator, not part of the name.
      size_t end = j;
      while (end > i && in[end - 1] == '.') --end;
      if (end > i && in[end - 1] == ':' && end - i > 1) {
        // e.g. "foo:" followed by separate local part is unusual; keep as-is.
      }
      std::string word(in.substr(i, end - i));
      if (has_colon && word.find(':') < word.size()) {
        make(TokenType::kPrefixedName, word);
      } else {
        std::string upper = word;
        for (char& ch : upper) ch = static_cast<char>(std::toupper(ch));
        if (word == "a") {
          make(TokenType::kA, "a");
        } else if (IsKeyword(upper)) {
          make(TokenType::kKeyword, upper);
        } else {
          return Status::ParseError("unexpected token '" + word +
                                    "' at line " + std::to_string(line));
        }
      }
      advance(end - i);
      continue;
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' at line " + std::to_string(line));
  }
  make(TokenType::kEof, "");
  return out;
}

}  // namespace sparqluo
