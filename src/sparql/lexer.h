// SPARQL tokenizer.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace sparqluo {

enum class TokenType {
  kEof,
  kIriRef,      ///< <http://...> — text excludes the angle brackets.
  kPrefixedName,///< foo:bar or :bar — text is the raw qname.
  kVariable,    ///< ?x or $x — text excludes the sigil.
  kString,      ///< "..." — text is the unescaped value.
  kLangTag,     ///< @en — text excludes '@'.
  kDoubleCaret, ///< ^^
  kNumber,      ///< integer or decimal literal — raw text.
  kKeyword,     ///< SELECT/WHERE/UNION/OPTIONAL/... — text uppercased.
  kA,           ///< the 'a' abbreviation for rdf:type.
  kLBrace, kRBrace, kLParen, kRParen,
  kDot, kSemicolon, kComma, kStar,
  kEq, kNeq, kLt, kGt, kLe, kGe,
  kAndAnd, kOrOr, kBang,
  kSlash,       ///< / — property-path sequence
  kPipe,        ///< | — property-path alternative (|| stays kOrOr)
  kPlus,        ///< + — property-path one-or-more
};

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;
  size_t line = 0;
  size_t column = 0;
};

/// Tokenizes a full SPARQL query string. `#` comments run to end of line.
Result<std::vector<Token>> Tokenize(std::string_view input);

/// Debug name of a token type.
const char* TokenTypeName(TokenType type);

}  // namespace sparqluo
