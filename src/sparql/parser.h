// Recursive-descent SPARQL parser producing the AST of sparql/ast.h.
//
// Supported grammar (the SPARQL-UO fragment of the paper plus the SPARQL
// 1.1 surface documented in docs/sparql_surface.md):
//   Query        := Prologue (SelectQuery | AskQuery | ConstructQuery)
//   Prologue     := (PREFIX pname: <iri>)*
//   SelectQuery  := SELECT [DISTINCT] (SelectItem* | '*')? WHERE
//                   GroupGraphPattern Modifiers
//   SelectItem   := Var | '(' Agg '(' [DISTINCT] (Var|'*') ')' AS Var ')'
//   Agg          := COUNT | SUM | MIN | MAX | AVG
//   ConstructQuery := CONSTRUCT '{' Template '}' WHERE GroupGraphPattern
//   Modifiers    := [GROUP BY Var+] [ORDER BY ...] [LIMIT n] [OFFSET n]
//   GroupGraphPattern := '{' ( TriplesBlock
//                            | GroupOrUnion
//                            | OPTIONAL GroupGraphPattern
//                            | FILTER '(' Expr ')' )* '}'
//   GroupOrUnion := GroupGraphPattern (UNION GroupGraphPattern)*
//   TriplesBlock := Subject PropertyList ('.' | &'}' )
//   PropertyList := Verb ObjectList (';' Verb ObjectList)*
//   Verb         := Var | Path
//   Path         := PathSeq ('|' PathSeq)*
//   PathSeq      := PathElt ('/' PathElt)*
//   PathElt      := PathPrimary ('*' | '+')?
//   PathPrimary  := iri | 'a' | '(' Path ')'
//   ObjectList   := Object (',' Object)*
//
// `/` and `|` paths are desugared at parse time (hidden-variable chains and
// UNION); only the `*`/`+` closures reach the algebra as kPath elements.
//
// The bare `SELECT WHERE { ... }` form used by the paper's appendix is
// accepted and treated as SELECT *.
#pragma once

#include <string_view>

#include "sparql/ast.h"
#include "util/status.h"

namespace sparqluo {

/// Parses a complete SELECT, ASK or CONSTRUCT query.
Result<Query> ParseQuery(std::string_view text);

/// Parses just a group graph pattern `{ ... }` against a caller-provided
/// variable table (useful in tests and for building patterns directly).
Result<GroupGraphPattern> ParseGroupGraphPattern(std::string_view text,
                                                 VarTable* vars);

}  // namespace sparqluo
