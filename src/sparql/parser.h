// Recursive-descent SPARQL parser producing the AST of sparql/ast.h.
//
// Supported grammar (the SPARQL-UO fragment of the paper plus conveniences):
//   Query        := Prologue SelectQuery
//   Prologue     := (PREFIX pname: <iri>)*
//   SelectQuery  := SELECT [DISTINCT] (Var* | '*')? WHERE GroupGraphPattern
//   GroupGraphPattern := '{' ( TriplesBlock
//                            | GroupOrUnion
//                            | OPTIONAL GroupGraphPattern
//                            | FILTER '(' Expr ')' )* '}'
//   GroupOrUnion := GroupGraphPattern (UNION GroupGraphPattern)*
//   TriplesBlock := Subject PropertyList ('.' | &'}' )
//   PropertyList := Verb ObjectList (';' Verb ObjectList)*
//   ObjectList   := Object (',' Object)*
//
// The bare `SELECT WHERE { ... }` form used by the paper's appendix is
// accepted and treated as SELECT *.
#pragma once

#include <string_view>

#include "sparql/ast.h"
#include "util/status.h"

namespace sparqluo {

/// Parses a complete SELECT query.
Result<Query> ParseQuery(std::string_view text);

/// Parses just a group graph pattern `{ ... }` against a caller-provided
/// variable table (useful in tests and for building patterns directly).
Result<GroupGraphPattern> ParseGroupGraphPattern(std::string_view text,
                                                 VarTable* vars);

}  // namespace sparqluo
