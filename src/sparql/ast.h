// Abstract syntax tree for SPARQL-UO queries (Definitions 2 and 6).
//
// A query's WHERE clause is a GroupGraphPattern: an ordered sequence of
// elements combined left-to-right by implicit AND, where each element is a
// triple pattern, a nested group, a UNION of groups, an OPTIONAL group, or a
// FILTER. This mirrors the SPARQL surface syntax one-to-one, which the
// BE-tree construction (src/betree) relies on.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"

namespace sparqluo {

/// Dense per-query variable id.
using VarId = uint32_t;
inline constexpr VarId kInvalidVarId = UINT32_MAX;

/// Per-query variable name table.
class VarTable {
 public:
  /// Returns the id for `name`, creating it on first sight.
  VarId Intern(const std::string& name) {
    auto it = index_.find(name);
    if (it != index_.end()) return it->second;
    VarId id = static_cast<VarId>(names_.size());
    index_.emplace(name, id);
    names_.push_back(name);
    return id;
  }

  /// Id of `name` or kInvalidVarId when unknown. Never inserts.
  VarId Lookup(const std::string& name) const {
    auto it = index_.find(name);
    return it == index_.end() ? kInvalidVarId : it->second;
  }

  const std::string& Name(VarId id) const { return names_[id]; }
  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, VarId> index_;
};

/// One position of a triple pattern: a variable or a constant term.
struct PatternSlot {
  bool is_var = false;
  VarId var = kInvalidVarId;
  Term term;

  static PatternSlot Var(VarId v) {
    PatternSlot s;
    s.is_var = true;
    s.var = v;
    return s;
  }
  static PatternSlot Const(Term t) {
    PatternSlot s;
    s.is_var = false;
    s.term = std::move(t);
    return s;
  }

  bool operator==(const PatternSlot& other) const {
    if (is_var != other.is_var) return false;
    return is_var ? var == other.var : term == other.term;
  }
};

/// A triple pattern (Definition 2).
struct TriplePattern {
  PatternSlot s, p, o;

  /// var(t): all variables occurring in the pattern.
  std::vector<VarId> Variables() const;

  /// Variables at subject/object positions only — the positions that decide
  /// coalescability (Definition 3).
  std::vector<VarId> SubjectObjectVariables() const;

  bool operator==(const TriplePattern& other) const {
    return s == other.s && p == other.p && o == other.o;
  }
};

/// True iff t1 and t2 share a variable at subject/object positions (Def. 3).
bool Coalescable(const TriplePattern& t1, const TriplePattern& t2);

/// Minimal FILTER expression tree: comparisons over variables/constants,
/// boolean connectives and BOUND().
struct FilterExpr {
  enum class Op {
    kEq, kNeq, kLt, kGt, kLe, kGe,  // binary comparisons over operands
    kAnd, kOr, kNot,                // boolean connectives over children
    kBound,                         // BOUND(?var)
  };
  Op op = Op::kEq;
  // Comparison operands (used when op is a comparison or kBound).
  PatternSlot lhs, rhs;
  std::vector<FilterExpr> children;
};

/// A property path expression. `/` and `|` are desugared at parse time
/// (sequence -> hidden-variable chain, alternative -> UNION), so only the
/// closure operators `*` and `+` survive into the algebra, where they wrap
/// an arbitrary nested path expression evaluated by iterative reachability
/// (src/engine/path_eval).
struct PathExpr {
  enum class Kind {
    kLink,  ///< a single IRI step (iri holds the predicate)
    kSeq,   ///< children evaluated left-to-right
    kAlt,   ///< union of children
    kStar,  ///< zero-or-more of children[0]
    kPlus,  ///< one-or-more of children[0]
  };
  Kind kind = Kind::kLink;
  Term iri;                        ///< kLink
  std::vector<PathExpr> children;  ///< kSeq/kAlt: 1+; kStar/kPlus: 1
};

/// A subject/object pattern connected by a closure path (`*` or `+`).
struct PathPattern {
  PatternSlot subject;
  PathExpr path;
  PatternSlot object;
};

struct GroupGraphPattern;

/// One element of a group graph pattern.
struct PatternElement {
  enum class Kind { kTriple, kGroup, kUnion, kOptional, kFilter, kPath };
  Kind kind = Kind::kTriple;
  TriplePattern triple;                  ///< kTriple
  std::vector<GroupGraphPattern> groups; ///< kGroup: 1; kUnion: 2+; kOptional: 1
  FilterExpr filter;                     ///< kFilter
  PathPattern path;                      ///< kPath
};

/// A group graph pattern `{ e1 . e2 . ... }` (Definition 6).
struct GroupGraphPattern {
  std::vector<PatternElement> elements;
};

/// Query forms supported by the engine. (The paper's scope is SELECT; ASK
/// and CONSTRUCT are the natural variants over the same evaluation.)
enum class QueryForm { kSelect, kAsk, kConstruct };

/// One ORDER BY key.
struct OrderKey {
  VarId var = kInvalidVarId;
  bool ascending = true;
};

/// Aggregate functions over a group.
enum class AggFunc { kCount, kSum, kMin, kMax, kAvg };

/// One `(AGG(?in) AS ?out)` projection item.
struct AggregateSpec {
  AggFunc func = AggFunc::kCount;
  bool distinct = false;    ///< AGG(DISTINCT ?in)
  bool count_star = false;  ///< COUNT(*): counts rows, `input` unused
  VarId input = kInvalidVarId;
  VarId output = kInvalidVarId;
};

/// A parsed SELECT, ASK or CONSTRUCT query with its solution modifiers.
struct Query {
  VarTable vars;
  QueryForm form = QueryForm::kSelect;
  bool distinct = false;
  /// Empty projection means SELECT * (also the paper's bare `SELECT WHERE`).
  std::vector<VarId> projection;
  GroupGraphPattern where;
  std::vector<OrderKey> order_by;
  size_t limit = SIZE_MAX;
  size_t offset = 0;
  /// GROUP BY keys, in surface order. Aggregation is active iff
  /// `!group_by.empty() || !aggregates.empty()` (an aggregate with no
  /// GROUP BY makes the whole solution set one implicit group).
  std::vector<VarId> group_by;
  std::vector<AggregateSpec> aggregates;
  /// kConstruct only: the template instantiated per solution, and the
  /// three synthetic output columns the executor emits triples under
  /// (hidden names ".cs"/".cp"/".co" interned by the parser — '.' cannot
  /// occur in surface variable names, so they never collide).
  std::vector<TriplePattern> construct_template;
  VarId construct_s = kInvalidVarId;
  VarId construct_p = kInvalidVarId;
  VarId construct_o = kInvalidVarId;
};

/// Collects every variable mentioned anywhere under `g` into `out`
/// (deduplicated, in first-occurrence order).
void CollectVariables(const GroupGraphPattern& g, std::vector<VarId>* out);

/// Serializes back to SPARQL surface syntax.
std::string ToString(const TriplePattern& t, const VarTable& vars);
std::string ToString(const GroupGraphPattern& g, const VarTable& vars,
                     int indent = 0);
std::string ToString(const Query& q);

}  // namespace sparqluo
