#include "sparql/parser.h"

#include <unordered_map>

#include "sparql/lexer.h"
#include "util/string_util.h"

namespace sparqluo {

namespace {

constexpr const char* kRdfType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
constexpr const char* kXsdInteger = "http://www.w3.org/2001/XMLSchema#integer";
constexpr const char* kXsdDecimal = "http://www.w3.org/2001/XMLSchema#decimal";

class Parser {
 public:
  Parser(std::vector<Token> tokens, VarTable* vars)
      : tokens_(std::move(tokens)), vars_(vars) {}

  Result<Query> ParseQuery() {
    Query q;
    owned_vars_ = &q.vars;
    vars_ = &q.vars;
    SPARQLUO_RETURN_NOT_OK(ParsePrologue());
    if (CurIs(TokenType::kKeyword, "ASK")) {
      q.form = QueryForm::kAsk;
      Advance();
      if (CurIs(TokenType::kKeyword, "WHERE")) Advance();  // WHERE optional
    } else {
      SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kKeyword, "SELECT"));
      if (CurIs(TokenType::kKeyword, "DISTINCT")) {
        q.distinct = true;
        Advance();
      }
      if (CurIs(TokenType::kStar)) {
        Advance();
      } else {
        while (Cur().type == TokenType::kVariable) {
          q.projection.push_back(vars_->Intern(Cur().text));
          Advance();
        }
      }
      SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kKeyword, "WHERE"));
    }
    auto ggp = ParseGroup();
    if (!ggp.ok()) return ggp.status();
    q.where = std::move(*ggp);
    SPARQLUO_RETURN_NOT_OK(ParseSolutionModifiers(&q));
    if (Cur().type != TokenType::kEof)
      return Err("trailing tokens after query body");
    return q;
  }

  /// ORDER BY (ASC(?v)|DESC(?v)|?v)+, LIMIT n, OFFSET n — in any of the
  /// standard orders (ORDER BY before LIMIT/OFFSET; LIMIT/OFFSET commute).
  Status ParseSolutionModifiers(Query* q) {
    if (CurIs(TokenType::kKeyword, "ORDER")) {
      Advance();
      SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kKeyword, "BY"));
      bool any = false;
      while (true) {
        OrderKey key;
        if (CurIs(TokenType::kKeyword, "ASC") ||
            CurIs(TokenType::kKeyword, "DESC")) {
          key.ascending = Cur().text == "ASC";
          Advance();
          SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kLParen));
          if (Cur().type != TokenType::kVariable)
            return Err("expected variable in ORDER BY");
          key.var = vars_->Intern(Cur().text);
          Advance();
          SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kRParen));
        } else if (Cur().type == TokenType::kVariable) {
          key.var = vars_->Intern(Cur().text);
          Advance();
        } else {
          break;
        }
        q->order_by.push_back(key);
        any = true;
      }
      if (!any) return Err("ORDER BY requires at least one key");
    }
    while (CurIs(TokenType::kKeyword, "LIMIT") ||
           CurIs(TokenType::kKeyword, "OFFSET")) {
      bool is_limit = Cur().text == "LIMIT";
      Advance();
      if (Cur().type != TokenType::kNumber)
        return Err("expected integer after LIMIT/OFFSET");
      long value = std::atol(Cur().text.c_str());
      if (value < 0) return Err("LIMIT/OFFSET must be non-negative");
      if (is_limit) {
        q->limit = static_cast<size_t>(value);
      } else {
        q->offset = static_cast<size_t>(value);
      }
      Advance();
    }
    return Status::OK();
  }

  Result<GroupGraphPattern> ParseGroupOnly() {
    auto g = ParseGroup();
    if (!g.ok()) return g.status();
    if (Cur().type != TokenType::kEof) return Err("trailing tokens");
    return g;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Peek(size_t n = 1) const {
    size_t i = pos_ + n;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool CurIs(TokenType t) const { return Cur().type == t; }
  bool CurIs(TokenType t, std::string_view text) const {
    return Cur().type == t && Cur().text == text;
  }
  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " (line " + std::to_string(Cur().line) +
                              ", near '" + Cur().text + "')");
  }
  Status Expect(TokenType t, std::string_view text = {}) {
    if (Cur().type != t || (!text.empty() && Cur().text != text))
      return Err("expected " + std::string(text.empty() ? TokenTypeName(t)
                                                        : std::string(text)));
    Advance();
    return Status::OK();
  }

  Status ParsePrologue() {
    while (CurIs(TokenType::kKeyword, "PREFIX")) {
      Advance();
      if (Cur().type != TokenType::kPrefixedName)
        return Err("expected prefix name after PREFIX");
      std::string pname = Cur().text;
      if (pname.empty() || pname.back() != ':')
        return Err("prefix declaration must end with ':'");
      Advance();
      if (Cur().type != TokenType::kIriRef)
        return Err("expected IRI after prefix name");
      prefixes_[pname.substr(0, pname.size() - 1)] = Cur().text;
      Advance();
    }
    return Status::OK();
  }

  Result<Term> ExpandPrefixedName(const std::string& qname) {
    size_t colon = qname.find(':');
    std::string prefix = qname.substr(0, colon);
    std::string local = qname.substr(colon + 1);
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end())
      return Status::ParseError("undeclared prefix '" + prefix + ":'");
    return Term::Iri(it->second + local);
  }

  /// Parses one subject/predicate/object slot.
  Result<PatternSlot> ParseSlot(bool predicate_position) {
    switch (Cur().type) {
      case TokenType::kVariable: {
        PatternSlot s = PatternSlot::Var(vars_->Intern(Cur().text));
        Advance();
        return s;
      }
      case TokenType::kIriRef: {
        PatternSlot s = PatternSlot::Const(Term::Iri(Cur().text));
        Advance();
        return s;
      }
      case TokenType::kPrefixedName: {
        auto t = ExpandPrefixedName(Cur().text);
        if (!t.ok()) return t.status();
        Advance();
        return PatternSlot::Const(std::move(*t));
      }
      case TokenType::kA:
        if (!predicate_position) return Err("'a' only allowed as predicate");
        Advance();
        return PatternSlot::Const(Term::Iri(kRdfType));
      case TokenType::kString: {
        std::string value = Cur().text;
        Advance();
        if (Cur().type == TokenType::kLangTag) {
          std::string lang = Cur().text;
          Advance();
          return PatternSlot::Const(Term::LangLiteral(value, lang));
        }
        if (Cur().type == TokenType::kDoubleCaret) {
          Advance();
          if (Cur().type == TokenType::kIriRef) {
            std::string dt = Cur().text;
            Advance();
            return PatternSlot::Const(Term::TypedLiteral(value, dt));
          }
          if (Cur().type == TokenType::kPrefixedName) {
            auto t = ExpandPrefixedName(Cur().text);
            if (!t.ok()) return t.status();
            Advance();
            return PatternSlot::Const(Term::TypedLiteral(value, t->lexical));
          }
          return Err("expected datatype IRI after ^^");
        }
        return PatternSlot::Const(Term::Literal(value));
      }
      case TokenType::kNumber: {
        std::string text = Cur().text;
        Advance();
        const char* dt = text.find('.') == std::string::npos ? kXsdInteger
                                                             : kXsdDecimal;
        return PatternSlot::Const(Term::TypedLiteral(text, dt));
      }
      default:
        return Err("expected term or variable");
    }
  }

  /// TriplesBlock starting at the current subject token. Appends kTriple
  /// elements (expanding ';' and ',' lists).
  Status ParseTriplesBlock(GroupGraphPattern* out) {
    auto subject = ParseSlot(/*predicate_position=*/false);
    if (!subject.ok()) return subject.status();
    while (true) {
      auto pred = ParseSlot(/*predicate_position=*/true);
      if (!pred.ok()) return pred.status();
      while (true) {
        auto obj = ParseSlot(/*predicate_position=*/false);
        if (!obj.ok()) return obj.status();
        PatternElement e;
        e.kind = PatternElement::Kind::kTriple;
        e.triple = TriplePattern{*subject, *pred, *obj};
        out->elements.push_back(std::move(e));
        if (CurIs(TokenType::kComma)) {
          Advance();
          continue;
        }
        break;
      }
      if (CurIs(TokenType::kSemicolon)) {
        Advance();
        continue;
      }
      break;
    }
    if (CurIs(TokenType::kDot)) Advance();
    return Status::OK();
  }

  Result<GroupGraphPattern> ParseGroup() {
    SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kLBrace));
    GroupGraphPattern g;
    while (!CurIs(TokenType::kRBrace)) {
      if (CurIs(TokenType::kEof)) return Err("unterminated group pattern");
      if (CurIs(TokenType::kLBrace)) {
        // GroupOrUnionGraphPattern.
        std::vector<GroupGraphPattern> branches;
        auto first = ParseGroup();
        if (!first.ok()) return first.status();
        branches.push_back(std::move(*first));
        while (CurIs(TokenType::kKeyword, "UNION")) {
          Advance();
          auto next = ParseGroup();
          if (!next.ok()) return next.status();
          branches.push_back(std::move(*next));
        }
        PatternElement e;
        e.kind = branches.size() == 1 ? PatternElement::Kind::kGroup
                                      : PatternElement::Kind::kUnion;
        e.groups = std::move(branches);
        g.elements.push_back(std::move(e));
        if (CurIs(TokenType::kDot)) Advance();
        continue;
      }
      if (CurIs(TokenType::kKeyword, "OPTIONAL")) {
        Advance();
        auto inner = ParseGroup();
        if (!inner.ok()) return inner.status();
        PatternElement e;
        e.kind = PatternElement::Kind::kOptional;
        e.groups.push_back(std::move(*inner));
        g.elements.push_back(std::move(e));
        if (CurIs(TokenType::kDot)) Advance();
        continue;
      }
      if (CurIs(TokenType::kKeyword, "FILTER")) {
        Advance();
        SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kLParen));
        auto f = ParseOrExpr();
        if (!f.ok()) return f.status();
        SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kRParen));
        PatternElement e;
        e.kind = PatternElement::Kind::kFilter;
        e.filter = std::move(*f);
        g.elements.push_back(std::move(e));
        if (CurIs(TokenType::kDot)) Advance();
        continue;
      }
      SPARQLUO_RETURN_NOT_OK(ParseTriplesBlock(&g));
    }
    Advance();  // consume '}'
    return g;
  }

  Result<FilterExpr> ParseOrExpr() {
    auto lhs = ParseAndExpr();
    if (!lhs.ok()) return lhs;
    while (CurIs(TokenType::kOrOr)) {
      Advance();
      auto rhs = ParseAndExpr();
      if (!rhs.ok()) return rhs;
      FilterExpr e;
      e.op = FilterExpr::Op::kOr;
      e.children.push_back(std::move(*lhs));
      e.children.push_back(std::move(*rhs));
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<FilterExpr> ParseAndExpr() {
    auto lhs = ParseUnaryExpr();
    if (!lhs.ok()) return lhs;
    while (CurIs(TokenType::kAndAnd)) {
      Advance();
      auto rhs = ParseUnaryExpr();
      if (!rhs.ok()) return rhs;
      FilterExpr e;
      e.op = FilterExpr::Op::kAnd;
      e.children.push_back(std::move(*lhs));
      e.children.push_back(std::move(*rhs));
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<FilterExpr> ParseUnaryExpr() {
    if (CurIs(TokenType::kBang)) {
      Advance();
      auto inner = ParseUnaryExpr();
      if (!inner.ok()) return inner;
      FilterExpr e;
      e.op = FilterExpr::Op::kNot;
      e.children.push_back(std::move(*inner));
      return e;
    }
    if (CurIs(TokenType::kLParen)) {
      Advance();
      auto inner = ParseOrExpr();
      if (!inner.ok()) return inner;
      SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kRParen));
      return inner;
    }
    if (CurIs(TokenType::kKeyword, "BOUND")) {
      Advance();
      SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kLParen));
      auto slot = ParseSlot(false);
      if (!slot.ok()) return slot.status();
      SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kRParen));
      FilterExpr e;
      e.op = FilterExpr::Op::kBound;
      e.lhs = std::move(*slot);
      return e;
    }
    // Comparison: slot op slot.
    auto lhs = ParseSlot(false);
    if (!lhs.ok()) return lhs.status();
    FilterExpr e;
    switch (Cur().type) {
      case TokenType::kEq: e.op = FilterExpr::Op::kEq; break;
      case TokenType::kNeq: e.op = FilterExpr::Op::kNeq; break;
      case TokenType::kLt: e.op = FilterExpr::Op::kLt; break;
      case TokenType::kGt: e.op = FilterExpr::Op::kGt; break;
      case TokenType::kLe: e.op = FilterExpr::Op::kLe; break;
      case TokenType::kGe: e.op = FilterExpr::Op::kGe; break;
      default:
        return Err("expected comparison operator in FILTER");
    }
    Advance();
    auto rhs = ParseSlot(false);
    if (!rhs.ok()) return rhs.status();
    e.lhs = std::move(*lhs);
    e.rhs = std::move(*rhs);
    return e;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  VarTable* vars_;
  VarTable* owned_vars_ = nullptr;
  std::unordered_map<std::string, std::string> prefixes_;
};

}  // namespace

Result<Query> ParseQuery(std::string_view text) {
  auto tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  Parser p(std::move(*tokens), nullptr);
  return p.ParseQuery();
}

Result<GroupGraphPattern> ParseGroupGraphPattern(std::string_view text,
                                                 VarTable* vars) {
  auto tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  Parser p(std::move(*tokens), vars);
  return p.ParseGroupOnly();
}

}  // namespace sparqluo
