#include "sparql/parser.h"

#include <algorithm>
#include <unordered_map>

#include "sparql/lexer.h"
#include "store/update.h"
#include "util/string_util.h"

namespace sparqluo {

namespace {

constexpr const char* kRdfType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
constexpr const char* kXsdInteger = "http://www.w3.org/2001/XMLSchema#integer";
constexpr const char* kXsdDecimal = "http://www.w3.org/2001/XMLSchema#decimal";

class Parser {
 public:
  Parser(std::vector<Token> tokens, VarTable* vars)
      : tokens_(std::move(tokens)), vars_(vars) {}

  Result<Query> ParseQuery() {
    Query q;
    owned_vars_ = &q.vars;
    vars_ = &q.vars;
    SPARQLUO_RETURN_NOT_OK(ParsePrologue());
    if (CurIs(TokenType::kKeyword, "ASK")) {
      q.form = QueryForm::kAsk;
      Advance();
      if (CurIs(TokenType::kKeyword, "WHERE")) Advance();  // WHERE optional
    } else if (CurIs(TokenType::kKeyword, "CONSTRUCT")) {
      q.form = QueryForm::kConstruct;
      Advance();
      SPARQLUO_RETURN_NOT_OK(ParseTemplateBlock(&q.construct_template));
      if (q.construct_template.empty())
        return Err("CONSTRUCT template must contain at least one triple");
      q.construct_s = vars_->Intern(".cs");
      q.construct_p = vars_->Intern(".cp");
      q.construct_o = vars_->Intern(".co");
      SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kKeyword, "WHERE"));
    } else {
      SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kKeyword, "SELECT"));
      if (CurIs(TokenType::kKeyword, "DISTINCT")) {
        q.distinct = true;
        Advance();
      }
      if (CurIs(TokenType::kStar)) {
        Advance();
      } else {
        while (true) {
          if (Cur().type == TokenType::kVariable) {
            q.projection.push_back(vars_->Intern(Cur().text));
            Advance();
            continue;
          }
          if (CurIs(TokenType::kLParen)) {
            auto spec = ParseAggregateItem();
            if (!spec.ok()) return spec.status();
            q.projection.push_back(spec->output);
            q.aggregates.push_back(*spec);
            continue;
          }
          break;
        }
      }
      SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kKeyword, "WHERE"));
    }
    auto ggp = ParseGroup();
    if (!ggp.ok()) return ggp.status();
    q.where = std::move(*ggp);
    SPARQLUO_RETURN_NOT_OK(ParseSolutionModifiers(&q));
    if (Cur().type != TokenType::kEof)
      return Err("trailing tokens after query body");
    SPARQLUO_RETURN_NOT_OK(ValidateAggregation(&q));
    return q;
  }

  /// `(AGG([DISTINCT] ?in|*) AS ?out)` — the aggregate SELECT item.
  Result<AggregateSpec> ParseAggregateItem() {
    SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kLParen));
    AggregateSpec spec;
    if (CurIs(TokenType::kKeyword, "COUNT")) {
      spec.func = AggFunc::kCount;
    } else if (CurIs(TokenType::kKeyword, "SUM")) {
      spec.func = AggFunc::kSum;
    } else if (CurIs(TokenType::kKeyword, "MIN")) {
      spec.func = AggFunc::kMin;
    } else if (CurIs(TokenType::kKeyword, "MAX")) {
      spec.func = AggFunc::kMax;
    } else if (CurIs(TokenType::kKeyword, "AVG")) {
      spec.func = AggFunc::kAvg;
    } else {
      return Err("expected aggregate function (COUNT/SUM/MIN/MAX/AVG)");
    }
    Advance();
    SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kLParen));
    if (CurIs(TokenType::kKeyword, "DISTINCT")) {
      spec.distinct = true;
      Advance();
    }
    if (CurIs(TokenType::kStar)) {
      if (spec.func != AggFunc::kCount)
        return Err("'*' is only allowed in COUNT(*)");
      if (spec.distinct) return Err("COUNT(DISTINCT *) is not supported");
      spec.count_star = true;
      Advance();
    } else if (Cur().type == TokenType::kVariable) {
      spec.input = vars_->Intern(Cur().text);
      Advance();
    } else {
      return Err("expected variable or '*' in aggregate");
    }
    SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kRParen));
    SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kKeyword, "AS"));
    if (Cur().type != TokenType::kVariable)
      return Err("expected output variable after AS");
    if (vars_->Lookup(Cur().text) != kInvalidVarId)
      return Err("AS variable ?" + Cur().text + " already in use");
    spec.output = vars_->Intern(Cur().text);
    Advance();
    SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kRParen));
    return spec;
  }

  /// Grouped-query well-formedness (SPARQL 1.1 section 11): every plain
  /// projected variable comes from GROUP BY, aggregate outputs are fresh,
  /// and ORDER BY only touches the grouped output schema.
  Status ValidateAggregation(Query* q) {
    bool aggregated = !q->group_by.empty() || !q->aggregates.empty();
    if (!aggregated) return Status::OK();
    if (q->form != QueryForm::kSelect)
      return Status::ParseError("aggregates require a SELECT query");
    if (q->projection.empty())
      return Status::ParseError(
          "SELECT * cannot be combined with GROUP BY or aggregates");
    std::vector<VarId> where_vars;
    CollectVariables(q->where, &where_vars);
    auto contains = [](const std::vector<VarId>& v, VarId x) {
      return std::find(v.begin(), v.end(), x) != v.end();
    };
    for (const AggregateSpec& a : q->aggregates) {
      if (contains(where_vars, a.output))
        return Status::ParseError("aggregate output ?" +
                                  q->vars.Name(a.output) +
                                  " is already bound in WHERE");
      if (contains(q->group_by, a.output))
        return Status::ParseError("aggregate output ?" +
                                  q->vars.Name(a.output) +
                                  " cannot also be a GROUP BY key");
    }
    for (VarId v : q->projection) {
      bool is_output = false;
      for (const AggregateSpec& a : q->aggregates)
        if (a.output == v) is_output = true;
      if (!is_output && !contains(q->group_by, v))
        return Status::ParseError("projected variable ?" + q->vars.Name(v) +
                                  " must appear in GROUP BY or an aggregate");
    }
    for (const OrderKey& k : q->order_by) {
      bool ok = contains(q->group_by, k.var);
      for (const AggregateSpec& a : q->aggregates)
        if (a.output == k.var) ok = true;
      if (!ok)
        return Status::ParseError("ORDER BY variable ?" + q->vars.Name(k.var) +
                                  " is not in GROUP BY or aggregate outputs");
    }
    return Status::OK();
  }

  /// ORDER BY (ASC(?v)|DESC(?v)|?v)+, LIMIT n, OFFSET n — in any of the
  /// standard orders (ORDER BY before LIMIT/OFFSET; LIMIT/OFFSET commute).
  Status ParseSolutionModifiers(Query* q) {
    if (CurIs(TokenType::kKeyword, "GROUP")) {
      Advance();
      SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kKeyword, "BY"));
      while (Cur().type == TokenType::kVariable) {
        VarId v = vars_->Intern(Cur().text);
        if (std::find(q->group_by.begin(), q->group_by.end(), v) !=
            q->group_by.end())
          return Err("duplicate GROUP BY variable ?" + Cur().text);
        q->group_by.push_back(v);
        Advance();
      }
      if (q->group_by.empty())
        return Err("GROUP BY requires at least one variable");
    }
    if (CurIs(TokenType::kKeyword, "ORDER")) {
      Advance();
      SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kKeyword, "BY"));
      bool any = false;
      while (true) {
        OrderKey key;
        if (CurIs(TokenType::kKeyword, "ASC") ||
            CurIs(TokenType::kKeyword, "DESC")) {
          key.ascending = Cur().text == "ASC";
          Advance();
          SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kLParen));
          if (Cur().type != TokenType::kVariable)
            return Err("expected variable in ORDER BY");
          key.var = vars_->Intern(Cur().text);
          Advance();
          SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kRParen));
        } else if (Cur().type == TokenType::kVariable) {
          key.var = vars_->Intern(Cur().text);
          Advance();
        } else {
          break;
        }
        q->order_by.push_back(key);
        any = true;
      }
      if (!any) return Err("ORDER BY requires at least one key");
    }
    while (CurIs(TokenType::kKeyword, "LIMIT") ||
           CurIs(TokenType::kKeyword, "OFFSET")) {
      bool is_limit = Cur().text == "LIMIT";
      Advance();
      if (Cur().type != TokenType::kNumber)
        return Err("expected integer after LIMIT/OFFSET");
      long value = std::atol(Cur().text.c_str());
      if (value < 0) return Err("LIMIT/OFFSET must be non-negative");
      if (is_limit) {
        q->limit = static_cast<size_t>(value);
      } else {
        q->offset = static_cast<size_t>(value);
      }
      Advance();
    }
    return Status::OK();
  }

  Result<GroupGraphPattern> ParseGroupOnly() {
    auto g = ParseGroup();
    if (!g.ok()) return g.status();
    if (Cur().type != TokenType::kEof) return Err("trailing tokens");
    return g;
  }

  /// Full update script: `;`-separated DATA and pattern operations. Each
  /// command gets its own variable table (commands commit independently).
  Result<std::vector<UpdateCommand>> ParseUpdateScript() {
    std::vector<UpdateCommand> cmds;
    SPARQLUO_RETURN_NOT_OK(ParsePrologue());
    bool any = false;
    while (true) {
      if (CurIs(TokenType::kEof)) {
        if (!any) return Err("expected INSERT or DELETE");
        break;
      }
      UpdateCommand cmd;
      vars_ = &cmd.vars;
      if (CurIs(TokenType::kKeyword, "INSERT")) {
        Advance();
        if (CurIs(TokenType::kKeyword, "DATA")) {
          Advance();
          SPARQLUO_RETURN_NOT_OK(
              ParseGroundBlock(UpdateOp::Kind::kInsert, &cmd.data));
        } else {
          cmd.is_pattern = true;
          SPARQLUO_RETURN_NOT_OK(
              ParseTemplateBlock(&cmd.pattern.insert_templates));
          SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kKeyword, "WHERE"));
          auto g = ParseGroup();
          if (!g.ok()) return g.status();
          cmd.pattern.where = std::move(*g);
        }
      } else if (CurIs(TokenType::kKeyword, "DELETE")) {
        Advance();
        if (CurIs(TokenType::kKeyword, "DATA")) {
          Advance();
          SPARQLUO_RETURN_NOT_OK(
              ParseGroundBlock(UpdateOp::Kind::kDelete, &cmd.data));
        } else if (CurIs(TokenType::kKeyword, "WHERE")) {
          // DELETE WHERE { t }: the template doubles as the pattern.
          cmd.is_pattern = true;
          Advance();
          SPARQLUO_RETURN_NOT_OK(
              ParseTemplateBlock(&cmd.pattern.delete_templates));
          for (const TriplePattern& t : cmd.pattern.delete_templates) {
            PatternElement e;
            e.kind = PatternElement::Kind::kTriple;
            e.triple = t;
            cmd.pattern.where.elements.push_back(std::move(e));
          }
        } else {
          cmd.is_pattern = true;
          SPARQLUO_RETURN_NOT_OK(
              ParseTemplateBlock(&cmd.pattern.delete_templates));
          if (CurIs(TokenType::kKeyword, "INSERT")) {
            Advance();
            SPARQLUO_RETURN_NOT_OK(
                ParseTemplateBlock(&cmd.pattern.insert_templates));
          }
          SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kKeyword, "WHERE"));
          auto g = ParseGroup();
          if (!g.ok()) return g.status();
          cmd.pattern.where = std::move(*g);
        }
      } else {
        return Err("expected INSERT or DELETE");
      }
      cmds.push_back(std::move(cmd));
      any = true;
      if (CurIs(TokenType::kSemicolon)) {
        Advance();
        continue;
      }
      break;
    }
    if (Cur().type != TokenType::kEof)
      return Err("trailing tokens after update");
    return cmds;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Peek(size_t n = 1) const {
    size_t i = pos_ + n;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool CurIs(TokenType t) const { return Cur().type == t; }
  bool CurIs(TokenType t, std::string_view text) const {
    return Cur().type == t && Cur().text == text;
  }
  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " (line " + std::to_string(Cur().line) +
                              ", near '" + Cur().text + "')");
  }
  Status Expect(TokenType t, std::string_view text = {}) {
    if (Cur().type != t || (!text.empty() && Cur().text != text))
      return Err("expected " + std::string(text.empty() ? TokenTypeName(t)
                                                        : std::string(text)));
    Advance();
    return Status::OK();
  }

  Status ParsePrologue() {
    while (CurIs(TokenType::kKeyword, "PREFIX")) {
      Advance();
      if (Cur().type != TokenType::kPrefixedName)
        return Err("expected prefix name after PREFIX");
      std::string pname = Cur().text;
      if (pname.empty() || pname.back() != ':')
        return Err("prefix declaration must end with ':'");
      Advance();
      if (Cur().type != TokenType::kIriRef)
        return Err("expected IRI after prefix name");
      prefixes_[pname.substr(0, pname.size() - 1)] = Cur().text;
      Advance();
    }
    return Status::OK();
  }

  Result<Term> ExpandPrefixedName(const std::string& qname) {
    size_t colon = qname.find(':');
    std::string prefix = qname.substr(0, colon);
    std::string local = qname.substr(colon + 1);
    if (prefix == "_") return Term::Blank(local);
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end())
      return Status::ParseError("undeclared prefix '" + prefix + ":'");
    return Term::Iri(it->second + local);
  }

  /// Fresh hidden variable for path desugaring. '.' cannot occur in surface
  /// variable names, so hidden names never collide with user variables;
  /// the executor strips them from SELECT * results.
  std::string HiddenVarName() {
    return ".p" + std::to_string(hidden_counter_++);
  }

  /// Parses one subject/predicate/object slot.
  Result<PatternSlot> ParseSlot(bool predicate_position) {
    switch (Cur().type) {
      case TokenType::kVariable: {
        PatternSlot s = PatternSlot::Var(vars_->Intern(Cur().text));
        Advance();
        return s;
      }
      case TokenType::kIriRef: {
        PatternSlot s = PatternSlot::Const(Term::Iri(Cur().text));
        Advance();
        return s;
      }
      case TokenType::kPrefixedName: {
        auto t = ExpandPrefixedName(Cur().text);
        if (!t.ok()) return t.status();
        Advance();
        return PatternSlot::Const(std::move(*t));
      }
      case TokenType::kA:
        if (!predicate_position) return Err("'a' only allowed as predicate");
        Advance();
        return PatternSlot::Const(Term::Iri(kRdfType));
      case TokenType::kString: {
        std::string value = Cur().text;
        Advance();
        if (Cur().type == TokenType::kLangTag) {
          std::string lang = Cur().text;
          Advance();
          return PatternSlot::Const(Term::LangLiteral(value, lang));
        }
        if (Cur().type == TokenType::kDoubleCaret) {
          Advance();
          if (Cur().type == TokenType::kIriRef) {
            std::string dt = Cur().text;
            Advance();
            return PatternSlot::Const(Term::TypedLiteral(value, dt));
          }
          if (Cur().type == TokenType::kPrefixedName) {
            auto t = ExpandPrefixedName(Cur().text);
            if (!t.ok()) return t.status();
            Advance();
            return PatternSlot::Const(Term::TypedLiteral(value, t->lexical));
          }
          return Err("expected datatype IRI after ^^");
        }
        return PatternSlot::Const(Term::Literal(value));
      }
      case TokenType::kNumber: {
        std::string text = Cur().text;
        Advance();
        const char* dt = text.find('.') == std::string::npos ? kXsdInteger
                                                             : kXsdDecimal;
        return PatternSlot::Const(Term::TypedLiteral(text, dt));
      }
      default:
        return Err("expected term or variable");
    }
  }

  /// TriplesBlock starting at the current subject token. Appends kTriple
  /// elements (expanding ';' and ',' lists). Verbs that start with an IRI,
  /// 'a' or '(' parse as property paths; a path that is a single link
  /// degrades to the plain triple the old grammar produced.
  Status ParseTriplesBlock(GroupGraphPattern* out) {
    auto subject = ParseSlot(/*predicate_position=*/false);
    if (!subject.ok()) return subject.status();
    while (true) {
      bool path_verb = CurIs(TokenType::kIriRef) ||
                       CurIs(TokenType::kPrefixedName) ||
                       CurIs(TokenType::kA) || CurIs(TokenType::kLParen);
      if (path_verb) {
        auto path = ParsePath();
        if (!path.ok()) return path.status();
        while (true) {
          auto obj = ParseSlot(/*predicate_position=*/false);
          if (!obj.ok()) return obj.status();
          SPARQLUO_RETURN_NOT_OK(AppendPathElement(*subject, *path, *obj, out));
          if (CurIs(TokenType::kComma)) {
            Advance();
            continue;
          }
          break;
        }
      } else {
        auto pred = ParseSlot(/*predicate_position=*/true);
        if (!pred.ok()) return pred.status();
        while (true) {
          auto obj = ParseSlot(/*predicate_position=*/false);
          if (!obj.ok()) return obj.status();
          PatternElement e;
          e.kind = PatternElement::Kind::kTriple;
          e.triple = TriplePattern{*subject, *pred, *obj};
          out->elements.push_back(std::move(e));
          if (CurIs(TokenType::kComma)) {
            Advance();
            continue;
          }
          break;
        }
      }
      if (CurIs(TokenType::kSemicolon)) {
        Advance();
        continue;
      }
      break;
    }
    if (CurIs(TokenType::kDot)) Advance();
    return Status::OK();
  }

  // ---- Property paths -------------------------------------------------

  Result<PathExpr> ParsePath() {
    auto first = ParsePathSeq();
    if (!first.ok()) return first;
    if (!CurIs(TokenType::kPipe)) return first;
    PathExpr alt;
    alt.kind = PathExpr::Kind::kAlt;
    alt.children.push_back(std::move(*first));
    while (CurIs(TokenType::kPipe)) {
      Advance();
      auto next = ParsePathSeq();
      if (!next.ok()) return next;
      alt.children.push_back(std::move(*next));
    }
    return alt;
  }

  Result<PathExpr> ParsePathSeq() {
    auto first = ParsePathElt();
    if (!first.ok()) return first;
    if (!CurIs(TokenType::kSlash)) return first;
    PathExpr seq;
    seq.kind = PathExpr::Kind::kSeq;
    seq.children.push_back(std::move(*first));
    while (CurIs(TokenType::kSlash)) {
      Advance();
      auto next = ParsePathElt();
      if (!next.ok()) return next;
      seq.children.push_back(std::move(*next));
    }
    return seq;
  }

  Result<PathExpr> ParsePathElt() {
    auto prim = ParsePathPrimary();
    if (!prim.ok()) return prim;
    if (CurIs(TokenType::kStar) || CurIs(TokenType::kPlus)) {
      PathExpr closure;
      closure.kind = CurIs(TokenType::kStar) ? PathExpr::Kind::kStar
                                             : PathExpr::Kind::kPlus;
      Advance();
      closure.children.push_back(std::move(*prim));
      return closure;
    }
    return prim;
  }

  Result<PathExpr> ParsePathPrimary() {
    if (CurIs(TokenType::kLParen)) {
      Advance();
      auto inner = ParsePath();
      if (!inner.ok()) return inner;
      SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kRParen));
      return inner;
    }
    PathExpr link;
    link.kind = PathExpr::Kind::kLink;
    if (CurIs(TokenType::kIriRef)) {
      link.iri = Term::Iri(Cur().text);
      Advance();
      return link;
    }
    if (CurIs(TokenType::kPrefixedName)) {
      auto t = ExpandPrefixedName(Cur().text);
      if (!t.ok()) return t.status();
      if (t->kind != TermKind::kIri) return Err("path step must be an IRI");
      link.iri = std::move(*t);
      Advance();
      return link;
    }
    if (CurIs(TokenType::kA)) {
      link.iri = Term::Iri(kRdfType);
      Advance();
      return link;
    }
    return Err("expected IRI or '(' in property path");
  }

  /// Desugars `subject path object` into group elements: links become
  /// plain triples, sequences chain through hidden variables, alternatives
  /// become UNION, and `*`/`+` closures stay as kPath algebra leaves.
  Status AppendPathElement(const PatternSlot& subject, const PathExpr& path,
                           const PatternSlot& object, GroupGraphPattern* out) {
    switch (path.kind) {
      case PathExpr::Kind::kLink: {
        PatternElement e;
        e.kind = PatternElement::Kind::kTriple;
        e.triple = TriplePattern{subject, PatternSlot::Const(path.iri), object};
        out->elements.push_back(std::move(e));
        return Status::OK();
      }
      case PathExpr::Kind::kSeq: {
        PatternSlot cur = subject;
        for (size_t i = 0; i < path.children.size(); ++i) {
          PatternSlot next =
              i + 1 == path.children.size()
                  ? object
                  : PatternSlot::Var(vars_->Intern(HiddenVarName()));
          SPARQLUO_RETURN_NOT_OK(
              AppendPathElement(cur, path.children[i], next, out));
          cur = next;
        }
        return Status::OK();
      }
      case PathExpr::Kind::kAlt: {
        PatternElement e;
        e.kind = PatternElement::Kind::kUnion;
        for (const PathExpr& branch : path.children) {
          GroupGraphPattern g;
          SPARQLUO_RETURN_NOT_OK(
              AppendPathElement(subject, branch, object, &g));
          e.groups.push_back(std::move(g));
        }
        out->elements.push_back(std::move(e));
        return Status::OK();
      }
      case PathExpr::Kind::kStar:
      case PathExpr::Kind::kPlus: {
        PatternElement e;
        e.kind = PatternElement::Kind::kPath;
        e.path = PathPattern{subject, path, object};
        out->elements.push_back(std::move(e));
        return Status::OK();
      }
    }
    return Status::ParseError("unknown path kind");
  }

  // ---- Templates (CONSTRUCT and pattern updates) ----------------------

  /// One subject's predicate-object list appended as flat TriplePatterns.
  Status ParseTriplesTemplate(std::vector<TriplePattern>* out) {
    auto subject = ParseSlot(/*predicate_position=*/false);
    if (!subject.ok()) return subject.status();
    while (true) {
      auto pred = ParseSlot(/*predicate_position=*/true);
      if (!pred.ok()) return pred.status();
      while (true) {
        auto obj = ParseSlot(/*predicate_position=*/false);
        if (!obj.ok()) return obj.status();
        out->push_back(TriplePattern{*subject, *pred, *obj});
        if (CurIs(TokenType::kComma)) {
          Advance();
          continue;
        }
        break;
      }
      if (CurIs(TokenType::kSemicolon)) {
        Advance();
        continue;
      }
      break;
    }
    if (CurIs(TokenType::kDot)) Advance();
    return Status::OK();
  }

  /// `'{' TriplesTemplate* '}'`.
  Status ParseTemplateBlock(std::vector<TriplePattern>* out) {
    SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kLBrace));
    while (!CurIs(TokenType::kRBrace)) {
      if (CurIs(TokenType::kEof)) return Err("unterminated template block");
      SPARQLUO_RETURN_NOT_OK(ParseTriplesTemplate(out));
    }
    Advance();  // consume '}'
    return Status::OK();
  }

  /// A DATA block: templates restricted to ground terms.
  Status ParseGroundBlock(UpdateOp::Kind kind, UpdateBatch* out) {
    std::vector<TriplePattern> triples;
    SPARQLUO_RETURN_NOT_OK(ParseTemplateBlock(&triples));
    for (const TriplePattern& t : triples) {
      for (const PatternSlot* s : {&t.s, &t.p, &t.o}) {
        if (s->is_var)
          return Err("data blocks must be ground: variable ?" +
                     vars_->Name(s->var) +
                     " not allowed in INSERT DATA / DELETE DATA");
      }
      out->ops.push_back({kind, {t.s.term, t.p.term, t.o.term}});
    }
    return Status::OK();
  }

  Result<GroupGraphPattern> ParseGroup() {
    SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kLBrace));
    GroupGraphPattern g;
    while (!CurIs(TokenType::kRBrace)) {
      if (CurIs(TokenType::kEof)) return Err("unterminated group pattern");
      if (CurIs(TokenType::kLBrace)) {
        // GroupOrUnionGraphPattern.
        std::vector<GroupGraphPattern> branches;
        auto first = ParseGroup();
        if (!first.ok()) return first.status();
        branches.push_back(std::move(*first));
        while (CurIs(TokenType::kKeyword, "UNION")) {
          Advance();
          auto next = ParseGroup();
          if (!next.ok()) return next.status();
          branches.push_back(std::move(*next));
        }
        PatternElement e;
        e.kind = branches.size() == 1 ? PatternElement::Kind::kGroup
                                      : PatternElement::Kind::kUnion;
        e.groups = std::move(branches);
        g.elements.push_back(std::move(e));
        if (CurIs(TokenType::kDot)) Advance();
        continue;
      }
      if (CurIs(TokenType::kKeyword, "OPTIONAL")) {
        Advance();
        auto inner = ParseGroup();
        if (!inner.ok()) return inner.status();
        PatternElement e;
        e.kind = PatternElement::Kind::kOptional;
        e.groups.push_back(std::move(*inner));
        g.elements.push_back(std::move(e));
        if (CurIs(TokenType::kDot)) Advance();
        continue;
      }
      if (CurIs(TokenType::kKeyword, "FILTER")) {
        Advance();
        SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kLParen));
        auto f = ParseOrExpr();
        if (!f.ok()) return f.status();
        SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kRParen));
        PatternElement e;
        e.kind = PatternElement::Kind::kFilter;
        e.filter = std::move(*f);
        g.elements.push_back(std::move(e));
        if (CurIs(TokenType::kDot)) Advance();
        continue;
      }
      SPARQLUO_RETURN_NOT_OK(ParseTriplesBlock(&g));
    }
    Advance();  // consume '}'
    return g;
  }

  Result<FilterExpr> ParseOrExpr() {
    auto lhs = ParseAndExpr();
    if (!lhs.ok()) return lhs;
    while (CurIs(TokenType::kOrOr)) {
      Advance();
      auto rhs = ParseAndExpr();
      if (!rhs.ok()) return rhs;
      FilterExpr e;
      e.op = FilterExpr::Op::kOr;
      e.children.push_back(std::move(*lhs));
      e.children.push_back(std::move(*rhs));
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<FilterExpr> ParseAndExpr() {
    auto lhs = ParseUnaryExpr();
    if (!lhs.ok()) return lhs;
    while (CurIs(TokenType::kAndAnd)) {
      Advance();
      auto rhs = ParseUnaryExpr();
      if (!rhs.ok()) return rhs;
      FilterExpr e;
      e.op = FilterExpr::Op::kAnd;
      e.children.push_back(std::move(*lhs));
      e.children.push_back(std::move(*rhs));
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<FilterExpr> ParseUnaryExpr() {
    if (CurIs(TokenType::kBang)) {
      Advance();
      auto inner = ParseUnaryExpr();
      if (!inner.ok()) return inner;
      FilterExpr e;
      e.op = FilterExpr::Op::kNot;
      e.children.push_back(std::move(*inner));
      return e;
    }
    if (CurIs(TokenType::kLParen)) {
      Advance();
      auto inner = ParseOrExpr();
      if (!inner.ok()) return inner;
      SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kRParen));
      return inner;
    }
    if (CurIs(TokenType::kKeyword, "BOUND")) {
      Advance();
      SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kLParen));
      auto slot = ParseSlot(false);
      if (!slot.ok()) return slot.status();
      SPARQLUO_RETURN_NOT_OK(Expect(TokenType::kRParen));
      FilterExpr e;
      e.op = FilterExpr::Op::kBound;
      e.lhs = std::move(*slot);
      return e;
    }
    // Comparison: slot op slot.
    auto lhs = ParseSlot(false);
    if (!lhs.ok()) return lhs.status();
    FilterExpr e;
    switch (Cur().type) {
      case TokenType::kEq: e.op = FilterExpr::Op::kEq; break;
      case TokenType::kNeq: e.op = FilterExpr::Op::kNeq; break;
      case TokenType::kLt: e.op = FilterExpr::Op::kLt; break;
      case TokenType::kGt: e.op = FilterExpr::Op::kGt; break;
      case TokenType::kLe: e.op = FilterExpr::Op::kLe; break;
      case TokenType::kGe: e.op = FilterExpr::Op::kGe; break;
      default:
        return Err("expected comparison operator in FILTER");
    }
    Advance();
    auto rhs = ParseSlot(false);
    if (!rhs.ok()) return rhs.status();
    e.lhs = std::move(*lhs);
    e.rhs = std::move(*rhs);
    return e;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  VarTable* vars_;
  VarTable* owned_vars_ = nullptr;
  std::unordered_map<std::string, std::string> prefixes_;
  size_t hidden_counter_ = 0;
};

}  // namespace

Result<Query> ParseQuery(std::string_view text) {
  auto tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  Parser p(std::move(*tokens), nullptr);
  return p.ParseQuery();
}

Result<GroupGraphPattern> ParseGroupGraphPattern(std::string_view text,
                                                 VarTable* vars) {
  auto tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  Parser p(std::move(*tokens), vars);
  return p.ParseGroupOnly();
}

Result<std::vector<UpdateCommand>> ParseUpdateScript(std::string_view text) {
  auto tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  Parser p(std::move(*tokens), nullptr);
  return p.ParseUpdateScript();
}

}  // namespace sparqluo
