#include "sparql/ast.h"

#include <algorithm>

namespace sparqluo {

std::vector<VarId> TriplePattern::Variables() const {
  std::vector<VarId> out;
  for (const PatternSlot* slot : {&s, &p, &o}) {
    if (slot->is_var &&
        std::find(out.begin(), out.end(), slot->var) == out.end())
      out.push_back(slot->var);
  }
  return out;
}

std::vector<VarId> TriplePattern::SubjectObjectVariables() const {
  std::vector<VarId> out;
  for (const PatternSlot* slot : {&s, &o}) {
    if (slot->is_var &&
        std::find(out.begin(), out.end(), slot->var) == out.end())
      out.push_back(slot->var);
  }
  return out;
}

bool Coalescable(const TriplePattern& t1, const TriplePattern& t2) {
  auto v1 = t1.SubjectObjectVariables();
  auto v2 = t2.SubjectObjectVariables();
  for (VarId a : v1)
    for (VarId b : v2)
      if (a == b) return true;
  return false;
}

namespace {

void CollectFromElement(const PatternElement& e, std::vector<VarId>* out) {
  auto add = [out](VarId v) {
    if (std::find(out->begin(), out->end(), v) == out->end()) out->push_back(v);
  };
  switch (e.kind) {
    case PatternElement::Kind::kTriple:
      for (VarId v : e.triple.Variables()) add(v);
      break;
    case PatternElement::Kind::kFilter:
      // FILTER does not bind variables.
      break;
    default:
      for (const GroupGraphPattern& g : e.groups) CollectVariables(g, out);
  }
}

std::string SlotToString(const PatternSlot& s, const VarTable& vars) {
  if (s.is_var) return "?" + vars.Name(s.var);
  return s.term.ToString();
}

std::string FilterToString(const FilterExpr& f, const VarTable& vars) {
  using Op = FilterExpr::Op;
  auto cmp = [&](const char* op) {
    return SlotToString(f.lhs, vars) + " " + op + " " +
           SlotToString(f.rhs, vars);
  };
  switch (f.op) {
    case Op::kEq: return cmp("=");
    case Op::kNeq: return cmp("!=");
    case Op::kLt: return cmp("<");
    case Op::kGt: return cmp(">");
    case Op::kLe: return cmp("<=");
    case Op::kGe: return cmp(">=");
    case Op::kAnd:
      return "(" + FilterToString(f.children[0], vars) + " && " +
             FilterToString(f.children[1], vars) + ")";
    case Op::kOr:
      return "(" + FilterToString(f.children[0], vars) + " || " +
             FilterToString(f.children[1], vars) + ")";
    case Op::kNot:
      return "(!" + FilterToString(f.children[0], vars) + ")";
    case Op::kBound:
      return "BOUND(" + SlotToString(f.lhs, vars) + ")";
  }
  return "";
}

}  // namespace

void CollectVariables(const GroupGraphPattern& g, std::vector<VarId>* out) {
  for (const PatternElement& e : g.elements) CollectFromElement(e, out);
}

std::string ToString(const TriplePattern& t, const VarTable& vars) {
  return SlotToString(t.s, vars) + " " + SlotToString(t.p, vars) + " " +
         SlotToString(t.o, vars) + " .";
}

std::string ToString(const GroupGraphPattern& g, const VarTable& vars,
                     int indent) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string inner_pad(static_cast<size_t>(indent + 1) * 2, ' ');
  std::string out = "{\n";
  for (const PatternElement& e : g.elements) {
    switch (e.kind) {
      case PatternElement::Kind::kTriple:
        out += inner_pad + ToString(e.triple, vars) + "\n";
        break;
      case PatternElement::Kind::kGroup:
        out += inner_pad + ToString(e.groups[0], vars, indent + 1) + "\n";
        break;
      case PatternElement::Kind::kUnion: {
        for (size_t i = 0; i < e.groups.size(); ++i) {
          if (i > 0) out += inner_pad + "UNION\n";
          out += inner_pad + ToString(e.groups[i], vars, indent + 1) + "\n";
        }
        break;
      }
      case PatternElement::Kind::kOptional:
        out += inner_pad + "OPTIONAL " +
               ToString(e.groups[0], vars, indent + 1) + "\n";
        break;
      case PatternElement::Kind::kFilter:
        out += inner_pad + "FILTER(" + FilterToString(e.filter, vars) + ")\n";
        break;
    }
  }
  out += pad + "}";
  return out;
}

std::string ToString(const Query& q) {
  std::string out = "SELECT";
  if (q.distinct) out += " DISTINCT";
  if (q.projection.empty()) {
    out += " *";
  } else {
    for (VarId v : q.projection) out += " ?" + q.vars.Name(v);
  }
  out += " WHERE ";
  out += ToString(q.where, q.vars, 0);
  return out;
}

}  // namespace sparqluo
