#include "sparql/ast.h"

#include <algorithm>

namespace sparqluo {

std::vector<VarId> TriplePattern::Variables() const {
  std::vector<VarId> out;
  for (const PatternSlot* slot : {&s, &p, &o}) {
    if (slot->is_var &&
        std::find(out.begin(), out.end(), slot->var) == out.end())
      out.push_back(slot->var);
  }
  return out;
}

std::vector<VarId> TriplePattern::SubjectObjectVariables() const {
  std::vector<VarId> out;
  for (const PatternSlot* slot : {&s, &o}) {
    if (slot->is_var &&
        std::find(out.begin(), out.end(), slot->var) == out.end())
      out.push_back(slot->var);
  }
  return out;
}

bool Coalescable(const TriplePattern& t1, const TriplePattern& t2) {
  auto v1 = t1.SubjectObjectVariables();
  auto v2 = t2.SubjectObjectVariables();
  for (VarId a : v1)
    for (VarId b : v2)
      if (a == b) return true;
  return false;
}

namespace {

void CollectFromElement(const PatternElement& e, std::vector<VarId>* out) {
  auto add = [out](VarId v) {
    if (std::find(out->begin(), out->end(), v) == out->end()) out->push_back(v);
  };
  switch (e.kind) {
    case PatternElement::Kind::kTriple:
      for (VarId v : e.triple.Variables()) add(v);
      break;
    case PatternElement::Kind::kFilter:
      // FILTER does not bind variables.
      break;
    case PatternElement::Kind::kPath:
      if (e.path.subject.is_var) add(e.path.subject.var);
      if (e.path.object.is_var) add(e.path.object.var);
      break;
    default:
      for (const GroupGraphPattern& g : e.groups) CollectVariables(g, out);
  }
}

std::string SlotToString(const PatternSlot& s, const VarTable& vars) {
  if (s.is_var) return "?" + vars.Name(s.var);
  return s.term.ToString();
}

std::string PathExprToString(const PathExpr& p) {
  using Kind = PathExpr::Kind;
  switch (p.kind) {
    case Kind::kLink:
      return p.iri.ToString();
    case Kind::kSeq: {
      std::string out;
      for (size_t i = 0; i < p.children.size(); ++i) {
        if (i > 0) out += "/";
        out += PathExprToString(p.children[i]);
      }
      return "(" + out + ")";
    }
    case Kind::kAlt: {
      std::string out;
      for (size_t i = 0; i < p.children.size(); ++i) {
        if (i > 0) out += "|";
        out += PathExprToString(p.children[i]);
      }
      return "(" + out + ")";
    }
    case Kind::kStar:
      return PathExprToString(p.children[0]) + "*";
    case Kind::kPlus:
      return PathExprToString(p.children[0]) + "+";
  }
  return "";
}

std::string FilterToString(const FilterExpr& f, const VarTable& vars) {
  using Op = FilterExpr::Op;
  auto cmp = [&](const char* op) {
    return SlotToString(f.lhs, vars) + " " + op + " " +
           SlotToString(f.rhs, vars);
  };
  switch (f.op) {
    case Op::kEq: return cmp("=");
    case Op::kNeq: return cmp("!=");
    case Op::kLt: return cmp("<");
    case Op::kGt: return cmp(">");
    case Op::kLe: return cmp("<=");
    case Op::kGe: return cmp(">=");
    case Op::kAnd:
      return "(" + FilterToString(f.children[0], vars) + " && " +
             FilterToString(f.children[1], vars) + ")";
    case Op::kOr:
      return "(" + FilterToString(f.children[0], vars) + " || " +
             FilterToString(f.children[1], vars) + ")";
    case Op::kNot:
      return "(!" + FilterToString(f.children[0], vars) + ")";
    case Op::kBound:
      return "BOUND(" + SlotToString(f.lhs, vars) + ")";
  }
  return "";
}

}  // namespace

void CollectVariables(const GroupGraphPattern& g, std::vector<VarId>* out) {
  for (const PatternElement& e : g.elements) CollectFromElement(e, out);
}

std::string ToString(const TriplePattern& t, const VarTable& vars) {
  return SlotToString(t.s, vars) + " " + SlotToString(t.p, vars) + " " +
         SlotToString(t.o, vars) + " .";
}

std::string ToString(const GroupGraphPattern& g, const VarTable& vars,
                     int indent) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string inner_pad(static_cast<size_t>(indent + 1) * 2, ' ');
  std::string out = "{\n";
  for (const PatternElement& e : g.elements) {
    switch (e.kind) {
      case PatternElement::Kind::kTriple:
        out += inner_pad + ToString(e.triple, vars) + "\n";
        break;
      case PatternElement::Kind::kGroup:
        out += inner_pad + ToString(e.groups[0], vars, indent + 1) + "\n";
        break;
      case PatternElement::Kind::kUnion: {
        for (size_t i = 0; i < e.groups.size(); ++i) {
          if (i > 0) out += inner_pad + "UNION\n";
          out += inner_pad + ToString(e.groups[i], vars, indent + 1) + "\n";
        }
        break;
      }
      case PatternElement::Kind::kOptional:
        out += inner_pad + "OPTIONAL " +
               ToString(e.groups[0], vars, indent + 1) + "\n";
        break;
      case PatternElement::Kind::kFilter:
        out += inner_pad + "FILTER(" + FilterToString(e.filter, vars) + ")\n";
        break;
      case PatternElement::Kind::kPath:
        out += inner_pad + SlotToString(e.path.subject, vars) + " " +
               PathExprToString(e.path.path) + " " +
               SlotToString(e.path.object, vars) + " .\n";
        break;
    }
  }
  out += pad + "}";
  return out;
}

std::string ToString(const Query& q) {
  if (q.form == QueryForm::kConstruct) {
    std::string out = "CONSTRUCT {\n";
    for (const TriplePattern& t : q.construct_template)
      out += "  " + ToString(t, q.vars) + "\n";
    out += "} WHERE ";
    out += ToString(q.where, q.vars, 0);
    return out;
  }
  std::string out = "SELECT";
  if (q.distinct) out += " DISTINCT";
  if (q.projection.empty() && q.aggregates.empty()) {
    out += " *";
  } else {
    auto agg_for = [&q](VarId v) -> const AggregateSpec* {
      for (const AggregateSpec& a : q.aggregates)
        if (a.output == v) return &a;
      return nullptr;
    };
    auto agg_name = [](AggFunc f) {
      switch (f) {
        case AggFunc::kCount: return "COUNT";
        case AggFunc::kSum: return "SUM";
        case AggFunc::kMin: return "MIN";
        case AggFunc::kMax: return "MAX";
        case AggFunc::kAvg: return "AVG";
      }
      return "COUNT";
    };
    for (VarId v : q.projection) {
      if (const AggregateSpec* a = agg_for(v)) {
        out += std::string(" (") + agg_name(a->func) + "(";
        if (a->distinct) out += "DISTINCT ";
        out += a->count_star ? "*" : "?" + q.vars.Name(a->input);
        out += ") AS ?" + q.vars.Name(v) + ")";
      } else {
        out += " ?" + q.vars.Name(v);
      }
    }
  }
  out += " WHERE ";
  out += ToString(q.where, q.vars, 0);
  if (!q.group_by.empty()) {
    out += "\nGROUP BY";
    for (VarId v : q.group_by) out += " ?" + q.vars.Name(v);
  }
  return out;
}

}  // namespace sparqluo
