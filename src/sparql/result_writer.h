// Incremental (streaming) serialization of query results in the W3C
// SPARQL 1.1 results formats served over the wire: the JSON results format
// (https://www.w3.org/TR/sparql11-results-json/) and TSV
// (https://www.w3.org/TR/sparql11-results-csv-tsv/).
//
// The writer emits into a caller-supplied Sink in bounded flushes: rows
// are appended to an internal buffer that is handed off whenever it
// reaches `flush_bytes`, so serializing an arbitrarily large BindingSet
// never materializes more than ~one flush worth of text at a time. The
// HTTP endpoint points the sink at a chunked-transfer connection write
// (which applies socket backpressure); the in-process writers in
// src/engine/result_writer.cc point it at an ostream — both paths share
// this code, which is what makes over-the-wire bodies bit-identical to
// in-process FormatResults output.
//
// A Sink returning false aborts serialization (client disconnected, write
// stalled): every later call becomes a no-op returning false, and nothing
// further is buffered.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "algebra/binding_set.h"

namespace sparqluo {

/// Wire formats the streaming writer can produce. kNTriples serializes
/// CONSTRUCT results (three-column subject/predicate/object rows) as one
/// N-Triples statement per row; it has no header and ignores variable
/// names.
enum class WireFormat { kJson, kTsv, kNTriples };

/// The SPARQL results media type for `format` (no parameters).
std::string_view WireFormatContentType(WireFormat format);

/// Appends `s` as a JSON string token (including the surrounding quotes),
/// escaping quotes, backslashes and control characters. UTF-8 bytes pass
/// through unmodified.
void AppendJsonString(std::string_view s, std::string* out);

class StreamingResultWriter {
 public:
  /// Receives each flushed piece of output, in order. Returns false to
  /// abort serialization (e.g. the client hung up).
  using Sink = std::function<bool(std::string_view)>;

  static constexpr size_t kDefaultFlushBytes = 64 * 1024;

  StreamingResultWriter(WireFormat format, Sink sink,
                        size_t flush_bytes = kDefaultFlushBytes);

  /// Starts a SELECT result: JSON head object / TSV header line over the
  /// result schema. Call exactly once, before any WriteRow.
  bool BeginSelect(const std::vector<VarId>& schema, const VarTable& vars);

  /// Appends one solution mapping (`width` cells; kUnboundTerm cells are
  /// omitted in JSON and empty in TSV). Returns false once aborted.
  bool WriteRow(const TermId* row, size_t width, const Dictionary& dict);

  /// Convenience: BeginSelect + every row of `rows` + Finish.
  bool WriteAll(const BindingSet& rows, const VarTable& vars,
                const Dictionary& dict);

  /// Serializes an ASK result (complete on its own: do not mix with
  /// BeginSelect/WriteRow). JSON: {"head":{},"boolean":b}; TSV: a single
  /// "true"/"false" line.
  bool WriteBoolean(bool value);

  /// Closes the enclosing structure and flushes everything buffered.
  bool Finish();

  /// False once the sink rejected a flush; no further output is produced.
  bool ok() const { return !failed_; }

  size_t rows_written() const { return rows_written_; }
  /// Total bytes handed to the sink so far.
  size_t bytes_emitted() const { return bytes_emitted_; }
  /// High-water mark of the internal buffer: the bounded-memory guarantee
  /// under test — stays O(flush_bytes + one row) regardless of row count.
  size_t max_buffered() const { return max_buffered_; }

 private:
  bool MaybeFlush();
  bool FlushAll();

  WireFormat format_;
  Sink sink_;
  size_t flush_bytes_;
  std::string buffer_;
  std::vector<VarId> schema_;
  const VarTable* vars_ = nullptr;
  bool began_ = false;
  bool finished_ = false;
  bool failed_ = false;
  size_t rows_written_ = 0;
  size_t bytes_emitted_ = 0;
  size_t max_buffered_ = 0;
};

}  // namespace sparqluo
