#include "workload/dbpedia_generator.h"

#include <string>
#include <vector>

#include "util/random.h"

namespace sparqluo {

namespace {

constexpr const char* kRdf = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
constexpr const char* kRdfs = "http://www.w3.org/2000/01/rdf-schema#";
constexpr const char* kFoaf = "http://xmlns.com/foaf/0.1/";
constexpr const char* kPurl = "http://purl.org/dc/terms/";
constexpr const char* kSkos = "http://www.w3.org/2004/02/skos/core#";
constexpr const char* kProv = "http://www.w3.org/ns/prov#";
constexpr const char* kOwl = "http://www.w3.org/2002/07/owl#";
constexpr const char* kDbo = "http://dbpedia.org/ontology/";
constexpr const char* kDbr = "http://dbpedia.org/resource/";
constexpr const char* kDbp = "http://dbpedia.org/property/";
constexpr const char* kGeo = "http://www.w3.org/2003/01/geo/wgs84_pos#";
constexpr const char* kGeorss = "http://www.georss.org/georss/";

class DbpediaBuilder {
 public:
  DbpediaBuilder(const DbpediaConfig& config, Database* db)
      : config_(config), db_(db), rng_(config.seed) {}

  void Generate() {
    const size_t n = config_.articles;
    n_categories_ = std::max<size_t>(n / 40, 8);
    n_external_ = n / 3;

    GenerateAnchors();
    for (size_t i = 0; i < n; ++i) GenerateArticle(i);
    GenerateCategories();
    GenerateTypedPopulations();
  }

 private:
  std::string Art(size_t i) const { return kDbr + ("Article_" + std::to_string(i)); }
  std::string Page(size_t i) const {
    return "http://en.wikipedia.org/wiki/Article_" + std::to_string(i);
  }
  std::string Cat(size_t i) const {
    return kDbr + ("Category:Topic_" + std::to_string(i));
  }
  std::string Ext(size_t i) const {
    return "http://external.org/entity/" + std::to_string(i);
  }

  void Add(const std::string& s, const std::string& p, const std::string& o) {
    db_->AddTriple(Term::Iri(s), Term::Iri(p), Term::Iri(o));
  }
  void AddLit(const std::string& s, const std::string& p,
              const std::string& lit, const char* lang = "en") {
    db_->AddTriple(Term::Iri(s), Term::Iri(p), Term::LangLiteral(lit, lang));
  }
  void AddPlain(const std::string& s, const std::string& p,
                const std::string& lit) {
    db_->AddTriple(Term::Iri(s), Term::Iri(p), Term::Literal(lit));
  }

  /// The concrete entities the paper's queries anchor on. Each receives a
  /// selective population of in-links so anchor patterns bind a small
  /// fraction of the graph (mirroring the paper's selectivity analysis).
  void GenerateAnchors() {
    anchors_ = {std::string(kDbr) + "Economic_system",
                std::string(kDbr) + "Air_masses",
                std::string(kDbr) + "Functional_neuroimaging",
                std::string(kDbr) + "Abdul_Rahim_Wardak",
                std::string(kDbr) + "Category:Cell_biology"};
    for (const std::string& a : anchors_) {
      AddLit(a, std::string(kRdfs) + "label", a.substr(std::string(kDbr).size()));
      Add(a, std::string(kProv) + "wasDerivedFrom",
          "http://en.wikipedia.org/wiki/" + a.substr(std::string(kDbr).size()));
    }
    // Air_masses participates in the primary-topic cluster used by q1.3.
    Add(anchors_[1], std::string(kFoaf) + "isPrimaryTopicOf",
        "http://en.wikipedia.org/wiki/Air_masses");
    Add("http://en.wikipedia.org/wiki/Air_masses",
        std::string(kFoaf) + "primaryTopic", anchors_[1]);
  }

  void GenerateArticle(size_t i) {
    const size_t n = config_.articles;
    std::string art = Art(i);
    std::string name = "Article " + std::to_string(i);

    // Universal attributes (low selectivity).
    AddLit(art, std::string(kRdfs) + "label", name);
    if (rng_.Bernoulli(0.7)) AddLit(art, std::string(kFoaf) + "name", name);
    Add(art, std::string(kProv) + "wasDerivedFrom", Page(i));
    Add(art, std::string(kFoaf) + "isPrimaryTopicOf", Page(i));
    Add(Page(i), std::string(kFoaf) + "primaryTopic", art);

    // Categories: purl:subject is the modern predicate, skos:subject the
    // legacy one — both appear in the data (and in the queries' UNIONs).
    size_t n_cats = rng_.Range(1, 3);
    for (size_t c = 0; c < n_cats; ++c) {
      std::string cat = Cat(rng_.Zipf(n_categories_));
      if (rng_.Bernoulli(0.7)) {
        Add(art, std::string(kPurl) + "subject", cat);
      } else {
        Add(art, std::string(kSkos) + "subject", cat);
      }
    }

    // Wiki links with Zipf-skewed targets: hubs receive many in-links.
    size_t n_links = rng_.Range(3, 12);
    for (size_t l = 0; l < n_links; ++l) {
      Add(art, std::string(kDbo) + "wikiPageWikiLink", Art(rng_.Zipf(n)));
    }
    // A small selective population links to each anchor (~0.5%).
    if (rng_.Bernoulli(0.005))
      Add(art, std::string(kDbo) + "wikiPageWikiLink", anchors_[0]);
    if (rng_.Bernoulli(0.005))
      Add(art, std::string(kDbo) + "wikiPageWikiLink", anchors_[3]);
    if (rng_.Bernoulli(0.005))
      Add(art, std::string(kDbo) + "wikiPageWikiLink", anchors_[4]);

    // owl:sameAs to external references (abundant, as in the intro example).
    if (rng_.Bernoulli(0.35))
      Add(art, std::string(kOwl) + "sameAs", Ext(rng_.Uniform(n_external_)));
    if (rng_.Bernoulli(0.05))
      Add(Ext(rng_.Uniform(n_external_)), std::string(kOwl) + "sameAs", art);

    // Redirect chains. A redirect article shares the target's wiki page,
    // so pages can carry several primary topics (as in real DBpedia, where
    // q1.6-style queries traverse page<->article both ways).
    if (rng_.Bernoulli(0.06)) {
      size_t target = rng_.Zipf(n);
      Add(art, std::string(kDbo) + "wikiPageRedirects", Art(target));
      Add(art, std::string(kDbo) + "wikiPageWikiLink", Art(target));
      Add(art, std::string(kFoaf) + "isPrimaryTopicOf", Page(target));
      Add(Page(target), std::string(kFoaf) + "primaryTopic", art);
    }
    if (rng_.Bernoulli(0.3))
      AddPlain(art, std::string(kDbo) + "wikiPageLength",
               std::to_string(rng_.Range(500, 150000)));
    if (rng_.Bernoulli(0.4))
      AddLit(art, std::string(kSkos) + "prefLabel", name);
    if (rng_.Bernoulli(0.5))
      AddLit(art, std::string(kRdfs) + "comment", "About " + name);
    if (rng_.Bernoulli(0.3)) Add(art, std::string(kFoaf) + "page", Page(i));
  }

  void GenerateCategories() {
    for (size_t c = 0; c < n_categories_; ++c) {
      std::string cat = Cat(c);
      AddLit(cat, std::string(kRdfs) + "label", "Topic " + std::to_string(c));
      if (rng_.Bernoulli(0.6))
        AddLit(cat, std::string(kFoaf) + "name", "Topic " + std::to_string(c));
      // skos:related links between categories (used by q1.4).
      size_t n_rel = rng_.Range(1, 4);
      for (size_t r = 0; r < n_rel; ++r)
        Add(cat, std::string(kSkos) + "related", Cat(rng_.Zipf(n_categories_)));
      if (rng_.Bernoulli(0.5))
        Add(cat, std::string(kOwl) + "sameAs", Ext(rng_.Uniform(n_external_)));
      if (rng_.Bernoulli(0.5))
        Add(cat, std::string(kRdf) + "type", std::string(kSkos) + "Concept");
    }
    // Functional_neuroimaging's categories (anchor of q1.4): a handful.
    for (size_t c = 0; c < 3; ++c) {
      std::string cat = Cat(rng_.Uniform(n_categories_));
      Add(anchors_[2], std::string(kPurl) + "subject", cat);
      Add(cat, std::string(kOwl) + "sameAs", Ext(rng_.Uniform(n_external_)));
      Add(cat, std::string(kRdf) + "type", std::string(kSkos) + "Concept");
    }
  }

  /// Typed subpopulations with their attribute clusters, used by q2.x.
  void GenerateTypedPopulations() {
    const size_t n = config_.articles;
    const std::string type = std::string(kRdf) + "type";

    // Populated places / settlements (q2.1, q2.4).
    size_t n_places = n / 20;
    std::vector<std::string> settlements;
    for (size_t i = 0; i < n_places; ++i) {
      std::string place = kDbr + ("Place_" + std::to_string(i));
      Add(place, type, std::string(kDbo) + "PopulatedPlace");
      AddLit(place, std::string(kDbo) + "abstract", "A place.");
      AddLit(place, std::string(kRdfs) + "label", "Place " + std::to_string(i));
      AddPlain(place, std::string(kGeo) + "lat", std::to_string(rng_.Uniform(90)));
      AddPlain(place, std::string(kGeo) + "long", std::to_string(rng_.Uniform(180)));
      if (rng_.Bernoulli(0.4))
        Add(place, std::string(kFoaf) + "depiction",
            "http://img.org/" + std::to_string(i));
      if (rng_.Bernoulli(0.25))
        Add(place, std::string(kFoaf) + "homepage",
            "http://place" + std::to_string(i) + ".example.org");
      if (rng_.Bernoulli(0.6))
        AddPlain(place, std::string(kDbo) + "populationTotal",
                 std::to_string(rng_.Range(100, 10000000)));
      if (rng_.Bernoulli(0.5))
        Add(place, std::string(kDbo) + "thumbnail",
            "http://img.org/thumb/" + std::to_string(i));
      if (rng_.Bernoulli(0.5)) {
        Add(place, type, std::string(kDbo) + "Settlement");
        settlements.push_back(place);
      }
    }

    // Airports serving settlements (q2.4).
    size_t n_airports = std::max<size_t>(n / 200, 4);
    for (size_t i = 0; i < n_airports && !settlements.empty(); ++i) {
      std::string ap = kDbr + ("Airport_" + std::to_string(i));
      Add(ap, type, std::string(kDbo) + "Airport");
      Add(ap, std::string(kDbo) + "city",
          settlements[rng_.Uniform(settlements.size())]);
      AddPlain(ap, std::string(kDbp) + "iata", "A" + std::to_string(i));
      if (rng_.Bernoulli(0.5))
        Add(ap, std::string(kFoaf) + "homepage",
            "http://airport" + std::to_string(i) + ".example.org");
      if (rng_.Bernoulli(0.4))
        AddLit(ap, std::string(kDbp) + "nativename", "Airport " + std::to_string(i));
    }

    // Soccer players and their clubs (q2.2).
    size_t n_clubs = std::max<size_t>(n / 400, 4);
    for (size_t i = 0; i < n_clubs; ++i) {
      std::string club = kDbr + ("Club_" + std::to_string(i));
      AddPlain(club, std::string(kDbo) + "capacity",
               std::to_string(rng_.Range(5000, 90000)));
    }
    size_t n_players = n / 40;
    for (size_t i = 0; i < n_players; ++i) {
      std::string pl = kDbr + ("Player_" + std::to_string(i));
      Add(pl, type, std::string(kDbo) + "SoccerPlayer");
      if (rng_.Bernoulli(0.3))
        Add(pl, std::string(kFoaf) + "homepage",
            "http://player" + std::to_string(i) + ".example.org");
      AddLit(pl, std::string(kDbp) + "position", "Forward");
      Add(pl, std::string(kDbp) + "clubs", kDbr + ("Club_" + std::to_string(rng_.Uniform(n_clubs))));
      Add(pl, std::string(kDbo) + "birthPlace",
          kDbr + ("Place_" + std::to_string(rng_.Uniform(std::max<size_t>(n_places, 1)))));
      if (rng_.Bernoulli(0.5))
        AddPlain(pl, std::string(kDbo) + "number", std::to_string(rng_.Range(1, 30)));
    }

    // Persons (q2.3, q2.5).
    size_t n_persons = n / 10;
    for (size_t i = 0; i < n_persons; ++i) {
      std::string person = kDbr + ("Person_" + std::to_string(i));
      Add(person, type, std::string(kDbo) + "Person");
      AddLit(person, std::string(kRdfs) + "label", "Person " + std::to_string(i));
      AddLit(person, std::string(kFoaf) + "name", "Person " + std::to_string(i));
      if (rng_.Bernoulli(0.3))
        Add(person, std::string(kDbo) + "thumbnail",
            "http://img.org/person/" + std::to_string(i));
      if (rng_.Bernoulli(0.15))
        Add(person, std::string(kFoaf) + "homepage",
            "http://person" + std::to_string(i) + ".example.org");
      if (rng_.Bernoulli(0.4))
        AddLit(person, std::string(kRdfs) + "comment", "A person.");
      Add(person, std::string(kSkos) + "subject", Cat(rng_.Zipf(n_categories_)));
    }

    // Companies (q2.6).
    size_t n_companies = n / 50;
    for (size_t i = 0; i < n_companies; ++i) {
      std::string co = kDbr + ("Company_" + std::to_string(i));
      AddLit(co, std::string(kRdfs) + "comment", "A company.");
      Add(co, std::string(kFoaf) + "page",
          "http://company" + std::to_string(i) + ".example.org");
      if (rng_.Bernoulli(0.6))
        Add(co, std::string(kSkos) + "subject", Cat(rng_.Zipf(n_categories_)));
      if (rng_.Bernoulli(0.5))
        AddLit(co, std::string(kDbp) + "industry", "Industry" + std::to_string(rng_.Uniform(12)));
      if (rng_.Bernoulli(0.5))
        Add(co, std::string(kDbp) + "location",
            kDbr + ("Place_" + std::to_string(rng_.Uniform(std::max<size_t>(n_places, 1)))));
      if (rng_.Bernoulli(0.4))
        AddLit(co, std::string(kDbp) + "locationCountry", "Country" + std::to_string(rng_.Uniform(40)));
      if (rng_.Bernoulli(0.3))
        Add(co, std::string(kDbp) + "locationCity",
            kDbr + ("Place_" + std::to_string(rng_.Uniform(std::max<size_t>(n_places, 1)))));
      if (rng_.Bernoulli(0.3)) {
        std::string product = kDbr + ("Product_" + std::to_string(i));
        AddLit(co, std::string(kDbp) + "products", "Product" + std::to_string(i));
        Add(product, std::string(kDbp) + "manufacturer", co);
        Add(product, std::string(kDbp) + "model", co);
      }
      if (rng_.Bernoulli(0.4))
        AddPlain(co, std::string(kGeorss) + "point", "0.0 0.0");
      if (rng_.Bernoulli(0.5))
        Add(co, type, std::string(kDbo) + "Company");
    }

    // Phylum links for the biology cluster (q1.6).
    size_t n_species = n / 100;
    for (size_t i = 0; i < n_species; ++i) {
      std::string sp = kDbr + ("Species_" + std::to_string(i));
      Add(sp, std::string(kDbo) + "phylum", Art(rng_.Zipf(n)));
      Add(sp, std::string(kFoaf) + "isPrimaryTopicOf",
          "http://en.wikipedia.org/wiki/Species_" + std::to_string(i));
      Add("http://en.wikipedia.org/wiki/Species_" + std::to_string(i),
          std::string(kFoaf) + "primaryTopic", sp);
    }
  }

  const DbpediaConfig& config_;
  Database* db_;
  Random rng_;
  size_t n_categories_ = 0;
  size_t n_external_ = 0;
  std::vector<std::string> anchors_;
};

}  // namespace

void GenerateDbpedia(const DbpediaConfig& config, Database* db) {
  DbpediaBuilder builder(config, db);
  builder.Generate();
}

}  // namespace sparqluo
