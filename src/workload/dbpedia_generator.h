// DBpedia-shaped synthetic dataset generator.
//
// Substitution (see DESIGN.md): the paper evaluates on the real DBpedia
// V3.9 dump (830M triples), which is unavailable here. This generator
// produces an encyclopedic graph with the same *selectivity structure* the
// paper's analysis relies on:
//   - hub articles with skewed (Zipf) wikiPageWikiLink in-degree,
//   - pervasive low-selectivity attribute predicates (rdfs:label,
//     foaf:name, owl:sameAs, purl:subject, nsprov:wasDerivedFrom, ...),
//   - sparse typed subpopulations (dbo:SoccerPlayer, dbo:Settlement,
//     dbo:Airport, companies, persons) with their attribute clusters,
//   - the concrete anchor entities the benchmark queries reference
//     (dbr:Economic_system, dbr:Air_masses, dbr:Functional_neuroimaging,
//     dbr:Abdul_Rahim_Wardak, dbr:Category:Cell_biology), each with a
//     moderate, selective in-link population.
#pragma once

#include <cstdint>

#include "engine/database.h"

namespace sparqluo {

struct DbpediaConfig {
  /// Number of article entities (the generator adds categories, pages and
  /// typed subpopulations proportionally; ~12 triples per article).
  size_t articles = 20000;
  uint64_t seed = 7;
};

/// Generates the dataset into `db` (before Finalize).
void GenerateDbpedia(const DbpediaConfig& config, Database* db);

}  // namespace sparqluo
