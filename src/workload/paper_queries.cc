#include "workload/paper_queries.h"

namespace sparqluo {

namespace {

const char* kLubmPrefixes = R"(
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
)";

const char* kDbpediaPrefixes = R"(
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX purl: <http://purl.org/dc/terms/>
PREFIX skos: <http://www.w3.org/2004/02/skos/core#>
PREFIX nsprov: <http://www.w3.org/ns/prov#>
PREFIX owl: <http://www.w3.org/2002/07/owl#>
PREFIX dbo: <http://dbpedia.org/ontology/>
PREFIX dbr: <http://dbpedia.org/resource/>
PREFIX dbp: <http://dbpedia.org/property/>
PREFIX geo: <http://www.w3.org/2003/01/geo/wgs84_pos#>
PREFIX georss: <http://www.georss.org/georss/>
)";

std::vector<PaperQuery> MakeLubm() {
  std::vector<PaperQuery> qs;
  auto add = [&](const char* id, const char* type, const std::string& body) {
    qs.push_back({id, type, std::string(kLubmPrefixes) + body});
  };

  add("q1.1", "U", R"(SELECT * WHERE {
  { ?v2 ub:headOf ?v1 . } UNION { ?v2 ub:worksFor ?v1 . }
  ?v2 ub:undergraduateDegreeFrom ?v3 .
  ?v4 ub:doctoralDegreeFrom ?v3 .
  ?v5 ub:publicationAuthor ?v2 .
  { ?v6 ub:headOf ?v1 . } UNION { ?v6 ub:worksFor ?v1 . }
  { ?v2 ub:headOf ?v7 . } UNION { ?v2 ub:worksFor ?v7 . }
  <http://www.Department0.University0.edu/UndergraduateStudent91> ub:memberOf ?v1 .
  ?v7 ub:name ?v8 . })");

  add("q1.2", "O", R"(SELECT * WHERE {
  ?v3 ub:emailAddress "UndergraduateStudent91@Department0.University0.edu" .
  ?v2 ub:emailAddress ?v1 .
  OPTIONAL { ?v2 ub:teacherOf ?v4 . ?v3 ub:takesCourse ?v4 . } })");

  add("q1.3", "O", R"(SELECT * WHERE {
  <http://www.Department1.University0.edu/UndergraduateStudent363> ub:takesCourse ?v1 .
  OPTIONAL { ?v2 ub:teachingAssistantOf ?v1 .
    OPTIONAL { ?v2 ub:memberOf ?v3 .
      ?v4 ub:subOrganizationOf ?v3 .
      ?v4 ub:subOrganizationOf ?v5 .
      ?v4 rdf:type ?v6 .
      OPTIONAL { ?v5 ub:subOrganizationOf ?v7 . } } } })");

  add("q1.4", "O", R"(SELECT * WHERE {
  ?v1 ub:emailAddress "UndergraduateStudent309@Department12.University0.edu" .
  OPTIONAL { ?v1 ub:memberOf ?v2 . ?v2 ub:name ?v3 .
    OPTIONAL { ?v5 ub:publicationAuthor ?v4 . ?v4 ub:worksFor ?v2 .
      OPTIONAL { ?v6 ub:publicationAuthor ?v4 . } } } })");

  add("q1.5", "UO", R"(SELECT * WHERE {
  { ?v2 <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> ?v3 . }
  UNION
  { ?v2 ub:name ?v4 . }
  <http://www.Department0.University0.edu/UndergraduateStudent356> ub:memberOf ?v1 .
  ?v2 ub:worksFor ?v1 .
  OPTIONAL { ?v5 ub:advisor ?v2 .
    OPTIONAL { ?v5 ub:teachingAssistantOf ?v6 . } }
  OPTIONAL { ?v7 ub:advisor ?v2 . } })");

  add("q1.6", "UO", R"(SELECT * WHERE {
  ?v4 ub:headOf ?v1 .
  <http://www.Department1.University0.edu/UndergraduateStudent256> ub:memberOf ?v1 .
  ?v3 ub:subOrganizationOf ?v5 .
  { ?v2 ub:worksFor ?v1 . } UNION { ?v2 ub:headOf ?v1 . }
  { ?v2 ub:worksFor ?v3 . } UNION { ?v2 ub:headOf ?v3 . }
  OPTIONAL { ?v6 ub:publicationAuthor ?v2 . }
  OPTIONAL { { ?v7 ub:headOf ?v1 . } UNION { ?v7 ub:worksFor ?v1 . } } })");

  add("q2.1", "O", R"(SELECT * WHERE {
  { ?st ub:teachingAssistantOf ?course .
    OPTIONAL { ?st ub:takesCourse ?course2 . ?pub1 ub:publicationAuthor ?st . } }
  { ?prof ub:teacherOf ?course . ?st ub:advisor ?prof .
    OPTIONAL { ?prof ub:researchInterest ?resint . ?pub2 ub:publicationAuthor ?prof . } } })");

  add("q2.2", "O", R"(SELECT * WHERE {
  { ?pub rdf:type ub:Publication . ?pub ub:publicationAuthor ?st . ?pub ub:publicationAuthor ?prof .
    OPTIONAL { ?st ub:emailAddress ?ste . ?st ub:telephone ?sttel . } }
  { ?st ub:undergraduateDegreeFrom ?univ . ?dept ub:subOrganizationOf ?univ .
    OPTIONAL { ?head ub:headOf ?dept . ?others ub:worksFor ?dept . } }
  { ?st ub:memberOf ?dept . ?prof ub:worksFor ?dept .
    OPTIONAL { ?prof ub:doctoralDegreeFrom ?univ1 . ?prof ub:researchInterest ?resint1 . } } })");

  add("q2.3", "O", R"(SELECT * WHERE {
  { ?pub ub:publicationAuthor ?st . ?pub ub:publicationAuthor ?prof .
    ?st rdf:type ub:GraduateStudent .
    OPTIONAL { ?st ub:undergraduateDegreeFrom ?univ1 . ?st ub:telephone ?sttel . } }
  { ?st ub:advisor ?prof .
    OPTIONAL { ?prof ub:doctoralDegreeFrom ?univ . ?prof ub:researchInterest ?resint . } }
  { ?st ub:memberOf ?dept . ?prof ub:worksFor ?dept . ?prof rdf:type ub:FullProfessor .
    OPTIONAL { ?head ub:headOf ?dept . ?others ub:worksFor ?dept . } } })");

  add("q2.4", "O", R"(SELECT * WHERE {
  ?x ub:worksFor <http://www.Department0.University0.edu> .
  ?x rdf:type ub:FullProfessor .
  OPTIONAL { ?y ub:advisor ?x . ?x ub:teacherOf ?z . ?y ub:takesCourse ?z . } })");

  add("q2.5", "O", R"(SELECT * WHERE {
  ?x ub:worksFor <http://www.Department0.University12.edu> .
  ?x rdf:type ub:FullProfessor .
  OPTIONAL { ?y ub:advisor ?x . ?x ub:teacherOf ?z . ?y ub:takesCourse ?z . } })");

  add("q2.6", "O", R"(SELECT * WHERE {
  ?x ub:worksFor <http://www.Department0.University12.edu> .
  ?x rdf:type ub:FullProfessor .
  OPTIONAL { ?x ub:emailAddress ?y1 . ?x ub:telephone ?y2 . ?x ub:name ?y3 . } })");

  return qs;
}

std::vector<PaperQuery> MakeDbpedia() {
  std::vector<PaperQuery> qs;
  auto add = [&](const char* id, const char* type, const std::string& body) {
    qs.push_back({id, type, std::string(kDbpediaPrefixes) + body});
  };

  add("q1.1", "U", R"(SELECT * WHERE {
  { ?v3 rdfs:label ?v7 . } UNION { ?v3 foaf:name ?v7 . }
  { ?v1 purl:subject ?v3 . } UNION { ?v3 skos:subject ?v1 . }
  ?v3 rdfs:label ?v4 .
  ?v5 nsprov:wasDerivedFrom ?v2 .
  ?v1 owl:sameAs ?v6 .
  ?v1 dbo:wikiPageWikiLink dbr:Economic_system .
  ?v1 nsprov:wasDerivedFrom ?v2 . })");

  add("q1.2", "UO", R"(SELECT * WHERE {
  { ?v3 purl:subject ?v5 . OPTIONAL { ?v5 rdfs:label ?v6 } }
  UNION
  { ?v5 skos:subject ?v3 . OPTIONAL { ?v5 foaf:name ?v6 } }
  ?v1 dbo:wikiPageWikiLink dbr:Economic_system .
  ?v1 nsprov:wasDerivedFrom ?v2 .
  ?v3 dbo:wikiPageWikiLink ?v4 .
  ?v3 nsprov:wasDerivedFrom ?v2 . })");

  add("q1.3", "O", R"(SELECT * WHERE {
  dbr:Air_masses foaf:isPrimaryTopicOf ?v1 .
  ?v2 foaf:isPrimaryTopicOf ?v1 .
  OPTIONAL {
    ?v2 dbo:wikiPageRedirects ?v3 . ?v4 foaf:primaryTopic ?v2 .
    OPTIONAL {
      ?v5 dbo:wikiPageWikiLink ?v3 .
      OPTIONAL { ?v6 dbo:wikiPageRedirects ?v5 .
        OPTIONAL { ?v6 dbo:wikiPageWikiLink ?v7 . } } } } })");

  add("q1.4", "UO", R"(SELECT * WHERE {
  dbr:Functional_neuroimaging purl:subject ?v1 .
  OPTIONAL {
    ?v1 owl:sameAs ?v2 . ?v1 rdf:type ?v3 . ?v4 owl:sameAs ?v2 . ?v5 skos:related ?v4 .
    OPTIONAL { ?v6 skos:related ?v4 . }
    OPTIONAL {
      { ?v7 purl:subject ?v1 . } UNION { ?v1 skos:subject ?v7 . }
      OPTIONAL {
        { ?v7 purl:subject ?v8 . } UNION { ?v8 skos:subject ?v7 . } } } } })");

  add("q1.5", "UO", R"(SELECT * WHERE {
  { ?v2 purl:subject ?v3 . } UNION { ?v2 dbo:wikiPageWikiLink ?v4 . }
  ?v1 dbo:wikiPageWikiLink dbr:Abdul_Rahim_Wardak .
  ?v2 dbo:wikiPageWikiLink ?v1 .
  OPTIONAL { ?v5 owl:sameAs ?v2 .
    OPTIONAL { ?v5 dbo:wikiPageLength ?v6 . } }
  OPTIONAL { ?v2 skos:prefLabel ?v7 . } })");

  add("q1.6", "UO", R"(SELECT * WHERE {
  { ?v2 foaf:primaryTopic ?v1 . } UNION { ?v1 foaf:isPrimaryTopicOf ?v2 . }
  { ?v2 foaf:primaryTopic ?v3 . } UNION { ?v3 foaf:isPrimaryTopicOf ?v2 . }
  ?v1 dbo:wikiPageWikiLink dbr:Category:Cell_biology .
  ?v3 dbo:wikiPageWikiLink ?v1 .
  OPTIONAL {
    { ?v2 foaf:primaryTopic ?v4 . } UNION { ?v4 foaf:isPrimaryTopicOf ?v2 . } }
  OPTIONAL { ?v5 dbo:phylum ?v3 . ?v6 dbo:phylum ?v3 .
    OPTIONAL {
      { ?v7 foaf:primaryTopic ?v5 . } UNION { ?v5 foaf:isPrimaryTopicOf ?v7 . } } } })");

  add("q2.1", "O", R"(SELECT * WHERE {
  { ?v6 a dbo:PopulatedPlace . ?v6 dbo:abstract ?v1 .
    ?v6 rdfs:label ?v2 . ?v6 geo:lat ?v3 . ?v6 geo:long ?v4 .
    OPTIONAL { ?v6 foaf:depiction ?v8 . } }
  OPTIONAL { ?v6 foaf:homepage ?v10 . }
  OPTIONAL { ?v6 dbo:populationTotal ?v12 . }
  OPTIONAL { ?v6 dbo:thumbnail ?v14 . } })");

  add("q2.2", "O", R"(SELECT * WHERE {
  ?v3 foaf:homepage ?v0 . ?v3 a dbo:SoccerPlayer . ?v3 dbp:position ?v6 .
  ?v3 dbp:clubs ?v8 . ?v8 dbo:capacity ?v1 . ?v3 dbo:birthPlace ?v5 .
  OPTIONAL { ?v3 dbo:number ?v9 . } })");

  add("q2.3", "O", R"(SELECT * WHERE {
  ?v5 dbo:thumbnail ?v4 . ?v5 rdf:type dbo:Person . ?v5 rdfs:label ?v .
  ?v5 foaf:homepage ?v8 .
  OPTIONAL { ?v5 foaf:homepage ?v10 . } })");

  add("q2.4", "O", R"(SELECT * WHERE {
  { ?v2 a dbo:Settlement . ?v2 rdfs:label ?v . ?v6 a dbo:Airport .
    ?v6 dbo:city ?v2 . ?v6 dbp:iata ?v5 .
    OPTIONAL { ?v6 foaf:homepage ?v7 . } }
  OPTIONAL { ?v6 dbp:nativename ?v8 . } })");

  add("q2.5", "O", R"(SELECT * WHERE {
  ?v4 skos:subject ?v . ?v4 foaf:name ?v6 .
  OPTIONAL { ?v4 rdfs:comment ?v8 . } })");

  add("q2.6", "O", R"(SELECT * WHERE {
  ?v0 rdfs:comment ?v1 . ?v0 foaf:page ?v .
  OPTIONAL { ?v0 skos:subject ?v6 . }
  OPTIONAL { ?v0 dbp:industry ?v5 . }
  OPTIONAL { ?v0 dbp:location ?v2 . }
  OPTIONAL { ?v0 dbp:locationCountry ?v3 . }
  OPTIONAL { ?v0 dbp:locationCity ?v9 . ?a dbp:manufacturer ?v0 . }
  OPTIONAL { ?v0 dbp:products ?v11 . ?b dbp:model ?v0 . }
  OPTIONAL { ?v0 georss:point ?v10 . }
  OPTIONAL { ?v0 rdf:type ?v7 . } })");

  return qs;
}

}  // namespace

const std::vector<PaperQuery>& LubmPaperQueries() {
  static const std::vector<PaperQuery> kQueries = MakeLubm();
  return kQueries;
}

const std::vector<PaperQuery>& DbpediaPaperQueries() {
  static const std::vector<PaperQuery> kQueries = MakeDbpedia();
  return kQueries;
}

const PaperQuery* FindQuery(const std::vector<PaperQuery>& queries,
                            const std::string& id) {
  for (const PaperQuery& q : queries)
    if (q.id == id) return &q;
  return nullptr;
}

}  // namespace sparqluo
