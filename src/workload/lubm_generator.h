// LUBM-style synthetic dataset generator.
//
// Reproduces the Lehigh University Benchmark's univ-bench schema and naming
// scheme (http://swat.cse.lehigh.edu/projects/lubm/): the scale factor is
// the number of universities, and entity IRIs follow the original pattern
// (http://www.DepartmentJ.UniversityI.edu/UndergraduateStudentK, ...), so
// the paper's benchmark queries — which reference concrete LUBM entities
// such as UndergraduateStudent91 of Department0.University0 — bind exactly
// as intended. Generation is deterministic for a given seed.
//
// One university yields roughly 100k triples, matching real LUBM(1)'s
// density. (Substitution note: the paper runs LUBM at 0.5-2 billion
// triples; we reproduce the generator logic and sweep the scale factor at
// laptop scale — see DESIGN.md.)
#pragma once

#include <cstdint>

#include "engine/database.h"

namespace sparqluo {

struct LubmConfig {
  /// Scale factor: number of universities.
  size_t universities = 1;
  uint64_t seed = 42;
  /// Density knob (1.0 = LUBM-like). Lower values shrink per-department
  /// population proportionally for fast unit tests.
  double density = 1.0;
  /// Pool of university IRIs that degreeFrom predicates draw from. Real
  /// LUBM references ~1000 universities regardless of how many are
  /// materialized; keeping the pool fixed preserves the degree-join
  /// selectivity (~1/pool) at small scale factors instead of letting the
  /// joins cross-multiply.
  size_t degree_pool = 1000;
};

/// Namespace IRIs used by the generator and the benchmark queries.
inline constexpr const char* kUbPrefix =
    "http://swat.cse.lehigh.edu/onto/univ-bench.owl#";
inline constexpr const char* kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// Generates the dataset into `db` (before Finalize).
void GenerateLubm(const LubmConfig& config, Database* db);

}  // namespace sparqluo
