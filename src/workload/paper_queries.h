// The benchmark queries of the paper's Appendix A.
//
// Group 1 (q1.1-q1.6): the SPARQL-UO mini-benchmark used in §7.1 (Fig. 10,
// Fig. 11, Fig. 12). Group 2 (q2.1-q2.6): the LBR comparison queries of
// §7.2 (Fig. 13), which contain OPTIONAL only.
#pragma once

#include <string>
#include <vector>

namespace sparqluo {

struct PaperQuery {
  std::string id;    ///< "q1.1" ... "q2.6"
  std::string type;  ///< "U", "O" or "UO" (Table 3/4 Type column)
  std::string sparql;
};

/// All 12 LUBM queries (Listings 2-13).
const std::vector<PaperQuery>& LubmPaperQueries();

/// All 12 DBpedia queries (Listings 15-26).
const std::vector<PaperQuery>& DbpediaPaperQueries();

/// Convenience: the query with the given id, or nullptr.
const PaperQuery* FindQuery(const std::vector<PaperQuery>& queries,
                            const std::string& id);

}  // namespace sparqluo
