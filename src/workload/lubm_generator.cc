#include "workload/lubm_generator.h"

#include <algorithm>
#include <string>

#include "util/random.h"

namespace sparqluo {

namespace {

/// Builder wrapper caching the ub: predicate terms.
class LubmBuilder {
 public:
  LubmBuilder(const LubmConfig& config, Database* db)
      : config_(config), db_(db), rng_(config.seed) {}

  void Generate() {
    const size_t n_univ = config_.universities;
    for (size_t u = 0; u < n_univ; ++u) GenerateUniversity(u);
  }

 private:
  // --- IRI naming, matching the official LUBM data generator -----------
  std::string UnivIri(size_t u) const {
    return "http://www.University" + std::to_string(u) + ".edu";
  }
  std::string DeptIri(size_t u, size_t d) const {
    return "http://www.Department" + std::to_string(d) + ".University" +
           std::to_string(u) + ".edu";
  }
  std::string Entity(size_t u, size_t d, const std::string& kind,
                     size_t k) const {
    return DeptIri(u, d) + "/" + kind + std::to_string(k);
  }

  Term Ub(const std::string& local) const { return Term::Iri(kUbPrefix + local); }
  Term TypeTerm() const { return Term::Iri(kRdfType); }

  void Add(const std::string& s, const std::string& p_local,
           const std::string& o_iri) {
    db_->AddTriple(Term::Iri(s), Ub(p_local), Term::Iri(o_iri));
  }
  void AddLit(const std::string& s, const std::string& p_local,
              const std::string& lit) {
    db_->AddTriple(Term::Iri(s), Ub(p_local), Term::Literal(lit));
  }
  void AddType(const std::string& s, const std::string& class_local) {
    db_->AddTriple(Term::Iri(s), TypeTerm(), Ub(class_local));
  }

  size_t DegreePool() const {
    return std::max(config_.degree_pool, config_.universities);
  }

  /// DegreeFrom target: 5% from the materialized universities (so joins
  /// against real departments/faculty bind at any scale), 95% from the
  /// fixed reference pool (so degree-degree joins keep ~1/pool selectivity
  /// instead of cross-multiplying at small scale factors).
  std::string DegreeUniv() {
    if (rng_.Bernoulli(0.05)) return UnivIri(rng_.Uniform(config_.universities));
    return UnivIri(rng_.Uniform(DegreePool()));
  }

  size_t Scaled(size_t lo, size_t hi) {
    double f = config_.density;
    auto v = rng_.Range(lo, hi);
    auto scaled = static_cast<size_t>(static_cast<double>(v) * f);
    return scaled == 0 ? 1 : scaled;
  }

  void GenerateUniversity(size_t u) {
    const std::string univ = UnivIri(u);
    AddType(univ, "University");
    AddLit(univ, "name", "University" + std::to_string(u));

    size_t n_dept = Scaled(15, 20);
    for (size_t d = 0; d < n_dept; ++d) GenerateDepartment(u, d);
  }

  void GenerateDepartment(size_t u, size_t d) {
    const std::string dept = DeptIri(u, d);
    const std::string univ = UnivIri(u);
    AddType(dept, "Department");
    Add(dept, "subOrganizationOf", univ);
    AddLit(dept, "name", "Department" + std::to_string(d));

    // Research groups (sub-organizations of the department).
    size_t n_groups = Scaled(10, 15);
    for (size_t g = 0; g < n_groups; ++g) {
      std::string group = Entity(u, d, "ResearchGroup", g);
      AddType(group, "ResearchGroup");
      Add(group, "subOrganizationOf", dept);
    }

    // Faculty.
    struct FacultyKind {
      const char* class_name;
      const char* iri_kind;
      size_t lo, hi;
    };
    const FacultyKind kinds[] = {
        {"FullProfessor", "FullProfessor", 7, 10},
        {"AssociateProfessor", "AssociateProfessor", 10, 14},
        {"AssistantProfessor", "AssistantProfessor", 8, 11},
        {"Lecturer", "Lecturer", 5, 7},
    };
    std::vector<std::string> faculty;
    std::vector<std::string> courses, grad_courses;
    size_t course_seq = 0, grad_course_seq = 0, pub_seq = 0;
    for (const FacultyKind& kind : kinds) {
      size_t n = Scaled(kind.lo, kind.hi);
      for (size_t k = 0; k < n; ++k) {
        std::string prof = Entity(u, d, kind.iri_kind, k);
        faculty.push_back(prof);
        AddType(prof, kind.class_name);
        Add(prof, "worksFor", dept);
        AddLit(prof, "name", std::string(kind.iri_kind) + std::to_string(k));
        AddLit(prof, "emailAddress",
               std::string(kind.iri_kind) + std::to_string(k) + "@" +
                   dept.substr(11));  // strip "http://www."
        AddLit(prof, "telephone", "xxx-xxx-xxxx");
        Add(prof, "undergraduateDegreeFrom", DegreeUniv());
        Add(prof, "mastersDegreeFrom", DegreeUniv());
        Add(prof, "doctoralDegreeFrom", DegreeUniv());
        AddLit(prof, "researchInterest", "Research" + std::to_string(rng_.Uniform(30)));

        // Courses taught (1 undergrad + 1 grad on average).
        size_t n_courses = rng_.Range(1, 2);
        for (size_t c = 0; c < n_courses; ++c) {
          std::string course = Entity(u, d, "Course", course_seq++);
          AddType(course, "Course");
          AddLit(course, "name", "Course" + std::to_string(course_seq));
          Add(prof, "teacherOf", course);
          courses.push_back(course);
        }
        size_t n_gcourses = rng_.Range(1, 2);
        for (size_t c = 0; c < n_gcourses; ++c) {
          std::string course = Entity(u, d, "GraduateCourse", grad_course_seq++);
          AddType(course, "GraduateCourse");
          AddLit(course, "name", "GraduateCourse" + std::to_string(grad_course_seq));
          Add(prof, "teacherOf", course);
          grad_courses.push_back(course);
        }

        // Publications authored by this faculty member.
        size_t n_pubs = rng_.Range(1, 6);
        for (size_t m = 0; m < n_pubs; ++m) {
          std::string pub = prof + "/Publication" + std::to_string(m);
          AddType(pub, "Publication");
          AddLit(pub, "name", "Publication" + std::to_string(pub_seq++));
          Add(pub, "publicationAuthor", prof);
        }
      }
    }
    // Department head: the first full professor.
    Add(Entity(u, d, "FullProfessor", 0), "headOf", dept);

    // Undergraduate students (the bulk of the data).
    size_t n_ug = Scaled(380, 460);
    for (size_t k = 0; k < n_ug; ++k) {
      std::string st = Entity(u, d, "UndergraduateStudent", k);
      AddType(st, "UndergraduateStudent");
      Add(st, "memberOf", dept);
      AddLit(st, "name", "UndergraduateStudent" + std::to_string(k));
      AddLit(st, "emailAddress", "UndergraduateStudent" + std::to_string(k) +
                                     "@" + dept.substr(11));
      AddLit(st, "telephone", "xxx-xxx-xxxx");
      size_t n_take = rng_.Range(2, 4);
      for (size_t c = 0; c < n_take && !courses.empty(); ++c)
        Add(st, "takesCourse", courses[rng_.Uniform(courses.size())]);
      if (rng_.Bernoulli(0.2) && !faculty.empty())
        Add(st, "advisor", faculty[rng_.Uniform(faculty.size())]);
    }

    // Graduate students.
    size_t n_grad = Scaled(95, 125);
    for (size_t k = 0; k < n_grad; ++k) {
      std::string st = Entity(u, d, "GraduateStudent", k);
      AddType(st, "GraduateStudent");
      Add(st, "memberOf", dept);
      AddLit(st, "name", "GraduateStudent" + std::to_string(k));
      AddLit(st, "emailAddress",
             "GraduateStudent" + std::to_string(k) + "@" + dept.substr(11));
      AddLit(st, "telephone", "xxx-xxx-xxxx");
      Add(st, "undergraduateDegreeFrom", DegreeUniv());
      size_t n_take = rng_.Range(1, 3);
      for (size_t c = 0; c < n_take && !grad_courses.empty(); ++c)
        Add(st, "takesCourse", grad_courses[rng_.Uniform(grad_courses.size())]);
      if (!faculty.empty()) Add(st, "advisor", faculty[rng_.Uniform(faculty.size())]);
      // Teaching assistants for undergraduate courses.
      if (rng_.Bernoulli(0.25) && !courses.empty())
        Add(st, "teachingAssistantOf", courses[rng_.Uniform(courses.size())]);
      // Some graduate students co-author publications.
      if (rng_.Bernoulli(0.15) && !faculty.empty()) {
        std::string prof = faculty[rng_.Uniform(faculty.size())];
        std::string pub = prof + "/Publication0";
        Add(pub, "publicationAuthor", st);
      }
    }
  }

  const LubmConfig& config_;
  Database* db_;
  Random rng_;
};

}  // namespace

void GenerateLubm(const LubmConfig& config, Database* db) {
  LubmBuilder builder(config, db);
  builder.Generate();
}

}  // namespace sparqluo
