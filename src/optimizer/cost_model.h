// SPARQL-UO cost model (Section 5.1.1, Equations 1-8).
//
// The cost of a transformation site is the sum of
//   (a) the BGP evaluation costs of the site's BGP nodes (engine cost
//       model, Section 5.1.2), and
//   (b) the algebra cost of combining partial results:
//         f_AND(|res(X)|, |res(l(X))|, |res(r(X))|)  per BGP node X,
//         f_UNION(|res(P2)|, ..., |res(Pn)|)         per UNION site,
//         f_OPTIONAL(|res(P1)|, |res(P2)|)           per OPTIONAL site,
//       with f_AND = product, f_UNION = sum, f_OPTIONAL = product, matching
//       the instantiations used in the paper's experiments.
//
// Result sizes of non-BGP nodes follow the assumed distribution of §5.1.1:
// joins (AND, OPTIONAL) multiply, UNION adds.
//
// Deviation note (documented in DESIGN.md): when computing a site's local
// cost we include the f_AND terms of *all* BGP children at the affected
// levels, not only the transformed ones. Unchanged terms cancel in the
// Δ-cost, and terms whose left/right sibling sizes change are accounted
// for — a strict superset of Equations 2-3 and 6-7.
#pragma once

#include "betree/be_tree.h"
#include "bgp/engine.h"

namespace sparqluo {

class CostModel {
 public:
  explicit CostModel(const BgpEngine& engine) : engine_(engine) {}

  /// |res(node)| estimate.
  double EstimateResultSize(const BeNode& node) const;

  /// cost(P) of a BGP node under the bound engine.
  double BgpCost(const Bgp& bgp) const {
    return bgp.empty() ? 0.0 : engine_.EstimateCost(bgp);
  }

  /// Σ over BGP children X of `group` of
  ///   BgpCost(X) + f_AND(|res(X)|, |res(l(X))|, |res(r(X))|).
  ///
  /// `skip_idx` (optional) names the child whose size is treated as 1 in the
  /// l/r products: the transformation's target UNION/OPTIONAL node. Its
  /// combination cost is carried by the dedicated f_UNION / f_OPTIONAL term,
  /// so including its result size in every sibling's f_AND would double
  /// count it and make every transformation look favorable regardless of
  /// selectivity (which would contradict the paper's Figure 7 analysis).
  double LevelBgpCost(const BeNode& group, size_t skip_idx = SIZE_MAX) const;

  /// Local cost of a merge site: the parent level, every UNION branch
  /// level, and the f_UNION term (Equations 1-3).
  double MergeSiteCost(const BeNode& group, size_t union_idx) const;

  /// Local cost of an inject site: the parent level, the OPTIONAL-right
  /// level, and the f_OPTIONAL term (Equations 5-7). `res_p1` is |res(P1)|
  /// of the BGP node considered for injection.
  double InjectSiteCost(const BeNode& group, size_t opt_idx,
                        double res_p1) const;

  const BgpEngine& engine() const { return engine_; }

 private:
  const BgpEngine& engine_;
};

}  // namespace sparqluo
