#include "optimizer/transformer.h"

#include "optimizer/transformations.h"

namespace sparqluo {

namespace {

/// Clones only what a site evaluation needs: the parent group node (whose
/// children are cloned shallowly enough for cost computation — i.e., fully,
/// since cost estimation walks subtrees).
std::unique_ptr<BeNode> CloneGroup(const BeNode& group) { return group.Clone(); }

/// §6: a level shaped as [BGP, (UNION|OPTIONAL|FILTER)...] — one leading
/// BGP followed only by operator nodes — is exactly the case where the
/// transformation duplicates what candidate pruning achieves at query time.
bool LevelIsCpEquivalent(const BeNode& group) {
  size_t bgp_count = 0;
  for (size_t i = 0; i < group.children.size(); ++i) {
    const BeNode& c = *group.children[i];
    if (c.is_bgp()) {
      ++bgp_count;
      if (i != 0) return false;
    } else if (!c.is_union() && !c.is_optional() && !c.is_filter()) {
      return false;  // nested group: transformation can still help
    }
  }
  return bgp_count == 1 && group.children.size() > 1;
}

}  // namespace

double DecideMergeDelta(const BeNode& group, size_t bgp_idx, size_t union_idx,
                        const CostModel& cost) {
  if (!CanMerge(group, bgp_idx, union_idx)) return 0.0;
  double before = cost.MergeSiteCost(group, union_idx);
  std::unique_ptr<BeNode> clone = CloneGroup(group);
  ApplyMerge(clone.get(), bgp_idx, union_idx);
  // After the merge the BGP node is gone, shifting the UNION one slot left
  // when it was to the right of the BGP.
  size_t union_after = union_idx > bgp_idx ? union_idx - 1 : union_idx;
  double after = cost.MergeSiteCost(*clone, union_after);
  return after - before;
}

double DecideInjectDelta(const BeNode& group, size_t bgp_idx, size_t opt_idx,
                         const CostModel& cost) {
  if (!CanInject(group, bgp_idx, opt_idx)) return 0.0;
  double res_p1 = cost.EstimateResultSize(*group.children[bgp_idx]);
  double before = cost.InjectSiteCost(group, opt_idx, res_p1);
  std::unique_ptr<BeNode> clone = CloneGroup(group);
  ApplyInject(clone.get(), bgp_idx, opt_idx);
  double after = cost.InjectSiteCost(*clone, opt_idx, res_p1);
  return after - before;
}

void SingleLevelTransform(BeNode* group, const CostModel& cost,
                          const TransformOptions& options,
                          TransformStats* stats) {
  if (options.skip_cp_equivalent_levels && LevelIsCpEquivalent(*group)) {
    if (stats) ++stats->levels_skipped_cp;
    return;
  }
  // Iterate over BGP children. Indices shift when a merge removes a node,
  // so the loop re-scans from the current position after each merge.
  for (size_t i = 0; i < group->children.size(); ++i) {
    if (!group->children[i]->is_bgp() || group->children[i]->bgp.empty())
      continue;

    // A BGP can be merged into at most one sibling UNION: pick the most
    // negative Δ-cost across all of them (Algorithm 2, lines 4-12).
    double min_union_cost = 0.0;
    size_t target_union = SIZE_MAX;
    for (size_t j = 0; j < group->children.size(); ++j) {
      if (!group->children[j]->is_union()) continue;
      if (stats) ++stats->decide_calls;
      double delta = DecideMergeDelta(*group, i, j, cost);
      if (delta < min_union_cost) {
        min_union_cost = delta;
        target_union = j;
      }
    }
    if (target_union != SIZE_MAX) {
      ApplyMerge(group, i, target_union);
      if (stats) ++stats->merges;
      // The BGP at position i was consumed; the element now at i has not
      // been examined yet.
      --i;
      continue;
    }

    // Injects are mutually independent: decide each sibling OPTIONAL to the
    // right individually (Algorithm 2, lines 13-14).
    for (size_t j = i + 1; j < group->children.size(); ++j) {
      if (!group->children[j]->is_optional()) continue;
      if (stats) ++stats->decide_calls;
      double delta = DecideInjectDelta(*group, i, j, cost);
      if (delta < 0.0) {
        ApplyInject(group, i, j);
        if (stats) ++stats->injects;
      }
    }
  }
}

namespace {

void PostOrderTraverse(BeNode* node, const CostModel& cost,
                       const TransformOptions& options,
                       TransformStats* stats) {
  for (auto& child : node->children) {
    switch (child->type) {
      case BeNode::Type::kGroup:
        PostOrderTraverse(child.get(), cost, options, stats);
        break;
      case BeNode::Type::kUnion:
        for (auto& branch : child->children)
          PostOrderTraverse(branch.get(), cost, options, stats);
        break;
      case BeNode::Type::kOptional:
        PostOrderTraverse(child->children[0].get(), cost, options, stats);
        break;
      default:
        break;
    }
  }
  SingleLevelTransform(node, cost, options, stats);
}

}  // namespace

void MultiLevelTransform(BeTree* tree, const CostModel& cost,
                         const TransformOptions& options,
                         TransformStats* stats) {
  PostOrderTraverse(tree->root.get(), cost, options, stats);
}

}  // namespace sparqluo
