#include "optimizer/cost_model.h"

namespace sparqluo {

double CostModel::EstimateResultSize(const BeNode& node) const {
  switch (node.type) {
    case BeNode::Type::kBgp:
      if (node.bgp.empty()) return 1.0;
      return engine_.EstimateCardinality(node.bgp);
    case BeNode::Type::kGroup: {
      // Children combine by joins (AND / left-outer-join): product rule.
      double size = 1.0;
      for (const auto& c : node.children) {
        if (c->is_filter()) continue;  // treated as selectivity 1
        size *= EstimateResultSize(*c);
      }
      return size;
    }
    case BeNode::Type::kUnion: {
      double size = 0.0;
      for (const auto& c : node.children) size += EstimateResultSize(*c);
      return size;
    }
    case BeNode::Type::kOptional:
      return EstimateResultSize(*node.children[0]);
    case BeNode::Type::kFilter:
      return 1.0;
    case BeNode::Type::kPath: {
      // Reachability over one closure: bounded by pairs of distinct
      // endpoints; a bound endpoint turns it into one BFS frontier.
      const bool s_bound = !node.path.subject.is_var;
      const bool o_bound = !node.path.object.is_var;
      if (s_bound && o_bound) return 1.0;
      if (s_bound || o_bound) return 32.0;
      return 1024.0;
    }
  }
  return 1.0;
}

double CostModel::LevelBgpCost(const BeNode& group, size_t skip_idx) const {
  const auto& kids = group.children;
  // Precompute each child's result size once.
  std::vector<double> sizes(kids.size(), 1.0);
  for (size_t i = 0; i < kids.size(); ++i)
    sizes[i] = kids[i]->is_filter() || i == skip_idx
                   ? 1.0
                   : EstimateResultSize(*kids[i]);

  double cost = 0.0;
  for (size_t i = 0; i < kids.size(); ++i) {
    if (!kids[i]->is_bgp()) continue;
    double left = 1.0, right = 1.0;
    for (size_t j = 0; j < i; ++j) left *= sizes[j];
    for (size_t j = i + 1; j < kids.size(); ++j) right *= sizes[j];
    // f_AND(|res(X)|, |res(l(X))|, |res(r(X))|) with f_AND = product.
    cost += BgpCost(kids[i]->bgp) + sizes[i] * left * right;
  }
  return cost;
}

double CostModel::MergeSiteCost(const BeNode& group, size_t union_idx) const {
  const BeNode& u = *group.children[union_idx];
  double cost = LevelBgpCost(group, union_idx);
  double f_union = 0.0;
  for (const auto& branch : u.children) {
    cost += LevelBgpCost(*branch);
    f_union += EstimateResultSize(*branch);
  }
  return cost + f_union;
}

double CostModel::InjectSiteCost(const BeNode& group, size_t opt_idx,
                                 double res_p1) const {
  const BeNode& opt = *group.children[opt_idx];
  const BeNode& right = *opt.children[0];
  double cost = LevelBgpCost(group, opt_idx) + LevelBgpCost(right);
  // f_OPTIONAL(|res(P1)|, |res(P2)|) with product semantics.
  cost += res_p1 * EstimateResultSize(right);
  return cost;
}

}  // namespace sparqluo
