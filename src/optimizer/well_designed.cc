#include "optimizer/well_designed.h"

#include <algorithm>

namespace sparqluo {

namespace {

void AddVar(std::vector<VarId>* out, VarId v) {
  if (std::find(out->begin(), out->end(), v) == out->end()) out->push_back(v);
}

void CollectElementVars(const PatternElement& e, std::vector<VarId>* out);

void CollectGroupVars(const GroupGraphPattern& g, std::vector<VarId>* out) {
  for (const PatternElement& e : g.elements) CollectElementVars(e, out);
}

void CollectElementVars(const PatternElement& e, std::vector<VarId>* out) {
  switch (e.kind) {
    case PatternElement::Kind::kTriple:
      for (VarId v : e.triple.Variables()) AddVar(out, v);
      break;
    case PatternElement::Kind::kFilter:
      break;  // FILTER mentions but does not bind variables
    default:
      for (const GroupGraphPattern& g : e.groups) CollectGroupVars(g, out);
  }
}

/// Walks the pattern; at each OPTIONAL checks the well-designedness
/// condition against (a) the variables bound to its left within the same
/// group ("P1") and (b) the variables occurring anywhere else in the query
/// ("outside"). `outside_minus_here` holds the variable multiset of the
/// whole query minus this subtree — recomputed along the recursion.
void Walk(const GroupGraphPattern& group, size_t depth,
          std::vector<VarId> outside,
          std::vector<WellDesignedViolation>* out) {
  // Variables bound by elements preceding the current position.
  std::vector<VarId> left;
  for (size_t i = 0; i < group.elements.size(); ++i) {
    const PatternElement& e = group.elements[i];
    if (e.kind == PatternElement::Kind::kOptional) {
      std::vector<VarId> right_vars;
      CollectGroupVars(e.groups[0], &right_vars);
      // "Outside" of this OPTIONAL: everything in `outside`, plus the
      // left siblings, plus the right siblings.
      std::vector<VarId> context = outside;
      for (VarId v : left) AddVar(&context, v);
      for (size_t j = i + 1; j < group.elements.size(); ++j)
        CollectElementVars(group.elements[j], &context);
      for (VarId v : right_vars) {
        bool occurs_outside =
            std::find(context.begin(), context.end(), v) != context.end();
        bool bound_left =
            std::find(left.begin(), left.end(), v) != left.end();
        if (occurs_outside && !bound_left)
          out->push_back(WellDesignedViolation{v, depth});
      }
      // Recurse: the OPTIONAL-right subtree sees the whole remaining query
      // as its outside context.
      Walk(e.groups[0], depth + 1, context, out);
      // OPTIONAL variables are only optionally bound; they do not join the
      // certain left part.
      continue;
    }
    if (e.kind == PatternElement::Kind::kGroup) {
      std::vector<VarId> context = outside;
      for (VarId v : left) AddVar(&context, v);
      for (size_t j = i + 1; j < group.elements.size(); ++j)
        CollectElementVars(group.elements[j], &context);
      Walk(e.groups[0], depth + 1, context, out);
    } else if (e.kind == PatternElement::Kind::kUnion) {
      for (size_t b = 0; b < e.groups.size(); ++b) {
        std::vector<VarId> context = outside;
        for (VarId v : left) AddVar(&context, v);
        for (size_t j = i + 1; j < group.elements.size(); ++j)
          CollectElementVars(group.elements[j], &context);
        // Sibling UNION branches are alternatives, not context.
        Walk(e.groups[b], depth + 1, context, out);
      }
    }
    CollectElementVars(e, &left);
  }
}

}  // namespace

std::vector<WellDesignedViolation> FindWellDesignedViolations(
    const GroupGraphPattern& pattern) {
  std::vector<WellDesignedViolation> out;
  Walk(pattern, 0, {}, &out);
  return out;
}

}  // namespace sparqluo
