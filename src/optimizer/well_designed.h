// Well-designed pattern analysis (Pérez et al., TODS 2009; the WDPT work of
// Letelier et al. the paper discusses as related).
//
// A graph pattern is *well-designed* when for every OPTIONAL sub-pattern
// (P1 OPTIONAL P2), each variable of P2 that also occurs elsewhere in the
// query outside the OPTIONAL already occurs in P1. Well-designed queries
// are the class on which OPTIONAL behaves "intuitively" — and the class
// where merge/inject insertion positions never re-base a left join, i.e.
// where the local safety guards of optimizer/transformations.cc always
// pass. The analyzer is useful for diagnostics and for workload studies.
#pragma once

#include <vector>

#include "sparql/ast.h"

namespace sparqluo {

/// One well-designedness violation: an OPTIONAL whose right side shares
/// `variable` with the outside without it being bound on the left.
struct WellDesignedViolation {
  VarId variable = kInvalidVarId;
  /// Depth of the offending OPTIONAL (root group = 0).
  size_t depth = 0;
};

/// Analyzes the pattern; returns all violations (empty = well-designed).
std::vector<WellDesignedViolation> FindWellDesignedViolations(
    const GroupGraphPattern& pattern);

/// Convenience predicate.
inline bool IsWellDesigned(const GroupGraphPattern& pattern) {
  return FindWellDesignedViolations(pattern).empty();
}
inline bool IsWellDesigned(const Query& query) {
  return IsWellDesigned(query.where);
}

}  // namespace sparqluo
