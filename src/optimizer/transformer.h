// Cost-driven BE-tree transformation (Section 5.2, Algorithms 2-4).
//
// Transformations are decided greedily, level by level, in a post-order
// traversal: lower levels are fully transformed before their parents are
// considered, bounding the exponential plan space without backtracking.
#pragma once

#include "betree/be_tree.h"
#include "optimizer/cost_model.h"

namespace sparqluo {

struct TransformOptions {
  /// §6 special case: when candidate pruning is active and a level consists
  /// of a single BGP followed only by UNION/OPTIONAL nodes, transformation
  /// is equivalent to pruning; skip it to evade the overhead.
  bool skip_cp_equivalent_levels = false;
};

struct TransformStats {
  size_t merges = 0;
  size_t injects = 0;
  size_t levels_skipped_cp = 0;
  double decide_calls = 0;  ///< Δ-cost evaluations performed.
};

/// Algorithm 2: decides and applies transformations among the children of
/// `group` only.
void SingleLevelTransform(BeNode* group, const CostModel& cost,
                          const TransformOptions& options,
                          TransformStats* stats);

/// Algorithm 4: post-order traversal applying SingleLevelTransform at every
/// group graph pattern node.
void MultiLevelTransform(BeTree* tree, const CostModel& cost,
                         const TransformOptions& options,
                         TransformStats* stats);

/// Δ-cost of merging children[bgp_idx] into children[union_idx] (evaluated
/// on a clone; the input tree is not modified). Positive when unprofitable.
double DecideMergeDelta(const BeNode& group, size_t bgp_idx, size_t union_idx,
                        const CostModel& cost);

/// Δ-cost of injecting children[bgp_idx] into children[opt_idx].
double DecideInjectDelta(const BeNode& group, size_t bgp_idx, size_t opt_idx,
                         const CostModel& cost);

}  // namespace sparqluo
